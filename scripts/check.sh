#!/usr/bin/env bash
# Tier-1 gate: formatting, vet, build, tests. Run before every commit.
# Performance is gated separately: scripts/bench.sh regenerates the
# checked-in perf trajectory (BENCH_pr5.json) — run it after touching the
# compiler pipeline or the simulator hot path.
set -euo pipefail
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go build ./...
go test ./...
# The whole module must also be clean under the race detector: the compiler
# fans per-function analysis across a worker pool, units are driven from
# concurrent goroutines in tests, and the trace recorder and metrics
# registry are observed concurrently by the debug HTTP server — this
# catches any accidental sharing. This leg also runs the fault-injection /
# reliable-messaging tests (internal/earthsim, internal/harness) under the
# race detector.
go test -race ./...
# Zero-cost pin: with telemetry disabled (no registry, no sampler) the
# simulator must execute the identical guest schedule and allocate no more
# per run than the BenchmarkSimulator baseline in BENCH_pr3.json; ditto for
# the fault layer. (Also part of `go test ./...` above; rerun by name so a
# perf-pin failure is unmistakable in CI logs.)
go test -run 'ZeroCostWhenDisabled|RegistryRunOverheadBounded' -count=1 .
# Perf-regression smoke leg: a short benchmark run diffed against the
# committed trajectory with benchdiff's quick thresholds (directional
# tolerances ×4; deterministic simulated quantities like guest_instructions
# must still match exactly).
if [ -f BENCH_pr5.json ]; then
    go test -run '^$' \
        -bench '^(BenchmarkCompile|BenchmarkSimulator|BenchmarkFig10)$' \
        -benchmem -benchtime 50ms . \
      | go run ./cmd/benchdiff -baseline BENCH_pr5.json -quick
fi
# Native-fuzz smoke leg: ten seconds of parser fuzzing, seeded from
# testdata/ (including the malformed-input corpus). Catches panics the
# hand-written corpus misses; a real finding lands in testdata/fuzz/.
go test -fuzz=FuzzParse -fuzztime=10s -run '^$' ./internal/earthc
