#!/usr/bin/env bash
# Tier-1 gate: formatting, vet, build, tests. Run before every commit.
set -euo pipefail
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go build ./...
go test ./...
# The simulator and its trace sink must also be clean under the race
# detector (the recorder is documented single-threaded; this catches any
# accidental sharing).
go test -race ./internal/earthsim/... ./internal/trace/...
