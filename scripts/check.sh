#!/usr/bin/env bash
# Tier-1 gate: formatting, vet, build, tests. Run before every commit.
# Performance is gated separately: scripts/bench.sh regenerates the
# checked-in perf trajectory (BENCH_pr3.json) — run it after touching the
# compiler pipeline or the simulator hot path.
set -euo pipefail
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go build ./...
go test ./...
# The whole module must also be clean under the race detector: the compiler
# fans per-function analysis across a worker pool, units are driven from
# concurrent goroutines in tests, and the trace recorder is documented
# single-threaded — this catches any accidental sharing. This leg also runs
# the fault-injection / reliable-messaging tests (internal/earthsim,
# internal/harness) under the race detector.
go test -race ./...
# Native-fuzz smoke leg: ten seconds of parser fuzzing, seeded from
# testdata/ (including the malformed-input corpus). Catches panics the
# hand-written corpus misses; a real finding lands in testdata/fuzz/.
go test -fuzz=FuzzParse -fuzztime=10s -run '^$' ./internal/earthc
