#!/usr/bin/env bash
# Tier-1 gate: formatting, vet, build, tests. Run before every commit.
# Performance is gated separately: scripts/bench.sh regenerates the
# checked-in perf trajectory (BENCH_pr5.json, BENCH_pr6.json,
# BENCH_pr7.json, BENCH_pr8.json) — run it after touching the compiler
# pipeline, the simulator hot path, the compile cache, the sharded event
# loop, or the earthd service.
set -euo pipefail
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go build ./...
go test ./...
# The whole module must also be clean under the race detector: the compiler
# fans per-function analysis across a worker pool, units are driven from
# concurrent goroutines in tests, and the trace recorder and metrics
# registry are observed concurrently by the debug HTTP server — this
# catches any accidental sharing. This leg also runs the fault-injection /
# reliable-messaging tests (internal/earthsim, internal/harness) under the
# race detector.
go test -race ./...
# Zero-cost pin: with telemetry disabled (no registry, no sampler) the
# simulator must execute the identical guest schedule and allocate no more
# per run than the BenchmarkSimulator baseline in BENCH_pr3.json; ditto for
# the fault layer. (Also part of `go test ./...` above; rerun by name so a
# perf-pin failure is unmistakable in CI logs.)
go test -run 'ZeroCostWhenDisabled|RegistryRunOverheadBounded' -count=1 .
# Sharded-engine determinism pin: the {benchmark x faults x SimWorkers}
# equivalence matrix — byte-identical Visible(), trace export, and telemetry
# series across worker counts — must hold under the race detector, where the
# worker pool's scheduling is at its most adversarial. (Also part of
# `go test -race ./...` above; rerun by name so a determinism failure is
# unmistakable in CI logs.)
go test -race -count=1 -run 'TestShardedEquivalenceMatrix|TestSharded256Nodes' ./internal/earthsim
# Perf-regression smoke leg: a short benchmark run diffed against the
# committed trajectory with benchdiff's quick thresholds (directional
# tolerances ×4; deterministic simulated quantities like guest_instructions
# must still match exactly).
if [ -f BENCH_pr5.json ]; then
    go test -run '^$' \
        -bench '^(BenchmarkCompile|BenchmarkSimulator|BenchmarkFig10)$' \
        -benchmem -benchtime 50ms . \
      | go run ./cmd/benchdiff -baseline BENCH_pr5.json -quick
fi
# Compile-cache smoke leg: warm vs cold. The same source compiled twice
# under -cache-dir must serve the second run from the disk store (the
# compile is skipped entirely) with byte-identical output. Loopback timing
# is not asserted here — the <10% warm/cold ratio is pinned by
# TestWarmRecompileUnderTenPercentOfCold and the BENCH_pr7.json gate below.
cache_dir="$(mktemp -d)"
cache_src="$(mktemp)"
cold_out="$(mktemp)"
warm_out="$(mktemp)"
warm_log="$(mktemp)"
trap 'rm -rf "$cache_dir" "$cache_src" "$cold_out" "$warm_out" "$warm_log"' EXIT
cat > "$cache_src" <<'EOF'
struct Node { int v; struct Node *next; };
int main() {
	Node *head;
	Node *p;
	int i;
	int sum;
	head = NULL;
	for (i = 0; i < 10; i++) {
		p = alloc_on(Node, 1);
		p->v = i;
		p->next = head;
		head = p;
	}
	sum = 0;
	p = head;
	while (p != NULL) { sum = sum + p->v; p = p->next; }
	print_int(sum);
	return sum;
}
EOF
go run ./cmd/earthcc -O -dump=threaded -cache-dir "$cache_dir" "$cache_src" > "$cold_out" 2>/dev/null
go run ./cmd/earthcc -O -dump=threaded -cache-dir "$cache_dir" "$cache_src" > "$warm_out" 2> "$warm_log"
grep -q 'disk hit' "$warm_log" || {
    echo "cache smoke: second compile reported no cache hit:" >&2
    cat "$warm_log" >&2
    exit 1
}
cmp -s "$cold_out" "$warm_out" || {
    echo "cache smoke: warm output differs from cold" >&2
    diff "$cold_out" "$warm_out" >&2 || true
    exit 1
}
echo "cache smoke: disk hit + byte-identical warm output ok"
# Warm/cold compile-cache gate: short rerun diffed against the committed
# BENCH_pr7.json warm/cold sweep.
if [ -f BENCH_pr7.json ]; then
    go test -run '^$' -bench '^(BenchmarkCompile|BenchmarkCompileWarm)$' \
        -benchmem -benchtime 50ms . \
      | go run ./cmd/benchdiff -baseline BENCH_pr7.json -quick
fi
# Event-loop scalability gate: short BenchmarkSimNodes rerun diffed against
# the committed BENCH_pr8.json sweep. events is deterministic and must match
# exactly even under -quick; events_sec (Higher-is-better) gets the widened
# quick tolerances.
if [ -f BENCH_pr8.json ]; then
    go test -run '^$' -bench '^BenchmarkSimNodes$' \
        -benchmem -benchtime 1x . \
      | go run ./cmd/benchdiff -baseline BENCH_pr8.json -quick \
            -tol 'ns_per_op=3.0,events_sec=0.80'
fi
# Service smoke leg: boot a real earthd on an ephemeral port, submit one
# good job and one malformed job over HTTP, then verify SIGTERM produces a
# clean drain (exit 0, "drained cleanly" in the log). This exercises the
# binary end to end — flag parsing, listener bootstrap, the HTTP surface,
# and the signal path — which no in-process test does.
earthd_bin="$(mktemp)"
earthd_log="$(mktemp)"
trap 'rm -f "$earthd_bin" "$earthd_log"; rm -rf "$cache_dir" "$cache_src" "$cold_out" "$warm_out" "$warm_log"' EXIT
go build -o "$earthd_bin" ./cmd/earthd
"$earthd_bin" -addr 127.0.0.1:0 -shards 2 >"$earthd_log" 2>&1 &
earthd_pid=$!
for _ in $(seq 1 50); do
    grep -q 'listening on' "$earthd_log" && break
    sleep 0.1
done
port=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$earthd_log")
if [ -z "$port" ]; then
    echo "earthd smoke: server never announced its port" >&2
    cat "$earthd_log" >&2
    exit 1
fi
ok_code=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
    "http://127.0.0.1:$port/jobs" -d '{"benchmark":"power","quick":true,"nodes":4}')
bad_code=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
    "http://127.0.0.1:$port/jobs" -d '{"benchmark":"no-such-benchmark"}')
# Observability smoke: the binary reports its identity, a completed job's
# host-side timeline is retained with the queue.wait and sim.run stages,
# and /debug/jobs serves the attribution tables.
curl -s "http://127.0.0.1:$port/buildinfo" | grep -q '"go_version"' || {
    echo "earthd smoke: /buildinfo missing go_version" >&2
    exit 1
}
curl -s -o /dev/null -X POST "http://127.0.0.1:$port/jobs" \
    -d '{"id":"smoke-tl","benchmark":"power","quick":true,"nodes":4}'
timeline=$(curl -s "http://127.0.0.1:$port/jobs/smoke-tl/timeline?format=text")
for stage in queue.wait sim.run; do
    echo "$timeline" | grep -q "$stage" || {
        echo "earthd smoke: timeline missing $stage span:" >&2
        echo "$timeline" >&2
        exit 1
    }
done
curl -s "http://127.0.0.1:$port/debug/jobs" | grep -q 'tail-latency attribution' || {
    echo "earthd smoke: /debug/jobs missing attribution table" >&2
    exit 1
}
kill -TERM "$earthd_pid"
if ! wait "$earthd_pid"; then
    echo "earthd smoke: dirty exit after SIGTERM" >&2
    cat "$earthd_log" >&2
    exit 1
fi
if [ "$ok_code" != 200 ] || [ "$bad_code" != 400 ]; then
    echo "earthd smoke: good job -> $ok_code (want 200), malformed -> $bad_code (want 400)" >&2
    cat "$earthd_log" >&2
    exit 1
fi
grep -q 'drained cleanly' "$earthd_log" || {
    echo "earthd smoke: no clean-drain message in log:" >&2
    cat "$earthd_log" >&2
    exit 1
}
echo "earthd smoke: 200/400/timeline/clean drain ok"
# Timeline concurrency leg: live snapshot reads racing job execution and
# completion filing, under the race detector, rerun by name so a data race
# in the observability layer is unmistakable in CI logs. (Also part of
# `go test -race ./...` above.)
go test -race -count=1 -run 'TestTimeline' ./internal/server
# Journal-recovery unit leg: the durability contract's unit surface —
# corruption matrix, restart recovery, exactly-once re-submission,
# cancellation — rerun by name under the race detector so a recovery
# regression is unmistakable in CI logs. (Also part of `go test -race ./...`
# above.)
go test -race -count=1 -run 'TestCorruptionMatrix|TestJournalRecovery|TestCancel' \
    ./internal/journal ./internal/server
# Chaos smoke leg: one seeded SIGKILL/restart cycle against a real earthd
# with a journal. The harness asserts zero lost accepted jobs and that every
# replayed payload is byte-identical to a clean run — the crash-safety
# contract, end to end through the real binary and real fsyncs.
chaos_bin="$(mktemp)"
trap 'rm -f "$earthd_bin" "$earthd_log" "$chaos_bin"; rm -rf "$cache_dir" "$cache_src" "$cold_out" "$warm_out" "$warm_log"' EXIT
go build -o "$chaos_bin" ./cmd/earthchaos
"$chaos_bin" -earthd "$earthd_bin" -n 8 -cycles 1 -seed 7
echo "chaos smoke: kill/restart cycle ok"
# Service throughput smoke: a short earthload sweep diffed against the
# committed BENCH_pr6.json trajectory. Loopback jobs/sec is the noisiest
# metric in the trajectory, so the quick tolerances are wide; the full
# gate is scripts/bench.sh.
if [ -f BENCH_pr6.json ]; then
    go run ./cmd/earthload -sweep 1,2,4,8 -c 8 -n 16 -bench 2>/dev/null \
      | go run ./cmd/benchdiff -baseline BENCH_pr6.json -quick \
            -tol 'ns_per_op=2.0,jobs_sec=0.85'
fi
# Native-fuzz smoke leg: ten seconds of parser fuzzing, seeded from
# testdata/ (including the malformed-input corpus). Catches panics the
# hand-written corpus misses; a real finding lands in testdata/fuzz/.
go test -fuzz=FuzzParse -fuzztime=10s -run '^$' ./internal/earthc
