#!/usr/bin/env bash
# Perf gate: run the compiler/simulator benchmarks and write the perf
# trajectory to BENCH_pr3.json (committed at the repo root). Each entry
# records host cost (ns/op, B/op, allocs/op) plus any custom metrics the
# benchmark reports (guest_instructions, simple_ops, ...), so regressions
# in either compile speed or simulator throughput show up in review diffs.
#
# Usage: scripts/bench.sh [output.json]
# BENCHTIME=2s scripts/bench.sh   # longer runs for quieter numbers
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_pr3.json}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' \
    -bench '^(BenchmarkCompile|BenchmarkSimulator|BenchmarkFig10)$' \
    -benchmem -benchtime "${BENCHTIME:-1s}" . | tee "$raw"

awk -v goversion="$(go version | awk '{print $3}')" '
function flush() {
    if (name == "") return
    if (!first) printf ",\n"
    first = 0
    printf "    {\"name\": \"%s\", \"iterations\": %s", name, iters
    for (i = 1; i <= nm; i++) printf ", \"%s\": %s", mkey[i], mval[i]
    printf "}"
}
BEGIN { first = 1; printf "{\n  \"go\": \"%s\",\n  \"benchmarks\": [\n", goversion }
/^Benchmark/ {
    flush()
    name = $1; sub(/-[0-9]+$/, "", name); sub(/^Benchmark/, "", name)
    iters = $2; nm = 0
    for (i = 3; i + 1 <= NF; i += 2) {
        unit = $(i + 1)
        if (unit == "ns/op") key = "ns_per_op"
        else if (unit == "B/op") key = "bytes_per_op"
        else if (unit == "allocs/op") key = "allocs_per_op"
        else { key = unit; gsub(/[^A-Za-z0-9_]/, "_", key) }
        nm++; mkey[nm] = key; mval[nm] = $i
    }
}
END { flush(); printf "\n  ]\n}\n" }
' "$raw" > "$out"

echo "bench: wrote $out"
