#!/usr/bin/env bash
# Perf gate: run the compiler/simulator benchmarks and write the perf
# trajectory artifact (committed at the repo root). Each entry records host
# cost (ns/op, B/op, allocs/op) plus any custom metrics the benchmark
# reports (guest_instructions, simple_ops, ...), so regressions in either
# compile speed or simulator throughput show up in review diffs.
#
# Parsing and JSON encoding live in cmd/benchdiff (internal/benchfmt),
# which escapes benchmark names properly — the awk emitter that used to
# live here did not. The same tool diffs a fresh run against the committed
# artifact: scripts/check.sh runs a quick smoke comparison, and
#   go test -run '^$' -bench ... -benchmem . | go run ./cmd/benchdiff -baseline BENCH_pr5.json
# is the full gate.
#
# Usage: scripts/bench.sh [output.json [faultsweep-output.json [load-output.json [warmcold-output.json [simnodes-output.json]]]]]
# BENCHTIME=2s scripts/bench.sh   # longer runs for quieter numbers
# LOADJOBS=80 scripts/bench.sh    # more jobs per earthload sweep point
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_pr5.json}"
fault_out="${2:-BENCH_fault_pr5.json}"
load_out="${3:-BENCH_pr6.json}"
warm_out="${4:-BENCH_pr7.json}"
sim_out="${5:-BENCH_pr8.json}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' \
    -bench '^(BenchmarkCompile|BenchmarkSimulator|BenchmarkFig10)$' \
    -benchmem -benchtime "${BENCHTIME:-1s}" . | tee "$raw"

go run ./cmd/benchdiff -emit < "$raw" > "$out"
echo "bench: wrote $out"

# The reliable-messaging fault sweep is tracked across PRs like the perf
# trajectory: every benchmark under increasing fault rates, checking
# completion and result fidelity (deterministic for a fixed seed).
go run ./cmd/paperbench -faultsweep -json -scale quick -out "$fault_out"
echo "bench: wrote $fault_out"

# Service throughput sweep: earthload drives a self-hosted earthd through
# 1/2/4/8 pipeline shards with the mixed Olden workload and emits
# BenchmarkEarthload/shards=N lines (jobs/sec, mean job latency) that join
# the benchdiff-gated trajectory. scripts/check.sh diffs a short rerun
# against this artifact.
go run ./cmd/earthload -sweep 1,2,4,8 -c 8 -n "${LOADJOBS:-40}" -bench \
    2> >(sed 's/^/  /' >&2) > "$raw"
go run ./cmd/benchdiff -emit < "$raw" > "$load_out"
echo "bench: wrote $load_out"

# Warm/cold compile sweep: the compile-cache contract. BenchmarkCompileWarm
# recompiles unchanged source against a warm cache (one hash + one lookup);
# paired with the cold BenchmarkCompile it pins warm-recompile cost at well
# under 10% of cold. scripts/check.sh diffs a short rerun against this
# artifact, and TestWarmRecompileUnderTenPercentOfCold enforces the ratio
# directly in the test suite.
go test -run '^$' -bench '^(BenchmarkCompile|BenchmarkCompileWarm)$' \
    -benchmem -benchtime "${BENCHTIME:-1s}" . | tee "$raw"
go run ./cmd/benchdiff -emit < "$raw" > "$warm_out"
echo "bench: wrote $warm_out"

# Event-loop scalability sweep: the halo ring exchange at 4/64/256/1024
# simulated nodes on both the sequential loop (seq) and the sharded engine
# at SimWorkers=GOMAXPROCS (par). events is deterministic (Exact-gated);
# events_sec is the throughput trajectory. scripts/check.sh diffs a short
# rerun against this artifact.
go test -run '^$' -bench '^BenchmarkSimNodes$' \
    -benchmem -benchtime "${BENCHTIME:-1s}" . | tee "$raw"
go run ./cmd/benchdiff -emit < "$raw" > "$sim_out"
echo "bench: wrote $sim_out"
