package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"
)

// Timeline is a point-in-time snapshot of a JobTrace: job metadata plus the
// span tree. It is what the HTTP surface serializes — snapshots are taken
// under the trace lock, rendering happens outside it.
type Timeline struct {
	JobID     string     `json:"job_id"`
	Status    string     `json:"status,omitempty"` // empty while live
	Done      bool       `json:"done"`
	StartedAt time.Time  `json:"started_at"`
	WallNs    int64      `json:"wall_ns"` // total at completion; elapsed-so-far while live
	Spans     []SpanNode `json:"spans"`
}

// SpanNode is one span in the nested tree form.
type SpanNode struct {
	Kind     string     `json:"kind"`
	StartNs  int64      `json:"start_ns"`
	DurNs    int64      `json:"dur_ns"`
	Open     bool       `json:"open,omitempty"` // still running at snapshot time
	Children []SpanNode `json:"children,omitempty"`
}

// Snapshot captures the trace as a Timeline. Open spans (a live job) report
// duration-so-far with Open set. Nil-safe (returns nil).
func (t *JobTrace) Snapshot() *Timeline {
	if t == nil {
		return nil
	}
	now := t.now()
	t.mu.Lock()
	tl := &Timeline{
		JobID:     t.jobID,
		Status:    t.status,
		Done:      t.done,
		StartedAt: t.epoch,
		WallNs:    t.total,
	}
	spans := make([]Span, len(t.spans))
	copy(spans, t.spans)
	t.mu.Unlock()
	if !tl.Done {
		tl.WallNs = now
	}

	// Build the tree. Parents always precede children (a child is recorded
	// while or after its parent span opened), so one forward pass suffices.
	nodes := make([]SpanNode, len(spans))
	for i, sp := range spans {
		end, open := sp.End, false
		if end < 0 {
			end, open = now, true
		}
		nodes[i] = SpanNode{Kind: sp.Kind, StartNs: sp.Start, DurNs: end - sp.Start, Open: open}
	}
	// Attach bottom-up so each child subtree is complete before its parent
	// adopts it.
	for i := len(spans) - 1; i >= 0; i-- {
		p := spans[i].Parent
		if p >= 0 && p < len(nodes) {
			nodes[p].Children = append([]SpanNode{nodes[i]}, nodes[p].Children...)
		}
	}
	for i, sp := range spans {
		if sp.Parent == -1 {
			tl.Spans = append(tl.Spans, nodes[i])
		}
	}
	return tl
}

// WriteJSON writes the timeline as indented JSON.
func (tl *Timeline) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(tl)
}

// WriteText renders the timeline as an indented human-readable tree:
//
//	job j-42  status=done  wall=12.4ms  started=...
//	  accept        @0s        120µs
//	    journal.append @10µs    85µs
//	  queue.wait    @120µs     1.2ms
//	  ...
func (tl *Timeline) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	status := tl.Status
	if status == "" {
		status = "live"
	}
	fmt.Fprintf(bw, "job %s  status=%s  wall=%s  started=%s\n",
		tl.JobID, status, time.Duration(tl.WallNs), tl.StartedAt.Format(time.RFC3339Nano))
	var walk func(n SpanNode, depth int)
	walk = func(n SpanNode, depth int) {
		open := ""
		if n.Open {
			open = " (open)"
		}
		fmt.Fprintf(bw, "  %s%-*s @%-12s %s%s\n",
			strings.Repeat("  ", depth), 24-2*depth, n.Kind,
			time.Duration(n.StartNs), time.Duration(n.DurNs), open)
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	for _, n := range tl.Spans {
		walk(n, 0)
	}
	return bw.Flush()
}

// WriteChrome writes the timeline in the Chrome trace_event encoding used by
// internal/trace — the JSON object form with "X" complete events and
// fixed-point microsecond timestamps — so a job's server-side spans open in
// Perfetto next to its simulated-time trace. The host spans become one
// process (pid 0 "earthd") with one thread per top-level stage.
func (tl *Timeline) WriteChrome(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n")
	first := true
	emit := func(line string) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		bw.WriteString(line)
	}
	emit(fmt.Sprintf(`{"ph":"M","pid":0,"tid":0,"name":"process_name","args":{"name":%s}}`, jstr("earthd job "+tl.JobID)))
	tid := 0
	var walk func(n SpanNode, tid int)
	walk = func(n SpanNode, tid int) {
		emit(fmt.Sprintf(`{"ph":"X","pid":0,"tid":%d,"name":%s,"cat":"host","ts":%s,"dur":%s,"args":{"open":%t}}`,
			tid, jstr(n.Kind), micros(n.StartNs), micros(n.DurNs), n.Open))
		for _, c := range n.Children {
			walk(c, tid)
		}
	}
	for _, n := range tl.Spans {
		emit(fmt.Sprintf(`{"ph":"M","pid":0,"tid":%d,"name":"thread_name","args":{"name":%s}}`, tid, jstr(n.Kind)))
		walk(n, tid)
		tid++
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// micros renders ns as fixed-point microseconds ("12.345"), matching
// internal/trace's Chrome export.
func micros(ns int64) string {
	neg := ""
	if ns < 0 {
		neg, ns = "-", -ns
	}
	return fmt.Sprintf("%s%d.%03d", neg, ns/1000, ns%1000)
}

// jstr JSON-escapes a string.
func jstr(s string) string {
	b, err := json.Marshal(s)
	if err != nil {
		return `"?"`
	}
	return string(b)
}
