package obs

import (
	"runtime"
	"runtime/debug"
)

// Build identifies the running binary: module version, VCS state, and the
// toolchain that built it. Served by GET /buildinfo and stamped into the
// daemons' startup log lines so "which build is this?" never requires a
// shell on the box.
type Build struct {
	GoVersion string `json:"go_version"`
	Module    string `json:"module,omitempty"`
	Version   string `json:"version,omitempty"`
	Revision  string `json:"revision,omitempty"`
	Time      string `json:"time,omitempty"` // VCS commit time, RFC3339
	Dirty     bool   `json:"dirty,omitempty"`
}

// Info reads the binary's build metadata via runtime/debug.ReadBuildInfo.
// Fields missing from the build (e.g. no VCS stamping under `go test`) stay
// empty; the call never fails.
func Info() Build {
	b := Build{GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	b.Module = bi.Main.Path
	b.Version = bi.Main.Version
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			b.Revision = s.Value
		case "vcs.time":
			b.Time = s.Value
		case "vcs.modified":
			b.Dirty = s.Value == "true"
		}
	}
	return b
}

// ShortRevision returns the revision truncated for log lines ("" when the
// build carries no VCS stamp).
func (b Build) ShortRevision() string {
	if len(b.Revision) > 12 {
		return b.Revision[:12]
	}
	return b.Revision
}
