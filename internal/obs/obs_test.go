package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"
)

// completeTrace builds a completed trace with the given synthetic wall time.
func completeTrace(r *Recorder, id string, wall time.Duration) *JobTrace {
	t := r.NewTrace(id, time.Now())
	t.AddInterval(-1, KindQueueWait, 0, int64(wall)/2)
	t.AddInterval(-1, KindSimRun, int64(wall)/2, int64(wall))
	r.Track(t)
	// Force the completion total to the synthetic wall time so reservoir
	// ordering is deterministic in tests, then file through the real path.
	t.complete("done")
	t.mu.Lock()
	t.total = int64(wall)
	t.mu.Unlock()
	r.file(t)
	return t
}

func TestRingBoundedUnderSustainedLoad(t *testing.T) {
	r := New(Options{Enabled: true, Recent: 8, Slowest: 4})
	const jobs = 10000
	for i := 0; i < jobs; i++ {
		tr := r.NewTrace(fmt.Sprintf("j-%d", i), time.Now())
		tr.Start(-1, KindQueueWait)
		r.Track(tr)
		r.Complete(tr, "done")
	}
	live, ring, slow, completed := r.Stats()
	if live != 0 {
		t.Fatalf("live = %d after all jobs completed", live)
	}
	if ring != 8 {
		t.Fatalf("ring = %d, want 8", ring)
	}
	if slow != 4 {
		t.Fatalf("slow = %d, want 4", slow)
	}
	if completed != jobs {
		t.Fatalf("completed = %d, want %d", completed, jobs)
	}
	r.mu.Lock()
	idx := len(r.index)
	r.mu.Unlock()
	if idx > 8+4 {
		t.Fatalf("index holds %d traces, want <= %d (ring+reservoir)", idx, 8+4)
	}
}

func TestSlowestReservoirKeepsSlowest(t *testing.T) {
	r := New(Options{Enabled: true, Recent: 4, Slowest: 3})
	// Interleave durations so neither arrival order nor the recent ring
	// dictates reservoir membership: 10ms, 1ms, 50ms, 2ms, 30ms, 3ms, 40ms.
	durs := []time.Duration{10 * time.Millisecond, time.Millisecond, 50 * time.Millisecond,
		2 * time.Millisecond, 30 * time.Millisecond, 3 * time.Millisecond, 40 * time.Millisecond}
	for i, d := range durs {
		completeTrace(r, fmt.Sprintf("j-%d", i), d)
	}
	slow := r.Slowest()
	if len(slow) != 3 {
		t.Fatalf("reservoir size = %d, want 3", len(slow))
	}
	want := []time.Duration{50 * time.Millisecond, 40 * time.Millisecond, 30 * time.Millisecond}
	for i, tr := range slow {
		if got := time.Duration(tr.TotalNs()); got != want[i] {
			t.Fatalf("slowest[%d] = %s, want %s", i, got, want[i])
		}
	}
	// The slowest job fell out of the 4-deep recent ring long ago but must
	// still resolve by id through the reservoir.
	if tr := r.Lookup("j-2"); tr == nil || tr.TotalNs() != int64(50*time.Millisecond) {
		t.Fatalf("slowest job not resolvable via Lookup: %v", tr)
	}
}

func TestLookupPrefersLiveTrace(t *testing.T) {
	r := New(Options{Enabled: true})
	old := completeTrace(r, "j-1", time.Millisecond)
	fresh := r.NewTrace("j-1", time.Now())
	r.Track(fresh)
	if got := r.Lookup("j-1"); got != fresh {
		t.Fatalf("Lookup returned %p, want live trace %p (completed was %p)", got, fresh, old)
	}
	r.Complete(fresh, "done")
	if got := r.Lookup("j-1"); got != fresh {
		t.Fatal("Lookup should return the most recent completion")
	}
}

func TestNilRecorderZeroAllocs(t *testing.T) {
	var r *Recorder
	allocs := testing.AllocsPerRun(100, func() {
		tr := r.NewTrace("j-1", time.Time{})
		ix := tr.Start(-1, KindAccept)
		tr.StartAt(ix, KindJournalAppend, 0)
		tr.AddInterval(ix, KindCacheLookup, 0, 1)
		tr.End(ix)
		tr.Stages()
		r.Track(tr)
		r.Complete(tr, "done")
		r.Lookup("j-1")
		r.Recent()
		r.Slowest()
	})
	if allocs != 0 {
		t.Fatalf("disabled recorder allocated %.1f per op, want 0", allocs)
	}
	if New(Options{}) != nil {
		t.Fatal("New with Enabled=false must return the nil recorder")
	}
}

func TestSnapshotTree(t *testing.T) {
	r := New(Options{Enabled: true})
	tr := r.NewTrace("j-9", time.Now())
	acc := tr.StartAt(-1, KindAccept, 0)
	tr.AddInterval(acc, KindJournalAppend, 10, 40)
	tr.AddInterval(acc, KindBatchAttach, 40, 50)
	tr.End(acc)
	q := tr.Start(-1, KindQueueWait)
	tr.End(q)
	c := tr.Start(-1, KindCompile)
	tr.AddInterval(c, KindCacheLookup, 100, 200)
	tr.AddInterval(c, CompilePhasePrefix+"parse", 200, 300)
	tr.End(c)
	r.Track(tr)
	r.Complete(tr, "done")

	tl := tr.Snapshot()
	if !tl.Done || tl.Status != "done" {
		t.Fatalf("snapshot not terminal: done=%t status=%q", tl.Done, tl.Status)
	}
	if len(tl.Spans) != 3 {
		t.Fatalf("top-level spans = %d, want 3", len(tl.Spans))
	}
	if tl.Spans[0].Kind != KindAccept || len(tl.Spans[0].Children) != 2 {
		t.Fatalf("accept span wrong: %+v", tl.Spans[0])
	}
	if tl.Spans[0].Children[0].Kind != KindJournalAppend || tl.Spans[0].Children[1].Kind != KindBatchAttach {
		t.Fatalf("accept children out of order: %+v", tl.Spans[0].Children)
	}
	if got := tl.Spans[2].Children[1].Kind; got != "compile.parse" {
		t.Fatalf("compile phase child = %q, want compile.parse", got)
	}
	if d := tl.Spans[0].Children[0].DurNs; d != 30 {
		t.Fatalf("journal.append dur = %d, want 30", d)
	}
}

func TestCompleteClosesOpenSpans(t *testing.T) {
	r := New(Options{Enabled: true})
	tr := r.NewTrace("j-c", time.Now())
	tr.Start(-1, KindQueueWait) // never explicitly ended: cancelled in queue
	r.Track(tr)
	r.Complete(tr, "cancelled")
	tl := tr.Snapshot()
	if len(tl.Spans) != 1 || tl.Spans[0].Open {
		t.Fatalf("open span not closed at completion: %+v", tl.Spans)
	}
	if tl.Status != "cancelled" {
		t.Fatalf("status = %q", tl.Status)
	}
}

func TestExportEncodings(t *testing.T) {
	r := New(Options{Enabled: true})
	tr := r.NewTrace(`j-"quote"`, time.Now())
	acc := tr.StartAt(-1, KindAccept, 0)
	tr.AddInterval(acc, KindJournalAppend, 1000, 2000)
	tr.End(acc)
	r.Track(tr)
	r.Complete(tr, "done")
	tl := tr.Snapshot()

	var jb bytes.Buffer
	if err := tl.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	var back Timeline
	if err := json.Unmarshal(jb.Bytes(), &back); err != nil {
		t.Fatalf("JSON round-trip: %v\n%s", err, jb.String())
	}
	if back.JobID != tl.JobID || len(back.Spans) != 1 {
		t.Fatalf("round-trip mismatch: %+v", back)
	}

	var tb bytes.Buffer
	if err := tl.WriteText(&tb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"status=done", KindAccept, KindJournalAppend} {
		if !strings.Contains(tb.String(), want) {
			t.Fatalf("text export missing %q:\n%s", want, tb.String())
		}
	}

	var cb bytes.Buffer
	if err := tl.WriteChrome(&cb); err != nil {
		t.Fatal(err)
	}
	var chrome struct {
		DisplayTimeUnit string            `json:"displayTimeUnit"`
		TraceEvents     []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(cb.Bytes(), &chrome); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v\n%s", err, cb.String())
	}
	if chrome.DisplayTimeUnit != "ns" || len(chrome.TraceEvents) < 3 {
		t.Fatalf("chrome export malformed: unit=%q events=%d", chrome.DisplayTimeUnit, len(chrome.TraceEvents))
	}
}

func TestLoggerConstructors(t *testing.T) {
	var b bytes.Buffer
	lg, err := NewLogger(&b, "text", "info")
	if err != nil {
		t.Fatal(err)
	}
	lg.Debug("hidden")
	lg.Info("shown", "job", "j-1")
	if s := b.String(); strings.Contains(s, "hidden") || !strings.Contains(s, "job=j-1") {
		t.Fatalf("text logger output wrong:\n%s", s)
	}
	b.Reset()
	lg, err = NewLogger(&b, "json", "warn")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("hidden")
	lg.Warn("shown", "n", 3)
	var rec map[string]any
	if err := json.Unmarshal(b.Bytes(), &rec); err != nil {
		t.Fatalf("json logger line invalid: %v\n%s", err, b.String())
	}
	if rec["msg"] != "shown" || rec["n"] != float64(3) {
		t.Fatalf("json record wrong: %v", rec)
	}
	if _, err := NewLogger(&b, "xml", "info"); err == nil {
		t.Fatal("want error for unknown format")
	}
	if _, err := NewLogger(&b, "text", "loud"); err == nil {
		t.Fatal("want error for unknown level")
	}
	Discard().Info("dropped")
}

func TestBuildInfo(t *testing.T) {
	b := Info()
	if b.GoVersion == "" {
		t.Fatal("GoVersion empty")
	}
	// Under `go test` the module path is present even without VCS stamping.
	if b.Module == "" {
		t.Fatal("Module empty")
	}
	long := Build{Revision: "0123456789abcdef"}
	if got := long.ShortRevision(); got != "0123456789ab" {
		t.Fatalf("ShortRevision = %q", got)
	}
}

func TestStagesLiveDurations(t *testing.T) {
	r := New(Options{Enabled: true})
	tr := r.NewTrace("j-s", time.Now().Add(-time.Second))
	tr.AddInterval(-1, KindQueueWait, 0, int64(time.Millisecond))
	tr.Start(-1, KindSimRun)
	st := tr.Stages()
	if len(st) != 2 {
		t.Fatalf("stages = %d, want 2", len(st))
	}
	if st[0].Kind != KindQueueWait || st[0].Ns != int64(time.Millisecond) {
		t.Fatalf("closed stage wrong: %+v", st[0])
	}
	if st[1].Kind != KindSimRun || st[1].Ns <= 0 {
		t.Fatalf("open stage should report elapsed-so-far: %+v", st[1])
	}
}
