// Package obs is the host-side observability layer of the earthd service:
// per-job span timelines over monotonic wall-clock time, a bounded ring of
// completed timelines plus a reservoir of the slowest ones, and the slog
// plumbing the daemons log through.
//
// Where internal/trace and internal/metrics explain what happened *inside* a
// simulated run (deterministic, simulated-time quantities), this package
// explains what happened to a job on its way *through* the service: queue
// wait, batching attach, cache lookup, compile, simulate, journal fsync,
// respond. Those are wall-clock, host-dependent quantities, so everything
// here lives deliberately outside the pipeline registries — the §11
// byte-determinism contracts (telemetry series, trace exports) never see a
// host timestamp, the same boundary metrics.ProcessCollector sits on.
//
// Two contracts carry over from the trace/metrics subsystems:
//
//   - Zero cost when disabled. A nil *Recorder is a valid, disabled
//     recorder: NewTrace returns a nil *JobTrace whose methods are all
//     nil-safe no-ops, so an instrumentation point costs one nil check and
//     zero allocations (pinned by TestNilTraceZeroAllocs).
//
//   - Observation never perturbs execution. Recording happens outside the
//     simulator entirely (the request path around it), and reading a
//     timeline takes only that timeline's lock — a scrape never stalls a
//     worker.
package obs

import (
	"sync"
	"time"
)

// Span kinds. Every stage of the earthd request path records under one of
// these stable names; tests, the attribution report, and operators key on
// them.
const (
	KindAccept          = "accept"           // SubmitEx entry → enqueue (validation, dedup, admission)
	KindJournalAppend   = "journal.append"   // child of accept: fsync the acceptance record
	KindBatchAttach     = "batch.attach"     // child of accept: join the single-flight compile
	KindQueueWait       = "queue.wait"       // enqueue → a worker dequeues the job
	KindCompile         = "compile"          // compileShared: cache lookup / flight wait / real compile
	KindCacheLookup     = "cache.lookup"     // child of compile: unit-cache consultation
	KindSimRun          = "sim.run"          // the simulator run itself
	KindJournalComplete = "journal.complete" // the outcome record's journal append
	KindRespond         = "respond"          // index update + waiter notification
)

// CompilePhasePrefix prefixes the per-phase children of a compile span
// (e.g. "compile.sema"), derived from trace.CompileStats.
const CompilePhasePrefix = "compile."

// StageKinds lists the top-level span kinds in request-path order — the
// rows of the tail-latency attribution report.
var StageKinds = []string{
	KindAccept, KindQueueWait, KindCompile, KindSimRun, KindJournalComplete, KindRespond,
}

// Span is one recorded interval, relative to the trace's epoch.
type Span struct {
	Kind   string
	Start  int64 // ns since the trace epoch
	End    int64 // ns since the trace epoch; -1 while open
	Parent int   // index of the parent span; -1 for top-level stages
}

// JobTrace is one job's host-side timeline: a tree of spans over monotonic
// wall-clock time. The request path records into it from the submitting
// goroutine and then the worker goroutine (ordered by the queue handoff);
// the HTTP surface reads it concurrently through its mutex.
type JobTrace struct {
	mu     sync.Mutex
	jobID  string
	epoch  time.Time // trace time zero (submission entry); carries a monotonic reading
	status string    // "", or a terminal status once completed
	total  int64     // ns, set at Complete
	spans  []Span
	done   bool
	inRing bool
	inSlow bool
}

// JobID returns the traced job's id ("" for nil).
func (t *JobTrace) JobID() string {
	if t == nil {
		return ""
	}
	return t.jobID
}

// now returns the current trace-relative timestamp.
func (t *JobTrace) now() int64 { return time.Since(t.epoch).Nanoseconds() }

// Start opens a span of the given kind under parent (-1 for top-level) and
// returns its index. Nil-safe: returns -1 on a nil trace, and every other
// method accepts -1.
func (t *JobTrace) Start(parent int, kind string) int {
	if t == nil {
		return -1
	}
	return t.StartAt(parent, kind, t.now())
}

// StartAt is Start with an explicit trace-relative start time, for spans
// that began before the trace object existed (the accept span covers
// validation that ran before admission was decided).
func (t *JobTrace) StartAt(parent int, kind string, startNs int64) int {
	if t == nil {
		return -1
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.spans = append(t.spans, Span{Kind: kind, Start: startNs, End: -1, Parent: parent})
	return len(t.spans) - 1
}

// End closes the span at index ix. Nil-safe; ignores -1 and closed spans.
func (t *JobTrace) End(ix int) {
	if t == nil || ix < 0 {
		return
	}
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	if ix < len(t.spans) && t.spans[ix].End < 0 {
		t.spans[ix].End = now
	}
}

// Bounds returns the trace-relative start/end of the span at ix (end is -1
// while open). Nil-safe and tolerant of -1 indices (returns 0, -1).
func (t *JobTrace) Bounds(ix int) (startNs, endNs int64) {
	if t == nil || ix < 0 {
		return 0, -1
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if ix >= len(t.spans) {
		return 0, -1
	}
	return t.spans[ix].Start, t.spans[ix].End
}

// AddInterval records an already-finished span with explicit trace-relative
// bounds (used to reconstruct compile-phase children from CompileStats
// after the compile returns). Returns the span index, -1 on nil.
func (t *JobTrace) AddInterval(parent int, kind string, startNs, endNs int64) int {
	if t == nil {
		return -1
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.spans = append(t.spans, Span{Kind: kind, Start: startNs, End: endNs, Parent: parent})
	return len(t.spans) - 1
}

// complete closes any open spans at now, stamps the status and total, and
// marks the trace terminal. Idempotent.
func (t *JobTrace) complete(status string) {
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return
	}
	t.done = true
	t.status = status
	t.total = now
	for i := range t.spans {
		if t.spans[i].End < 0 {
			t.spans[i].End = now
		}
	}
}

// Done reports whether the trace has completed (false for nil).
func (t *JobTrace) Done() bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.done
}

// TotalNs returns the completed trace's wall time (0 while live or nil).
func (t *JobTrace) TotalNs() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Stage is one top-level span's duration — a row of the attribution report.
type Stage struct {
	Kind string
	Ns   int64
}

// Stages returns the durations of the trace's top-level spans, in recording
// order. Open spans report their duration so far. Nil-safe (nil slice).
func (t *JobTrace) Stages() []Stage {
	if t == nil {
		return nil
	}
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Stage
	for _, sp := range t.spans {
		if sp.Parent != -1 {
			continue
		}
		end := sp.End
		if end < 0 {
			end = now
		}
		out = append(out, Stage{Kind: sp.Kind, Ns: end - sp.Start})
	}
	return out
}

// Options size the recorder.
type Options struct {
	// Enabled turns host-side tracing on. The zero value (disabled) makes
	// New return a nil recorder — the zero-cost path.
	Enabled bool
	// Recent bounds the ring of most recently completed timelines
	// (default 64).
	Recent int
	// Slowest bounds the reservoir of slowest completed timelines
	// (default 16).
	Slowest int
	// SlowJob, when positive, is the wall-time threshold above which a
	// completed job's timeline is dumped into the structured log.
	SlowJob time.Duration
}

func (o Options) withDefaults() Options {
	if o.Recent <= 0 {
		o.Recent = 64
	}
	if o.Slowest <= 0 {
		o.Slowest = 16
	}
	return o
}

// Recorder tracks job timelines: live (queued/running) traces by job id,
// a bounded ring of the most recently completed, and a reservoir of the
// slowest completed. Memory is bounded by Recent+Slowest+|live| timelines
// regardless of how many jobs flow through.
type Recorder struct {
	opt Options

	mu        sync.Mutex
	live      map[string]*JobTrace
	ring      []*JobTrace // completed, oldest first, len <= opt.Recent
	slow      []*JobTrace // completed, unordered reservoir, len <= opt.Slowest
	index     map[string]*JobTrace
	completed int64
}

// New builds a recorder, or returns nil (the valid, disabled recorder) when
// opt.Enabled is false.
func New(opt Options) *Recorder {
	if !opt.Enabled {
		return nil
	}
	return &Recorder{
		opt:   opt.withDefaults(),
		live:  make(map[string]*JobTrace),
		index: make(map[string]*JobTrace),
	}
}

// Enabled reports whether timelines are being recorded (false for nil).
func (r *Recorder) Enabled() bool { return r != nil }

// SlowJobThreshold returns the configured slow-job dump threshold (0 when
// disabled or nil).
func (r *Recorder) SlowJobThreshold() time.Duration {
	if r == nil {
		return 0
	}
	return r.opt.SlowJob
}

// NewTrace creates a detached trace whose time zero is epoch. It is not yet
// visible to Lookup — the submission may still be rejected; call Track once
// the job is admitted. Returns nil on a nil recorder.
func (r *Recorder) NewTrace(jobID string, epoch time.Time) *JobTrace {
	if r == nil {
		return nil
	}
	return &JobTrace{jobID: jobID, epoch: epoch}
}

// Track registers an admitted job's trace as live, replacing any previous
// live trace under the same id (a cancelled id re-admitted runs fresh).
func (r *Recorder) Track(t *JobTrace) {
	if r == nil || t == nil {
		return
	}
	r.mu.Lock()
	r.live[t.jobID] = t
	r.mu.Unlock()
}

// Complete finalizes a tracked trace with the job's terminal status and
// files it into the ring and, when slow enough, the reservoir, evicting
// older timelines to stay within bounds.
func (r *Recorder) Complete(t *JobTrace, status string) {
	if r == nil || t == nil {
		return
	}
	t.complete(status)
	r.file(t)
}

// file moves a completed trace out of the live set and into the ring and,
// when slow enough, the reservoir.
func (r *Recorder) file(t *JobTrace) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.completed++
	if r.live[t.jobID] == t {
		delete(r.live, t.jobID)
	}
	r.index[t.jobID] = t
	// Ring of the most recent.
	t.inRing = true
	r.ring = append(r.ring, t)
	if len(r.ring) > r.opt.Recent {
		old := r.ring[0]
		copy(r.ring, r.ring[1:])
		r.ring = r.ring[:len(r.ring)-1]
		old.inRing = false
		r.dropLocked(old)
	}
	// Reservoir of the slowest. The reservoir is small (tens), so a linear
	// min scan beats heap bookkeeping.
	if len(r.slow) < r.opt.Slowest {
		t.inSlow = true
		r.slow = append(r.slow, t)
	} else if mi := r.minSlowLocked(); r.slow[mi].TotalNs() < t.TotalNs() {
		old := r.slow[mi]
		old.inSlow = false
		r.slow[mi] = t
		t.inSlow = true
		r.dropLocked(old)
	}
}

// minSlowLocked returns the index of the fastest reservoir entry.
func (r *Recorder) minSlowLocked() int {
	mi := 0
	for i := 1; i < len(r.slow); i++ {
		if r.slow[i].TotalNs() < r.slow[mi].TotalNs() {
			mi = i
		}
	}
	return mi
}

// dropLocked removes a timeline from the id index once neither the ring nor
// the reservoir holds it (and the index still points at this trace — a
// newer completion of the same id must not be evicted by an older one).
func (r *Recorder) dropLocked(t *JobTrace) {
	if !t.inRing && !t.inSlow && r.index[t.jobID] == t {
		delete(r.index, t.jobID)
	}
}

// Lookup returns the job's timeline: the live trace while it is queued or
// running, else its retained completed timeline. Nil when unknown (or the
// recorder is nil).
func (r *Recorder) Lookup(jobID string) *JobTrace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t := r.live[jobID]; t != nil {
		return t
	}
	return r.index[jobID]
}

// Recent returns the retained completed timelines, newest first.
func (r *Recorder) Recent() []*JobTrace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*JobTrace, 0, len(r.ring))
	for i := len(r.ring) - 1; i >= 0; i-- {
		out = append(out, r.ring[i])
	}
	return out
}

// Slowest returns the slowest retained timelines, slowest first.
func (r *Recorder) Slowest() []*JobTrace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]*JobTrace, len(r.slow))
	copy(out, r.slow)
	r.mu.Unlock()
	// Sort outside the lock; TotalNs of a completed trace is immutable.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].TotalNs() > out[j-1].TotalNs(); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Stats reports the recorder's occupancy: live traces, ring and reservoir
// sizes, and total completions observed.
func (r *Recorder) Stats() (live, ring, slow int, completed int64) {
	if r == nil {
		return 0, 0, 0, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.live), len(r.ring), len(r.slow), r.completed
}
