package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// Structured logging for the daemons. All three commands (earthd, earthload,
// earthchaos) and internal/server log through *slog.Logger; this file is the
// one place the handler wiring lives so `-log-format`/`-log-level` mean the
// same thing everywhere.

// Discard returns a logger that drops everything — the default for an
// unconfigured Server, so library users pay for logging only when they ask
// for it.
func Discard() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// NewLogger builds a leveled slog logger writing to w. format is "text"
// (logfmt-style, the default) or "json" (one JSON object per line); level is
// "debug", "info", "warn", or "error".
func NewLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "", "info":
		lv = slog.LevelInfo
	case "debug":
		lv = slog.LevelDebug
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (want debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("unknown log format %q (want text|json)", format)
	}
}
