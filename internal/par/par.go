// Package par provides the bounded worker pool the compiler pipeline uses
// to fan per-function analysis work across goroutines.
//
// The determinism contract (see DESIGN.md "Concurrency model"): parallel
// callers may only use ForEach for work where fn(i) writes exclusively to
// slot i of a pre-sized result slice (plus purely local state). All merging
// into shared structures happens after ForEach returns, sequentially, in
// deterministic (function) order. Under that discipline the result of a
// Workers=N run is byte-identical to a Workers=1 run.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Pool is a bounded fan-out helper. A nil *Pool is valid and runs
// everything inline (serial), so analysis packages can accept an optional
// pool without nil checks.
type Pool struct {
	workers int
	busy    atomic.Int64 // cumulative worker busy time, nanoseconds
}

// New returns a pool that runs at most workers goroutines at a time.
// workers <= 0 means GOMAXPROCS.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers reports the pool's concurrency bound (1 for a nil pool).
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// Busy returns the cumulative time workers have spent executing ForEach
// bodies since the pool was created. Comparing the growth of Busy against
// wall-clock time around a phase gives the wall vs. cumulative split that
// CompileStats records.
func (p *Pool) Busy() time.Duration {
	if p == nil {
		return 0
	}
	return time.Duration(p.busy.Load())
}

// WorkerPanic wraps a panic raised inside a ForEach body, carrying the item
// index so callers can attribute the failure to the work item (e.g. the
// function being analyzed). ForEach re-raises it in the caller.
type WorkerPanic struct {
	Index int
	Value any
}

// ForEach runs fn(i) for every i in [0, n), using at most p.Workers()
// goroutines, and returns once all calls have completed. Iteration order is
// unspecified when parallel; see the package comment for the determinism
// discipline callers must follow. A panic in fn is re-raised in the caller
// as a WorkerPanic identifying the item.
func (p *Pool) ForEach(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if p == nil || p.workers <= 1 || n == 1 {
		start := time.Now()
		if p != nil {
			defer func() { p.busy.Add(int64(time.Since(start))) }()
		}
		for i := 0; i < n; i++ {
			func() {
				defer wrapPanic(i)
				fn(i)
			}()
		}
		return
	}
	w := min(p.workers, n)
	var next atomic.Int64
	var panicked atomic.Pointer[WorkerPanic]
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			start := time.Now()
			defer func() {
				p.busy.Add(int64(time.Since(start)))
				wg.Done()
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				// Recover per item (not per worker) so the panic carries the
				// item index and one bad item doesn't strand the worker's
				// remaining share; the first panic wins and is re-raised.
				func() {
					defer func() {
						if e := recover(); e != nil {
							panicked.CompareAndSwap(nil, &WorkerPanic{Index: i, Value: e})
						}
					}()
					fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	if pv := panicked.Load(); pv != nil {
		panic(*pv)
	}
}

// wrapPanic converts a panic escaping fn(i) on the serial path into the
// same WorkerPanic the parallel path raises.
func wrapPanic(i int) {
	if e := recover(); e != nil {
		panic(WorkerPanic{Index: i, Value: e})
	}
}
