// Package threaded defines the low-level threaded code this compiler
// generates (the analog of the paper's Threaded-C target) and the code
// generator from SIMPLE form. The code is a flat register/frame bytecode
// with split-phase EARTH operations: remote reads and writes are issued
// asynchronously (get/put/blkmov), a frame slot filled by a get carries a
// presence bit, and an instruction that consumes a pending slot suspends its
// fiber until the reply arrives — exactly the fetch-and-continue model of
// EARTH, which is what lets early-issued communication overlap computation.
package threaded

import (
	"fmt"
	"strings"

	"repro/internal/earthc"
)

// Op is a bytecode opcode.
type Op int

// Opcodes.
const (
	OpNop Op = iota
	// Local data movement and arithmetic.
	OpMove    // frame[A] = frame[B]
	OpLoadImm // frame[A] = Imm (raw bits)
	OpBin     // frame[A] = frame[B] <BOp> frame[C]; Flt selects float semantics
	OpUn      // frame[A] = <UOp> frame[B]
	OpConvIF  // frame[A] = double(int frame[B])
	OpConvFI  // frame[A] = int(double frame[B]) (truncation)
	// Control flow.
	OpJmp      // pc = C
	OpJmpIf    // if frame[A] != 0: pc = C
	OpJmpIfNot // if frame[A] == 0: pc = C
	OpJmpEq    // if frame[A] == Imm: pc = C (switch dispatch)
	// Frame-local aggregate access (struct/array locals).
	OpLocalLoad     // frame[A] = frame[B+C]
	OpLocalStore    // frame[B+C] = frame[A]
	OpLocalLoadIdx  // frame[A] = frame[B + C + frame[D]*Imm]
	OpLocalStoreIdx // frame[B + C + frame[D]*Imm] = frame[A]
	OpMemCopyLocal  // frame[A..A+D) = frame[B..B+D)
	OpAddrLocal     // frame[A] = global address of frame slot B+C
	OpFieldAddr     // frame[A] = frame[B] + C (pointer arithmetic)
	// EARTH split-phase operations.
	OpGet    // frame[A] <- mem[frame[B] + C], split-phase (A becomes pending)
	OpPut    // mem[frame[B] + C] <- frame[A], split-phase (outstanding write)
	OpBlkGet // frame[A..A+D) <- mem[frame[B]+C ..], split-phase block read
	OpBlkPut // mem[frame[B]+C ..] <- frame[A..A+D), split-phase block write
	OpFence  // wait until all outstanding writes/acks of this fiber arrive
	// Memory management.
	OpAlloc // frame[A] = allocate C words on node frame[B] (B == -1: here)
	// Calls and parallelism.
	OpCall   // frame[A] = Fn(Args...); local, same fiber (A == -1: void)
	OpCallAt // like OpCall but runs at a remote node (split-phase RPC):
	//            B = placement kind (0 owner-of, 1 on, 2 home), C = place reg
	OpSpawnArm  // spawn Fn as a fiber sharing this frame (parallel sequence arm)
	OpSpawnIter // spawn Fn as a fiber with a copy of this frame (forall body)
	OpJoin      // wait until all spawned children have completed
	OpRet       // return frame[A] (A == -1: void); fences, notifies waiter
	// Shared-variable atomic operations (serviced by the owner's SU).
	OpSharedRead  // frame[A] = atomic load  mem[frame[B]]
	OpSharedWrite // atomic store mem[frame[B]] = frame[A]
	OpSharedAdd   // atomic add   mem[frame[B]] += frame[A]; Flt for doubles
	// Builtins and environment.
	OpBuiltin // frame[A] = builtin(C)(frame[B]) — sqrt, fabs
	OpPrint   // print kind C of frame[B] (or Str)
	OpOwnerOf // frame[A] = node id owning address frame[B]
	OpMyNode  // frame[A] = executing node
	OpNumNodes
	// Profiling.
	OpProbe // record event kind C (site Site, aux D) in the run profile
)

// Probe kinds (OpProbe.C) recorded against the instruction's Site key.
const (
	ProbeLoopEnter   = iota // arrival at a loop statement
	ProbeLoopTrip           // one loop body execution
	ProbeBranchEnter        // arrival at an if statement
	ProbeBranchThen         // then-alternative taken
	ProbeSwitchEnter        // arrival at a switch statement
	ProbeSwitchCase         // case D (declaration order) taken
)

var opNames = map[Op]string{
	OpNop: "nop", OpMove: "move", OpLoadImm: "imm", OpBin: "bin", OpUn: "un",
	OpConvIF: "convif", OpConvFI: "convfi",
	OpJmp: "jmp", OpJmpIf: "jif", OpJmpIfNot: "jifn", OpJmpEq: "jeq",
	OpLocalLoad: "lload", OpLocalStore: "lstore",
	OpLocalLoadIdx: "lloadx", OpLocalStoreIdx: "lstorex",
	OpMemCopyLocal: "lcopy", OpAddrLocal: "addrl", OpFieldAddr: "faddr",
	OpGet: "get", OpPut: "put", OpBlkGet: "blkget", OpBlkPut: "blkput",
	OpFence: "fence", OpAlloc: "alloc",
	OpCall: "call", OpCallAt: "callat",
	OpSpawnArm: "spawnarm", OpSpawnIter: "spawniter", OpJoin: "join",
	OpRet: "ret", OpSharedRead: "shread", OpSharedWrite: "shwrite",
	OpSharedAdd: "shadd", OpBuiltin: "builtin", OpPrint: "print",
	OpOwnerOf: "ownerof", OpMyNode: "mynode", OpNumNodes: "numnodes",
	OpProbe: "probe",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op%d", int(o))
}

// Builtin codes for OpBuiltin.
const (
	BSqrt = iota
	BFabs
)

// Print kinds for OpPrint.
const (
	PrintInt = iota
	PrintDouble
	PrintChar
	PrintStr
)

// Instr is one bytecode instruction.
type Instr struct {
	Op   Op
	A    int // usually the destination frame slot
	B    int
	C    int
	D    int
	Imm  int64
	BOp  earthc.BinOp
	UOp  earthc.UnOp
	Flt  bool
	Fn   *FnCode
	Args []int
	Str  string
	// Site is the profiling site key this instruction reports under (probes
	// and instrumented remote accesses; "" otherwise). See internal/profile.
	Site string
}

// String disassembles the instruction.
func (in Instr) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s", in.Op)
	fmt.Fprintf(&b, " A=%d B=%d C=%d D=%d", in.A, in.B, in.C, in.D)
	if in.Imm != 0 {
		fmt.Fprintf(&b, " imm=%d", in.Imm)
	}
	if in.Fn != nil {
		fmt.Fprintf(&b, " fn=%s", in.Fn.Name)
	}
	if len(in.Args) > 0 {
		fmt.Fprintf(&b, " args=%v", in.Args)
	}
	if in.Str != "" {
		fmt.Fprintf(&b, " str=%q", in.Str)
	}
	if in.Site != "" {
		fmt.Fprintf(&b, " site=%s", in.Site)
	}
	return b.String()
}

// FnCode is a compiled function (or compiler-generated fiber body for a
// parallel-sequence arm or forall iteration).
type FnCode struct {
	Name   string
	NSlots int   // frame size in words
	Params []int // parameter slot indices, in order
	Code   []Instr
	// FloatSlots marks slots holding doubles (for printing/debugging only;
	// execution is untyped raw words).
	IsArm bool // shares the spawner's frame
}

// Disasm renders the function's code.
func (f *FnCode) Disasm() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (slots=%d params=%v)\n", f.Name, f.NSlots, f.Params)
	for i, in := range f.Code {
		fmt.Fprintf(&b, "  %4d: %s\n", i, in.String())
	}
	return b.String()
}

// Program is a compiled threaded program.
type Program struct {
	Funcs map[string]*FnCode
	Main  *FnCode
	// GlobalWords is the size of the global segment (resident on node 0).
	GlobalWords int
	// GlobalInit lists (offset, raw word) pairs applied at load time.
	GlobalInit [][2]int64
	// GlobalSlot maps global variable names to offsets in the segment.
	GlobalSlot map[string]int
	// SharedGlobals marks globals that are EARTH-C shared variables.
	SharedGlobals map[string]bool
	// Profiled records that the code carries profiling probes and site
	// tags; the simulator then collects a Profile alongside Counts.
	Profiled bool
}
