package threaded

import (
	"fmt"
	"math"

	"repro/internal/earthc"
	"repro/internal/locality"
	"repro/internal/simple"
)

// Options control code generation.
type Options struct {
	// Sequential produces the paper's "truly sequential" baseline: parallel
	// constructs are serialized, placed calls become plain calls, and every
	// memory access is a direct local access with no EARTH runtime calls.
	// Such code is only valid on a 1-node machine.
	Sequential bool
	// Profile emits profiling probes at compound statements and tags
	// remote-access instructions with their site keys, so a simulator run
	// collects a profile.Data (see internal/profile) alongside Counts.
	Profile bool
}

// Additional direct-memory opcodes used for local (or sequential-mode)
// accesses: these bypass the EARTH runtime and cost only a local memory
// access.
const (
	OpMemLoad    Op = 100 + iota // frame[A] = mem[frame[B]+C] (must be local)
	OpMemStore                   // mem[frame[B]+C] = frame[A]
	OpMemToFrame                 // frame[A..A+D) = mem[frame[B]+C..]
	OpFrameToMem                 // mem[frame[B]+C..] = frame[A..A+D)
	OpMemCopyMem                 // mem[frame[B]+C..] -> mem[frame[A]+D..), Imm words
)

func init() {
	opNames[OpMemLoad] = "mload"
	opNames[OpMemStore] = "mstore"
	opNames[OpMemToFrame] = "m2f"
	opNames[OpFrameToMem] = "f2m"
	opNames[OpMemCopyMem] = "m2m"
}

// Generate compiles a SIMPLE program to threaded code. loc may be nil (all
// pointers treated as possibly remote).
func Generate(prog *simple.Program, loc *locality.Result, opt Options) (*Program, error) {
	g := &gen{prog: prog, loc: loc, opt: opt,
		globalOff: make(map[*simple.Var]int),
		out: &Program{
			Funcs:         make(map[string]*FnCode),
			GlobalSlot:    make(map[string]int),
			SharedGlobals: make(map[string]bool),
			Profiled:      opt.Profile,
		}}
	for _, gv := range prog.Globals {
		g.out.GlobalSlot[gv.Name] = g.out.GlobalWords
		g.globalOff[gv] = g.out.GlobalWords
		if bits, ok := prog.GlobalInit[gv]; ok {
			g.out.GlobalInit = append(g.out.GlobalInit,
				[2]int64{int64(g.out.GlobalWords), bits})
		}
		g.out.GlobalWords += max(1, gv.Size)
		if gv.Shared {
			g.out.SharedGlobals[gv.Name] = true
		}
	}
	// Pre-create FnCode shells so calls can reference them.
	for _, f := range prog.Funcs {
		g.out.Funcs[f.Name] = &FnCode{Name: f.Name}
	}
	for _, f := range prog.Funcs {
		if err := g.fun(f); err != nil {
			return nil, err
		}
	}
	g.out.Main = g.out.Funcs["main"]
	if g.out.Main == nil {
		return nil, fmt.Errorf("threaded: program has no main function")
	}
	return g.out, nil
}

type gen struct {
	prog *simple.Program
	loc  *locality.Result
	opt  Options
	out  *Program
	// globalOff maps global variables to their word offsets in the global
	// segment (resident on node 0).
	globalOff map[*simple.Var]int

	fn    *simple.Func
	fc    *FnCode
	slots map[*simple.Var]int
	// curSite is the profiling site key of the basic statement being
	// compiled (set only under opt.Profile); remote-access instructions
	// emitted for it carry the key so the simulator can attribute ops.
	curSite string
	// family collects the fiber bodies (forall iterations, parallel arms)
	// created while compiling the current function; they share the
	// function's frame layout, so their NSlots are unified to the final
	// frame size at the end of fun().
	family []*FnCode
	err    error
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func (g *gen) errorf(format string, args ...any) {
	if g.err == nil {
		g.err = fmt.Errorf("threaded: %s: %s", g.fn.Name, fmt.Sprintf(format, args...))
	}
}

func (g *gen) fun(f *simple.Func) error {
	g.fn = f
	g.fc = g.out.Funcs[f.Name]
	g.slots = make(map[*simple.Var]int)
	n := 0
	for _, p := range f.Params {
		g.slots[p] = n
		g.fc.Params = append(g.fc.Params, n)
		n += max(1, p.Size)
	}
	var sharedLocals []*simple.Var
	for _, l := range f.Locals {
		g.slots[l] = n
		if l.Shared {
			// Shared locals live in node heap storage so that fibers
			// holding frame copies (forall iterations) still reach the one
			// shared cell; the frame slot holds its address.
			n++
			sharedLocals = append(sharedLocals, l)
		} else {
			n += max(1, l.Size)
		}
	}
	g.fc.NSlots = n
	for _, l := range sharedLocals {
		g.emit(g.fc, Instr{Op: OpAlloc, A: g.slots[l], B: -1, C: max(1, l.Size)})
	}
	g.family = nil
	g.seq(g.fc, f.Body)
	// Implicit return at end.
	g.emit(g.fc, Instr{Op: OpRet, A: -1})
	// Spawned bodies share this function's frame layout; unify sizes so
	// frame copies and aliases cover the whole final frame.
	for _, child := range g.family {
		child.NSlots = g.fc.NSlots
	}
	return g.err
}

func (g *gen) emit(fc *FnCode, in Instr) int {
	fc.Code = append(fc.Code, in)
	return len(fc.Code) - 1
}

// scratch allocates a fresh frame slot.
func (g *gen) scratch() int {
	s := g.fc.NSlots
	g.fc.NSlots++
	return s
}

// slot returns the frame slot of a variable; globals have no slot.
func (g *gen) slot(v *simple.Var) int {
	if s, ok := g.slots[v]; ok {
		return s
	}
	g.errorf("variable %s has no frame slot (global used as ordinary operand?)", v.Name)
	return 0
}

func (g *gen) isGlobal(v *simple.Var) bool {
	_, ok := g.globalOff[v]
	return ok
}

// atom materializes an atom into a frame slot of fc.
func (g *gen) atom(fc *FnCode, a simple.Atom) int {
	switch x := a.(type) {
	case simple.VarAtom:
		if g.isGlobal(x.V) {
			return g.globalRead(fc, x.V)
		}
		return g.slot(x.V)
	case simple.IntAtom:
		s := g.scratch()
		g.emit(fc, Instr{Op: OpLoadImm, A: s, Imm: x.Val})
		return s
	case simple.FloatAtom:
		s := g.scratch()
		g.emit(fc, Instr{Op: OpLoadImm, A: s, Imm: int64(math.Float64bits(x.Val))})
		return s
	case simple.NullAtom:
		s := g.scratch()
		g.emit(fc, Instr{Op: OpLoadImm, A: s, Imm: 0})
		return s
	}
	g.errorf("unknown atom %T", a)
	return 0
}

// globalAddr emits code producing the global segment address of v.
func (g *gen) globalAddr(fc *FnCode, v *simple.Var) int {
	s := g.scratch()
	g.emit(fc, Instr{Op: OpLoadImm, A: s, Imm: GlobalAddress(g.globalOff[v])})
	return s
}

// globalRead loads an ordinary global (resident on node 0; remote from
// other nodes, synchronizing at first use).
func (g *gen) globalRead(fc *FnCode, v *simple.Var) int {
	addr := g.globalAddr(fc, v)
	dst := g.scratch()
	if g.opt.Sequential {
		g.emit(fc, Instr{Op: OpMemLoad, A: dst, B: addr, C: 0})
	} else {
		g.emit(fc, Instr{Op: OpGet, A: dst, B: addr, C: 0})
	}
	return dst
}

func (g *gen) globalWrite(fc *FnCode, v *simple.Var, val int) {
	addr := g.globalAddr(fc, v)
	if g.opt.Sequential {
		g.emit(fc, Instr{Op: OpMemStore, A: val, B: addr, C: 0})
	} else {
		g.emit(fc, Instr{Op: OpPut, A: val, B: addr, C: 0})
	}
}

// remotePtr reports whether dereferences through p use the EARTH runtime.
func (g *gen) remotePtr(p *simple.Var) bool {
	if g.opt.Sequential {
		return false
	}
	if g.loc == nil {
		return true
	}
	return g.loc.RemoteLoad(p)
}

func isDoubleVar(v *simple.Var) bool {
	pt, ok := v.Type.(*earthc.PrimType)
	return ok && pt.Kind == earthc.Double
}

func atomIsDouble(a simple.Atom) bool {
	switch x := a.(type) {
	case simple.VarAtom:
		return isDoubleVar(x.V)
	case simple.FloatAtom:
		return true
	}
	return false
}
