package threaded

// Global address packing for the distributed memory: an address is
// (node+1) << 40 | offset. Address 0 is the null pointer. The global
// variable segment occupies the low offsets of node 0's memory.

// PackAddr builds a global address from a node id and word offset.
func PackAddr(node int, off int64) int64 { return int64(node+1)<<40 | off }

// AddrNode extracts the owning node of an address (-1 for null/invalid).
func AddrNode(addr int64) int { return int(addr>>40) - 1 }

// AddrOff extracts the word offset within the owning node's memory.
func AddrOff(addr int64) int64 { return addr & ((1 << 40) - 1) }

// GlobalAddress returns the address of a global-segment word.
func GlobalAddress(off int) int64 { return PackAddr(0, int64(off)) }
