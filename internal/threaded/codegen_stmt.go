package threaded

import (
	"fmt"

	"repro/internal/earthc"
	"repro/internal/sema"
	"repro/internal/simple"
)

func (g *gen) seq(fc *FnCode, s *simple.Seq) {
	for _, st := range s.Stmts {
		g.stmt(fc, st)
	}
}

// probe emits a profiling probe for a compound-statement site (no-op unless
// profiling is on and the statement carries a site ID).
func (g *gen) probe(fc *FnCode, kind int, site int, aux int) {
	if !g.opt.Profile || site == 0 {
		return
	}
	g.emit(fc, Instr{Op: OpProbe, C: kind, D: aux,
		Site: simple.CompoundSiteKey(g.fn.Name, site)})
}

func (g *gen) stmt(fc *FnCode, st simple.Stmt) {
	if g.err != nil {
		return
	}
	switch c := st.(type) {
	case *simple.Basic:
		g.basic(fc, c)
	case *simple.Seq:
		g.seq(fc, c)
	case *simple.If:
		g.probe(fc, ProbeBranchEnter, c.Site, 0)
		cond := g.cond(fc, c.Cond)
		jElse := g.emit(fc, Instr{Op: OpJmpIfNot, A: cond})
		g.probe(fc, ProbeBranchThen, c.Site, 0)
		g.seq(fc, c.Then)
		if len(c.Else.Stmts) == 0 {
			fc.Code[jElse].C = len(fc.Code)
			return
		}
		jEnd := g.emit(fc, Instr{Op: OpJmp})
		fc.Code[jElse].C = len(fc.Code)
		g.seq(fc, c.Else)
		fc.Code[jEnd].C = len(fc.Code)
	case *simple.Switch:
		g.switchStmt(fc, c)
	case *simple.While:
		g.probe(fc, ProbeLoopEnter, c.Site, 0)
		top := len(fc.Code)
		g.seq(fc, c.Eval)
		cond := g.cond(fc, c.Cond)
		jEnd := g.emit(fc, Instr{Op: OpJmpIfNot, A: cond})
		g.probe(fc, ProbeLoopTrip, c.Site, 0)
		g.seq(fc, c.Body)
		g.emit(fc, Instr{Op: OpJmp, C: top})
		fc.Code[jEnd].C = len(fc.Code)
	case *simple.Do:
		g.probe(fc, ProbeLoopEnter, c.Site, 0)
		top := len(fc.Code)
		g.probe(fc, ProbeLoopTrip, c.Site, 0)
		g.seq(fc, c.Body)
		g.seq(fc, c.Eval)
		cond := g.cond(fc, c.Cond)
		g.emit(fc, Instr{Op: OpJmpIf, A: cond, C: top})
	case *simple.Forall:
		g.forall(fc, c)
	case *simple.Par:
		g.par(fc, c)
	default:
		g.errorf("cannot generate code for %T", st)
	}
}

// cond evaluates a condition into a 0/1 slot.
func (g *gen) cond(fc *FnCode, c simple.Cond) int {
	x := g.atom(fc, c.X)
	if c.Op == simple.TruthTest {
		return x
	}
	y := g.atom(fc, c.Y)
	dst := g.scratch()
	g.emit(fc, Instr{Op: OpBin, A: dst, B: x, C: y, BOp: c.Op,
		Flt: atomIsDouble(c.X) || atomIsDouble(c.Y)})
	return dst
}

func (g *gen) switchStmt(fc *FnCode, c *simple.Switch) {
	g.probe(fc, ProbeSwitchEnter, c.Site, 0)
	tag := g.atom(fc, c.Tag)
	type caseRef struct {
		jumps []int // OpJmpEq indices
		body  *simple.Seq
	}
	var refs []caseRef
	defaultIdx := -1
	for i, cc := range c.Cases {
		if cc.Vals == nil {
			defaultIdx = i
			refs = append(refs, caseRef{body: cc.Body})
			continue
		}
		r := caseRef{body: cc.Body}
		for _, v := range cc.Vals {
			r.jumps = append(r.jumps, g.emit(fc, Instr{Op: OpJmpEq, A: tag, Imm: v}))
		}
		refs = append(refs, r)
	}
	jDefault := g.emit(fc, Instr{Op: OpJmp}) // falls to default or end
	var ends []int
	for i, r := range refs {
		start := len(fc.Code)
		g.probe(fc, ProbeSwitchCase, c.Site, i) // jumps land on the probe
		for _, j := range r.jumps {
			fc.Code[j].C = start
		}
		if i == defaultIdx {
			fc.Code[jDefault].C = start
		}
		g.seq(fc, r.body)
		ends = append(ends, g.emit(fc, Instr{Op: OpJmp}))
	}
	end := len(fc.Code)
	if defaultIdx == -1 {
		fc.Code[jDefault].C = end
	}
	for _, e := range ends {
		fc.Code[e].C = end
	}
}

// forall compiles a parallel loop: iterations are spawned as fibers with a
// copy of the frame and joined at the end. In sequential mode the loop is
// serialized.
func (g *gen) forall(fc *FnCode, c *simple.Forall) {
	if g.opt.Sequential {
		g.probe(fc, ProbeLoopEnter, c.Site, 0)
		top := len(fc.Code)
		g.seq(fc, c.Eval)
		cond := g.cond(fc, c.Cond)
		jEnd := g.emit(fc, Instr{Op: OpJmpIfNot, A: cond})
		g.probe(fc, ProbeLoopTrip, c.Site, 0)
		g.seq(fc, c.Body)
		g.seq(fc, c.Step)
		g.emit(fc, Instr{Op: OpJmp, C: top})
		fc.Code[jEnd].C = len(fc.Code)
		return
	}
	if g.hasReturn(c.Body) {
		g.errorf("return inside a forall body is not supported")
		return
	}
	body := &FnCode{Name: fmt.Sprintf("%s$forall%d", g.fn.Name, len(g.out.Funcs))}
	g.out.Funcs[body.Name] = body
	g.family = append(g.family, body)
	saved := g.fc
	g.fc = body
	body.NSlots = saved.NSlots // shares the frame layout (copied at spawn)
	g.seq(body, c.Body)
	g.emit(body, Instr{Op: OpRet, A: -1})
	// Body codegen may have allocated scratch past the parent's count; the
	// parent frame must be at least that large so the copy covers it.
	if body.NSlots > saved.NSlots {
		saved.NSlots = body.NSlots
	}
	g.fc = saved

	g.probe(fc, ProbeLoopEnter, c.Site, 0)
	top := len(fc.Code)
	g.seq(fc, c.Eval)
	cond := g.cond(fc, c.Cond)
	jEnd := g.emit(fc, Instr{Op: OpJmpIfNot, A: cond})
	g.probe(fc, ProbeLoopTrip, c.Site, 0)
	g.emit(fc, Instr{Op: OpSpawnIter, Fn: body})
	g.seq(fc, c.Step)
	g.emit(fc, Instr{Op: OpJmp, C: top})
	fc.Code[jEnd].C = len(fc.Code)
	g.emit(fc, Instr{Op: OpJoin})
}

// par compiles a parallel statement sequence: arms run as fibers sharing the
// parent frame (the parent is suspended at the join, and EARTH-C requires
// arms not to interfere on ordinary variables).
func (g *gen) par(fc *FnCode, c *simple.Par) {
	if g.opt.Sequential {
		for _, arm := range c.Arms {
			g.seq(fc, arm)
		}
		return
	}
	var armFns []*FnCode
	for i, arm := range c.Arms {
		if g.hasReturnSeq(arm) {
			g.errorf("return inside a parallel sequence arm is not supported")
			return
		}
		af := &FnCode{Name: fmt.Sprintf("%s$arm%d_%d", g.fn.Name, len(g.out.Funcs), i), IsArm: true}
		g.out.Funcs[af.Name] = af
		g.family = append(g.family, af)
		saved := g.fc
		g.fc = af
		af.NSlots = saved.NSlots
		g.seq(af, arm)
		g.emit(af, Instr{Op: OpRet, A: -1})
		if af.NSlots > saved.NSlots {
			saved.NSlots = af.NSlots
		}
		g.fc = saved
		armFns = append(armFns, af)
	}
	// Arm frames alias the parent frame, so the parent frame must cover the
	// largest arm (scratch growth above already ensured that); arms also
	// must not reuse each other's scratch slots, which holds because every
	// scratch allocation is fresh.
	for _, af := range armFns {
		g.emit(fc, Instr{Op: OpSpawnArm, Fn: af})
	}
	g.emit(fc, Instr{Op: OpJoin})
}

func (g *gen) hasReturn(s *simple.Seq) bool { return g.hasReturnSeq(s) }

func (g *gen) hasReturnSeq(s *simple.Seq) bool {
	found := false
	simple.WalkBasics(s, func(b *simple.Basic) {
		if b.Kind == simple.KReturn {
			found = true
		}
	})
	return found
}

// ------------------------------------------------------------------ basics ---

func (g *gen) basic(fc *FnCode, b *simple.Basic) {
	// Remote-access instructions emitted for this statement report under
	// its Si label; profile keys (internal/profile) and trace attribution
	// (internal/trace) share the same site namespace.
	g.curSite = simple.BasicSiteKey(g.fn.Name, b.Label)
	defer func() { g.curSite = "" }()
	switch b.Kind {
	case simple.KAssign:
		g.assign(fc, b)
	case simple.KCall:
		g.call(fc, b)
	case simple.KBuiltin:
		g.builtin(fc, b)
	case simple.KAlloc:
		node := -1
		if b.Node != nil {
			node = g.atom(fc, b.Node)
		}
		dst := g.dstSlot(fc, b.Dst)
		g.emit(fc, Instr{Op: OpAlloc, A: dst, B: node, C: b.AllocSize, Site: g.curSite})
	case simple.KReturn:
		val := -1
		if b.Val != nil {
			val = g.atom(fc, b.Val)
		}
		g.emit(fc, Instr{Op: OpRet, A: val})
	case simple.KBlkCopy:
		g.blkCopy(fc, b)
	case simple.KGetF:
		dst := g.dstSlot(fc, b.Dst)
		p := g.slot(b.P)
		if g.remotePtr(b.P) {
			g.emit(fc, Instr{Op: OpGet, A: dst, B: p, C: b.Off, Site: g.curSite})
		} else {
			g.emit(fc, Instr{Op: OpMemLoad, A: dst, B: p, C: b.Off, Site: g.curSite})
		}
	case simple.KPutF:
		var val int
		if b.Val != nil {
			val = g.atom(fc, b.Val)
		} else {
			val = g.scratch()
			g.emit(fc, Instr{Op: OpLocalLoad, A: val, B: g.slot(b.Local), C: b.Off2})
		}
		p := g.slot(b.P)
		if g.remotePtr(b.P) {
			g.emit(fc, Instr{Op: OpPut, A: val, B: p, C: b.Off, Site: g.curSite})
		} else {
			g.emit(fc, Instr{Op: OpMemStore, A: val, B: p, C: b.Off, Site: g.curSite})
		}
	case simple.KBlkRead:
		// The buffer slot is offset by the span base so buffer field
		// offsets stay aligned with the struct's.
		p := g.slot(b.P)
		local := g.slot(b.Local) + b.Off
		if g.remotePtr(b.P) {
			g.emit(fc, Instr{Op: OpBlkGet, A: local, B: p, C: b.Off, D: b.Size, Site: g.curSite})
		} else {
			g.emit(fc, Instr{Op: OpMemToFrame, A: local, B: p, C: b.Off, D: b.Size})
		}
	case simple.KBlkWrite:
		p := g.slot(b.P)
		local := g.slot(b.Local) + b.Off
		if g.remotePtr(b.P) {
			g.emit(fc, Instr{Op: OpBlkPut, A: local, B: p, C: b.Off, D: b.Size, Site: g.curSite})
		} else {
			g.emit(fc, Instr{Op: OpFrameToMem, A: local, B: p, C: b.Off, D: b.Size})
		}
	default:
		g.errorf("cannot generate basic kind %d", b.Kind)
	}
}

// dstSlot returns the slot for a destination variable (creating a scratch
// slot for a discarded destination, and handling global destinations via a
// post-store).
func (g *gen) dstSlot(fc *FnCode, v *simple.Var) int {
	if v == nil {
		return g.scratch()
	}
	if g.isGlobal(v) {
		// Rare: a call/alloc result stored to a global; stage via scratch.
		s := g.scratch()
		// The caller must emit the store afterwards; keep it simple by
		// disallowing (benchmarks do not do this).
		g.errorf("storing results directly into global %s is not supported", v.Name)
		return s
	}
	return g.slot(v)
}

func (g *gen) assign(fc *FnCode, b *simple.Basic) {
	// Destination: variable, remote store, or local aggregate store.
	switch lhs := b.Lhs.(type) {
	case simple.VarLV:
		if g.isGlobal(lhs.V) {
			val := g.rvalue(fc, b.Rhs, lhs.V)
			g.globalWrite(fc, lhs.V, val)
			return
		}
		val := g.rvalueInto(fc, b.Rhs, g.slot(lhs.V), lhs.V)
		_ = val
	case simple.StoreLV:
		val := g.rvalue(fc, b.Rhs, nil)
		p := g.slot(lhs.P)
		if g.remotePtr(lhs.P) {
			g.emit(fc, Instr{Op: OpPut, A: val, B: p, C: lhs.Off, Site: g.curSite})
		} else {
			g.emit(fc, Instr{Op: OpMemStore, A: val, B: p, C: lhs.Off, Site: g.curSite})
		}
	case simple.LocalStoreLV:
		val := g.rvalue(fc, b.Rhs, nil)
		base := g.slot(lhs.Base)
		if lhs.Idx != nil {
			idx := g.atom(fc, lhs.Idx)
			g.emit(fc, Instr{Op: OpLocalStoreIdx, A: val, B: base, C: lhs.Off,
				D: idx, Imm: int64(max(1, lhs.Scale))})
		} else {
			g.emit(fc, Instr{Op: OpLocalStore, A: val, B: base, C: lhs.Off})
		}
	default:
		g.errorf("unknown lvalue %T", b.Lhs)
	}
}

// rvalue evaluates an rvalue into a (possibly fresh) slot and returns it.
// dstVar, when non-nil, is the variable being assigned (used for float
// typing of unary/binary ops).
func (g *gen) rvalue(fc *FnCode, rv simple.Rvalue, dstVar *simple.Var) int {
	return g.rvalueInto(fc, rv, -1, dstVar)
}

// rvalueInto evaluates rv into the given slot (or a fresh one when slot is
// -1) and returns the slot used.
func (g *gen) rvalueInto(fc *FnCode, rv simple.Rvalue, slot int, dstVar *simple.Var) int {
	dst := func() int {
		if slot >= 0 {
			return slot
		}
		return g.scratch()
	}
	switch x := rv.(type) {
	case simple.AtomRV:
		src := g.atom(fc, x.A)
		if slot < 0 {
			return src
		}
		if src != slot {
			g.emit(fc, Instr{Op: OpMove, A: slot, B: src})
		}
		return slot
	case simple.UnaryRV:
		d := dst()
		g.emit(fc, Instr{Op: OpUn, A: d, B: g.atom(fc, x.X), UOp: x.Op,
			Flt: atomIsDouble(x.X) || isDoubleVar2(dstVar)})
		return d
	case simple.BinaryRV:
		bx := g.atom(fc, x.X)
		by := g.atom(fc, x.Y)
		d := dst()
		g.emit(fc, Instr{Op: OpBin, A: d, B: bx, C: by, BOp: x.Op,
			Flt: atomIsDouble(x.X) || atomIsDouble(x.Y)})
		return d
	case simple.LoadRV:
		d := dst()
		p := g.slot(x.P)
		if g.remotePtr(x.P) {
			g.emit(fc, Instr{Op: OpGet, A: d, B: p, C: x.Off, Site: g.curSite})
		} else {
			g.emit(fc, Instr{Op: OpMemLoad, A: d, B: p, C: x.Off, Site: g.curSite})
		}
		return d
	case simple.LocalLoadRV:
		d := dst()
		base := g.slot(x.Base)
		if x.Idx != nil {
			idx := g.atom(fc, x.Idx)
			g.emit(fc, Instr{Op: OpLocalLoadIdx, A: d, B: base, C: x.Off,
				D: idx, Imm: int64(max(1, x.Scale))})
		} else {
			g.emit(fc, Instr{Op: OpLocalLoad, A: d, B: base, C: x.Off})
		}
		return d
	case simple.AddrRV:
		d := dst()
		if g.isGlobal(x.X) {
			g.emit(fc, Instr{Op: OpLoadImm, A: d,
				Imm: GlobalAddress(g.globalOff[x.X] + x.Off)})
		} else {
			g.emit(fc, Instr{Op: OpAddrLocal, A: d, B: g.slot(x.X), C: x.Off})
		}
		return d
	case simple.FieldAddrRV:
		d := dst()
		g.emit(fc, Instr{Op: OpFieldAddr, A: d, B: g.slot(x.P), C: x.Off})
		return d
	}
	g.errorf("unknown rvalue %T", rv)
	return 0
}

func isDoubleVar2(v *simple.Var) bool { return v != nil && isDoubleVar(v) }

func (g *gen) blkCopy(fc *FnCode, b *simple.Basic) {
	switch {
	case b.P != nil && b.Dst != nil: // memory -> frame
		p := g.slot(b.P)
		if g.remotePtr(b.P) {
			g.emit(fc, Instr{Op: OpBlkGet, A: g.slot(b.Dst) + b.Off2, B: p, C: b.Off, D: b.Size, Site: g.curSite})
		} else {
			g.emit(fc, Instr{Op: OpMemToFrame, A: g.slot(b.Dst) + b.Off2, B: p, C: b.Off, D: b.Size})
		}
	case b.Local != nil && b.P2 != nil: // frame -> memory
		p := g.slot(b.P2)
		if g.remotePtr(b.P2) {
			g.emit(fc, Instr{Op: OpBlkPut, A: g.slot(b.Local) + b.Off, B: p, C: b.Off2, D: b.Size, Site: g.curSite})
		} else {
			g.emit(fc, Instr{Op: OpFrameToMem, A: g.slot(b.Local) + b.Off, B: p, C: b.Off2, D: b.Size})
		}
	case b.Local != nil && b.Dst != nil: // frame -> frame
		g.emit(fc, Instr{Op: OpMemCopyLocal,
			A: g.slot(b.Dst) + b.Off2, B: g.slot(b.Local) + b.Off, D: b.Size})
	case b.P != nil && b.P2 != nil:
		// Lowering stages remote-to-remote copies through a frame buffer;
		// reaching here means both pointers are local.
		g.emit(fc, Instr{Op: OpMemCopyMem, A: g.slot(b.P2), D: b.Off2,
			B: g.slot(b.P), C: b.Off, Imm: int64(b.Size)})
	default:
		g.errorf("unsupported block copy combination")
	}
}

func (g *gen) call(fc *FnCode, b *simple.Basic) {
	callee := g.out.Funcs[b.Fun]
	if callee == nil {
		g.errorf("call to unknown function %s", b.Fun)
		return
	}
	args := make([]int, len(b.Args))
	for i, a := range b.Args {
		args[i] = g.atom(fc, a)
	}
	dst := -1
	if b.Dst != nil {
		dst = g.slot(b.Dst)
	}
	if b.Place == nil || g.opt.Sequential {
		g.emit(fc, Instr{Op: OpCall, A: dst, Fn: callee, Args: args})
		return
	}
	in := Instr{Op: OpCallAt, A: dst, Fn: callee, Args: args, Site: g.curSite}
	switch b.Place.Kind {
	case earthc.PlaceOwnerOf:
		in.B = 0
		in.C = g.atom(fc, b.Place.Arg)
	case earthc.PlaceOn:
		in.B = 1
		in.C = g.atom(fc, b.Place.Arg)
	case earthc.PlaceHome:
		in.B = 2
	}
	g.emit(fc, in)
}

func (g *gen) builtin(fc *FnCode, b *simple.Basic) {
	bi := sema.Builtin(b.BFun)
	switch bi {
	case sema.BWriteTo, sema.BAddTo, sema.BValueOf:
		sv := b.ArgVars[0]
		var addr int
		if g.isGlobal(sv) {
			addr = g.globalAddr(fc, sv)
		} else {
			// Shared locals hold the address of their heap cell in the
			// frame slot (see codegen.go prologue).
			addr = g.slot(sv)
		}
		switch bi {
		case sema.BWriteTo:
			val := g.atom(fc, b.Args[0])
			g.emit(fc, Instr{Op: OpSharedWrite, A: val, B: addr, Site: g.curSite})
		case sema.BAddTo:
			val := g.atom(fc, b.Args[0])
			g.emit(fc, Instr{Op: OpSharedAdd, A: val, B: addr, Flt: isDoubleVar(sv), Site: g.curSite})
		case sema.BValueOf:
			g.emit(fc, Instr{Op: OpSharedRead, A: g.dstSlot(fc, b.Dst), B: addr, Site: g.curSite})
		}
	case sema.BSqrt:
		g.emit(fc, Instr{Op: OpBuiltin, A: g.dstSlot(fc, b.Dst),
			B: g.atom(fc, b.Args[0]), C: BSqrt})
	case sema.BFabs:
		g.emit(fc, Instr{Op: OpBuiltin, A: g.dstSlot(fc, b.Dst),
			B: g.atom(fc, b.Args[0]), C: BFabs})
	case sema.BDbl:
		g.emit(fc, Instr{Op: OpConvIF, A: g.dstSlot(fc, b.Dst), B: g.atom(fc, b.Args[0])})
	case sema.BTrunc:
		g.emit(fc, Instr{Op: OpConvFI, A: g.dstSlot(fc, b.Dst), B: g.atom(fc, b.Args[0])})
	case sema.BPrintInt:
		g.emit(fc, Instr{Op: OpPrint, B: g.atom(fc, b.Args[0]), C: PrintInt})
	case sema.BPrintDouble:
		g.emit(fc, Instr{Op: OpPrint, B: g.atom(fc, b.Args[0]), C: PrintDouble})
	case sema.BPrintChar:
		g.emit(fc, Instr{Op: OpPrint, B: g.atom(fc, b.Args[0]), C: PrintChar})
	case sema.BPrintStr:
		g.emit(fc, Instr{Op: OpPrint, C: PrintStr, Str: b.StrArg})
	case sema.BOwnerOf:
		g.emit(fc, Instr{Op: OpOwnerOf, A: g.dstSlot(fc, b.Dst), B: g.atom(fc, b.Args[0])})
	case sema.BMyNode:
		g.emit(fc, Instr{Op: OpMyNode, A: g.dstSlot(fc, b.Dst)})
	case sema.BNumNodes:
		g.emit(fc, Instr{Op: OpNumNodes, A: g.dstSlot(fc, b.Dst)})
	default:
		g.errorf("unknown builtin %d", b.BFun)
	}
}
