package threaded_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/threaded"
)

func gen(t *testing.T, src string, seq bool) *threaded.Program {
	t.Helper()
	u, err := core.NewPipeline(core.Options{NoInline: true}).Compile("t.ec", src)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := u.Threaded(threaded.Options{Sequential: seq})
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func countOps(fc *threaded.FnCode, op threaded.Op) int {
	n := 0
	for _, in := range fc.Code {
		if in.Op == op {
			n++
		}
	}
	return n
}

func TestRemoteLoadsBecomeGets(t *testing.T) {
	tp := gen(t, `
struct P { int a; };
int g(P *p) { return p->a; }
int main() { return 0; }
`, false)
	g := tp.Funcs["g"]
	if countOps(g, threaded.OpGet) != 1 {
		t.Errorf("remote load should compile to OpGet:\n%s", g.Disasm())
	}
}

func TestLocalPointerLoadsAreDirect(t *testing.T) {
	tp := gen(t, `
struct P { int a; };
int g(P local *p) { return p->a; }
int main() { return 0; }
`, false)
	g := tp.Funcs["g"]
	if countOps(g, threaded.OpGet) != 0 {
		t.Errorf("local-pointer load must not use the runtime:\n%s", g.Disasm())
	}
	if countOps(g, threaded.OpMemLoad) != 1 {
		t.Errorf("local-pointer load should be a direct memory access:\n%s", g.Disasm())
	}
}

func TestSequentialModeHasNoRuntimeOps(t *testing.T) {
	tp := gen(t, `
struct P { int a; struct P *next; };
int main() {
	P *p;
	int s;
	int i;
	p = alloc(P);
	p->a = 2;
	s = 0;
	{^
		s = p->a;
	^}
	forall (i = 0; i < 3; i++) { }
	return s;
}
`, true)
	for name, fc := range tp.Funcs {
		for _, bad := range []threaded.Op{
			threaded.OpGet, threaded.OpPut, threaded.OpBlkGet, threaded.OpBlkPut,
			threaded.OpSpawnArm, threaded.OpSpawnIter, threaded.OpCallAt,
		} {
			if countOps(fc, bad) != 0 {
				t.Errorf("sequential build of %s contains %v:\n%s", name, bad, fc.Disasm())
			}
		}
	}
}

func TestParallelConstructsSpawn(t *testing.T) {
	tp := gen(t, `
int main() {
	int a;
	int b;
	int i;
	{^
		a = 1;
		b = 2;
	^}
	forall (i = 0; i < 3; i++) { a = 3; }
	return a + b;
}
`, false)
	m := tp.Main
	if countOps(m, threaded.OpSpawnArm) != 2 {
		t.Errorf("two parallel arms expected:\n%s", m.Disasm())
	}
	if countOps(m, threaded.OpSpawnIter) != 1 {
		t.Errorf("one iteration spawn site expected:\n%s", m.Disasm())
	}
	if countOps(m, threaded.OpJoin) != 2 {
		t.Errorf("two joins expected:\n%s", m.Disasm())
	}
}

// TestFrameFamilyUnified: spawned bodies share the spawner's frame layout,
// so their frame sizes must match exactly (regression test for the frame
// overrun bug).
func TestFrameFamilyUnified(t *testing.T) {
	tp := gen(t, `
struct C { int v; struct C *next; };
int main() {
	shared int s;
	C *head;
	C *p;
	int i;
	head = NULL;
	for (i = 0; i < 3; i++) {
		p = alloc(C);
		p->v = i;
		p->next = head;
		head = p;
	}
	writeto(&s, 0);
	forall (p = head; p != NULL; p = p->next) {
		addto(&s, p->v * 2 + 1);
	}
	return valueof(&s);
}
`, false)
	main := tp.Main
	for name, fc := range tp.Funcs {
		if fc == main || fc.Name == "nextrand" {
			continue
		}
		if len(name) > 4 && name[:4] == "main" {
			if fc.NSlots != main.NSlots {
				t.Errorf("%s frame size %d != main's %d (family must be unified)",
					name, fc.NSlots, main.NSlots)
			}
		}
	}
}

// TestArmScratchDisjoint: parallel arms share a frame; their scratch slots
// must not overlap (regression test for the arm-races bug).
func TestArmScratchDisjoint(t *testing.T) {
	tp := gen(t, `
int f(int x) { return x + 1; }
int main() {
	int a;
	int b;
	int c;
	int d;
	{^
		a = f(1) + f(2);
		b = f(3) + f(4);
		c = f(5) + f(6);
		d = f(7) + f(8);
	^}
	return a + b + c + d;
}
`, false)
	// Collect each arm's written slots (destination A of each op).
	written := map[string]map[int]bool{}
	for name, fc := range tp.Funcs {
		if !fc.IsArm {
			continue
		}
		set := map[int]bool{}
		for _, in := range fc.Code {
			switch in.Op {
			case threaded.OpMove, threaded.OpLoadImm, threaded.OpBin, threaded.OpCall:
				if in.A >= 0 {
					set[in.A] = true
				}
			}
		}
		written[name] = set
	}
	if len(written) != 4 {
		t.Fatalf("expected 4 arms, got %d", len(written))
	}
	names := make([]string, 0, 4)
	for n := range written {
		names = append(names, n)
	}
	// The user variables a..d are distinct by construction; scratch slots
	// must also be disjoint across arms.
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			for s := range written[names[i]] {
				if written[names[j]][s] {
					t.Errorf("arms %s and %s both write slot %d", names[i], names[j], s)
				}
			}
		}
	}
}

func TestGlobalInitCarried(t *testing.T) {
	tp := gen(t, `
int answer = 42;
double ratio = 1.5;
int main() { return answer; }
`, false)
	if len(tp.GlobalInit) != 2 {
		t.Fatalf("want 2 global initializers, got %d", len(tp.GlobalInit))
	}
	if tp.GlobalInit[0][1] != 42 {
		t.Errorf("answer initializer = %d, want 42", tp.GlobalInit[0][1])
	}
}

func TestDisasmReadable(t *testing.T) {
	tp := gen(t, `int main() { return 1 + 2; }`, false)
	d := tp.Main.Disasm()
	if len(d) == 0 {
		t.Error("empty disassembly")
	}
}
