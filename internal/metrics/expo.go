package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/trace"
)

// Exposition. Both encoders are byte-deterministic in the recorded values —
// the same contract as the Chrome trace exporter: metric names are emitted
// in sorted order, integers with %d, and nothing derived from wall-clock
// time or map iteration order reaches the output. The telemetry determinism
// test in internal/earthsim compares these bytes across runs.

// baseName returns the metric name up to the label brace:
// `x{phase="sema"}` → `x`.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// withLabel inserts an extra label into a possibly-labelled metric name and
// appends a suffix to its base: withLabel(`x{a="1"}`, "_bucket",
// `le="3"`) → `x_bucket{a="1",le="3"}`.
func withLabel(name, suffix, label string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i] + suffix + "{" + name[i+1:len(name)-1] + "," + label + "}"
	}
	return name + suffix + "{" + label + "}"
}

// header emits the # HELP / # TYPE preamble once per base name.
func header(w io.Writer, last *string, name, help, typ string) {
	base := baseName(name)
	if base == *last {
		return
	}
	*last = base
	if help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", base, help)
	}
	fmt.Fprintf(w, "# TYPE %s %s\n", base, typ)
}

// writeHist emits one histogram in Prometheus cumulative-bucket form. The
// power-of-two edges come from trace.Hist: bucket i covers [2^i, 2^(i+1)),
// so its inclusive integer upper bound is 2^(i+1)-1. Buckets are emitted up
// to the highest non-empty one, then +Inf.
func writeHist(w io.Writer, name string, h trace.Hist) {
	hi := -1
	for i, c := range h.Buckets {
		if c > 0 {
			hi = i
		}
	}
	var cum int64
	for i := 0; i <= hi; i++ {
		cum += h.Buckets[i]
		edge := (int64(1) << uint(i+1)) - 1
		fmt.Fprintf(w, "%s %d\n", withLabel(name, "_bucket", fmt.Sprintf("le=\"%d\"", edge)), cum)
	}
	fmt.Fprintf(w, "%s %d\n", withLabel(name, "_bucket", `le="+Inf"`), h.N)
	fmt.Fprintf(w, "%s %d\n", suffixed(name, "_sum"), h.Sum)
	fmt.Fprintf(w, "%s %d\n", suffixed(name, "_count"), h.N)
}

// suffixed appends a suffix to the base of a possibly-labelled name:
// suffixed(`x{a="1"}`, "_sum") → `x_sum{a="1"}`.
func suffixed(name, suffix string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i] + suffix + name[i:]
	}
	return name + suffix
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): counters, then gauges, then histograms, each in
// name order. Nil-safe (writes nothing).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := r.sortedCounters()
	gauges := r.sortedGauges()
	hists := r.sortedHists()
	r.mu.Unlock()

	var last string
	for _, c := range counters {
		header(w, &last, c.name, c.help, "counter")
		if _, err := fmt.Fprintf(w, "%s %d\n", c.name, c.Value()); err != nil {
			return err
		}
	}
	for _, g := range gauges {
		header(w, &last, g.name, g.help, "gauge")
		if _, err := fmt.Fprintf(w, "%s %d\n", g.name, g.Value()); err != nil {
			return err
		}
	}
	for _, h := range hists {
		header(w, &last, h.name, h.help, "histogram")
		writeHist(w, h.name, h.Snapshot())
	}
	return nil
}

// jsonMetric is one registry entry in the JSON exposition.
type jsonMetric struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// jsonHist is one histogram in the JSON exposition, reduced to the summary
// statistics the trace subsystem reports.
type jsonHist struct {
	Name  string `json:"name"`
	Count int64  `json:"count"`
	Sum   int64  `json:"sum"`
	Min   int64  `json:"min"`
	Max   int64  `json:"max"`
	Mean  int64  `json:"mean"`
	P50   int64  `json:"p50"`
	P95   int64  `json:"p95"`
	P99   int64  `json:"p99"`
}

// WriteJSON writes the registry as a single JSON object with counters,
// gauges, and histograms in name order. Byte-deterministic: slice-of-struct
// encoding has a fixed key order. Nil-safe (writes `{}`).
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "{}\n")
		return err
	}
	r.mu.Lock()
	counters := r.sortedCounters()
	gauges := r.sortedGauges()
	hists := r.sortedHists()
	r.mu.Unlock()

	out := struct {
		Counters   []jsonMetric `json:"counters"`
		Gauges     []jsonMetric `json:"gauges"`
		Histograms []jsonHist   `json:"histograms"`
	}{
		Counters:   make([]jsonMetric, 0, len(counters)),
		Gauges:     make([]jsonMetric, 0, len(gauges)),
		Histograms: make([]jsonHist, 0, len(hists)),
	}
	for _, c := range counters {
		out.Counters = append(out.Counters, jsonMetric{c.name, c.Value()})
	}
	for _, g := range gauges {
		out.Gauges = append(out.Gauges, jsonMetric{g.name, g.Value()})
	}
	for _, h := range hists {
		s := h.Snapshot()
		out.Histograms = append(out.Histograms, jsonHist{
			Name: h.name, Count: s.N, Sum: s.Sum, Min: s.Min, Max: s.Max,
			Mean: s.Mean(), P50: s.Quantile(0.50), P95: s.Quantile(0.95), P99: s.Quantile(0.99),
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// WriteSeriesJSON writes the retained time series as a single JSON object:
// the sampling interval plus every retained SimSample, oldest first.
// Byte-deterministic for a deterministic series. Nil-safe (writes `{}`).
func (s *Sampler) WriteSeriesJSON(w io.Writer) error {
	if s == nil {
		_, err := io.WriteString(w, "{}\n")
		return err
	}
	out := struct {
		IntervalNs int64       `json:"interval_ns"`
		Total      int64       `json:"total"`
		Samples    []SimSample `json:"samples"`
	}{
		IntervalNs: s.Interval(),
		Total:      s.Total(),
		Samples:    s.Series(),
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// WritePrometheus writes the latest sample in the Prometheus text format,
// under the earthsim_* namespace with per-node and per-link label sets.
// Writes nothing if no sample has been recorded yet. Nil-safe.
func (s *Sampler) WritePrometheus(w io.Writer) error {
	sm := s.Latest()
	if sm == nil {
		return nil
	}
	scalar := func(name, help, typ string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n", name, help, name, typ, name, v)
	}
	scalar("earthsim_time_ns", "Simulated time of the latest sample.", "gauge", sm.Time)
	scalar("earthsim_instructions_total", "Guest instructions retired.", "counter", sm.Instructions)
	scalar("earthsim_remote_reads_total", "Remote read operations issued.", "counter", sm.RemoteReads)
	scalar("earthsim_remote_writes_total", "Remote write operations issued.", "counter", sm.RemoteWrites)
	scalar("earthsim_blk_moves_total", "Block transfer operations issued.", "counter", sm.BlkMoves)
	scalar("earthsim_live_fibers", "Fibers spawned and not yet finished.", "gauge", sm.LiveFibers)
	scalar("earthsim_retries_total", "Reliable-messaging retransmissions.", "counter", sm.Retries)
	scalar("earthsim_retries_spurious_total", "Retransmissions that were unnecessary in hindsight.", "counter", sm.Spurious)
	scalar("earthsim_drops_total", "Messages dropped on the wire.", "counter", sm.Drops)
	scalar("earthsim_dups_total", "Messages duplicated on the wire.", "counter", sm.Dups)
	scalar("earthsim_stalls_total", "SU stall windows entered.", "counter", sm.Stalls)

	perNode := func(name, help, typ string, get func(NodeSample) int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		for i, n := range sm.Nodes {
			fmt.Fprintf(w, "%s{node=\"%d\"} %d\n", name, i, get(n))
		}
	}
	perNode("earthsim_node_eu_busy_ns", "Cumulative EU busy time per node.", "counter",
		func(n NodeSample) int64 { return n.EUBusyNs })
	perNode("earthsim_node_su_busy_ns", "Cumulative SU busy time per node.", "counter",
		func(n NodeSample) int64 { return n.SUBusyNs })
	perNode("earthsim_node_su_queue", "SU requests accepted but not yet completed.", "gauge",
		func(n NodeSample) int64 { return n.SUQueue })
	perNode("earthsim_node_ready_fibers", "Fibers in the node's ready queue.", "gauge",
		func(n NodeSample) int64 { return n.Ready })

	perLink := func(name, help, typ string, get func(LinkSample) int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		for _, l := range sm.Links {
			fmt.Fprintf(w, "%s{src=\"%d\",dst=\"%d\"} %d\n", name, l.Src, l.Dst, get(l))
		}
	}
	perLink("earthsim_link_busy_ns", "Cumulative wire occupancy per directed link.", "counter",
		func(l LinkSample) int64 { return l.BusyNs })
	perLink("earthsim_link_msgs_total", "Messages injected per directed link.", "counter",
		func(l LinkSample) int64 { return l.Msgs })
	perLink("earthsim_link_words_total", "Payload words carried per directed link.", "counter",
		func(l LinkSample) int64 { return l.Words })
	return nil
}
