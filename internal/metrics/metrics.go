// Package metrics is the live-telemetry substrate of the pipeline: a
// zero-cost-when-disabled registry of counters, gauges and power-of-two
// histograms (reusing internal/trace's bucket scheme), plus a deterministic
// time-series sampler the simulator feeds at fixed simulated-time intervals
// (see Sampler and earthsim.Machine.SetMetrics).
//
// Where PR 2's trace subsystem is post-mortem — a full event log reduced to
// a summary after the run — this package is the live view: cheap aggregates
// an operator (or the debug HTTP server, core.Pipeline.ServeDebug) can read
// while a Run is in flight, and that CI can diff across revisions.
//
// Two contracts carry over from the trace subsystem:
//
//   - Zero cost when disabled. A nil *Registry and a nil *Sampler are valid,
//     disabled sinks: every method is nil-safe and the simulator pays only a
//     nil check per instrumentation point. The repo-root zero-cost test pins
//     this against the PR 3 simulator allocation baseline.
//
//   - Determinism. The simulator feeds the sampler in event-loop order, so
//     for identical seed + spec (faults on or off) the recorded time series —
//     and the byte-exact Prometheus/JSON exposition of it — are identical
//     run to run. Registry exposition is likewise byte-deterministic in the
//     recorded values: names are emitted in sorted order with fixed integer
//     formatting.
//
// Registry values are safe for concurrent use (counters and gauges are
// atomics; histograms take a small mutex), so one Registry can serve many
// concurrent pipelines, and an HTTP handler can expose it mid-run.
package metrics

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/trace"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	name string
	help string
	v    atomic.Int64
}

// Inc adds one. Nil-safe.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are ignored: counters are monotone). Nil-safe.
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down.
type Gauge struct {
	name string
	help string
	v    atomic.Int64
}

// Set assigns the gauge. Nil-safe.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta. Nil-safe.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a power-of-two histogram of non-negative int64 samples,
// sharing trace.Hist's bucket scheme (bucket i holds [2^i, 2^(i+1)); bucket
// 0 also holds 0). Unlike trace.Hist it is safe for concurrent Observe.
type Histogram struct {
	name string
	help string
	mu   sync.Mutex
	h    trace.Hist
}

// Observe records one sample (negative samples are dropped, matching
// trace.Hist.Add). Nil-safe.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.h.Add(v)
	h.mu.Unlock()
}

// Snapshot returns a copy of the underlying histogram (zero value for nil).
func (h *Histogram) Snapshot() trace.Hist {
	if h == nil {
		return trace.Hist{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.h
}

// Registry holds named metrics. Metric names follow the Prometheus
// convention and may carry a label set in curly braces — the full string
// (e.g. `earth_compile_phase_ns{phase="sema"}`) is the registry key, and
// exposition groups HELP/TYPE lines by the base name before the brace.
//
// A nil *Registry is a valid, disabled registry: lookups return nil metrics
// whose methods are all no-ops.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns (registering on first use) the named counter. Returns nil
// on a nil registry, so call chains like r.Counter(...).Inc() are free when
// metrics are disabled. help is recorded on first registration only.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{name: name, help: help}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (registering on first use) the named gauge. Nil-safe.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{name: name, help: help}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (registering on first use) the named histogram.
// Nil-safe.
func (r *Registry) Histogram(name, help string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{name: name, help: help}
		r.hists[name] = h
	}
	return h
}

// Enabled reports whether the registry collects anything (false for nil).
func (r *Registry) Enabled() bool { return r != nil }

// sortedCounters returns the counters in name order (exposition helper).
func (r *Registry) sortedCounters() []*Counter {
	out := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

func (r *Registry) sortedGauges() []*Gauge {
	out := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

func (r *Registry) sortedHists() []*Histogram {
	out := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
