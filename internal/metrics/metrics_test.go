package metrics

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestNilSinksAreNoOps(t *testing.T) {
	var r *Registry
	if r.Enabled() {
		t.Fatal("nil registry reports enabled")
	}
	c := r.Counter("x_total", "")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatalf("nil counter value = %d", c.Value())
	}
	g := r.Gauge("x", "")
	g.Set(3)
	g.Add(-1)
	if g.Value() != 0 {
		t.Fatalf("nil gauge value = %d", g.Value())
	}
	h := r.Histogram("x_ns", "")
	h.Observe(7)
	if s := h.Snapshot(); s.N != 0 {
		t.Fatalf("nil histogram N = %d", s.N)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil registry prometheus: err=%v len=%d", err, buf.Len())
	}
	buf.Reset()
	if err := r.WriteJSON(&buf); err != nil || buf.String() != "{}\n" {
		t.Fatalf("nil registry json: err=%v %q", err, buf.String())
	}

	var s *Sampler
	s.Record(SimSample{Time: 1})
	if s.Latest() != nil || s.Series() != nil || s.Total() != 0 || s.Interval() != 0 {
		t.Fatal("nil sampler not inert")
	}
	s.Reset()
	buf.Reset()
	if err := s.WriteSeriesJSON(&buf); err != nil || buf.String() != "{}\n" {
		t.Fatalf("nil sampler json: err=%v %q", err, buf.String())
	}
	buf.Reset()
	if err := s.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil sampler prometheus: err=%v len=%d", err, buf.Len())
	}
}

func TestCounterGaugeSemantics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total", "ops")
	c.Inc()
	c.Add(4)
	c.Add(-2) // ignored: counters are monotone
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("ops_total", "other help") != c {
		t.Fatal("re-registration returned a different counter")
	}
	g := r.Gauge("depth", "")
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Fatalf("gauge = %d, want 7", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ns", "latency")
	for _, v := range []int64{0, 1, 2, 3, 4, 100, -5} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.N != 6 { // -5 dropped
		t.Fatalf("N = %d, want 6", s.N)
	}
	if s.Min != 0 || s.Max != 100 {
		t.Fatalf("min/max = %d/%d", s.Min, s.Max)
	}
	// trace.Hist scheme: bucket 0 holds {0,1}, bucket 1 {2,3}, bucket 2 {4..7},
	// bucket 6 {64..127}.
	if s.Buckets[0] != 2 || s.Buckets[1] != 2 || s.Buckets[2] != 1 || s.Buckets[6] != 1 {
		t.Fatalf("buckets = %v", s.Buckets[:8])
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "second").Add(2)
	r.Counter("a_total", "first").Add(1)
	r.Gauge("depth", "queue depth").Set(3)
	h := r.Histogram("lat_ns", "latency")
	h.Observe(1)
	h.Observe(5)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP a_total first
# TYPE a_total counter
a_total 1
# HELP b_total second
# TYPE b_total counter
b_total 2
# HELP depth queue depth
# TYPE depth gauge
depth 3
# HELP lat_ns latency
# TYPE lat_ns histogram
lat_ns_bucket{le="1"} 1
lat_ns_bucket{le="3"} 1
lat_ns_bucket{le="7"} 2
lat_ns_bucket{le="+Inf"} 2
lat_ns_sum 6
lat_ns_count 2
`
	if got := buf.String(); got != want {
		t.Fatalf("exposition mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestLabelledExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter(`phase_runs_total{phase="sema"}`, "runs per phase").Add(2)
	r.Counter(`phase_runs_total{phase="parse"}`, "runs per phase").Add(3)
	h := r.Histogram(`phase_ns{phase="sema"}`, "time per phase")
	h.Observe(2)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	// One HELP/TYPE pair per base name even with two labelled series.
	if n := strings.Count(got, "# TYPE phase_runs_total counter"); n != 1 {
		t.Fatalf("TYPE lines for phase_runs_total = %d\n%s", n, got)
	}
	for _, line := range []string{
		`phase_runs_total{phase="parse"} 3`,
		`phase_runs_total{phase="sema"} 2`,
		`phase_ns_bucket{phase="sema",le="3"} 1`,
		`phase_ns_bucket{phase="sema",le="+Inf"} 1`,
		`phase_ns_sum{phase="sema"} 2`,
		`phase_ns_count{phase="sema"} 1`,
	} {
		if !strings.Contains(got, line+"\n") {
			t.Fatalf("missing line %q in:\n%s", line, got)
		}
	}
}

func TestExpositionDeterminism(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.Counter("z_total", "z").Add(9)
		r.Counter("a_total", "a").Add(1)
		r.Gauge("g", "g").Set(-4)
		h := r.Histogram("h_ns", "h")
		for i := int64(0); i < 100; i++ {
			h.Observe(i * i)
		}
		s := NewSampler(0, 0)
		for i := int64(1); i <= 3; i++ {
			s.Record(SimSample{
				Time:  i * DefaultInterval,
				Nodes: []NodeSample{{EUBusyNs: i * 10}},
				Links: []LinkSample{{Src: 0, Dst: 1, Msgs: i}},
			})
		}
		return r
	}
	expo := func(r *Registry) string {
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		if err := r.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := expo(build()), expo(build())
	if a != b {
		t.Fatalf("exposition not deterministic:\n%s\nvs\n%s", a, b)
	}
	if !strings.Contains(a, `"name":"a_total","value":1`) {
		t.Fatalf("json exposition missing counter:\n%s", a)
	}
}

func TestSamplerRing(t *testing.T) {
	s := NewSampler(10, 4)
	if s.Interval() != 10 {
		t.Fatalf("interval = %d", s.Interval())
	}
	for i := int64(1); i <= 6; i++ {
		s.Record(SimSample{Time: i})
	}
	if s.Total() != 6 {
		t.Fatalf("total = %d, want 6", s.Total())
	}
	series := s.Series()
	if len(series) != 4 {
		t.Fatalf("len(series) = %d, want 4", len(series))
	}
	for i, sm := range series {
		if want := int64(i + 3); sm.Time != want { // oldest two evicted
			t.Fatalf("series[%d].Time = %d, want %d", i, sm.Time, want)
		}
	}
	if l := s.Latest(); l == nil || l.Time != 6 {
		t.Fatalf("latest = %+v", l)
	}
	s.Reset()
	if s.Latest() != nil || len(s.Series()) != 0 || s.Total() != 0 {
		t.Fatal("reset did not clear sampler")
	}
	s.Record(SimSample{Time: 42})
	if l := s.Latest(); l == nil || l.Time != 42 {
		t.Fatal("sampler unusable after reset")
	}
}

func TestSamplerSeriesJSON(t *testing.T) {
	s := NewSampler(100, 8)
	s.Record(SimSample{
		Time:         100,
		Instructions: 50,
		Nodes:        []NodeSample{{EUBusyNs: 90, SUQueue: 2}},
		Links:        []LinkSample{{Src: 1, Dst: 0, Msgs: 3, Words: 12}},
	})
	var buf bytes.Buffer
	if err := s.WriteSeriesJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	for _, frag := range []string{
		`"interval_ns":100`, `"total":1`, `"time":100`, `"instructions":50`,
		`"eu_busy_ns":90`, `"su_queue":2`, `"src":1`, `"words":12`,
	} {
		if !strings.Contains(got, frag) {
			t.Fatalf("series json missing %q:\n%s", frag, got)
		}
	}
}

func TestSamplerPrometheus(t *testing.T) {
	s := NewSampler(0, 0)
	var buf bytes.Buffer
	if err := s.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("empty sampler wrote %q (err %v)", buf.String(), err)
	}
	s.Record(SimSample{
		Time:         1000,
		Instructions: 7,
		Retries:      2,
		Nodes:        []NodeSample{{EUBusyNs: 800, SUBusyNs: 100, SUQueue: 1, Ready: 2}, {}},
		Links:        []LinkSample{{Src: 0, Dst: 1, BusyNs: 50, Msgs: 4, Words: 16}},
	})
	if err := s.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	for _, line := range []string{
		"earthsim_time_ns 1000",
		"earthsim_instructions_total 7",
		"earthsim_retries_total 2",
		`earthsim_node_eu_busy_ns{node="0"} 800`,
		`earthsim_node_eu_busy_ns{node="1"} 0`,
		`earthsim_node_su_queue{node="0"} 1`,
		`earthsim_node_ready_fibers{node="0"} 2`,
		`earthsim_link_busy_ns{src="0",dst="1"} 50`,
		`earthsim_link_words_total{src="0",dst="1"} 16`,
	} {
		if !strings.Contains(got, line+"\n") {
			t.Fatalf("missing line %q in:\n%s", line, got)
		}
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("shared_total", "").Inc()
				r.Gauge(fmt.Sprintf("g_%d", i), "").Set(int64(j))
				r.Histogram("h_ns", "").Observe(int64(j))
			}
		}(i)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var buf bytes.Buffer
			if err := r.WritePrometheus(&buf); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if v := r.Counter("shared_total", "").Value(); v != 8000 {
		t.Fatalf("shared counter = %d, want 8000", v)
	}
	if s := r.Histogram("h_ns", "").Snapshot(); s.N != 8000 {
		t.Fatalf("histogram N = %d, want 8000", s.N)
	}
}

func TestSamplerConcurrentObservation(t *testing.T) {
	s := NewSampler(1, 16)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := int64(1); i <= 5000; i++ {
			s.Record(SimSample{Time: i, Nodes: []NodeSample{{EUBusyNs: i}}})
		}
	}()
	for {
		select {
		case <-done:
			if l := s.Latest(); l == nil || l.Time != 5000 {
				t.Fatalf("latest after writer done = %+v", l)
			}
			return
		default:
			if l := s.Latest(); l != nil && l.Nodes[0].EUBusyNs != l.Time {
				t.Fatalf("torn sample: %+v", l)
			}
			_ = s.Series()
		}
	}
}
