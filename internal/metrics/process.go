package metrics

import (
	"io"
	"runtime"
	"sync"
)

// ProcessCollector snapshots Go runtime process state — goroutine count,
// heap usage, GC activity — into its own registry at scrape time. It is
// deliberately kept out of the pipeline registries: process state is
// host-dependent and changes between scrapes, while the pipeline registries
// carry the deterministic simulated quantities the telemetry determinism
// tests pin byte-for-byte. Both debug surfaces (earthd's /metrics and
// `earthrun -http`) append a collector's exposition to every scrape.
//
// A nil *ProcessCollector is a valid, disabled collector: Collect and the
// writers are no-ops, matching the registry/sampler nil contract.
type ProcessCollector struct {
	mu  sync.Mutex
	reg *Registry
	// Previous absolute runtime counters, so monotone registry counters can
	// advance by deltas across Collect calls.
	lastGC     uint32
	lastPause  uint64
	lastAllocs uint64
}

// NewProcessCollector returns an empty collector; call Collect before each
// exposition.
func NewProcessCollector() *ProcessCollector {
	return &ProcessCollector{reg: NewRegistry()}
}

// Collect refreshes the collector's registry from the runtime. Safe for
// concurrent scrapes. Nil-safe.
func (c *ProcessCollector) Collect() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reg.Gauge("process_goroutines", "Live goroutines at scrape time.").
		Set(int64(runtime.NumGoroutine()))
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	c.reg.Gauge("process_heap_alloc_bytes", "Bytes of allocated heap objects.").
		Set(int64(ms.HeapAlloc))
	c.reg.Gauge("process_heap_sys_bytes", "Heap memory obtained from the OS.").
		Set(int64(ms.HeapSys))
	c.reg.Gauge("process_heap_objects", "Live heap objects.").
		Set(int64(ms.HeapObjects))
	c.reg.Gauge("process_next_gc_bytes", "Heap size that triggers the next GC cycle.").
		Set(int64(ms.NextGC))
	c.reg.Counter("process_gc_cycles_total", "Completed GC cycles.").
		Add(int64(ms.NumGC - c.lastGC))
	c.lastGC = ms.NumGC
	c.reg.Counter("process_gc_pause_ns_total", "Cumulative GC stop-the-world pause time.").
		Add(int64(ms.PauseTotalNs - c.lastPause))
	c.lastPause = ms.PauseTotalNs
	c.reg.Counter("process_mallocs_total", "Heap objects allocated.").
		Add(int64(ms.Mallocs - c.lastAllocs))
	c.lastAllocs = ms.Mallocs
}

// Registry exposes the collector's backing registry (nil for a nil
// collector) so aggregators can fold process metrics into a merged scrape.
func (c *ProcessCollector) Registry() *Registry {
	if c == nil {
		return nil
	}
	return c.reg
}

// WritePrometheus writes the last collected snapshot in the Prometheus text
// format. Nil-safe (writes nothing).
func (c *ProcessCollector) WritePrometheus(w io.Writer) error {
	if c == nil {
		return nil
	}
	return c.reg.WritePrometheus(w)
}
