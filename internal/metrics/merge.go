package metrics

// Merge returns a fresh registry holding the element-wise union of regs:
// same-named counters and gauges sum, histograms pool their samples
// (trace.Hist.Merge), and help text comes from the first registry that
// defines a name. Nil registries are skipped, so callers can pass optional
// sinks unconditionally.
//
// This is the aggregation step behind earthd's single scrape endpoint: each
// pipeline shard records into its own registry (no cross-shard contention on
// the hot path), and every /metrics request folds the shard registries plus
// the service registry into one exposition. Merge takes point-in-time
// snapshots of each source registry in turn; it is safe to call while the
// sources are being written, with the usual scrape semantics (values from
// different registries may be from slightly different instants).
func Merge(regs ...*Registry) *Registry {
	out := NewRegistry()
	for _, r := range regs {
		if r == nil {
			continue
		}
		r.mu.Lock()
		counters := r.sortedCounters()
		gauges := r.sortedGauges()
		hists := r.sortedHists()
		r.mu.Unlock()
		for _, c := range counters {
			out.Counter(c.name, c.help).Add(c.Value())
		}
		for _, g := range gauges {
			out.Gauge(g.name, g.help).Add(g.Value())
		}
		for _, h := range hists {
			s := h.Snapshot()
			oh := out.Histogram(h.name, h.help)
			oh.mu.Lock()
			oh.h.Merge(&s)
			oh.mu.Unlock()
		}
	}
	return out
}
