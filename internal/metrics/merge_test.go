package metrics

import (
	"bytes"
	"strings"
	"testing"
)

func TestMergeSumsAndPools(t *testing.T) {
	a := NewRegistry()
	a.Counter("jobs_total", "Jobs.").Add(3)
	a.Gauge("depth", "Depth.").Set(2)
	a.Histogram("wait_ns", "Wait.").Observe(100)
	a.Histogram("wait_ns", "Wait.").Observe(200)

	b := NewRegistry()
	b.Counter("jobs_total", "ignored help").Add(4)
	b.Counter("only_b_total", "B only.").Add(1)
	b.Gauge("depth", "").Set(5)
	b.Histogram("wait_ns", "").Observe(1 << 20)

	m := Merge(a, nil, b)
	if got := m.Counter("jobs_total", "").Value(); got != 7 {
		t.Errorf("jobs_total = %d, want 7", got)
	}
	if got := m.Counter("only_b_total", "").Value(); got != 1 {
		t.Errorf("only_b_total = %d, want 1", got)
	}
	if got := m.Gauge("depth", "").Value(); got != 7 {
		t.Errorf("depth = %d, want 7 (gauges sum)", got)
	}
	h := m.Histogram("wait_ns", "").Snapshot()
	if h.N != 3 || h.Sum != 100+200+(1<<20) {
		t.Errorf("pooled hist N=%d Sum=%d", h.N, h.Sum)
	}
	if h.Min != 100 || h.Max != 1<<20 {
		t.Errorf("pooled hist Min=%d Max=%d", h.Min, h.Max)
	}

	// Help text comes from the first registry defining the name.
	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "# HELP jobs_total Jobs.") {
		t.Errorf("merged help text wrong:\n%s", buf.String())
	}
}

func TestMergeDoesNotAliasSources(t *testing.T) {
	a := NewRegistry()
	a.Counter("c_total", "").Add(1)
	a.Histogram("h_ns", "").Observe(10)
	m := Merge(a)
	m.Counter("c_total", "").Add(100)
	m.Histogram("h_ns", "").Observe(999)
	if got := a.Counter("c_total", "").Value(); got != 1 {
		t.Errorf("source counter mutated through merge: %d", got)
	}
	if s := a.Histogram("h_ns", "").Snapshot(); s.N != 1 {
		t.Errorf("source hist mutated through merge: N=%d", s.N)
	}
}

func TestMergeDeterministicExposition(t *testing.T) {
	build := func() *Registry {
		a := NewRegistry()
		a.Counter("z_total", "Z.").Add(2)
		a.Gauge("a_gauge", "A.").Set(1)
		b := NewRegistry()
		b.Counter("m_total", "M.").Add(5)
		b.Histogram("h_ns", "H.").Observe(42)
		return Merge(a, b)
	}
	var x, y bytes.Buffer
	if err := build().WritePrometheus(&x); err != nil {
		t.Fatal(err)
	}
	if err := build().WritePrometheus(&y); err != nil {
		t.Fatal(err)
	}
	if x.String() != y.String() {
		t.Errorf("merged exposition not byte-deterministic:\n%s\n---\n%s", x.String(), y.String())
	}
}

func TestMergeEmpty(t *testing.T) {
	m := Merge()
	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	m = Merge(nil, nil)
	if m == nil {
		t.Fatal("Merge(nil, nil) returned nil")
	}
}

func TestProcessCollector(t *testing.T) {
	c := NewProcessCollector()
	c.Collect()
	if got := c.Registry().Gauge("process_goroutines", "").Value(); got <= 0 {
		t.Errorf("process_goroutines = %d, want > 0", got)
	}
	if got := c.Registry().Gauge("process_heap_alloc_bytes", "").Value(); got <= 0 {
		t.Errorf("process_heap_alloc_bytes = %d, want > 0", got)
	}

	// Counters advance by deltas: repeated collection must stay monotone,
	// never double-count the absolute runtime totals.
	first := c.Registry().Counter("process_mallocs_total", "").Value()
	c.Collect()
	second := c.Registry().Counter("process_mallocs_total", "").Value()
	if second < first {
		t.Errorf("process_mallocs_total went backwards: %d -> %d", first, second)
	}
	if first > 0 && second > 2*first {
		// A delta-collector re-adding absolute values would roughly double;
		// two collections microseconds apart must not.
		t.Errorf("process_mallocs_total looks double-counted: %d -> %d", first, second)
	}

	var buf bytes.Buffer
	if err := c.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"process_goroutines", "process_gc_cycles_total", "process_heap_objects"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestProcessCollectorNil(t *testing.T) {
	var c *ProcessCollector
	c.Collect() // must not panic
	if c.Registry() != nil {
		t.Error("nil collector should expose a nil registry")
	}
	var buf bytes.Buffer
	if err := c.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil collector wrote %q, err %v", buf.String(), err)
	}
	// And a nil registry merges away silently.
	if m := Merge(c.Registry()); m == nil {
		t.Error("Merge(nil registry) returned nil")
	}
}
