package metrics

import (
	"sync"
	"sync/atomic"
)

// NodeSample is one node's cumulative activity at a sample instant.
type NodeSample struct {
	EUBusyNs int64 `json:"eu_busy_ns"` // cumulative simulated ns the EU spent executing fibers
	SUBusyNs int64 `json:"su_busy_ns"` // cumulative simulated ns the SU spent servicing requests
	SUQueue  int64 `json:"su_queue"`   // SU requests accepted but not yet completed at this instant
	Ready    int64 `json:"ready"`      // fibers in the node's ready queue at this instant
}

// LinkSample is one directed link's cumulative traffic at a sample instant.
// Links appear only once traffic has crossed them, ordered by (Src, Dst).
type LinkSample struct {
	Src    int   `json:"src"`     // source node
	Dst    int   `json:"dst"`     // destination node
	BusyNs int64 `json:"busy_ns"` // cumulative simulated ns the wire was occupied
	Msgs   int64 `json:"msgs"`    // messages injected (duplicates included)
	Words  int64 `json:"words"`   // payload words carried
}

// SimSample is a snapshot of simulator state at a simulated-time instant.
// All values are cumulative since Run start except the instantaneous queue
// depths. Samples are taken in event-loop order at a fixed simulated-time
// interval, so for identical seed + spec the sequence of SimSamples is
// identical run to run — the determinism contract tested in
// internal/earthsim.
type SimSample struct {
	Time         int64        `json:"time"`         // simulated ns of this snapshot
	Instructions int64        `json:"instructions"` // guest instructions retired
	RemoteReads  int64        `json:"remote_reads"`
	RemoteWrites int64        `json:"remote_writes"`
	BlkMoves     int64        `json:"blk_moves"`
	LiveFibers   int64        `json:"live_fibers"`      // fibers spawned and not yet finished
	Retries      int64        `json:"retries"`          // reliable-messaging retransmits (0 unless faults on)
	Spurious     int64        `json:"retries_spurious"` // retransmits that were unnecessary in hindsight
	Drops        int64        `json:"drops"`
	Dups         int64        `json:"dups"`
	Stalls       int64        `json:"stalls"`
	Nodes        []NodeSample `json:"nodes"`
	Links        []LinkSample `json:"links,omitempty"`
}

// Sampler accumulates a bounded time series of SimSamples. The simulator
// calls Record from its event loop (single-threaded, deterministic order);
// observers call Latest (lock-free) or Series (copy under lock) from any
// goroutine — this is how the debug HTTP server reads a Run in flight.
//
// A nil *Sampler is a valid, disabled sampler.
type Sampler struct {
	interval int64 // simulated ns between samples
	capacity int   // ring capacity

	mu    sync.Mutex
	ring  []SimSample
	head  int // index of oldest sample when full
	n     int // samples currently in ring
	total int64

	latest atomic.Pointer[SimSample]
}

// Default sampler parameters: one sample per 100µs of simulated time, with
// room for 2048 samples (≈ 0.2 s of simulated time) before the ring wraps.
const (
	DefaultInterval = 100_000
	DefaultCap      = 2048
)

// NewSampler returns a sampler taking one sample every interval simulated
// ns, keeping the most recent capacity samples. Non-positive arguments get
// the defaults.
func NewSampler(interval int64, capacity int) *Sampler {
	if interval <= 0 {
		interval = DefaultInterval
	}
	if capacity <= 0 {
		capacity = DefaultCap
	}
	return &Sampler{interval: interval, capacity: capacity}
}

// Interval returns the sampling interval in simulated ns (0 for nil).
func (s *Sampler) Interval() int64 {
	if s == nil {
		return 0
	}
	return s.interval
}

// Record appends one sample, evicting the oldest when the ring is full, and
// publishes it as Latest. The sample is stored by value; the caller may
// reuse nothing — slices must be freshly allocated per sample. Nil-safe.
func (s *Sampler) Record(sm SimSample) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.n < s.capacity {
		s.ring = append(s.ring, sm)
		s.n++
	} else {
		s.ring[s.head] = sm
		s.head = (s.head + 1) % s.capacity
	}
	s.total++
	s.mu.Unlock()
	cp := sm
	s.latest.Store(&cp)
}

// Latest returns the most recently recorded sample, or nil if none yet.
// Lock-free; safe from any goroutine while Record runs.
func (s *Sampler) Latest() *SimSample {
	if s == nil {
		return nil
	}
	return s.latest.Load()
}

// Series returns the retained samples oldest-first.
func (s *Sampler) Series() []SimSample {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SimSample, 0, s.n)
	for i := 0; i < s.n; i++ {
		out = append(out, s.ring[(s.head+i)%s.capacity])
	}
	return out
}

// Total returns the number of samples ever recorded (≥ len(Series())).
func (s *Sampler) Total() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Reset clears the ring and the latest pointer so the sampler can serve a
// fresh Run.
func (s *Sampler) Reset() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.ring = s.ring[:0]
	s.head, s.n, s.total = 0, 0, 0
	s.mu.Unlock()
	s.latest.Store(nil)
}
