package lower

import (
	"strings"
	"testing"

	"repro/internal/earthc"
	"repro/internal/sema"
	"repro/internal/simple"
)

func lowerSrc(t *testing.T, src string) *simple.Program {
	t.Helper()
	f, err := earthc.ParseFile("t.ec", src)
	if err != nil {
		t.Fatal(err)
	}
	for _, fn := range f.Funcs {
		if err := earthc.DesugarLoops(fn); err != nil {
			t.Fatal(err)
		}
		if err := earthc.EliminateGotos(fn); err != nil {
			t.Fatal(err)
		}
	}
	sm, err := sema.Check(f)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := Program(sm)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// indirectOps counts the potentially-remote operations in one basic
// statement.
func indirectOps(b *simple.Basic) int {
	n := 0
	switch b.Kind {
	case simple.KAssign:
		if _, ok := b.Rhs.(simple.LoadRV); ok {
			n++
		}
		if _, ok := b.Lhs.(simple.StoreLV); ok {
			n++
		}
	case simple.KBlkCopy:
		if b.P != nil {
			n++
		}
		if b.P2 != nil {
			n++
		}
	case simple.KGetF, simple.KPutF, simple.KBlkRead, simple.KBlkWrite:
		n++
	}
	return n
}

// TestSimplificationInvariant: the paper's SIMPLE property — each basic
// statement carries at most one remote operation.
func TestSimplificationInvariant(t *testing.T) {
	src := `
struct Point { double x; double y; struct Point *next; };
double f(Point *p, Point *q) {
	double d;
	d = p->x * q->x + p->y * q->y;
	p->x = q->y;
	q->next->x = p->next->y;
	return d;
}
int main() {
	Point *p;
	Point *q;
	p = alloc(Point);
	q = alloc(Point);
	return trunc(f(p, q));
}
`
	sp := lowerSrc(t, src)
	for _, fn := range sp.Funcs {
		simple.WalkBasics(fn.Body, func(b *simple.Basic) {
			if indirectOps(b) > 1 {
				t.Errorf("%s S%d has %d indirect ops: %s",
					fn.Name, b.Label, indirectOps(b), simple.BasicText(b))
			}
		})
	}
}

func TestLowerDistanceMatchesFigure3b(t *testing.T) {
	// The paper's Figure 3(b): four remote reads, each its own statement.
	sp := lowerSrc(t, `
struct Point { double x; double y; };
double distance(Point *p) {
	double dist_p;
	dist_p = sqrt((p->x * p->x) + (p->y * p->y));
	return dist_p;
}
int main() { return 0; }
`)
	fn := sp.FuncByName("distance")
	loads := 0
	simple.WalkBasics(fn.Body, func(b *simple.Basic) {
		if b.Kind == simple.KAssign {
			if _, ok := b.Rhs.(simple.LoadRV); ok {
				loads++
			}
		}
	})
	if loads != 4 {
		t.Errorf("distance should lower to 4 remote reads (Figure 3(b)), got %d:\n%s",
			loads, simple.FuncString(fn, simple.PrintOptions{Labels: true}))
	}
}

func TestLowerShortCircuit(t *testing.T) {
	sp := lowerSrc(t, `
int main() {
	int a;
	int b;
	int r;
	a = 1;
	b = 0;
	r = 0;
	if (a != 0 && b != 0) r = 1;
	if (a != 0 || b != 0) r = r + 2;
	return r;
}
`)
	out := simple.FuncString(sp.FuncByName("main"), simple.PrintOptions{})
	// Both short-circuit forms lower to nested ifs.
	if strings.Count(out, "if (") < 4 {
		t.Errorf("short-circuit should produce nested ifs:\n%s", out)
	}
}

func TestLowerStructCopy(t *testing.T) {
	sp := lowerSrc(t, `
struct Point { double x; double y; };
int main() {
	Point *p;
	Point *q;
	Point tmp;
	p = alloc(Point);
	q = alloc(Point);
	tmp = *p;
	*q = tmp;
	*q = *p;
	return 0;
}
`)
	var copies []*simple.Basic
	simple.WalkBasics(sp.FuncByName("main").Body, func(b *simple.Basic) {
		if b.Kind == simple.KBlkCopy {
			copies = append(copies, b)
		}
	})
	// tmp = *p; *q = tmp; and *q = *p staged through a temp (2 copies).
	if len(copies) != 4 {
		t.Errorf("want 4 block copies (one staged pair), got %d", len(copies))
	}
	// No copy may have both pointers remote (staging guarantees it).
	for _, b := range copies {
		if b.P != nil && b.P2 != nil {
			t.Errorf("remote-to-remote copy not staged: %s", simple.BasicText(b))
		}
	}
}

func TestLowerNestedMemberPath(t *testing.T) {
	sp := lowerSrc(t, `
struct H { int a; int fp; };
struct V { int lvl; struct H hosp; };
int get(V *v) { return v->hosp.fp; }
int main() { return 0; }
`)
	found := false
	simple.WalkBasics(sp.FuncByName("get").Body, func(b *simple.Basic) {
		if b.Kind == simple.KAssign {
			if ld, ok := b.Rhs.(simple.LoadRV); ok {
				if ld.Field == "hosp.fp" && ld.Off == 2 {
					found = true
				}
			}
		}
	})
	if !found {
		t.Errorf("v->hosp.fp should lower to a single load at offset 2:\n%s",
			simple.FuncString(sp.FuncByName("get"), simple.PrintOptions{}))
	}
}

func TestLowerFieldAddress(t *testing.T) {
	sp := lowerSrc(t, `
struct H { int a; int b; };
struct V { int lvl; struct H hosp; };
int *addrOf(V *v) { return &(v->hosp.b); }
int main() { return 0; }
`)
	found := false
	simple.WalkBasics(sp.FuncByName("addrOf").Body, func(b *simple.Basic) {
		if b.Kind == simple.KAssign {
			if fa, ok := b.Rhs.(simple.FieldAddrRV); ok && fa.Off == 2 {
				found = true
			}
		}
	})
	if !found {
		t.Error("&(v->hosp.b) should lower to pointer arithmetic (FieldAddrRV, offset 2)")
	}
}

func TestLowerCondBecomesEval(t *testing.T) {
	sp := lowerSrc(t, `
struct N { int v; struct N *next; };
int count(N *head) {
	int n;
	n = 0;
	while (head != NULL) {
		n = n + 1;
		head = head->next;
	}
	return n;
}
int main() { return 0; }
`)
	// A simple pointer-test condition needs no Eval statements.
	var loop *simple.While
	simple.WalkStmts(sp.FuncByName("count").Body, func(s simple.Stmt) {
		if w, ok := s.(*simple.While); ok {
			loop = w
		}
	})
	if loop == nil {
		t.Fatal("no while loop found")
	}
	if len(loop.Eval.Stmts) != 0 {
		t.Errorf("simple condition should have no eval statements, got %d", len(loop.Eval.Stmts))
	}
}

func TestLowerTernary(t *testing.T) {
	sp := lowerSrc(t, `
int main() {
	int x;
	int y;
	x = 3;
	y = x > 2 ? 10 : 20;
	return y;
}
`)
	out := simple.FuncString(sp.FuncByName("main"), simple.PrintOptions{})
	if !strings.Contains(out, "if (x > 2)") {
		t.Errorf("ternary should lower to an if:\n%s", out)
	}
}

func TestLowerIncDecValue(t *testing.T) {
	sp := lowerSrc(t, `
int main() {
	int x;
	int a;
	int b;
	x = 5;
	a = x++;
	b = ++x;
	return a * 100 + b;
}
`)
	_ = sp // semantics validated end-to-end elsewhere; here: it lowers at all
}

func TestLowerSharedIntrinsics(t *testing.T) {
	sp := lowerSrc(t, `
int main() {
	shared int c;
	writeto(&c, 1);
	addto(&c, 2);
	return valueof(&c);
}
`)
	kinds := map[string]int{}
	simple.WalkBasics(sp.FuncByName("main").Body, func(b *simple.Basic) {
		if b.Kind == simple.KBuiltin {
			kinds[b.Fun]++
		}
	})
	if kinds["writeto"] != 1 || kinds["addto"] != 1 || kinds["valueof"] != 1 {
		t.Errorf("shared intrinsics missing: %v", kinds)
	}
}

// TestAllBenchmarksSimplifyInvariant runs the one-remote-op invariant over
// every Olden benchmark (via the front door to avoid an import cycle, the
// sources are re-lowered here).
func TestLowerLabelsAreUnique(t *testing.T) {
	sp := lowerSrc(t, `
struct P { int v; };
int main() {
	P *p;
	int i;
	int s;
	p = alloc(P);
	s = 0;
	for (i = 0; i < 4; i++) {
		p->v = i;
		s = s + p->v;
	}
	return s;
}
`)
	for _, fn := range sp.Funcs {
		seen := map[int]bool{}
		simple.WalkBasics(fn.Body, func(b *simple.Basic) {
			if seen[b.Label] {
				t.Errorf("%s: duplicate label S%d", fn.Name, b.Label)
			}
			seen[b.Label] = true
			if fn.Basics[b.Label] != b {
				t.Errorf("%s: label S%d not indexed correctly", fn.Name, b.Label)
			}
		})
	}
}
