// Package lower translates checked EARTH-C ASTs into SIMPLE form: structured
// three-address code in which every basic statement contains at most one
// indirect (possibly remote) memory operation. This is the simplification
// step the paper performs before communication optimization (compare Figure
// 3(a) to Figure 3(b)).
package lower

import (
	"fmt"
	"math"

	"repro/internal/earthc"
	"repro/internal/sema"
	"repro/internal/simple"
)

// Program lowers an entire checked program.
func Program(prog *sema.Program) (*simple.Program, error) {
	return ProgramInto(prog, nil)
}

// ProgramInto is Program with global variable identity injected: a global
// whose name appears in inject reuses that Var object instead of a fresh
// one. The compile cache uses this to splice cached function bodies — which
// reference the previous compile's global objects — into a re-lowered
// program; it is only sound when the caller has verified the global
// environment is unchanged (cache.EnvHash).
func ProgramInto(prog *sema.Program, inject map[string]*simple.Var) (*simple.Program, error) {
	sp := &simple.Program{
		Structs:    make(map[string]*simple.StructLayout),
		GlobalInit: make(map[*simple.Var]int64),
	}
	for name, si := range prog.Structs {
		lay := &simple.StructLayout{
			Name:       name,
			Size:       si.Size,
			Offsets:    make(map[string]int),
			FieldSizes: make(map[string]int),
		}
		for _, f := range si.Def.Fields {
			lay.Offsets[f.Name] = si.Offsets[f.Name]
			lay.Fields = append(lay.Fields, f.Name)
			lay.FieldSizes[f.Name] = prog.SizeOf(f.Type)
		}
		sp.Structs[name] = lay
	}
	globals := make(map[*sema.Symbol]*simple.Var)
	for _, g := range prog.Globals {
		v := inject[g.Name]
		if v == nil {
			v = &simple.Var{
				Name: g.Name, Type: g.Type, Kind: simple.VarGlobal,
				Shared: g.Shared, Size: prog.SizeOf(g.Type),
			}
		}
		sp.Globals = append(sp.Globals, v)
		globals[g] = v
	}
	for _, gd := range prog.File.Globals {
		if gd.Init == nil {
			continue
		}
		sym := prog.DeclSym[gd]
		v := globals[sym]
		if v == nil {
			continue
		}
		bits, ok := constBits(gd.Init)
		if !ok {
			return nil, fmt.Errorf("lower: global %s: initializer must be a constant", gd.Name)
		}
		sp.GlobalInit[v] = bits
	}
	for _, fd := range prog.File.Funcs {
		fi := prog.Funcs[fd.Name]
		lw := &lowerer{prog: prog, sp: sp, globals: globals,
			syms: make(map[*sema.Symbol]*simple.Var), used: make(map[string]bool)}
		fn, err := lw.fun(fi)
		if err != nil {
			return nil, err
		}
		sp.Funcs = append(sp.Funcs, fn)
	}
	return sp, nil
}

type lowerer struct {
	prog    *sema.Program
	sp      *simple.Program
	globals map[*sema.Symbol]*simple.Var
	fn      *simple.Func
	syms    map[*sema.Symbol]*simple.Var
	used    map[string]bool
	ntemp   int
	err     error
}

func (lw *lowerer) errorf(pos earthc.Pos, format string, args ...any) {
	if lw.err == nil {
		lw.err = fmt.Errorf("%s: %s: %s", lw.fn.Name, pos, fmt.Sprintf(format, args...))
	}
}

// uniqueName returns name, or name_2, name_3... if taken (shadowing).
func (lw *lowerer) uniqueName(name string) string {
	if !lw.used[name] {
		lw.used[name] = true
		return name
	}
	for i := 2; ; i++ {
		n := fmt.Sprintf("%s_%d", name, i)
		if !lw.used[n] {
			lw.used[n] = true
			return n
		}
	}
}

func (lw *lowerer) newTemp(t earthc.Type) *simple.Var {
	lw.ntemp++
	v := &simple.Var{
		Name: fmt.Sprintf("temp%d", lw.ntemp), Type: t,
		Kind: simple.VarTemp, Size: lw.prog.SizeOf(t),
	}
	lw.used[v.Name] = true
	return lw.fn.AddLocal(v)
}

func (lw *lowerer) varFor(sym *sema.Symbol) *simple.Var {
	if sym.Kind == sema.SymGlobal {
		return lw.globals[sym]
	}
	if v, ok := lw.syms[sym]; ok {
		return v
	}
	kind := simple.VarLocal
	if sym.Kind == sema.SymParam {
		kind = simple.VarParam
	}
	v := &simple.Var{
		Name: lw.uniqueName(sym.Name), Type: sym.Type, Kind: kind,
		Shared: sym.Shared, Size: lw.prog.SizeOf(sym.Type),
	}
	lw.syms[sym] = v
	if kind == simple.VarLocal {
		lw.fn.AddLocal(v)
	}
	return v
}

func (lw *lowerer) fun(fi *sema.FuncInfo) (*simple.Func, error) {
	lw.fn = &simple.Func{Name: fi.Def.Name, Ret: fi.Ret}
	for _, p := range fi.Params {
		v := &simple.Var{
			Name: lw.uniqueName(p.Name), Type: p.Type, Kind: simple.VarParam,
			Size: lw.prog.SizeOf(p.Type),
		}
		lw.syms[p] = v
		lw.fn.Params = append(lw.fn.Params, v)
	}
	body := &simple.Seq{}
	lw.stmt(body, fi.Def.Body)
	lw.fn.Body = body
	return lw.fn, lw.err
}

// emit appends a basic statement to the sequence.
func (lw *lowerer) emit(seq *simple.Seq, b *simple.Basic) *simple.Basic {
	seq.Stmts = append(seq.Stmts, b)
	return b
}

func (lw *lowerer) assign(seq *simple.Seq, lhs simple.Lvalue, rhs simple.Rvalue) *simple.Basic {
	b := lw.fn.NewBasic(simple.KAssign)
	b.Lhs = lhs
	b.Rhs = rhs
	return lw.emit(seq, b)
}

// ------------------------------------------------------------- statements ---

func (lw *lowerer) stmt(seq *simple.Seq, s earthc.Stmt) {
	if lw.err != nil || s == nil {
		return
	}
	switch st := s.(type) {
	case *earthc.DeclStmt:
		sym := lw.prog.DeclSym[st.Decl]
		if sym == nil {
			return
		}
		v := lw.varFor(sym)
		if st.Decl.Init != nil {
			lw.assignTo(seq, v, st.Decl.Init, st.Decl.Pos)
		}
	case *earthc.ExprStmt:
		lw.exprStmt(seq, st.X)
	case *earthc.Block:
		for _, c := range st.Stmts {
			lw.stmt(seq, c)
		}
	case *earthc.ParSeq:
		par := &simple.Par{}
		for _, c := range st.Stmts {
			arm := &simple.Seq{}
			lw.stmt(arm, c)
			par.Arms = append(par.Arms, arm)
		}
		seq.Stmts = append(seq.Stmts, par)
	case *earthc.IfStmt:
		cond := lw.cond(seq, st.Cond)
		node := &simple.If{Cond: cond, Then: &simple.Seq{}, Else: &simple.Seq{}}
		lw.stmt(node.Then, st.Then)
		if st.Else != nil {
			lw.stmt(node.Else, st.Else)
		}
		seq.Stmts = append(seq.Stmts, node)
	case *earthc.WhileStmt:
		eval := &simple.Seq{}
		cond := lw.cond(eval, st.Cond)
		node := &simple.While{Eval: eval, Cond: cond, Body: &simple.Seq{}}
		lw.stmt(node.Body, st.Body)
		seq.Stmts = append(seq.Stmts, node)
	case *earthc.DoStmt:
		eval := &simple.Seq{}
		cond := lw.cond(eval, st.Cond)
		node := &simple.Do{Body: &simple.Seq{}, Eval: eval, Cond: cond}
		lw.stmt(node.Body, st.Body)
		seq.Stmts = append(seq.Stmts, node)
	case *earthc.ForStmt:
		// DesugarLoops normally removes for loops; handle any survivors
		// (e.g. programs lowered without the desugar pass in tests).
		if st.Init != nil {
			lw.stmt(seq, st.Init)
		}
		eval := &simple.Seq{}
		var cond simple.Cond
		if st.Cond != nil {
			cond = lw.cond(eval, st.Cond)
		} else {
			cond = simple.Cond{Op: simple.TruthTest, X: simple.IntAtom{Val: 1}}
		}
		node := &simple.While{Eval: eval, Cond: cond, Body: &simple.Seq{}}
		lw.stmt(node.Body, st.Body)
		if st.Post != nil {
			lw.exprStmt(node.Body, st.Post)
		}
		seq.Stmts = append(seq.Stmts, node)
	case *earthc.ForallStmt:
		if st.Init != nil {
			lw.stmt(seq, st.Init)
		}
		eval := &simple.Seq{}
		var cond simple.Cond
		if st.Cond != nil {
			cond = lw.cond(eval, st.Cond)
		} else {
			cond = simple.Cond{Op: simple.TruthTest, X: simple.IntAtom{Val: 1}}
		}
		node := &simple.Forall{Eval: eval, Cond: cond, Body: &simple.Seq{}, Step: &simple.Seq{}}
		lw.stmt(node.Body, st.Body)
		if st.Post != nil {
			lw.exprStmt(node.Step, st.Post)
		}
		seq.Stmts = append(seq.Stmts, node)
	case *earthc.SwitchStmt:
		tag := lw.atom(seq, st.Tag)
		node := &simple.Switch{Tag: tag}
		for _, cc := range st.Cases {
			sc := &simple.SwitchCase{Body: &simple.Seq{}}
			if cc.Vals != nil {
				for _, v := range cc.Vals {
					sc.Vals = append(sc.Vals, constValue(v))
				}
			}
			for _, c := range cc.Body {
				lw.stmt(sc.Body, c)
			}
			node.Cases = append(node.Cases, sc)
		}
		seq.Stmts = append(seq.Stmts, node)
	case *earthc.ReturnStmt:
		b := lw.fn.NewBasic(simple.KReturn)
		if st.X != nil {
			want := lw.fn.Ret
			a := lw.atom(seq, st.X)
			b.Val = lw.promote(seq, a, lw.prog.TypeOf(st.X), want)
		}
		lw.emit(seq, b)
	case *earthc.BreakStmt, *earthc.ContinueStmt:
		lw.errorf(earthc.Pos{}, "break/continue must be desugared before lowering")
	case *earthc.GotoStmt:
		lw.errorf(st.Pos, "goto must be eliminated before lowering")
	case *earthc.LabeledStmt:
		lw.stmt(seq, st.Stmt)
	default:
		lw.errorf(earthc.Pos{}, "cannot lower statement %T", s)
	}
}

func constValue(e earthc.Expr) int64 {
	switch x := e.(type) {
	case *earthc.IntLit:
		return x.Val
	case *earthc.CharLit:
		return int64(x.Val)
	case *earthc.Unary:
		if x.Op == earthc.Neg {
			return -constValue(x.X)
		}
	}
	return 0
}

// cond lowers a boolean expression into a simplified Cond, emitting any
// required evaluation statements into seq.
func (lw *lowerer) cond(seq *simple.Seq, e earthc.Expr) simple.Cond {
	if bin, ok := e.(*earthc.Binary); ok {
		switch bin.Op {
		case earthc.Lt, earthc.Gt, earthc.Le, earthc.Ge, earthc.Eq, earthc.Ne:
			x := lw.atom(seq, bin.X)
			y := lw.atom(seq, bin.Y)
			return simple.Cond{Op: bin.Op, X: x, Y: y}
		}
	}
	if un, ok := e.(*earthc.Unary); ok && un.Op == earthc.LNot {
		// !x as a condition: x == 0 (or == NULL for pointers).
		x := lw.atom(seq, un.X)
		zero := lw.zeroFor(lw.prog.TypeOf(un.X))
		return simple.Cond{Op: earthc.Eq, X: x, Y: zero}
	}
	a := lw.atom(seq, e)
	return simple.Cond{Op: simple.TruthTest, X: a}
}

func (lw *lowerer) zeroFor(t earthc.Type) simple.Atom {
	switch tt := t.(type) {
	case *earthc.PtrType:
		return simple.NullAtom{}
	case *earthc.PrimType:
		if tt.Kind == earthc.Double {
			return simple.FloatAtom{Val: 0}
		}
	}
	return simple.IntAtom{Val: 0}
}

// promote inserts an int->double conversion when assigning an int-typed atom
// to a double destination.
func (lw *lowerer) promote(seq *simple.Seq, a simple.Atom, from, to earthc.Type) simple.Atom {
	if from == nil || to == nil {
		return a
	}
	fi, fd := isIntType(from), isDoubleType(from)
	td := isDoubleType(to)
	if td && fi && !fd {
		if ia, ok := a.(simple.IntAtom); ok {
			return simple.FloatAtom{Val: float64(ia.Val)}
		}
		t := lw.newTemp(&earthc.PrimType{Kind: earthc.Double})
		b := lw.fn.NewBasic(simple.KBuiltin)
		b.Dst = t
		b.Fun = "dbl"
		b.BFun = simple.Builtin(sema.BDbl)
		b.Args = []simple.Atom{a}
		lw.emit(seq, b)
		return simple.VarAtom{V: t}
	}
	return a
}

// constBits evaluates a constant initializer expression to its raw word.
func constBits(e earthc.Expr) (int64, bool) {
	switch x := e.(type) {
	case *earthc.IntLit:
		return x.Val, true
	case *earthc.FloatLit:
		return int64(math.Float64bits(x.Val)), true
	case *earthc.CharLit:
		return int64(x.Val), true
	case *earthc.NullLit:
		return 0, true
	case *earthc.Unary:
		if x.Op == earthc.Neg {
			v, ok := constBits(x.X)
			if !ok {
				return 0, false
			}
			if _, isF := x.X.(*earthc.FloatLit); isF {
				return int64(math.Float64bits(-math.Float64frombits(uint64(v)))), true
			}
			return -v, true
		}
	}
	return 0, false
}

func isIntType(t earthc.Type) bool {
	pt, ok := t.(*earthc.PrimType)
	return ok && (pt.Kind == earthc.Int || pt.Kind == earthc.Char)
}

func isDoubleType(t earthc.Type) bool {
	pt, ok := t.(*earthc.PrimType)
	return ok && pt.Kind == earthc.Double
}

func isStructType(t earthc.Type) bool {
	_, ok := t.(*earthc.StructRef)
	return ok
}
