package lower

import (
	"repro/internal/earthc"
	"repro/internal/sema"
	"repro/internal/simple"
)

// access describes the resolved target of a member/index/deref chain: either
// a (possibly remote) field reached through a pointer, or a field/element of
// a struct- or array-valued frame variable.
type access struct {
	remote bool
	ptr    *simple.Var // remote: base pointer
	base   *simple.Var // local: frame variable
	path   string      // dotted field path ("" for *p)
	off    int         // accumulated word offset
	idx    simple.Atom // local arrays: index atom
	scale  int         // local arrays: element size in words
	typ    earthc.Type // type of the accessed location
}

func joinPath(a, b string) string {
	if a == "" {
		return b
	}
	if b == "" {
		return a
	}
	return a + "." + b
}

// resolveAccess lowers the *base* of a memory reference and returns its
// access description. Emits statements for nested pointer hops (p->next->x
// materializes t = p->next first).
func (lw *lowerer) resolveAccess(seq *simple.Seq, e earthc.Expr) (access, bool) {
	switch x := e.(type) {
	case *earthc.Ident:
		sym := lw.prog.Use[x]
		if sym == nil {
			return access{}, false
		}
		v := lw.varFor(sym)
		return access{base: v, typ: sym.Type}, true

	case *earthc.Member:
		if x.Arrow {
			// X is a pointer expression.
			pv := lw.ptrVar(seq, x.X)
			if pv == nil {
				return access{}, false
			}
			si := lw.prog.StructOf(lw.prog.TypeOf(x.X))
			if si == nil {
				return access{}, false
			}
			return access{
				remote: true, ptr: pv, path: x.Name,
				off: si.Offsets[x.Name], typ: si.FieldType(x.Name),
			}, true
		}
		// Dot: extend the access of X.
		inner, ok := lw.resolveAccess(seq, x.X)
		if !ok {
			return access{}, false
		}
		si := lw.prog.StructOf(inner.typ)
		if si == nil {
			lw.errorf(x.Pos, ". applied to non-struct value")
			return access{}, false
		}
		inner.path = joinPath(inner.path, x.Name)
		inner.off += si.Offsets[x.Name]
		inner.typ = si.FieldType(x.Name)
		return inner, true

	case *earthc.Index:
		inner, ok := lw.resolveAccess(seq, x.X)
		if !ok {
			return access{}, false
		}
		at, isArr := inner.typ.(*earthc.ArrayType)
		if !isArr {
			lw.errorf(x.Pos, "indexing non-array value")
			return access{}, false
		}
		if inner.remote {
			lw.errorf(x.Pos, "arrays are local storage; remote array access is not supported")
			return access{}, false
		}
		if inner.idx != nil {
			lw.errorf(x.Pos, "multidimensional indexing is not supported")
			return access{}, false
		}
		inner.idx = lw.atom(seq, x.I)
		inner.scale = lw.prog.SizeOf(at.Elem)
		inner.typ = at.Elem
		return inner, true

	case *earthc.Unary:
		if x.Op == earthc.Deref {
			pv := lw.ptrVar(seq, x.X)
			if pv == nil {
				return access{}, false
			}
			pt, _ := lw.prog.TypeOf(x.X).(*earthc.PtrType)
			var elem earthc.Type
			if pt != nil {
				elem = pt.Elem
			}
			return access{remote: true, ptr: pv, path: "", off: 0, typ: elem}, true
		}
	}
	lw.errorf(exprPos(e), "cannot resolve memory reference %T", e)
	return access{}, false
}

// ptrVar lowers a pointer-valued expression to a variable (emitting a temp
// load when needed).
func (lw *lowerer) ptrVar(seq *simple.Seq, e earthc.Expr) *simple.Var {
	a := lw.atom(seq, e)
	if v := simple.AtomVar(a); v != nil {
		return v
	}
	if _, isNull := a.(simple.NullAtom); isNull {
		// Dereferencing a literal NULL: let it through as a temp so the
		// simulator traps at run time.
		t := lw.newTemp(lw.prog.TypeOf(e))
		lw.assign(seq, simple.VarLV{V: t}, simple.AtomRV{A: a})
		return t
	}
	lw.errorf(exprPos(e), "expected pointer expression")
	return nil
}

// loadAccess materializes the value of an access into an atom (for scalar
// accesses).
func (lw *lowerer) loadAccess(seq *simple.Seq, a access) simple.Atom {
	if isStructType(a.typ) {
		lw.errorf(earthc.Pos{}, "struct value used where a scalar is required")
		return simple.IntAtom{}
	}
	t := lw.newTemp(a.typ)
	if a.remote {
		lw.assign(seq, simple.VarLV{V: t}, simple.LoadRV{P: a.ptr, Field: a.path, Off: a.off})
	} else if a.idx != nil || a.path != "" {
		lw.assign(seq, simple.VarLV{V: t}, simple.LocalLoadRV{
			Base: a.base, Field: a.path, Off: a.off, Idx: a.idx, Scale: a.scale,
		})
	} else {
		// Bare variable; no load needed.
		return simple.VarAtom{V: a.base}
	}
	return simple.VarAtom{V: t}
}

// --------------------------------------------------------------- lvalues ---

// assignTo lowers "v = rhs" for a scalar or struct variable destination.
func (lw *lowerer) assignTo(seq *simple.Seq, v *simple.Var, rhs earthc.Expr, pos earthc.Pos) {
	if isStructType(v.Type) {
		lw.structCopy(seq, access{base: v, typ: v.Type}, rhs, pos)
		return
	}
	a := lw.atom(seq, rhs)
	a = lw.promote(seq, a, lw.prog.TypeOf(rhs), v.Type)
	// Collapse "v = temp" where temp was just defined by a single basic
	// assign: write directly into v instead. (Keeps output close to the
	// paper's examples: ax = p->x, not temp = p->x; ax = temp.)
	if tv := simple.AtomVar(a); tv != nil && tv.Kind == simple.VarTemp {
		if n := len(seq.Stmts); n > 0 {
			if b, ok := seq.Stmts[n-1].(*simple.Basic); ok && b.Kind == simple.KAssign {
				if lv, ok := b.Lhs.(simple.VarLV); ok && lv.V == tv {
					b.Lhs = simple.VarLV{V: v}
					return
				}
			} else if b, ok := seq.Stmts[n-1].(*simple.Basic); ok &&
				(b.Kind == simple.KCall || b.Kind == simple.KBuiltin || b.Kind == simple.KAlloc) && b.Dst == tv {
				b.Dst = v
				return
			}
		}
	}
	lw.assign(seq, simple.VarLV{V: v}, simple.AtomRV{A: a})
}

// lowerAssign lowers an assignment expression, returning the stored atom.
func (lw *lowerer) lowerAssign(seq *simple.Seq, x *earthc.Assign) simple.Atom {
	// Compound assignment: a op= b  =>  a = a op b.
	rhs := x.Rhs
	if x.Op != earthc.PlainAssign {
		rhs = &earthc.Binary{Op: x.Op, X: x.Lhs, Y: x.Rhs, Pos: x.Pos}
		// Give the synthesized node a type so downstream promotion works.
		lt := lw.prog.TypeOf(x.Lhs)
		lw.prog.ExprType[rhs] = lt
	}

	switch lhs := x.Lhs.(type) {
	case *earthc.Ident:
		sym := lw.prog.Use[lhs]
		if sym == nil {
			return simple.IntAtom{}
		}
		v := lw.varFor(sym)
		lw.assignTo(seq, v, rhs, x.Pos)
		return simple.VarAtom{V: v}
	default:
		acc, ok := lw.resolveAccess(seq, x.Lhs)
		if !ok {
			return simple.IntAtom{}
		}
		if isStructType(acc.typ) {
			lw.structCopy(seq, acc, rhs, x.Pos)
			return simple.IntAtom{}
		}
		a := lw.atom(seq, rhs)
		a = lw.promote(seq, a, lw.prog.TypeOf(rhs), acc.typ)
		if acc.remote {
			lw.assign(seq, simple.StoreLV{P: acc.ptr, Field: acc.path, Off: acc.off},
				simple.AtomRV{A: a})
		} else {
			lw.assign(seq, simple.LocalStoreLV{
				Base: acc.base, Field: acc.path, Off: acc.off, Idx: acc.idx, Scale: acc.scale,
			}, simple.AtomRV{A: a})
		}
		return a
	}
}

// structCopy lowers whole-struct assignment between any combination of
// local struct storage and pointer targets. The paper notes the compiler
// inserts blkmovs for assignments to entire structs.
func (lw *lowerer) structCopy(seq *simple.Seq, dst access, rhs earthc.Expr, pos earthc.Pos) {
	size := lw.prog.SizeOf(dst.typ)
	src, ok := lw.resolveAccess(seq, rhs)
	if !ok {
		return
	}
	if !isStructType(src.typ) || !earthc.SameType(dst.typ, src.typ) {
		lw.errorf(pos, "struct assignment requires matching struct types")
		return
	}
	if src.idx != nil || dst.idx != nil {
		lw.errorf(pos, "struct copies of array elements are not supported")
		return
	}
	b := lw.fn.NewBasic(simple.KBlkCopy)
	b.Size = size
	// Source.
	if src.remote {
		b.P = src.ptr
		b.Off = src.off
	} else {
		b.Local = src.base
		b.Off = src.off
	}
	// Destination.
	if dst.remote {
		b.P2 = dst.ptr
		b.Off2 = dst.off
	} else {
		b.Dst = dst.base
		b.Off2 = dst.off
	}
	if src.remote && dst.remote {
		// Remote-to-remote: stage through a local buffer (two block moves).
		tmp := lw.newTemp(dst.typ)
		b.Dst = tmp
		b.Off2 = 0
		b.P2 = nil
		lw.emit(seq, b)
		b2 := lw.fn.NewBasic(simple.KBlkCopy)
		b2.Size = size
		b2.Local = tmp
		b2.P2 = dst.ptr
		b2.Off2 = dst.off
		lw.emit(seq, b2)
		return
	}
	lw.emit(seq, b)
}

// ------------------------------------------------------------ expressions ---

// exprStmt lowers an expression evaluated for effect.
func (lw *lowerer) exprStmt(seq *simple.Seq, e earthc.Expr) {
	switch x := e.(type) {
	case *earthc.Assign:
		lw.lowerAssign(seq, x)
	case *earthc.IncDec:
		one := &earthc.IntLit{Val: 1}
		lw.prog.ExprType[one] = lw.prog.TypeOf(x.X)
		op := earthc.Add
		if x.Decr {
			op = earthc.Sub
		}
		as := &earthc.Assign{Op: op, Lhs: x.X, Rhs: one, Pos: x.Pos}
		lw.prog.ExprType[as] = lw.prog.TypeOf(x.X)
		lw.lowerAssign(seq, as)
	case *earthc.Call:
		lw.lowerCall(seq, x, false)
	default:
		// Evaluate for side effects (e.g. a bare valueof or comparison).
		lw.atom(seq, e)
	}
}

// atom lowers an expression to an operand atom, emitting statements into seq
// as needed.
func (lw *lowerer) atom(seq *simple.Seq, e earthc.Expr) simple.Atom {
	if lw.err != nil {
		return simple.IntAtom{}
	}
	switch x := e.(type) {
	case *earthc.IntLit:
		return simple.IntAtom{Val: x.Val}
	case *earthc.FloatLit:
		return simple.FloatAtom{Val: x.Val}
	case *earthc.CharLit:
		return simple.IntAtom{Val: int64(x.Val)}
	case *earthc.NullLit:
		return simple.NullAtom{}
	case *earthc.SizeofExpr:
		return simple.IntAtom{Val: int64(lw.prog.SizeOf(x.T))}
	case *earthc.Ident:
		sym := lw.prog.Use[x]
		if sym == nil {
			return simple.IntAtom{}
		}
		return simple.VarAtom{V: lw.varFor(sym)}
	case *earthc.Member, *earthc.Index:
		acc, ok := lw.resolveAccess(seq, e)
		if !ok {
			return simple.IntAtom{}
		}
		return lw.loadAccess(seq, acc)
	case *earthc.Unary:
		return lw.lowerUnary(seq, x)
	case *earthc.Binary:
		return lw.lowerBinary(seq, x)
	case *earthc.Assign:
		return lw.lowerAssign(seq, x)
	case *earthc.IncDec:
		// Value-position ++/--: materialize old/new value.
		old := lw.atom(seq, x.X)
		t := lw.newTemp(lw.prog.TypeOf(x.X))
		lw.assign(seq, simple.VarLV{V: t}, simple.AtomRV{A: old})
		lw.exprStmt(seq, &earthc.IncDec{X: x.X, Decr: x.Decr, Prefix: true, Pos: x.Pos})
		if x.Prefix {
			return lw.atom(seq, x.X)
		}
		return simple.VarAtom{V: t}
	case *earthc.Call:
		return lw.lowerCall(seq, x, true)
	case *earthc.CondExpr:
		t := lw.newTemp(lw.prog.TypeOf(x))
		cond := lw.cond(seq, x.C)
		node := &simple.If{Cond: cond, Then: &simple.Seq{}, Else: &simple.Seq{}}
		ta := lw.atom(node.Then, x.T)
		lw.assign(node.Then, simple.VarLV{V: t},
			simple.AtomRV{A: lw.promote(node.Then, ta, lw.prog.TypeOf(x.T), lw.prog.TypeOf(x))})
		fa := lw.atom(node.Else, x.F)
		lw.assign(node.Else, simple.VarLV{V: t},
			simple.AtomRV{A: lw.promote(node.Else, fa, lw.prog.TypeOf(x.F), lw.prog.TypeOf(x))})
		seq.Stmts = append(seq.Stmts, node)
		return simple.VarAtom{V: t}
	}
	lw.errorf(exprPos(e), "cannot lower expression %T", e)
	return simple.IntAtom{}
}

func (lw *lowerer) lowerUnary(seq *simple.Seq, x *earthc.Unary) simple.Atom {
	switch x.Op {
	case earthc.Neg:
		a := lw.atom(seq, x.X)
		switch c := a.(type) {
		case simple.IntAtom:
			return simple.IntAtom{Val: -c.Val}
		case simple.FloatAtom:
			return simple.FloatAtom{Val: -c.Val}
		}
		t := lw.newTemp(lw.prog.TypeOf(x))
		lw.assign(seq, simple.VarLV{V: t}, simple.UnaryRV{Op: earthc.Neg, X: a})
		return simple.VarAtom{V: t}
	case earthc.BNot:
		a := lw.atom(seq, x.X)
		t := lw.newTemp(lw.prog.TypeOf(x))
		lw.assign(seq, simple.VarLV{V: t}, simple.UnaryRV{Op: earthc.BNot, X: a})
		return simple.VarAtom{V: t}
	case earthc.LNot:
		a := lw.atom(seq, x.X)
		t := lw.newTemp(&earthc.PrimType{Kind: earthc.Int})
		lw.assign(seq, simple.VarLV{V: t},
			simple.BinaryRV{Op: earthc.Eq, X: a, Y: lw.zeroFor(lw.prog.TypeOf(x.X))})
		return simple.VarAtom{V: t}
	case earthc.Deref:
		acc, ok := lw.resolveAccess(seq, x)
		if !ok {
			return simple.IntAtom{}
		}
		return lw.loadAccess(seq, acc)
	case earthc.Addr:
		return lw.lowerAddr(seq, x)
	}
	lw.errorf(x.Pos, "cannot lower unary %s", x.Op)
	return simple.IntAtom{}
}

func (lw *lowerer) lowerAddr(seq *simple.Seq, x *earthc.Unary) simple.Atom {
	acc, ok := lw.resolveAccess(seq, x.X)
	if !ok {
		return simple.IntAtom{}
	}
	if acc.idx != nil {
		lw.errorf(x.Pos, "address of array element is not supported")
		return simple.IntAtom{}
	}
	t := lw.newTemp(lw.prog.TypeOf(x))
	if acc.remote {
		lw.assign(seq, simple.VarLV{V: t},
			simple.FieldAddrRV{P: acc.ptr, Field: acc.path, Off: acc.off})
	} else {
		lw.assign(seq, simple.VarLV{V: t}, simple.AddrRV{X: acc.base, Off: acc.off})
	}
	return simple.VarAtom{V: t}
}

func (lw *lowerer) lowerBinary(seq *simple.Seq, x *earthc.Binary) simple.Atom {
	switch x.Op {
	case earthc.LogAnd, earthc.LogOr:
		// Short-circuit: t = 0/1; if (x) { if (y) t = 1 } (mirrored for ||).
		t := lw.newTemp(&earthc.PrimType{Kind: earthc.Int})
		isAnd := x.Op == earthc.LogAnd
		var initVal, setVal int64 = 0, 1
		if !isAnd {
			initVal, setVal = 1, 0
		}
		lw.assign(seq, simple.VarLV{V: t}, simple.AtomRV{A: simple.IntAtom{Val: initVal}})
		outer := &simple.If{Cond: lw.condMaybeNeg(seq, x.X, !isAnd), Then: &simple.Seq{}, Else: &simple.Seq{}}
		inner := &simple.If{Cond: lw.condMaybeNeg(outer.Then, x.Y, !isAnd), Then: &simple.Seq{}, Else: &simple.Seq{}}
		lw.assign(inner.Then, simple.VarLV{V: t}, simple.AtomRV{A: simple.IntAtom{Val: setVal}})
		outer.Then.Stmts = append(outer.Then.Stmts, inner)
		seq.Stmts = append(seq.Stmts, outer)
		return simple.VarAtom{V: t}
	}

	xa := lw.atom(seq, x.X)
	ya := lw.atom(seq, x.Y)
	xt := lw.prog.TypeOf(x.X)
	yt := lw.prog.TypeOf(x.Y)
	// Numeric promotion: if either side is double, promote both.
	if isDoubleType(xt) || isDoubleType(yt) {
		xa = lw.promote(seq, xa, xt, &earthc.PrimType{Kind: earthc.Double})
		ya = lw.promote(seq, ya, yt, &earthc.PrimType{Kind: earthc.Double})
	}
	t := lw.newTemp(lw.prog.TypeOf(x))
	lw.assign(seq, simple.VarLV{V: t}, simple.BinaryRV{Op: x.Op, X: xa, Y: ya})
	return simple.VarAtom{V: t}
}

// condMaybeNeg lowers e as a condition, negating it when neg is set.
func (lw *lowerer) condMaybeNeg(seq *simple.Seq, e earthc.Expr, neg bool) simple.Cond {
	if neg {
		c := lw.cond(seq, e)
		return negateCond(c)
	}
	return lw.cond(seq, e)
}

func negateCond(c simple.Cond) simple.Cond {
	switch c.Op {
	case earthc.Lt:
		return simple.Cond{Op: earthc.Ge, X: c.X, Y: c.Y}
	case earthc.Gt:
		return simple.Cond{Op: earthc.Le, X: c.X, Y: c.Y}
	case earthc.Le:
		return simple.Cond{Op: earthc.Gt, X: c.X, Y: c.Y}
	case earthc.Ge:
		return simple.Cond{Op: earthc.Lt, X: c.X, Y: c.Y}
	case earthc.Eq:
		return simple.Cond{Op: earthc.Ne, X: c.X, Y: c.Y}
	case earthc.Ne:
		return simple.Cond{Op: earthc.Eq, X: c.X, Y: c.Y}
	case simple.TruthTest:
		return simple.Cond{Op: earthc.Eq, X: c.X, Y: simple.IntAtom{Val: 0}}
	}
	return c
}

// lowerCall lowers a function or intrinsic call; wantValue selects whether a
// destination temp is produced.
func (lw *lowerer) lowerCall(seq *simple.Seq, x *earthc.Call, wantValue bool) simple.Atom {
	info := lw.prog.CallTarget[x]
	if info == nil {
		return simple.IntAtom{}
	}
	if info.Builtin != sema.NotBuiltin {
		return lw.lowerBuiltin(seq, x, info.Builtin, wantValue)
	}
	fi := info.Func
	b := lw.fn.NewBasic(simple.KCall)
	b.Fun = x.Fun
	for i, arg := range x.Args {
		a := lw.atom(seq, arg)
		if i < len(fi.Params) {
			a = lw.promote(seq, a, lw.prog.TypeOf(arg), fi.Params[i].Type)
		}
		b.Args = append(b.Args, a)
	}
	if x.Place != nil {
		pl := &simple.Placement{Kind: x.Place.Kind}
		if x.Place.Arg != nil {
			pl.Arg = lw.atom(seq, x.Place.Arg)
		}
		b.Place = pl
	}
	var result simple.Atom = simple.IntAtom{}
	if wantValue && !isVoidType(fi.Ret) {
		t := lw.newTemp(fi.Ret)
		b.Dst = t
		result = simple.VarAtom{V: t}
	}
	lw.emit(seq, b)
	return result
}

func isVoidType(t earthc.Type) bool {
	pt, ok := t.(*earthc.PrimType)
	return ok && pt.Kind == earthc.Void
}

func (lw *lowerer) lowerBuiltin(seq *simple.Seq, x *earthc.Call, bi sema.Builtin, wantValue bool) simple.Atom {
	switch bi {
	case sema.BAlloc, sema.BAllocOn:
		id := x.Args[0].(*earthc.Ident)
		b := lw.fn.NewBasic(simple.KAlloc)
		b.StructName = id.Name
		b.AllocSize = lw.sp.Structs[id.Name].Size
		if bi == sema.BAllocOn {
			b.Node = lw.atom(seq, x.Args[1])
		}
		t := lw.newTemp(&earthc.PtrType{Elem: &earthc.StructRef{Name: id.Name}})
		b.Dst = t
		lw.emit(seq, b)
		return simple.VarAtom{V: t}

	case sema.BWriteTo, sema.BAddTo, sema.BValueOf:
		sv := lw.sharedVarOf(x.Args[0])
		if sv == nil {
			return simple.IntAtom{}
		}
		b := lw.fn.NewBasic(simple.KBuiltin)
		b.Fun = x.Fun
		b.BFun = simple.Builtin(bi)
		b.ArgVars = []*simple.Var{sv}
		if bi != sema.BValueOf {
			va := lw.atom(seq, x.Args[1])
			va = lw.promote(seq, va, lw.prog.TypeOf(x.Args[1]), sv.Type)
			b.Args = []simple.Atom{va}
		}
		var result simple.Atom = simple.IntAtom{}
		if bi == sema.BValueOf {
			t := lw.newTemp(sv.Type)
			b.Dst = t
			result = simple.VarAtom{V: t}
		}
		lw.emit(seq, b)
		return result

	case sema.BPrintStr:
		b := lw.fn.NewBasic(simple.KBuiltin)
		b.Fun = x.Fun
		b.BFun = simple.Builtin(bi)
		if sl, ok := x.Args[0].(*earthc.StringLit); ok {
			b.StrArg = sl.Val
		}
		lw.emit(seq, b)
		return simple.IntAtom{}

	default:
		b := lw.fn.NewBasic(simple.KBuiltin)
		b.Fun = x.Fun
		b.BFun = simple.Builtin(bi)
		for _, arg := range x.Args {
			a := lw.atom(seq, arg)
			// sqrt/fabs/print_double accept ints; promote for a uniform VM.
			if bi == sema.BSqrt || bi == sema.BFabs || bi == sema.BPrintDouble {
				a = lw.promote(seq, a, lw.prog.TypeOf(arg), &earthc.PrimType{Kind: earthc.Double})
			}
			b.Args = append(b.Args, a)
		}
		var result simple.Atom = simple.IntAtom{}
		if wantValue {
			switch bi {
			case sema.BOwnerOf, sema.BMyNode, sema.BNumNodes, sema.BTrunc:
				t := lw.newTemp(&earthc.PrimType{Kind: earthc.Int})
				b.Dst = t
				result = simple.VarAtom{V: t}
			case sema.BSqrt, sema.BFabs, sema.BDbl:
				t := lw.newTemp(&earthc.PrimType{Kind: earthc.Double})
				b.Dst = t
				result = simple.VarAtom{V: t}
			}
		} else {
			switch bi {
			case sema.BSqrt, sema.BFabs, sema.BDbl, sema.BTrunc,
				sema.BOwnerOf, sema.BMyNode, sema.BNumNodes:
				// Pure builtins evaluated for effect: drop entirely.
				return simple.IntAtom{}
			}
		}
		lw.emit(seq, b)
		return result
	}
}

// sharedVarOf extracts the shared variable from an &sv intrinsic argument.
func (lw *lowerer) sharedVarOf(e earthc.Expr) *simple.Var {
	un, ok := e.(*earthc.Unary)
	if !ok || un.Op != earthc.Addr {
		return nil
	}
	id, ok := un.X.(*earthc.Ident)
	if !ok {
		return nil
	}
	sym := lw.prog.Use[id]
	if sym == nil {
		return nil
	}
	return lw.varFor(sym)
}

func exprPos(e earthc.Expr) earthc.Pos {
	switch x := e.(type) {
	case *earthc.Ident:
		return x.Pos
	case *earthc.Unary:
		return x.Pos
	case *earthc.Binary:
		return x.Pos
	case *earthc.Assign:
		return x.Pos
	case *earthc.Call:
		return x.Pos
	case *earthc.Member:
		return x.Pos
	case *earthc.Index:
		return x.Pos
	}
	return earthc.Pos{}
}
