// Package commsel implements the paper's communication selection phase
// (§4.2): using the possible-placement sets, it picks the earliest safe
// point for each remote read and the latest safe point for each remote
// write, eliminates redundant communication through a hash table of
// already-selected accesses, and chooses between pipelined split-phase
// scalar operations (get/put) and blocked transfers (blkmov) using the
// EARTH-MANNA cost model (blocking wins at three or more words).
//
// The transformation maintains one local "shadow" copy per (pointer, field)
// region — a commN scalar or a field of a bcommN struct buffer — and
// redirects *every* direct access in the region to it: early reads fill it,
// intermediate stores update it (and the remote write-back is delayed when
// that enables blocking), and intermediate reads consume it. The placement
// analysis' CrossedW/CrossedR sets identify exactly which accesses belong
// to a region, which keeps the aggressive float rules of the paper sound.
package commsel

import (
	"fmt"

	"repro/internal/locality"
	"repro/internal/par"
	"repro/internal/placement"
	"repro/internal/rwsets"
	"repro/internal/simple"
)

// Options control the selection heuristics.
type Options struct {
	// BlockThreshold is the minimum number of words that must move
	// together before a blocked transfer is used (the paper measured 3 on
	// EARTH-MANNA).
	BlockThreshold int
	// MaxBlockWaste skips blocking when the struct is much larger than the
	// fields actually needed: block only if structSize <=
	// MaxBlockWaste * neededWords. 0 means "no limit".
	MaxBlockWaste int
	// Speculative issues remote reads without proving a dereference occurs
	// on all paths (the paper's runtime tolerates reads of potentially
	// invalid addresses).
	Speculative bool
	// NoBlocking disables blkmov selection (ablation: pipelined only).
	NoBlocking bool
	// NoWriteMotion leaves every remote write at its original statement
	// (ablation).
	NoWriteMotion bool
	// NoReadMotion places every remote read at its original statement
	// (ablation: redundancy elimination and pipelining across statements
	// are lost; reads still become split-phase gets).
	NoReadMotion bool
	// ProfileGuided signals that the placement tuples carry *measured*
	// frequencies (see internal/profile) rather than the static ×10/÷2/÷k
	// guesses. Selection then also weighs expected dynamic operation
	// counts for the pipelined-vs-blocked decision: a field group whose
	// measured frequency sum alone reaches BlockThreshold blocks even
	// with fewer distinct fields, since one blkmov replaces that many
	// expected gets. The rule is strictly additive — everything that
	// blocked statically still blocks — so it can only reduce op counts.
	ProfileGuided bool
}

// Defaults returns the paper's configuration.
func Defaults() Options {
	return Options{BlockThreshold: 3, MaxBlockWaste: 4}
}

func (o Options) withDefaults() Options {
	if o.BlockThreshold == 0 {
		o.BlockThreshold = 3
	}
	if o.MaxBlockWaste == 0 {
		o.MaxBlockWaste = 4
	}
	return o
}

// FuncReport summarizes the transformation of one function.
type FuncReport struct {
	Name            string
	PipelinedReads  int // KGetF statements inserted
	BlockedReads    int // KBlkRead statements inserted
	PipelinedWrites int // KPutF statements inserted
	BlockedWrites   int // KBlkWrite statements inserted
	ReadsRewritten  int // remote loads redirected to a shadow
	WritesRewritten int // remote stores redirected to a shadow
	ReadsEliminated int // redundant loads beyond the first per shadow fill
}

// Report aggregates transformation statistics.
type Report struct {
	Funcs []*FuncReport
}

// Totals sums the per-function counters.
func (r *Report) Totals() FuncReport {
	var t FuncReport
	t.Name = "total"
	for _, f := range r.Funcs {
		t.PipelinedReads += f.PipelinedReads
		t.BlockedReads += f.BlockedReads
		t.PipelinedWrites += f.PipelinedWrites
		t.BlockedWrites += f.BlockedWrites
		t.ReadsRewritten += f.ReadsRewritten
		t.WritesRewritten += f.WritesRewritten
		t.ReadsEliminated += f.ReadsEliminated
	}
	return t
}

// String renders the report.
func (r *Report) String() string {
	t := r.Totals()
	return fmt.Sprintf(
		"commsel: reads %d pipelined + %d blocked (%d loads redirected, %d redundant eliminated); writes %d pipelined + %d blocked (%d stores redirected)",
		t.PipelinedReads, t.BlockedReads, t.ReadsRewritten, t.ReadsEliminated,
		t.PipelinedWrites, t.BlockedWrites, t.WritesRewritten)
}

// shadow is the local copy backing a (pointer, field) region: either a
// scalar comm variable (off 0) or a slot of a bcomm struct buffer.
type shadow struct {
	v     *simple.Var
	off   int
	field string
	blk   bool
}

func (s shadow) valid() bool { return s.v != nil }

// loadRV reads the shadow.
func (s shadow) loadRV() simple.Rvalue {
	if s.blk {
		return simple.LocalLoadRV{Base: s.v, Field: s.field, Off: s.off}
	}
	return simple.AtomRV{A: simple.VarAtom{V: s.v}}
}

// storeLV writes the shadow.
func (s shadow) storeLV() simple.Lvalue {
	if s.blk {
		return simple.LocalStoreLV{Base: s.v, Field: s.field, Off: s.off}
	}
	return simple.VarLV{V: s.v}
}

// Transform rewrites every function of prog in place and returns a report.
// The placement result must have been computed on the same (un-rewritten)
// program; rw and loc likewise.
func Transform(prog *simple.Program, pl *placement.Result, rw *rwsets.Result,
	loc *locality.Result, opt Options) *Report {
	return TransformP(prog, pl, rw, loc, opt, nil)
}

// TransformP is Transform with per-function selection fanned across pool (nil
// pool runs inline). Functions are rewritten independently: each worker
// operates on a forked read/write-set view (new statements registered during
// rewriting land in a private overlay) and a private FuncReport; forks are
// merged back and reports appended in function order afterwards, so the
// rewritten program and the report are identical to a sequential run.
func TransformP(prog *simple.Program, pl *placement.Result, rw *rwsets.Result,
	loc *locality.Result, opt Options, pool *par.Pool) *Report {
	opt = opt.withDefaults()
	n := len(prog.Funcs)
	frs := make([]*FuncReport, n)
	forks := make([]*rwsets.Result, n)
	pool.ForEach(n, func(i int) {
		fn := prog.Funcs[i]
		fork := rw
		if pool.Workers() > 1 {
			fork = rw.Fork()
		}
		s := &sel{
			prog: prog, pl: pl, rw: fork, loc: loc, opt: opt, fn: fn,
			fr:          &FuncReport{Name: fn.Name},
			handledR:    make(map[placement.Key]map[int]bool),
			readShadow:  make(map[int]shadow),
			storeShadow: make(map[int]shadow),
			blkClean:    make(map[*simple.Var]bool),
			fills:       make(map[*simple.Var]fillInfo),
		}
		s.readsSeq(fn.Body, nil)
		s.applyReadRewrites()
		esc := s.writesSeq(fn.Body)
		s.materialize(mapVals(esc), fn.Body, len(fn.Body.Stmts))
		frs[i] = s.fr
		if fork != rw {
			forks[i] = fork
		}
	})
	rep := &Report{Funcs: frs}
	for _, fork := range forks {
		if fork != nil {
			rw.Merge(fork)
		}
	}
	return rep
}

type sel struct {
	prog *simple.Program
	pl   *placement.Result
	rw   *rwsets.Result
	loc  *locality.Result
	opt  Options
	fn   *simple.Func
	fr   *FuncReport

	// handledR is the paper's hash table: per location key, the read labels
	// already covered by an earlier (higher) selection.
	handledR map[placement.Key]map[int]bool
	// readShadow maps a remote-load label to the shadow that replaces it.
	readShadow map[int]shadow
	// storeShadow maps a remote-store label to the shadow it must update
	// (mandated when a selected read floated across the store).
	storeShadow map[int]shadow
	// blkClean tracks, per bcomm buffer, whether its contents still mirror
	// the remote struct (no aliased writes since the fill); a blocked
	// write-back is only legal while clean.
	blkClean map[*simple.Var]bool
	// fills records, per bcomm buffer, the pointer and size it was filled
	// from.
	fills   map[*simple.Var]fillInfo
	retMemo map[simple.Stmt]bool

	ncomm  int
	nbcomm int
}

func (s *sel) newComm(t *simple.Var) *simple.Var {
	s.ncomm++
	v := &simple.Var{Name: fmt.Sprintf("comm%d", s.ncomm), Type: t.Type,
		Kind: simple.VarComm, Size: 1}
	return s.fn.AddLocal(v)
}

func (s *sel) newBComm(structName string, size int) *simple.Var {
	s.nbcomm++
	v := &simple.Var{Name: fmt.Sprintf("bcomm%d", s.nbcomm),
		Type: structRefType(structName), Kind: simple.VarBComm, Size: size}
	return s.fn.AddLocal(v)
}

// applyReadRewrites redirects every selected remote load to its shadow.
func (s *sel) applyReadRewrites() {
	for label, sh := range s.readShadow {
		b := s.fn.Basics[label]
		if b.Kind != simple.KAssign {
			continue
		}
		if _, ok := b.Rhs.(simple.LoadRV); !ok {
			continue
		}
		b.Rhs = sh.loadRV()
		s.fr.ReadsRewritten++
		s.rw.Register(b)
	}
}

// insertStmts inserts the given statements into seq before index i.
func insertStmts(seq *simple.Seq, i int, stmts []simple.Stmt) {
	if len(stmts) == 0 {
		return
	}
	out := make([]simple.Stmt, 0, len(seq.Stmts)+len(stmts))
	out = append(out, seq.Stmts[:i]...)
	out = append(out, stmts...)
	out = append(out, seq.Stmts[i:]...)
	seq.Stmts = out
}
