package commsel

import (
	"sort"

	"repro/internal/earthc"
	"repro/internal/placement"
	"repro/internal/simple"
)

func structRefType(name string) earthc.Type {
	return &earthc.StructRef{Name: name}
}

// pointeeLayout returns the struct layout behind pointer variable p, or nil.
func (s *sel) pointeeLayout(p *simple.Var) *simple.StructLayout {
	pt, ok := p.Type.(*earthc.PtrType)
	if !ok {
		return nil
	}
	sr, ok := pt.Elem.(*earthc.StructRef)
	if !ok {
		return nil
	}
	return s.prog.Structs[sr.Name]
}

// frame is one level of the placement stack used by the dereference-safety
// scan: the statement sequence and the index of the statement before which
// the communication would be inserted.
type frame struct {
	seq *simple.Seq
	idx int
}

// readsSeq performs top-down earliest-placement selection over a sequence
// (the driving traversal of §4.2).
func (s *sel) readsSeq(seq *simple.Seq, stack []frame) {
	for i := 0; i < len(seq.Stmts); i++ {
		st := seq.Stmts[i]
		if set := s.pl.Reads[st]; set != nil && set.Len() > 0 {
			here := append(append([]frame{}, stack...), frame{seq, i})
			ins := s.selectReadsAt(set, st, here)
			if len(ins) > 0 {
				insertStmts(seq, i, ins)
				i += len(ins)
				st = seq.Stmts[i]
			}
		}
		s.descendReads(st, stack, seq, i)
	}
}

func (s *sel) descendReads(st simple.Stmt, stack []frame, seq *simple.Seq, i int) {
	here := append(append([]frame{}, stack...), frame{seq, i + 1})
	switch c := st.(type) {
	case *simple.Basic:
		// nothing below
	case *simple.Seq:
		s.readsSeq(c, stack)
	case *simple.If:
		s.readsSeq(c.Then, here)
		s.readsSeq(c.Else, here)
	case *simple.Switch:
		for _, cc := range c.Cases {
			s.readsSeq(cc.Body, here)
		}
	case *simple.While:
		s.readsSeq(c.Eval, here)
		s.readsSeq(c.Body, here)
	case *simple.Do:
		s.readsSeq(c.Body, here)
		s.readsSeq(c.Eval, here)
	case *simple.Forall:
		s.readsSeq(c.Eval, here)
		s.readsSeq(c.Body, here)
		s.readsSeq(c.Step, here)
	case *simple.Par:
		for _, arm := range c.Arms {
			s.readsSeq(arm, here)
		}
	}
}

// selectReadsAt implements the per-point candidate selection: take the
// RemoteReads set valid just before st, drop already-handled accesses,
// apply the frequency and dereference-safety criteria, then group by
// pointer and choose pipelined gets or a blocked fill.
func (s *sel) selectReadsAt(set *placement.Set, st simple.Stmt, stack []frame) []simple.Stmt {
	type cand struct {
		t      *placement.Tuple
		labels []int
	}
	byPtr := make(map[*simple.Var][]cand)
	extraByPtr := make(map[*simple.Var][]cand) // sub-threshold-frequency tuples
	var ptrs []*simple.Var
	for _, t := range set.Tuples() {
		key := t.Key()
		var labels []int
		for _, l := range t.Labels() {
			if !s.handledR[key][l] {
				labels = append(labels, l)
			}
		}
		if len(labels) == 0 {
			continue
		}
		if s.opt.NoReadMotion {
			// Only select the access belonging to st itself.
			if b, ok := st.(*simple.Basic); !ok || !containsLabel(labels, b.Label) {
				continue
			} else {
				labels = []int{b.Label}
			}
		}
		if t.Freq < 1 {
			// Not worth a pipelined get of its own, but if a block fill of
			// the same pointer fires anyway, this access rides along for
			// free (the paper: reading spurious fields is safe, and their
			// redirection costs nothing).
			if !s.opt.NoReadMotion {
				extraByPtr[t.P] = append(extraByPtr[t.P], cand{t: t, labels: labels})
			}
			continue
		}
		if !s.opt.Speculative && !s.derefSafe(t.P, stack) {
			continue
		}
		if byPtr[t.P] == nil {
			ptrs = append(ptrs, t.P)
		}
		byPtr[t.P] = append(byPtr[t.P], cand{t: t, labels: labels})
	}
	sort.Slice(ptrs, func(i, j int) bool { return ptrs[i].Name < ptrs[j].Name })

	var ins []simple.Stmt
	for _, p := range ptrs {
		group := byPtr[p]
		layout := s.pointeeLayout(p)
		// Total distinct fields reachable through p at this point: full
		// candidates plus low-frequency extras that a block would cover.
		all := append(append([]cand{}, group...), extraByPtr[p]...)
		sort.Slice(all, func(i, j int) bool { return all[i].t.Off < all[j].t.Off })
		needed := len(all)
		// The fill moves only the contiguous span covering the needed
		// fields (reading spurious fields inside the span is safe); field
		// reordering (core.Options.ReorderFields) clusters hot fields to
		// shrink this span — the paper's suggested further work.
		span := 0
		if needed > 0 {
			span = all[needed-1].t.Off + 1 - all[0].t.Off
		}
		// Under profile guidance the measured frequency sum of the full
		// candidates is the expected number of pipelined gets a block fill
		// would replace; when that alone reaches the threshold, blocking
		// wins even with fewer distinct fields.
		hotFreq := 0.0
		for _, c := range group {
			hotFreq += c.t.Freq
		}
		block := !s.opt.NoBlocking && layout != nil &&
			(needed >= s.opt.BlockThreshold ||
				(s.opt.ProfileGuided && len(group) >= 2 &&
					hotFreq >= float64(s.opt.BlockThreshold))) &&
			(s.opt.MaxBlockWaste == 0 || span <= s.opt.MaxBlockWaste*needed)
		if block {
			group = all
		}
		sort.Slice(group, func(i, j int) bool { return group[i].t.Off < group[j].t.Off })
		if block {
			base := group[0].t.Off
			end := base + span
			// RemoteFill (paper §4.2): extend the filled span over fields
			// the function stores through p, so every word a delayed
			// write-back covers is locally valid and the write can block.
			simple.WalkBasics(s.fn.Body, func(b *simple.Basic) {
				if b.Kind != simple.KAssign {
					return
				}
				if stv, ok := b.Lhs.(simple.StoreLV); ok && stv.P == p {
					if stv.Off < base {
						base = stv.Off
					}
					if stv.Off+1 > end {
						end = stv.Off + 1
					}
				}
			})
			span = end - base
			bcomm := s.newBComm(layout.Name, layout.Size)
			fill := s.fn.NewBasic(simple.KBlkRead)
			fill.P = p
			fill.Local = bcomm
			fill.Off = base
			fill.Size = span
			s.rw.Register(fill)
			s.fills[bcomm] = fillInfo{p: p, off: base, size: span}
			ins = append(ins, fill)
			s.fr.BlockedReads++
			for _, c := range group {
				sh := shadow{v: bcomm, off: c.t.Off, field: c.t.Field, blk: true}
				s.commit(c.t, c.labels, sh)
			}
		} else {
			for _, c := range group {
				// The shadow's type is the loaded field's type, taken from
				// any destination of the covered loads.
				dst := s.loadDst(c.labels)
				if dst == nil {
					continue
				}
				comm := s.newComm(dst)
				get := s.fn.NewBasic(simple.KGetF)
				get.Dst = comm
				get.P = p
				get.Field = c.t.Field
				get.Off = c.t.Off
				s.rw.Register(get)
				ins = append(ins, get)
				s.fr.PipelinedReads++
				sh := shadow{v: comm, field: c.t.Field}
				s.commit(c.t, c.labels, sh)
			}
		}
	}
	return ins
}

func containsLabel(labels []int, l int) bool {
	for _, x := range labels {
		if x == l {
			return true
		}
	}
	return false
}

// loadDst finds the destination variable of one of the covered loads, to
// size/type the comm temporary.
func (s *sel) loadDst(labels []int) *simple.Var {
	for _, l := range labels {
		b := s.fn.Basics[l]
		if b.Kind != simple.KAssign {
			continue
		}
		if lv, ok := b.Lhs.(simple.VarLV); ok {
			return lv.V
		}
	}
	return nil
}

// commit records a selection: hash the covered labels, bind shadows for the
// loads, and mandate shadow updates for stores the tuple floated across.
func (s *sel) commit(t *placement.Tuple, labels []int, sh shadow) {
	key := t.Key()
	hs := s.handledR[key]
	if hs == nil {
		hs = make(map[int]bool)
		s.handledR[key] = hs
	}
	for i, l := range labels {
		hs[l] = true
		s.readShadow[l] = sh
		if i > 0 {
			s.fr.ReadsEliminated++
		}
	}
	for _, w := range t.CrossedW {
		s.storeShadow[w] = sh
	}
}

// --------------------------------------------------- dereference safety ---

// derefSafe reports whether, starting at the placement point described by
// the stack, the original program dereferences p on all forward paths
// before p can change (footnote 2 of the paper: this licenses inserting an
// early dereference).
func (s *sel) derefSafe(p *simple.Var, stack []frame) bool {
	for level := len(stack) - 1; level >= 0; level-- {
		f := stack[level]
		switch s.scanSeq(f.seq, f.idx, p) {
		case scanFound:
			return true
		case scanKilled:
			return false
		}
		// Fell off this sequence: continue after the enclosing construct.
	}
	return false
}

type scanResult int

const (
	scanFall   scanResult = iota // no deref yet, p unchanged: keep scanning
	scanFound                    // dereferenced on all paths
	scanKilled                   // p may change (or the path ends) first
)

func (s *sel) scanSeq(seq *simple.Seq, from int, p *simple.Var) scanResult {
	for i := from; i < len(seq.Stmts); i++ {
		switch r := s.scanStmt(seq.Stmts[i], p); r {
		case scanFound, scanKilled:
			return r
		}
	}
	return scanFall
}

func (s *sel) scanStmt(st simple.Stmt, p *simple.Var) scanResult {
	switch c := st.(type) {
	case *simple.Basic:
		if basicDerefs(c, p) {
			return scanFound
		}
		if c.Kind == simple.KReturn {
			return scanKilled
		}
		if s.rw.VarWritten(p, c) {
			return scanKilled
		}
		return scanFall
	case *simple.Seq:
		return s.scanSeq(c, 0, p)
	case *simple.If:
		t := s.scanSeq(c.Then, 0, p)
		e := s.scanSeq(c.Else, 0, p)
		if t == scanKilled || e == scanKilled {
			return scanKilled
		}
		if t == scanFound && e == scanFound {
			return scanFound
		}
		return scanFall
	case *simple.Switch:
		all := scanFound
		hasDefault := false
		for _, cc := range c.Cases {
			if cc.Vals == nil {
				hasDefault = true
			}
			switch s.scanSeq(cc.Body, 0, p) {
			case scanKilled:
				return scanKilled
			case scanFall:
				all = scanFall
			}
		}
		if !hasDefault {
			all = scanFall
		}
		return all
	case *simple.While, *simple.Forall:
		// The body may execute zero times; only the kill side matters.
		if s.rw.VarWritten(p, st) {
			return scanKilled
		}
		return scanFall
	case *simple.Do:
		// Executes at least once.
		r := s.scanSeq(c.Body, 0, p)
		if r != scanFall {
			return r
		}
		if s.rw.VarWritten(p, st) {
			return scanKilled
		}
		return scanFall
	case *simple.Par:
		for _, arm := range c.Arms {
			switch s.scanSeq(arm, 0, p) {
			case scanFound:
				return scanFound
			case scanKilled:
				return scanKilled
			}
		}
		return scanFall
	}
	return scanFall
}

// basicDerefs reports whether the basic statement dereferences p.
func basicDerefs(b *simple.Basic, p *simple.Var) bool {
	switch b.Kind {
	case simple.KAssign:
		if ld, ok := b.Rhs.(simple.LoadRV); ok && ld.P == p {
			return true
		}
		if stv, ok := b.Lhs.(simple.StoreLV); ok && stv.P == p {
			return true
		}
	case simple.KBlkCopy:
		return b.P == p || b.P2 == p
	case simple.KGetF, simple.KPutF, simple.KBlkRead, simple.KBlkWrite:
		return b.P == p
	}
	return false
}
