package commsel

import (
	"fmt"
	"sort"

	"repro/internal/earthc"
	"repro/internal/placement"
	"repro/internal/simple"
)

// wfloat is a remote write "in flight": a group of direct stores to the same
// (pointer, field) whose remote write-back is being delayed downwards in
// search of a blocking opportunity (the paper's latest-placement policy for
// writes).
type wfloat struct {
	key    placement.Key
	p      *simple.Var
	off    int
	field  string
	labels map[int]bool // store labels merged into this float
	sh     shadow       // local copy the stores update; may be invalid
	moved  bool         // float advanced past at least one statement
}

// writesSeq walks a sequence in execution order, floating remote writes
// downward. Returns the floats still alive at the end of the sequence
// (the caller decides whether they may escape the enclosing construct).
func (s *sel) writesSeq(seq *simple.Seq) map[placement.Key]*wfloat {
	active := make(map[placement.Key]*wfloat)
	for i := 0; i < len(seq.Stmts); i++ {
		st := seq.Stmts[i]
		// 1. Stop floats the next statement kills.
		var stopped []*wfloat
		for key, f := range active {
			if s.killsFloat(f, st) {
				stopped = append(stopped, f)
				delete(active, key)
			}
		}
		if len(stopped) > 0 {
			n := s.materialize(stopped, seq, i)
			i += n
			st = seq.Stmts[i]
		}
		// 2. Surviving floats have now moved.
		for _, f := range active {
			f.moved = true
		}
		// 3. Process the statement itself.
		switch c := st.(type) {
		case *simple.Basic:
			if s.opt.NoWriteMotion {
				// No motion, but shadow updates mandated by the read pass
				// (reads hoisted across this store) must still happen: the
				// store updates the shadow and a put issues in place.
				i += s.pinWrite(c, seq, i)
			} else if f := s.genFloat(c); f != nil {
				s.mergeFloat(active, f)
			}
			s.noteBasicForClean(c)
		case *simple.Seq:
			inner := s.writesSeq(c)
			for _, f := range inner {
				s.mergeFloat(active, f)
			}
		case *simple.If:
			tF := s.writesSeq(c.Then)
			eF := s.writesSeq(c.Else)
			// Each unmerged float materializes in its own call, so walk the
			// maps in sorted key order to keep the emitted statement order
			// independent of map iteration.
			for _, key := range sortedFloatKeys(tF) {
				ft := tF[key]
				fe, ok := eF[key]
				if ok && shadowsCompatible(ft.sh, fe.sh) {
					// Written on both alternatives: the write may move
					// below the conditional (the paper's intersection
					// rule).
					delete(eF, key)
					merged := mergeTwo(ft, fe)
					merged.moved = true
					s.mergeFloat(active, merged)
					continue
				}
				s.materialize([]*wfloat{ft}, c.Then, len(c.Then.Stmts))
			}
			for _, key := range sortedFloatKeys(eF) {
				s.materialize([]*wfloat{eF[key]}, c.Else, len(c.Else.Stmts))
			}
		case *simple.Switch:
			s.switchWrites(c, active)
		case *simple.While:
			s.flushSub(c.Eval)
			s.flushSub(c.Body)
		case *simple.Do:
			s.flushSub(c.Body)
			s.flushSub(c.Eval)
		case *simple.Forall:
			s.flushSub(c.Eval)
			s.flushSub(c.Body)
			s.flushSub(c.Step)
		case *simple.Par:
			for _, arm := range c.Arms {
				s.flushSub(arm)
			}
		}
	}
	return active
}

// flushSub processes a child sequence whose writes may not escape (loop
// bodies, parallel arms): floats alive at its end are materialized there.
func (s *sel) flushSub(seq *simple.Seq) {
	esc := s.writesSeq(seq)
	s.materialize(mapVals(esc), seq, len(seq.Stmts))
}

// switchWrites applies the all-alternatives intersection rule to a switch.
func (s *sel) switchWrites(c *simple.Switch, active map[placement.Key]*wfloat) {
	caseFloats := make([]map[placement.Key]*wfloat, len(c.Cases))
	hasDefault := false
	for i, cc := range c.Cases {
		caseFloats[i] = s.writesSeq(cc.Body)
		if cc.Vals == nil {
			hasDefault = true
		}
	}
	if len(c.Cases) == 0 {
		return
	}
	for key, f0 := range caseFloats[0] {
		inAll := hasDefault
		var group []*wfloat
		if inAll {
			group = append(group, f0)
			for _, cf := range caseFloats[1:] {
				f, ok := cf[key]
				if !ok || !shadowsCompatible(f0.sh, f.sh) {
					inAll = false
					break
				}
				group = append(group, f)
			}
		}
		if inAll {
			merged := group[0]
			for _, f := range group[1:] {
				merged = mergeTwo(merged, f)
			}
			merged.moved = true
			for i := range caseFloats {
				delete(caseFloats[i], key)
			}
			s.mergeFloat(active, merged)
		}
	}
	for i, cf := range caseFloats {
		if len(cf) > 0 {
			s.materialize(mapVals(cf), c.Cases[i].Body, len(c.Cases[i].Body.Stmts))
		}
	}
}

// sortedFloatKeys returns m's keys ordered by (pointer name, offset), fixing
// the order of per-float materialize calls regardless of map iteration.
func sortedFloatKeys(m map[placement.Key]*wfloat) []placement.Key {
	keys := make([]placement.Key, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].P.Name != keys[j].P.Name {
			return keys[i].P.Name < keys[j].P.Name
		}
		return keys[i].Off < keys[j].Off
	})
	return keys
}

func mapVals(m map[placement.Key]*wfloat) []*wfloat {
	out := make([]*wfloat, 0, len(m))
	for _, f := range m {
		out = append(out, f)
	}
	return out
}

func shadowsCompatible(a, b shadow) bool {
	if !a.valid() || !b.valid() {
		return !a.valid() && !b.valid()
	}
	return a.v == b.v && a.off == b.off
}

func mergeTwo(a, b *wfloat) *wfloat {
	for l := range b.labels {
		a.labels[l] = true
	}
	if !a.sh.valid() {
		a.sh = b.sh
	}
	a.moved = a.moved || b.moved
	return a
}

func (s *sel) mergeFloat(active map[placement.Key]*wfloat, f *wfloat) {
	if have, ok := active[f.key]; ok {
		mergeTwo(have, f)
		return
	}
	active[f.key] = f
}

// genFloat creates a float for a basic statement's remote store.
func (s *sel) genFloat(b *simple.Basic) *wfloat {
	if s.opt.NoWriteMotion || b.Kind != simple.KAssign {
		return nil
	}
	stv, ok := b.Lhs.(simple.StoreLV)
	if !ok || !s.loc.RemoteLoad(stv.P) {
		return nil
	}
	sh := s.storeShadow[b.Label]
	if !sh.valid() {
		// No read float crossed this store, but if a clean bcomm buffer
		// already mirrors the pointed-to struct, update it instead of a
		// fresh scalar: that is what lets the write-back be blocked (the
		// paper's RemoteFill condition — every field locally valid). When
		// several buffers qualify, take the lowest-named one so the choice
		// does not depend on map iteration order.
		var best *simple.Var
		for bc, fi := range s.fills {
			if fi.p == stv.P && stv.Off >= fi.off && stv.Off < fi.off+fi.size && s.blkClean[bc] {
				if best == nil || bc.Name < best.Name {
					best = bc
				}
			}
		}
		if best != nil {
			sh = shadow{v: best, off: stv.Off, field: stv.Field, blk: true}
			s.storeShadow[b.Label] = sh
		}
	}
	return &wfloat{
		key:    placement.Key{P: stv.P, Off: stv.Off},
		p:      stv.P,
		off:    stv.Off,
		field:  stv.Field,
		labels: map[int]bool{b.Label: true},
		sh:     sh,
	}
}

// pinWrite handles a remote store under NoWriteMotion: when the read pass
// mandated a shadow for it, the store is rewritten to the shadow and a put
// of the stored value issues immediately after it. Returns the number of
// statements inserted.
func (s *sel) pinWrite(b *simple.Basic, seq *simple.Seq, i int) int {
	if b.Kind != simple.KAssign {
		return 0
	}
	stv, ok := b.Lhs.(simple.StoreLV)
	if !ok {
		return 0
	}
	sh := s.storeShadow[b.Label]
	if !sh.valid() {
		return 0
	}
	b.Lhs = sh.storeLV()
	s.fr.WritesRewritten++
	s.rw.Register(b)
	put := s.fn.NewBasic(simple.KPutF)
	put.P = stv.P
	put.Field = stv.Field
	put.Off = stv.Off
	if sh.blk {
		put.Local = sh.v
		put.Off2 = sh.off
	} else {
		put.Val = simple.VarAtom{V: sh.v}
	}
	s.rw.Register(put)
	insertStmts(seq, i+1, []simple.Stmt{put})
	s.fr.PipelinedWrites++
	return 1
}

// noteBasicForClean maintains the per-bcomm cleanliness flags: a bcomm
// buffer mirrors the remote struct from its fill until an aliased write or
// an unshadowed direct store to the same object occurs.
func (s *sel) noteBasicForClean(b *simple.Basic) {
	switch b.Kind {
	case simple.KBlkRead:
		s.blkClean[b.Local] = true
	case simple.KAssign:
		stv, ok := b.Lhs.(simple.StoreLV)
		if !ok || !s.loc.RemoteLoad(stv.P) {
			return
		}
		sh := s.storeShadow[b.Label]
		// A direct store that does not update a bcomm makes any bcomm of
		// the same pointer stale for write-back purposes.
		for bc := range s.blkClean {
			if sh.valid() && sh.blk && sh.v == bc {
				continue
			}
			if s.bcommMayCover(bc, stv.P) {
				s.blkClean[bc] = false
			}
		}
	}
	// Aliased writes through any route invalidate overlapping bcomms.
	for bc, clean := range s.blkClean {
		if !clean {
			continue
		}
		p, size := s.bcommSource(bc)
		if p == nil {
			continue
		}
		if b.Kind == simple.KAssign {
			if stv, ok := b.Lhs.(simple.StoreLV); ok && stv.P == p {
				continue // handled above (direct store path)
			}
		}
		if s.aliasedWriteAnyField(p, size, b) {
			s.blkClean[bc] = false
		}
	}
}

// bcommFill records which pointer each bcomm was filled from; maintained at
// fill insertion time via fillInfo. off/size delimit the filled span.
type fillInfo struct {
	p    *simple.Var
	off  int
	size int
}

func (s *sel) bcommSource(bc *simple.Var) (*simple.Var, int) {
	fi, ok := s.fills[bc]
	if !ok {
		return nil, 0
	}
	return fi.p, fi.size
}

func (s *sel) bcommMayCover(bc *simple.Var, p *simple.Var) bool {
	fi, ok := s.fills[bc]
	return ok && fi.p == p
}

// aliasedWriteAnyField reports whether statement st may write any word of
// *p's pointee through an alias.
func (s *sel) aliasedWriteAnyField(p *simple.Var, size int, st simple.Stmt) bool {
	for off := 0; off < size; off++ {
		if s.rw.AccessedViaAlias(p, off, st, true) {
			return true
		}
	}
	return false
}

// killsFloat reports whether the float must be materialized before st.
func (s *sel) killsFloat(f *wfloat, st simple.Stmt) bool {
	if s.rw.VarWritten(f.p, st) {
		return true
	}
	if s.rw.AccessedViaAlias(f.p, f.off, st, true) ||
		s.rw.AccessedViaAlias(f.p, f.off, st, false) {
		return true
	}
	if s.containsReturn(st) {
		return true
	}
	// Direct reads of the same location must consume our shadow; anything
	// else (a foreign shadow, an inserted get/fill, a block copy) would
	// observe the stale remote value.
	return s.foreignAccess(f, st)
}

func (s *sel) containsReturn(st simple.Stmt) bool {
	if s.retMemo == nil {
		s.retMemo = make(map[simple.Stmt]bool)
	}
	if v, ok := s.retMemo[st]; ok {
		return v
	}
	found := false
	simple.WalkBasics(st, func(b *simple.Basic) {
		if b.Kind == simple.KReturn {
			found = true
		}
	})
	s.retMemo[st] = found
	return found
}

// foreignAccess scans st's current subtree (including statements inserted by
// the read pass) for accesses to the float's location that are not
// redirected to the float's shadow.
func (s *sel) foreignAccess(f *wfloat, st simple.Stmt) bool {
	_, isBasic := st.(*simple.Basic)
	found := false
	simple.WalkBasics(st, func(b *simple.Basic) {
		if found {
			return
		}
		switch b.Kind {
		case simple.KAssign:
			// A direct store to the same location nested inside a compound
			// would execute after this float's write-back if we floated
			// past — a write-after-write inversion. (A store at the same
			// sequence level instead merges into the float via genFloat.)
			if !isBasic {
				if stv, ok := b.Lhs.(simple.StoreLV); ok && stv.P == f.p && stv.Off == f.off {
					found = true
					return
				}
			}
			// Direct load of the same location: after the read pass these
			// have been redirected; compare shadows. (LoadRV means the read
			// pass did not touch it — always foreign.)
			if ld, ok := b.Rhs.(simple.LoadRV); ok && ld.P == f.p && ld.Off == f.off {
				found = true
				return
			}
			if lrv, ok := b.Rhs.(simple.LocalLoadRV); ok {
				sh := f.sh
				if sh.valid() && sh.blk && lrv.Base == sh.v && lrv.Off == sh.off {
					return // reading our shadow: consistent
				}
				// Reading some other local: irrelevant.
				return
			}
			if arv, ok := b.Rhs.(simple.AtomRV); ok {
				if v := simple.AtomVar(arv.A); v != nil && f.sh.valid() && !f.sh.blk && v == f.sh.v {
					return // reading our comm shadow: consistent
				}
			}
			// A direct store to the same location with a different shadow
			// would split the region; stores were checked for shadow
			// compatibility at merge time, so nothing to do here.
		case simple.KGetF:
			if b.P == f.p && b.Off == f.off {
				found = true
			}
		case simple.KBlkRead, simple.KBlkWrite:
			if b.P == f.p && f.off >= b.Off && f.off < b.Off+b.Size {
				// A fill or write-back of an overlapping region that is not
				// ours.
				if !(f.sh.valid() && f.sh.blk && b.Local == f.sh.v) {
					found = true
				}
			}
		case simple.KBlkCopy:
			if b.P == f.p && f.off >= b.Off && f.off < b.Off+b.Size {
				found = true
			}
			if b.P2 == f.p && f.off >= b.Off2 && f.off < b.Off2+b.Size {
				found = true
			}
		}
	})
	return found
}

// materialize emits the remote write-backs for the stopped floats just
// before index idx of seq, rewriting their stores to shadow updates.
// Returns the number of statements inserted.
func (s *sel) materialize(floats []*wfloat, seq *simple.Seq, idx int) int {
	if len(floats) == 0 {
		return 0
	}
	sort.Slice(floats, func(i, j int) bool {
		if floats[i].p.Name != floats[j].p.Name {
			return floats[i].p.Name < floats[j].p.Name
		}
		return floats[i].off < floats[j].off
	})

	var ins []simple.Stmt

	// Identify blocked groups: floats sharing one clean bcomm shadow.
	byBComm := make(map[*simple.Var][]*wfloat)
	var rest []*wfloat
	for _, f := range floats {
		if !f.sh.valid() && !f.moved && len(f.labels) == 1 {
			// Never moved and no shadow mandated: leave the original
			// remote store in place.
			continue
		}
		if !f.sh.valid() {
			// Needs a fresh comm shadow.
			f.sh = shadow{v: s.newCommForStore(f), field: f.field}
		}
		s.rewriteStores(f)
		if f.sh.blk && s.blkClean[f.sh.v] {
			byBComm[f.sh.v] = append(byBComm[f.sh.v], f)
		} else {
			rest = append(rest, f)
		}
	}

	var bcs []*simple.Var
	for bc := range byBComm {
		bcs = append(bcs, bc)
	}
	sort.Slice(bcs, func(i, j int) bool { return bcs[i].Name < bcs[j].Name })
	for _, bc := range bcs {
		group := byBComm[bc]
		// The blocked write-back covers the contiguous span of the written
		// fields; every word in it is fresh (filled, then updated by the
		// redirected stores, with no aliased writes since — blkClean).
		wmin, wmax := group[0].off, group[0].off
		for _, f := range group {
			if f.off < wmin {
				wmin = f.off
			}
			if f.off > wmax {
				wmax = f.off
			}
		}
		fi := s.fills[bc]
		spanOK := wmin >= fi.off && wmax < fi.off+fi.size
		if spanOK && len(group) >= s.opt.BlockThreshold && !s.opt.NoBlocking {
			blk := s.fn.NewBasic(simple.KBlkWrite)
			blk.P = group[0].p
			blk.Local = bc
			blk.Off = wmin
			blk.Size = wmax + 1 - wmin
			s.rw.Register(blk)
			ins = append(ins, blk)
			s.fr.BlockedWrites++
		} else {
			rest = append(rest, group...)
		}
	}
	sort.Slice(rest, func(i, j int) bool {
		if rest[i].p.Name != rest[j].p.Name {
			return rest[i].p.Name < rest[j].p.Name
		}
		return rest[i].off < rest[j].off
	})
	for _, f := range rest {
		put := s.fn.NewBasic(simple.KPutF)
		put.P = f.p
		put.Field = f.field
		put.Off = f.off
		if f.sh.blk {
			put.Local = f.sh.v
			put.Off2 = f.sh.off
		} else {
			put.Val = simple.VarAtom{V: f.sh.v}
		}
		s.rw.Register(put)
		ins = append(ins, put)
		s.fr.PipelinedWrites++
	}
	insertStmts(seq, idx, ins)
	return len(ins)
}

// newCommForStore creates a scalar shadow typed like the stored value.
func (s *sel) newCommForStore(f *wfloat) *simple.Var {
	var t earthc.Type = &earthc.PrimType{Kind: earthc.Int}
	for l := range f.labels {
		b := s.fn.Basics[l]
		if b.Kind != simple.KAssign {
			continue
		}
		if arv, ok := b.Rhs.(simple.AtomRV); ok {
			switch a := arv.A.(type) {
			case simple.VarAtom:
				t = a.V.Type
			case simple.FloatAtom:
				t = &earthc.PrimType{Kind: earthc.Double}
			case simple.NullAtom:
				t = &earthc.PtrType{Elem: &earthc.PrimType{Kind: earthc.Void}}
			}
		}
		break
	}
	s.ncomm++
	v := &simple.Var{Name: fmt.Sprintf("comm%d", s.ncomm), Type: t,
		Kind: simple.VarComm, Size: 1}
	return s.fn.AddLocal(v)
}

// rewriteStores redirects every store of the float to the shadow.
func (s *sel) rewriteStores(f *wfloat) {
	for l := range f.labels {
		b := s.fn.Basics[l]
		if b.Kind != simple.KAssign {
			continue
		}
		if _, ok := b.Lhs.(simple.StoreLV); !ok {
			continue // already rewritten (shared labels across merges)
		}
		b.Lhs = f.sh.storeLV()
		s.fr.WritesRewritten++
		s.rw.Register(b)
	}
}
