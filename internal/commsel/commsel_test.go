package commsel_test

import (
	"strings"
	"testing"

	"repro/internal/commsel"
	"repro/internal/core"
	"repro/internal/simple"
)

func optimized(t *testing.T, src string, sel commsel.Options) *core.Unit {
	t.Helper()
	u, err := core.NewPipeline(core.Options{Optimize: true, NoInline: true, Sel: sel}).Compile("t.ec", src)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func fnText(u *core.Unit, name string) string {
	return simple.FuncString(u.Simple.FuncByName(name), simple.PrintOptions{})
}

const distanceSrc = `
struct Point { double x; double y; };
double distance(Point *p) {
	double dist_p;
	dist_p = sqrt((p->x * p->x) + (p->y * p->y));
	return dist_p;
}
int main() { return 0; }
`

// TestFigure3Pipelined: distance() has 4 reads of 2 fields; with the
// default 3-word threshold it becomes two pipelined gets (Figure 3(c))
// with the redundant reads eliminated.
func TestFigure3Pipelined(t *testing.T) {
	u := optimized(t, distanceSrc, commsel.Options{})
	out := fnText(u, "distance")
	if strings.Count(out, "get_sync") != 2 {
		t.Errorf("want 2 pipelined gets (Figure 3(c)):\n%s", out)
	}
	if strings.Contains(out, "blkmov") {
		t.Errorf("2 fields are under the 3-word threshold; no blkmov expected:\n%s", out)
	}
	tot := u.Report.Totals()
	if tot.ReadsEliminated != 2 {
		t.Errorf("2 redundant reads should be eliminated, got %d", tot.ReadsEliminated)
	}
}

// TestFigure3Blocked: with threshold 2 the same function blocks the whole
// Point (Figure 3(d)).
func TestFigure3Blocked(t *testing.T) {
	u := optimized(t, distanceSrc, commsel.Options{BlockThreshold: 2})
	out := fnText(u, "distance")
	if !strings.Contains(out, "blkmov") {
		t.Errorf("threshold 2 should block the Point (Figure 3(d)):\n%s", out)
	}
	if strings.Contains(out, "get_sync") {
		t.Errorf("all reads should go through the bcomm buffer:\n%s", out)
	}
}

const scalePointSrc = `
struct Point { double x; double y; };
double scale(double v, double k) { return v * k; }
void scale_point(Point *p, double k) {
	p->x = scale(p->x, k);
	p->y = scale(p->y, k);
}
int main() { return 0; }
`

// TestFigure4ReadsEarlyWritesLate: scale_point's reads hoist to the top and
// its writes sink to the bottom (Figure 4(c)).
func TestFigure4ReadsEarlyWritesLate(t *testing.T) {
	u := optimized(t, scalePointSrc, commsel.Options{})
	out := fnText(u, "scale_point")
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Find positions: both gets must precede both calls; both puts must
	// come after both calls.
	var lastGet, firstPut, firstCall, lastCall int
	for i, l := range lines {
		switch {
		case strings.Contains(l, "get_sync"):
			lastGet = i
		case strings.Contains(l, "put_sync"):
			if firstPut == 0 {
				firstPut = i
			}
		case strings.Contains(l, "scale("):
			if firstCall == 0 {
				firstCall = i
			}
			lastCall = i
		}
	}
	if lastGet == 0 || firstPut == 0 || firstCall == 0 {
		t.Fatalf("expected gets, puts and calls:\n%s", out)
	}
	if lastGet > firstCall {
		t.Errorf("reads should be collected before the first call (Figure 4(c)):\n%s", out)
	}
	if firstPut < lastCall {
		t.Errorf("writes should be delayed past the last call (Figure 4(c)):\n%s", out)
	}
}

// TestNoWriteMotionAblation: with write motion disabled the stores stay at
// their original statements.
func TestNoWriteMotionAblation(t *testing.T) {
	u := optimized(t, scalePointSrc, commsel.Options{NoWriteMotion: true})
	out := fnText(u, "scale_point")
	if strings.Contains(out, "put_sync") {
		t.Errorf("NoWriteMotion should leave plain stores:\n%s", out)
	}
	if u.Report.Totals().PipelinedWrites != 0 {
		t.Errorf("no writes should be moved")
	}
}

// TestNoReadMotionAblation: reads become split-phase gets at their own
// statements, with no cross-statement reuse.
func TestNoReadMotionAblation(t *testing.T) {
	u := optimized(t, distanceSrc, commsel.Options{NoReadMotion: true})
	out := fnText(u, "distance")
	if got := strings.Count(out, "get_sync"); got != 4 {
		t.Errorf("NoReadMotion keeps all 4 reads, got %d:\n%s", got, out)
	}
}

// TestHashTableDedup: a second selection point never re-covers labels
// already in the hash table (the paper's redundancy elimination).
func TestHashTableDedup(t *testing.T) {
	src := `
struct P { int a; };
int g(P *p, int c) {
	int x;
	int y;
	x = p->a;
	if (c) {
		y = p->a;
	} else {
		y = 0;
	}
	return x + y;
}
int main() { return 0; }
`
	u := optimized(t, src, commsel.Options{})
	out := fnText(u, "g")
	if got := strings.Count(out, "get_sync"); got != 1 {
		t.Errorf("both reads share one get (hash-table dedup), got %d:\n%s", got, out)
	}
}

// TestBlockedReadAndWrite: a function touching >= 3 fields of one struct
// both reads-early and writes-late through a bcomm buffer, with a blocked
// write-back (the power pattern, Figure 11(a)).
func TestBlockedReadAndWrite(t *testing.T) {
	src := `
struct Branch { double r; double x; double alpha; double p; double q; };
void compute(Branch *br) {
	double a;
	double b;
	double c;
	a = br->r;
	b = br->x;
	c = br->alpha;
	br->p = a * b + c;
	br->q = a - b;
	br->alpha = c + 1.0;
}
int main() { return 0; }
`
	u := optimized(t, src, commsel.Options{})
	out := fnText(u, "compute")
	if !strings.Contains(out, "blkmov") {
		t.Fatalf("expected a blocked read:\n%s", out)
	}
	if !strings.Contains(out, "/* write */") {
		t.Errorf("three stores through one clean bcomm should block the write-back:\n%s", out)
	}
	// All field accesses should be redirected to the buffer.
	if strings.Contains(out, "br->r;") {
		t.Errorf("reads should go through bcomm:\n%s", out)
	}
}

// TestDerefSafetyBlocksSpeculation: a pointer dereferenced only inside a
// conditional must not be fetched unconditionally at the top.
func TestDerefSafetyBlocksSpeculation(t *testing.T) {
	src := `
struct P { int a; };
int g(P *p, int c) {
	int x;
	x = 0;
	if (c) {
		x = p->a;
	}
	return x;
}
int main() { return 0; }
`
	u := optimized(t, src, commsel.Options{})
	fn := u.Simple.FuncByName("g")
	// The get must be inside the if, not before it: the first statement of
	// the body must not dereference p.
	first := fn.Body.Stmts[0]
	if b, ok := first.(*simple.Basic); ok {
		if b.Kind == simple.KGetF || b.Kind == simple.KBlkRead {
			t.Errorf("unsafe speculative fetch at function entry:\n%s", fnText(u, "g"))
		}
	}
}

// TestSpeculativeOption: with Speculative set, the same read may hoist.
func TestSpeculativeOption(t *testing.T) {
	src := `
struct P { int a; };
int g(P *p, int c) {
	int x;
	x = 0;
	while (c > 0) {
		x = x + p->a;
		c = c - 1;
	}
	return x;
}
int main() { return 0; }
`
	// Non-speculative: the loop may run zero times, and p is only
	// dereferenced inside — but the in-loop tuple has frequency 10 and
	// hoists to before the loop only if proven safe. With Speculative it
	// always hoists.
	uSafe := optimized(t, src, commsel.Options{})
	uSpec := optimized(t, src, commsel.Options{Speculative: true})
	safeTop := uSafe.Simple.FuncByName("g").Body.Stmts[0]
	specTop := uSpec.Simple.FuncByName("g").Body.Stmts[0]
	if b, ok := safeTop.(*simple.Basic); ok && b.Kind == simple.KGetF {
		t.Errorf("non-speculative build must not hoist above the zero-trip loop:\n%s", fnText(uSafe, "g"))
	}
	if b, ok := specTop.(*simple.Basic); !ok || b.Kind != simple.KGetF {
		t.Errorf("speculative build should hoist the loop-invariant read:\n%s", fnText(uSpec, "g"))
	}
}

// TestLoopInvariantHoisting: reads of loop-invariant locations hoist above
// the loop when a dereference is guaranteed (the paper's t->x/t->y).
func TestLoopInvariantHoisting(t *testing.T) {
	src := `
struct P { int a; struct P *next; };
int g(P *list, P *t) {
	int s;
	s = t->a;
	while (list != NULL) {
		s = s + t->a;
		list = list->next;
	}
	return s;
}
int main() { return 0; }
`
	u := optimized(t, src, commsel.Options{})
	fn := u.Simple.FuncByName("g")
	// Exactly one get for t->a, before the loop.
	gets := 0
	simple.WalkBasics(fn.Body, func(b *simple.Basic) {
		if b.Kind == simple.KGetF && b.P.Name == "t" {
			gets++
		}
	})
	if gets != 1 {
		t.Errorf("t->a should be fetched once (hoisted, reused), got %d:\n%s",
			gets, fnText(u, "g"))
	}
}

// TestLocalPointersUntouched: accesses through declared-local pointers are
// not remote operations and must not be transformed.
func TestLocalPointersUntouched(t *testing.T) {
	src := `
struct P { int a; int b; int c; };
int g(P local *p) {
	return p->a + p->b + p->c;
}
int main() { return 0; }
`
	u := optimized(t, src, commsel.Options{})
	out := fnText(u, "g")
	if strings.Contains(out, "get_sync") || strings.Contains(out, "blkmov") {
		t.Errorf("local-pointer accesses must stay plain loads:\n%s", out)
	}
}

// TestMaxBlockWaste: widely scattered fields make the fill span too wasteful
// to block, while the same number of contiguous fields blocks fine (the
// motivation for the field-reordering extension).
func TestMaxBlockWaste(t *testing.T) {
	scattered := `
struct Big {
	int a;
	int p01; int p02; int p03; int p04; int p05; int p06; int p07;
	int b;
	int p08; int p09; int p10; int p11; int p12; int p13; int p14;
	int c;
};
int g(Big *p) { return p->a + p->b + p->c; }
int main() { return 0; }
`
	u := optimized(t, scattered, commsel.Options{MaxBlockWaste: 4})
	out := fnText(u, "g")
	if strings.Contains(out, "blkmov") {
		t.Errorf("a 17-word span for 3 fields exceeds the waste bound:\n%s", out)
	}
	if strings.Count(out, "get_sync") != 3 {
		t.Errorf("expected 3 pipelined gets:\n%s", out)
	}

	clustered := `
struct Big {
	int a; int b; int c;
	int p01; int p02; int p03; int p04; int p05; int p06; int p07;
	int p08; int p09; int p10; int p11; int p12; int p13; int p14;
};
int g(Big *p) { return p->a + p->b + p->c; }
int main() { return 0; }
`
	u2 := optimized(t, clustered, commsel.Options{MaxBlockWaste: 4})
	out2 := fnText(u2, "g")
	if !strings.Contains(out2, "blkmov") {
		t.Errorf("clustered fields should block over a 3-word span:\n%s", out2)
	}
}

// TestReportString smoke-checks the report rendering.
func TestReportString(t *testing.T) {
	u := optimized(t, distanceSrc, commsel.Options{})
	s := u.Report.String()
	if !strings.Contains(s, "pipelined") {
		t.Errorf("report should mention pipelined ops: %s", s)
	}
}
