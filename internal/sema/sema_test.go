package sema

import (
	"strings"
	"testing"

	"repro/internal/earthc"
)

func check(t *testing.T, src string) (*Program, error) {
	t.Helper()
	f, err := earthc.ParseFile("t.ec", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Check(f)
}

func mustCheckSrc(t *testing.T, src string) *Program {
	t.Helper()
	p, err := check(t, src)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return p
}

func wantError(t *testing.T, src, fragment string) {
	t.Helper()
	_, err := check(t, src)
	if err == nil {
		t.Fatalf("expected error containing %q, got none", fragment)
	}
	if !strings.Contains(err.Error(), fragment) {
		t.Fatalf("error %q does not contain %q", err.Error(), fragment)
	}
}

func TestLayoutFlat(t *testing.T) {
	p := mustCheckSrc(t, `
struct Point {
	double x;
	double y;
	struct Point *next;
};
int main() { return 0; }
`)
	si := p.Structs["Point"]
	if si.Size != 3 {
		t.Errorf("Point size = %d, want 3 words", si.Size)
	}
	if si.Offsets["x"] != 0 || si.Offsets["y"] != 1 || si.Offsets["next"] != 2 {
		t.Errorf("offsets wrong: %v", si.Offsets)
	}
}

func TestLayoutNestedStruct(t *testing.T) {
	p := mustCheckSrc(t, `
struct Hosp {
	int personnel;
	int free_personnel;
};
struct Village {
	int level;
	struct Hosp hosp;
	struct Village *parent;
};
int main() { return 0; }
`)
	v := p.Structs["Village"]
	if v.Size != 4 {
		t.Errorf("Village size = %d, want 4", v.Size)
	}
	if v.Offsets["hosp"] != 1 || v.Offsets["parent"] != 3 {
		t.Errorf("offsets wrong: %v", v.Offsets)
	}
}

func TestLayoutArrayField(t *testing.T) {
	p := mustCheckSrc(t, `
struct Buf {
	int n;
	double vals[4];
	int tail;
};
int main() { return 0; }
`)
	b := p.Structs["Buf"]
	if b.Size != 6 {
		t.Errorf("Buf size = %d, want 6", b.Size)
	}
	if b.Offsets["tail"] != 5 {
		t.Errorf("tail offset = %d, want 5", b.Offsets["tail"])
	}
}

func TestRecursiveStructValueRejected(t *testing.T) {
	wantError(t, `
struct S { struct S inner; };
int main() { return 0; }
`, "recursive struct value")
}

func TestUndeclaredIdent(t *testing.T) {
	wantError(t, `int main() { return nope; }`, "undeclared identifier")
}

func TestDuplicateLocal(t *testing.T) {
	wantError(t, `int main() { int x; int x; return 0; }`, "redeclaration")
}

func TestShadowingInNestedScopeAllowed(t *testing.T) {
	mustCheckSrc(t, `
int main() {
	int x;
	x = 1;
	if (x) {
		int x;
		x = 2;
	}
	return x;
}
`)
}

func TestTypeMismatchAssign(t *testing.T) {
	wantError(t, `
struct A { int v; };
struct B { int v; };
int main() {
	A *a;
	B *b;
	a = alloc(A);
	b = a;
	return 0;
}
`, "cannot assign")
}

func TestDoubleToIntRejected(t *testing.T) {
	wantError(t, `int main() { int x; x = 1.5; return x; }`, "cannot assign")
}

func TestIntToDoublePromoted(t *testing.T) {
	mustCheckSrc(t, `int main() { double d; d = 3; return trunc(d); }`)
}

func TestSharedDirectAccessRejected(t *testing.T) {
	wantError(t, `
int main() {
	shared int count;
	count = 1;
	return 0;
}
`, "must be accessed via")
}

func TestSharedIntrinsicsAccepted(t *testing.T) {
	mustCheckSrc(t, `
int main() {
	shared int count;
	writeto(&count, 0);
	addto(&count, 5);
	return valueof(&count);
}
`)
}

func TestWriteToNonShared(t *testing.T) {
	wantError(t, `
int main() {
	int x;
	writeto(&x, 1);
	return x;
}
`, "is not shared")
}

func TestAllocUnknownStruct(t *testing.T) {
	wantError(t, `int main() { int *p; p = alloc(Nothing); return 0; }`, "must name a struct")
}

func TestCallArityChecked(t *testing.T) {
	wantError(t, `
int f(int a, int b) { return a + b; }
int main() { return f(1); }
`, "expects 2 arguments")
}

func TestCallUndefined(t *testing.T) {
	wantError(t, `int main() { return g(); }`, "undefined function")
}

func TestReturnTypeChecked(t *testing.T) {
	wantError(t, `
struct P { int v; };
int main() {
	P *p;
	p = alloc(P);
	return p;
}
`, "cannot assign")
}

func TestVoidReturnValueRejected(t *testing.T) {
	wantError(t, `
void f() { return 3; }
int main() { f(); return 0; }
`, "returns void")
}

func TestMissingReturnValueRejected(t *testing.T) {
	wantError(t, `int f() { return; } int main() { return f(); }`, "must return a value")
}

func TestArrowOnNonPointer(t *testing.T) {
	wantError(t, `
struct P { int v; };
int main() {
	P p;
	return p->v;
}
`, "-> on non-pointer")
}

func TestDotOnPointerRejected(t *testing.T) {
	wantError(t, `
struct P { int v; };
int main() {
	P *p;
	p = alloc(P);
	return p.v;
}
`, ". on non-struct")
}

func TestUnknownField(t *testing.T) {
	wantError(t, `
struct P { int v; };
int main() {
	P *p;
	p = alloc(P);
	return p->w;
}
`, "no field w")
}

func TestOwnerOfNonPointer(t *testing.T) {
	wantError(t, `int main() { int x; return owner_of(x); }`, "requires a pointer")
}

func TestPlacementOnIntExpr(t *testing.T) {
	mustCheckSrc(t, `
int f() { return 1; }
int main() { int x; x = f()@ON(0); return x; }
`)
	wantError(t, `
struct P { int v; };
int f() { return 1; }
int main() {
	P *p;
	int x;
	p = alloc(P);
	x = f()@ON(p);
	return x;
}
`, "@ON node expression")
}

func TestCaseMustBeConstant(t *testing.T) {
	wantError(t, `
int main() {
	int x;
	int y;
	x = 1;
	y = 2;
	switch (x) {
	case y: x = 3;
	}
	return x;
}
`, "constant")
}

func TestSizeofWords(t *testing.T) {
	p := mustCheckSrc(t, `
struct Pt { double x; double y; struct Pt *next; };
int main() { return sizeof(Pt); }
`)
	if got := p.SizeOf(&earthc.StructRef{Name: "Pt"}); got != 3 {
		t.Errorf("sizeof(Pt) = %d, want 3", got)
	}
}

func TestLocalPointerQualifier(t *testing.T) {
	p := mustCheckSrc(t, `
struct Pt { int v; };
int read(Pt local *p) { return p->v; }
int main() {
	Pt *p;
	p = alloc(Pt);
	return read(p)@OWNER_OF(p);
}
`)
	fi := p.Funcs["read"]
	if !fi.Params[0].IsLocalPtr() {
		t.Error("parameter p should be a local pointer")
	}
}

func TestGotoRejectedBySema(t *testing.T) {
	wantError(t, `
int main() {
	goto l;
l:
	return 0;
}
`, "goto must be eliminated")
}

func TestStringOnlyInPrintStr(t *testing.T) {
	mustCheckSrc(t, `int main() { print_str("ok\n"); return 0; }`)
	wantError(t, `int main() { int x; x = "no"; return x; }`, "string literal")
	wantError(t, `int main() { print_str(42); return 0; }`, "requires a string literal")
}

func TestDuplicateFunction(t *testing.T) {
	wantError(t, `
int f() { return 1; }
int f() { return 2; }
int main() { return f(); }
`, "duplicate function")
}

func TestFunctionShadowingIntrinsic(t *testing.T) {
	wantError(t, `
double sqrt(double x) { return x; }
int main() { return 0; }
`, "shadows an intrinsic")
}

func TestCompoundAssignNumericOnly(t *testing.T) {
	wantError(t, `
struct P { int v; };
int main() {
	P *p;
	p = alloc(P);
	p += 1;
	return 0;
}
`, "compound assignment")
}
