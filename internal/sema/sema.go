// Package sema implements semantic analysis for EARTH-C: symbol resolution,
// type checking, struct layout, and intrinsic binding. Its output (a
// Program) is consumed by the lowering phase that produces SIMPLE IR.
//
// The memory model is word-addressed: every scalar (int, double, char,
// pointer) occupies exactly one 64-bit word, and struct fields are laid out
// at consecutive word offsets. This matches the granularity at which the
// EARTH-MANNA simulator transfers data (the paper's costs are per word).
package sema

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/earthc"
)

// SymKind distinguishes where a symbol lives.
type SymKind int

// Symbol kinds.
const (
	SymGlobal SymKind = iota
	SymParam
	SymLocal
)

// Symbol is a resolved variable.
type Symbol struct {
	Name   string
	Type   earthc.Type
	Kind   SymKind
	Shared bool
	Pos    earthc.Pos
	Func   string // owning function name, "" for globals
}

// IsLocalPtr reports whether the symbol is a pointer declared with the
// EARTH-C local qualifier (its pointee is guaranteed local).
func (s *Symbol) IsLocalPtr() bool {
	pt, ok := s.Type.(*earthc.PtrType)
	return ok && pt.Local
}

// StructInfo is a struct definition plus its computed word layout. Nested
// struct-valued fields are flattened: Offsets records the starting word of
// every top-level field, and leaf scalar positions can be derived by
// chaining.
type StructInfo struct {
	Def     *earthc.StructDef
	Size    int            // total words
	Offsets map[string]int // field name -> starting word offset
}

// FieldType returns the declared type of a field, or nil.
func (si *StructInfo) FieldType(name string) earthc.Type {
	f := si.Def.FieldByName(name)
	if f == nil {
		return nil
	}
	return f.Type
}

// Builtin identifies an intrinsic function.
type Builtin int

// Intrinsics of the dialect.
const (
	NotBuiltin   Builtin = iota
	BAlloc               // alloc(Struct): allocate on the current node
	BAllocOn             // alloc_on(Struct, node): allocate on a given node
	BWriteTo             // writeto(&shared, v): atomic store
	BAddTo               // addto(&shared, v): atomic add
	BValueOf             // valueof(&shared): atomic load
	BOwnerOf             // owner_of(p): node id owning *p
	BMyNode              // my_node(): executing node id
	BNumNodes            // num_nodes(): machine size
	BPrintInt            // print_int(i)
	BPrintDouble         // print_double(d)
	BPrintChar           // print_char(c)
	BPrintStr            // print_str("lit")
	BSqrt                // sqrt(d) double
	BFabs                // fabs(d) double
	BDbl                 // dbl(i) double: int -> double conversion
	BTrunc               // trunc(d) int: double -> int truncation
)

var builtinNames = map[string]Builtin{
	"alloc": BAlloc, "alloc_on": BAllocOn,
	"writeto": BWriteTo, "addto": BAddTo, "valueof": BValueOf,
	"owner_of": BOwnerOf, "my_node": BMyNode, "num_nodes": BNumNodes,
	"print_int": BPrintInt, "print_double": BPrintDouble,
	"print_char": BPrintChar, "print_str": BPrintStr,
	"sqrt": BSqrt, "fabs": BFabs, "dbl": BDbl, "trunc": BTrunc,
}

// BuiltinByName resolves an intrinsic name, returning NotBuiltin when the
// name is not an intrinsic.
func BuiltinByName(name string) Builtin { return builtinNames[name] }

// CallInfo records the resolution of one call site.
type CallInfo struct {
	Builtin Builtin
	Func    *FuncInfo // non-nil for user function calls
}

// FuncInfo is a checked function.
type FuncInfo struct {
	Def    *earthc.FuncDef
	Params []*Symbol
	Locals []*Symbol // every local declaration, in source order
	Ret    earthc.Type
}

// Program is the result of semantic analysis.
type Program struct {
	File         *earthc.File
	Structs      map[string]*StructInfo
	Funcs        map[string]*FuncInfo
	Globals      []*Symbol
	GlobalByName map[string]*Symbol

	// ExprType maps every expression node to its type.
	ExprType map[earthc.Expr]earthc.Type
	// Use maps identifier uses to their symbols.
	Use map[*earthc.Ident]*Symbol
	// DeclSym maps declarations to their symbols.
	DeclSym map[*earthc.VarDecl]*Symbol
	// CallTarget maps call sites to their resolution.
	CallTarget map[*earthc.Call]*CallInfo
}

// TypeOf returns the checked type of e (nil if unknown).
func (p *Program) TypeOf(e earthc.Expr) earthc.Type { return p.ExprType[e] }

// StructOf returns the StructInfo for a type that is struct or
// pointer-to-struct, or nil.
func (p *Program) StructOf(t earthc.Type) *StructInfo {
	switch tt := t.(type) {
	case *earthc.StructRef:
		return p.Structs[tt.Name]
	case *earthc.PtrType:
		return p.StructOf(tt.Elem)
	}
	return nil
}

// SizeOf returns the size of a type in words.
func (p *Program) SizeOf(t earthc.Type) int {
	switch tt := t.(type) {
	case *earthc.PrimType:
		if tt.Kind == earthc.Void {
			return 0
		}
		return 1
	case *earthc.PtrType:
		return 1
	case *earthc.StructRef:
		if si := p.Structs[tt.Name]; si != nil {
			return si.Size
		}
		return 0
	case *earthc.ArrayType:
		return tt.Len * p.SizeOf(tt.Elem)
	}
	return 0
}

type checker struct {
	prog *Program
	errs []error

	curFunc *FuncInfo
	scopes  []map[string]*Symbol
	// inSharedIntrinsic is set while checking &sv arguments of
	// writeto/addto/valueof, where naming a shared variable is legal.
	inSharedIntrinsic bool
}

// Check performs semantic analysis on a parsed file.
func Check(f *earthc.File) (*Program, error) {
	c := &checker{prog: &Program{
		File:         f,
		Structs:      make(map[string]*StructInfo),
		Funcs:        make(map[string]*FuncInfo),
		GlobalByName: make(map[string]*Symbol),
		ExprType:     make(map[earthc.Expr]earthc.Type),
		Use:          make(map[*earthc.Ident]*Symbol),
		DeclSym:      make(map[*earthc.VarDecl]*Symbol),
		CallTarget:   make(map[*earthc.Call]*CallInfo),
	}}
	c.collectStructs()
	c.collectFuncs()
	c.checkGlobals()
	for _, fn := range f.Funcs {
		c.checkFunc(c.prog.Funcs[fn.Name])
	}
	if len(c.errs) > 0 {
		msgs := make([]string, 0, len(c.errs))
		for i, e := range c.errs {
			if i == 15 {
				msgs = append(msgs, fmt.Sprintf("... and %d more errors", len(c.errs)-15))
				break
			}
			msgs = append(msgs, e.Error())
		}
		return c.prog, errors.New(strings.Join(msgs, "\n"))
	}
	return c.prog, nil
}

// MustCheck parses and checks, panicking on error; for tests and embedded
// benchmark sources.
func MustCheck(name, src string) *Program {
	f := earthc.MustParse(name, src)
	p, err := Check(f)
	if err != nil {
		panic(err)
	}
	return p
}

func (c *checker) errorf(pos earthc.Pos, format string, args ...any) {
	c.errs = append(c.errs, fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...)))
}

// ------------------------------------------------------------ collection ---

func (c *checker) collectStructs() {
	for _, s := range c.prog.File.Structs {
		if _, dup := c.prog.Structs[s.Name]; dup {
			c.errorf(s.Pos, "duplicate struct %s", s.Name)
			continue
		}
		c.prog.Structs[s.Name] = &StructInfo{Def: s, Offsets: make(map[string]int)}
	}
	// Layout with cycle detection (struct-valued fields may nest but not
	// recurse; recursion must go through a pointer).
	state := make(map[string]int) // 0 unvisited, 1 in progress, 2 done
	var layout func(name string) int
	layout = func(name string) int {
		si := c.prog.Structs[name]
		if si == nil {
			return 0
		}
		switch state[name] {
		case 2:
			return si.Size
		case 1:
			c.errorf(si.Def.Pos, "recursive struct value %s (use a pointer)", name)
			state[name] = 2
			return si.Size
		}
		state[name] = 1
		off := 0
		seen := make(map[string]bool)
		for _, f := range si.Def.Fields {
			if seen[f.Name] {
				c.errorf(f.Pos, "duplicate field %s in struct %s", f.Name, name)
			}
			seen[f.Name] = true
			si.Offsets[f.Name] = off
			switch ft := f.Type.(type) {
			case *earthc.StructRef:
				if c.prog.Structs[ft.Name] == nil {
					c.errorf(f.Pos, "unknown struct %s", ft.Name)
					off++
				} else {
					off += layout(ft.Name)
				}
			case *earthc.ArrayType:
				off += c.arraySize(ft, f.Pos, layout)
			default:
				off++
			}
		}
		si.Size = off
		state[name] = 2
		return off
	}
	for name := range c.prog.Structs {
		layout(name)
	}
}

func (c *checker) arraySize(t *earthc.ArrayType, pos earthc.Pos, layout func(string) int) int {
	switch et := t.Elem.(type) {
	case *earthc.StructRef:
		return t.Len * layout(et.Name)
	case *earthc.ArrayType:
		return t.Len * c.arraySize(et, pos, layout)
	default:
		return t.Len
	}
}

func (c *checker) collectFuncs() {
	for _, fn := range c.prog.File.Funcs {
		if _, dup := c.prog.Funcs[fn.Name]; dup {
			c.errorf(fn.Pos, "duplicate function %s", fn.Name)
			continue
		}
		if BuiltinByName(fn.Name) != NotBuiltin {
			c.errorf(fn.Pos, "function %s shadows an intrinsic", fn.Name)
		}
		fi := &FuncInfo{Def: fn, Ret: fn.Ret}
		for _, p := range fn.Params {
			fi.Params = append(fi.Params, &Symbol{
				Name: p.Name, Type: p.Type, Kind: SymParam, Pos: p.Pos, Func: fn.Name,
			})
		}
		c.prog.Funcs[fn.Name] = fi
	}
}

func (c *checker) checkGlobals() {
	for _, g := range c.prog.File.Globals {
		if !c.validVarType(g.Type) {
			c.errorf(g.Pos, "invalid type for global %s", g.Name)
		}
		sym := &Symbol{Name: g.Name, Type: g.Type, Kind: SymGlobal, Shared: g.Shared, Pos: g.Pos}
		if _, dup := c.prog.GlobalByName[g.Name]; dup {
			c.errorf(g.Pos, "duplicate global %s", g.Name)
			continue
		}
		c.prog.Globals = append(c.prog.Globals, sym)
		c.prog.GlobalByName[g.Name] = sym
		c.prog.DeclSym[g] = sym
		if g.Init != nil {
			t := c.checkExpr(g.Init)
			c.requireAssignable(g.Pos, g.Type, t)
		}
	}
}

func (c *checker) validVarType(t earthc.Type) bool {
	switch tt := t.(type) {
	case *earthc.PrimType:
		return tt.Kind != earthc.Void
	case *earthc.PtrType:
		return true
	case *earthc.StructRef:
		return c.prog.Structs[tt.Name] != nil
	case *earthc.ArrayType:
		return c.validVarType(tt.Elem)
	}
	return false
}

// ----------------------------------------------------------------- scopes ---

func (c *checker) pushScope() { c.scopes = append(c.scopes, make(map[string]*Symbol)) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(sym *Symbol) {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[sym.Name]; dup {
		c.errorf(sym.Pos, "redeclaration of %s", sym.Name)
	}
	top[sym.Name] = sym
}

func (c *checker) lookup(name string) *Symbol {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, ok := c.scopes[i][name]; ok {
			return s
		}
	}
	return c.prog.GlobalByName[name]
}

// -------------------------------------------------------------- functions ---

func (c *checker) checkFunc(fi *FuncInfo) {
	if fi == nil {
		return
	}
	c.curFunc = fi
	c.pushScope()
	for _, p := range fi.Params {
		if !c.validVarType(p.Type) {
			c.errorf(p.Pos, "invalid parameter type for %s", p.Name)
		}
		c.declare(p)
	}
	c.checkStmt(fi.Def.Body)
	c.popScope()
	c.curFunc = nil
}

func (c *checker) checkStmt(s earthc.Stmt) {
	switch st := s.(type) {
	case *earthc.DeclStmt:
		d := st.Decl
		if !c.validVarType(d.Type) {
			c.errorf(d.Pos, "invalid type for %s", d.Name)
		}
		sym := &Symbol{Name: d.Name, Type: d.Type, Kind: SymLocal,
			Shared: d.Shared, Pos: d.Pos, Func: c.curFunc.Def.Name}
		c.declare(sym)
		c.prog.DeclSym[d] = sym
		c.curFunc.Locals = append(c.curFunc.Locals, sym)
		if d.Init != nil {
			if d.Shared {
				c.errorf(d.Pos, "shared variable %s must be initialized via writeto", d.Name)
			}
			t := c.checkExpr(d.Init)
			c.requireAssignable(d.Pos, d.Type, t)
		}
	case *earthc.ExprStmt:
		c.checkExpr(st.X)
	case *earthc.Block:
		c.pushScope()
		for _, x := range st.Stmts {
			c.checkStmt(x)
		}
		c.popScope()
	case *earthc.ParSeq:
		c.pushScope()
		for _, x := range st.Stmts {
			c.checkStmt(x)
		}
		c.popScope()
	case *earthc.IfStmt:
		c.requireScalar(st.Pos, c.checkExpr(st.Cond), "if condition")
		c.checkStmt(st.Then)
		if st.Else != nil {
			c.checkStmt(st.Else)
		}
	case *earthc.WhileStmt:
		c.requireScalar(st.Pos, c.checkExpr(st.Cond), "while condition")
		c.checkStmt(st.Body)
	case *earthc.DoStmt:
		c.checkStmt(st.Body)
		c.requireScalar(st.Pos, c.checkExpr(st.Cond), "do-while condition")
	case *earthc.ForStmt:
		c.pushScope()
		if st.Init != nil {
			c.checkStmt(st.Init)
		}
		if st.Cond != nil {
			c.requireScalar(st.Pos, c.checkExpr(st.Cond), "for condition")
		}
		if st.Post != nil {
			c.checkExpr(st.Post)
		}
		c.checkStmt(st.Body)
		c.popScope()
	case *earthc.ForallStmt:
		c.pushScope()
		if st.Init != nil {
			c.checkStmt(st.Init)
		}
		if st.Cond != nil {
			c.requireScalar(st.Pos, c.checkExpr(st.Cond), "forall condition")
		}
		if st.Post != nil {
			c.checkExpr(st.Post)
		}
		c.checkStmt(st.Body)
		c.popScope()
	case *earthc.SwitchStmt:
		t := c.checkExpr(st.Tag)
		c.requireInt(st.Pos, t, "switch tag")
		ndefault := 0
		for _, cc := range st.Cases {
			if cc.Vals == nil {
				ndefault++
				if ndefault > 1 {
					c.errorf(cc.Pos, "multiple default cases")
				}
			}
			for _, v := range cc.Vals {
				vt := c.checkExpr(v)
				c.requireInt(cc.Pos, vt, "case value")
				if !isConst(v) {
					c.errorf(cc.Pos, "case value must be a constant")
				}
			}
			c.pushScope()
			for _, x := range cc.Body {
				c.checkStmt(x)
			}
			c.popScope()
		}
	case *earthc.BreakStmt, *earthc.ContinueStmt:
		// Loop nesting is validated during lowering.
	case *earthc.ReturnStmt:
		want := c.curFunc.Ret
		if st.X == nil {
			if !isVoid(want) {
				c.errorf(st.Pos, "%s must return a value", c.curFunc.Def.Name)
			}
			return
		}
		if isVoid(want) {
			c.errorf(st.Pos, "%s returns void", c.curFunc.Def.Name)
			c.checkExpr(st.X)
			return
		}
		got := c.checkExpr(st.X)
		c.requireAssignable(st.Pos, want, got)
	case *earthc.GotoStmt, *earthc.LabeledStmt:
		c.errorf(posOf(s), "goto must be eliminated before semantic analysis (run earthc.EliminateGotos)")
	}
}

func posOf(s earthc.Stmt) earthc.Pos {
	switch st := s.(type) {
	case *earthc.GotoStmt:
		return st.Pos
	case *earthc.LabeledStmt:
		return st.Pos
	}
	return earthc.Pos{}
}

func isConst(e earthc.Expr) bool {
	switch x := e.(type) {
	case *earthc.IntLit, *earthc.CharLit:
		return true
	case *earthc.Unary:
		return x.Op == earthc.Neg && isConst(x.X)
	}
	return false
}

func isVoid(t earthc.Type) bool {
	pt, ok := t.(*earthc.PrimType)
	return ok && pt.Kind == earthc.Void
}

func isInt(t earthc.Type) bool {
	pt, ok := t.(*earthc.PrimType)
	return ok && (pt.Kind == earthc.Int || pt.Kind == earthc.Char)
}

func isDouble(t earthc.Type) bool {
	pt, ok := t.(*earthc.PrimType)
	return ok && pt.Kind == earthc.Double
}

func isPtr(t earthc.Type) bool {
	_, ok := t.(*earthc.PtrType)
	return ok
}

var (
	tInt    = &earthc.PrimType{Kind: earthc.Int}
	tDouble = &earthc.PrimType{Kind: earthc.Double}
	tVoid   = &earthc.PrimType{Kind: earthc.Void}
)

func (c *checker) requireScalar(pos earthc.Pos, t earthc.Type, what string) {
	if t == nil || isInt(t) || isPtr(t) || isDouble(t) {
		return
	}
	c.errorf(pos, "%s must be scalar, got %s", what, t)
}

func (c *checker) requireInt(pos earthc.Pos, t earthc.Type, what string) {
	if t == nil || isInt(t) {
		return
	}
	c.errorf(pos, "%s must be int, got %s", what, t)
}

// requireAssignable enforces the assignment compatibility rules: identical
// types, char<->int, int promoted to double, and NULL to any pointer.
func (c *checker) requireAssignable(pos earthc.Pos, dst, src earthc.Type) {
	if dst == nil || src == nil {
		return
	}
	if earthc.SameType(dst, src) {
		return
	}
	if isInt(dst) && isInt(src) {
		return
	}
	if isDouble(dst) && isInt(src) {
		return
	}
	if isPtr(dst) && src == nullType {
		return
	}
	if isPtr(dst) && isPtr(src) &&
		earthc.SameType(dst.(*earthc.PtrType).Elem, src.(*earthc.PtrType).Elem) {
		return
	}
	c.errorf(pos, "cannot assign %s to %s", src, dst)
}

// nullType is the sentinel type of the NULL literal; it is assignable to any
// pointer.
var nullType earthc.Type = &earthc.PtrType{Elem: tVoid}

// ------------------------------------------------------------ expressions ---

func (c *checker) checkExpr(e earthc.Expr) earthc.Type {
	t := c.exprType(e)
	if t != nil {
		c.prog.ExprType[e] = t
	}
	return t
}

func (c *checker) exprType(e earthc.Expr) earthc.Type {
	switch x := e.(type) {
	case *earthc.IntLit:
		return tInt
	case *earthc.FloatLit:
		return tDouble
	case *earthc.CharLit:
		return tInt
	case *earthc.StringLit:
		c.errorf(x.Pos, "string literals are only valid as print_str arguments")
		return nil
	case *earthc.NullLit:
		return nullType
	case *earthc.Ident:
		sym := c.lookup(x.Name)
		if sym == nil {
			c.errorf(x.Pos, "undeclared identifier %s", x.Name)
			return nil
		}
		c.prog.Use[x] = sym
		if sym.Shared && !c.inSharedIntrinsic {
			c.errorf(x.Pos, "shared variable %s must be accessed via writeto/addto/valueof", x.Name)
		}
		return sym.Type
	case *earthc.Unary:
		return c.unaryType(x)
	case *earthc.Binary:
		return c.binaryType(x)
	case *earthc.Assign:
		lt := c.checkLvalue(x.Lhs)
		rt := c.checkExpr(x.Rhs)
		if x.Op != earthc.PlainAssign {
			// Compound assignment: operands must be numeric.
			if lt != nil && !isInt(lt) && !isDouble(lt) {
				c.errorf(x.Pos, "compound assignment needs numeric lvalue, got %s", lt)
			}
		}
		c.requireAssignable(x.Pos, lt, rt)
		return lt
	case *earthc.IncDec:
		lt := c.checkLvalue(x.X)
		if lt != nil && !isInt(lt) {
			c.errorf(x.Pos, "++/-- requires int lvalue, got %s", lt)
		}
		return lt
	case *earthc.Call:
		return c.callType(x)
	case *earthc.Member:
		return c.memberType(x)
	case *earthc.Index:
		xt := c.checkExpr(x.X)
		it := c.checkExpr(x.I)
		c.requireInt(x.Pos, it, "array index")
		at, ok := xt.(*earthc.ArrayType)
		if !ok {
			if xt != nil {
				c.errorf(x.Pos, "indexing non-array type %s", xt)
			}
			return nil
		}
		return at.Elem
	case *earthc.SizeofExpr:
		if !c.validVarType(x.T) && !isVoid(x.T) {
			c.errorf(x.Pos, "sizeof of invalid type")
		}
		return tInt
	case *earthc.CondExpr:
		c.requireScalar(x.Pos, c.checkExpr(x.C), "?: condition")
		tt := c.checkExpr(x.T)
		ft := c.checkExpr(x.F)
		if tt != nil && ft != nil {
			if earthc.SameType(tt, ft) {
				return tt
			}
			if isInt(tt) && isInt(ft) {
				return tInt
			}
			if (isDouble(tt) || isDouble(ft)) && (isInt(tt) || isInt(ft) || isDouble(tt) && isDouble(ft)) {
				return tDouble
			}
			if isPtr(tt) && ft == nullType {
				return tt
			}
			if isPtr(ft) && tt == nullType {
				return ft
			}
			c.errorf(x.Pos, "?: branches have mismatched types %s and %s", tt, ft)
		}
		if tt != nil {
			return tt
		}
		return ft
	}
	return nil
}

func (c *checker) unaryType(x *earthc.Unary) earthc.Type {
	xt := c.checkExpr(x.X)
	switch x.Op {
	case earthc.Neg:
		if xt != nil && !isInt(xt) && !isDouble(xt) {
			c.errorf(x.Pos, "unary - requires numeric operand, got %s", xt)
		}
		return xt
	case earthc.LNot:
		c.requireScalar(x.Pos, xt, "! operand")
		return tInt
	case earthc.BNot:
		c.requireInt(x.Pos, xt, "~ operand")
		return tInt
	case earthc.Deref:
		pt, ok := xt.(*earthc.PtrType)
		if !ok {
			if xt != nil {
				c.errorf(x.Pos, "dereference of non-pointer type %s", xt)
			}
			return nil
		}
		return pt.Elem
	case earthc.Addr:
		// Valid on variables and fields; shared variables especially.
		switch inner := x.X.(type) {
		case *earthc.Ident:
			sym := c.prog.Use[inner]
			if sym != nil {
				return &earthc.PtrType{Elem: sym.Type}
			}
			return nil
		case *earthc.Member:
			if xt != nil {
				return &earthc.PtrType{Elem: xt}
			}
			return nil
		case *earthc.Index:
			if xt != nil {
				return &earthc.PtrType{Elem: xt}
			}
			return nil
		case *earthc.Unary:
			if inner.Op == earthc.Deref && xt != nil {
				return &earthc.PtrType{Elem: xt}
			}
		}
		c.errorf(x.Pos, "cannot take address of this expression")
		return nil
	}
	return nil
}

func (c *checker) binaryType(x *earthc.Binary) earthc.Type {
	lt := c.checkExpr(x.X)
	rt := c.checkExpr(x.Y)
	if lt == nil || rt == nil {
		return nil
	}
	switch x.Op {
	case earthc.Add, earthc.Sub, earthc.Mul, earthc.Div:
		if isDouble(lt) || isDouble(rt) {
			if (isDouble(lt) || isInt(lt)) && (isDouble(rt) || isInt(rt)) {
				return tDouble
			}
		}
		if isInt(lt) && isInt(rt) {
			return tInt
		}
		c.errorf(x.Pos, "invalid operands to %s: %s and %s", x.Op, lt, rt)
		return nil
	case earthc.Rem, earthc.And, earthc.Or, earthc.Xor, earthc.Shl, earthc.Shr:
		if isInt(lt) && isInt(rt) {
			return tInt
		}
		c.errorf(x.Pos, "invalid operands to %s: %s and %s", x.Op, lt, rt)
		return nil
	case earthc.Lt, earthc.Gt, earthc.Le, earthc.Ge:
		if (isInt(lt) || isDouble(lt)) && (isInt(rt) || isDouble(rt)) {
			return tInt
		}
		c.errorf(x.Pos, "invalid comparison operands: %s and %s", lt, rt)
		return tInt
	case earthc.Eq, earthc.Ne:
		ok := (isInt(lt) || isDouble(lt)) && (isInt(rt) || isDouble(rt)) ||
			isPtr(lt) && (rt == nullType || isPtr(rt)) ||
			lt == nullType && isPtr(rt)
		if !ok {
			c.errorf(x.Pos, "invalid equality operands: %s and %s", lt, rt)
		}
		return tInt
	case earthc.LogAnd, earthc.LogOr:
		c.requireScalar(x.Pos, lt, "logical operand")
		c.requireScalar(x.Pos, rt, "logical operand")
		return tInt
	}
	return nil
}

func (c *checker) memberType(x *earthc.Member) earthc.Type {
	xt := c.checkExpr(x.X)
	if xt == nil {
		return nil
	}
	var sref *earthc.StructRef
	if x.Arrow {
		pt, ok := xt.(*earthc.PtrType)
		if !ok {
			c.errorf(x.Pos, "-> on non-pointer type %s", xt)
			return nil
		}
		sref, ok = pt.Elem.(*earthc.StructRef)
		if !ok {
			c.errorf(x.Pos, "-> on pointer to non-struct type %s", pt.Elem)
			return nil
		}
	} else {
		var ok bool
		sref, ok = xt.(*earthc.StructRef)
		if !ok {
			c.errorf(x.Pos, ". on non-struct type %s", xt)
			return nil
		}
	}
	si := c.prog.Structs[sref.Name]
	if si == nil {
		c.errorf(x.Pos, "unknown struct %s", sref.Name)
		return nil
	}
	ft := si.FieldType(x.Name)
	if ft == nil {
		c.errorf(x.Pos, "struct %s has no field %s", sref.Name, x.Name)
		return nil
	}
	return ft
}

// checkLvalue checks an expression in assignment-target position.
func (c *checker) checkLvalue(e earthc.Expr) earthc.Type {
	switch x := e.(type) {
	case *earthc.Ident:
		t := c.checkExpr(x)
		sym := c.prog.Use[x]
		if sym != nil && sym.Shared {
			// Error already reported by checkExpr.
			return t
		}
		return t
	case *earthc.Member, *earthc.Index:
		return c.checkExpr(e)
	case *earthc.Unary:
		if x.Op == earthc.Deref {
			return c.checkExpr(e)
		}
	}
	c.errorf(exprPos(e), "invalid assignment target")
	c.checkExpr(e)
	return nil
}

func exprPos(e earthc.Expr) earthc.Pos {
	switch x := e.(type) {
	case *earthc.IntLit:
		return x.Pos
	case *earthc.FloatLit:
		return x.Pos
	case *earthc.CharLit:
		return x.Pos
	case *earthc.StringLit:
		return x.Pos
	case *earthc.NullLit:
		return x.Pos
	case *earthc.Ident:
		return x.Pos
	case *earthc.Unary:
		return x.Pos
	case *earthc.Binary:
		return x.Pos
	case *earthc.Assign:
		return x.Pos
	case *earthc.IncDec:
		return x.Pos
	case *earthc.Call:
		return x.Pos
	case *earthc.Member:
		return x.Pos
	case *earthc.Index:
		return x.Pos
	case *earthc.SizeofExpr:
		return x.Pos
	case *earthc.CondExpr:
		return x.Pos
	}
	return earthc.Pos{}
}
