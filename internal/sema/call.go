package sema

import (
	"repro/internal/earthc"
)

// callType resolves and checks a call site: either an intrinsic or a user
// function, possibly with a placement annotation.
func (c *checker) callType(x *earthc.Call) earthc.Type {
	if b := BuiltinByName(x.Fun); b != NotBuiltin {
		c.prog.CallTarget[x] = &CallInfo{Builtin: b}
		if x.Place != nil {
			c.errorf(x.Pos, "placement annotations are not valid on intrinsic %s", x.Fun)
		}
		return c.builtinType(b, x)
	}
	fi := c.prog.Funcs[x.Fun]
	if fi == nil {
		c.errorf(x.Pos, "call to undefined function %s", x.Fun)
		for _, a := range x.Args {
			c.checkExpr(a)
		}
		return nil
	}
	c.prog.CallTarget[x] = &CallInfo{Func: fi}
	if len(x.Args) != len(fi.Params) {
		c.errorf(x.Pos, "%s expects %d arguments, got %d", x.Fun, len(fi.Params), len(x.Args))
	}
	for i, a := range x.Args {
		at := c.checkExpr(a)
		if i < len(fi.Params) {
			c.requireAssignable(x.Pos, fi.Params[i].Type, at)
		}
	}
	if x.Place != nil {
		switch x.Place.Kind {
		case earthc.PlaceOwnerOf:
			at := c.checkExpr(x.Place.Arg)
			if at != nil && !isPtr(at) {
				c.errorf(x.Pos, "@OWNER_OF requires a pointer argument, got %s", at)
			}
		case earthc.PlaceOn:
			at := c.checkExpr(x.Place.Arg)
			c.requireInt(x.Pos, at, "@ON node expression")
		case earthc.PlaceHome:
			// no argument
		}
	}
	return fi.Ret
}

// arity-checked intrinsic signatures.
func (c *checker) builtinType(b Builtin, x *earthc.Call) earthc.Type {
	argn := func(n int) bool {
		if len(x.Args) != n {
			c.errorf(x.Pos, "%s expects %d argument(s), got %d", x.Fun, n, len(x.Args))
			for _, a := range x.Args {
				c.checkExpr(a)
			}
			return false
		}
		return true
	}
	switch b {
	case BAlloc, BAllocOn:
		want := 1
		if b == BAllocOn {
			want = 2
		}
		if !argn(want) {
			return nil
		}
		id, ok := x.Args[0].(*earthc.Ident)
		if !ok || c.prog.Structs[id.Name] == nil {
			c.errorf(x.Pos, "%s: first argument must name a struct type", x.Fun)
			return nil
		}
		// The struct-name argument is not an expression; give it the struct
		// type for the record but do not resolve it as a variable.
		sref := &earthc.StructRef{Name: id.Name}
		c.prog.ExprType[x.Args[0]] = sref
		if b == BAllocOn {
			nt := c.checkExpr(x.Args[1])
			c.requireInt(x.Pos, nt, "alloc_on node")
		}
		return &earthc.PtrType{Elem: sref}

	case BWriteTo, BAddTo:
		if !argn(2) {
			return nil
		}
		pt := c.checkSharedPtrArg(x, x.Args[0])
		vt := c.checkExpr(x.Args[1])
		if pt != nil {
			c.requireAssignable(x.Pos, pt, vt)
		}
		if b == BAddTo && pt != nil && !isInt(pt) && !isDouble(pt) {
			c.errorf(x.Pos, "addto requires a numeric shared variable")
		}
		return tVoid

	case BValueOf:
		if !argn(1) {
			return nil
		}
		pt := c.checkSharedPtrArg(x, x.Args[0])
		return pt

	case BOwnerOf:
		if !argn(1) {
			return nil
		}
		at := c.checkExpr(x.Args[0])
		if at != nil && !isPtr(at) {
			c.errorf(x.Pos, "owner_of requires a pointer, got %s", at)
		}
		return tInt

	case BMyNode, BNumNodes:
		argn(0)
		return tInt

	case BPrintInt, BPrintChar:
		if argn(1) {
			c.requireInt(x.Pos, c.checkExpr(x.Args[0]), x.Fun+" argument")
		}
		return tVoid

	case BPrintDouble:
		if argn(1) {
			t := c.checkExpr(x.Args[0])
			if t != nil && !isDouble(t) && !isInt(t) {
				c.errorf(x.Pos, "print_double requires a numeric argument, got %s", t)
			}
		}
		return tVoid

	case BPrintStr:
		if argn(1) {
			if _, ok := x.Args[0].(*earthc.StringLit); !ok {
				c.errorf(x.Pos, "print_str requires a string literal")
			} else {
				c.prog.ExprType[x.Args[0]] = tInt // placeholder; carried as literal
			}
		}
		return tVoid

	case BSqrt, BFabs:
		if argn(1) {
			t := c.checkExpr(x.Args[0])
			if t != nil && !isDouble(t) && !isInt(t) {
				c.errorf(x.Pos, "%s requires a numeric argument, got %s", x.Fun, t)
			}
		}
		return tDouble

	case BDbl:
		if argn(1) {
			c.requireInt(x.Pos, c.checkExpr(x.Args[0]), "dbl argument")
		}
		return tDouble

	case BTrunc:
		if argn(1) {
			t := c.checkExpr(x.Args[0])
			if t != nil && !isDouble(t) {
				c.errorf(x.Pos, "trunc requires a double argument, got %s", t)
			}
		}
		return tInt
	}
	return nil
}

// checkSharedPtrArg checks the &sv argument of a shared-variable intrinsic
// and returns the element type of the shared variable.
func (c *checker) checkSharedPtrArg(call *earthc.Call, a earthc.Expr) earthc.Type {
	un, ok := a.(*earthc.Unary)
	if !ok || un.Op != earthc.Addr {
		c.errorf(call.Pos, "%s requires &sharedVar as its first argument", call.Fun)
		c.checkExpr(a)
		return nil
	}
	id, ok := un.X.(*earthc.Ident)
	if !ok {
		c.errorf(call.Pos, "%s requires the address of a shared variable", call.Fun)
		c.checkExpr(a)
		return nil
	}
	c.inSharedIntrinsic = true
	t := c.checkExpr(a)
	c.inSharedIntrinsic = false
	sym := c.prog.Use[id]
	if sym == nil {
		return nil
	}
	if !sym.Shared {
		c.errorf(call.Pos, "%s requires a shared variable, %s is not shared", call.Fun, id.Name)
	}
	if pt, ok := t.(*earthc.PtrType); ok {
		return pt.Elem
	}
	return sym.Type
}
