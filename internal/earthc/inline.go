package earthc

import "fmt"

// Local function inlining, one of the McCAT Phase I transformations the
// paper's compiler runs before communication analysis. Inlining is what
// exposes cross-call redundancy to the optimizer: the paper notes that
// tsp's invariant pointer arguments to distance() are optimized "via
// function inlining", and Figure 11(b) shows child-selection switches
// inlined into sum_adjacent.
//
// A call is inlined when the callee is small, non-recursive, has no
// placement annotation at the call site (placed calls are migration points
// and must stay calls), and its returns can be restructured as forward
// jumps (returns nested inside switch statements or parallel constructs
// are left alone; the goto eliminator cannot lift those).

// InlineOptions tune the inliner.
type InlineOptions struct {
	MaxStmts  int // max callee size in statement nodes (default 48)
	MaxRounds int // inlining passes (default 2)
}

func (o InlineOptions) withDefaults() InlineOptions {
	if o.MaxStmts == 0 {
		o.MaxStmts = 48
	}
	if o.MaxRounds == 0 {
		o.MaxRounds = 2
	}
	return o
}

// InlineFunctions expands eligible calls in every function body, in place.
func InlineFunctions(f *File, opt InlineOptions) {
	opt = opt.withDefaults()
	inl := &inliner{file: f, opt: opt}
	for round := 0; round < opt.MaxRounds; round++ {
		inl.computeEligible()
		changed := false
		for _, fn := range f.Funcs {
			inl.cur = fn
			body := inl.stmts(fn.Body.Stmts)
			if inl.changed {
				changed = true
				fn.Body.Stmts = body
				inl.changed = false
			} else {
				fn.Body.Stmts = body
			}
		}
		if !changed {
			break
		}
	}
}

type inliner struct {
	file     *File
	opt      InlineOptions
	eligible map[string]*FuncDef
	cur      *FuncDef
	n        int
	changed  bool
}

func (inl *inliner) fresh(kind string) string {
	inl.n++
	return fmt.Sprintf("__%s%d", kind, inl.n)
}

// computeEligible decides which functions may be inlined this round.
func (inl *inliner) computeEligible() {
	inl.eligible = make(map[string]*FuncDef)
	// Direct call edges for recursion detection.
	calls := make(map[string]map[string]bool)
	for _, fn := range inl.file.Funcs {
		set := make(map[string]bool)
		walkCalls(fn.Body, func(c *Call) { set[c.Fun] = true })
		calls[fn.Name] = set
	}
	reaches := func(from, to string) bool {
		seen := make(map[string]bool)
		var dfs func(string) bool
		dfs = func(n string) bool {
			if n == to {
				return true
			}
			if seen[n] {
				return false
			}
			seen[n] = true
			for m := range calls[n] {
				if dfs(m) {
					return true
				}
			}
			return false
		}
		for m := range calls[from] {
			if dfs(m) {
				return true
			}
		}
		return false
	}
	for _, fn := range inl.file.Funcs {
		if fn.Name == "main" {
			continue
		}
		if stmtCount(fn.Body) > inl.opt.MaxStmts {
			continue
		}
		if reaches(fn.Name, fn.Name) {
			continue // recursive (directly or mutually)
		}
		if hasHardReturns(fn.Body) || hasGotos(fn.Body) {
			continue
		}
		inl.eligible[fn.Name] = fn
	}
}

// stmts rewrites a statement list, extracting and expanding eligible calls.
func (inl *inliner) stmts(list []Stmt) []Stmt {
	var out []Stmt
	for _, s := range list {
		out = append(out, inl.stmt(s)...)
	}
	return out
}

// stmt rewrites one statement into possibly several.
func (inl *inliner) stmt(s Stmt) []Stmt {
	var pre []Stmt
	switch st := s.(type) {
	case *DeclStmt:
		if st.Decl.Init != nil {
			st.Decl.Init = inl.extract(&pre, st.Decl.Init)
			if c, ok := st.Decl.Init.(*Call); ok && inl.inlinableCall(c) {
				st.Decl.Init = nil
				exp := inl.expand(c, &Ident{Name: st.Decl.Name}, st.Decl.Type)
				return append(append(pre, s), exp...)
			}
		}
		return append(pre, s)
	case *ExprStmt:
		switch x := st.X.(type) {
		case *Call:
			for i := range x.Args {
				x.Args[i] = inl.extract(&pre, x.Args[i])
			}
			if inl.inlinableCall(x) {
				exp := inl.expand(x, nil, nil)
				return append(pre, exp...)
			}
			return append(pre, s)
		case *Assign:
			if x.Op == PlainAssign {
				x.Rhs = inl.extract(&pre, x.Rhs)
				if c, ok := x.Rhs.(*Call); ok && inl.inlinableCall(c) {
					exp := inl.expand(c, x.Lhs, inl.eligible[c.Fun].Ret)
					return append(pre, exp...)
				}
				return append(pre, s)
			}
			x.Rhs = inl.extract(&pre, x.Rhs)
			return append(pre, s)
		default:
			st.X = inl.extract(&pre, st.X)
			return append(pre, s)
		}
	case *Block:
		st.Stmts = inl.stmts(st.Stmts)
		return []Stmt{st}
	case *ParSeq:
		for i, c := range st.Stmts {
			// Arms stay single statements; wrap multi-statement expansions.
			r := inl.stmt(c)
			if len(r) == 1 {
				st.Stmts[i] = r[0]
			} else {
				st.Stmts[i] = &Block{Stmts: r}
			}
		}
		return []Stmt{st}
	case *IfStmt:
		st.Cond = inl.extract(&pre, st.Cond)
		st.Then = inl.wrap(st.Then)
		if st.Else != nil {
			st.Else = inl.wrap(st.Else)
		}
		return append(pre, s)
	case *WhileStmt:
		// Loop conditions re-evaluate each iteration: no extraction.
		st.Body = inl.wrap(st.Body)
		return []Stmt{st}
	case *DoStmt:
		st.Body = inl.wrap(st.Body)
		return []Stmt{st}
	case *ForStmt:
		if st.Init != nil {
			r := inl.stmt(st.Init)
			if len(r) == 1 {
				st.Init = r[0]
			} else {
				// Extraction in a for-init hoists above the loop.
				pre = append(pre, r[:len(r)-1]...)
				st.Init = r[len(r)-1]
			}
		}
		st.Body = inl.wrap(st.Body)
		return append(pre, s)
	case *ForallStmt:
		if st.Init != nil {
			r := inl.stmt(st.Init)
			if len(r) == 1 {
				st.Init = r[0]
			} else {
				pre = append(pre, r[:len(r)-1]...)
				st.Init = r[len(r)-1]
			}
		}
		st.Body = inl.wrap(st.Body)
		return append(pre, s)
	case *SwitchStmt:
		st.Tag = inl.extract(&pre, st.Tag)
		for _, cc := range st.Cases {
			cc.Body = inl.stmts(cc.Body)
		}
		return append(pre, s)
	case *ReturnStmt:
		if st.X != nil {
			st.X = inl.extract(&pre, st.X)
			if c, ok := st.X.(*Call); ok && inl.inlinableCall(c) {
				callee := inl.eligible[c.Fun]
				tmp := inl.fresh("inl")
				pre = append(pre, &DeclStmt{Decl: &VarDecl{Name: tmp, Type: callee.Ret}})
				pre = append(pre, inl.expand(c, &Ident{Name: tmp}, nil)...)
				st.X = &Ident{Name: tmp}
			}
		}
		return append(pre, s)
	case *LabeledStmt:
		r := inl.stmt(st.Stmt)
		if len(r) == 1 {
			st.Stmt = r[0]
			return []Stmt{st}
		}
		st.Stmt = &Block{Stmts: r}
		return []Stmt{st}
	default:
		return []Stmt{s}
	}
}

// wrap rewrites a nested statement, boxing multi-statement results.
func (inl *inliner) wrap(s Stmt) Stmt {
	r := inl.stmt(s)
	if len(r) == 1 {
		return r[0]
	}
	return &Block{Stmts: r}
}

// extract hoists inlinable calls out of safe subexpression positions into
// temporaries declared in pre, returning the rewritten expression. Calls
// under short-circuit operators or the ternary operator are left in place
// (they must not be evaluated unconditionally).
func (inl *inliner) extract(pre *[]Stmt, e Expr) Expr {
	switch x := e.(type) {
	case *Call:
		for i := range x.Args {
			x.Args[i] = inl.extract(pre, x.Args[i])
		}
		if inl.inlinableCall(x) {
			callee := inl.eligible[x.Fun]
			if isVoidRet(callee.Ret) {
				return e
			}
			tmp := inl.fresh("inl")
			*pre = append(*pre, &DeclStmt{Decl: &VarDecl{Name: tmp, Type: callee.Ret}})
			*pre = append(*pre, inl.expand(x, &Ident{Name: tmp}, nil)...)
			return &Ident{Name: tmp}
		}
		return e
	case *Unary:
		x.X = inl.extract(pre, x.X)
	case *Binary:
		if x.Op == LogAnd || x.Op == LogOr {
			// Only the left operand is unconditionally evaluated.
			x.X = inl.extract(pre, x.X)
			return e
		}
		x.X = inl.extract(pre, x.X)
		x.Y = inl.extract(pre, x.Y)
	case *Assign:
		x.Rhs = inl.extract(pre, x.Rhs)
	case *Member:
		x.X = inl.extract(pre, x.X)
	case *Index:
		x.X = inl.extract(pre, x.X)
		x.I = inl.extract(pre, x.I)
	case *CondExpr:
		x.C = inl.extract(pre, x.C)
	}
	return e
}

func isVoidRet(t Type) bool {
	pt, ok := t.(*PrimType)
	return ok && pt.Kind == Void
}

// inlinableCall reports whether this call site can be expanded.
func (inl *inliner) inlinableCall(c *Call) bool {
	if c.Place != nil {
		return false
	}
	callee, ok := inl.eligible[c.Fun]
	if !ok || callee == inl.cur {
		return false
	}
	return len(c.Args) == len(callee.Params)
}

// expand builds the inline expansion of call c, assigning the return value
// to dst (may be nil for void/dropped results). declDst, when non-nil, is
// unused here but documents the destination's declared type at DeclStmt
// sites.
func (inl *inliner) expand(c *Call, dst Expr, declDst Type) []Stmt {
	callee := inl.eligible[c.Fun]
	inl.changed = true
	rename := make(map[string]string)
	// Read-only parameters bound to plain variables are substituted
	// directly (no copy): this keeps the callee's accesses on the caller's
	// pointer, so the communication optimizer sees one base variable and
	// can merge and block them (the paper's Figure 11(b) relies on this).
	substituted := make(map[string]bool)
	for i, p := range callee.Params {
		if id, ok := c.Args[i].(*Ident); ok && !paramAssigned(callee.Body, p.Name) {
			rename[p.Name] = id.Name
			substituted[p.Name] = true
			continue
		}
		rename[p.Name] = inl.fresh("arg")
	}
	collectDecls(callee.Body, func(d *VarDecl) {
		if _, dup := rename[d.Name]; !dup {
			rename[d.Name] = inl.fresh("loc")
		}
	})
	done := inl.fresh("done")

	blk := &Block{}
	for i, p := range callee.Params {
		if substituted[p.Name] {
			continue
		}
		blk.Stmts = append(blk.Stmts, &DeclStmt{Decl: &VarDecl{
			Name: rename[p.Name], Type: p.Type, Init: c.Args[i],
		}})
	}
	body := CloneStmt(callee.Body, rename).(*Block)
	replaceReturns(body, dst, done)
	// A single trailing return needs no jump: strip "goto done" when it is
	// the last statement (the common single-exit case then produces no
	// goto at all, so no flag machinery survives goto elimination).
	stripTrailingGoto(body, done)
	blk.Stmts = append(blk.Stmts, body.Stmts...)
	if usesGoto(body, done) {
		blk.Stmts = append(blk.Stmts, &LabeledStmt{Label: done, Stmt: &Block{}})
	}
	return []Stmt{blk}
}

// replaceReturns rewrites each return in the inlined body as an assignment
// to dst (when present) followed by a jump to the done label.
func replaceReturns(s Stmt, dst Expr, done string) {
	rewrite := func(rs *ReturnStmt) Stmt {
		var out []Stmt
		if rs.X != nil && dst != nil {
			out = append(out, &ExprStmt{X: &Assign{Op: PlainAssign,
				Lhs: CloneExpr(dst, nil), Rhs: rs.X}})
		}
		out = append(out, &GotoStmt{Label: done})
		return &Block{Stmts: out}
	}
	var walk func(Stmt) Stmt
	walk = func(s Stmt) Stmt {
		switch st := s.(type) {
		case *ReturnStmt:
			return rewrite(st)
		case *Block:
			for i, c := range st.Stmts {
				st.Stmts[i] = walk(c)
			}
		case *IfStmt:
			st.Then = walk(st.Then)
			if st.Else != nil {
				st.Else = walk(st.Else)
			}
		case *WhileStmt:
			st.Body = walk(st.Body)
		case *DoStmt:
			st.Body = walk(st.Body)
		case *ForStmt:
			st.Body = walk(st.Body)
		case *LabeledStmt:
			st.Stmt = walk(st.Stmt)
		}
		return s
	}
	walk(s)
}

// stripTrailingGoto removes a goto to the given label when it is the last
// statement executed (directly or at the end of trailing blocks).
func stripTrailingGoto(b *Block, label string) {
	for len(b.Stmts) > 0 {
		last := b.Stmts[len(b.Stmts)-1]
		if g, ok := last.(*GotoStmt); ok && g.Label == label {
			b.Stmts = b.Stmts[:len(b.Stmts)-1]
			return
		}
		if nb, ok := last.(*Block); ok {
			b = nb
			continue
		}
		return
	}
}

// usesGoto reports whether any goto targeting label remains in the subtree.
func usesGoto(s Stmt, label string) bool {
	found := false
	var walk func(Stmt)
	walk = func(s Stmt) {
		if found || s == nil {
			return
		}
		switch st := s.(type) {
		case *GotoStmt:
			if st.Label == label {
				found = true
			}
		case *Block:
			for _, c := range st.Stmts {
				walk(c)
			}
		case *ParSeq:
			for _, c := range st.Stmts {
				walk(c)
			}
		case *IfStmt:
			walk(st.Then)
			walk(st.Else)
		case *WhileStmt:
			walk(st.Body)
		case *DoStmt:
			walk(st.Body)
		case *ForStmt:
			walk(st.Body)
		case *ForallStmt:
			walk(st.Body)
		case *SwitchStmt:
			for _, cc := range st.Cases {
				for _, c := range cc.Body {
					walk(c)
				}
			}
		case *LabeledStmt:
			walk(st.Stmt)
		}
	}
	walk(s)
	return found
}

// ------------------------------------------------------------- inspection ---

func stmtCount(s Stmt) int {
	n := 0
	var walk func(Stmt)
	walk = func(s Stmt) {
		if s == nil {
			return
		}
		n++
		switch st := s.(type) {
		case *Block:
			for _, c := range st.Stmts {
				walk(c)
			}
		case *ParSeq:
			for _, c := range st.Stmts {
				walk(c)
			}
		case *IfStmt:
			walk(st.Then)
			walk(st.Else)
		case *WhileStmt:
			walk(st.Body)
		case *DoStmt:
			walk(st.Body)
		case *ForStmt:
			walk(st.Init)
			walk(st.Body)
		case *ForallStmt:
			walk(st.Init)
			walk(st.Body)
		case *SwitchStmt:
			for _, cc := range st.Cases {
				for _, c := range cc.Body {
					walk(c)
				}
			}
		case *LabeledStmt:
			walk(st.Stmt)
		}
	}
	walk(s)
	return n
}

// hasHardReturns reports returns nested where the goto eliminator cannot
// lift a forward jump out (switch cases, parallel constructs).
func hasHardReturns(s Stmt) bool {
	found := false
	var walk func(Stmt, bool)
	walk = func(s Stmt, hard bool) {
		if s == nil || found {
			return
		}
		switch st := s.(type) {
		case *ReturnStmt:
			if hard {
				found = true
			}
		case *Block:
			for _, c := range st.Stmts {
				walk(c, hard)
			}
		case *ParSeq:
			for _, c := range st.Stmts {
				walk(c, true)
			}
		case *IfStmt:
			walk(st.Then, hard)
			walk(st.Else, hard)
		case *WhileStmt:
			walk(st.Body, hard)
		case *DoStmt:
			walk(st.Body, hard)
		case *ForStmt:
			walk(st.Body, hard)
		case *ForallStmt:
			walk(st.Body, true)
		case *SwitchStmt:
			for _, cc := range st.Cases {
				for _, c := range cc.Body {
					walk(c, true)
				}
			}
		case *LabeledStmt:
			walk(st.Stmt, hard)
		}
	}
	walk(s, false)
	return found
}

func hasGotos(s Stmt) bool {
	found := false
	var walk func(Stmt)
	walk = func(s Stmt) {
		if s == nil || found {
			return
		}
		switch st := s.(type) {
		case *GotoStmt, *LabeledStmt:
			found = true
		case *Block:
			for _, c := range st.Stmts {
				walk(c)
			}
		case *ParSeq:
			for _, c := range st.Stmts {
				walk(c)
			}
		case *IfStmt:
			walk(st.Then)
			walk(st.Else)
		case *WhileStmt:
			walk(st.Body)
		case *DoStmt:
			walk(st.Body)
		case *ForStmt:
			walk(st.Body)
		case *ForallStmt:
			walk(st.Body)
		case *SwitchStmt:
			for _, cc := range st.Cases {
				for _, c := range cc.Body {
					walk(c)
				}
			}
		}
	}
	walk(s)
	return found
}

// walkCalls visits every call in a subtree (statements and expressions).
func walkCalls(s Stmt, fn func(*Call)) {
	var ws func(Stmt)
	var we func(Expr)
	we = func(e Expr) {
		switch x := e.(type) {
		case *Call:
			fn(x)
			for _, a := range x.Args {
				we(a)
			}
			if x.Place != nil {
				we(x.Place.Arg)
			}
		case *Unary:
			we(x.X)
		case *Binary:
			we(x.X)
			we(x.Y)
		case *Assign:
			we(x.Lhs)
			we(x.Rhs)
		case *IncDec:
			we(x.X)
		case *Member:
			we(x.X)
		case *Index:
			we(x.X)
			we(x.I)
		case *CondExpr:
			we(x.C)
			we(x.T)
			we(x.F)
		}
	}
	ws = func(s Stmt) {
		switch st := s.(type) {
		case nil:
		case *DeclStmt:
			if st.Decl.Init != nil {
				we(st.Decl.Init)
			}
		case *ExprStmt:
			we(st.X)
		case *Block:
			for _, c := range st.Stmts {
				ws(c)
			}
		case *ParSeq:
			for _, c := range st.Stmts {
				ws(c)
			}
		case *IfStmt:
			we(st.Cond)
			ws(st.Then)
			ws(st.Else)
		case *WhileStmt:
			we(st.Cond)
			ws(st.Body)
		case *DoStmt:
			ws(st.Body)
			we(st.Cond)
		case *ForStmt:
			ws(st.Init)
			if st.Cond != nil {
				we(st.Cond)
			}
			if st.Post != nil {
				we(st.Post)
			}
			ws(st.Body)
		case *ForallStmt:
			ws(st.Init)
			if st.Cond != nil {
				we(st.Cond)
			}
			if st.Post != nil {
				we(st.Post)
			}
			ws(st.Body)
		case *SwitchStmt:
			we(st.Tag)
			for _, cc := range st.Cases {
				for _, v := range cc.Vals {
					we(v)
				}
				for _, c := range cc.Body {
					ws(c)
				}
			}
		case *ReturnStmt:
			if st.X != nil {
				we(st.X)
			}
		case *LabeledStmt:
			ws(st.Stmt)
		}
	}
	ws(s)
}

// collectDecls visits every variable declaration in a subtree.
func collectDecls(s Stmt, fn func(*VarDecl)) {
	var walk func(Stmt)
	walk = func(s Stmt) {
		switch st := s.(type) {
		case nil:
		case *DeclStmt:
			fn(st.Decl)
		case *Block:
			for _, c := range st.Stmts {
				walk(c)
			}
		case *ParSeq:
			for _, c := range st.Stmts {
				walk(c)
			}
		case *IfStmt:
			walk(st.Then)
			walk(st.Else)
		case *WhileStmt:
			walk(st.Body)
		case *DoStmt:
			walk(st.Body)
		case *ForStmt:
			walk(st.Init)
			walk(st.Body)
		case *ForallStmt:
			walk(st.Init)
			walk(st.Body)
		case *SwitchStmt:
			for _, cc := range st.Cases {
				for _, c := range cc.Body {
					walk(c)
				}
			}
		case *LabeledStmt:
			walk(st.Stmt)
		}
	}
	walk(s)
}

// paramAssigned reports whether the callee's body may modify the named
// parameter: direct assignment, increment/decrement, or taking its address.
func paramAssigned(body Stmt, name string) bool {
	found := false
	walkExprs(body, func(e Expr) {
		switch x := e.(type) {
		case *Assign:
			if id, ok := x.Lhs.(*Ident); ok && id.Name == name {
				found = true
			}
		case *IncDec:
			if id, ok := x.X.(*Ident); ok && id.Name == name {
				found = true
			}
		case *Unary:
			if x.Op == Addr {
				if id, ok := x.X.(*Ident); ok && id.Name == name {
					found = true
				}
			}
		}
	})
	return found
}

// walkExprs visits every expression node in a statement subtree.
func walkExprs(s Stmt, fn func(Expr)) {
	var we func(Expr)
	we = func(e Expr) {
		if e == nil {
			return
		}
		fn(e)
		switch x := e.(type) {
		case *Unary:
			we(x.X)
		case *Binary:
			we(x.X)
			we(x.Y)
		case *Assign:
			we(x.Lhs)
			we(x.Rhs)
		case *IncDec:
			we(x.X)
		case *Call:
			for _, a := range x.Args {
				we(a)
			}
			if x.Place != nil {
				we(x.Place.Arg)
			}
		case *Member:
			we(x.X)
		case *Index:
			we(x.X)
			we(x.I)
		case *CondExpr:
			we(x.C)
			we(x.T)
			we(x.F)
		}
	}
	var ws func(Stmt)
	ws = func(s Stmt) {
		switch st := s.(type) {
		case nil:
		case *DeclStmt:
			we(st.Decl.Init)
		case *ExprStmt:
			we(st.X)
		case *Block:
			for _, c := range st.Stmts {
				ws(c)
			}
		case *ParSeq:
			for _, c := range st.Stmts {
				ws(c)
			}
		case *IfStmt:
			we(st.Cond)
			ws(st.Then)
			ws(st.Else)
		case *WhileStmt:
			we(st.Cond)
			ws(st.Body)
		case *DoStmt:
			ws(st.Body)
			we(st.Cond)
		case *ForStmt:
			ws(st.Init)
			we(st.Cond)
			we(st.Post)
			ws(st.Body)
		case *ForallStmt:
			ws(st.Init)
			we(st.Cond)
			we(st.Post)
			ws(st.Body)
		case *SwitchStmt:
			we(st.Tag)
			for _, cc := range st.Cases {
				for _, v := range cc.Vals {
					we(v)
				}
				for _, c := range cc.Body {
					ws(c)
				}
			}
		case *ReturnStmt:
			we(st.X)
		case *LabeledStmt:
			ws(st.Stmt)
		}
	}
	ws(s)
}
