package earthc

import "fmt"

// DesugarLoops rewrites break/continue statements and for loops into
// goto/label form, to be consumed by EliminateGotos. After this pass the
// only loop forms are while and do/while, and the only non-structured
// control transfers are gotos.
//
// break binds to the nearest enclosing loop (in this dialect switch cases
// never fall through, so a case-trailing break is dropped by the parser and
// any other break means "leave the loop"). continue binds to the nearest
// enclosing loop and, for a desugared for loop, re-executes the post
// expression. break/continue inside a forall body is rejected: forall
// iterations are independent parallel activations with no shared loop to
// leave.
func DesugarLoops(fn *FuncDef) error {
	d := &desugar{fn: fn}
	body, err := d.stmt(fn.Body, "", "")
	if err != nil {
		return err
	}
	fn.Body = body.(*Block)
	return nil
}

type desugar struct {
	fn  *FuncDef
	n   int
	err error
}

func (d *desugar) fresh(kind string) string {
	d.n++
	return fmt.Sprintf("__%s%d", kind, d.n)
}

// stmt rewrites s with the current break/continue target labels ("" when
// there is no enclosing loop).
func (d *desugar) stmt(s Stmt, brk, cont string) (Stmt, error) {
	switch st := s.(type) {
	case nil:
		return nil, nil
	case *Block:
		for i, c := range st.Stmts {
			nc, err := d.stmt(c, brk, cont)
			if err != nil {
				return nil, err
			}
			st.Stmts[i] = nc
		}
		return st, nil
	case *ParSeq:
		for i, c := range st.Stmts {
			// Parallel arms may contain their own loops, but may not break
			// out of an enclosing loop.
			nc, err := d.stmt(c, "", "")
			if err != nil {
				return nil, err
			}
			st.Stmts[i] = nc
		}
		return st, nil
	case *IfStmt:
		var err error
		if st.Then, err = d.stmt(st.Then, brk, cont); err != nil {
			return nil, err
		}
		if st.Else != nil {
			if st.Else, err = d.stmt(st.Else, brk, cont); err != nil {
				return nil, err
			}
		}
		return st, nil
	case *SwitchStmt:
		for _, cc := range st.Cases {
			for i, c := range cc.Body {
				nc, err := d.stmt(c, brk, cont)
				if err != nil {
					return nil, err
				}
				cc.Body[i] = nc
			}
		}
		return st, nil
	case *WhileStmt:
		return d.loop(st, &st.Body, nil)
	case *DoStmt:
		return d.loop(st, &st.Body, nil)
	case *ForStmt:
		// for (init; cond; post) body
		//   => { init; while (cond') { body; Lcont: ; post; } Lbrk: ; }
		// cond' defaults to 1 when omitted.
		cond := st.Cond
		if cond == nil {
			cond = &IntLit{Val: 1}
		}
		w := &WhileStmt{Cond: cond, Body: st.Body, Pos: st.Pos}
		post := st.Post
		rewritten, err := d.loop(w, &w.Body, post)
		if err != nil {
			return nil, err
		}
		blk := &Block{Pos: st.Pos}
		if st.Init != nil {
			blk.Stmts = append(blk.Stmts, st.Init)
		}
		blk.Stmts = append(blk.Stmts, rewritten)
		return blk, nil
	case *ForallStmt:
		if usesBreakContinue(st.Body) {
			return nil, fmt.Errorf("%s: break/continue inside forall is not supported", d.fn.Name)
		}
		nb, err := d.stmt(st.Body, "", "")
		if err != nil {
			return nil, err
		}
		st.Body = nb
		return st, nil
	case *LabeledStmt:
		ns, err := d.stmt(st.Stmt, brk, cont)
		if err != nil {
			return nil, err
		}
		st.Stmt = ns
		return st, nil
	case *BreakStmt:
		if brk == "" {
			return nil, fmt.Errorf("%s: break outside a loop", d.fn.Name)
		}
		return &GotoStmt{Label: brk, Pos: st.Pos}, nil
	case *ContinueStmt:
		if cont == "" {
			return nil, fmt.Errorf("%s: continue outside a loop", d.fn.Name)
		}
		return &GotoStmt{Label: cont, Pos: st.Pos}, nil
	default:
		return s, nil
	}
}

// loop rewrites a while/do loop body, introducing labels only when needed.
// post, when non-nil (for a desugared for loop), is appended to the body
// after the continue label.
func (d *desugar) loop(loopStmt Stmt, bodyp *Stmt, post Expr) (Stmt, error) {
	needBrk := usesBreak(*bodyp)
	needCont := usesContinue(*bodyp)
	brk, cont := "", ""
	if needBrk {
		brk = d.fresh("brk")
	}
	if needCont || post != nil {
		cont = d.fresh("cont")
	}
	nb, err := d.stmt(*bodyp, brk, cont)
	if err != nil {
		return nil, err
	}
	body := ensureBlock(nb)
	if cont != "" && (needCont || post != nil) {
		if needCont {
			body.Stmts = append(body.Stmts, &LabeledStmt{Label: cont, Stmt: &Block{}})
		}
		if post != nil {
			body.Stmts = append(body.Stmts, &ExprStmt{X: post})
		}
	}
	*bodyp = body
	if needBrk {
		return &Block{Stmts: []Stmt{
			loopStmt,
			&LabeledStmt{Label: brk, Stmt: &Block{}},
		}}, nil
	}
	return loopStmt, nil
}

// usesBreak reports whether s contains a break binding to the current loop
// (not descending into nested loops or parallel constructs).
func usesBreak(s Stmt) bool    { return scanBC(s, true) }
func usesContinue(s Stmt) bool { return scanBC(s, false) }

func scanBC(s Stmt, wantBreak bool) bool {
	switch st := s.(type) {
	case *BreakStmt:
		return wantBreak
	case *ContinueStmt:
		return !wantBreak
	case *Block:
		for _, c := range st.Stmts {
			if scanBC(c, wantBreak) {
				return true
			}
		}
	case *IfStmt:
		if scanBC(st.Then, wantBreak) {
			return true
		}
		if st.Else != nil {
			return scanBC(st.Else, wantBreak)
		}
	case *SwitchStmt:
		for _, cc := range st.Cases {
			for _, c := range cc.Body {
				if scanBC(c, wantBreak) {
					return true
				}
			}
		}
	case *LabeledStmt:
		return scanBC(st.Stmt, wantBreak)
	}
	return false
}

// usesBreakContinue reports whether any break/continue occurs anywhere in
// the subtree, including nested loops.
func usesBreakContinue(s Stmt) bool {
	found := false
	var walk func(Stmt)
	walk = func(s Stmt) {
		if found || s == nil {
			return
		}
		switch st := s.(type) {
		case *BreakStmt, *ContinueStmt:
			found = true
		case *Block:
			for _, c := range st.Stmts {
				walk(c)
			}
		case *ParSeq:
			for _, c := range st.Stmts {
				walk(c)
			}
		case *IfStmt:
			walk(st.Then)
			walk(st.Else)
		case *WhileStmt:
			walk(st.Body)
		case *DoStmt:
			walk(st.Body)
		case *ForStmt:
			walk(st.Body)
		case *ForallStmt:
			walk(st.Body)
		case *SwitchStmt:
			for _, cc := range st.Cases {
				for _, c := range cc.Body {
					walk(c)
				}
			}
		case *LabeledStmt:
			walk(st.Stmt)
		}
	}
	walk(s)
	return found
}
