package earthc

import (
	"fmt"
	"strings"
)

// A Lexer turns EARTH-C source text into a stream of tokens. It handles //
// and /* */ comments, the parallel-sequence brackets {^ and ^}, and the usual
// C numeric and character literals.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
	errs []error
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Errors returns any lexical errors encountered so far.
func (l *Lexer) Errors() []error { return l.errs }

func (l *Lexer) errorf(p Pos, format string, args ...any) {
	l.errs = append(l.errs, fmt.Errorf("%s: %s", p, fmt.Sprintf(format, args...)))
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isAlpha(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func (l *Lexer) skipSpaceAndComments() {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			p := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				l.errorf(p, "unterminated block comment")
			}
		default:
			return
		}
	}
}

// Next returns the next token. At end of input it returns an EOF token, and
// keeps returning it.
func (l *Lexer) Next() Token {
	l.skipSpaceAndComments()
	p := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: EOF, Pos: p}
	}
	c := l.peek()
	switch {
	case isAlpha(c):
		start := l.off
		for l.off < len(l.src) && (isAlpha(l.peek()) || isDigit(l.peek())) {
			l.advance()
		}
		text := l.src[start:l.off]
		if k, ok := keywords[text]; ok {
			return Token{Kind: k, Text: text, Pos: p}
		}
		return Token{Kind: IDENT, Text: text, Pos: p}
	case isDigit(c) || (c == '.' && isDigit(l.peek2())):
		return l.number(p)
	case c == '\'':
		return l.charLit(p)
	case c == '"':
		return l.stringLit(p)
	}
	l.advance()
	two := func(nc byte, k2 Kind, k1 Kind) Token {
		if l.peek() == nc {
			l.advance()
			return Token{Kind: k2, Text: string([]byte{c, nc}), Pos: p}
		}
		return Token{Kind: k1, Text: string(c), Pos: p}
	}
	switch c {
	case '+':
		if l.peek() == '+' {
			l.advance()
			return Token{Kind: INC, Text: "++", Pos: p}
		}
		return two('=', ADDEQ, PLUS)
	case '-':
		switch l.peek() {
		case '-':
			l.advance()
			return Token{Kind: DEC, Text: "--", Pos: p}
		case '>':
			l.advance()
			return Token{Kind: ARROW, Text: "->", Pos: p}
		}
		return two('=', SUBEQ, MINUS)
	case '*':
		return two('=', MULEQ, STAR)
	case '/':
		return two('=', DIVEQ, SLASH)
	case '%':
		return Token{Kind: PERCENT, Text: "%", Pos: p}
	case '&':
		return two('&', LAND, AMP)
	case '|':
		return two('|', LOR, PIPE)
	case '^':
		if l.peek() == '}' {
			l.advance()
			return Token{Kind: RPARSEQ, Text: "^}", Pos: p}
		}
		return Token{Kind: CARET, Text: "^", Pos: p}
	case '!':
		return two('=', NE, NOT)
	case '~':
		return Token{Kind: TILDE, Text: "~", Pos: p}
	case '=':
		return two('=', EQ, ASSIGN)
	case '<':
		if l.peek() == '<' {
			l.advance()
			return Token{Kind: SHL, Text: "<<", Pos: p}
		}
		return two('=', LE, LT)
	case '>':
		if l.peek() == '>' {
			l.advance()
			return Token{Kind: SHR, Text: ">>", Pos: p}
		}
		return two('=', GE, GT)
	case '.':
		return Token{Kind: DOT, Text: ".", Pos: p}
	case ',':
		return Token{Kind: COMMA, Text: ",", Pos: p}
	case ';':
		return Token{Kind: SEMI, Text: ";", Pos: p}
	case ':':
		return Token{Kind: COLON, Text: ":", Pos: p}
	case '?':
		return Token{Kind: QUESTION, Text: "?", Pos: p}
	case '@':
		return Token{Kind: AT, Text: "@", Pos: p}
	case '(':
		return Token{Kind: LPAREN, Text: "(", Pos: p}
	case ')':
		return Token{Kind: RPAREN, Text: ")", Pos: p}
	case '{':
		if l.peek() == '^' {
			l.advance()
			return Token{Kind: LPARSEQ, Text: "{^", Pos: p}
		}
		return Token{Kind: LBRACE, Text: "{", Pos: p}
	case '}':
		return Token{Kind: RBRACE, Text: "}", Pos: p}
	case '[':
		return Token{Kind: LBRACK, Text: "[", Pos: p}
	case ']':
		return Token{Kind: RBRACK, Text: "]", Pos: p}
	}
	l.errorf(p, "illegal character %q", string(c))
	return Token{Kind: ILLEGAL, Text: string(c), Pos: p}
}

func (l *Lexer) number(p Pos) Token {
	start := l.off
	isFloat := false
	for l.off < len(l.src) && isDigit(l.peek()) {
		l.advance()
	}
	if l.peek() == '.' && isDigit(l.peek2()) {
		isFloat = true
		l.advance()
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
	} else if l.peek() == '.' && !isAlpha(l.peek2()) {
		// trailing dot as in "1."
		isFloat = true
		l.advance()
	}
	if l.peek() == 'e' || l.peek() == 'E' {
		save := l.off
		l.advance()
		if l.peek() == '+' || l.peek() == '-' {
			l.advance()
		}
		if isDigit(l.peek()) {
			isFloat = true
			for l.off < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		} else {
			// not an exponent; restore (cannot easily un-advance lines,
			// but 'e' is never a newline so col math is safe)
			l.col -= l.off - save
			l.off = save
		}
	}
	text := l.src[start:l.off]
	if isFloat {
		return Token{Kind: FLOAT, Text: text, Pos: p}
	}
	return Token{Kind: INT, Text: text, Pos: p}
}

func (l *Lexer) charLit(p Pos) Token {
	l.advance() // opening quote
	var b strings.Builder
	for l.off < len(l.src) && l.peek() != '\'' {
		c := l.advance()
		if c == '\\' && l.off < len(l.src) {
			e := l.advance()
			switch e {
			case 'n':
				c = '\n'
			case 't':
				c = '\t'
			case '0':
				c = 0
			case '\\', '\'':
				c = e
			default:
				l.errorf(p, "unknown escape \\%c", e)
				c = e
			}
		}
		b.WriteByte(c)
	}
	if l.off >= len(l.src) {
		l.errorf(p, "unterminated character literal")
		return Token{Kind: ILLEGAL, Pos: p}
	}
	l.advance() // closing quote
	if b.Len() != 1 {
		l.errorf(p, "character literal must contain exactly one character")
	}
	return Token{Kind: CHAR, Text: b.String(), Pos: p}
}

func (l *Lexer) stringLit(p Pos) Token {
	l.advance() // opening quote
	var b strings.Builder
	for l.off < len(l.src) && l.peek() != '"' {
		c := l.advance()
		if c == '\\' && l.off < len(l.src) {
			e := l.advance()
			switch e {
			case 'n':
				c = '\n'
			case 't':
				c = '\t'
			case '"', '\\':
				c = e
			default:
				l.errorf(p, "unknown escape \\%c", e)
				c = e
			}
		}
		b.WriteByte(c)
	}
	if l.off >= len(l.src) {
		l.errorf(p, "unterminated string literal")
		return Token{Kind: ILLEGAL, Pos: p}
	}
	l.advance()
	return Token{Kind: STRING, Text: b.String(), Pos: p}
}

// Tokenize lexes the whole input, returning all tokens up to and including
// EOF, plus any lexical errors.
func Tokenize(src string) ([]Token, []error) {
	l := NewLexer(src)
	var toks []Token
	for {
		t := l.Next()
		toks = append(toks, t)
		if t.Kind == EOF {
			break
		}
	}
	return toks, l.Errors()
}
