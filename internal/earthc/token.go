// Package earthc implements the front end for the EARTH-C dialect used by
// this reproduction of Zhu & Hendren, "Communication Optimizations for
// Parallel C Programs" (PLDI 1998).
//
// EARTH-C is a small parallel dialect of C: a C subset extended with forall
// loops, parallel statement sequences {^ ... ^}, shared variables, local
// pointer qualifiers, and placement annotations such as @OWNER_OF(p) on
// calls. The package provides a lexer, a recursive-descent parser producing
// an AST, a goto-elimination transformation, and an AST printer.
package earthc

import "fmt"

// Kind identifies the lexical class of a token.
type Kind int

// Token kinds. Single-character punctuation uses its own kind so the parser
// reads naturally.
const (
	EOF Kind = iota
	ILLEGAL

	IDENT  // main, p, Point
	INT    // 123
	FLOAT  // 1.5, 1e-9
	CHAR   // 'a'
	STRING // "abc" (only used by print intrinsics)

	// Operators and punctuation.
	PLUS     // +
	MINUS    // -
	STAR     // *
	SLASH    // /
	PERCENT  // %
	AMP      // &
	PIPE     // |
	CARET    // ^
	SHL      // <<
	SHR      // >>
	LAND     // &&
	LOR      // ||
	NOT      // !
	TILDE    // ~
	ASSIGN   // =
	ADDEQ    // +=
	SUBEQ    // -=
	MULEQ    // *=
	DIVEQ    // /=
	EQ       // ==
	NE       // !=
	LT       // <
	GT       // >
	LE       // <=
	GE       // >=
	INC      // ++
	DEC      // --
	ARROW    // ->
	DOT      // .
	COMMA    // ,
	SEMI     // ;
	COLON    // :
	QUESTION // ?
	AT       // @
	LPAREN   // (
	RPAREN   // )
	LBRACE   // {
	RBRACE   // }
	LBRACK   // [
	RBRACK   // ]
	LPARSEQ  // {^
	RPARSEQ  // ^}

	// Keywords.
	KwInt
	KwDouble
	KwChar
	KwVoid
	KwStruct
	KwIf
	KwElse
	KwWhile
	KwDo
	KwFor
	KwForall
	KwSwitch
	KwCase
	KwDefault
	KwBreak
	KwContinue
	KwReturn
	KwGoto
	KwShared
	KwLocal
	KwSizeof
	KwNull
	KwTypedef
)

var kindNames = map[Kind]string{
	EOF: "EOF", ILLEGAL: "ILLEGAL", IDENT: "IDENT", INT: "INT", FLOAT: "FLOAT",
	CHAR: "CHAR", STRING: "STRING",
	PLUS: "+", MINUS: "-", STAR: "*", SLASH: "/", PERCENT: "%", AMP: "&",
	PIPE: "|", CARET: "^", SHL: "<<", SHR: ">>", LAND: "&&", LOR: "||",
	NOT: "!", TILDE: "~", ASSIGN: "=", ADDEQ: "+=", SUBEQ: "-=", MULEQ: "*=",
	DIVEQ: "/=", EQ: "==", NE: "!=", LT: "<", GT: ">", LE: "<=", GE: ">=",
	INC: "++", DEC: "--", ARROW: "->", DOT: ".", COMMA: ",", SEMI: ";",
	COLON: ":", QUESTION: "?", AT: "@", LPAREN: "(", RPAREN: ")",
	LBRACE: "{", RBRACE: "}", LBRACK: "[", RBRACK: "]",
	LPARSEQ: "{^", RPARSEQ: "^}",
	KwInt: "int", KwDouble: "double", KwChar: "char", KwVoid: "void",
	KwStruct: "struct", KwIf: "if", KwElse: "else", KwWhile: "while",
	KwDo: "do", KwFor: "for", KwForall: "forall", KwSwitch: "switch",
	KwCase: "case", KwDefault: "default", KwBreak: "break",
	KwContinue: "continue", KwReturn: "return", KwGoto: "goto",
	KwShared: "shared", KwLocal: "local", KwSizeof: "sizeof", KwNull: "NULL",
	KwTypedef: "typedef",
}

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

var keywords = map[string]Kind{
	"int": KwInt, "double": KwDouble, "char": KwChar, "void": KwVoid,
	"struct": KwStruct, "if": KwIf, "else": KwElse, "while": KwWhile,
	"do": KwDo, "for": KwFor, "forall": KwForall, "switch": KwSwitch,
	"case": KwCase, "default": KwDefault, "break": KwBreak,
	"continue": KwContinue, "return": KwReturn, "goto": KwGoto,
	"shared": KwShared, "local": KwLocal, "sizeof": KwSizeof,
	"NULL": KwNull, "typedef": KwTypedef,
}

// Pos is a source position, 1-based.
type Pos struct {
	Line int
	Col  int
}

// String formats the position as line:col.
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a single lexical token with its source text and position.
type Token struct {
	Kind Kind
	Text string
	Pos  Pos
}

// String formats the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case IDENT, INT, FLOAT, CHAR, STRING:
		return fmt.Sprintf("%s(%q)", t.Kind, t.Text)
	default:
		return t.Kind.String()
	}
}
