int main() {
    int x = 1;
    if (x >
