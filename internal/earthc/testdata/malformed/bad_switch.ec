int main() {
    switch (1) {
        banana: return 2;
    }
}
