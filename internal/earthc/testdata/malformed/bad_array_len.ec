int main() {
    int a[-3];
    int b[];
    return a[0;
}
