int main() {
    while (1) {
        int y = (3 +
