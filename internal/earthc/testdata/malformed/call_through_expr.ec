int main() {
    int x = 1;
    return (x + 1)(2);
}
