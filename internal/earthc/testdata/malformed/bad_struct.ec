struct node {
    int val
    struct node *next;;;
};
int main() { struct node n; return n.; }
