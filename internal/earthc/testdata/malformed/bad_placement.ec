int f(int x) { return x; }
int main() {
    return f(1) @ NOWHERE(2);
}
