@@@ ??? ;;; }}}
int 42() { return; }
struct { } anonymous;
