package earthc

// Deep cloning of AST subtrees with identifier renaming, used by the
// function inliner. The rename map applies to variable identifiers
// (declarations and uses); function names in calls are never renamed.

// CloneStmt deep-copies a statement, renaming identifiers per rename.
func CloneStmt(s Stmt, rename map[string]string) Stmt {
	switch st := s.(type) {
	case nil:
		return nil
	case *DeclStmt:
		d := st.Decl
		nd := &VarDecl{Name: renamed(d.Name, rename), Type: d.Type,
			Shared: d.Shared, Init: CloneExpr(d.Init, rename), Pos: d.Pos}
		return &DeclStmt{Decl: nd}
	case *ExprStmt:
		return &ExprStmt{X: CloneExpr(st.X, rename), Pos: st.Pos}
	case *Block:
		nb := &Block{Pos: st.Pos}
		for _, c := range st.Stmts {
			nb.Stmts = append(nb.Stmts, CloneStmt(c, rename))
		}
		return nb
	case *ParSeq:
		np := &ParSeq{Pos: st.Pos}
		for _, c := range st.Stmts {
			np.Stmts = append(np.Stmts, CloneStmt(c, rename))
		}
		return np
	case *IfStmt:
		return &IfStmt{Cond: CloneExpr(st.Cond, rename),
			Then: CloneStmt(st.Then, rename), Else: CloneStmt(st.Else, rename), Pos: st.Pos}
	case *WhileStmt:
		return &WhileStmt{Cond: CloneExpr(st.Cond, rename),
			Body: CloneStmt(st.Body, rename), Pos: st.Pos}
	case *DoStmt:
		return &DoStmt{Body: CloneStmt(st.Body, rename),
			Cond: CloneExpr(st.Cond, rename), Pos: st.Pos}
	case *ForStmt:
		return &ForStmt{Init: CloneStmt(st.Init, rename), Cond: CloneExpr(st.Cond, rename),
			Post: CloneExpr(st.Post, rename), Body: CloneStmt(st.Body, rename), Pos: st.Pos}
	case *ForallStmt:
		return &ForallStmt{Init: CloneStmt(st.Init, rename), Cond: CloneExpr(st.Cond, rename),
			Post: CloneExpr(st.Post, rename), Body: CloneStmt(st.Body, rename), Pos: st.Pos}
	case *SwitchStmt:
		ns := &SwitchStmt{Tag: CloneExpr(st.Tag, rename), Pos: st.Pos}
		for _, cc := range st.Cases {
			ncc := &CaseClause{Pos: cc.Pos}
			for _, v := range cc.Vals {
				ncc.Vals = append(ncc.Vals, CloneExpr(v, rename))
			}
			for _, c := range cc.Body {
				ncc.Body = append(ncc.Body, CloneStmt(c, rename))
			}
			ns.Cases = append(ns.Cases, ncc)
		}
		return ns
	case *BreakStmt:
		return &BreakStmt{Pos: st.Pos}
	case *ContinueStmt:
		return &ContinueStmt{Pos: st.Pos}
	case *ReturnStmt:
		return &ReturnStmt{X: CloneExpr(st.X, rename), Pos: st.Pos}
	case *GotoStmt:
		return &GotoStmt{Label: st.Label, Pos: st.Pos}
	case *LabeledStmt:
		return &LabeledStmt{Label: st.Label, Stmt: CloneStmt(st.Stmt, rename), Pos: st.Pos}
	}
	return s
}

// CloneExpr deep-copies an expression, renaming identifiers per rename.
func CloneExpr(e Expr, rename map[string]string) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *IntLit:
		v := *x
		return &v
	case *FloatLit:
		v := *x
		return &v
	case *CharLit:
		v := *x
		return &v
	case *StringLit:
		v := *x
		return &v
	case *NullLit:
		v := *x
		return &v
	case *Ident:
		return &Ident{Name: renamed(x.Name, rename), Pos: x.Pos}
	case *Unary:
		return &Unary{Op: x.Op, X: CloneExpr(x.X, rename), Pos: x.Pos}
	case *Binary:
		return &Binary{Op: x.Op, X: CloneExpr(x.X, rename), Y: CloneExpr(x.Y, rename), Pos: x.Pos}
	case *Assign:
		return &Assign{Op: x.Op, Lhs: CloneExpr(x.Lhs, rename), Rhs: CloneExpr(x.Rhs, rename), Pos: x.Pos}
	case *IncDec:
		return &IncDec{X: CloneExpr(x.X, rename), Decr: x.Decr, Prefix: x.Prefix, Pos: x.Pos}
	case *Call:
		nc := &Call{Fun: x.Fun, Pos: x.Pos}
		for _, a := range x.Args {
			nc.Args = append(nc.Args, CloneExpr(a, rename))
		}
		if x.Place != nil {
			nc.Place = &Placement{Kind: x.Place.Kind, Arg: CloneExpr(x.Place.Arg, rename)}
		}
		return nc
	case *Member:
		return &Member{X: CloneExpr(x.X, rename), Name: x.Name, Arrow: x.Arrow, Pos: x.Pos}
	case *Index:
		return &Index{X: CloneExpr(x.X, rename), I: CloneExpr(x.I, rename), Pos: x.Pos}
	case *SizeofExpr:
		return &SizeofExpr{T: x.T, Pos: x.Pos}
	case *CondExpr:
		return &CondExpr{C: CloneExpr(x.C, rename), T: CloneExpr(x.T, rename),
			F: CloneExpr(x.F, rename), Pos: x.Pos}
	}
	return e
}

func renamed(name string, rename map[string]string) string {
	if rename == nil {
		return name
	}
	if n, ok := rename[name]; ok {
		return n
	}
	return name
}
