package earthc

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestMalformedCorpus feeds every file under testdata/malformed through the
// parser. Each must produce a diagnostic — never a panic (the test binary
// would crash) and never silent acceptance.
func TestMalformedCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "malformed", "*.ec"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no malformed corpus files found")
	}
	for _, path := range files {
		t.Run(filepath.Base(path), func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if _, perr := ParseFile(filepath.Base(path), string(src)); perr == nil {
				t.Fatalf("parser accepted malformed input")
			}
		})
	}
}

// TestDeepNesting drives each unbounded recursion path in the parser past
// maxParseDepth. All must return a syntax error; none may overflow the stack.
func TestDeepNesting(t *testing.T) {
	cases := map[string]string{
		"parens":  "int main() { return " + strings.Repeat("(", 20000) + "1" + strings.Repeat(")", 20000) + "; }",
		"braces":  "int main() " + strings.Repeat("{", 20000) + strings.Repeat("}", 20000),
		"unary":   "int main() { return " + strings.Repeat("!", 30000) + "1; }",
		"assign":  "int main() { int x; x" + strings.Repeat(" = x", 30000) + " = 1; return x; }",
		"ternary": "int main() { return " + strings.Repeat("1 ? 1 : ", 30000) + "0; }",
		"ifelse":  "int main() { " + strings.Repeat("if (1) ", 20000) + "return 0; }",
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			_, err := ParseFile(name+".ec", src)
			if err == nil {
				t.Fatalf("deeply nested input parsed without error")
			}
			if !strings.Contains(err.Error(), "nesting exceeds") {
				t.Fatalf("expected nesting diagnostic, got: %v", err)
			}
		})
	}
}

// TestModerateNestingAccepted pins the guard's headroom: realistic nesting
// depths stay well inside the limit.
func TestModerateNestingAccepted(t *testing.T) {
	src := "int main() { return " + strings.Repeat("(", 50) + "1" + strings.Repeat(")", 50) + "; }"
	if _, err := ParseFile("ok.ec", src); err != nil {
		t.Fatalf("50-level parens rejected: %v", err)
	}
}
