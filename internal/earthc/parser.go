package earthc

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Parser is a recursive-descent parser for the EARTH-C dialect.
type Parser struct {
	toks    []Token
	pos     int
	depth   int // current statement/expression nesting, bounded by maxParseDepth
	errs    []error
	structs map[string]bool // struct tags seen so far, for decl/expr disambiguation
	file    *File
}

// maxParseDepth bounds statement and expression nesting. Adversarially deep
// input (thousands of '(' or '{') must surface as a syntax error, not a
// goroutine stack overflow — which recover() cannot catch.
const maxParseDepth = 400

// enter charges one level of recursion; callers pair it with `defer p.leave()`.
func (p *Parser) enter() {
	p.depth++
	if p.depth > maxParseDepth {
		p.errorf("nesting exceeds %d levels", maxParseDepth)
		panic(bailout{})
	}
}

func (p *Parser) leave() { p.depth-- }

// bailout is panicked internally to abort parsing of one construct during
// error recovery; it never escapes ParseFile.
type bailout struct{}

// ParseFile parses a complete EARTH-C translation unit. It returns the file
// along with any syntax errors; the file may be partially populated when
// errors are present.
func ParseFile(name, src string) (*File, error) {
	toks, lexErrs := Tokenize(src)
	p := &Parser{
		toks:    toks,
		structs: make(map[string]bool),
		file:    &File{Name: name},
	}
	p.errs = append(p.errs, lexErrs...)
	p.parseFile()
	if len(p.errs) > 0 {
		msgs := make([]string, 0, len(p.errs))
		for i, e := range p.errs {
			if i == 10 {
				msgs = append(msgs, fmt.Sprintf("... and %d more errors", len(p.errs)-10))
				break
			}
			msgs = append(msgs, e.Error())
		}
		return p.file, errors.New(name + ": " + strings.Join(msgs, "\n"+name+": "))
	}
	return p.file, nil
}

// MustParse parses src and panics on any error. It is intended for tests and
// for embedded benchmark sources that are known to be valid.
func MustParse(name, src string) *File {
	f, err := ParseFile(name, src)
	if err != nil {
		panic(err)
	}
	return f
}

func (p *Parser) cur() Token { return p.toks[p.pos] }
func (p *Parser) peek() Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *Parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != EOF {
		p.pos++
	}
	return t
}

func (p *Parser) at(k Kind) bool { return p.cur().Kind == k }

func (p *Parser) accept(k Kind) bool {
	if p.at(k) {
		p.next()
		return true
	}
	return false
}

func (p *Parser) expect(k Kind) Token {
	if p.at(k) {
		return p.next()
	}
	p.errorf("expected %s, found %s", k, p.cur())
	panic(bailout{})
}

func (p *Parser) errorf(format string, args ...any) {
	p.errs = append(p.errs, fmt.Errorf("%s: %s", p.cur().Pos, fmt.Sprintf(format, args...)))
}

// sync skips tokens until a likely top-level or statement boundary.
func (p *Parser) sync(stop ...Kind) {
	depth := 0
	for !p.at(EOF) {
		k := p.cur().Kind
		if depth == 0 {
			for _, s := range stop {
				if k == s {
					return
				}
			}
		}
		switch k {
		case LBRACE, LPARSEQ:
			depth++
		case RBRACE, RPARSEQ:
			if depth == 0 {
				return
			}
			depth--
		}
		p.next()
	}
}

// ------------------------------------------------------------- top level ---

func (p *Parser) parseFile() {
	for !p.at(EOF) {
		func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(bailout); !ok {
						panic(r)
					}
					p.sync(SEMI, RBRACE)
					p.accept(SEMI)
					p.accept(RBRACE)
				}
			}()
			p.parseTopDecl()
		}()
	}
}

func (p *Parser) parseTopDecl() {
	if p.at(KwStruct) && p.peek().Kind == IDENT && p.toks[p.pos+2].Kind == LBRACE {
		p.parseStructDef()
		return
	}
	shared := p.accept(KwShared)
	base := p.parseTypeSpec()
	// Distinguish "type name(params) {body}" from "type declarator;"
	save := p.pos
	typ, name, npos := p.parseDeclarator(base)
	if p.at(LPAREN) {
		p.parseFuncDef(typ, name, npos)
		return
	}
	_ = save
	init := Expr(nil)
	if p.accept(ASSIGN) {
		init = p.parseExpr()
	}
	p.expect(SEMI)
	p.file.Globals = append(p.file.Globals, &VarDecl{
		Name: name, Type: typ, Shared: shared, Init: init, Pos: npos,
	})
}

func (p *Parser) parseStructDef() {
	pos := p.expect(KwStruct).Pos
	name := p.expect(IDENT).Text
	p.structs[name] = true
	p.expect(LBRACE)
	def := &StructDef{Name: name, Pos: pos}
	for !p.at(RBRACE) && !p.at(EOF) {
		base := p.parseTypeSpec()
		for {
			ft, fname, fpos := p.parseDeclarator(base)
			def.Fields = append(def.Fields, &Field{Name: fname, Type: ft, Pos: fpos})
			if !p.accept(COMMA) {
				break
			}
		}
		p.expect(SEMI)
	}
	p.expect(RBRACE)
	p.expect(SEMI)
	p.file.Structs = append(p.file.Structs, def)
}

func (p *Parser) parseFuncDef(ret Type, name string, pos Pos) {
	fn := &FuncDef{Name: name, Ret: ret, Pos: pos}
	p.expect(LPAREN)
	if !p.at(RPAREN) {
		if p.at(KwVoid) && p.peek().Kind == RPAREN {
			p.next()
		} else {
			for {
				base := p.parseTypeSpec()
				pt, pname, ppos := p.parseDeclarator(base)
				fn.Params = append(fn.Params, &Param{Name: pname, Type: pt, Pos: ppos})
				if !p.accept(COMMA) {
					break
				}
			}
		}
	}
	p.expect(RPAREN)
	p.accept(SEMI) // tolerate "int f(...);{" style: stray semicolon before body
	fn.Body = p.parseBlock()
	p.file.Funcs = append(p.file.Funcs, fn)
}

// ------------------------------------------------------------------ types ---

// typeSpecStart reports whether the current token can begin a type
// specifier in declaration position.
func (p *Parser) typeSpecStart() bool {
	switch p.cur().Kind {
	case KwInt, KwDouble, KwChar, KwVoid, KwStruct:
		return true
	case IDENT:
		if !p.structs[p.cur().Text] {
			return false
		}
		// "Point * p" is a declaration; "Point * 3" or "p * q" is not
		// (the latter never reaches here since p is not a struct tag).
		switch p.peek().Kind {
		case STAR, IDENT, KwLocal:
			return true
		}
		return false
	}
	return false
}

func (p *Parser) parseTypeSpec() Type {
	switch p.cur().Kind {
	case KwInt:
		p.next()
		return &PrimType{Kind: Int}
	case KwDouble:
		p.next()
		return &PrimType{Kind: Double}
	case KwChar:
		p.next()
		return &PrimType{Kind: Char}
	case KwVoid:
		p.next()
		return &PrimType{Kind: Void}
	case KwStruct:
		p.next()
		name := p.expect(IDENT).Text
		return &StructRef{Name: name}
	case IDENT:
		name := p.cur().Text
		if p.structs[name] {
			p.next()
			return &StructRef{Name: name}
		}
	}
	p.errorf("expected type, found %s", p.cur())
	panic(bailout{})
}

// parseDeclarator parses ('local'? '*')* name ('[' INT ']')? and combines it
// with the base type. The EARTH-C style "node local *p" marks the pointer as
// local (its pointee is in local memory).
func (p *Parser) parseDeclarator(base Type) (Type, string, Pos) {
	t := base
	for {
		local := false
		if p.at(KwLocal) {
			local = true
			p.next()
		}
		if p.at(STAR) {
			p.next()
			t = &PtrType{Elem: t, Local: local}
			continue
		}
		if local {
			p.errorf("'local' must qualify a pointer declarator")
		}
		break
	}
	nameTok := p.expect(IDENT)
	if p.accept(LBRACK) {
		lenTok := p.expect(INT)
		n, err := strconv.Atoi(lenTok.Text)
		if err != nil || n <= 0 {
			p.errorf("bad array length %q", lenTok.Text)
			n = 1
		}
		p.expect(RBRACK)
		t = &ArrayType{Elem: t, Len: n}
	}
	return t, nameTok.Text, nameTok.Pos
}

// ------------------------------------------------------------- statements ---

func (p *Parser) parseBlock() *Block {
	pos := p.expect(LBRACE).Pos
	b := &Block{Pos: pos}
	for !p.at(RBRACE) && !p.at(EOF) {
		b.Stmts = append(b.Stmts, p.parseStmtRecover())
	}
	p.expect(RBRACE)
	return b
}

func (p *Parser) parseStmtRecover() (s Stmt) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(bailout); !ok {
				panic(r)
			}
			p.sync(SEMI, RBRACE)
			p.accept(SEMI)
			s = &Block{} // empty placeholder
		}
	}()
	return p.parseStmt()
}

func (p *Parser) parseStmt() Stmt {
	p.enter()
	defer p.leave()
	switch p.cur().Kind {
	case LBRACE:
		return p.parseBlock()
	case LPARSEQ:
		pos := p.next().Pos
		ps := &ParSeq{Pos: pos}
		for !p.at(RPARSEQ) && !p.at(EOF) {
			ps.Stmts = append(ps.Stmts, p.parseStmtRecover())
		}
		p.expect(RPARSEQ)
		return ps
	case KwIf:
		pos := p.next().Pos
		p.expect(LPAREN)
		cond := p.parseExpr()
		p.expect(RPAREN)
		then := p.parseStmt()
		var els Stmt
		if p.accept(KwElse) {
			els = p.parseStmt()
		}
		return &IfStmt{Cond: cond, Then: then, Else: els, Pos: pos}
	case KwWhile:
		pos := p.next().Pos
		p.expect(LPAREN)
		cond := p.parseExpr()
		p.expect(RPAREN)
		body := p.parseStmt()
		return &WhileStmt{Cond: cond, Body: body, Pos: pos}
	case KwDo:
		pos := p.next().Pos
		body := p.parseStmt()
		p.expect(KwWhile)
		p.expect(LPAREN)
		cond := p.parseExpr()
		p.expect(RPAREN)
		p.expect(SEMI)
		return &DoStmt{Body: body, Cond: cond, Pos: pos}
	case KwFor, KwForall:
		isForall := p.cur().Kind == KwForall
		pos := p.next().Pos
		p.expect(LPAREN)
		var init Stmt
		if !p.at(SEMI) {
			if p.typeSpecStart() {
				init = p.parseDeclStmt()
			} else {
				e := p.parseExpr()
				p.expect(SEMI)
				init = &ExprStmt{X: e, Pos: pos}
			}
		} else {
			p.expect(SEMI)
		}
		var cond Expr
		if !p.at(SEMI) {
			cond = p.parseExpr()
		}
		p.expect(SEMI)
		var post Expr
		if !p.at(RPAREN) {
			post = p.parseExpr()
		}
		p.expect(RPAREN)
		body := p.parseStmt()
		if isForall {
			return &ForallStmt{Init: init, Cond: cond, Post: post, Body: body, Pos: pos}
		}
		return &ForStmt{Init: init, Cond: cond, Post: post, Body: body, Pos: pos}
	case KwSwitch:
		return p.parseSwitch()
	case KwBreak:
		pos := p.next().Pos
		p.expect(SEMI)
		return &BreakStmt{Pos: pos}
	case KwContinue:
		pos := p.next().Pos
		p.expect(SEMI)
		return &ContinueStmt{Pos: pos}
	case KwReturn:
		pos := p.next().Pos
		var x Expr
		if !p.at(SEMI) {
			x = p.parseExpr()
		}
		p.expect(SEMI)
		return &ReturnStmt{X: x, Pos: pos}
	case KwGoto:
		pos := p.next().Pos
		lbl := p.expect(IDENT).Text
		p.expect(SEMI)
		return &GotoStmt{Label: lbl, Pos: pos}
	case SEMI:
		pos := p.next().Pos
		return &Block{Pos: pos}
	case KwShared:
		return p.parseDeclStmt()
	case IDENT:
		if p.peek().Kind == COLON {
			pos := p.cur().Pos
			lbl := p.next().Text
			p.next() // colon
			return &LabeledStmt{Label: lbl, Stmt: p.parseStmt(), Pos: pos}
		}
		if p.typeSpecStart() {
			return p.parseDeclStmt()
		}
	case KwInt, KwDouble, KwChar, KwVoid, KwStruct:
		return p.parseDeclStmt()
	}
	pos := p.cur().Pos
	e := p.parseExpr()
	p.expect(SEMI)
	return &ExprStmt{X: e, Pos: pos}
}

// parseDeclStmt parses a declaration statement; multiple declarators are
// split into a Block of DeclStmts.
func (p *Parser) parseDeclStmt() Stmt {
	shared := p.accept(KwShared)
	base := p.parseTypeSpec()
	var decls []Stmt
	for {
		t, name, pos := p.parseDeclarator(base)
		var init Expr
		if p.accept(ASSIGN) {
			init = p.parseExpr()
		}
		decls = append(decls, &DeclStmt{Decl: &VarDecl{
			Name: name, Type: t, Shared: shared, Init: init, Pos: pos,
		}})
		if !p.accept(COMMA) {
			break
		}
	}
	p.expect(SEMI)
	if len(decls) == 1 {
		return decls[0]
	}
	return &Block{Stmts: decls}
}

func (p *Parser) parseSwitch() Stmt {
	pos := p.expect(KwSwitch).Pos
	p.expect(LPAREN)
	tag := p.parseExpr()
	p.expect(RPAREN)
	p.expect(LBRACE)
	sw := &SwitchStmt{Tag: tag, Pos: pos}
	for !p.at(RBRACE) && !p.at(EOF) {
		cc := &CaseClause{Pos: p.cur().Pos}
		switch {
		case p.accept(KwCase):
			cc.Vals = append(cc.Vals, p.parseExpr())
			p.expect(COLON)
			for p.accept(KwCase) {
				cc.Vals = append(cc.Vals, p.parseExpr())
				p.expect(COLON)
			}
		case p.accept(KwDefault):
			p.expect(COLON)
		default:
			p.errorf("expected case or default, found %s", p.cur())
			panic(bailout{})
		}
		for !p.at(KwCase) && !p.at(KwDefault) && !p.at(RBRACE) && !p.at(EOF) {
			s := p.parseStmtRecover()
			// In this dialect every case implicitly breaks; a trailing
			// break statement is accepted and dropped.
			if _, isBreak := s.(*BreakStmt); isBreak {
				continue
			}
			cc.Body = append(cc.Body, s)
		}
		sw.Cases = append(sw.Cases, cc)
	}
	p.expect(RBRACE)
	return sw
}

// ------------------------------------------------------------ expressions ---

func (p *Parser) parseExpr() Expr { return p.parseAssign() }

func (p *Parser) parseAssign() Expr {
	p.enter()
	defer p.leave()
	lhs := p.parseTernary()
	switch p.cur().Kind {
	case ASSIGN:
		pos := p.next().Pos
		return &Assign{Op: PlainAssign, Lhs: lhs, Rhs: p.parseAssign(), Pos: pos}
	case ADDEQ:
		pos := p.next().Pos
		return &Assign{Op: Add, Lhs: lhs, Rhs: p.parseAssign(), Pos: pos}
	case SUBEQ:
		pos := p.next().Pos
		return &Assign{Op: Sub, Lhs: lhs, Rhs: p.parseAssign(), Pos: pos}
	case MULEQ:
		pos := p.next().Pos
		return &Assign{Op: Mul, Lhs: lhs, Rhs: p.parseAssign(), Pos: pos}
	case DIVEQ:
		pos := p.next().Pos
		return &Assign{Op: Div, Lhs: lhs, Rhs: p.parseAssign(), Pos: pos}
	}
	return lhs
}

func (p *Parser) parseTernary() Expr {
	p.enter()
	defer p.leave()
	c := p.parseBinary(0)
	if p.at(QUESTION) {
		pos := p.next().Pos
		t := p.parseAssign()
		p.expect(COLON)
		f := p.parseTernary()
		return &CondExpr{C: c, T: t, F: f, Pos: pos}
	}
	return c
}

// binPrec returns the precedence of the binary operator starting at the
// current token, or -1. Higher binds tighter.
func binPrec(k Kind) (BinOp, int) {
	switch k {
	case STAR:
		return Mul, 10
	case SLASH:
		return Div, 10
	case PERCENT:
		return Rem, 10
	case PLUS:
		return Add, 9
	case MINUS:
		return Sub, 9
	case SHL:
		return Shl, 8
	case SHR:
		return Shr, 8
	case LT:
		return Lt, 7
	case GT:
		return Gt, 7
	case LE:
		return Le, 7
	case GE:
		return Ge, 7
	case EQ:
		return Eq, 6
	case NE:
		return Ne, 6
	case AMP:
		return And, 5
	case CARET:
		return Xor, 4
	case PIPE:
		return Or, 3
	case LAND:
		return LogAnd, 2
	case LOR:
		return LogOr, 1
	}
	return 0, -1
}

func (p *Parser) parseBinary(minPrec int) Expr {
	lhs := p.parseUnary()
	for {
		op, prec := binPrec(p.cur().Kind)
		if prec < minPrec || prec == -1 {
			return lhs
		}
		pos := p.next().Pos
		rhs := p.parseBinary(prec + 1)
		lhs = &Binary{Op: op, X: lhs, Y: rhs, Pos: pos}
	}
}

// parseUnary carries the depth guard: every unbounded expression recursion
// (unary chains, parenthesized primaries, call arguments, index expressions)
// passes through here before descending further.
func (p *Parser) parseUnary() Expr {
	p.enter()
	defer p.leave()
	switch p.cur().Kind {
	case MINUS:
		pos := p.next().Pos
		return &Unary{Op: Neg, X: p.parseUnary(), Pos: pos}
	case NOT:
		pos := p.next().Pos
		return &Unary{Op: LNot, X: p.parseUnary(), Pos: pos}
	case TILDE:
		pos := p.next().Pos
		return &Unary{Op: BNot, X: p.parseUnary(), Pos: pos}
	case STAR:
		pos := p.next().Pos
		return &Unary{Op: Deref, X: p.parseUnary(), Pos: pos}
	case AMP:
		pos := p.next().Pos
		return &Unary{Op: Addr, X: p.parseUnary(), Pos: pos}
	case INC, DEC:
		decr := p.cur().Kind == DEC
		pos := p.next().Pos
		return &IncDec{X: p.parseUnary(), Decr: decr, Prefix: true, Pos: pos}
	case KwSizeof:
		pos := p.next().Pos
		p.expect(LPAREN)
		t := p.parseTypeSpec()
		for p.at(STAR) {
			p.next()
			t = &PtrType{Elem: t}
		}
		p.expect(RPAREN)
		return &SizeofExpr{T: t, Pos: pos}
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() Expr {
	x := p.parsePrimary()
	for {
		switch p.cur().Kind {
		case ARROW:
			pos := p.next().Pos
			name := p.expect(IDENT).Text
			x = &Member{X: x, Name: name, Arrow: true, Pos: pos}
		case DOT:
			pos := p.next().Pos
			name := p.expect(IDENT).Text
			x = &Member{X: x, Name: name, Arrow: false, Pos: pos}
		case LBRACK:
			pos := p.next().Pos
			i := p.parseExpr()
			p.expect(RBRACK)
			x = &Index{X: x, I: i, Pos: pos}
		case INC, DEC:
			decr := p.cur().Kind == DEC
			pos := p.next().Pos
			x = &IncDec{X: x, Decr: decr, Prefix: false, Pos: pos}
		case LPAREN:
			id, ok := x.(*Ident)
			if !ok {
				p.errorf("calls through expressions are not supported")
				panic(bailout{})
			}
			pos := p.next().Pos
			call := &Call{Fun: id.Name, Pos: pos}
			if !p.at(RPAREN) {
				for {
					call.Args = append(call.Args, p.parseAssign())
					if !p.accept(COMMA) {
						break
					}
				}
			}
			p.expect(RPAREN)
			if p.at(AT) {
				call.Place = p.parsePlacement()
			}
			x = call
		default:
			return x
		}
	}
}

func (p *Parser) parsePlacement() *Placement {
	p.expect(AT)
	name := p.expect(IDENT).Text
	switch name {
	case "OWNER_OF":
		p.expect(LPAREN)
		arg := p.parseExpr()
		p.expect(RPAREN)
		return &Placement{Kind: PlaceOwnerOf, Arg: arg}
	case "ON":
		p.expect(LPAREN)
		arg := p.parseExpr()
		p.expect(RPAREN)
		return &Placement{Kind: PlaceOn, Arg: arg}
	case "HOME":
		return &Placement{Kind: PlaceHome}
	}
	p.errorf("unknown placement @%s (want OWNER_OF, ON, or HOME)", name)
	panic(bailout{})
}

func (p *Parser) parsePrimary() Expr {
	t := p.cur()
	switch t.Kind {
	case INT:
		p.next()
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			p.errorf("bad integer literal %q", t.Text)
		}
		return &IntLit{Val: v, Pos: t.Pos}
	case FLOAT:
		p.next()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			p.errorf("bad float literal %q", t.Text)
		}
		return &FloatLit{Val: v, Pos: t.Pos}
	case CHAR:
		p.next()
		return &CharLit{Val: t.Text[0], Pos: t.Pos}
	case STRING:
		p.next()
		return &StringLit{Val: t.Text, Pos: t.Pos}
	case KwNull:
		p.next()
		return &NullLit{Pos: t.Pos}
	case IDENT:
		p.next()
		return &Ident{Name: t.Text, Pos: t.Pos}
	case LPAREN:
		p.next()
		e := p.parseExpr()
		p.expect(RPAREN)
		return e
	}
	p.errorf("expected expression, found %s", t)
	panic(bailout{})
}
