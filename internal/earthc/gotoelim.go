package earthc

import "fmt"

// Goto elimination in the style of Erosa & Hendren, "Taming Control Flow"
// (ICCL 1994), specialized to the patterns that occur in practice in C
// benchmarks: a goto may target a label declared in the same statement
// sequence or in any enclosing statement sequence (jumping outward through
// if/while/do/for bodies). The transformation introduces a flag variable per
// goto, converts the goto to a flag assignment, guards the statements it
// must skip, breaks out of intervening loops, and turns backward jumps into
// do/while loops.
//
// Gotos that jump *into* a structure (inward), across parallel constructs,
// or into switch cases are rejected with an error; the Olden benchmarks and
// EARTH-C programs we target never need them.

// EliminateGotos rewrites fn.Body so it contains no GotoStmt or LabeledStmt
// nodes. It returns an error for unsupported goto patterns.
func EliminateGotos(fn *FuncDef) error {
	ge := &gotoElim{fn: fn}
	for {
		g := findGoto(fn.Body)
		if g == nil {
			break
		}
		if err := ge.eliminate(g); err != nil {
			return err
		}
		ge.n++
		if ge.n > 1000 {
			return fmt.Errorf("%s: goto elimination did not converge", fn.Name)
		}
	}
	stripLabels(fn.Body)
	return nil
}

type gotoElim struct {
	fn *FuncDef
	n  int
}

// pathStep records one step of the ownership chain from the function body
// down to a goto: the block and the index of the child statement on the
// chain.
type pathStep struct {
	block *Block
	index int
}

// gotoSite describes a located goto: the chain of blocks containing it and
// the goto node itself.
type gotoSite struct {
	path []pathStep // outermost first; path[len-1].block directly contains the goto-bearing stmt
	g    *GotoStmt
}

// findGoto locates the first goto in the body, returning its block chain.
// Only chains through Block, If, While, Do, For bodies are recorded; a goto
// under ParSeq/Forall/Switch yields a path that eliminate() will reject.
func findGoto(body *Block) *gotoSite {
	var walk func(b *Block, prefix []pathStep) *gotoSite
	var inStmt func(s Stmt, prefix []pathStep) *gotoSite

	inStmt = func(s Stmt, prefix []pathStep) *gotoSite {
		switch st := s.(type) {
		case *GotoStmt:
			return &gotoSite{path: prefix, g: st}
		case *LabeledStmt:
			return inStmt(st.Stmt, prefix)
		case *Block:
			return walk(st, prefix)
		case *IfStmt:
			if r := inStmt(st.Then, prefix); r != nil {
				return r
			}
			if st.Else != nil {
				return inStmt(st.Else, prefix)
			}
		case *WhileStmt:
			return inStmt(st.Body, prefix)
		case *DoStmt:
			return inStmt(st.Body, prefix)
		case *ForStmt:
			return inStmt(st.Body, prefix)
		case *ForallStmt:
			return inStmt(st.Body, prefix)
		case *ParSeq:
			for _, c := range st.Stmts {
				if r := inStmt(c, prefix); r != nil {
					return r
				}
			}
		case *SwitchStmt:
			for _, cc := range st.Cases {
				for _, c := range cc.Body {
					if r := inStmt(c, prefix); r != nil {
						return r
					}
				}
			}
		}
		return nil
	}

	walk = func(b *Block, prefix []pathStep) *gotoSite {
		for i, s := range b.Stmts {
			step := append(append([]pathStep(nil), prefix...), pathStep{b, i})
			if r := inStmt(s, step); r != nil {
				return r
			}
		}
		return nil
	}
	return walk(body, nil)
}

// labelIndex finds a label declared directly in block b (possibly nested
// under further LabeledStmts), returning its index or -1.
func labelIndex(b *Block, label string) int {
	for i, s := range b.Stmts {
		for {
			ls, ok := s.(*LabeledStmt)
			if !ok {
				break
			}
			if ls.Label == label {
				return i
			}
			s = ls.Stmt
		}
	}
	return -1
}

// containsGoto reports whether the subtree still references g.
func containsGoto(s Stmt, g *GotoStmt) bool {
	found := false
	var walk func(Stmt)
	walk = func(s Stmt) {
		if found || s == nil {
			return
		}
		switch st := s.(type) {
		case *GotoStmt:
			if st == g {
				found = true
			}
		case *LabeledStmt:
			walk(st.Stmt)
		case *Block:
			for _, c := range st.Stmts {
				walk(c)
			}
		case *ParSeq:
			for _, c := range st.Stmts {
				walk(c)
			}
		case *IfStmt:
			walk(st.Then)
			walk(st.Else)
		case *WhileStmt:
			walk(st.Body)
		case *DoStmt:
			walk(st.Body)
		case *ForStmt:
			walk(st.Body)
		case *ForallStmt:
			walk(st.Body)
		case *SwitchStmt:
			for _, cc := range st.Cases {
				for _, c := range cc.Body {
					walk(c)
				}
			}
		}
	}
	walk(s)
	return found
}

// replaceGoto substitutes the goto node with a replacement statement,
// in place. Reports whether the substitution happened.
func replaceGoto(s Stmt, g *GotoStmt, repl Stmt) bool {
	switch st := s.(type) {
	case *LabeledStmt:
		if st.Stmt == Stmt(g) {
			st.Stmt = repl
			return true
		}
		return replaceGoto(st.Stmt, g, repl)
	case *Block:
		for i, c := range st.Stmts {
			if c == Stmt(g) {
				st.Stmts[i] = repl
				return true
			}
			if replaceGoto(c, g, repl) {
				return true
			}
		}
	case *ParSeq:
		for i, c := range st.Stmts {
			if c == Stmt(g) {
				st.Stmts[i] = repl
				return true
			}
			if replaceGoto(c, g, repl) {
				return true
			}
		}
	case *IfStmt:
		if st.Then == Stmt(g) {
			st.Then = repl
			return true
		}
		if replaceGoto(st.Then, g, repl) {
			return true
		}
		if st.Else == Stmt(g) {
			st.Else = repl
			return true
		}
		if st.Else != nil {
			return replaceGoto(st.Else, g, repl)
		}
	case *WhileStmt:
		if st.Body == Stmt(g) {
			st.Body = repl
			return true
		}
		return replaceGoto(st.Body, g, repl)
	case *DoStmt:
		if st.Body == Stmt(g) {
			st.Body = repl
			return true
		}
		return replaceGoto(st.Body, g, repl)
	case *ForStmt:
		if st.Body == Stmt(g) {
			st.Body = repl
			return true
		}
		return replaceGoto(st.Body, g, repl)
	case *ForallStmt:
		if st.Body == Stmt(g) {
			st.Body = repl
			return true
		}
		return replaceGoto(st.Body, g, repl)
	case *SwitchStmt:
		for _, cc := range st.Cases {
			for i, c := range cc.Body {
				if c == Stmt(g) {
					cc.Body[i] = repl
					return true
				}
				if replaceGoto(c, g, repl) {
					return true
				}
			}
		}
	}
	return false
}

func flagRef(name string) *Ident { return &Ident{Name: name} }

func setFlag(name string, v int64) Stmt {
	return &ExprStmt{X: &Assign{Op: PlainAssign, Lhs: flagRef(name), Rhs: &IntLit{Val: v}}}
}

func notFlag(name string) Expr {
	return &Binary{Op: Eq, X: flagRef(name), Y: &IntLit{Val: 0}}
}

func flagSet(name string) Expr {
	return &Binary{Op: Ne, X: flagRef(name), Y: &IntLit{Val: 0}}
}

// eliminate removes a single goto. The label must be declared in one of the
// blocks along the goto's ownership chain (outward jump) or in the same
// block (same-level jump).
func (ge *gotoElim) eliminate(site *gotoSite) error {
	label := site.g.Label
	// Locate the target block: the innermost block on the chain declaring
	// the label.
	targetDepth := -1
	targetIdx := -1
	for d := len(site.path) - 1; d >= 0; d-- {
		if i := labelIndex(site.path[d].block, label); i >= 0 {
			targetDepth = d
			targetIdx = i
			break
		}
	}
	if targetDepth == -1 {
		return fmt.Errorf("%s: unsupported goto %s: label not found in an enclosing statement sequence (inward jumps are not supported)", ge.fn.Name, label)
	}
	// Check the chain between goto and target crosses only supported
	// constructs (if/loops/blocks). We detect unsupported crossings by
	// inspecting the actual child statement at each step.
	for d := targetDepth; d < len(site.path); d++ {
		step := site.path[d]
		child := step.block.Stmts[step.index]
		if err := checkCrossable(child, site.g); err != nil {
			return fmt.Errorf("%s: goto %s: %v", ge.fn.Name, label, err)
		}
	}

	flag := fmt.Sprintf("goto_%s_%d", label, ge.n)
	// Declare the flag at the top of the function body.
	decl := &DeclStmt{Decl: &VarDecl{Name: flag, Type: &PrimType{Kind: Int}, Init: &IntLit{Val: 0}}}
	ge.fn.Body.Stmts = append([]Stmt{decl}, ge.fn.Body.Stmts...)
	// The declaration shifts indices in the outermost block if it is on the
	// chain.
	for d := range site.path {
		if site.path[d].block == ge.fn.Body {
			site.path[d].index++
		}
	}
	if targetDepth >= 0 && site.path[targetDepth].block == ge.fn.Body {
		// targetIdx also shifts (labelIndex computed before insert).
		targetIdx++
	}

	// Replace the goto itself with flag = 1.
	if !replaceGoto(ge.fn.Body, site.g, setFlag(flag, 1)) {
		return fmt.Errorf("%s: internal error: goto %s not found for replacement", ge.fn.Name, label)
	}

	// Propagate outward: at each level from innermost containing block up to
	// (but excluding) the target block, guard the trailing statements and
	// break out of loops.
	for d := len(site.path) - 1; d > targetDepth; d-- {
		step := site.path[d]
		guardTail(step.block, step.index, flag)
		// If the child at the next-outer level is a loop, arrange to leave it.
		outer := site.path[d-1]
		child := outer.block.Stmts[outer.index]
		switch child.(type) {
		case *WhileStmt, *DoStmt, *ForStmt, *ForallStmt:
			insertLoopExit(child, flag)
		}
	}

	// Same-level handling in the target block.
	tb := site.path[targetDepth].block
	gi := site.path[targetDepth].index
	if targetIdx > gi {
		// Forward jump: guard statements between the goto carrier and the
		// label, then clear the flag at the label.
		for i := gi + 1; i < targetIdx; i++ {
			tb.Stmts[i] = &IfStmt{Cond: notFlag(flag), Then: ensureBlock(tb.Stmts[i])}
		}
		tb.Stmts = insertStmt(tb.Stmts, targetIdx, setFlag(flag, 0))
	} else {
		// Backward jump: wrap [label .. goto carrier] in do { flag=0; ... }
		// while (flag).
		span := append([]Stmt{setFlag(flag, 0)}, tb.Stmts[targetIdx:gi+1]...)
		loop := &DoStmt{Body: &Block{Stmts: span}, Cond: flagSet(flag)}
		rest := append([]Stmt{}, tb.Stmts[gi+1:]...)
		tb.Stmts = append(tb.Stmts[:targetIdx], append([]Stmt{Stmt(loop)}, rest...)...)
	}
	return nil
}

// checkCrossable verifies the goto does not sit under a construct we cannot
// jump out of (parallel sequence, forall, switch).
func checkCrossable(s Stmt, g *GotoStmt) error {
	switch st := s.(type) {
	case *ParSeq:
		if containsGoto(st, g) {
			return fmt.Errorf("goto crossing a parallel sequence is not supported")
		}
	case *ForallStmt:
		if containsGoto(st.Body, g) {
			return fmt.Errorf("goto leaving a forall loop is not supported")
		}
	case *SwitchStmt:
		if containsGoto(st, g) {
			return fmt.Errorf("goto leaving a switch is not supported")
		}
	}
	return nil
}

// guardTail wraps the statements after index i of block b in if (!flag).
func guardTail(b *Block, i int, flag string) {
	if i+1 >= len(b.Stmts) {
		return
	}
	tail := &Block{Stmts: append([]Stmt{}, b.Stmts[i+1:]...)}
	b.Stmts = append(b.Stmts[:i+1], &IfStmt{Cond: notFlag(flag), Then: tail})
}

// insertLoopExit makes the loop terminate once the flag is set, by
// conjoining "&& flag == 0" into the loop condition. (Break statements have
// already been desugared by the time goto elimination runs, so the loop
// cannot be exited with a break node here.)
func insertLoopExit(loop Stmt, flag string) {
	switch l := loop.(type) {
	case *WhileStmt:
		l.Cond = &Binary{Op: LogAnd, X: l.Cond, Y: notFlag(flag)}
	case *DoStmt:
		l.Cond = &Binary{Op: LogAnd, X: l.Cond, Y: notFlag(flag)}
	case *ForStmt:
		cond := l.Cond
		if cond == nil {
			cond = &IntLit{Val: 1}
		}
		l.Cond = &Binary{Op: LogAnd, X: cond, Y: notFlag(flag)}
	}
}

func ensureBlock(s Stmt) *Block {
	if b, ok := s.(*Block); ok {
		return b
	}
	return &Block{Stmts: []Stmt{s}}
}

func insertStmt(ss []Stmt, i int, s Stmt) []Stmt {
	out := make([]Stmt, 0, len(ss)+1)
	out = append(out, ss[:i]...)
	out = append(out, s)
	out = append(out, ss[i:]...)
	return out
}

// stripLabels removes all remaining LabeledStmt wrappers (their gotos are
// gone).
func stripLabels(s Stmt) {
	switch st := s.(type) {
	case *Block:
		for i, c := range st.Stmts {
			for {
				ls, ok := c.(*LabeledStmt)
				if !ok {
					break
				}
				c = ls.Stmt
				st.Stmts[i] = c
			}
			stripLabels(st.Stmts[i])
		}
	case *ParSeq:
		for i, c := range st.Stmts {
			for {
				ls, ok := c.(*LabeledStmt)
				if !ok {
					break
				}
				c = ls.Stmt
				st.Stmts[i] = c
			}
			stripLabels(st.Stmts[i])
		}
	case *IfStmt:
		if ls, ok := st.Then.(*LabeledStmt); ok {
			st.Then = ls.Stmt
		}
		stripLabels(st.Then)
		if st.Else != nil {
			if ls, ok := st.Else.(*LabeledStmt); ok {
				st.Else = ls.Stmt
			}
			stripLabels(st.Else)
		}
	case *WhileStmt:
		if ls, ok := st.Body.(*LabeledStmt); ok {
			st.Body = ls.Stmt
		}
		stripLabels(st.Body)
	case *DoStmt:
		if ls, ok := st.Body.(*LabeledStmt); ok {
			st.Body = ls.Stmt
		}
		stripLabels(st.Body)
	case *ForStmt:
		if ls, ok := st.Body.(*LabeledStmt); ok {
			st.Body = ls.Stmt
		}
		stripLabels(st.Body)
	case *ForallStmt:
		if ls, ok := st.Body.(*LabeledStmt); ok {
			st.Body = ls.Stmt
		}
		stripLabels(st.Body)
	case *SwitchStmt:
		for _, cc := range st.Cases {
			for i, c := range cc.Body {
				for {
					ls, ok := c.(*LabeledStmt)
					if !ok {
						break
					}
					c = ls.Stmt
					cc.Body[i] = c
				}
				stripLabels(cc.Body[i])
			}
		}
	}
}
