package earthc

import (
	"fmt"
	"strconv"
	"strings"
)

// Print renders a File back to EARTH-C-like source. The output is not
// byte-identical to the input but is stable, making it useful for golden
// tests and dumps.
func Print(f *File) string {
	var b strings.Builder
	for _, s := range f.Structs {
		fmt.Fprintf(&b, "struct %s {\n", s.Name)
		for _, fl := range s.Fields {
			fmt.Fprintf(&b, "\t%s;\n", declString(fl.Type, fl.Name))
		}
		b.WriteString("};\n")
	}
	for _, g := range f.Globals {
		if g.Shared {
			b.WriteString("shared ")
		}
		b.WriteString(declString(g.Type, g.Name))
		if g.Init != nil {
			b.WriteString(" = ")
			b.WriteString(ExprString(g.Init))
		}
		b.WriteString(";\n")
	}
	for _, fn := range f.Funcs {
		params := make([]string, len(fn.Params))
		for i, pr := range fn.Params {
			params[i] = declString(pr.Type, pr.Name)
		}
		fmt.Fprintf(&b, "%s %s(%s)\n", fn.Ret, fn.Name, strings.Join(params, ", "))
		printStmt(&b, fn.Body, 0)
	}
	return b.String()
}

// SigString renders a function's signature (return type, name, parameter
// types and names) in the same canonical form Print uses. Cache keys hash
// it: a function's compiled form depends on the signatures — not the
// bodies — of the functions it calls.
func SigString(fn *FuncDef) string {
	params := make([]string, len(fn.Params))
	for i, pr := range fn.Params {
		params[i] = declString(pr.Type, pr.Name)
	}
	return fmt.Sprintf("%s %s(%s)", fn.Ret, fn.Name, strings.Join(params, ", "))
}

// FuncString renders one function definition (signature plus body) in
// Print's canonical form. The rendering is deterministic and independent of
// the rest of the file, which makes it the per-function content-hash input
// for the compile cache.
func FuncString(fn *FuncDef) string {
	var b strings.Builder
	b.WriteString(SigString(fn))
	b.WriteString("\n")
	printStmt(&b, fn.Body, 0)
	return b.String()
}

// DeclsString renders a file's struct and global declarations (everything
// except function definitions) in Print's canonical form. The compile cache
// hashes it as the shared environment every function compiles against.
func DeclsString(f *File) string {
	var b strings.Builder
	for _, s := range f.Structs {
		fmt.Fprintf(&b, "struct %s {\n", s.Name)
		for _, fl := range s.Fields {
			fmt.Fprintf(&b, "\t%s;\n", declString(fl.Type, fl.Name))
		}
		b.WriteString("};\n")
	}
	for _, g := range f.Globals {
		if g.Shared {
			b.WriteString("shared ")
		}
		b.WriteString(declString(g.Type, g.Name))
		if g.Init != nil {
			b.WriteString(" = ")
			b.WriteString(ExprString(g.Init))
		}
		b.WriteString(";\n")
	}
	return b.String()
}

// declString renders "type name" in C declarator style.
func declString(t Type, name string) string {
	switch tt := t.(type) {
	case *PtrType:
		q := "*"
		if tt.Local {
			q = "local *"
		}
		return declString(tt.Elem, q+name)
	case *ArrayType:
		return declString(tt.Elem, name+"["+strconv.Itoa(tt.Len)+"]")
	default:
		return t.String() + " " + name
	}
}

// StmtString renders a single statement.
func StmtString(s Stmt) string {
	var b strings.Builder
	printStmt(&b, s, 0)
	return b.String()
}

func indent(b *strings.Builder, n int) {
	for i := 0; i < n; i++ {
		b.WriteString("\t")
	}
}

func printStmt(b *strings.Builder, s Stmt, depth int) {
	switch st := s.(type) {
	case *DeclStmt:
		indent(b, depth)
		if st.Decl.Shared {
			b.WriteString("shared ")
		}
		b.WriteString(declString(st.Decl.Type, st.Decl.Name))
		if st.Decl.Init != nil {
			b.WriteString(" = ")
			b.WriteString(ExprString(st.Decl.Init))
		}
		b.WriteString(";\n")
	case *ExprStmt:
		indent(b, depth)
		b.WriteString(ExprString(st.X))
		b.WriteString(";\n")
	case *Block:
		indent(b, depth)
		b.WriteString("{\n")
		for _, c := range st.Stmts {
			printStmt(b, c, depth+1)
		}
		indent(b, depth)
		b.WriteString("}\n")
	case *ParSeq:
		indent(b, depth)
		b.WriteString("{^\n")
		for _, c := range st.Stmts {
			printStmt(b, c, depth+1)
		}
		indent(b, depth)
		b.WriteString("^}\n")
	case *IfStmt:
		indent(b, depth)
		fmt.Fprintf(b, "if (%s)\n", ExprString(st.Cond))
		printStmt(b, st.Then, depth+1)
		if st.Else != nil {
			indent(b, depth)
			b.WriteString("else\n")
			printStmt(b, st.Else, depth+1)
		}
	case *WhileStmt:
		indent(b, depth)
		fmt.Fprintf(b, "while (%s)\n", ExprString(st.Cond))
		printStmt(b, st.Body, depth+1)
	case *DoStmt:
		indent(b, depth)
		b.WriteString("do\n")
		printStmt(b, st.Body, depth+1)
		indent(b, depth)
		fmt.Fprintf(b, "while (%s);\n", ExprString(st.Cond))
	case *ForStmt:
		indent(b, depth)
		fmt.Fprintf(b, "for (%s; %s; %s)\n",
			forInitString(st.Init), optExprString(st.Cond), optExprString(st.Post))
		printStmt(b, st.Body, depth+1)
	case *ForallStmt:
		indent(b, depth)
		fmt.Fprintf(b, "forall (%s; %s; %s)\n",
			forInitString(st.Init), optExprString(st.Cond), optExprString(st.Post))
		printStmt(b, st.Body, depth+1)
	case *SwitchStmt:
		indent(b, depth)
		fmt.Fprintf(b, "switch (%s) {\n", ExprString(st.Tag))
		for _, cc := range st.Cases {
			indent(b, depth)
			if cc.Vals == nil {
				b.WriteString("default:\n")
			} else {
				for _, v := range cc.Vals {
					fmt.Fprintf(b, "case %s:\n", ExprString(v))
				}
			}
			for _, c := range cc.Body {
				printStmt(b, c, depth+1)
			}
		}
		indent(b, depth)
		b.WriteString("}\n")
	case *BreakStmt:
		indent(b, depth)
		b.WriteString("break;\n")
	case *ContinueStmt:
		indent(b, depth)
		b.WriteString("continue;\n")
	case *ReturnStmt:
		indent(b, depth)
		if st.X == nil {
			b.WriteString("return;\n")
		} else {
			fmt.Fprintf(b, "return %s;\n", ExprString(st.X))
		}
	case *GotoStmt:
		indent(b, depth)
		fmt.Fprintf(b, "goto %s;\n", st.Label)
	case *LabeledStmt:
		indent(b, depth)
		fmt.Fprintf(b, "%s:\n", st.Label)
		printStmt(b, st.Stmt, depth)
	default:
		indent(b, depth)
		fmt.Fprintf(b, "/* ?stmt %T */\n", s)
	}
}

func forInitString(s Stmt) string {
	switch st := s.(type) {
	case nil:
		return ""
	case *ExprStmt:
		return ExprString(st.X)
	case *DeclStmt:
		out := declString(st.Decl.Type, st.Decl.Name)
		if st.Decl.Init != nil {
			out += " = " + ExprString(st.Decl.Init)
		}
		return out
	}
	return "?"
}

func optExprString(e Expr) string {
	if e == nil {
		return ""
	}
	return ExprString(e)
}

// ExprString renders an expression with minimal but unambiguous parentheses.
func ExprString(e Expr) string {
	switch x := e.(type) {
	case *IntLit:
		return strconv.FormatInt(x.Val, 10)
	case *FloatLit:
		return strconv.FormatFloat(x.Val, 'g', -1, 64)
	case *CharLit:
		return "'" + string(x.Val) + "'"
	case *StringLit:
		return strconv.Quote(x.Val)
	case *NullLit:
		return "NULL"
	case *Ident:
		return x.Name
	case *Unary:
		return x.Op.String() + parenUnless(x.X, isLeaf(x.X))
	case *Binary:
		return parenUnless(x.X, isLeaf(x.X)) + " " + x.Op.String() + " " +
			parenUnless(x.Y, isLeaf(x.Y))
	case *Assign:
		op := "="
		if x.Op != PlainAssign {
			op = x.Op.String() + "="
		}
		return ExprString(x.Lhs) + " " + op + " " + ExprString(x.Rhs)
	case *IncDec:
		op := "++"
		if x.Decr {
			op = "--"
		}
		if x.Prefix {
			return op + ExprString(x.X)
		}
		return ExprString(x.X) + op
	case *Call:
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = ExprString(a)
		}
		out := x.Fun + "(" + strings.Join(args, ", ") + ")"
		if x.Place != nil {
			switch x.Place.Kind {
			case PlaceOwnerOf:
				out += "@OWNER_OF(" + ExprString(x.Place.Arg) + ")"
			case PlaceOn:
				out += "@ON(" + ExprString(x.Place.Arg) + ")"
			case PlaceHome:
				out += "@HOME"
			}
		}
		return out
	case *Member:
		sep := "."
		if x.Arrow {
			sep = "->"
		}
		return parenUnless(x.X, isLeaf(x.X)) + sep + x.Name
	case *Index:
		return parenUnless(x.X, isLeaf(x.X)) + "[" + ExprString(x.I) + "]"
	case *SizeofExpr:
		return "sizeof(" + x.T.String() + ")"
	case *CondExpr:
		return parenUnless(x.C, isLeaf(x.C)) + " ? " + ExprString(x.T) + " : " + ExprString(x.F)
	}
	return fmt.Sprintf("?expr(%T)", e)
}

func isLeaf(e Expr) bool {
	switch e.(type) {
	case *IntLit, *FloatLit, *CharLit, *StringLit, *NullLit, *Ident,
		*Call, *Member, *Index, *SizeofExpr, *IncDec:
		return true
	}
	return false
}

func parenUnless(e Expr, leaf bool) string {
	s := ExprString(e)
	if leaf {
		return s
	}
	return "(" + s + ")"
}
