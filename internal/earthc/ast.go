package earthc

// This file defines the abstract syntax tree for the EARTH-C dialect. The
// tree is deliberately close to C: the interesting extensions are forall
// loops, parallel sequences, shared/local qualifiers, and call placement
// annotations (@OWNER_OF(p), @ON(e), @HOME).

// File is a parsed translation unit.
type File struct {
	Name    string // source name, for diagnostics
	Structs []*StructDef
	Globals []*VarDecl
	Funcs   []*FuncDef
}

// StructByName returns the struct definition with the given name, or nil.
func (f *File) StructByName(name string) *StructDef {
	for _, s := range f.Structs {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// FuncByName returns the function definition with the given name, or nil.
func (f *File) FuncByName(name string) *FuncDef {
	for _, fn := range f.Funcs {
		if fn.Name == name {
			return fn
		}
	}
	return nil
}

// ---------------------------------------------------------------- types ---

// Type is the interface implemented by all type nodes.
type Type interface {
	typeNode()
	String() string
}

// Prim is the kind of a primitive type.
type Prim int

// Primitive type kinds.
const (
	Void Prim = iota
	Int
	Double
	Char
)

func (p Prim) String() string {
	switch p {
	case Void:
		return "void"
	case Int:
		return "int"
	case Double:
		return "double"
	case Char:
		return "char"
	}
	return "?prim"
}

// PrimType is a primitive type: void, int, double, or char.
type PrimType struct{ Kind Prim }

func (*PrimType) typeNode()        {}
func (t *PrimType) String() string { return t.Kind.String() }

// StructRef names a struct type. The definition is resolved by sema.
type StructRef struct{ Name string }

func (*StructRef) typeNode()        {}
func (t *StructRef) String() string { return "struct " + t.Name }

// PtrType is a pointer type. Local marks an EARTH-C "local" pointer: the
// compiler may assume the pointee resides in the local memory of the
// executing node, so dereferences are not remote operations.
type PtrType struct {
	Elem  Type
	Local bool
}

func (*PtrType) typeNode() {}
func (t *PtrType) String() string {
	if t.Local {
		return t.Elem.String() + " local *"
	}
	return t.Elem.String() + " *"
}

// ArrayType is a fixed-length array. Arrays are always stack/local storage
// in this dialect; distributed data uses pointer structures.
type ArrayType struct {
	Elem Type
	Len  int
}

func (*ArrayType) typeNode() {}
func (t *ArrayType) String() string {
	return t.Elem.String() + "[]"
}

// SameType reports structural equality of two types, ignoring the Local
// qualifier on pointers.
func SameType(a, b Type) bool {
	switch x := a.(type) {
	case *PrimType:
		y, ok := b.(*PrimType)
		return ok && x.Kind == y.Kind
	case *StructRef:
		y, ok := b.(*StructRef)
		return ok && x.Name == y.Name
	case *PtrType:
		y, ok := b.(*PtrType)
		return ok && SameType(x.Elem, y.Elem)
	case *ArrayType:
		y, ok := b.(*ArrayType)
		return ok && x.Len == y.Len && SameType(x.Elem, y.Elem)
	}
	return false
}

// ----------------------------------------------------------- definitions ---

// Field is a single struct field.
type Field struct {
	Name string
	Type Type
	Pos  Pos
}

// StructDef is a struct type definition. The tag name doubles as a plain
// type name (the parser auto-typedefs struct tags).
type StructDef struct {
	Name   string
	Fields []*Field
	Pos    Pos
}

// FieldByName returns the field with the given name, or nil.
func (s *StructDef) FieldByName(name string) *Field {
	for _, f := range s.Fields {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Param is a function parameter.
type Param struct {
	Name string
	Type Type
	Pos  Pos
}

// FuncDef is a function definition.
type FuncDef struct {
	Name   string
	Ret    Type
	Params []*Param
	Body   *Block
	Pos    Pos
}

// VarDecl is a variable declaration, either at file scope or as a statement.
type VarDecl struct {
	Name   string
	Type   Type
	Shared bool // declared with the shared qualifier
	Init   Expr // optional initializer
	Pos    Pos
}

// ------------------------------------------------------------ statements ---

// Stmt is the interface implemented by all statement nodes.
type Stmt interface{ stmtNode() }

// DeclStmt wraps a variable declaration in statement position.
type DeclStmt struct{ Decl *VarDecl }

// ExprStmt is an expression evaluated for its side effects.
type ExprStmt struct {
	X   Expr
	Pos Pos
}

// Block is a brace-delimited statement sequence.
type Block struct {
	Stmts []Stmt
	Pos   Pos
}

// ParSeq is an EARTH-C parallel statement sequence {^ s1; s2; ... ^}: the
// component statements may execute concurrently and must not interfere
// except through shared variables.
type ParSeq struct {
	Stmts []Stmt
	Pos   Pos
}

// IfStmt is if/else.
type IfStmt struct {
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
	Pos  Pos
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond Expr
	Body Stmt
	Pos  Pos
}

// DoStmt is a do/while loop.
type DoStmt struct {
	Body Stmt
	Cond Expr
	Pos  Pos
}

// ForStmt is a C for loop. Init may be a DeclStmt or ExprStmt (or nil).
type ForStmt struct {
	Init Stmt
	Cond Expr // may be nil
	Post Expr // may be nil
	Body Stmt
	Pos  Pos
}

// ForallStmt is an EARTH-C parallel loop: iterations may run concurrently
// and must not carry dependences on ordinary variables.
type ForallStmt struct {
	Init Stmt
	Cond Expr
	Post Expr
	Body Stmt
	Pos  Pos
}

// CaseClause is one case (or default, when Vals is nil) of a switch.
type CaseClause struct {
	Vals []Expr // nil for default
	Body []Stmt
	Pos  Pos
}

// SwitchStmt is a C switch. Each case body is implicitly terminated (no
// fallthrough in this dialect); break is accepted and ignored at case end.
type SwitchStmt struct {
	Tag   Expr
	Cases []*CaseClause
	Pos   Pos
}

// BreakStmt breaks the innermost loop or switch.
type BreakStmt struct{ Pos Pos }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ Pos Pos }

// ReturnStmt returns from the enclosing function.
type ReturnStmt struct {
	X   Expr // may be nil
	Pos Pos
}

// GotoStmt transfers control to a label. Goto is eliminated before lowering
// to SIMPLE (see gotoelim.go).
type GotoStmt struct {
	Label string
	Pos   Pos
}

// LabeledStmt attaches a label to a statement.
type LabeledStmt struct {
	Label string
	Stmt  Stmt
	Pos   Pos
}

func (*DeclStmt) stmtNode()     {}
func (*ExprStmt) stmtNode()     {}
func (*Block) stmtNode()        {}
func (*ParSeq) stmtNode()       {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*DoStmt) stmtNode()       {}
func (*ForStmt) stmtNode()      {}
func (*ForallStmt) stmtNode()   {}
func (*SwitchStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*ReturnStmt) stmtNode()   {}
func (*GotoStmt) stmtNode()     {}
func (*LabeledStmt) stmtNode()  {}

// ----------------------------------------------------------- expressions ---

// Expr is the interface implemented by all expression nodes.
type Expr interface{ exprNode() }

// IntLit is an integer literal.
type IntLit struct {
	Val int64
	Pos Pos
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	Val float64
	Pos Pos
}

// CharLit is a character literal (value of the single character).
type CharLit struct {
	Val byte
	Pos Pos
}

// StringLit is a string literal; only valid as an argument to print
// intrinsics.
type StringLit struct {
	Val string
	Pos Pos
}

// NullLit is the NULL pointer constant.
type NullLit struct{ Pos Pos }

// Ident is a variable or function reference.
type Ident struct {
	Name string
	Pos  Pos
}

// UnOp is a unary operator.
type UnOp int

// Unary operators.
const (
	Neg   UnOp = iota // -x
	LNot              // !x
	BNot              // ~x
	Deref             // *p
	Addr              // &x
)

func (op UnOp) String() string {
	return [...]string{"-", "!", "~", "*", "&"}[op]
}

// Unary is a unary operation.
type Unary struct {
	Op  UnOp
	X   Expr
	Pos Pos
}

// BinOp is a binary operator.
type BinOp int

// Binary operators.
const (
	Add BinOp = iota
	Sub
	Mul
	Div
	Rem
	And
	Or
	Xor
	Shl
	Shr
	Lt
	Gt
	Le
	Ge
	Eq
	Ne
	LogAnd
	LogOr
)

func (op BinOp) String() string {
	return [...]string{"+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>",
		"<", ">", "<=", ">=", "==", "!=", "&&", "||"}[op]
}

// Binary is a binary operation.
type Binary struct {
	Op   BinOp
	X, Y Expr
	Pos  Pos
}

// Assign is an assignment; Op is the compound operator (Add for +=, etc.)
// or -1 for plain assignment.
type Assign struct {
	Op  BinOp // -1 for plain =
	Lhs Expr
	Rhs Expr
	Pos Pos
}

// PlainAssign is the Op value of a simple (non-compound) assignment.
const PlainAssign BinOp = -1

// IncDec is ++ or -- in prefix or postfix position.
type IncDec struct {
	X      Expr
	Decr   bool
	Prefix bool
	Pos    Pos
}

// PlaceKind distinguishes EARTH-C call placement annotations.
type PlaceKind int

// Call placement kinds.
const (
	PlaceNone    PlaceKind = iota
	PlaceOwnerOf           // f(...)@OWNER_OF(p): run at the node owning *p
	PlaceOn                // f(...)@ON(e): run at node e
	PlaceHome              // f(...)@HOME: run where the enclosing function began
)

// Placement is a call placement annotation.
type Placement struct {
	Kind PlaceKind
	Arg  Expr // pointer for OwnerOf, node id for On, nil for Home
}

// Call is a function call, possibly with a placement annotation.
type Call struct {
	Fun   string
	Args  []Expr
	Place *Placement // nil for ordinary local-node calls
	Pos   Pos
}

// Member is field access: X.Name or X->Name (Arrow).
type Member struct {
	X     Expr
	Name  string
	Arrow bool
	Pos   Pos
}

// Index is array indexing X[I].
type Index struct {
	X, I Expr
	Pos  Pos
}

// SizeofExpr is sizeof(type), in words (see sema for layout).
type SizeofExpr struct {
	T   Type
	Pos Pos
}

// CondExpr is the ternary operator c ? t : f.
type CondExpr struct {
	C, T, F Expr
	Pos     Pos
}

func (*IntLit) exprNode()     {}
func (*FloatLit) exprNode()   {}
func (*CharLit) exprNode()    {}
func (*StringLit) exprNode()  {}
func (*NullLit) exprNode()    {}
func (*Ident) exprNode()      {}
func (*Unary) exprNode()      {}
func (*Binary) exprNode()     {}
func (*Assign) exprNode()     {}
func (*IncDec) exprNode()     {}
func (*Call) exprNode()       {}
func (*Member) exprNode()     {}
func (*Index) exprNode()      {}
func (*SizeofExpr) exprNode() {}
func (*CondExpr) exprNode()   {}
