package earthc

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *File {
	t.Helper()
	f, err := ParseFile("test.ec", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f
}

func TestParseStruct(t *testing.T) {
	f := mustParse(t, `
struct Node {
	int value;
	double weight;
	struct Node *next;
	Node *prev;
};
`)
	s := f.StructByName("Node")
	if s == nil {
		t.Fatal("struct Node not found")
	}
	if len(s.Fields) != 4 {
		t.Fatalf("want 4 fields, got %d", len(s.Fields))
	}
	if _, ok := s.Fields[2].Type.(*PtrType); !ok {
		t.Errorf("next should be a pointer, got %v", s.Fields[2].Type)
	}
	// The tag is auto-typedef'd: "Node *prev" works.
	if _, ok := s.Fields[3].Type.(*PtrType); !ok {
		t.Errorf("prev should be a pointer, got %v", s.Fields[3].Type)
	}
}

func TestParseFunctionAndParams(t *testing.T) {
	f := mustParse(t, `
struct T { int a; };
int add(int x, double y, T *p, T local *q) { return x; }
`)
	fn := f.FuncByName("add")
	if fn == nil {
		t.Fatal("function add not found")
	}
	if len(fn.Params) != 4 {
		t.Fatalf("want 4 params, got %d", len(fn.Params))
	}
	pt, ok := fn.Params[3].Type.(*PtrType)
	if !ok || !pt.Local {
		t.Errorf("q should be a local pointer, got %v", fn.Params[3].Type)
	}
	pt2 := fn.Params[2].Type.(*PtrType)
	if pt2.Local {
		t.Errorf("p should not be local")
	}
}

func TestParsePrecedence(t *testing.T) {
	f := mustParse(t, `int main() { int x; x = 1 + 2 * 3; return x; }`)
	body := f.FuncByName("main").Body
	// x = 1 + (2 * 3)
	es := body.Stmts[1].(*ExprStmt)
	as := es.X.(*Assign)
	add := as.Rhs.(*Binary)
	if add.Op != Add {
		t.Fatalf("top op should be +, got %v", add.Op)
	}
	mul := add.Y.(*Binary)
	if mul.Op != Mul {
		t.Fatalf("rhs of + should be *, got %v", mul.Op)
	}
}

func TestParseComparisonPrecedence(t *testing.T) {
	f := mustParse(t, `int main() { int x; if (x % 10 < 3 && x != 0) x = 1; return 0; }`)
	ifs := f.FuncByName("main").Body.Stmts[1].(*IfStmt)
	and := ifs.Cond.(*Binary)
	if and.Op != LogAnd {
		t.Fatalf("top should be &&, got %v", and.Op)
	}
	lt := and.X.(*Binary)
	if lt.Op != Lt {
		t.Fatalf("left of && should be <, got %v", lt.Op)
	}
	if rem := lt.X.(*Binary); rem.Op != Rem {
		t.Fatalf("left of < should be %%, got %v", rem.Op)
	}
}

func TestParsePlacement(t *testing.T) {
	f := mustParse(t, `
struct T { int a; };
int g(T *p) { return 0; }
int main() {
	T *p;
	int a;
	int b;
	int c;
	a = g(p)@OWNER_OF(p);
	b = g(p)@ON(3);
	c = g(p)@HOME;
	return a + b + c;
}
`)
	stmts := f.FuncByName("main").Body.Stmts
	get := func(i int) *Call {
		return stmts[i].(*ExprStmt).X.(*Assign).Rhs.(*Call)
	}
	if get(4).Place.Kind != PlaceOwnerOf {
		t.Error("first call should be @OWNER_OF")
	}
	if get(5).Place.Kind != PlaceOn {
		t.Error("second call should be @ON")
	}
	if get(6).Place.Kind != PlaceHome {
		t.Error("third call should be @HOME")
	}
}

func TestParseParSeqAndForall(t *testing.T) {
	f := mustParse(t, `
int main() {
	int a;
	int b;
	int i;
	{^
		a = 1;
		b = 2;
	^}
	forall (i = 0; i < 10; i++) {
		a = 3;
	}
	return a + b;
}
`)
	stmts := f.FuncByName("main").Body.Stmts
	ps, ok := stmts[3].(*ParSeq)
	if !ok {
		t.Fatalf("expected ParSeq, got %T", stmts[3])
	}
	if len(ps.Stmts) != 2 {
		t.Errorf("want 2 arms, got %d", len(ps.Stmts))
	}
	if _, ok := stmts[4].(*ForallStmt); !ok {
		t.Fatalf("expected ForallStmt, got %T", stmts[4])
	}
}

func TestParseSwitch(t *testing.T) {
	f := mustParse(t, `
int pick(int k) {
	int r;
	switch (k) {
	case 0: r = 10;
	case 1:
	case 2: r = 20;
	default: r = 0;
	}
	return r;
}
`)
	sw := f.FuncByName("pick").Body.Stmts[1].(*SwitchStmt)
	if len(sw.Cases) != 3 {
		t.Fatalf("want 3 case clauses, got %d", len(sw.Cases))
	}
	if len(sw.Cases[1].Vals) != 2 {
		t.Errorf("second clause should cover 2 values, got %d", len(sw.Cases[1].Vals))
	}
	if sw.Cases[2].Vals != nil {
		t.Errorf("third clause should be default")
	}
}

func TestParseDoWhileAndFor(t *testing.T) {
	f := mustParse(t, `
int main() {
	int i;
	int s;
	s = 0;
	do { s = s + 1; } while (s < 5);
	for (i = 0; i < 3; i++) s = s + i;
	return s;
}
`)
	stmts := f.FuncByName("main").Body.Stmts
	if _, ok := stmts[3].(*DoStmt); !ok {
		t.Errorf("expected do-while, got %T", stmts[3])
	}
	if _, ok := stmts[4].(*ForStmt); !ok {
		t.Errorf("expected for, got %T", stmts[4])
	}
}

func TestParseMemberChains(t *testing.T) {
	f := mustParse(t, `
struct H { int fp; };
struct V { struct H hosp; struct V *next; };
int get(V *v) { return v->hosp.fp + v->next->hosp.fp; }
`)
	ret := f.FuncByName("get").Body.Stmts[0].(*ReturnStmt)
	add := ret.X.(*Binary)
	m1 := add.X.(*Member) // v->hosp.fp
	if m1.Arrow || m1.Name != "fp" {
		t.Errorf("outer member should be .fp, got arrow=%v name=%s", m1.Arrow, m1.Name)
	}
	inner := m1.X.(*Member)
	if !inner.Arrow || inner.Name != "hosp" {
		t.Errorf("inner should be ->hosp")
	}
}

func TestParseErrorRecovery(t *testing.T) {
	_, err := ParseFile("bad.ec", `
int main() {
	int x = ;
	x = 1;
	return x;
}
int ok() { return 2; }
`)
	if err == nil {
		t.Fatal("expected a syntax error")
	}
	if !strings.Contains(err.Error(), "expected expression") {
		t.Errorf("error should mention the expression: %v", err)
	}
}

func TestParseErrorUnknownPlacement(t *testing.T) {
	_, err := ParseFile("bad.ec", `int f() { return 0; } int main() { int x; x = f()@SOMEWHERE; return x; }`)
	if err == nil || !strings.Contains(err.Error(), "placement") {
		t.Errorf("expected a placement error, got %v", err)
	}
}

func TestParseSharedDecl(t *testing.T) {
	f := mustParse(t, `int main() { shared int count; writeto(&count, 0); return valueof(&count); }`)
	ds := f.FuncByName("main").Body.Stmts[0].(*DeclStmt)
	if !ds.Decl.Shared {
		t.Error("count should be shared")
	}
}

func TestParseArrayDecl(t *testing.T) {
	f := mustParse(t, `int main() { int buf[8]; buf[3] = 7; return buf[3]; }`)
	ds := f.FuncByName("main").Body.Stmts[0].(*DeclStmt)
	at, ok := ds.Decl.Type.(*ArrayType)
	if !ok || at.Len != 8 {
		t.Fatalf("want int[8], got %v", ds.Decl.Type)
	}
}

func TestParseTernaryAndUnary(t *testing.T) {
	f := mustParse(t, `int main() { int x; int y; x = 5; y = x > 0 ? -x : ~x; return !y; }`)
	es := f.FuncByName("main").Body.Stmts[3].(*ExprStmt)
	cond := es.X.(*Assign).Rhs.(*CondExpr)
	if u := cond.T.(*Unary); u.Op != Neg {
		t.Errorf("then branch should be -x")
	}
	if u := cond.F.(*Unary); u.Op != BNot {
		t.Errorf("else branch should be ~x")
	}
}

// TestPrintRoundTrip: printing a parsed file and reparsing it yields the
// same printed form (a fixpoint after one round).
func TestPrintRoundTrip(t *testing.T) {
	src := `
struct Point {
	double x;
	double y;
	struct Point *next;
};
int count(Point *head) {
	int n;
	Point *p;
	n = 0;
	p = head;
	while (p != NULL) {
		n = n + 1;
		p = p->next;
	}
	return n;
}
int main() {
	Point *p;
	p = alloc(Point);
	p->x = 1.5;
	p->next = NULL;
	return count(p);
}
`
	f1 := mustParse(t, src)
	printed1 := Print(f1)
	f2 := mustParse(t, printed1)
	printed2 := Print(f2)
	if printed1 != printed2 {
		t.Errorf("print not a fixpoint:\n--- first:\n%s\n--- second:\n%s", printed1, printed2)
	}
}

func TestParseGotoAndLabel(t *testing.T) {
	f := mustParse(t, `
int main() {
	int x;
	x = 0;
	goto skip;
	x = 99;
skip:
	x = x + 1;
	return x;
}
`)
	stmts := f.FuncByName("main").Body.Stmts
	if _, ok := stmts[2].(*GotoStmt); !ok {
		t.Errorf("expected goto, got %T", stmts[2])
	}
	ls, ok := stmts[4].(*LabeledStmt)
	if !ok || ls.Label != "skip" {
		t.Errorf("expected labeled stmt, got %T", stmts[4])
	}
}
