package earthc

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzParse asserts the parser's total-function contract: any byte string
// either parses or returns an error — no panics, no hangs. Seeds come from
// the malformed corpus plus the repo's example programs so the fuzzer starts
// from both sides of the grammar.
func FuzzParse(f *testing.F) {
	for _, dir := range []string{
		filepath.Join("testdata", "malformed"),
		filepath.Join("..", "..", "testdata"),
	} {
		files, _ := filepath.Glob(filepath.Join(dir, "*.ec"))
		for _, path := range files {
			if src, err := os.ReadFile(path); err == nil {
				f.Add(string(src))
			}
		}
	}
	f.Add("int main() { return 1 + 2; }")
	f.Add("struct s { int x; }; int main() { struct s *p; return p->x; }")
	f.Fuzz(func(t *testing.T, src string) {
		file, err := ParseFile("fuzz.ec", src)
		if err == nil && file == nil {
			t.Fatal("nil file with nil error")
		}
	})
}
