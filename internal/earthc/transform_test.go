package earthc

import (
	"strings"
	"testing"
)

// pipeline runs desugaring and goto elimination on a parsed function.
func restructure(t *testing.T, src string) *File {
	t.Helper()
	f, err := ParseFile("t.ec", src)
	if err != nil {
		t.Fatal(err)
	}
	for _, fn := range f.Funcs {
		if err := DesugarLoops(fn); err != nil {
			t.Fatal(err)
		}
		if err := EliminateGotos(fn); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

func assertNoGotos(t *testing.T, f *File) {
	t.Helper()
	for _, fn := range f.Funcs {
		if hasGotos(fn.Body) {
			t.Errorf("%s still contains gotos/labels:\n%s", fn.Name, Print(f))
		}
	}
}

func TestGotoForwardSameLevel(t *testing.T) {
	f := restructure(t, `
int main() {
	int x;
	x = 0;
	goto skip;
	x = 99;
skip:
	x = x + 1;
	return x;
}
`)
	assertNoGotos(t, f)
	out := Print(f)
	// The skipped statement must be guarded.
	if !strings.Contains(out, "if (") {
		t.Errorf("expected a guard:\n%s", out)
	}
}

func TestGotoBackwardSameLevel(t *testing.T) {
	f := restructure(t, `
int main() {
	int x;
	x = 0;
top:
	x = x + 1;
	if (x < 5) goto top;
	return x;
}
`)
	assertNoGotos(t, f)
	if !strings.Contains(Print(f), "do") {
		t.Errorf("backward goto should produce a do loop:\n%s", Print(f))
	}
}

func TestGotoOutOfLoop(t *testing.T) {
	f := restructure(t, `
int main() {
	int i;
	int x;
	x = 0;
	for (i = 0; i < 10; i++) {
		x = x + i;
		if (x > 5) goto out;
		x = x + 100;
	}
out:
	return x;
}
`)
	assertNoGotos(t, f)
}

func TestGotoInwardRejected(t *testing.T) {
	f, err := ParseFile("t.ec", `
int main() {
	int x;
	goto inside;
	if (x) {
inside:
		x = 1;
	}
	return x;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := EliminateGotos(f.FuncByName("main")); err == nil {
		t.Error("inward goto should be rejected")
	}
}

func TestBreakContinueDesugar(t *testing.T) {
	f := restructure(t, `
int main() {
	int i;
	int s;
	s = 0;
	for (i = 0; i < 100; i++) {
		if (i == 7) continue;
		if (i > 20) break;
		s = s + i;
	}
	return s;
}
`)
	assertNoGotos(t, f)
	out := Print(f)
	if strings.Contains(out, "break") || strings.Contains(out, "continue") {
		t.Errorf("break/continue survived desugaring:\n%s", out)
	}
}

func TestBreakInForallRejected(t *testing.T) {
	f, err := ParseFile("t.ec", `
int main() {
	int i;
	forall (i = 0; i < 4; i++) {
		if (i == 2) break;
	}
	return 0;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := DesugarLoops(f.FuncByName("main")); err == nil {
		t.Error("break inside forall should be rejected")
	}
}

func TestBreakOutsideLoopRejected(t *testing.T) {
	f, err := ParseFile("t.ec", `int main() { break; return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	if err := DesugarLoops(f.FuncByName("main")); err == nil {
		t.Error("break outside a loop should be rejected")
	}
}

// ------------------------------------------------------------- inlining ---

func TestInlineSimpleCall(t *testing.T) {
	f, err := ParseFile("t.ec", `
int twice(int v) { return v + v; }
int main() {
	int x;
	x = twice(21);
	return x;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	InlineFunctions(f, InlineOptions{})
	out := Print(f)
	if strings.Contains(out, "twice(21)") {
		t.Errorf("call should be inlined:\n%s", out)
	}
}

func TestInlineSubstitutesReadOnlyPointer(t *testing.T) {
	f, err := ParseFile("t.ec", `
struct P { double x; double y; };
double getx(P *p) { return p->x; }
double main2(P *q) {
	return getx(q);
}
`)
	if err != nil {
		t.Fatal(err)
	}
	InlineFunctions(f, InlineOptions{})
	out := Print(f)
	// The inlined body must access q directly (no __arg copy), so the
	// optimizer can merge accesses on one base pointer.
	if strings.Contains(out, "__arg") {
		t.Errorf("read-only pointer arg should be substituted:\n%s", out)
	}
	if !strings.Contains(out, "q->x") {
		t.Errorf("inlined body should read q->x:\n%s", out)
	}
}

func TestInlineSkipsRecursion(t *testing.T) {
	f, err := ParseFile("t.ec", `
int fact(int n) {
	if (n <= 1) return 1;
	return n * fact(n - 1);
}
int main() { return fact(5); }
`)
	if err != nil {
		t.Fatal(err)
	}
	InlineFunctions(f, InlineOptions{})
	if !strings.Contains(Print(f), "fact(5)") {
		t.Error("recursive function must not be inlined")
	}
}

func TestInlineSkipsMutualRecursion(t *testing.T) {
	f, err := ParseFile("t.ec", `
int odd(int n);
int even(int n) { if (n == 0) return 1; return odd(n - 1); }
int odd(int n) { if (n == 0) return 0; return even(n - 1); }
int main() { return even(4); }
`)
	// The dialect has no prototypes; restate without forward decl.
	_ = f
	f2, err := ParseFile("t.ec", `
int even(int n) { if (n == 0) return 1; return 1 - even(n - 1); }
int main() { return even(4); }
`)
	if err != nil {
		t.Fatal(err)
	}
	InlineFunctions(f2, InlineOptions{})
	if !strings.Contains(Print(f2), "even(") {
		t.Error("self-recursive even() must not be inlined")
	}
}

func TestInlineSkipsPlacedCalls(t *testing.T) {
	f, err := ParseFile("t.ec", `
struct P { int v; };
int get(P *p) { return p->v; }
int main() {
	P *p;
	int x;
	p = alloc(P);
	x = get(p)@OWNER_OF(p);
	return x;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	InlineFunctions(f, InlineOptions{})
	if !strings.Contains(Print(f), "@OWNER_OF") {
		t.Error("placed call must not be inlined")
	}
}

func TestInlineConditionExtraction(t *testing.T) {
	f, err := ParseFile("t.ec", `
int pos(int v) { if (v > 0) return 1; return 0; }
int main() {
	int x;
	x = 5;
	if (pos(x) == 1) x = 10;
	return x;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	InlineFunctions(f, InlineOptions{})
	out := Print(f)
	if strings.Contains(out, "pos(x)") {
		t.Errorf("call in if condition should be extracted and inlined:\n%s", out)
	}
}

func TestInlineDoesNotExtractShortCircuit(t *testing.T) {
	f, err := ParseFile("t.ec", `
int oracle(int v) { return v * 2; }
int main() {
	int x;
	x = 1;
	if (x != 0 && oracle(x) > 1) x = 3;
	return x;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	InlineFunctions(f, InlineOptions{})
	if !strings.Contains(Print(f), "oracle(x)") {
		t.Error("call under && must stay in place (conditional evaluation)")
	}
}

func TestInlineSkipsSwitchReturns(t *testing.T) {
	f, err := ParseFile("t.ec", `
int sel(int k) {
	switch (k) {
	case 0: return 10;
	default: return 20;
	}
}
int main() { return sel(1); }
`)
	if err != nil {
		t.Fatal(err)
	}
	InlineFunctions(f, InlineOptions{})
	if !strings.Contains(Print(f), "sel(1)") {
		t.Error("function with returns inside switch must not be inlined")
	}
}

// TestCloneIndependence: mutating a clone must not affect the original.
func TestCloneIndependence(t *testing.T) {
	f, err := ParseFile("t.ec", `int main() { int x; x = 1 + 2; return x; }`)
	if err != nil {
		t.Fatal(err)
	}
	orig := f.FuncByName("main").Body
	clone := CloneStmt(orig, map[string]string{"x": "y"}).(*Block)
	before := Print(f)
	clone.Stmts[0].(*DeclStmt).Decl.Name = "zzz"
	if Print(f) != before {
		t.Error("mutating the clone changed the original")
	}
	// Renaming applied.
	var b strings.Builder
	printStmt(&b, clone, 0)
	if !strings.Contains(b.String(), "y = 1 + 2") && !strings.Contains(b.String(), "y = 1 + 2") {
		t.Logf("clone: %s", b.String())
	}
}
