package earthc

import (
	"strings"
	"testing"
	"testing/quick"
)

func kinds(toks []Token) []Kind {
	out := make([]Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasicTokens(t *testing.T) {
	toks, errs := Tokenize(`int x = 42; double y = 3.5;`)
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	want := []Kind{KwInt, IDENT, ASSIGN, INT, SEMI, KwDouble, IDENT, ASSIGN, FLOAT, SEMI, EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestLexOperators(t *testing.T) {
	cases := map[string]Kind{
		"+": PLUS, "-": MINUS, "*": STAR, "/": SLASH, "%": PERCENT,
		"==": EQ, "!=": NE, "<": LT, "<=": LE, ">": GT, ">=": GE,
		"&&": LAND, "||": LOR, "&": AMP, "|": PIPE, "^": CARET,
		"<<": SHL, ">>": SHR, "->": ARROW, "++": INC, "--": DEC,
		"+=": ADDEQ, "-=": SUBEQ, "*=": MULEQ, "/=": DIVEQ,
		"=": ASSIGN, "!": NOT, "~": TILDE, "?": QUESTION, ":": COLON,
		"@": AT, ".": DOT,
	}
	for src, want := range cases {
		toks, errs := Tokenize(src)
		if len(errs) != 0 {
			t.Errorf("%q: errors %v", src, errs)
			continue
		}
		if toks[0].Kind != want {
			t.Errorf("%q: got %v want %v", src, toks[0].Kind, want)
		}
	}
}

func TestLexParSeqBrackets(t *testing.T) {
	toks, errs := Tokenize(`{^ x = 1; ^}`)
	if len(errs) != 0 {
		t.Fatal(errs)
	}
	if toks[0].Kind != LPARSEQ {
		t.Errorf("expected {^, got %v", toks[0])
	}
	if toks[len(toks)-2].Kind != RPARSEQ {
		t.Errorf("expected ^}, got %v", toks[len(toks)-2])
	}
	// A bare ^ not followed by } is XOR.
	toks, _ = Tokenize(`a ^ b`)
	if toks[1].Kind != CARET {
		t.Errorf("expected ^, got %v", toks[1])
	}
}

func TestLexComments(t *testing.T) {
	toks, errs := Tokenize(`
		// line comment with symbols +-*/
		int /* block
		spanning lines */ x;
	`)
	if len(errs) != 0 {
		t.Fatal(errs)
	}
	want := []Kind{KwInt, IDENT, SEMI, EOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestLexUnterminatedComment(t *testing.T) {
	_, errs := Tokenize(`int x; /* never closed`)
	if len(errs) == 0 {
		t.Error("expected an error for an unterminated block comment")
	}
}

func TestLexNumbers(t *testing.T) {
	cases := []struct {
		src  string
		kind Kind
		text string
	}{
		{"0", INT, "0"},
		{"12345", INT, "12345"},
		{"1.5", FLOAT, "1.5"},
		{"0.001", FLOAT, "0.001"},
		{"1e9", FLOAT, "1e9"},
		{"2.5e-3", FLOAT, "2.5e-3"},
		{"1.0e18", FLOAT, "1.0e18"},
	}
	for _, c := range cases {
		toks, errs := Tokenize(c.src)
		if len(errs) != 0 {
			t.Errorf("%q: %v", c.src, errs)
			continue
		}
		if toks[0].Kind != c.kind || toks[0].Text != c.text {
			t.Errorf("%q: got %v %q", c.src, toks[0].Kind, toks[0].Text)
		}
	}
}

func TestLexCharAndString(t *testing.T) {
	toks, errs := Tokenize(`'a' '\n' "hi\n"`)
	if len(errs) != 0 {
		t.Fatal(errs)
	}
	if toks[0].Kind != CHAR || toks[0].Text != "a" {
		t.Errorf("got %v", toks[0])
	}
	if toks[1].Kind != CHAR || toks[1].Text != "\n" {
		t.Errorf("got %v", toks[1])
	}
	if toks[2].Kind != STRING || toks[2].Text != "hi\n" {
		t.Errorf("got %v", toks[2])
	}
}

func TestLexIllegalChar(t *testing.T) {
	toks, errs := Tokenize("int $x;")
	if len(errs) == 0 {
		t.Error("expected an error for $")
	}
	found := false
	for _, tok := range toks {
		if tok.Kind == ILLEGAL {
			found = true
		}
	}
	if !found {
		t.Error("expected an ILLEGAL token")
	}
}

func TestLexPositions(t *testing.T) {
	toks, _ := Tokenize("int\nx;")
	if toks[0].Pos.Line != 1 || toks[1].Pos.Line != 2 {
		t.Errorf("positions wrong: %v %v", toks[0].Pos, toks[1].Pos)
	}
	if toks[1].Pos.Col != 1 {
		t.Errorf("col wrong: %v", toks[1].Pos)
	}
}

// TestLexNeverPanics: arbitrary input must not panic the lexer and must
// terminate with EOF.
func TestLexNeverPanics(t *testing.T) {
	f := func(src string) bool {
		toks, _ := Tokenize(src)
		return len(toks) > 0 && toks[len(toks)-1].Kind == EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestLexKeywordsRoundTrip: every keyword lexes to its own kind.
func TestLexKeywordsRoundTrip(t *testing.T) {
	for word, kind := range keywords {
		toks, errs := Tokenize(word)
		if len(errs) != 0 || toks[0].Kind != kind {
			t.Errorf("keyword %q: got %v (errs %v)", word, toks[0].Kind, errs)
		}
	}
}

func TestLexAdjacentPunctuation(t *testing.T) {
	toks, errs := Tokenize("a->b->c")
	if len(errs) != 0 {
		t.Fatal(errs)
	}
	want := []Kind{IDENT, ARROW, IDENT, ARROW, IDENT, EOF}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Fatalf("got %v want %v", kinds(toks), want)
		}
	}
}

func TestTokenStringForms(t *testing.T) {
	toks, _ := Tokenize(`x 42 "s"`)
	for _, tok := range toks[:3] {
		if !strings.Contains(tok.String(), tok.Text) {
			t.Errorf("String() %q should mention text %q", tok.String(), tok.Text)
		}
	}
}
