package earthsim_test

// The PR 8 determinism matrix: the sharded event loop must be externally
// indistinguishable from itself at every worker count — not just the
// program-visible result, but the full observability surface (Chrome trace
// export and telemetry series JSON), with the fault layer both off and on.
// The classic sequential loop (SimWorkers=0) is held to the program-visible
// contract only: its event interleaving differs from the sharded engine, so
// timing-derived surfaces legitimately diverge, but Visible() may not.

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/earthsim"
	"repro/internal/metrics"
	"repro/internal/olden"
	"repro/internal/trace"
)

// matrixRun compiles bm at quick size and executes it once, returning the
// result plus the rendered trace and telemetry-series bytes.
func matrixRun(t *testing.T, bm *olden.Benchmark, nodes, workers int, faultSpec string) (*earthsim.Result, string, string) {
	t.Helper()
	rec := trace.NewRecorder(nodes)
	sampler := metrics.NewSampler(50_000, 0)
	p := core.NewPipeline(core.Options{Optimize: true, Trace: rec})
	u, err := p.Compile(bm.Name+".ec", bm.Source(olden.QuickParams(bm)))
	if err != nil {
		t.Fatal(err)
	}
	var faults *earthsim.FaultConfig
	if faultSpec != "" {
		faults, err = earthsim.ParseFaultSpec(faultSpec)
		if err != nil {
			t.Fatal(err)
		}
	}
	res, err := p.Run(u, core.RunConfig{
		Nodes: nodes, SimWorkers: workers, Faults: faults, Sampler: sampler,
	})
	if err != nil {
		t.Fatalf("%s nodes=%d workers=%d faults=%q: %v", bm.Name, nodes, workers, faultSpec, err)
	}
	var tr, se bytes.Buffer
	if err := rec.WriteChrome(&tr); err != nil {
		t.Fatal(err)
	}
	if err := sampler.WriteSeriesJSON(&se); err != nil {
		t.Fatal(err)
	}
	return res, tr.String(), se.String()
}

// TestShardedEquivalenceMatrix sweeps {Olden benchmark} x {faults off/on} x
// {SimWorkers 1, 2, 8} and asserts byte-identical Visible(), trace export,
// and series JSON, plus Visible() agreement with the SimWorkers=0 loop.
func TestShardedEquivalenceMatrix(t *testing.T) {
	const nodes = 4
	for _, bm := range append(olden.All(), olden.Halo()) {
		for _, faultSpec := range []string{"", "drop=0.01,dup=0.005,stall=0.02,delay=2,seed=11"} {
			name := bm.Name
			if faultSpec != "" {
				name += "/faults"
			}
			bm, faultSpec := bm, faultSpec
			t.Run(name, func(t *testing.T) {
				legacy, _, _ := matrixRun(t, bm, nodes, 0, faultSpec)
				ref, refTrace, refSeries := matrixRun(t, bm, nodes, 1, faultSpec)
				if ref.Visible() != legacy.Visible() {
					t.Errorf("sharded Visible diverges from sequential loop:\n--- workers=1 ---\n%s\n--- workers=0 ---\n%s",
						ref.Visible(), legacy.Visible())
				}
				for _, w := range []int{2, 8} {
					res, tr, se := matrixRun(t, bm, nodes, w, faultSpec)
					if res.Visible() != ref.Visible() {
						t.Errorf("workers=%d Visible diverges:\n%s\nvs workers=1:\n%s", w, res.Visible(), ref.Visible())
					}
					if res.Time != ref.Time || res.Counts != ref.Counts || res.Events != ref.Events {
						t.Errorf("workers=%d timing/counts diverge: time %d vs %d, events %d vs %d",
							w, res.Time, ref.Time, res.Events, ref.Events)
					}
					if tr != refTrace {
						t.Errorf("workers=%d trace export not byte-identical (%d vs %d bytes)", w, len(tr), len(refTrace))
					}
					if se != refSeries {
						t.Errorf("workers=%d series JSON not byte-identical (%d vs %d bytes)", w, len(se), len(refSeries))
					}
				}
			})
		}
	}
}

// TestSharded256Nodes: a quick benchmark on a 256-node machine completes
// under the sharded engine and stays program-visibly equal to the
// sequential loop (the ISSUE's scale acceptance gate).
func TestSharded256Nodes(t *testing.T) {
	bm := olden.ByName("power")
	legacy, _, _ := matrixRun(t, bm, 256, 0, "")
	sharded, _, _ := matrixRun(t, bm, 256, 2, "")
	if sharded.Visible() != legacy.Visible() {
		t.Errorf("256-node Visible diverges:\n--- sharded ---\n%s\n--- sequential ---\n%s",
			sharded.Visible(), legacy.Visible())
	}
}

// ewmaRun executes bm under an aggressive retransmission timeout with the
// chosen RTO policy and returns the fault statistics.
func ewmaRun(t *testing.T, bm *olden.Benchmark, fixed bool) earthsim.FaultStats {
	t.Helper()
	p := core.NewPipeline(core.Options{Optimize: true})
	u, err := p.Compile(bm.Name+".ec", bm.Source(olden.QuickParams(bm)))
	if err != nil {
		t.Fatal(err)
	}
	// No loss, no reordering: every retransmission under this config is
	// spurious by construction. Timeout sits just above the unloaded
	// round-trip, so any queueing pushes the fixed policy into needless
	// retransmits while the EWMA estimator adapts its RTO upward.
	faults := &earthsim.FaultConfig{Timeout: 8_000, MaxRetries: 50, Seed: 1}
	faults.SetFixedRTO(fixed)
	res, err := p.Run(u, core.RunConfig{Nodes: 4, Faults: faults})
	if err != nil {
		t.Fatalf("%s fixed=%v: %v", bm.Name, fixed, err)
	}
	if res.Faults == nil {
		t.Fatalf("%s fixed=%v: no fault stats", bm.Name, fixed)
	}
	return *res.Faults
}

// TestEWMAReducesSpuriousRetransmits: the adaptive srtt/rttvar estimator
// must cut spurious retransmissions versus the historical fixed-timeout
// policy on a real workload (ISSUE satellite: EWMA RTT estimation).
func TestEWMAReducesSpuriousRetransmits(t *testing.T) {
	bm := olden.ByName("power")
	fixed := ewmaRun(t, bm, true)
	ewma := ewmaRun(t, bm, false)
	if fixed.SpuriousRetries == 0 {
		t.Fatalf("fixed-RTO baseline produced no spurious retransmits (stats %+v); timeout too lax for the comparison", fixed)
	}
	if ewma.SpuriousRetries >= fixed.SpuriousRetries {
		t.Errorf("EWMA did not reduce spurious retransmits: ewma=%d fixed=%d",
			ewma.SpuriousRetries, fixed.SpuriousRetries)
	}
	t.Logf("spurious retransmits: fixed=%d ewma=%d (%.1fx reduction)",
		fixed.SpuriousRetries, ewma.SpuriousRetries,
		float64(fixed.SpuriousRetries)/float64(max(ewma.SpuriousRetries, 1)))
}
