package earthsim

import (
	"sort"

	"repro/internal/metrics"
)

// simMetrics is the machine-side accumulator behind SetMetrics: cheap
// cumulative counters bumped from the EU/SU/network hooks, flushed into a
// metrics.SimSample at each sampling boundary. All state is owned by the
// event loop; only the final Sampler.Record crosses goroutines.
type simMetrics struct {
	s        *metrics.Sampler
	interval int64
	next     int64 // next simulated-time sampling boundary
	last     int64 // time of the most recent sample (-1 before the first)

	euBusy []int64 // per-node cumulative EU busy ns
	suBusy []int64 // per-node cumulative SU busy ns
	// suDone[i] is a FIFO of node i's SU completion times. suSched pushes in
	// acceptance order and n.suFree is monotone, so the queue is sorted:
	// the sample drains completions ≤ t from suHead[i] and what remains is
	// exactly the requests accepted but not finished at t — the SU queue
	// depth.
	suDone [][]int64
	suHead []int
	links  map[uint32]*linkAgg
}

// linkAgg accumulates one directed link's traffic (keyed by linkKey).
type linkAgg struct {
	src, dst          int
	busy, msgs, words int64
}

// SetMetrics attaches a time-series sampler to the machine (call before
// Run; nil detaches). Like SetTrace, sampling is purely observational — the
// hooks never alter costs or scheduling — and the hooks are consulted only
// in event-loop order, so for identical seed + spec the recorded series is
// bit-identical run to run. A machine without a sampler pays one nil check
// per instrumentation point and allocates nothing. Returns m for chaining.
func (m *Machine) SetMetrics(s *metrics.Sampler) *Machine {
	if s == nil {
		m.ms = nil
		return m
	}
	n := len(m.nodes)
	m.ms = &simMetrics{
		s:        s,
		interval: s.Interval(),
		next:     s.Interval(),
		last:     -1,
		euBusy:   make([]int64, n),
		suBusy:   make([]int64, n),
		suDone:   make([][]int64, n),
		suHead:   make([]int, n),
		links:    make(map[uint32]*linkAgg),
	}
	return m
}

// suObserve records one SU service interval on a node (hook in suSched).
func (ms *simMetrics) suObserve(nodeID int, busy, done int64) {
	ms.suBusy[nodeID] += busy
	ms.suDone[nodeID] = append(ms.suDone[nodeID], done)
}

// linkObserve records one wire hop on a directed link (hook in netSched).
func (ms *simMetrics) linkObserve(src, dst int, busy, words int64) {
	key := uint32(src)<<16 | uint32(dst)
	la := ms.links[key]
	if la == nil {
		la = &linkAgg{src: src, dst: dst}
		ms.links[key] = la
	}
	la.busy += busy
	la.msgs++
	la.words += words
}

// sampleTick takes every sample due at or before t (hook in the Run loop,
// before each event dispatches).
func (m *Machine) sampleTick(t int64) {
	for m.ms.next <= t {
		m.takeSample(m.ms.next)
		m.ms.next += m.ms.interval
	}
}

// takeSample snapshots the machine into the sampler at simulated time t.
func (m *Machine) takeSample(t int64) {
	ms := m.ms
	sm := metrics.SimSample{
		Time:         t,
		Instructions: m.counts.Instructions,
		RemoteReads:  m.counts.RemoteReads,
		RemoteWrites: m.counts.RemoteWrites,
		BlkMoves:     m.counts.RemoteBlk,
		LiveFibers:   m.liveFibers,
	}
	if m.fstats != nil {
		sm.Retries = m.fstats.Retries
		sm.Drops = m.fstats.Drops
		sm.Dups = m.fstats.Dups
		sm.Stalls = m.fstats.Stalls
	}
	sm.Nodes = make([]metrics.NodeSample, len(m.nodes))
	for i, n := range m.nodes {
		q, h := ms.suDone[i], ms.suHead[i]
		for h < len(q) && q[h] <= t {
			h++
		}
		if h == len(q) {
			q, h = q[:0], 0
			ms.suDone[i] = q
		}
		ms.suHead[i] = h
		sm.Nodes[i] = metrics.NodeSample{
			EUBusyNs: ms.euBusy[i],
			SUBusyNs: ms.suBusy[i],
			SUQueue:  int64(len(q) - h),
			Ready:    int64(n.readyLen()),
		}
	}
	if len(ms.links) > 0 {
		keys := make([]uint32, 0, len(ms.links))
		for k := range ms.links {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		sm.Links = make([]metrics.LinkSample, len(keys))
		for i, k := range keys {
			la := ms.links[k]
			sm.Links[i] = metrics.LinkSample{Src: la.src, Dst: la.dst,
				BusyNs: la.busy, Msgs: la.msgs, Words: la.words}
		}
	}
	ms.last = t
	ms.s.Record(sm)
}
