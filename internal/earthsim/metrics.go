package earthsim

import (
	"sort"

	"repro/internal/metrics"
)

// simMetrics is the shard-side accumulator behind SetMetrics: cheap
// cumulative counters bumped from the EU/SU/network hooks, flushed at each
// sampling boundary. In legacy mode the flush records straight into the
// user's Sampler; in sharded mode it appends a shardSample contribution to
// pend, and the coordinator merges contributions from every shard at the
// next barrier (mergeSamples) — only the final Sampler.Record crosses
// goroutines, at barrier time.
type simMetrics struct {
	s        *metrics.Sampler
	interval int64
	next     int64 // next simulated-time sampling boundary
	last     int64 // time of the most recent sample (-1 before the first)

	// base maps node ids onto the busy arrays: legacy mode covers all
	// nodes (base 0), a sharded loop covers just its own (base = shard id).
	base   int
	euBusy []int64 // per owned node: cumulative EU busy ns
	suBusy []int64 // per owned node: cumulative SU busy ns
	// suDone[i] is a FIFO of node i's SU completion times. suSched pushes in
	// acceptance order and n.suFree is monotone, so the queue is sorted:
	// the sample drains completions ≤ t from suHead[i] and what remains is
	// exactly the requests accepted but not finished at t — the SU queue
	// depth.
	suDone [][]int64
	suHead []int
	links  map[uint32]*linkAgg

	// pend holds boundary contributions not yet merged (sharded mode only;
	// nil in legacy mode, where samples record directly). pendAt is the
	// consumer cursor so the backing array is reused.
	pend   []shardSample
	pendAt int
}

// linkAgg accumulates one directed link's traffic (keyed by linkKey).
type linkAgg struct {
	src, dst          int
	busy, msgs, words int64
}

// shardSample is one shard's cumulative contribution to the machine-wide
// sample at a boundary: counter totals as of that simulated time, plus the
// shard's own node and out-link snapshots.
type shardSample struct {
	time         int64
	instructions int64
	remoteReads  int64
	remoteWrites int64
	blkMoves     int64
	liveFibers   int64
	retries      int64
	spurious     int64
	drops        int64
	dups         int64
	stalls       int64
	node         metrics.NodeSample
	links        []metrics.LinkSample
}

// SetMetrics attaches a time-series sampler to the machine (call before
// Run; nil detaches). Like SetTrace, sampling is purely observational — the
// hooks never alter costs or scheduling — and the hooks are consulted only
// in event-loop order, so for identical seed + spec the recorded series is
// bit-identical run to run. A machine without a sampler pays one nil check
// per instrumentation point and allocates nothing. Returns m for chaining.
func (m *Machine) SetMetrics(s *metrics.Sampler) *Machine {
	m.sampler = s
	if s == nil {
		for _, sh := range m.sh {
			sh.ms = nil
		}
		return m
	}
	m.gNext = s.Interval()
	m.gLast = -1
	for _, sh := range m.sh {
		n, base := len(m.nodes), 0
		if !sh.single {
			n, base = 1, sh.id
		}
		sh.ms = &simMetrics{
			s:        s,
			interval: s.Interval(),
			next:     s.Interval(),
			last:     -1,
			base:     base,
			euBusy:   make([]int64, n),
			suBusy:   make([]int64, n),
			suDone:   make([][]int64, n),
			suHead:   make([]int, n),
			links:    make(map[uint32]*linkAgg),
		}
		if !sh.single {
			sh.ms.pend = make([]shardSample, 0, 4)
		}
	}
	return m
}

// suObserve records one SU service interval on a node (hook in suSched).
func (ms *simMetrics) suObserve(nodeID int, busy, done int64) {
	ms.suBusy[nodeID-ms.base] += busy
	ms.suDone[nodeID-ms.base] = append(ms.suDone[nodeID-ms.base], done)
}

// linkObserve records one wire hop on a directed link (hook in netSched).
func (ms *simMetrics) linkObserve(src, dst int, busy, words int64) {
	key := uint32(src)<<16 | uint32(dst)
	la := ms.links[key]
	if la == nil {
		la = &linkAgg{src: src, dst: dst}
		ms.links[key] = la
	}
	la.busy += busy
	la.msgs++
	la.words += words
}

// sampleTick takes every sample due at or before t (hook in the event loop,
// before each event dispatches, so a sample at boundary B covers exactly the
// events with time < B).
func (m *shard) sampleTick(t int64) {
	for m.ms.next <= t {
		m.takeSample(m.ms.next)
		m.ms.next += m.ms.interval
	}
}

// drainSUQueue advances owned-node slot i's SU completion FIFO past t and
// returns the remaining depth — the SU queue length at time t.
func (ms *simMetrics) drainSUQueue(i int, t int64) int64 {
	q, h := ms.suDone[i], ms.suHead[i]
	for h < len(q) && q[h] <= t {
		h++
	}
	if h == len(q) {
		q, h = q[:0], 0
		ms.suDone[i] = q
	}
	ms.suHead[i] = h
	return int64(len(q) - h)
}

// sortedLinks snapshots the link aggregates in key order.
func (ms *simMetrics) sortedLinks() []metrics.LinkSample {
	if len(ms.links) == 0 {
		return nil
	}
	keys := make([]uint32, 0, len(ms.links))
	for k := range ms.links {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]metrics.LinkSample, len(keys))
	for i, k := range keys {
		la := ms.links[k]
		out[i] = metrics.LinkSample{Src: la.src, Dst: la.dst,
			BusyNs: la.busy, Msgs: la.msgs, Words: la.words}
	}
	return out
}

// takeSample snapshots the shard at simulated time t: straight into the
// sampler in legacy mode, onto the pending-contribution list otherwise.
func (m *shard) takeSample(t int64) {
	ms := m.ms
	if !m.single {
		ss := shardSample{
			time:         t,
			instructions: m.counts.Instructions,
			remoteReads:  m.counts.RemoteReads,
			remoteWrites: m.counts.RemoteWrites,
			blkMoves:     m.counts.RemoteBlk,
			liveFibers:   m.liveFibers,
		}
		if m.fstats != nil {
			ss.retries = m.fstats.Retries
			ss.spurious = m.fstats.SpuriousRetries
			ss.drops = m.fstats.Drops
			ss.dups = m.fstats.Dups
			ss.stalls = m.fstats.Stalls
		}
		n := m.nodes[m.id]
		ss.node = metrics.NodeSample{
			EUBusyNs: ms.euBusy[0],
			SUBusyNs: ms.suBusy[0],
			SUQueue:  ms.drainSUQueue(0, t),
			Ready:    int64(n.readyLen()),
		}
		ss.links = ms.sortedLinks()
		ms.pend = append(ms.pend, ss)
		ms.last = t
		return
	}
	sm := metrics.SimSample{
		Time:         t,
		Instructions: m.counts.Instructions,
		RemoteReads:  m.counts.RemoteReads,
		RemoteWrites: m.counts.RemoteWrites,
		BlkMoves:     m.counts.RemoteBlk,
		LiveFibers:   m.liveFibers,
	}
	if m.fstats != nil {
		sm.Retries = m.fstats.Retries
		sm.Spurious = m.fstats.SpuriousRetries
		sm.Drops = m.fstats.Drops
		sm.Dups = m.fstats.Dups
		sm.Stalls = m.fstats.Stalls
	}
	sm.Nodes = make([]metrics.NodeSample, len(m.nodes))
	for i, n := range m.nodes {
		sm.Nodes[i] = metrics.NodeSample{
			EUBusyNs: ms.euBusy[i],
			SUBusyNs: ms.suBusy[i],
			SUQueue:  ms.drainSUQueue(i, t),
			Ready:    int64(n.readyLen()),
		}
	}
	sm.Links = ms.sortedLinks()
	ms.last = t
	ms.s.Record(sm)
}

// flushTicksTo takes any samples due at boundaries ≤ t that the shard's own
// event flow has not reached (its next event lies beyond them, so its
// cumulative state at those boundaries is exactly the current state).
// Coordinator-side, at barriers.
func (m *shard) flushTicksTo(t int64) {
	for m.ms.next <= t {
		m.takeSample(m.ms.next)
		m.ms.next += m.ms.interval
	}
}

// mergeSamples combines every shard's pending contributions for boundaries
// ≤ horizon into machine-wide samples. Called at barriers with every shard
// stopped and every event below horizon processed, so each shard either
// already flushed a contribution for a boundary or flushes one now from its
// settled state.
func (m *Machine) mergeSamples(horizon int64) {
	for m.gNext <= horizon {
		b := m.gNext
		sm := metrics.SimSample{Time: b, Nodes: make([]metrics.NodeSample, len(m.nodes))}
		for _, sh := range m.sh {
			sh.flushTicksTo(b)
			ss := &sh.ms.pend[sh.ms.pendAt]
			sh.ms.pendAt++
			sm.Instructions += ss.instructions
			sm.RemoteReads += ss.remoteReads
			sm.RemoteWrites += ss.remoteWrites
			sm.BlkMoves += ss.blkMoves
			sm.LiveFibers += ss.liveFibers
			sm.Retries += ss.retries
			sm.Spurious += ss.spurious
			sm.Drops += ss.drops
			sm.Dups += ss.dups
			sm.Stalls += ss.stalls
			sm.Nodes[sh.id] = ss.node
			// Shard i's out-links all carry key src=i, so appending in shard
			// order yields the same key-sorted order the legacy loop emits.
			sm.Links = append(sm.Links, ss.links...)
			if sh.ms.pendAt == len(sh.ms.pend) {
				sh.ms.pend = sh.ms.pend[:0]
				sh.ms.pendAt = 0
			}
		}
		m.gLast = b
		m.sampler.Record(sm)
		m.gNext += m.sampler.Interval()
	}
}
