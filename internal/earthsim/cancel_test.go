package earthsim

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/threaded"
)

// TestCancelLegacy: cancelling the run context stops the sequential event
// loop promptly with ErrCanceled — on a guest that would otherwise loop
// forever in simulated time.
func TestCancelLegacy(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(10*time.Millisecond, cancel)
	m := New(loopProg(), DefaultConfig(1)).SetContext(ctx)
	done := make(chan error, 1)
	go func() {
		_, err := m.Run()
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("want ErrCanceled, got %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not stop after cancellation")
	}
}

// TestCancelSharded: the sharded engine observes cancellation too, both at
// the coordinator barrier and inside shard windows.
func TestCancelSharded(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(10*time.Millisecond, cancel)
	cfg := DefaultConfig(4)
	cfg.SimWorkers = 2
	m := New(loopProg(), cfg).SetContext(ctx)
	if len(m.sh) < 2 {
		t.Fatal("test did not select the sharded engine")
	}
	done := make(chan error, 1)
	go func() {
		_, err := m.Run()
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("want ErrCanceled, got %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("sharded run did not stop after cancellation")
	}
}

// TestCancelAlreadyDone: a context cancelled before Run stops the machine
// on the first check without meaningful work.
func TestCancelAlreadyDone(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := New(loopProg(), DefaultConfig(1)).SetContext(ctx).Run()
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
}

// TestNilContextUnchanged: without SetContext a normal program completes
// exactly as before (the zero-cost guard for the cancellation hooks).
func TestNilContextUnchanged(t *testing.T) {
	prog := &threaded.Program{
		Funcs: map[string]*threaded.FnCode{"main": {Name: "main", NSlots: 1,
			Code: []threaded.Instr{{Op: threaded.OpRet, A: -1}}}},
	}
	prog.Main = prog.Funcs["main"]
	if _, err := New(prog, DefaultConfig(1)).Run(); err != nil {
		t.Fatal(err)
	}
}
