package earthsim

import (
	"math"

	"repro/internal/threaded"
	"repro/internal/trace"
)

// msg is one split-phase message moving through the machine. Instead of a
// chain of heap-allocated closures (one per SU/network hop), a message is a
// single pooled record advanced through numbered lifecycle stages by
// msgAdvance:
//
//	issue:   request queued on the issuing node's SU          (stage 1 next)
//	stage 1: SU done — request crosses the network            (stage 2 next)
//	stage 2: arrived — queued on the serviced node's SU       (stage 3 next)
//	stage 3: serviced — memory effect; reply crosses back     (stage 4 next)
//	stage 4: reply arrived — queued on the issuing node's SU  (stage 5 next)
//	stage 5: delivered — frame slot filled / write acked
//
// ClassRPC and ClassReply messages are one-way: they terminate at stage 3
// (the callee fiber is spawned / the return value lands at the requester).
//
// The schedule() call sequence is hop-for-hop identical to the old closure
// chains, so event sequence numbers — and with them the (time, seq) total
// order and every simulated Result — are bit-identical to the unpooled
// implementation.
type msg struct {
	class   trace.Class
	stage   int              // stage the next scheduled event will run
	f       *fiber           // fiber to fill/ack on completion (RPC: the requester)
	src     *node            // issuing node
	dst     *node            // serviced node
	off     int64            // serviced node's memory offset
	abs     int64            // issuing fiber's absolute fill slot (RPC/Reply: ret slot, -1 void)
	val     int64            // scalar payload (Put value, Get/Alloc/Shared result, Reply value)
	op      int              // shared op: 0 read, 1 write, 2 add
	flt     bool             // shared add on float bits
	size    int              // block payload words / remote allocation size
	mid     int64            // trace message id (0 when tracing is off)
	seq     uint64           // reliable-messaging transaction number (fault mode)
	lseq    uint64           // per-(src,dst)-link request order (fault mode)
	attempt int              // transmission attempt this copy belongs to (fault mode)
	fn      *threaded.FnCode // RPC callee
	args    []int64          // RPC arguments (capacity retained across reuse)
	vals    []int64          // block payload (capacity retained across reuse)
	free    *msg             // freelist link
}

// msgLabels names each hop per class for the trace sink, indexed by the
// stage being scheduled (stage-1): SU request, forward wire, SU service,
// backward wire, SU reply.
var msgLabels = [trace.ClassShared + 1][5]string{
	trace.ClassGet:    {"get.req", "get", "get.svc", "get.reply", "get.reply"},
	trace.ClassPut:    {"put.req", "put", "put.svc", "put.ack", "put.ack"},
	trace.ClassBlkGet: {"blkget.req", "blkget", "blkget.svc", "blkget.reply", "blkget.reply"},
	trace.ClassBlkPut: {"blkput.req", "blkput", "blkput.svc", "blkput.ack", "blkput.ack"},
	trace.ClassAlloc:  {"alloc.req", "alloc", "alloc.svc", "alloc.reply", "alloc.reply"},
	trace.ClassRPC:    {"rpc.req", "rpc", "rpc.svc", "rpc.ack", "rpc.ack"},
	trace.ClassReply:  {"reply.req", "reply", "reply.svc", "reply.ack", "reply.ack"},
	trace.ClassShared: {"shared.req", "shared", "shared.svc", "shared.reply", "shared.reply"},
}

// getMsg takes a message record off the freelist (or allocates one),
// retaining the args/vals buffer capacity of its previous life.
func (m *shard) getMsg() *msg {
	g := m.msgFree
	if g == nil {
		return &msg{}
	}
	m.msgFree = g.free
	g.free = nil
	return g
}

// putMsg clears a completed message and returns it to the freelist. Only
// terminal lifecycle steps may call this — the record must not be reachable
// from any scheduled event.
func (m *shard) putMsg(g *msg) {
	args, vals := g.args[:0], g.vals[:0]
	*g = msg{args: args, vals: vals, free: m.msgFree}
	m.msgFree = g
}

// suSched queues the message's next hop on a node's SU: the SU is a serial
// resource, so the hop completes at max(suFree, t) + svc. The caller sets
// g.stage to the hop being scheduled first. Trace spans never influence the
// schedule. In fault mode the SU may first stall, pushing its free time.
func (m *shard) suSched(n *node, t, svc int64, g *msg) {
	if m.flt != nil && m.flt.Stall > 0 && m.chance(m.flt.Stall) {
		m.fstats.Stalls++
		m.tr.Fault(trace.FaultStall, g.class, g.mid, n.id, 0, t)
		n.suFree = max(n.suFree, t) + m.flt.stallNs()
	}
	start := max(n.suFree, t)
	done := start + svc
	n.suFree = done
	m.tr.SUSpan(n.id, msgLabels[g.class][g.stage-1], g.mid, t, start, done)
	if m.ms != nil {
		m.ms.suObserve(n.id, done-start, done)
	}
	m.schedule(done, evSUEffect, n.id, g)
}

// netSched sends the message's next hop over the point-to-point link:
// per-message latency plus per-word transfer time, FIFO per (src, dst)
// pair. The traced span covers send to arrival (wire time plus queuing).
//
// In fault mode the hop runs the injection gauntlet in a fixed draw order
// (drop, then delay, then duplicate — each consulted only when its
// probability is nonzero, keeping the PRNG stream stable across specs that
// disable a distribution). A dropped hop vanishes without advancing the
// link's FIFO clock; a duplicated hop delivers a cloned copy one ns behind
// the original on the same link.
func (m *shard) netSched(src, dst *node, t int64, words int, g *msg) {
	lat := m.cfg.NetLatency + m.cfg.NetPerWord*int64(words)
	var dup *msg
	if m.flt != nil {
		f := m.flt
		if f.Drop > 0 && m.chance(f.Drop) {
			m.fstats.Drops++
			m.tr.Fault(trace.FaultDrop, g.class, g.mid, src.id, 0, t)
			m.putMsg(g)
			return
		}
		if f.Delay > 0 {
			if extra := m.rndN(f.Delay + 1); extra > 0 {
				m.fstats.Delayed++
				lat += extra * m.cfg.NetLatency
			}
		}
		if f.Dup > 0 && m.chance(f.Dup) {
			m.fstats.Dups++
			m.tr.Fault(trace.FaultDup, g.class, g.mid, src.id, 0, t)
			dup = m.cloneMsg(g)
		}
	}
	arrive := t + lat
	if arrive <= src.netLast[dst.id] {
		arrive = src.netLast[dst.id] + 1
	}
	src.netLast[dst.id] = arrive
	m.tr.NetSpan(src.id, dst.id, msgLabels[g.class][g.stage-1], g.mid, words, t, arrive)
	if m.ms != nil {
		m.ms.linkObserve(src.id, dst.id, arrive-t, int64(words))
	}
	m.deliver(arrive, dst, g)
	if dup != nil {
		arrive++
		src.netLast[dst.id] = arrive
		m.tr.NetSpan(src.id, dst.id, msgLabels[dup.class][dup.stage-1], dup.mid, words, t, arrive)
		if m.ms != nil {
			m.ms.linkObserve(src.id, dst.id, arrive-t, int64(words))
		}
		m.deliver(arrive, dst, dup)
	}
}

// deliver hands a network arrival to the destination node's owning shard:
// scheduled locally when this shard owns it, buffered in the outbox for the
// next barrier otherwise. Arrival times always carry at least NetLatency of
// wire time beyond the sender's current event, which is exactly the
// conservative lookahead bound the coordinator runs windows under — mail is
// never delivered into a receiver's past.
func (m *shard) deliver(at int64, dst *node, g *msg) {
	to := m.peers[dst.id]
	if to == m {
		m.schedule(at, evNetArrive, dst.id, g)
		return
	}
	m.outbox = append(m.outbox, mail{to: to, at: at, node: dst.id, g: g})
}

// netWords is the wire payload of the request (fwd) or reply (back) leg.
func (g *msg) netWords(back bool) int {
	switch g.class {
	case trace.ClassGet, trace.ClassAlloc:
		if back {
			return 1
		}
		return 0
	case trace.ClassPut:
		if back {
			return 0
		}
		return 1
	case trace.ClassBlkGet:
		if back {
			return g.size
		}
		return 0
	case trace.ClassBlkPut:
		if back {
			return 0
		}
		return g.size
	case trace.ClassShared:
		return 1
	case trace.ClassRPC:
		if back {
			return 0 // ack leg (fault mode only)
		}
		return len(g.args)
	case trace.ClassReply:
		if back {
			return 0 // ack leg (fault mode only)
		}
		return 1
	}
	return 0
}

// svcRemote is the serviced node's SU cost (stage 3).
func (m *shard) svcRemote(g *msg) int64 {
	switch g.class {
	case trace.ClassPut:
		return m.cfg.SUWriteSvc
	case trace.ClassBlkGet, trace.ClassBlkPut:
		return m.cfg.SUBlockSvc
	case trace.ClassShared:
		return m.cfg.SUShared
	}
	return m.cfg.SUService
}

// svcReply is the issuing node's SU cost for the reply/ack (stage 5).
func (m *shard) svcReply(g *msg) int64 {
	switch g.class {
	case trace.ClassPut, trace.ClassBlkPut, trace.ClassShared:
		return m.cfg.SUAck
	case trace.ClassBlkGet:
		return m.cfg.SUBlock + m.cfg.SUBlockWord*int64(g.size-1)
	case trace.ClassRPC, trace.ClassReply:
		return m.cfg.SUAck // protocol ack leg (fault mode only)
	}
	return m.cfg.SUService
}

// msgAdvance runs the lifecycle step the popped event scheduled.
func (m *shard) msgAdvance(g *msg, t int64) {
	switch g.stage {
	case 1: // request left the issuing SU; forward over the wire
		g.stage = 2
		m.netSched(g.src, g.dst, t, g.netWords(false), g)
	case 2: // request arrived; queue on the serviced node's SU
		g.stage = 3
		m.suSched(g.dst, t, m.svcRemote(g), g)
	case 3: // serviced: apply the memory effect, send the reply
		m.msgService(g, t)
	case 4: // reply arrived; queue on the issuing node's SU
		g.stage = 5
		m.suSched(g.src, t, m.svcReply(g), g)
	case 5: // delivered
		m.msgComplete(g, t)
	}
}

// msgService applies the serviced node's memory effect (stage 3) and, for
// round-trip classes, sends the reply. Without a fault model RPC and Reply
// terminate here (one-way); with one they continue into an ack leg, and
// duplicate request copies skip the effect, replaying the cached reply
// instead (exactly-once semantics for non-idempotent effects like
// allocation, shared-add and fiber spawn).
func (m *shard) msgService(g *msg, t int64) {
	dstID := g.dst.id
	if m.flt != nil {
		if c, dup := m.seen[g.seq]; dup {
			m.fstats.DupSuppressed++
			m.tr.Fault(trace.FaultDupSuppress, g.class, g.mid, dstID, 0, t)
			g.val = c.val
			g.vals = append(g.vals[:0], c.vals...)
			g.stage = 4
			m.netSched(g.dst, g.src, t, g.netWords(true), g)
			return
		}
		// In-order delivery: a request that arrives ahead of a gap in its
		// link's sequence (an earlier request was dropped and is still being
		// retried) parks in the reorder buffer; the gap-filler drains it.
		key := linkKey(g.src, g.dst)
		if g.lseq != m.linkExpect[key] {
			pos := linkPos{key, g.lseq}
			if _, held := m.linkHold[pos]; held {
				// A duplicate copy of an already-parked request.
				m.fstats.DupSuppressed++
				m.tr.Fault(trace.FaultDupSuppress, g.class, g.mid, dstID, 0, t)
				m.putMsg(g)
			} else {
				m.linkHold[pos] = g
			}
			return
		}
	}
	switch g.class {
	case trace.ClassGet:
		g.val = m.memWord(dstID, g.off)
	case trace.ClassPut:
		m.memStore(dstID, g.off, g.val)
	case trace.ClassBlkGet:
		g.vals = m.readBlock(g.dst, g.off, g.size, g.vals[:0])
	case trace.ClassBlkPut:
		m.writeBlock(g.dst, g.off, g.vals)
	case trace.ClassAlloc:
		base := g.dst.allocWords(g.size)
		if base < 0 {
			m.trapf("node %d out of memory for a remote allocation", dstID)
			return
		}
		g.val = threaded.PackAddr(dstID, base)
	case trace.ClassShared:
		switch g.op {
		case 0:
			g.val = m.memWord(dstID, g.off)
		case 1:
			m.memStore(dstID, g.off, g.val)
		case 2:
			old := m.memWord(dstID, g.off)
			if g.flt {
				sum := math.Float64frombits(uint64(old)) + math.Float64frombits(uint64(g.val))
				m.memStore(dstID, g.off, int64(math.Float64bits(sum)))
			} else {
				m.memStore(dstID, g.off, old+g.val)
			}
		}
	case trace.ClassRPC:
		child := m.newFiber(dstID, g.fn, g.args, replyRoute{
			kind: 2, rpcNode: g.src.id, rpcFiber: g.f, rpcSlot: int(g.abs),
		})
		m.enqueueReady(g.dst, child, t)
		if m.flt == nil {
			m.msgDone(g.mid, t)
			m.putMsg(g)
			return
		}
	case trace.ClassReply:
		if g.abs >= 0 {
			m.fill(g.f, g.abs, g.val, t)
		} else {
			m.ack(g.f, t)
		}
		if m.flt == nil {
			m.msgDone(g.mid, t)
			m.putMsg(g)
			return
		}
	}
	if m.flt != nil {
		c := svcCache{val: g.val}
		if len(g.vals) > 0 {
			c.vals = append([]int64(nil), g.vals...)
		}
		m.seen[g.seq] = c
		// This service filled the link's sequence gap; if its successor is
		// already parked in the reorder buffer, queue it on the SU (full
		// service cost). Each drained request drains the next in turn.
		key := linkKey(g.src, g.dst)
		m.linkExpect[key]++
		pos := linkPos{key, m.linkExpect[key]}
		if held, ok := m.linkHold[pos]; ok {
			delete(m.linkHold, pos)
			m.suSched(g.dst, t, m.svcRemote(held), held)
		}
	}
	g.stage = 4
	m.netSched(g.dst, g.src, t, g.netWords(true), g)
}

// msgComplete delivers the reply into the issuing fiber (stage 5). In fault
// mode this is the sender-side end of the transaction: the first reply copy
// completes it (delivering exactly once) and later copies are discarded.
func (m *shard) msgComplete(g *msg, t int64) {
	if m.flt != nil {
		tx := m.txns[g.seq]
		if tx == nil || tx.done {
			m.fstats.DupSuppressed++
			m.tr.Fault(trace.FaultDupSuppress, g.class, g.mid, g.src.id, 0, t)
			m.putMsg(g)
			return
		}
		m.finishTxn(tx, t, g.attempt)
	}
	switch g.class {
	case trace.ClassGet, trace.ClassAlloc:
		m.fill(g.f, g.abs, g.val, t)
	case trace.ClassBlkGet:
		m.fillBlock(g.f, g.abs, g.vals, t)
	case trace.ClassPut, trace.ClassBlkPut:
		m.ack(g.f, t)
	case trace.ClassShared:
		if g.op == 0 {
			m.fill(g.f, g.abs, g.val, t)
		} else {
			m.ack(g.f, t)
		}
		// ClassRPC/ClassReply acks carry no payload: the semantic effect
		// happened at stage 3, exactly once; completing the txn is all.
	}
	m.msgDone(g.mid, t)
	m.putMsg(g)
}

// memWord accesses a word of any node's memory (SU-side).
func (m *shard) memWord(nid int, off int64) int64 {
	n := m.nodes[nid]
	if !n.ensure(off, 1) {
		m.trapf("node %d access beyond its memory budget", nid)
		return 0
	}
	return n.mem[off]
}

func (m *shard) memStore(nid int, off int64, v int64) {
	n := m.nodes[nid]
	if !n.ensure(off, 1) {
		m.trapf("node %d store beyond its memory budget", nid)
		return
	}
	n.mem[off] = v
}

// readBlock copies size words out of a node's memory into a reused buffer.
func (m *shard) readBlock(n *node, off int64, size int, into []int64) []int64 {
	if !n.ensure(off, size) {
		m.trapf("node %d block read beyond its memory budget", n.id)
		for i := 0; i < size; i++ {
			into = append(into, 0)
		}
		return into
	}
	return append(into, n.mem[off:off+int64(size)]...)
}

func (m *shard) writeBlock(n *node, off int64, vals []int64) {
	if !n.ensure(off, len(vals)) {
		m.trapf("node %d block write beyond its memory budget", n.id)
		return
	}
	copy(n.mem[off:off+int64(len(vals))], vals)
}

// block parks a fiber on a pending memory word; it resumes when the word's
// fill arrives.
func (m *shard) block(f *fiber, abs int64) {
	f.waitSlot = abs
	m.park(f)
	n := f.node
	for _, w := range n.waiters[abs] {
		if w == f {
			return
		}
	}
	n.waiters[abs] = append(n.waiters[abs], f)
}

// fill delivers a value into a pending frame slot and, once no fills
// remain outstanding for the word, wakes every fiber blocked on it.
func (m *shard) fill(f *fiber, abs int64, v int64, t int64) {
	f.node.mem[abs] = v
	decPending(f.pending, abs)
	if decPending(f.node.pending, abs) {
		m.wakeWaiters(f.node, abs, t)
	}
}

func (m *shard) fillBlock(f *fiber, abs int64, vals []int64, t int64) {
	for i, v := range vals {
		f.node.mem[abs+int64(i)] = v
		decPending(f.pending, abs+int64(i))
		if decPending(f.node.pending, abs+int64(i)) {
			m.wakeWaiters(f.node, abs+int64(i), t)
		}
	}
}

// decPending decrements a pending counter, reporting whether it reached
// zero (i.e. the word is now present).
func decPending(m map[int64]int, abs int64) bool {
	c := m[abs] - 1
	if c <= 0 {
		delete(m, abs)
		return true
	}
	m[abs] = c
	return false
}

// wakeWaiters resumes fibers blocked on a just-filled word.
func (m *shard) wakeWaiters(n *node, abs int64, t int64) {
	ws := n.waiters[abs]
	if len(ws) == 0 {
		return
	}
	delete(n.waiters, abs)
	for _, f := range ws {
		if f.done {
			continue
		}
		f.waitSlot = -1
		m.enqueueReady(n, f, t)
	}
}

// ack resolves one outstanding write/void-RPC and wakes a fenced fiber.
func (m *shard) ack(f *fiber, t int64) {
	f.outstanding--
	if f.waitFence && f.outstanding == 0 {
		f.waitFence = false
		m.enqueueReady(f.node, f, t)
	}
}

// ------------------------------------------------------------- operations ---

// issueGet starts a split-phase scalar read of mem[addr] into frame slot
// abs of fiber f. site is the issuing instruction's SIMPLE site key (trace
// attribution only).
func (m *shard) issueGet(f *fiber, t int64, addr, abs int64, site string) {
	src := f.node
	dstID := threaded.AddrNode(addr)
	if dstID < 0 || dstID >= len(m.nodes) {
		m.trapf("get: bad address node %d", dstID)
		return
	}
	if dstID == src.id {
		// Pseudo-remote: the runtime detects the local address and the EU
		// completes the access in place — no SU, no split phase. (The
		// paper's Table III shows 1-processor EARTH-C times tracking the
		// sequential baseline, so local-address operations must be cheap.)
		m.counts.LocalReads++
		f.node.mem[abs] = m.memWord(dstID, threaded.AddrOff(addr))
		return
	}
	f.addPending(abs)
	src.pending[abs]++
	m.counts.RemoteReads++
	g := m.getMsg()
	g.class, g.f, g.src, g.dst = trace.ClassGet, f, src, m.nodes[dstID]
	g.off, g.abs = threaded.AddrOff(addr), abs
	g.mid = m.encMid(m.tr.MsgIssue(trace.ClassGet, site, src.id, dstID, f.id, 1, t))
	m.sendMsg(g, t, m.cfg.SUService)
}

// issuePut starts a split-phase scalar write.
func (m *shard) issuePut(f *fiber, t int64, addr, val int64, site string) {
	src := f.node
	dstID := threaded.AddrNode(addr)
	if dstID < 0 || dstID >= len(m.nodes) {
		m.trapf("put: bad address node %d", dstID)
		return
	}
	if dstID == src.id {
		// Pseudo-remote write: completed in place by the EU.
		m.counts.LocalWrites++
		m.memStore(dstID, threaded.AddrOff(addr), val)
		return
	}
	f.outstanding++
	m.counts.RemoteWrites++
	g := m.getMsg()
	g.class, g.f, g.src, g.dst = trace.ClassPut, f, src, m.nodes[dstID]
	g.off, g.val = threaded.AddrOff(addr), val
	g.mid = m.encMid(m.tr.MsgIssue(trace.ClassPut, site, src.id, dstID, f.id, 1, t))
	m.sendMsg(g, t, m.cfg.SUService)
}

// issueBlkGet starts a split-phase block read of size words.
func (m *shard) issueBlkGet(f *fiber, t int64, addr, abs int64, size int, site string) {
	src := f.node
	dstID := threaded.AddrNode(addr)
	if dstID < 0 || dstID >= len(m.nodes) {
		m.trapf("blkmov: bad address node %d", dstID)
		return
	}
	m.counts.BlkWords += int64(size)
	if dstID == src.id {
		// Pseudo-remote block move: an EU-side memcpy.
		m.counts.LocalBlk++
		m.scratch = m.readBlock(m.nodes[dstID], threaded.AddrOff(addr), size, m.scratch[:0])
		copy(src.mem[abs:abs+int64(size)], m.scratch)
		return
	}
	for i := 0; i < size; i++ {
		f.addPending(abs + int64(i))
		src.pending[abs+int64(i)]++
	}
	m.counts.RemoteBlk++
	g := m.getMsg()
	g.class, g.f, g.src, g.dst = trace.ClassBlkGet, f, src, m.nodes[dstID]
	g.off, g.abs, g.size = threaded.AddrOff(addr), abs, size
	g.mid = m.encMid(m.tr.MsgIssue(trace.ClassBlkGet, site, src.id, dstID, f.id, size, t))
	m.sendMsg(g, t, m.cfg.SUBlock)
}

// issueBlkPut starts a split-phase block write. vals may be a scratch
// buffer: its contents are consumed (copied) before issueBlkPut returns.
func (m *shard) issueBlkPut(f *fiber, t int64, addr int64, vals []int64, site string) {
	src := f.node
	dstID := threaded.AddrNode(addr)
	if dstID < 0 || dstID >= len(m.nodes) {
		m.trapf("blkmov: bad address node %d", dstID)
		return
	}
	size := len(vals)
	m.counts.BlkWords += int64(size)
	if dstID == src.id {
		m.counts.LocalBlk++
		m.writeBlock(m.nodes[dstID], threaded.AddrOff(addr), vals)
		return
	}
	f.outstanding++
	m.counts.RemoteBlk++
	g := m.getMsg()
	g.class, g.f, g.src, g.dst = trace.ClassBlkPut, f, src, m.nodes[dstID]
	g.off, g.size = threaded.AddrOff(addr), size
	g.vals = append(g.vals[:0], vals...)
	g.mid = m.encMid(m.tr.MsgIssue(trace.ClassBlkPut, site, src.id, dstID, f.id, size, t))
	m.sendMsg(g, t, m.cfg.SUBlock+m.cfg.SUBlockWord*int64(size-1))
}

// issueAlloc performs a remote allocation, delivering the address into a
// pending slot.
func (m *shard) issueAlloc(f *fiber, t int64, nodeID, size int, abs int64, site string) {
	src := f.node
	f.addPending(abs)
	src.pending[abs]++
	g := m.getMsg()
	g.class, g.f, g.src, g.dst = trace.ClassAlloc, f, src, m.nodes[nodeID]
	g.abs, g.size = abs, size
	g.mid = m.encMid(m.tr.MsgIssue(trace.ClassAlloc, site, src.id, nodeID, f.id, 1, t))
	m.sendMsg(g, t, m.cfg.SUService)
}

// issueInvoke performs a remote function invocation (the placed-call
// mechanism behind @OWNER_OF / @ON). The message completes when the callee
// fiber has been placed on the remote node's ready queue; the reply to the
// requester is a separate ClassReply message (see finishFiber). args may be
// a scratch buffer: its contents are copied before issueInvoke returns.
func (m *shard) issueInvoke(f *fiber, t int64, nodeID int, fn *threaded.FnCode,
	args []int64, retAbs int64, site string) {
	src := f.node
	g := m.getMsg()
	g.class, g.f, g.src, g.dst = trace.ClassRPC, f, src, m.nodes[nodeID]
	g.fn, g.abs = fn, retAbs
	g.args = append(g.args[:0], args...)
	g.mid = m.encMid(m.tr.MsgIssue(trace.ClassRPC, site, src.id, nodeID, f.id, len(args), t))
	m.sendMsg(g, t, m.cfg.SUService)
}

// issueShared performs a remote atomic shared-variable operation.
// op: 0 read, 1 write, 2 add.
func (m *shard) issueShared(f *fiber, t int64, addr int64, op int, val int64,
	replyAbs int64, flt bool, site string) {
	src := f.node
	dstID := threaded.AddrNode(addr)
	if dstID < 0 || dstID >= len(m.nodes) {
		m.trapf("shared op: bad address node %d", dstID)
		return
	}
	g := m.getMsg()
	g.class, g.f, g.src, g.dst = trace.ClassShared, f, src, m.nodes[dstID]
	g.off, g.abs, g.op, g.val, g.flt = threaded.AddrOff(addr), replyAbs, op, val, flt
	g.mid = m.encMid(m.tr.MsgIssue(trace.ClassShared, site, src.id, dstID, f.id, 1, t))
	m.sendMsg(g, t, m.cfg.SUService)
}

// finishFiber completes a fiber: frees its frame (unless shared) and
// reports to its waiter.
func (m *shard) finishFiber(f *fiber, t int64, val int64) {
	f.done = true
	m.liveFibers--
	n := f.node
	switch f.route.kind {
	case 0: // main
		m.mainDone = true
		m.mainRet = val
		m.mainTime = t
		n.freeFrame(f.base, f.size)
	case 1: // joined child
		if !f.code.IsArm {
			n.freeFrame(f.base, f.size)
		}
		p := f.route.parent
		p.children--
		if p.waitJoin && p.children == 0 {
			p.waitJoin = false
			m.enqueueReady(p.node, p, t)
		}
	case 2: // remote invocation: reply to the requester
		n.freeFrame(f.base, f.size)
		g := m.getMsg()
		g.class, g.f, g.src, g.dst = trace.ClassReply, f.route.rpcFiber, n, m.nodes[f.route.rpcNode]
		g.abs, g.val = int64(f.route.rpcSlot), val
		g.mid = m.encMid(m.tr.MsgIssue(trace.ClassReply, f.code.Name, n.id, g.dst.id, f.id, 1, t+m.cfg.EUIssue))
		m.sendMsg(g, t+m.cfg.EUIssue, m.cfg.SUService)
	}
	m.recycleFiber(f)
}
