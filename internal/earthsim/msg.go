package earthsim

import (
	"math"

	"repro/internal/threaded"
	"repro/internal/trace"
)

// suTask schedules work on a node's SU: the SU is a serial resource, so the
// task completes at max(suFree, t) + svc. lab and mid describe the task for
// the trace sink (mid 0: no associated message); they never influence the
// schedule.
func (m *Machine) suTask(n *node, t, svc int64, lab string, mid int64, effect func(done int64)) {
	start := max64(n.suFree, t)
	done := start + svc
	n.suFree = done
	m.tr.SUSpan(n.id, lab, mid, t, start, done)
	m.schedule(done, evSUEffect, n.id, func(m *Machine, _ int64) { effect(done) })
}

// netSend models the point-to-point link: per-message latency plus per-word
// transfer time, FIFO per (src, dst) pair. The traced span covers send to
// arrival (wire time plus any FIFO queuing).
func (m *Machine) netSend(src, dst *node, t int64, words int, lab string, mid int64, then func(arrive int64)) {
	arrive := t + m.cfg.NetLatency + m.cfg.NetPerWord*int64(words)
	if arrive <= src.netLast[dst.id] {
		arrive = src.netLast[dst.id] + 1
	}
	src.netLast[dst.id] = arrive
	m.tr.NetSpan(src.id, dst.id, lab, mid, words, t, arrive)
	m.schedule(arrive, evNetArrive, dst.id, func(m *Machine, _ int64) { then(arrive) })
}

// memWord accesses a word of any node's memory (SU-side).
func (m *Machine) memWord(nid int, off int64) int64 {
	n := m.nodes[nid]
	if !n.ensure(off, 1) {
		m.trapf("node %d access beyond its memory budget", nid)
		return 0
	}
	return n.mem[off]
}

func (m *Machine) memStore(nid int, off int64, v int64) {
	n := m.nodes[nid]
	if !n.ensure(off, 1) {
		m.trapf("node %d store beyond its memory budget", nid)
		return
	}
	n.mem[off] = v
}

// block parks a fiber on a pending memory word; it resumes when the word's
// fill arrives.
func (m *Machine) block(f *fiber, abs int64) {
	f.waitSlot = abs
	n := f.node
	for _, w := range n.waiters[abs] {
		if w == f {
			return
		}
	}
	n.waiters[abs] = append(n.waiters[abs], f)
}

// fill delivers a value into a pending frame slot and, once no fills
// remain outstanding for the word, wakes every fiber blocked on it.
func (m *Machine) fill(f *fiber, abs int64, v int64, t int64) {
	f.node.mem[abs] = v
	decPending(f.pending, abs)
	if decPending(f.node.pending, abs) {
		m.wakeWaiters(f.node, abs, t)
	}
}

func (m *Machine) fillBlock(f *fiber, abs int64, vals []int64, t int64) {
	for i, v := range vals {
		f.node.mem[abs+int64(i)] = v
		decPending(f.pending, abs+int64(i))
		if decPending(f.node.pending, abs+int64(i)) {
			m.wakeWaiters(f.node, abs+int64(i), t)
		}
	}
}

// decPending decrements a pending counter, reporting whether it reached
// zero (i.e. the word is now present).
func decPending(m map[int64]int, abs int64) bool {
	c := m[abs] - 1
	if c <= 0 {
		delete(m, abs)
		return true
	}
	m[abs] = c
	return false
}

// wakeWaiters resumes fibers blocked on a just-filled word.
func (m *Machine) wakeWaiters(n *node, abs int64, t int64) {
	ws := n.waiters[abs]
	if len(ws) == 0 {
		return
	}
	delete(n.waiters, abs)
	for _, f := range ws {
		if f.done {
			continue
		}
		f.waitSlot = -1
		m.enqueueReady(n, f, t)
	}
}

// ack resolves one outstanding write/void-RPC and wakes a fenced fiber.
func (m *Machine) ack(f *fiber, t int64) {
	f.outstanding--
	if f.waitFence && f.outstanding == 0 {
		f.waitFence = false
		m.enqueueReady(f.node, f, t)
	}
}

// ------------------------------------------------------------- operations ---

// issueGet starts a split-phase scalar read of mem[addr] into frame slot
// abs of fiber f. site is the issuing instruction's SIMPLE site key (trace
// attribution only).
func (m *Machine) issueGet(f *fiber, t int64, addr, abs int64, site string) {
	src := f.node
	dstID := threaded.AddrNode(addr)
	if dstID < 0 || dstID >= len(m.nodes) {
		m.trapf("get: bad address node %d", dstID)
		return
	}
	if dstID == src.id {
		// Pseudo-remote: the runtime detects the local address and the EU
		// completes the access in place — no SU, no split phase. (The
		// paper's Table III shows 1-processor EARTH-C times tracking the
		// sequential baseline, so local-address operations must be cheap.)
		m.counts.LocalReads++
		f.node.mem[abs] = m.memWord(dstID, threaded.AddrOff(addr))
		return
	}
	f.pending[abs]++
	src.pending[abs]++
	m.counts.RemoteReads++
	mid := m.tr.MsgIssue(trace.ClassGet, site, src.id, dstID, f.id, 1, t)
	dst := m.nodes[dstID]
	m.suTask(src, t, m.cfg.SUService, "get.req", mid, func(t1 int64) {
		m.netSend(src, dst, t1, 0, "get", mid, func(t2 int64) {
			m.suTask(dst, t2, m.cfg.SUService, "get.svc", mid, func(t3 int64) {
				v := m.memWord(dstID, threaded.AddrOff(addr))
				m.netSend(dst, src, t3, 1, "get.reply", mid, func(t4 int64) {
					m.suTask(src, t4, m.cfg.SUService, "get.reply", mid, func(t5 int64) {
						m.fill(f, abs, v, t5)
						m.tr.MsgDone(mid, t5)
					})
				})
			})
		})
	})
}

// issuePut starts a split-phase scalar write.
func (m *Machine) issuePut(f *fiber, t int64, addr, val int64, site string) {
	src := f.node
	dstID := threaded.AddrNode(addr)
	if dstID < 0 || dstID >= len(m.nodes) {
		m.trapf("put: bad address node %d", dstID)
		return
	}
	if dstID == src.id {
		// Pseudo-remote write: completed in place by the EU.
		m.counts.LocalWrites++
		m.memStore(dstID, threaded.AddrOff(addr), val)
		return
	}
	f.outstanding++
	m.counts.RemoteWrites++
	mid := m.tr.MsgIssue(trace.ClassPut, site, src.id, dstID, f.id, 1, t)
	dst := m.nodes[dstID]
	m.suTask(src, t, m.cfg.SUService, "put.req", mid, func(t1 int64) {
		m.netSend(src, dst, t1, 1, "put", mid, func(t2 int64) {
			m.suTask(dst, t2, m.cfg.SUWriteSvc, "put.svc", mid, func(t3 int64) {
				m.memStore(dstID, threaded.AddrOff(addr), val)
				m.netSend(dst, src, t3, 0, "put.ack", mid, func(t4 int64) {
					m.suTask(src, t4, m.cfg.SUAck, "put.ack", mid, func(t5 int64) {
						m.ack(f, t5)
						m.tr.MsgDone(mid, t5)
					})
				})
			})
		})
	})
}

// issueBlkGet starts a split-phase block read of size words.
func (m *Machine) issueBlkGet(f *fiber, t int64, addr, abs int64, size int, site string) {
	src := f.node
	dstID := threaded.AddrNode(addr)
	if dstID < 0 || dstID >= len(m.nodes) {
		m.trapf("blkmov: bad address node %d", dstID)
		return
	}
	m.counts.BlkWords += int64(size)
	replySvc := m.cfg.SUBlock + m.cfg.SUBlockWord*int64(size-1)
	readWords := func() []int64 {
		vals := make([]int64, size)
		off := threaded.AddrOff(addr)
		if !m.nodes[dstID].ensure(off, size) {
			m.trapf("node %d block read beyond its memory budget", dstID)
			return vals
		}
		copy(vals, m.nodes[dstID].mem[off:off+int64(size)])
		return vals
	}
	if dstID == src.id {
		// Pseudo-remote block move: an EU-side memcpy.
		m.counts.LocalBlk++
		vals := readWords()
		copy(src.mem[abs:abs+int64(size)], vals)
		return
	}
	for i := 0; i < size; i++ {
		f.pending[abs+int64(i)]++
		src.pending[abs+int64(i)]++
	}
	m.counts.RemoteBlk++
	mid := m.tr.MsgIssue(trace.ClassBlkGet, site, src.id, dstID, f.id, size, t)
	dst := m.nodes[dstID]
	m.suTask(src, t, m.cfg.SUBlock, "blkget.req", mid, func(t1 int64) {
		m.netSend(src, dst, t1, 0, "blkget", mid, func(t2 int64) {
			m.suTask(dst, t2, m.cfg.SUBlockSvc, "blkget.svc", mid, func(t3 int64) {
				vals := readWords()
				m.netSend(dst, src, t3, size, "blkget.reply", mid, func(t4 int64) {
					m.suTask(src, t4, replySvc, "blkget.reply", mid, func(t5 int64) {
						m.fillBlock(f, abs, vals, t5)
						m.tr.MsgDone(mid, t5)
					})
				})
			})
		})
	})
}

// issueBlkPut starts a split-phase block write.
func (m *Machine) issueBlkPut(f *fiber, t int64, addr int64, vals []int64, site string) {
	src := f.node
	dstID := threaded.AddrNode(addr)
	if dstID < 0 || dstID >= len(m.nodes) {
		m.trapf("blkmov: bad address node %d", dstID)
		return
	}
	size := len(vals)
	m.counts.BlkWords += int64(size)
	writeWords := func() {
		off := threaded.AddrOff(addr)
		if !m.nodes[dstID].ensure(off, size) {
			m.trapf("node %d block write beyond its memory budget", dstID)
			return
		}
		copy(m.nodes[dstID].mem[off:off+int64(size)], vals)
	}
	reqSvc := m.cfg.SUBlock + m.cfg.SUBlockWord*int64(size-1)
	if dstID == src.id {
		m.counts.LocalBlk++
		writeWords()
		return
	}
	f.outstanding++
	m.counts.RemoteBlk++
	mid := m.tr.MsgIssue(trace.ClassBlkPut, site, src.id, dstID, f.id, size, t)
	dst := m.nodes[dstID]
	m.suTask(src, t, reqSvc, "blkput.req", mid, func(t1 int64) {
		m.netSend(src, dst, t1, size, "blkput", mid, func(t2 int64) {
			m.suTask(dst, t2, m.cfg.SUBlockSvc, "blkput.svc", mid, func(t3 int64) {
				writeWords()
				m.netSend(dst, src, t3, 0, "blkput.ack", mid, func(t4 int64) {
					m.suTask(src, t4, m.cfg.SUAck, "blkput.ack", mid, func(t5 int64) {
						m.ack(f, t5)
						m.tr.MsgDone(mid, t5)
					})
				})
			})
		})
	})
}

// issueAlloc performs a remote allocation, delivering the address into a
// pending slot.
func (m *Machine) issueAlloc(f *fiber, t int64, nodeID, size int, abs int64, site string) {
	src := f.node
	dst := m.nodes[nodeID]
	f.pending[abs]++
	src.pending[abs]++
	mid := m.tr.MsgIssue(trace.ClassAlloc, site, src.id, nodeID, f.id, 1, t)
	m.suTask(src, t, m.cfg.SUService, "alloc.req", mid, func(t1 int64) {
		m.netSend(src, dst, t1, 0, "alloc", mid, func(t2 int64) {
			m.suTask(dst, t2, m.cfg.SUService, "alloc.svc", mid, func(t3 int64) {
				base := dst.allocWords(size)
				if base < 0 {
					m.trapf("node %d out of memory for a remote allocation", nodeID)
					return
				}
				addr := threaded.PackAddr(nodeID, base)
				m.netSend(dst, src, t3, 1, "alloc.reply", mid, func(t4 int64) {
					m.suTask(src, t4, m.cfg.SUService, "alloc.reply", mid, func(t5 int64) {
						m.fill(f, abs, addr, t5)
						m.tr.MsgDone(mid, t5)
					})
				})
			})
		})
	})
}

// issueInvoke performs a remote function invocation (the placed-call
// mechanism behind @OWNER_OF / @ON). The message completes when the callee
// fiber has been placed on the remote node's ready queue; the reply to the
// requester is a separate ClassReply message (see finishFiber).
func (m *Machine) issueInvoke(f *fiber, t int64, nodeID int, fn *threaded.FnCode,
	args []int64, retAbs int64, site string) {
	src := f.node
	dst := m.nodes[nodeID]
	mid := m.tr.MsgIssue(trace.ClassRPC, site, src.id, nodeID, f.id, len(args), t)
	m.suTask(src, t, m.cfg.SUService, "rpc.req", mid, func(t1 int64) {
		m.netSend(src, dst, t1, len(args), "rpc", mid, func(t2 int64) {
			m.suTask(dst, t2, m.cfg.SUService, "rpc.svc", mid, func(t3 int64) {
				child := m.newFiber(nodeID, fn, args, replyRoute{
					kind: 2, rpcNode: src.id, rpcFiber: f, rpcSlot: int(retAbs),
				})
				m.enqueueReady(dst, child, t3)
				m.tr.MsgDone(mid, t3)
			})
		})
	})
}

// issueShared performs a remote atomic shared-variable operation.
// op: 0 read, 1 write, 2 add.
func (m *Machine) issueShared(f *fiber, t int64, addr int64, op int, val int64,
	replyAbs int64, flt bool, site string) {
	src := f.node
	dstID := threaded.AddrNode(addr)
	if dstID < 0 || dstID >= len(m.nodes) {
		m.trapf("shared op: bad address node %d", dstID)
		return
	}
	mid := m.tr.MsgIssue(trace.ClassShared, site, src.id, dstID, f.id, 1, t)
	dst := m.nodes[dstID]
	m.suTask(src, t, m.cfg.SUService, "shared.req", mid, func(t1 int64) {
		m.netSend(src, dst, t1, 1, "shared", mid, func(t2 int64) {
			m.suTask(dst, t2, m.cfg.SUShared, "shared.svc", mid, func(t3 int64) {
				off := threaded.AddrOff(addr)
				var result int64
				switch op {
				case 0:
					result = m.memWord(dstID, off)
				case 1:
					m.memStore(dstID, off, val)
				case 2:
					old := m.memWord(dstID, off)
					if flt {
						sum := math.Float64frombits(uint64(old)) + math.Float64frombits(uint64(val))
						m.memStore(dstID, off, int64(math.Float64bits(sum)))
					} else {
						m.memStore(dstID, off, old+val)
					}
				}
				m.netSend(dst, src, t3, 1, "shared.reply", mid, func(t4 int64) {
					m.suTask(src, t4, m.cfg.SUAck, "shared.reply", mid, func(t5 int64) {
						if op == 0 {
							m.fill(f, replyAbs, result, t5)
						} else {
							m.ack(f, t5)
						}
						m.tr.MsgDone(mid, t5)
					})
				})
			})
		})
	})
}

// finishFiber completes a fiber: frees its frame (unless shared) and
// reports to its waiter.
func (m *Machine) finishFiber(f *fiber, t int64, val int64) {
	f.done = true
	m.liveFibers--
	n := f.node
	switch f.route.kind {
	case 0: // main
		m.mainDone = true
		m.mainRet = val
		m.mainTime = t
		n.freeFrame(f.base, f.size)
	case 1: // joined child
		if !f.code.IsArm {
			n.freeFrame(f.base, f.size)
		}
		p := f.route.parent
		p.children--
		if p.waitJoin && p.children == 0 {
			p.waitJoin = false
			m.enqueueReady(p.node, p, t)
		}
	case 2: // remote invocation: reply to the requester
		n.freeFrame(f.base, f.size)
		req := f.route.rpcFiber
		src := m.nodes[f.route.rpcNode]
		mid := m.tr.MsgIssue(trace.ClassReply, f.code.Name, n.id, src.id, f.id, 1, t+m.cfg.EUIssue)
		m.suTask(n, t+m.cfg.EUIssue, m.cfg.SUService, "reply.req", mid, func(t1 int64) {
			m.netSend(n, src, t1, 1, "reply", mid, func(t2 int64) {
				m.suTask(src, t2, m.cfg.SUService, "reply.svc", mid, func(t3 int64) {
					if f.route.rpcSlot >= 0 {
						m.fill(req, int64(f.route.rpcSlot), val, t3)
					} else {
						m.ack(req, t3)
					}
					m.tr.MsgDone(mid, t3)
				})
			})
		})
	}
}
