// Package earthsim is a discrete-event simulator of the EARTH-MANNA
// distributed-memory multiprocessor (Hum et al.), the paper's experimental
// platform. Each node pairs an Execution Unit (EU) that runs fibers of
// threaded code with a Synchronization Unit (SU) that services remote
// memory requests, and nodes are joined by a point-to-point network with
// per-link FIFO delivery. Remote memory operations are split-phase: the EU
// issues a request and continues; the consuming instruction synchronizes on
// the reply through presence bits on frame slots.
//
// The cost model is calibrated so the microbenchmarks of cmd/paperbench
// reproduce the paper's Table I (sequential remote read ~7109 ns, pipelined
// ~1908 ns, blkmov word ~9700/2602 ns). The selection phase uses the
// paper's empirically-determined threshold of three words for blocking.
package earthsim

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/metrics"
	"repro/internal/profile"
	"repro/internal/threaded"
	"repro/internal/trace"
)

// Config describes the simulated machine. All costs are in nanoseconds.
type Config struct {
	Nodes int

	InstrCost    int64 // EU cost of an ordinary instruction
	LocalMemCost int64 // direct local memory access (local pointers)
	LocalRTCost  int64 // runtime op whose target turns out local: the EU
	//                    checks the address and completes it in place
	//                    (pseudo-remote; justified by the paper's Table III,
	//                    where 1-processor simple times track sequential)
	LocalRTWord      int64 // per-word cost of a local block operation
	CtxSwitch        int64 // EU cost to switch to another fiber
	EUIssue          int64 // EU cost to hand a remote operation to the SU
	CallCost         int64 // EU cost of a local call (frame setup)
	SpawnCost        int64 // EU cost to spawn a fiber
	FrameCopyPerWord int64 // extra spawn cost per copied frame word
	AllocCost        int64 // EU cost of a local heap allocation

	SUService   int64 // SU handling of a scalar request/reply message
	SUAck       int64 // SU handling of a write acknowledgement
	SUWriteSvc  int64 // remote SU servicing of a scalar write
	SUBlock     int64 // SU handling of a block request message
	SUBlockSvc  int64 // remote SU servicing of a block request
	SUBlockWord int64 // extra SU cost per block payload word beyond the first
	SUShared    int64 // SU cost of an atomic shared-variable operation

	NetLatency int64 // wire latency per message
	NetPerWord int64 // per payload word on the wire

	// MaxEvents bounds the simulation (0 = default 500M).
	MaxEvents int64
	// MaxFiberInstr bounds instructions per fiber, catching infinite loops
	// in guest programs (0 = default 2G).
	MaxFiberInstr int64
	// MaxNodeWords bounds each node's memory, catching runaway guest
	// allocation before it exhausts the host (0 = default 16M words,
	// i.e. 128 MiB per node).
	MaxNodeWords int64
	// Fuel bounds total EU instructions across all fibers (0 = unlimited);
	// exceeding it returns an error wrapping ErrFuelExhausted. Granularity
	// is limitCheckInterval instructions.
	Fuel int64

	// Faults, when non-nil, switches the machine to the lossy transport +
	// reliable-messaging protocol (see fault.go). Nil costs nothing.
	Faults *FaultConfig

	// SimWorkers selects the sharded event loop: one event-loop shard per
	// simulated node, synchronized by conservative lookahead windows derived
	// from NetLatency, driven by up to SimWorkers goroutines (1 = the
	// sharded engine run sequentially). 0 keeps the historical single
	// sequential loop. For a fixed seed + spec the sharded engine's Result,
	// trace and telemetry series are bit-identical across worker counts,
	// and Result.Visible() also matches the historical loop.
	SimWorkers int
}

// DefaultConfig returns the calibrated EARTH-MANNA model.
func DefaultConfig(nodes int) Config {
	return Config{
		Nodes:            nodes,
		InstrCost:        25,
		LocalMemCost:     50,
		LocalRTCost:      350,
		LocalRTWord:      12,
		CtxSwitch:        300,
		EUIssue:          200,
		CallCost:         200,
		SpawnCost:        400,
		FrameCopyPerWord: 8,
		AllocCost:        150,
		SUService:        950,
		SUAck:            799,
		SUWriteSvc:       449,
		SUBlock:          1300,
		SUBlockSvc:       2590,
		SUBlockWord:      160,
		SUShared:         600,
		NetLatency:       1800,
		NetPerWord:       160,
	}
}

// Counts are dynamic communication-operation counters, the data behind the
// paper's Figure 10.
type Counts struct {
	RemoteReads  int64 // scalar get operations to another node
	RemoteWrites int64 // scalar put operations to another node
	RemoteBlk    int64 // block moves to another node
	LocalReads   int64 // runtime gets that hit the local node (pseudo-remote)
	LocalWrites  int64
	LocalBlk     int64
	SharedOps    int64 // atomic shared-variable operations
	RPCs         int64 // remote function invocations
	Spawns       int64 // fibers spawned (arms + iterations)
	BlkWords     int64 // words moved by block operations
	Instructions int64 // EU instructions executed
	Allocs       int64
}

// TotalRemote is the Figure 10 quantity: remote data communication ops.
func (c Counts) TotalRemote() int64 { return c.RemoteReads + c.RemoteWrites + c.RemoteBlk }

// String summarizes the counters.
func (c Counts) String() string {
	return fmt.Sprintf("reads=%d writes=%d blkmov=%d blkwords=%d (local rt: %d/%d/%d) shared=%d rpc=%d spawn=%d alloc=%d instr=%d",
		c.RemoteReads, c.RemoteWrites, c.RemoteBlk, c.BlkWords,
		c.LocalReads, c.LocalWrites, c.LocalBlk,
		c.SharedOps, c.RPCs, c.Spawns, c.Allocs, c.Instructions)
}

// Result is the outcome of a run.
type Result struct {
	Time    int64 // simulated ns until main completed
	Counts  Counts
	Output  string
	MainRet int64 // main's return value (raw bits)
	// Events counts dispatched simulator events — a host-side throughput
	// diagnostic (events/sec in benchmarks), excluded from Visible because
	// the exact count varies with the execution strategy.
	Events int64
	// Profile carries the per-site measurements of a profiled program
	// (prog.Profiled; see internal/profile), nil otherwise.
	Profile *profile.Data
	// Faults counts injected faults and retries, nil when Config.Faults
	// was nil.
	Faults *FaultStats
}

// Visible renders the program-visible outcome: output, main's return value,
// and the dynamic operation counts — excluding Time, Profile and Faults,
// which legitimately vary with the transport. The reliable-messaging
// invariant (locked in by tests) is that any run that completes under fault
// injection has a Visible value byte-identical to the fault-free run.
func (r *Result) Visible() string {
	// Instructions is excluded: a blocked instruction re-executes when its
	// operand's fill arrives, so the attempt count varies with timing (and
	// hence with injected faults) even though the data-flow semantics — every
	// issue counter, the output, the return value — do not. Time and Faults
	// are likewise timing, not semantics.
	c := r.Counts
	c.Instructions = 0
	return fmt.Sprintf("ret=%#x counts=[%s] output=%q", uint64(r.MainRet), c, r.Output)
}

// ------------------------------------------------------------------ events ---

type eventKind int

const (
	evEURun eventKind = iota
	evSUEffect
	evNetArrive
	evRetry // reliable-messaging retransmit timer (fault mode only)
)

// event is a scheduled simulator action, stored by value in the queue. An
// event with a message advances that message's lifecycle (msgAdvance); an
// evRetry fires a transaction's retransmit timer; anything else runs the
// node's EU.
type event struct {
	time int64
	seq  int64
	kind eventKind
	node int
	g    *msg
	tx   *txn
}

// eventQ is an inlined 4-ary min-heap of events ordered by (time, seq).
// The seq tiebreak makes the order a total one — equal-time events pop in
// schedule order — so heap arity and sift details cannot change simulation
// outcomes. Compared to container/heap this avoids the per-event box
// allocation and interface dispatch on the hot path.
type eventQ []event

func (q eventQ) less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}

func (q *eventQ) push(e event) {
	a := append(*q, e)
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !a.less(i, p) {
			break
		}
		a[i], a[p] = a[p], a[i]
		i = p
	}
	*q = a
}

func (q *eventQ) pop() event {
	a := *q
	top := a[0]
	n := len(a) - 1
	a[0] = a[n]
	a[n] = event{} // release the msg pointer
	a = a[:n]
	i := 0
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		best := c
		for j := c + 1; j < min(c+4, n); j++ {
			if a.less(j, best) {
				best = j
			}
		}
		if !a.less(best, i) {
			break
		}
		a[i], a[best] = a[best], a[i]
		i = best
	}
	*q = a
	return top
}

// ------------------------------------------------------------------- nodes ---

// frameClassMax bounds the dense per-size frame free-list table; frames are
// function-frame sized (a handful of words), so nearly every free/alloc hits
// the table and the map is a fallback for pathological frame sizes.
const frameClassMax = 256

type node struct {
	id       int
	maxWords int64
	mem      []int64
	heapTop  int64
	// Frame free lists, by exact size class. freeSmall is a dense table
	// indexed by size (lazily allocated on the first free), freeBig catches
	// sizes ≥ frameClassMax. Both recycle exact sizes only, so reuse keeps
	// the bump allocator's zero-fill semantics.
	freeSmall [][]int64
	freeBig   map[int][]int64
	euFree    int64
	suFree    int64
	// ready is the EU's fiber queue, consumed from readyAt so the backing
	// array is reused instead of reallocated on every enqueue/dequeue pair.
	ready   []*fiber
	readyAt int
	netLast []int64 // per-destination last scheduled arrival (FIFO)
	// pending counts outstanding split-phase fills per memory word
	// (presence bits); node-level so fibers sharing a frame observe each
	// other's outstanding fills. waiters lists fibers blocked per word.
	pending map[int64]int
	waiters map[int64][]*fiber
}

// ensure grows the node's memory to cover [off, off+size); it reports
// whether the node is within its memory budget (the caller traps if not).
func (n *node) ensure(off int64, size int) bool {
	need := off + int64(size)
	if n.maxWords > 0 && need > n.maxWords {
		return false
	}
	for int64(len(n.mem)) < need {
		n.mem = append(n.mem, make([]int64, max(1024, need-int64(len(n.mem))))...)
	}
	return true
}

func (n *node) readyLen() int { return len(n.ready) - n.readyAt }

func (n *node) popReady() *fiber {
	f := n.ready[n.readyAt]
	n.ready[n.readyAt] = nil
	n.readyAt++
	if n.readyAt == len(n.ready) {
		n.ready = n.ready[:0]
		n.readyAt = 0
	}
	return f
}

// allocWords bump-allocates; returns -1 when the node's memory budget is
// exhausted (callers trap).
func (n *node) allocWords(size int) int64 {
	base := n.heapTop
	if !n.ensure(base, size) {
		return -1
	}
	n.heapTop += int64(size)
	// Zero (frames may be reused).
	for i := int64(0); i < int64(size); i++ {
		n.mem[base+i] = 0
	}
	return base
}

func (n *node) allocFrame(size int) int64 {
	var lst []int64
	if size < len(n.freeSmall) {
		lst = n.freeSmall[size]
	} else {
		lst = n.freeBig[size]
	}
	if len(lst) > 0 {
		base := lst[len(lst)-1]
		if size < len(n.freeSmall) {
			n.freeSmall[size] = lst[:len(lst)-1]
		} else {
			n.freeBig[size] = lst[:len(lst)-1]
		}
		for i := 0; i < size; i++ {
			n.mem[base+int64(i)] = 0
		}
		return base
	}
	return n.allocWords(size)
}

func (n *node) freeFrame(base int64, size int) {
	if size < frameClassMax {
		if n.freeSmall == nil {
			n.freeSmall = make([][]int64, frameClassMax)
		}
		n.freeSmall[size] = append(n.freeSmall[size], base)
		return
	}
	if n.freeBig == nil {
		n.freeBig = make(map[int][]int64)
	}
	n.freeBig[size] = append(n.freeBig[size], base)
}

// ------------------------------------------------------------------ fibers ---

type frameRec struct {
	code    *threaded.FnCode
	pc      int
	base    int64
	size    int
	retSlot int
}

// replyRoute describes where a fiber's completion must be reported.
type replyRoute struct {
	kind     int // 0 none (main), 1 local join (parent), 2 remote RPC
	parent   *fiber
	rpcNode  int // requester node
	rpcFiber *fiber
	rpcSlot  int // -1 for void: counts against outstanding instead
}

type fiber struct {
	id    int64
	node  *node
	code  *threaded.FnCode
	pc    int
	base  int64
	size  int
	stack []frameRec

	// pending counts outstanding fills per absolute offset (base+slot);
	// allocated lazily since most fibers never issue a split-phase read.
	pending   map[int64]int
	waitSlot  int64 // absolute offset blocked on (-1 none)
	waitFence bool
	waitJoin  bool

	outstanding int // unacked writes + void RPC completions
	children    int

	route  replyRoute
	done   bool
	ninstr int64

	// parkListed/parkNext thread the fiber onto the machine's intrusive
	// blocked-fiber list the first time it blocks (see park). The linkage
	// survives recycling: a reused fiber record is already parked, which is
	// exactly what lazy deletion expects.
	parkListed bool
	parkNext   *fiber

	// freeNext links the record into its shard's fiber freelist between
	// lives (see getFiber/recycleFiber).
	freeNext *fiber
}

// addPending registers an outstanding fill for an absolute frame offset.
func (f *fiber) addPending(abs int64) {
	if f.pending == nil {
		f.pending = make(map[int64]int, 4)
	}
	f.pending[abs]++
}

// ----------------------------------------------------------------- machine ---

type outItem struct {
	time int64
	seq  int64
	text string
}

// mail is a cross-shard message delivery: an evNetArrive that a shard's
// event loop produced for a node another shard owns. Mail is buffered in
// the sender's outbox during a window and delivered by the coordinator at
// the next barrier, in (sender shard id, send order) — a total order that
// does not depend on how many worker goroutines executed the window.
type mail struct {
	to   *shard
	at   int64
	node int
	g    *msg
}

// doneRec defers a trace MsgDone whose message was issued on another shard
// (the recorder that owns the id); applied before trace merge at Run end.
type doneRec struct {
	mid int64
	at  int64
}

// shard owns the mutable per-run state of one or more simulated nodes: a
// local event heap, the EU/SU/fiber state of its nodes, its side of the
// reliable-messaging protocol, and its slice of the trace/telemetry
// recorders. In legacy mode (Config.SimWorkers == 0) a single shard owns
// every node and Machine.Run drives it exactly as the historical sequential
// loop did; in sharded mode there is one shard per node and the coordinator
// runs them in conservative-lookahead windows (see parallel.go).
type shard struct {
	id     int
	single bool // legacy mode: this shard owns every node

	// Read-only after New: shared program/topology. nodes is the full node
	// table — a shard only mutates the state of nodes it owns, but message
	// servicing needs the table to resolve destination ids.
	cfg   Config
	prog  *threaded.Program
	nodes []*node
	peers []*shard // owning shard per node id (all == the single shard in legacy mode)

	events        eventQ
	seq           int64
	nextFiber     int64
	counts        Counts
	output        []outItem
	outSeq        int64
	mainDone      bool
	mainRet       int64
	mainTime      int64
	trap          error
	nEvents       int64
	maxEvents     int64 // per-shard backstop mirror of the global event budget
	liveFibers    int64
	maxFiberInstr int64
	msgFree       *msg            // freelist of message records (see getMsg/putMsg)
	fiberFree     *fiber          // freelist of fiber records (see getFiber/recycleFiber)
	scratch       []int64         // EU scratch for call arguments / block payloads
	prof          *profile.Data   // non-nil when prog.Profiled
	tr            *trace.Recorder // nil: tracing disabled (the common case)
	ms            *simMetrics     // nil: live telemetry disabled (see SetMetrics)

	// Cross-shard buffers (sharded mode only; empty in legacy mode).
	outbox       []mail
	foreignDones []doneRec

	// Coordinator bookkeeping (sharded mode only; see runSharded). head
	// caches events[0].time while the shard sits in the coordinator's
	// head-indexed heap at position hpos (-1 when absent); barInstr /
	// barEvents / barLive snapshot the running totals a window started from,
	// so the coordinator can fold post-window deltas into its incremental
	// machine-wide sums; mailStamp dedupes the round's mail receivers.
	head      int64
	hpos      int
	barInstr  int64
	barEvents int64
	barLive   int64
	mailStamp int64

	// Run limits (see limits.go).
	fuel           int64 // total EU instruction budget (shared across shards)
	othersInstr    int64 // other shards' instruction counts as of the last barrier
	nextLimitCheck int64 // next Instructions value at which to run limitCheck
	wallLimit      time.Duration
	wallDeadline   time.Time
	ctx            context.Context // nil: cancellation disabled (see SetContext)
	lastTime       int64           // last dispatched event time (for limit messages)
	parkedHead     *fiber          // intrusive list of fibers that have blocked

	// Fault injection + reliable messaging (see fault.go); all nil/zero
	// when cfg.Faults is nil.
	flt        *FaultConfig
	rngState   uint64
	nextTxn    uint64
	txns       map[uint64]*txn     // open transactions by sequence number
	seen       map[uint64]svcCache // receiver-side serviced sequence numbers
	linkNext   map[uint32]uint64   // sender-side next request lseq per directed link
	linkExpect map[uint32]uint64   // receiver-side next lseq to service per directed link
	linkHold   map[linkPos]*msg    // out-of-order requests parked until the gap fills
	rtt        map[uint32]*rttEst  // per-link EWMA RTT estimator (see fault.go)
	winOpen    map[uint32]int      // per-link in-flight transaction count
	winQ       map[uint32][]*txn   // per-link transactions awaiting a window slot
	fstats     *FaultStats
}

// Machine is a loaded simulator instance: the shared topology plus one
// event-loop shard per node (or a single shard running the classic
// sequential loop when Config.SimWorkers is zero).
type Machine struct {
	cfg       Config
	prog      *threaded.Program
	nodes     []*node
	sh        []*shard
	lookahead int64 // conservative lookahead L (sharded mode; = cfg.NetLatency)
	workers   int   // worker goroutines driving shard windows (sharded mode)
	wallLimit time.Duration
	ctx       context.Context  // nil: cancellation disabled
	tr        *trace.Recorder  // user-facing recorder (nil: tracing off)
	sampler   *metrics.Sampler // user-facing sampler (nil: telemetry off)
	gNext     int64            // next merged sampling boundary (sharded mode)
	gLast     int64            // time of the last merged sample (-1 before any)
}

// New loads a threaded program onto a fresh machine.
func New(prog *threaded.Program, cfg Config) *Machine {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1
	}
	m := &Machine{cfg: cfg, prog: prog, gLast: -1}
	for i := 0; i < cfg.Nodes; i++ {
		maxWords := cfg.MaxNodeWords
		if maxWords == 0 {
			maxWords = 16 << 20
		}
		n := &node{id: i, maxWords: maxWords,
			netLast: make([]int64, cfg.Nodes),
			ready:   make([]*fiber, 0, 16),
			pending: make(map[int64]int), waiters: make(map[int64][]*fiber)}
		m.nodes = append(m.nodes, n)
	}
	// Global segment at the bottom of node 0, with constant initializers
	// applied at load time.
	m.nodes[0].allocWords(prog.GlobalWords + 1)
	for _, iv := range prog.GlobalInit {
		m.nodes[0].mem[iv[0]] = iv[1]
	}
	// Sharded execution needs at least one nanosecond of wire latency for
	// the conservative lookahead bound, and more than one node to shard;
	// otherwise fall back to the sequential loop regardless of SimWorkers.
	if cfg.SimWorkers > 0 && cfg.Nodes > 1 && cfg.NetLatency >= 1 {
		m.lookahead = cfg.NetLatency
		m.workers = min(cfg.SimWorkers, cfg.Nodes)
		for i := 0; i < cfg.Nodes; i++ {
			m.sh = append(m.sh, m.newShard(i, false))
		}
	} else {
		m.sh = []*shard{m.newShard(0, true)}
	}
	for _, s := range m.sh {
		if s.single {
			s.peers = make([]*shard, cfg.Nodes)
			for i := range s.peers {
				s.peers[i] = s
			}
		} else {
			s.peers = m.sh
		}
	}
	return m
}

// newShard builds one event-loop shard. Shard 0's RNG stream matches the
// historical single-loop stream exactly; other shards mix their id in.
func (m *Machine) newShard(id int, single bool) *shard {
	cfg := m.cfg
	// A sharded loop holds one node's events (a handful at a time), a legacy
	// loop the whole machine's — size the queue and scratch accordingly, or
	// a 1024-shard machine pays ~12MB of empty queue capacity per run.
	qcap, scap := 256, 64
	if !single {
		qcap, scap = 8, 16
	}
	s := &shard{id: id, single: single, cfg: cfg, prog: m.prog, nodes: m.nodes,
		maxFiberInstr: cfg.MaxFiberInstr,
		events:        make(eventQ, 0, qcap), scratch: make([]int64, 0, scap)}
	if s.maxFiberInstr == 0 {
		s.maxFiberInstr = 2_000_000_000
	}
	s.fuel = cfg.Fuel
	if s.fuel <= 0 {
		s.fuel = math.MaxInt64
	}
	s.nextLimitCheck = limitCheckInterval
	if !single {
		// Keep per-shard streams disjoint: (time, seq) ties and output
		// ordering are resolved per shard, so each shard gets its own
		// deterministic id space for fibers, output and txn sequences.
		s.outSeq = int64(id) << 40
	}
	if cfg.Faults != nil {
		s.flt = cfg.Faults
		// Mix the seed so Seed 0 still yields a well-distributed stream.
		// Sharded loops draw from per-shard streams (golden-ratio offset per
		// id); shard 0 keeps the historical stream.
		s.rngState = (cfg.Faults.Seed + uint64(id)*0x9E3779B97F4A7C15) ^ 0x6C62272E07BB0142
		s.txns = make(map[uint64]*txn)
		s.seen = make(map[uint64]svcCache)
		s.linkNext = make(map[uint32]uint64)
		s.linkExpect = make(map[uint32]uint64)
		s.linkHold = make(map[linkPos]*msg)
		s.rtt = make(map[uint32]*rttEst)
		s.winOpen = make(map[uint32]int)
		s.winQ = make(map[uint32][]*txn)
		s.fstats = &FaultStats{}
	}
	if m.prog.Profiled {
		s.prof = profile.New()
	}
	return s
}

// SetTrace attaches an event recorder to the machine (call before Run; nil
// detaches). Tracing is purely observational: the recorder sees message
// lifecycles and busy intervals but never alters costs or scheduling, so a
// traced run's Result is bit-identical to an untraced one. Returns m for
// chaining.
func (m *Machine) SetTrace(r *trace.Recorder) *Machine {
	m.tr = r
	r.SetNodes(len(m.nodes))
	if len(m.sh) == 1 {
		m.sh[0].tr = r
		return m
	}
	// Sharded mode: each shard records into a private recorder whose content
	// depends only on that shard's deterministic event sequence; the
	// coordinator merges them in shard order after Run (see mergeTrace).
	for _, s := range m.sh {
		if r == nil {
			s.tr = nil
		} else {
			s.tr = trace.NewRecorder(len(m.nodes))
		}
	}
	return m
}

func (m *shard) schedule(t int64, kind eventKind, nodeID int, g *msg) {
	m.seq++
	m.events.push(event{time: t, seq: m.seq, kind: kind, node: nodeID, g: g})
}

// dispatch executes one popped event.
func (m *shard) dispatch(ev event) {
	if ev.g != nil {
		m.msgAdvance(ev.g, ev.time)
		return
	}
	if ev.kind == evRetry {
		m.retryFire(ev.tx, ev.time)
		return
	}
	m.runEU(m.nodes[ev.node], ev.time)
}

// trapf stops the simulation with an error.
func (m *shard) trapf(format string, args ...any) {
	if m.trap == nil {
		m.trap = fmt.Errorf("earthsim: %s", fmt.Sprintf(format, args...))
	}
}

// Run executes the program's main function on node 0 and simulates until
// completion (or deadlock/trap).
func (m *Machine) Run() (*Result, error) {
	maxEvents := m.cfg.MaxEvents
	if maxEvents == 0 {
		maxEvents = 500_000_000
	}
	if len(m.sh) > 1 {
		return m.runSharded(maxEvents)
	}
	return m.runLegacy(maxEvents)
}

// runLegacy is the historical sequential event loop: one shard owns every
// node and events dispatch in global (time, seq) order. Byte-for-byte
// behaviour (Result, trace, series, allocation profile) is pinned by the
// zero-cost and golden tests, so this path changes only with great care.
func (m *Machine) runLegacy(maxEvents int64) (*Result, error) {
	s := m.sh[0]
	s.wallLimit = m.wallLimit
	if s.wallLimit > 0 {
		s.wallDeadline = time.Now().Add(s.wallLimit)
	}
	s.ctx = m.ctx
	main := s.newFiber(0, m.prog.Main, nil, replyRoute{kind: 0})
	s.enqueueReady(m.nodes[0], main, 0)

	for len(s.events) > 0 {
		if s.trap != nil {
			return nil, s.trap
		}
		s.nEvents++
		if s.nEvents > maxEvents {
			return nil, fmt.Errorf("earthsim: %w: event budget exceeded (%d events, t=%dns) — livelock? %s%s",
				ErrFuelExhausted, s.nEvents, s.lastTime, s.fiberStates(), s.blockedReport())
		}
		if s.wallLimit > 0 && s.nEvents&4095 == 0 && time.Now().After(s.wallDeadline) {
			return nil, fmt.Errorf("earthsim: %w: host wall clock exceeded %s (t=%dns, %d events)",
				ErrDeadline, s.wallLimit, s.lastTime, s.nEvents)
		}
		if s.ctx != nil && s.nEvents&4095 == 0 {
			if s.ctxCheck(); s.trap != nil {
				return nil, s.trap
			}
		}
		ev := s.events.pop()
		if s.ms != nil {
			s.sampleTick(ev.time)
		}
		s.lastTime = ev.time
		s.dispatch(ev)
		if s.mainDone && s.liveFibers == 0 {
			break
		}
	}
	// Close the time series with one sample at the end of activity, so short
	// runs (under one interval) still record something and the final state is
	// always visible. Skipped when the last boundary sample already covers it.
	if s.ms != nil && s.lastTime > s.ms.last {
		s.takeSample(s.lastTime)
	}
	if s.trap != nil {
		return nil, s.trap
	}
	if !s.mainDone {
		return nil, fmt.Errorf("earthsim: %w — event queue drained with main incomplete (%d live fibers)%s",
			ErrDeadlock, s.liveFibers, s.blockedReport())
	}
	res := &Result{Time: s.mainTime, Counts: s.counts, Events: s.nEvents,
		Output: renderOutput(s.output), MainRet: s.mainRet}
	if s.prof != nil {
		s.prof.Runs = 1
		res.Profile = s.prof
	}
	if s.fstats != nil {
		res.Faults = s.fstats
	}
	return res, nil
}

// renderOutput merges print records into the final program output. The sort
// is stable across execution strategies: time first, then the sequence tag
// (per-shard tags embed the shard id in the high bits, so equal-time prints
// from different nodes order by owning shard).
func renderOutput(items []outItem) string {
	sort.Slice(items, func(i, j int) bool {
		if items[i].time != items[j].time {
			return items[i].time < items[j].time
		}
		return items[i].seq < items[j].seq
	})
	var b strings.Builder
	for _, o := range items {
		b.WriteString(o.text)
	}
	return b.String()
}

// fiberID tags a fiber ordinal with the owning shard so ids stay unique
// machine-wide. Legacy mode (shard 0, single) keeps the historical plain
// ordinals.
func (m *shard) fiberID(ordinal int64) int64 {
	if m.single {
		return ordinal
	}
	return int64(m.id)<<32 | ordinal
}

// getFiber takes a fiber record from the shard freelist (or allocates one)
// and resets the state a previous life may have left behind. The park-list
// linkage is deliberately preserved — see fiber.parkListed.
func (m *shard) getFiber() *fiber {
	f := m.fiberFree
	if f == nil {
		return &fiber{}
	}
	m.fiberFree = f.freeNext
	f.freeNext = nil
	f.pc = 0
	f.stack = f.stack[:0]
	f.waitFence = false
	f.waitJoin = false
	f.outstanding = 0
	f.children = 0
	f.done = false
	f.ninstr = 0
	return f
}

// recycleFiber returns a finished fiber's record to the freelist. Only safe
// when nothing can reach the fiber again: it must be done, off the ready
// queue (it just ran), with no outstanding fills or unacked writes (an
// in-flight ack still references the record), no waiters (a done fiber is
// never blocked), and no children still due to report completion into its
// frame.
func (m *shard) recycleFiber(f *fiber) {
	if f.children != 0 || f.outstanding != 0 || len(f.pending) != 0 {
		return
	}
	f.freeNext = m.fiberFree
	m.fiberFree = f
}

// newFiber creates a fiber with a fresh frame and copies args into the
// parameter slots.
func (m *shard) newFiber(nodeID int, code *threaded.FnCode, args []int64, route replyRoute) *fiber {
	n := m.nodes[nodeID]
	base := n.allocFrame(code.NSlots)
	if base < 0 {
		m.trapf("node %d out of memory allocating a %d-word frame for %s",
			nodeID, code.NSlots, code.Name)
		base = 0
	}
	f := m.getFiber()
	f.node, f.code, f.base, f.size = n, code, base, code.NSlots
	f.waitSlot, f.route = -1, route
	m.nextFiber++
	f.id = m.fiberID(m.nextFiber)
	m.liveFibers++
	for i, a := range args {
		if i < len(code.Params) {
			n.mem[base+int64(code.Params[i])] = a
		}
	}
	return f
}

// newSharedFiber creates a fiber sharing an existing frame (parallel arm).
func (m *shard) newSharedFiber(nodeID int, code *threaded.FnCode, base int64, route replyRoute) *fiber {
	f := m.getFiber()
	f.node, f.code, f.base, f.size = m.nodes[nodeID], code, base, code.NSlots
	f.waitSlot, f.route = -1, route
	m.nextFiber++
	f.id = m.fiberID(m.nextFiber)
	m.liveFibers++
	return f
}

func (m *shard) enqueueReady(n *node, f *fiber, t int64) {
	n.ready = append(n.ready, f)
	m.schedule(t, evEURun, n.id, nil)
}

// fiberStates summarizes runnable fibers for livelock diagnostics.
func (m *shard) fiberStates() string {
	var b strings.Builder
	for _, n := range m.nodes {
		for _, f := range n.ready[n.readyAt:] {
			fmt.Fprintf(&b, " [node%d ready %s@%d]", n.id, f.code.Name, f.pc)
		}
	}
	return b.String()
}
