package earthsim

import (
	"fmt"
	"reflect"
	"sort"
	"strconv"
	"strings"
)

// Set assigns one named cost parameter (an int64 Config field, matched
// case-insensitively) to val. It rejects unknown names and the Nodes field,
// which is owned by the run configuration.
func (c *Config) Set(name string, val int64) error {
	v := reflect.ValueOf(c).Elem()
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if f.Type.Kind() != reflect.Int64 || !strings.EqualFold(f.Name, name) {
			continue
		}
		if val < 0 {
			return fmt.Errorf("earthsim: %s must be non-negative (got %d)", f.Name, val)
		}
		v.Field(i).SetInt(val)
		return nil
	}
	return fmt.Errorf("earthsim: unknown cost parameter %q (see earthsim.ConfigParams)", name)
}

// ConfigParams lists the settable cost-parameter names in declaration
// order.
func ConfigParams() []string {
	t := reflect.TypeOf(Config{})
	var names []string
	for i := 0; i < t.NumField(); i++ {
		if t.Field(i).Type.Kind() == reflect.Int64 {
			names = append(names, t.Field(i).Name)
		}
	}
	sort.Strings(names)
	return names
}

// ParseOverrides builds a cost model from the calibrated defaults plus a
// comma-separated "Name=value" spec (e.g. "NetLatency=2500,SUService=800"),
// the format of the earthrun/paperbench -cost flag. An empty spec returns
// nil (no override).
func ParseOverrides(spec string) (*Config, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	cfg := DefaultConfig(1)
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		name, valStr, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("earthsim: bad cost override %q (want Name=value)", kv)
		}
		val, err := strconv.ParseInt(strings.TrimSpace(valStr), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("earthsim: bad cost override %q: %v", kv, err)
		}
		if err := cfg.Set(strings.TrimSpace(name), val); err != nil {
			return nil, err
		}
	}
	return &cfg, nil
}
