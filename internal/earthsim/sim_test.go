package earthsim_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/earthsim"
)

func run(t *testing.T, src string, nodes int, optimize bool) *earthsim.Result {
	t.Helper()
	p := core.NewPipeline(core.Options{Optimize: optimize})
	u, err := p.Compile("t.ec", src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(u, core.RunConfig{Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func runErr(t *testing.T, src string, nodes int) error {
	t.Helper()
	p := core.NewPipeline(core.Options{})
	u, err := p.Compile("t.ec", src)
	if err != nil {
		return err
	}
	_, err = p.Run(u, core.RunConfig{Nodes: nodes})
	return err
}

func TestArithmeticSemantics(t *testing.T) {
	res := run(t, `
int main() {
	int a;
	double d;
	a = (7 * 3 - 1) / 2 % 7;     // 20/2=10, 10%7=3
	d = 1.5 * 4.0 + dbl(a);      // 9.0
	a = a + trunc(d) + (1 << 4) + (65 >> 2) + (6 & 3) + (6 | 1) + (6 ^ 3);
	// 3 + 9 + 16 + 16 + 2 + 7 + 5 = 58
	print_int(a);
	return a;
}
`, 1, false)
	if res.MainRet != 58 {
		t.Errorf("got %d want 58 (output %q)", res.MainRet, res.Output)
	}
}

func TestFloatComparisons(t *testing.T) {
	res := run(t, `
int main() {
	double a;
	double b;
	int r;
	a = 1.5;
	b = 2.5;
	r = 0;
	if (a < b) r = r + 1;
	if (b >= a) r = r + 2;
	if (a == 1.5) r = r + 4;
	if (a != b) r = r + 8;
	if (sqrt(16.0) == 4.0) r = r + 16;
	if (fabs(0.0 - 3.0) == 3.0) r = r + 32;
	return r;
}
`, 1, false)
	if res.MainRet != 63 {
		t.Errorf("got %d want 63", res.MainRet)
	}
}

func TestDivisionByZeroTraps(t *testing.T) {
	err := runErr(t, `
int main() {
	int x;
	int y;
	x = 1;
	y = 0;
	return x / y;
}
`, 1)
	if err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Errorf("expected a division-by-zero trap, got %v", err)
	}
}

func TestNullDereferenceTraps(t *testing.T) {
	err := runErr(t, `
struct P { int a; };
int main() {
	P *p;
	p = NULL;
	return p->a;
}
`, 1)
	if err == nil || !strings.Contains(err.Error(), "null") {
		t.Errorf("expected a null-pointer trap, got %v", err)
	}
}

func TestRecursionAndCallStack(t *testing.T) {
	res := run(t, `
int fib(int n) {
	if (n < 2) return n;
	return fib(n - 1) + fib(n - 2);
}
int main() { return fib(15); }
`, 1, false)
	if res.MainRet != 610 {
		t.Errorf("fib(15) = %d, want 610", res.MainRet)
	}
}

func TestDeterminism(t *testing.T) {
	src := `
struct C { int v; struct C *next; };
int main() {
	shared int total;
	C *head;
	C *p;
	int i;
	head = NULL;
	writeto(&total, 0);
	for (i = 0; i < 30; i++) {
		p = alloc_on(C, i % num_nodes());
		p->v = i;
		p->next = head;
		head = p;
	}
	forall (p = head; p != NULL; p = p->next) {
		addto(&total, p->v);
	}
	return valueof(&total);
}
`
	a := run(t, src, 4, true)
	b := run(t, src, 4, true)
	if a.Time != b.Time || a.MainRet != b.MainRet ||
		a.Counts != b.Counts {
		t.Errorf("simulation is not deterministic: %v/%v vs %v/%v",
			a.Time, a.MainRet, b.Time, b.MainRet)
	}
}

func TestRemoteOpsCostMoreThanLocal(t *testing.T) {
	src := `
struct P { int a; };
int main() {
	P *p;
	int i;
	int s;
	p = alloc_on(P, num_nodes() - 1);
	p->a = 3;
	s = 0;
	for (i = 0; i < 50; i++) s = s + p->a;
	return s;
}
`
	local := run(t, src, 1, false)
	remote := run(t, src, 2, false)
	if local.MainRet != remote.MainRet {
		t.Fatalf("results differ: %d vs %d", local.MainRet, remote.MainRet)
	}
	if remote.Time <= local.Time {
		t.Errorf("remote run (%d ns) should cost more than the 1-node run (%d ns)",
			remote.Time, local.Time)
	}
	if remote.Counts.RemoteReads == 0 {
		t.Error("2-node run should issue remote reads")
	}
	if local.Counts.RemoteReads != 0 {
		t.Error("1-node run should have no remote reads")
	}
}

func TestSharedAtomicityUnderContention(t *testing.T) {
	// 4 nodes x 25 concurrent increments must not lose updates.
	res := run(t, `
struct W { int id; struct W *next; };
int main() {
	shared int c;
	W *head;
	W *p;
	int i;
	writeto(&c, 0);
	head = NULL;
	for (i = 0; i < 100; i++) {
		p = alloc_on(W, i % num_nodes());
		p->next = head;
		head = p;
	}
	forall (p = head; p != NULL; p = p->next) {
		addto(&c, 1);
	}
	return valueof(&c);
}
`, 4, false)
	if res.MainRet != 100 {
		t.Errorf("lost shared updates: got %d want 100", res.MainRet)
	}
}

func TestParSeqJoinSemantics(t *testing.T) {
	res := run(t, `
int slowsum(int n) {
	int s;
	int i;
	s = 0;
	for (i = 0; i < n; i++) s = s + i;
	return s;
}
int main() {
	int a;
	int b;
	int c;
	{^
		a = slowsum(10);
		b = slowsum(20);
		c = slowsum(30);
	^}
	return a + b + c;
}
`, 2, false)
	want := int64(45 + 190 + 435)
	if res.MainRet != want {
		t.Errorf("par-seq join: got %d want %d", res.MainRet, want)
	}
}

func TestPlacedCallOnRemoteNode(t *testing.T) {
	res := run(t, `
int whereami() { return my_node(); }
int main() {
	int here;
	int there;
	here = whereami();
	there = whereami()@ON(1);
	return here * 10 + there;
}
`, 2, false)
	if res.MainRet != 1 {
		t.Errorf("placed call should run on node 1: got %d want 1", res.MainRet)
	}
}

func TestOwnerOf(t *testing.T) {
	res := run(t, `
struct P { int a; };
int main() {
	P *p;
	P *q;
	p = alloc(P);
	q = alloc_on(P, 1);
	return owner_of(p) * 10 + owner_of(q);
}
`, 2, false)
	if res.MainRet != 1 {
		t.Errorf("owner_of: got %d want 1", res.MainRet)
	}
}

func TestSequentialModeMatchesParallel(t *testing.T) {
	src := `
struct N { int v; struct N *next; };
int main() {
	N *h;
	N *p;
	int i;
	int s;
	h = NULL;
	for (i = 0; i < 10; i++) {
		p = alloc(N);
		p->v = i * i;
		p->next = h;
		h = p;
	}
	s = 0;
	p = h;
	while (p != NULL) { s = s + p->v; p = p->next; }
	print_int(s);
	return s;
}
`
	p := core.NewPipeline(core.Options{})
	u, err := p.Compile("t.ec", src)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := p.Run(u, core.RunConfig{Nodes: 1, Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	par, err := p.Run(u, core.RunConfig{Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Output != par.Output {
		t.Errorf("outputs differ: %q vs %q", seq.Output, par.Output)
	}
	if seq.Time > par.Time {
		t.Errorf("sequential build (%d) should not be slower than the EARTH build (%d)",
			seq.Time, par.Time)
	}
}

func TestInfiniteLoopTrapped(t *testing.T) {
	cfg := earthsim.DefaultConfig(1)
	cfg.MaxFiberInstr = 10000
	p := core.NewPipeline(core.Options{})
	u, err := p.Compile("t.ec", `int main() { int x; x = 0; while (x == 0) { } return x; }`)
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.Run(u, core.RunConfig{Nodes: 1, Machine: &cfg})
	if err == nil || !strings.Contains(err.Error(), "runaway") {
		t.Errorf("expected a runaway trap, got %v", err)
	}
}

func TestGlobalVariables(t *testing.T) {
	res := run(t, `
int limit = 5;
int main() {
	int i;
	int s;
	s = 0;
	for (i = 0; i < limit; i++) s = s + 2;
	return s;
}
`, 1, false)
	if res.MainRet != 10 {
		t.Errorf("global read: got %d want 10", res.MainRet)
	}
}

func TestPrintOrdering(t *testing.T) {
	res := run(t, `
int main() {
	print_int(1);
	print_int(2);
	print_double(2.5);
	print_str("x\n");
	print_char('y');
	print_char('\n');
	return 0;
}
`, 1, false)
	want := "1\n2\n2.500000\nx\ny\n"
	if res.Output != want {
		t.Errorf("output %q want %q", res.Output, want)
	}
}

func TestArraysLocalStorage(t *testing.T) {
	res := run(t, `
int main() {
	int buf[8];
	int i;
	int s;
	for (i = 0; i < 8; i++) buf[i] = i * i;
	s = 0;
	for (i = 0; i < 8; i++) s = s + buf[i];
	return s;
}
`, 1, false)
	if res.MainRet != 140 {
		t.Errorf("array sum: got %d want 140", res.MainRet)
	}
}

func TestArrayIndexOutOfRangeTraps(t *testing.T) {
	err := runErr(t, `
int main() {
	int buf[4];
	int i;
	i = 100;
	buf[i] = 1;
	return 0;
}
`, 1)
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("expected an index trap, got %v", err)
	}
}

// TestMemoryBudgetTrapped: runaway guest allocation is trapped instead of
// exhausting the host.
func TestMemoryBudgetTrapped(t *testing.T) {
	cfg := earthsim.DefaultConfig(1)
	cfg.MaxNodeWords = 4096
	cfg.MaxFiberInstr = 50_000_000
	p := core.NewPipeline(core.Options{})
	u, err := p.Compile("t.ec", `
struct Blob { int a; int b; int c; int d; };
int main() {
	Blob *p;
	int i;
	i = 0;
	while (i >= 0) {
		p = alloc(Blob);
		p->a = i;
		i = i + 1;
	}
	return 0;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.Run(u, core.RunConfig{Nodes: 1, Machine: &cfg})
	if err == nil || !strings.Contains(err.Error(), "out of memory") {
		t.Errorf("expected an out-of-memory trap, got %v", err)
	}
}

// TestDeepRecursionTrapped: unbounded recursion exhausts the frame budget
// and traps.
func TestDeepRecursionTrapped(t *testing.T) {
	cfg := earthsim.DefaultConfig(1)
	cfg.MaxNodeWords = 8192
	cfg.MaxFiberInstr = 50_000_000
	p := core.NewPipeline(core.Options{})
	u, err := p.Compile("t.ec", `
int down(int n) { return down(n + 1); }
int main() { return down(0); }
`)
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.Run(u, core.RunConfig{Nodes: 1, Machine: &cfg})
	if err == nil || !strings.Contains(err.Error(), "out of memory") {
		t.Errorf("expected an out-of-memory trap, got %v", err)
	}
}
