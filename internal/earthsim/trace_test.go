package earthsim_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/core"
	"repro/internal/olden"
	"repro/internal/trace"
)

// oldenQuick is the fixed benchmark the trace tests run: tsp at a reduced
// size, optimized, on 4 nodes — a real workload with every message class
// except shared in play, yet fast enough for the race-enabled gate.
func oldenQuick() (name, src string) {
	b := olden.ByName("tsp")
	p := b.DefaultParams
	p.Size = 32
	return "tsp.ec", b.Source(p)
}

// TestTracingPreservesResult is the trace subsystem's core contract: the
// Recorder is purely observational, so attaching one must not perturb the
// simulation in any way. A traced run's Result (Time, Counts, Output,
// MainRet, Profile) must be bit-identical to the untraced run's.
func TestTracingPreservesResult(t *testing.T) {
	name, src := oldenQuick()
	plain := core.NewPipeline(core.Options{Optimize: true})
	u, err := plain.Compile(name, src)
	if err != nil {
		t.Fatal(err)
	}
	rc := core.RunConfig{Nodes: 4}
	want, err := plain.Run(u, rc)
	if err != nil {
		t.Fatal(err)
	}

	rec := trace.NewRecorder(4)
	traced := core.NewPipeline(core.Options{Optimize: true, Trace: rec})
	got, err := traced.Run(u, rc)
	if err != nil {
		t.Fatal(err)
	}

	if got.Time != want.Time {
		t.Errorf("tracing changed Time: %d vs %d", got.Time, want.Time)
	}
	if got.Counts != want.Counts {
		t.Errorf("tracing changed Counts:\n traced: %v\nuntraced: %v", got.Counts, want.Counts)
	}
	if got.Output != want.Output {
		t.Errorf("tracing changed Output: %q vs %q", got.Output, want.Output)
	}
	if got.MainRet != want.MainRet {
		t.Errorf("tracing changed MainRet: %d vs %d", got.MainRet, want.MainRet)
	}
	if got.Profile != nil || want.Profile != nil {
		t.Errorf("unprofiled runs should carry no profile (traced %v, untraced %v)",
			got.Profile, want.Profile)
	}

	// And the recording must actually contain the run.
	if len(rec.Msgs()) == 0 || len(rec.Spans()) == 0 {
		t.Fatalf("recorder captured nothing: %d msgs, %d spans",
			len(rec.Msgs()), len(rec.Spans()))
	}
	if rec.Horizon() > want.Time {
		t.Errorf("trace horizon %d ns beyond simulated end %d ns", rec.Horizon(), want.Time)
	}
	sites := 0
	for _, m := range rec.Msgs() {
		if m.Site != "" {
			sites++
		}
	}
	if sites == 0 {
		t.Error("no message carries a site attribution")
	}
}

// traceOnce does a full compile+traced-run cycle from scratch and returns
// the Chrome export bytes.
func traceOnce(t *testing.T) []byte {
	t.Helper()
	name, src := oldenQuick()
	rec := trace.NewRecorder(4)
	p := core.NewPipeline(core.Options{Optimize: true, Trace: rec})
	u, err := p.Compile(name, src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(u, core.RunConfig{Nodes: 4}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestChromeTraceGolden: the Chrome export of a fixed benchmark run is
// byte-stable across two independent compile+run cycles (the simulation is
// deterministic and the exporter adds no nondeterminism of its own), and is
// well-formed trace_event JSON.
func TestChromeTraceGolden(t *testing.T) {
	a := traceOnce(t)
	b := traceOnce(t)
	if !bytes.Equal(a, b) {
		t.Fatalf("Chrome trace is not byte-stable across identical runs (%d vs %d bytes)",
			len(a), len(b))
	}

	var doc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(a, &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q, want \"ns\"", doc.DisplayTimeUnit)
	}
	// 4 nodes of metadata plus real events.
	if len(doc.TraceEvents) <= 20 {
		t.Errorf("suspiciously empty trace: %d events", len(doc.TraceEvents))
	}
	cats := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if c, ok := ev["cat"].(string); ok {
			cats[c] = true
		}
	}
	for _, want := range []string{"eu", "su", "net", "msg"} {
		if !cats[want] {
			t.Errorf("no %q events in the export", want)
		}
	}
}

// TestTraceSummaryDeterministic: the text summary of two identical traced
// runs is identical.
func TestTraceSummaryDeterministic(t *testing.T) {
	runSummary := func() string {
		name, src := oldenQuick()
		rec := trace.NewRecorder(4)
		p := core.NewPipeline(core.Options{Optimize: true, Trace: rec})
		u, err := p.Compile(name, src)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Run(u, core.RunConfig{Nodes: 4}); err != nil {
			t.Fatal(err)
		}
		return rec.Summarize().String()
	}
	a, b := runSummary(), runSummary()
	if a != b {
		t.Error("trace summary differs across identical runs")
	}
}

// TestCompileStatsPopulated: a Stats-enabled pipeline attaches per-phase
// timings and selection counters to the unit; a plain pipeline does not.
func TestCompileStatsPopulated(t *testing.T) {
	name, src := oldenQuick()
	p := core.NewPipeline(core.Options{Optimize: true, Stats: true})
	u, err := p.Compile(name, src)
	if err != nil {
		t.Fatal(err)
	}
	st := u.Stats
	if st == nil {
		t.Fatal("Stats: true produced no CompileStats")
	}
	if len(st.Phases) == 0 || st.TotalNs() <= 0 {
		t.Errorf("no phase timings recorded: %+v", st.Phases)
	}
	seen := map[string]bool{}
	for _, ph := range st.Phases {
		seen[ph.Name] = true
	}
	for _, want := range []string{"parse", "sema", "commsel"} {
		if !seen[want] {
			t.Errorf("phase %q missing from %v", want, st.Phases)
		}
	}
	if st.CandidateReads == 0 || st.PipelinedReads+st.BlockedReads == 0 {
		t.Errorf("selection counters empty: %+v", *st)
	}

	plain, err := core.NewPipeline(core.Options{Optimize: true}).Compile(name, src)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Stats != nil {
		t.Error("plain pipeline attached CompileStats")
	}
}
