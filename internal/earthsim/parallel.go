package earthsim

// Sharded execution: one event-loop shard per simulated node, synchronized
// by conservative lookahead (a barrier-synchronous variant of the classic
// null-message protocol). The coordinator repeatedly:
//
//  1. delivers cross-shard mail buffered during the previous round, in
//     (sender shard id, send order) — a total order independent of how many
//     worker goroutines ran the windows;
//  2. computes T1 = min over shards of the local event-heap head and T2 =
//     the second such minimum;
//  3. grants every shard a window bound below which it may dispatch events
//     without seeing a message it has not received yet: messages generated
//     this round originate at times ≥ T1 and need the wire latency L to
//     arrive, so T1+L is safe for everyone; the shard holding T1 itself is
//     additionally safe up to min(T2+L, T1+2L) — nothing can reach it
//     earlier, neither directly from another shard (≥ T2+L) nor relayed off
//     its own sends (≥ T1+2L);
//  4. runs the active shards' windows on a worker pool (inline when
//     SimWorkers is 1) and barriers.
//
// Determinism: the bounds depend only on heap heads, mail delivery order is
// fixed, and each window is a sequential per-shard replay — so the division
// of windows among workers cannot alter any outcome, and the run is
// bit-identical (Result, trace, telemetry) across SimWorkers counts.
// Progress: the bound of the shard holding T1 strictly exceeds T1 (L ≥ 1),
// so every round dispatches at least one event.

import (
	"fmt"
	"math"
	"slices"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/profile"
)

// midMask extracts the shard-local trace message id from an encoded id; the
// owning shard id + 1 lives in the bits above (see encMid).
const midMask = int64(1)<<40 - 1

// encMid tags a shard-local trace message id with the owning shard so a
// reference that travels with the message — into another shard's spans,
// fault events, or completion path — can find its way back to the recorder
// that issued it. Legacy mode keeps plain ids; 0 stays "no message" (which
// also covers tracing disabled).
func (m *shard) encMid(local int64) int64 {
	if m.single || local == 0 {
		return local
	}
	return int64(m.id+1)<<40 | local
}

// msgDone routes a message-completion trace event to the recorder that owns
// the id: our own (decode and record now) or another shard's (defer to
// foreignDones, applied before the trace merge at Run end — Done is a single
// idempotent field write per message, so deferral cannot reorder anything).
func (m *shard) msgDone(mid, t int64) {
	if m.single {
		m.tr.MsgDone(mid, t)
		return
	}
	if mid == 0 {
		return
	}
	if int(mid>>40)-1 == m.id {
		m.tr.MsgDone(mid&midMask, t)
		return
	}
	m.foreignDones = append(m.foreignDones, doneRec{mid: mid, at: t})
}

// windowJob asks a worker to run one shard's window up to bound.
type windowJob struct {
	s     *shard
	bound int64
}

// runWindow dispatches the shard's local events strictly below bound,
// stopping early on a trap. Mirrors one slice of the legacy loop body; the
// global event budget and wall clock are enforced here as per-shard
// backstops (a runaway window must not outlive the barrier checks).
func (s *shard) runWindow(bound int64) {
	for len(s.events) > 0 && s.events[0].time < bound {
		if s.trap != nil {
			return
		}
		s.nEvents++
		if s.nEvents > s.maxEvents {
			s.trapw(ErrFuelExhausted, "event budget exceeded on shard %d (%d events, t=%dns) — livelock?%s",
				s.id, s.nEvents, s.lastTime, s.blockedReport())
			return
		}
		if s.wallLimit > 0 && s.nEvents&4095 == 0 && time.Now().After(s.wallDeadline) {
			s.trapw(ErrDeadline, "host wall clock exceeded %s (t=%dns, shard %d)",
				s.wallLimit, s.lastTime, s.id)
			return
		}
		if s.ctx != nil && s.nEvents&4095 == 0 {
			if s.ctxCheck(); s.trap != nil {
				return
			}
		}
		ev := s.events.pop()
		if s.ms != nil {
			s.sampleTick(ev.time)
		}
		s.lastTime = ev.time
		s.dispatch(ev)
	}
}

// satAdd is a+b saturating at MaxInt64 (an empty heap's head is the MaxInt64
// sentinel).
func satAdd(a, b int64) int64 {
	if a > math.MaxInt64-b {
		return math.MaxInt64
	}
	return a + b
}

// shardHeap is a binary min-heap of shards with non-empty event queues,
// keyed by (cached head event time, shard id) — the same total order the
// coordinator's old full scan used, so T1/T2/argmin are unchanged. Each
// shard caches its key in s.head and its position in s.hpos, making the
// per-round coordinator cost O(active shards · log S) instead of O(S).
type shardHeap struct {
	a []*shard
}

func heapLess(x, y *shard) bool {
	return x.head < y.head || (x.head == y.head && x.id < y.id)
}

func (h *shardHeap) len() int { return len(h.a) }

func (h *shardHeap) swap(i, j int) {
	h.a[i], h.a[j] = h.a[j], h.a[i]
	h.a[i].hpos, h.a[j].hpos = i, j
}

func (h *shardHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !heapLess(h.a[i], h.a[p]) {
			return
		}
		h.swap(i, p)
		i = p
	}
}

func (h *shardHeap) down(i int) {
	n := len(h.a)
	for {
		c := 2*i + 1
		if c >= n {
			return
		}
		if r := c + 1; r < n && heapLess(h.a[r], h.a[c]) {
			c = r
		}
		if !heapLess(h.a[c], h.a[i]) {
			return
		}
		h.swap(i, c)
		i = c
	}
}

// push inserts s; s.head must already hold its key.
func (h *shardHeap) push(s *shard) {
	s.hpos = len(h.a)
	h.a = append(h.a, s)
	h.up(s.hpos)
}

// pop removes and returns the minimum shard.
func (h *shardHeap) pop() *shard {
	s := h.a[0]
	last := len(h.a) - 1
	h.swap(0, last)
	h.a[last] = nil
	h.a = h.a[:last]
	if last > 0 {
		h.down(0)
	}
	s.hpos = -1
	return s
}

// fix restores heap order after the key at position i changed.
func (h *shardHeap) fix(i int) {
	h.up(i)
	h.down(i)
}

// refresh re-keys s from its event queue after mail arrived: fix its heap
// position, or insert it if its queue was empty before.
func (h *shardHeap) refresh(s *shard) {
	nh := s.events[0].time
	if s.hpos < 0 {
		s.head = nh
		h.push(s)
		return
	}
	if nh != s.head {
		s.head = nh
		h.fix(s.hpos)
	}
}

// runSharded is Machine.Run for the sharded engine. The round structure —
// barrier, T1/T2 bounds, windows, mail — is described in the package
// comment above; this implementation keeps every machine-wide quantity
// (head order, instruction/event/fiber totals) incrementally, touching only
// the round's active shards and mail receivers, so coordinator overhead
// scales with traffic rather than machine size.
func (m *Machine) runSharded(maxEvents int64) (*Result, error) {
	var deadline time.Time
	if m.wallLimit > 0 {
		deadline = time.Now().Add(m.wallLimit)
	}
	for _, s := range m.sh {
		s.maxEvents = maxEvents
		s.wallLimit = m.wallLimit
		s.wallDeadline = deadline
		s.ctx = m.ctx
		s.hpos = -1
	}
	s0 := m.sh[0]
	main := s0.newFiber(0, m.prog.Main, nil, replyRoute{kind: 0})
	s0.enqueueReady(m.nodes[0], main, 0)

	inline := m.workers <= 1
	var (
		jobs chan windowJob
		wg   sync.WaitGroup
	)
	if !inline {
		jobs = make(chan windowJob, len(m.sh))
		for w := 0; w < m.workers; w++ {
			go func() {
				for j := range jobs {
					j.s.runWindow(j.bound)
					wg.Done()
				}
			}()
		}
		defer close(jobs)
	}

	// Incremental machine-wide totals; windows fold their deltas in at each
	// barrier. Only shard 0 has any state yet (the main fiber), but summing
	// the loop keeps no assumptions.
	var totalInstr, totalEvents, live int64
	heads := shardHeap{a: make([]*shard, 0, len(m.sh))}
	for _, s := range m.sh {
		totalInstr += s.counts.Instructions
		totalEvents += s.nEvents
		live += s.liveFibers
		if len(s.events) > 0 {
			s.head = s.events[0].time
			heads.push(s)
		}
	}

	L := m.lookahead
	actives := make([]*shard, 0, len(m.sh))
	recv := make([]*shard, 0, 8)
	var round int64
	for {
		round++
		if s0.mainDone && live == 0 {
			break
		}
		if heads.len() == 0 {
			return m.fail(fmt.Errorf("earthsim: %w — event queues drained with main incomplete (%d live fibers)%s",
				ErrDeadlock, live, m.blockedReports()))
		}
		t1 := heads.a[0].head
		if totalEvents > maxEvents {
			return m.fail(fmt.Errorf("earthsim: %w: event budget exceeded (%d events, t=%dns) — livelock?%s",
				ErrFuelExhausted, totalEvents, t1, m.blockedReports()))
		}
		if m.wallLimit > 0 && time.Now().After(deadline) {
			return m.fail(fmt.Errorf("earthsim: %w: host wall clock exceeded %s (t=%dns, %d events)",
				ErrDeadline, m.wallLimit, t1, totalEvents))
		}
		if m.ctx != nil {
			select {
			case <-m.ctx.Done():
				return m.fail(fmt.Errorf("earthsim: %w: %v (t=%dns, %d events)",
					ErrCanceled, m.ctx.Err(), t1, totalEvents))
			default:
			}
		}
		if m.sampler != nil {
			m.mergeSamples(t1)
		}

		// Pop this round's active shards: argmin first (T2 is the next head
		// once it is out), then everyone below the shared bound T1+L. The
		// argmin's own bound may reach further — min(T2+L, T1+2L): nothing
		// can reach it earlier, neither directly from another shard (≥ T2+L)
		// nor relayed off its own sends (≥ T1+2L).
		boundOthers := satAdd(t1, L)

		// Single-active fast path. The second-smallest head is the lesser
		// root child (every other shard sits below one of them); when it
		// clears T1+L the argmin runs alone, its bound simplifies to T1+2L
		// (T2+L ≥ T1+2L here), and the pop/push, active-list, and sort
		// machinery all degenerate — run the window with the shard still in
		// the heap and re-key it in place. On nearest-neighbor workloads
		// almost every round takes this path.
		t2peek := int64(math.MaxInt64)
		if n := heads.len(); n > 1 {
			t2peek = heads.a[1].head
			if n > 2 && heads.a[2].head < t2peek {
				t2peek = heads.a[2].head
			}
		}
		if t2peek >= boundOthers {
			s := heads.a[0]
			s.othersInstr = totalInstr - s.counts.Instructions
			s.barInstr = s.counts.Instructions
			s.barEvents = s.nEvents
			s.barLive = s.liveFibers
			s.runWindow(satAdd(t1, 2*L))
			totalInstr += s.counts.Instructions - s.barInstr
			totalEvents += s.nEvents - s.barEvents
			live += s.liveFibers - s.barLive
			if s.trap != nil {
				return m.fail(s.trap)
			}
			recv = recv[:0]
			for i, o := range s.outbox {
				o.to.schedule(o.at, evNetArrive, o.node, o.g)
				if o.to.mailStamp != round {
					o.to.mailStamp = round
					recv = append(recv, o.to)
				}
				s.outbox[i] = mail{}
			}
			s.outbox = s.outbox[:0]
			if len(s.events) > 0 {
				s.head = s.events[0].time
				heads.fix(s.hpos)
			} else {
				heads.pop() // s is still the root: nothing above moved it
			}
			for _, r := range recv {
				heads.refresh(r)
			}
			continue
		}

		amin := heads.pop()
		t2 := int64(math.MaxInt64)
		if heads.len() > 0 {
			t2 = heads.a[0].head
		}
		boundMin := min(satAdd(t2, L), satAdd(t1, 2*L))
		actives = actives[:0]
		actives = append(actives, amin)
		for heads.len() > 0 && heads.a[0].head < boundOthers {
			actives = append(actives, heads.pop())
		}

		// Snapshot the totals each window starts from. othersInstr is set
		// for every active before any window runs, so the fuel view cannot
		// depend on how workers interleave windows.
		for _, s := range actives {
			s.othersInstr = totalInstr - s.counts.Instructions
			s.barInstr = s.counts.Instructions
			s.barEvents = s.nEvents
			s.barLive = s.liveFibers
		}

		if inline {
			for _, s := range actives {
				bound := boundOthers
				if s == amin {
					bound = boundMin
				}
				s.runWindow(bound)
			}
		} else {
			for _, s := range actives {
				bound := boundOthers
				if s == amin {
					bound = boundMin
				}
				wg.Add(1)
				jobs <- windowJob{s, bound}
			}
			wg.Wait()
		}

		// Barrier: surface the lowest-id trap, fold window deltas into the
		// running totals, then deliver mail in (sender shard id, send order)
		// and re-key every shard whose queue changed.
		var trapped *shard
		for _, s := range actives {
			if s.trap != nil && (trapped == nil || s.id < trapped.id) {
				trapped = s
			}
			totalInstr += s.counts.Instructions - s.barInstr
			totalEvents += s.nEvents - s.barEvents
			live += s.liveFibers - s.barLive
		}
		if trapped != nil {
			return m.fail(trapped.trap)
		}
		slices.SortFunc(actives, func(a, b *shard) int { return a.id - b.id })
		recv = recv[:0]
		for _, s := range actives {
			for i, o := range s.outbox {
				o.to.schedule(o.at, evNetArrive, o.node, o.g)
				if o.to.mailStamp != round {
					o.to.mailStamp = round
					recv = append(recv, o.to)
				}
				s.outbox[i] = mail{}
			}
			s.outbox = s.outbox[:0]
		}
		// Actives are out of the heap; reinsert the ones with events left
		// (their queues now include any mail from this round).
		for _, s := range actives {
			if len(s.events) > 0 {
				s.head = s.events[0].time
				heads.push(s)
			}
		}
		for _, r := range recv {
			heads.refresh(r)
		}
	}

	m.closeSamples()
	m.mergeTrace()
	return m.buildResult(), nil
}

// fail closes the telemetry series and folds the partial trace before
// surfacing a run error, so observers see everything up to the failure.
func (m *Machine) fail(err error) (*Result, error) {
	m.closeSamples()
	m.mergeTrace()
	return nil, err
}

// blockedReports concatenates every shard's blocked-fiber report.
func (m *Machine) blockedReports() string {
	var b strings.Builder
	for _, s := range m.sh {
		if r := s.blockedReport(); strings.HasPrefix(r, "; blocked") {
			b.WriteString(r)
		}
	}
	if b.Len() == 0 {
		return "; no blocked fibers recorded"
	}
	return b.String()
}

// closeSamples merges every whole sampling boundary the run reached and then
// closes the series with one sample at the end of activity, mirroring the
// legacy loop's closing sample. Safe on every exit path; no-op without a
// sampler.
func (m *Machine) closeSamples() {
	if m.sampler == nil || len(m.sh) < 2 {
		return
	}
	var tmax int64
	for _, s := range m.sh {
		tmax = max(tmax, s.lastTime)
	}
	m.mergeSamples(tmax)
	if tmax > m.gLast {
		m.mergeOne(tmax, true)
	}
}

// mergeOne builds and records the machine-wide sample at time t from one
// per-shard contribution each. With closing set the shards snapshot their
// final state at t; otherwise they flush any boundary ticks their own event
// flow has not reached.
func (m *Machine) mergeOne(t int64, closing bool) {
	sm := metrics.SimSample{Time: t, Nodes: make([]metrics.NodeSample, len(m.nodes))}
	for _, sh := range m.sh {
		if closing {
			sh.takeSample(t)
		} else {
			sh.flushTicksTo(t)
		}
		ss := &sh.ms.pend[sh.ms.pendAt]
		sh.ms.pendAt++
		sm.Instructions += ss.instructions
		sm.RemoteReads += ss.remoteReads
		sm.RemoteWrites += ss.remoteWrites
		sm.BlkMoves += ss.blkMoves
		sm.LiveFibers += ss.liveFibers
		sm.Retries += ss.retries
		sm.Spurious += ss.spurious
		sm.Drops += ss.drops
		sm.Dups += ss.dups
		sm.Stalls += ss.stalls
		sm.Nodes[sh.id] = ss.node
		// Shard i's out-links all carry keys with src=i, so appending in shard
		// order yields the same key-sorted order the legacy loop emits.
		sm.Links = append(sm.Links, ss.links...)
		if sh.ms.pendAt == len(sh.ms.pend) {
			sh.ms.pend = sh.ms.pend[:0]
			sh.ms.pendAt = 0
		}
	}
	m.gLast = t
	m.sampler.Record(sm)
}

// mergeTrace folds the per-shard recorders into the user's recorder, in
// shard order, renumbering message ids shard by shard. Deferred cross-shard
// completions are applied to their owning recorders first.
func (m *Machine) mergeTrace() {
	if m.tr == nil || len(m.sh) < 2 {
		return
	}
	for _, s := range m.sh {
		for _, d := range s.foreignDones {
			k := int(d.mid>>40) - 1
			m.sh[k].tr.MsgDone(d.mid&midMask, d.at)
		}
		s.foreignDones = s.foreignDones[:0]
	}
	off := make([]int64, len(m.sh)+1)
	for i, s := range m.sh {
		off[i+1] = off[i] + int64(s.tr.MsgCount())
	}
	mapRef := func(mid int64) int64 {
		if mid == 0 {
			return 0
		}
		return off[int(mid>>40)-1] + mid&midMask
	}
	for _, s := range m.sh {
		m.tr.Absorb(s.tr, mapRef)
	}
}

// buildResult sums the per-shard outcomes into the machine Result.
func (m *Machine) buildResult() *Result {
	s0 := m.sh[0]
	res := &Result{Time: s0.mainTime, MainRet: s0.mainRet}
	var out []outItem
	for _, s := range m.sh {
		c, d := &res.Counts, s.counts
		c.RemoteReads += d.RemoteReads
		c.RemoteWrites += d.RemoteWrites
		c.RemoteBlk += d.RemoteBlk
		c.LocalReads += d.LocalReads
		c.LocalWrites += d.LocalWrites
		c.LocalBlk += d.LocalBlk
		c.SharedOps += d.SharedOps
		c.RPCs += d.RPCs
		c.Spawns += d.Spawns
		c.BlkWords += d.BlkWords
		c.Instructions += d.Instructions
		c.Allocs += d.Allocs
		res.Events += s.nEvents
		out = append(out, s.output...)
	}
	res.Output = renderOutput(out)
	if m.prog.Profiled {
		p := profile.New()
		for _, s := range m.sh {
			p.Merge(s.prof)
		}
		p.Runs = 1
		res.Profile = p
	}
	if m.cfg.Faults != nil {
		fs := &FaultStats{}
		for _, s := range m.sh {
			fs.Drops += s.fstats.Drops
			fs.Dups += s.fstats.Dups
			fs.Delayed += s.fstats.Delayed
			fs.Stalls += s.fstats.Stalls
			fs.Retries += s.fstats.Retries
			fs.DupSuppressed += s.fstats.DupSuppressed
			fs.SpuriousRetries += s.fstats.SpuriousRetries
			fs.WindowQueued += s.fstats.WindowQueued
			for c := range fs.RetriesByClass {
				fs.RetriesByClass[c] += s.fstats.RetriesByClass[c]
			}
			fs.MaxAttempt = max(fs.MaxAttempt, s.fstats.MaxAttempt)
		}
		res.Faults = fs
	}
	return res
}
