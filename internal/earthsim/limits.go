package earthsim

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"
)

// Run limits. A guest program that loops forever, leaks fibers, or (under
// fault injection) stalls behind an undeliverable message must turn into a
// descriptive error, never a hang: Config.Fuel bounds total EU instructions,
// Config.MaxEvents bounds the event loop, and SetDeadline bounds host wall
// time. All three surface as errors matchable with errors.Is.
var (
	// ErrFuelExhausted reports that the run exceeded its instruction or
	// event budget (Config.Fuel / Config.MaxEvents).
	ErrFuelExhausted = errors.New("fuel exhausted")
	// ErrDeadline reports that the run exceeded its wall-clock deadline
	// (Machine.SetDeadline).
	ErrDeadline = errors.New("deadline exceeded")
	// ErrDeadlock reports that the event queue drained with main incomplete.
	ErrDeadlock = errors.New("deadlock")
	// ErrCanceled reports that the run's context (Machine.SetContext) was
	// cancelled — a client disconnect, a DELETE /jobs/{id} abort, or a
	// per-job wall deadline, as opposed to the simulated-time limits above.
	ErrCanceled = errors.New("run canceled")
)

// limitCheckInterval is how many EU instructions pass between fuel/deadline
// checks; it bounds the per-instruction cost of limiting to one compare.
const limitCheckInterval = 16384

// SetDeadline bounds the run's host wall-clock time (0 disables). Call
// before Run. Returns m for chaining.
func (m *Machine) SetDeadline(d time.Duration) *Machine {
	m.wallLimit = d
	return m
}

// SetContext attaches a cancellation context to the run (nil detaches, the
// default). The simulator polls it on the same cadence as the wall-clock
// deadline — every limitCheckInterval EU instructions and every 4096 events
// per shard, plus once per coordinator round in sharded mode — and stops
// with an error wrapping ErrCanceled. Unlike Fuel/SetDeadline this limit is
// external to simulated time: a client disconnect or a DELETE /jobs/{id}
// aborts a run that is making perfectly good simulated-time progress. Call
// before Run. Returns m for chaining.
func (m *Machine) SetContext(ctx context.Context) *Machine {
	m.ctx = ctx
	return m
}

// trapw stops the simulation with an error wrapping a sentinel.
func (m *shard) trapw(sentinel error, format string, args ...any) {
	if m.trap == nil {
		m.trap = fmt.Errorf("earthsim: %w: %s", sentinel, fmt.Sprintf(format, args...))
	}
}

// limitCheck runs every limitCheckInterval instructions (from execFiber's
// hot loop) and traps on an exhausted instruction budget or an expired
// wall-clock deadline.
func (m *shard) limitCheck() {
	m.nextLimitCheck += limitCheckInterval
	// othersInstr is the rest of the machine's instruction count as of the
	// last barrier (always zero in legacy mode), so the shared fuel budget
	// is enforced machine-wide with at most one barrier of slack.
	if m.othersInstr+m.counts.Instructions > m.fuel {
		m.trapw(ErrFuelExhausted, "%d EU instructions executed (fuel %d) — raise Config.Fuel / -fuel if the program is genuinely long-running%s",
			m.othersInstr+m.counts.Instructions, m.fuel, m.blockedReport())
		return
	}
	if m.wallLimit > 0 && time.Now().After(m.wallDeadline) {
		m.trapw(ErrDeadline, "host wall clock exceeded %s (t=%dns, %d instructions)",
			m.wallLimit, m.lastTime, m.counts.Instructions)
		return
	}
	m.ctxCheck()
}

// ctxCheck traps if the run's context has been cancelled. Free when no
// context is attached (the common case): one nil compare.
func (m *shard) ctxCheck() {
	if m.ctx == nil {
		return
	}
	select {
	case <-m.ctx.Done():
		m.trapw(ErrCanceled, "%v (t=%dns, %d instructions)",
			m.ctx.Err(), m.lastTime, m.counts.Instructions)
	default:
	}
}

// park records a fiber on the machine's blocked-fiber list the first time
// it blocks. The list is an intrusive singly-linked stack with lazy
// deletion — fibers are never removed, only skipped at report time — so
// parking stays allocation-free on the simulator hot path.
func (m *shard) park(f *fiber) {
	if f.parkListed {
		return
	}
	f.parkListed = true
	f.parkNext = m.parkedHead
	m.parkedHead = f
}

// blockedReport describes every currently-blocked fiber — which slot, fence
// or join it waits on, and how many fills/acks it still expects — so
// deadlocks and fault-induced stalls are debuggable from the error alone.
func (m *shard) blockedReport() string {
	const maxListed = 16
	var b strings.Builder
	count, omitted := 0, 0
	for f := m.parkedHead; f != nil; f = f.parkNext {
		if f.done {
			continue
		}
		var why string
		switch {
		case f.waitSlot >= 0:
			why = fmt.Sprintf("on frame slot %d (abs %d; %d fill(s) outstanding)",
				f.waitSlot-f.base, f.waitSlot, f.node.pending[f.waitSlot])
		case f.waitFence:
			why = fmt.Sprintf("on a fence (%d unacked write(s)/void call(s))", f.outstanding)
		case f.waitJoin:
			why = fmt.Sprintf("joining %d child fiber(s)", f.children)
		default:
			continue // parked once, since resumed
		}
		if count >= maxListed {
			omitted++
			continue
		}
		count++
		fmt.Fprintf(&b, "\n  fiber %d (%s@%d, node %d) blocked %s", f.id, f.code.Name, f.pc, f.node.id, why)
	}
	if count == 0 {
		return "; no blocked fibers recorded"
	}
	if omitted > 0 {
		fmt.Fprintf(&b, "\n  ... and %d more blocked fiber(s)", omitted)
	}
	return "; blocked fibers:" + b.String()
}
