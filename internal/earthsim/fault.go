package earthsim

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/trace"
)

// Fault injection and reliable messaging.
//
// Attaching a FaultConfig to Config.Faults switches the machine's transport
// from the idealized perfectly-reliable interconnect to a lossy one: each
// wire hop may be dropped, duplicated, or delayed, and each SU service may
// be preceded by a stall window, all decided by a machine-owned splitmix64
// PRNG seeded from the config. Because the PRNG is consulted in event-loop
// order — which the (time, seq) total order makes deterministic — identical
// seed + spec give bit-identical Results (including Time and FaultStats).
//
// To keep runs *correct* under loss, every split-phase message becomes a
// sequence-numbered transaction:
//
//	sender                       wire                  receiver SU
//	  proto (owned by txn) ──clone──> flight ──────────> service once,
//	  timer: timeout, ×2 backoff        │ drop/dup/delay   cache reply by seq
//	  on fire: clone + resend ──clone──> flight ──────────> duplicate? replay
//	  on reply: complete txn  <───────── reply leg <─────── cached reply
//
// The transaction owns a prototype message record; every (re)transmission
// is a fresh clone from the msg freelist, so retransmits and duplicates
// never alias a record already threaded through the event queue (the PR 3
// pooling invariant: a record is reachable from at most one scheduled
// event). The receiver applies the memory effect exactly once per sequence
// number and caches the reply payload; late or duplicated request copies
// replay the cached reply, and late reply copies are discarded at the
// sender once the transaction has completed. One-way classes (RPC, Reply)
// gain an ack leg under faults so a dropped request is retransmitted.
//
// Ordering. The fault-free interconnect is FIFO per directed (src, dst)
// link, and compiled programs depend on it: a split-phase write followed by
// a read of the same location on the same link is correct only because the
// write is serviced first. Drops and retransmissions would break that — a
// dropped Put's retry can arrive after a later Get — so each request
// additionally carries a per-link sequence number (lseq, assigned once per
// transaction, stable across retransmissions). The receiving SU services
// requests strictly in lseq order: a request arriving ahead of a gap is
// parked in a reorder buffer and serviced — at full SU cost — as soon as
// the gap-filling request completes service. Reply/ack legs carry no lseq;
// their ordering is program-invisible (fills target distinct slots, fences
// count acks).
//
// With Config.Faults == nil none of this machinery runs: no sequence
// numbers, no transactions, no timers, no PRNG draws — the schedule()
// sequence is hop-for-hop identical to the fault-free simulator, which the
// zero-cost-when-disabled test locks in.

// FaultConfig describes the injected fault distributions and the reliable-
// messaging retry policy. It is read-only during runs: a single FaultConfig
// may be shared by concurrent Machines (each owns its PRNG state).
type FaultConfig struct {
	Drop  float64 // per wire-hop drop probability, in [0,1)
	Dup   float64 // per wire-hop duplication probability, in [0,1)
	Delay int64   // max extra wire delay per hop, in multiples of NetLatency
	Stall float64 // per SU-service stall probability, in [0,1)

	StallNs    int64 // stall window length in ns (0 = default 25µs)
	Timeout    int64 // initial retransmit timeout in ns (0 = default 100µs)
	MaxRetries int   // retransmissions before the run traps (0 = default 20)
	// Window caps in-flight transactions per directed link (selective
	// repeat): further sends queue until a slot frees. 0 = default 64,
	// negative = unlimited.
	Window int
	Seed   uint64

	// fixedRTO disables the per-link EWMA RTT estimator, pinning the
	// retransmit timeout to the pre-estimator fixed Timeout policy. Test
	// knob for measuring the estimator's spurious-retransmit reduction.
	fixedRTO bool
}

// Fault-model defaults. The timeout is generous relative to the ~7µs
// round-trip of a scalar read so that SU queueing under load rarely causes
// spurious retransmission; backoff doubles it per retry up to the cap.
const (
	defaultStallNs    = 25_000
	defaultTimeout    = 100_000
	defaultMaxRetries = 20
	defaultWindow     = 64
	backoffCapFactor  = 32
)

func (f *FaultConfig) stallNs() int64 {
	if f.StallNs > 0 {
		return f.StallNs
	}
	return defaultStallNs
}

func (f *FaultConfig) timeout() int64 {
	if f.Timeout > 0 {
		return f.Timeout
	}
	return defaultTimeout
}

func (f *FaultConfig) maxRetries() int {
	if f.MaxRetries > 0 {
		return f.MaxRetries
	}
	return defaultMaxRetries
}

// window is the per-link in-flight cap; 0 means unlimited.
func (f *FaultConfig) window() int {
	if f.Window > 0 {
		return f.Window
	}
	if f.Window < 0 {
		return 0
	}
	return defaultWindow
}

// validate rejects out-of-range distributions.
func (f *FaultConfig) validate() error {
	check := func(name string, p float64) error {
		if p < 0 || p >= 1 {
			return fmt.Errorf("earthsim: fault probability %s=%v out of range [0,1)", name, p)
		}
		return nil
	}
	if err := check("drop", f.Drop); err != nil {
		return err
	}
	if err := check("dup", f.Dup); err != nil {
		return err
	}
	if err := check("stall", f.Stall); err != nil {
		return err
	}
	if f.Delay < 0 || f.StallNs < 0 || f.Timeout < 0 || f.MaxRetries < 0 {
		return fmt.Errorf("earthsim: fault parameters must be non-negative")
	}
	return nil
}

// String renders the spec in ParseFaultSpec's format (defaults omitted).
func (f *FaultConfig) String() string {
	var parts []string
	add := func(s string) { parts = append(parts, s) }
	if f.Drop > 0 {
		add(fmt.Sprintf("drop=%v", f.Drop))
	}
	if f.Dup > 0 {
		add(fmt.Sprintf("dup=%v", f.Dup))
	}
	if f.Delay > 0 {
		add(fmt.Sprintf("delay=%d", f.Delay))
	}
	if f.Stall > 0 {
		add(fmt.Sprintf("stall=%v", f.Stall))
	}
	if f.StallNs > 0 {
		add(fmt.Sprintf("stallns=%d", f.StallNs))
	}
	if f.Timeout > 0 {
		add(fmt.Sprintf("timeout=%d", f.Timeout))
	}
	if f.MaxRetries > 0 {
		add(fmt.Sprintf("retries=%d", f.MaxRetries))
	}
	if f.Window != 0 {
		add(fmt.Sprintf("window=%d", f.Window))
	}
	if f.Seed != 0 {
		add(fmt.Sprintf("seed=%d", f.Seed))
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// ParseFaultSpec parses a comma-separated "key=value" fault specification,
// the format of the earthrun/paperbench -faults flag. Keys: drop, dup,
// stall (probabilities), delay (max extra NetLatency multiples per hop),
// stallns, timeout (ns), retries, window (per-link in-flight cap), seed.
// An empty spec returns nil (faults disabled).
func ParseFaultSpec(spec string) (*FaultConfig, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	f := &FaultConfig{}
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, valStr, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("earthsim: bad fault spec entry %q (want key=value)", kv)
		}
		key, valStr = strings.TrimSpace(key), strings.TrimSpace(valStr)
		switch strings.ToLower(key) {
		case "drop", "dup", "stall":
			p, err := strconv.ParseFloat(valStr, 64)
			if err != nil {
				return nil, fmt.Errorf("earthsim: bad fault probability %q: %v", kv, err)
			}
			switch strings.ToLower(key) {
			case "drop":
				f.Drop = p
			case "dup":
				f.Dup = p
			case "stall":
				f.Stall = p
			}
		case "delay", "stallns", "timeout", "retries", "window", "seed":
			n, err := strconv.ParseInt(valStr, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("earthsim: bad fault parameter %q: %v", kv, err)
			}
			switch strings.ToLower(key) {
			case "delay":
				f.Delay = n
			case "stallns":
				f.StallNs = n
			case "timeout":
				f.Timeout = n
			case "retries":
				f.MaxRetries = int(n)
			case "window":
				f.Window = int(n)
			case "seed":
				f.Seed = uint64(n)
			}
		default:
			return nil, fmt.Errorf("earthsim: unknown fault spec key %q (want drop/dup/delay/stall/stallns/timeout/retries/window/seed)", key)
		}
	}
	if err := f.validate(); err != nil {
		return nil, err
	}
	return f, nil
}

// FaultStats counts the run's injected faults and reliable-messaging
// reactions; Result.Faults carries it (nil when faults were disabled).
type FaultStats struct {
	Drops         int64 // wire hops dropped
	Dups          int64 // wire hops duplicated
	Delayed       int64 // wire hops given extra delay
	Stalls        int64 // SU stall windows injected
	Retries       int64 // sender retransmissions after timeout
	DupSuppressed int64 // duplicate copies discarded (receiver + sender side)
	// SpuriousRetries counts retransmissions that turned out unnecessary:
	// at completion, the transmissions sent after the copy that actually
	// completed the transaction (tx.attempt - completing copy's attempt).
	// The per-link EWMA RTT estimator exists to keep this near zero under
	// load; exported as earth_fault_retries_spurious_total.
	SpuriousRetries int64
	WindowQueued    int64 // sends held back by the per-link in-flight window
	RetriesByClass  [trace.NumClasses]int64
	MaxAttempt      int // highest transmission count any transaction needed
}

// String summarizes the counters on one line.
func (s *FaultStats) String() string {
	var retr []string
	for c := trace.Class(0); c < trace.NumClasses; c++ {
		if s.RetriesByClass[c] > 0 {
			retr = append(retr, fmt.Sprintf("%s=%d", c, s.RetriesByClass[c]))
		}
	}
	per := ""
	if len(retr) > 0 {
		per = " (" + strings.Join(retr, " ") + ")"
	}
	return fmt.Sprintf("drops=%d dups=%d delayed=%d stalls=%d retries=%d%s spurious=%d dup-suppressed=%d max-attempt=%d",
		s.Drops, s.Dups, s.Delayed, s.Stalls, s.Retries, per, s.SpuriousRetries, s.DupSuppressed, s.MaxAttempt)
}

// txn is one reliable-messaging transaction: the sender-side state of a
// split-phase message from first transmission to acknowledged completion.
type txn struct {
	seq     uint64 // transaction sequence number (key of shard.txns)
	proto   *msg   // prototype record, owned by the txn while live
	svc     int64  // issuing SU cost, reapplied on every retransmission
	link    uint32 // directed link key (window accounting, RTT estimator)
	start   int64  // first transmission time (RTT sampling; Karn's rule)
	attempt int    // transmissions so far (0 while queued on the window)
	timeout int64  // current retransmit timeout (doubles per retry, capped)
	done    bool
}

// svcCache is the receiver-side memory of one serviced sequence number:
// the reply payload to replay if a duplicate request copy arrives.
type svcCache struct {
	val  int64
	vals []int64
}

// linkKey identifies a directed (src, dst) link for the per-link request
// ordering maps.
func linkKey(src, dst *node) uint32 {
	return uint32(src.id)<<16 | uint32(dst.id)
}

// linkPos addresses one request slot in a link's sequence space; the key of
// the receiver's reorder buffer.
type linkPos struct {
	link uint32
	lseq uint64
}

// ------------------------------------------------------------------- PRNG ---

// rnd is the machine's splitmix64 PRNG, consulted only in event-loop order
// so draws are deterministic for a given seed.
func (m *shard) rnd() uint64 {
	m.rngState += 0x9E3779B97F4A7C15
	z := m.rngState
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// chance draws a uniform [0,1) variate and compares it to p. Callers must
// guard with p > 0 so disabled distributions consume no draws.
func (m *shard) chance(p float64) bool {
	return float64(m.rnd()>>11)/(1<<53) < p
}

// rndN draws a uniform integer in [0, n). The slight modulo bias is
// irrelevant for fault modeling.
func (m *shard) rndN(n int64) int64 {
	return int64(m.rnd() % uint64(n))
}

// ------------------------------------------------------- reliable protocol ---

// cloneMsg copies a prototype into a fresh freelist record for one
// transmission attempt.
func (m *shard) cloneMsg(g *msg) *msg {
	c := m.getMsg()
	args, vals := c.args, c.vals
	*c = *g
	c.args = append(args[:0], g.args...)
	c.vals = append(vals[:0], g.vals...)
	c.free = nil
	return c
}

// ----------------------------------------------------- RTT estimation (RTO) ---

// rttEst is one directed link's EWMA round-trip estimator, the classic TCP
// srtt/rttvar pair (RFC 6298, integer shifts: srtt gain 1/8, rttvar gain
// 1/4). A round trip here is transmission to transaction completion — the
// full SU-queue + wire + service + reply path, which is exactly what the
// retransmit timer races against.
type rttEst struct {
	srtt   int64 // smoothed RTT in ns; 0 = no samples yet
	rttvar int64
}

// observe folds one unambiguous RTT sample into the link estimate.
func (e *rttEst) observe(sample int64) {
	if e.srtt == 0 {
		e.srtt = sample
		e.rttvar = sample / 2
		return
	}
	err := sample - e.srtt
	if err < 0 {
		e.rttvar += (-err - e.rttvar) / 4
	} else {
		e.rttvar += (err - e.rttvar) / 4
	}
	e.srtt += err / 8
}

// rto is the link's current retransmit timeout: srtt + 4·rttvar, clamped to
// [Timeout/2, Timeout·backoffCapFactor]. Before any sample — or with the
// fixedRTO test knob set — it is the configured fixed Timeout, the
// pre-estimator policy. The floor keeps a quiet link's aggressively small
// estimate from firing on routine SU-stall jitter; the ceiling matches the
// backoff cap.
func (m *shard) rto(key uint32) int64 {
	base := m.flt.timeout()
	if m.flt.fixedRTO {
		return base
	}
	e := m.rtt[key]
	if e == nil || e.srtt == 0 {
		return base
	}
	rto := e.srtt + 4*e.rttvar
	return min(max(rto, base/2), base*backoffCapFactor)
}

// rttObserve records a completion's RTT against its link, per Karn's rule:
// only transactions that completed without any retransmission give an
// unambiguous sample.
func (m *shard) rttObserve(key uint32, sample int64) {
	e := m.rtt[key]
	if e == nil {
		e = &rttEst{}
		m.rtt[key] = e
	}
	e.observe(sample)
}

// sendMsg starts a message's first transmission at the issuing SU. Without
// a fault model this is exactly the pre-fault schedule (stage 1 on the SU);
// with one, it opens a transaction, assigns the link-order sequence number,
// and either transmits immediately or queues behind the link's selective-
// repeat window.
func (m *shard) sendMsg(g *msg, t, svc int64) {
	g.stage = 1
	if m.flt == nil {
		m.suSched(g.src, t, svc, g)
		return
	}
	m.nextTxn++
	g.seq = m.txnSeq(m.nextTxn)
	key := linkKey(g.src, g.dst)
	g.lseq = m.linkNext[key]
	m.linkNext[key]++
	tx := &txn{seq: g.seq, proto: g, svc: svc, link: key}
	m.txns[g.seq] = tx
	if w := m.flt.window(); w > 0 && m.winOpen[key] >= w {
		m.fstats.WindowQueued++
		m.winQ[key] = append(m.winQ[key], tx)
		return
	}
	m.transmit(tx, t)
}

// txnSeq tags a transaction ordinal with the owning shard, keeping sequence
// numbers unique machine-wide (the receiver's exactly-once cache is keyed by
// them). Legacy mode keeps plain ordinals.
func (m *shard) txnSeq(ordinal uint64) uint64 {
	if m.single {
		return ordinal
	}
	return uint64(m.id+1)<<40 | ordinal
}

// transmit performs a transaction's first transmission: claim the window
// slot, queue the flight on the issuing SU, and arm the retransmit timer at
// the link's current RTO.
func (m *shard) transmit(tx *txn, t int64) {
	m.winOpen[tx.link]++
	tx.attempt = 1
	tx.start = t
	tx.timeout = m.rto(tx.link)
	p := tx.proto
	p.attempt = 1
	m.suSched(p.src, t, tx.svc, m.cloneMsg(p))
	m.scheduleRetry(tx, t+tx.timeout)
}

// scheduleRetry arms (or re-arms) a transaction's retransmit timer.
func (m *shard) scheduleRetry(tx *txn, at int64) {
	m.seq++
	m.events.push(event{time: at, seq: m.seq, kind: evRetry, node: tx.proto.src.id, tx: tx})
}

// retryFire handles a retransmit-timer expiry: if the transaction is still
// open, clone and resend the prototype with a doubled (capped) timeout; a
// transaction out of retry budget traps the run.
func (m *shard) retryFire(tx *txn, t int64) {
	if tx.done {
		return
	}
	p := tx.proto
	if tx.attempt >= m.flt.maxRetries() {
		m.trapf("reliable messaging: %s message seq=%d (node %d -> node %d) lost after %d attempts — fault rates exceed the retry budget",
			p.class, tx.seq, p.src.id, p.dst.id, tx.attempt)
		return
	}
	tx.attempt++
	if tx.attempt > m.fstats.MaxAttempt {
		m.fstats.MaxAttempt = tx.attempt
	}
	m.fstats.Retries++
	m.fstats.RetriesByClass[p.class]++
	m.tr.Fault(trace.FaultRetry, p.class, p.mid, p.src.id, tx.attempt, t)
	p.attempt = tx.attempt
	m.suSched(p.src, t, tx.svc, m.cloneMsg(p))
	tx.timeout = min(tx.timeout*2, m.flt.timeout()*backoffCapFactor)
	m.scheduleRetry(tx, t+tx.timeout)
}

// finishTxn closes a completed transaction: score the retransmit policy
// (spurious count; RTT sample per Karn's rule), release the window slot —
// transmitting the next queued transaction, if any — and return the
// prototype to the freelist so late timer fires or duplicate reply copies
// become no-ops. doneAttempt is the transmission attempt stamped on the
// copy that completed the round trip.
func (m *shard) finishTxn(tx *txn, t int64, doneAttempt int) {
	tx.done = true
	delete(m.txns, tx.seq)
	m.putMsg(tx.proto)
	tx.proto = nil
	if sp := int64(tx.attempt - doneAttempt); sp > 0 {
		m.fstats.SpuriousRetries += sp
	}
	if tx.attempt == 1 {
		m.rttObserve(tx.link, t-tx.start)
	}
	if m.winOpen[tx.link]--; m.winOpen[tx.link] < 0 {
		m.winOpen[tx.link] = 0
	}
	if q := m.winQ[tx.link]; len(q) > 0 {
		next := q[0]
		q[0] = nil
		m.winQ[tx.link] = q[1:]
		m.transmit(next, t)
	}
}
