package earthsim

// White-box tests for the PR 8 shard internals: selective-repeat window
// accounting, the EWMA RTO estimator and its clamps, spurious-retransmit
// scoring (with Karn's rule), the sharded-mode id encodings, and fiber
// record recycling.

import (
	"math"
	"testing"
)

// sendOne builds a minimal class-0 message from node 0 to node 1 and hands
// it to sendMsg at time t.
func sendOne(m *shard, t int64) *msg {
	g := m.getMsg()
	g.class, g.src, g.dst = 0, m.nodes[0], m.nodes[1]
	m.sendMsg(g, t, 100)
	return g
}

// TestWindowCapsInFlight: with Window=2, the third and later sends queue
// instead of transmitting, and completing a transaction admits the next
// queued one without exceeding the cap.
func TestWindowCapsInFlight(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Faults = &FaultConfig{Window: 2, Seed: 1}
	m := New(loopProg(), cfg).sh[0]
	var gs []*msg
	for i := 0; i < 5; i++ {
		gs = append(gs, sendOne(m, int64(i)))
	}
	key := linkKey(m.nodes[0], m.nodes[1])
	if m.winOpen[key] != 2 {
		t.Errorf("winOpen = %d, want 2", m.winOpen[key])
	}
	if len(m.winQ[key]) != 3 {
		t.Errorf("queued = %d, want 3", len(m.winQ[key]))
	}
	if m.fstats.WindowQueued != 3 {
		t.Errorf("WindowQueued = %d, want 3", m.fstats.WindowQueued)
	}
	for _, g := range gs[2:] {
		if m.txns[g.seq].attempt != 0 {
			t.Errorf("queued txn seq=%d already transmitted (attempt %d)", g.seq, m.txns[g.seq].attempt)
		}
	}
	// Completing one in-flight transaction frees a slot and transmits the
	// head of the queue.
	m.finishTxn(m.txns[gs[0].seq], 50_000, 1)
	if m.winOpen[key] != 2 {
		t.Errorf("winOpen after completion = %d, want 2 (slot reused)", m.winOpen[key])
	}
	if len(m.winQ[key]) != 2 {
		t.Errorf("queued after completion = %d, want 2", len(m.winQ[key]))
	}
	if m.txns[gs[2].seq].attempt != 1 {
		t.Error("head-of-queue transaction was not transmitted on window release")
	}
}

// TestWindowAccessor pins the Window encoding: 0 = default, negative =
// unlimited.
func TestWindowAccessor(t *testing.T) {
	if w := (&FaultConfig{}).window(); w != defaultWindow {
		t.Errorf("default window = %d, want %d", w, defaultWindow)
	}
	if w := (&FaultConfig{Window: -1}).window(); w != 0 {
		t.Errorf("negative window = %d, want 0 (unlimited)", w)
	}
	if w := (&FaultConfig{Window: 5}).window(); w != 5 {
		t.Errorf("window = %d, want 5", w)
	}
}

// TestRTOClamps: the per-link RTO is srtt + 4·rttvar clamped to
// [Timeout/2, Timeout·cap]; without samples — or with the fixedRTO knob —
// it is the configured Timeout.
func TestRTOClamps(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Faults = &FaultConfig{Timeout: 10_000, Seed: 1}
	m := New(loopProg(), cfg).sh[0]
	key := uint32(7)
	if got := m.rto(key); got != 10_000 {
		t.Errorf("no-sample rto = %d, want the fixed timeout 10000", got)
	}
	cases := []struct {
		est  rttEst
		want int64
	}{
		{rttEst{srtt: 100, rttvar: 10}, 5_000},              // raw 140 → floor Timeout/2
		{rttEst{srtt: 6_000, rttvar: 500}, 8_000},           // raw in range
		{rttEst{srtt: 1_000_000, rttvar: 250_000}, 320_000}, // raw 2e6 → cap Timeout·32
	}
	for _, tc := range cases {
		est := tc.est
		m.rtt[key] = &est
		if got := m.rto(key); got != tc.want {
			t.Errorf("rto(srtt=%d rttvar=%d) = %d, want %d", est.srtt, est.rttvar, got, tc.want)
		}
	}
	cfg.Faults.fixedRTO = true
	if got := m.rto(key); got != 10_000 {
		t.Errorf("fixedRTO rto = %d, want 10000 regardless of the estimator", got)
	}
}

// TestRttEstimatorConverges: constant samples pin srtt and decay rttvar
// toward zero (RFC 6298 gains).
func TestRttEstimatorConverges(t *testing.T) {
	var e rttEst
	e.observe(8_000)
	if e.srtt != 8_000 || e.rttvar != 4_000 {
		t.Fatalf("first sample: srtt=%d rttvar=%d, want 8000/4000", e.srtt, e.rttvar)
	}
	for i := 0; i < 20; i++ {
		e.observe(8_000)
	}
	if e.srtt != 8_000 {
		t.Errorf("srtt drifted to %d on constant samples", e.srtt)
	}
	if e.rttvar > 100 {
		t.Errorf("rttvar = %d, want near-zero after 20 constant samples", e.rttvar)
	}
}

// TestSpuriousAccountingAndKarn: a transaction completed by an earlier copy
// than the last one sent scores the extra transmissions as spurious, and —
// per Karn's rule — contributes no RTT sample; a clean first-attempt
// completion does.
func TestSpuriousAccountingAndKarn(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Faults = &FaultConfig{Timeout: 10_000, Seed: 1}
	m := New(loopProg(), cfg).sh[0]

	g1 := sendOne(m, 0)
	tx1 := m.txns[g1.seq]
	tx1.attempt = 3 // two retransmissions happened
	m.finishTxn(tx1, 30_000, 1)
	if m.fstats.SpuriousRetries != 2 {
		t.Errorf("SpuriousRetries = %d, want 2", m.fstats.SpuriousRetries)
	}
	if m.rtt[tx1.link] != nil {
		t.Error("retransmitted txn contributed an RTT sample (Karn violation)")
	}

	g2 := sendOne(m, 1_000)
	tx2 := m.txns[g2.seq]
	m.finishTxn(tx2, 8_000, 1)
	if m.fstats.SpuriousRetries != 2 {
		t.Errorf("clean completion changed SpuriousRetries: %d", m.fstats.SpuriousRetries)
	}
	e := m.rtt[tx2.link]
	if e == nil || e.srtt != 7_000 {
		t.Errorf("clean completion RTT sample: %+v, want srtt=7000", e)
	}
}

// TestShardIDEncodings pins the sharded-mode id spaces (and their legacy
// identity): transaction sequences and trace message ids tag the shard in
// bits 40+, fiber ids in bits 32+.
func TestShardIDEncodings(t *testing.T) {
	single := New(loopProg(), DefaultConfig(2)).sh[0]
	if !single.single {
		t.Fatal("SimWorkers=0 must yield the single sequential shard")
	}
	if single.txnSeq(9) != 9 || single.fiberID(9) != 9 || single.encMid(9) != 9 {
		t.Error("legacy mode must keep plain ordinals")
	}

	cfg := DefaultConfig(2)
	cfg.SimWorkers = 2
	m := New(loopProg(), cfg)
	if len(m.sh) != 2 || m.sh[1].single {
		t.Fatalf("SimWorkers=2 on 2 nodes must shard: %d shards", len(m.sh))
	}
	s0, s1 := m.sh[0], m.sh[1]
	if got := s1.txnSeq(5); got != 2<<40|5 {
		t.Errorf("shard1 txnSeq(5) = %#x, want %#x", got, uint64(2<<40|5))
	}
	if got := s0.txnSeq(5); got != 1<<40|5 {
		t.Errorf("shard0 txnSeq(5) = %#x, want %#x", got, uint64(1<<40|5))
	}
	if got := s1.fiberID(5); got != 1<<32|5 {
		t.Errorf("shard1 fiberID(5) = %#x, want %#x", got, int64(1<<32|5))
	}
	if got := s1.encMid(5); got != 2<<40|5 {
		t.Errorf("shard1 encMid(5) = %#x, want %#x", got, int64(2<<40|5))
	}
	if got := satAdd(math.MaxInt64, 5); got != math.MaxInt64 {
		t.Errorf("satAdd must saturate: %d", got)
	}
}

// TestFiberRecycleGuards: a fiber still referenced by unfinished children,
// in-flight acks, or pending fills must not be recycled; a quiescent one is,
// and comes back reset.
func TestFiberRecycleGuards(t *testing.T) {
	m := New(loopProg(), DefaultConfig(1)).sh[0]
	f := m.newFiber(0, m.prog.Main, nil, replyRoute{})

	f.children = 1
	m.recycleFiber(f)
	if m.fiberFree != nil {
		t.Error("fiber with live children recycled")
	}
	f.children = 0
	f.outstanding = 2
	m.recycleFiber(f)
	if m.fiberFree != nil {
		t.Error("fiber with in-flight acks recycled")
	}
	f.outstanding = 0
	f.done = true
	f.ninstr = 99
	m.recycleFiber(f)
	if m.fiberFree != f {
		t.Fatal("quiescent fiber not recycled")
	}
	g := m.getFiber()
	if g != f {
		t.Fatal("freelist did not return the recycled record")
	}
	if g.done || g.ninstr != 0 {
		t.Error("recycled fiber state not reset")
	}
}
