package earthsim

import (
	"fmt"
	"math"

	"repro/internal/earthc"
	"repro/internal/threaded"
)

// runEU is the EU event handler: when the EU is free and a fiber is ready,
// run it until it suspends or completes.
func (m *shard) runEU(n *node, t int64) {
	if t < n.euFree {
		m.schedule(n.euFree, evEURun, n.id, nil)
		return
	}
	if n.readyLen() == 0 {
		return
	}
	f := n.popReady()
	t += m.cfg.CtxSwitch
	if m.tr != nil || m.ms != nil {
		start, name, fid := t, f.code.Name, f.id
		m.execFiber(f, &t)
		m.tr.EUSpan(n.id, fid, name, start, t)
		if m.ms != nil {
			m.ms.euBusy[n.id-m.ms.base] += t - start
		}
	} else {
		m.execFiber(f, &t)
	}
	n.euFree = t
	if n.readyLen() > 0 {
		m.schedule(t, evEURun, n.id, nil)
	}
}

// execFiber interprets instructions until the fiber suspends, completes, or
// traps. *t advances with each instruction's cost.
func (m *shard) execFiber(f *fiber, t *int64) {
	n := f.node
	cfg := &m.cfg
	for m.trap == nil {
		if f.pc < 0 || f.pc >= len(f.code.Code) {
			m.trapf("%s: pc %d out of range", f.code.Name, f.pc)
			return
		}
		in := &f.code.Code[f.pc]
		m.counts.Instructions++
		if m.counts.Instructions >= m.nextLimitCheck {
			m.limitCheck()
			if m.trap != nil {
				return
			}
		}
		f.ninstr++
		if f.ninstr > m.maxFiberInstr {
			m.trapf("fiber runaway: %s@%d executed %d instructions (infinite loop?)",
				f.code.Name, f.pc, f.ninstr)
			return
		}
		*t += cfg.InstrCost

		blocked := false
		rd := func(slot int) int64 {
			abs := f.base + int64(slot)
			if n.pending[abs] > 0 {
				blocked = true
				m.block(f, abs)
				return 0
			}
			return n.mem[abs]
		}
		wr := func(slot int, v int64) {
			n.mem[f.base+int64(slot)] = v
		}
		// Writing a slot that has a fill in flight must wait for the fill
		// (sync-slot semantics): otherwise the late reply would clobber the
		// newer value. Check the common destination operands up front.
		switch in.Op {
		case threaded.OpMove, threaded.OpLoadImm, threaded.OpBin, threaded.OpUn,
			threaded.OpConvIF, threaded.OpConvFI, threaded.OpLocalLoad,
			threaded.OpLocalLoadIdx, threaded.OpAddrLocal, threaded.OpFieldAddr,
			threaded.OpMemLoad, threaded.OpBuiltin, threaded.OpOwnerOf,
			threaded.OpMyNode, threaded.OpNumNodes, threaded.OpGet,
			threaded.OpSharedRead, threaded.OpAlloc:
			abs := f.base + int64(in.A)
			if n.pending[abs] > 0 {
				m.block(f, abs)
				return
			}
		case threaded.OpLocalStore:
			abs := f.base + int64(in.B+in.C)
			if n.pending[abs] > 0 {
				m.block(f, abs)
				return
			}
		case threaded.OpMemCopyLocal, threaded.OpMemToFrame, threaded.OpBlkGet:
			for i := 0; i < in.D; i++ {
				abs := f.base + int64(in.A+i)
				if n.pending[abs] > 0 {
					m.block(f, abs)
					return
				}
			}
		}

		switch in.Op {
		case threaded.OpNop:

		case threaded.OpProbe:
			if m.prof != nil && in.Site != "" {
				switch in.C {
				case threaded.ProbeLoopEnter:
					m.prof.LoopEnter(in.Site)
				case threaded.ProbeLoopTrip:
					m.prof.LoopTrip(in.Site)
				case threaded.ProbeBranchEnter:
					m.prof.BranchEnter(in.Site)
				case threaded.ProbeBranchThen:
					m.prof.BranchThen(in.Site)
				case threaded.ProbeSwitchEnter:
					m.prof.SwitchEnter(in.Site)
				case threaded.ProbeSwitchCase:
					m.prof.SwitchCase(in.Site, in.D)
				}
			}

		case threaded.OpMove:
			v := rd(in.B)
			if blocked {
				return
			}
			wr(in.A, v)

		case threaded.OpLoadImm:
			wr(in.A, in.Imm)

		case threaded.OpBin:
			x := rd(in.B)
			y := rd(in.C)
			if blocked {
				return
			}
			v, err := binOp(in.BOp, x, y, in.Flt)
			if err != nil {
				m.trapf("%s@%d: %v", f.code.Name, f.pc, err)
				return
			}
			wr(in.A, v)

		case threaded.OpUn:
			x := rd(in.B)
			if blocked {
				return
			}
			switch in.UOp {
			case earthc.Neg:
				if in.Flt {
					wr(in.A, int64(math.Float64bits(-math.Float64frombits(uint64(x)))))
				} else {
					wr(in.A, -x)
				}
			case earthc.BNot:
				wr(in.A, ^x)
			default:
				m.trapf("bad unary op %v", in.UOp)
				return
			}

		case threaded.OpConvIF:
			x := rd(in.B)
			if blocked {
				return
			}
			wr(in.A, int64(math.Float64bits(float64(x))))

		case threaded.OpConvFI:
			x := rd(in.B)
			if blocked {
				return
			}
			wr(in.A, int64(math.Float64frombits(uint64(x))))

		case threaded.OpJmp:
			f.pc = in.C
			continue

		case threaded.OpJmpIf:
			v := rd(in.A)
			if blocked {
				return
			}
			if v != 0 {
				f.pc = in.C
				continue
			}

		case threaded.OpJmpIfNot:
			v := rd(in.A)
			if blocked {
				return
			}
			if v == 0 {
				f.pc = in.C
				continue
			}

		case threaded.OpJmpEq:
			v := rd(in.A)
			if blocked {
				return
			}
			if v == in.Imm {
				f.pc = in.C
				continue
			}

		case threaded.OpLocalLoad:
			v := rd(in.B + in.C)
			if blocked {
				return
			}
			wr(in.A, v)

		case threaded.OpLocalStore:
			v := rd(in.A)
			if blocked {
				return
			}
			wr(in.B+in.C, v)

		case threaded.OpLocalLoadIdx:
			idx := rd(in.D)
			if blocked {
				return
			}
			slot := in.B + in.C + int(idx)*int(in.Imm)
			if slot < 0 || slot >= f.size {
				m.trapf("%s@%d: array index out of range (slot %d of %d)", f.code.Name, f.pc, slot, f.size)
				return
			}
			v := rd(slot)
			if blocked {
				return
			}
			wr(in.A, v)

		case threaded.OpLocalStoreIdx:
			idx := rd(in.D)
			v := rd(in.A)
			if blocked {
				return
			}
			slot := in.B + in.C + int(idx)*int(in.Imm)
			if slot < 0 || slot >= f.size {
				m.trapf("%s@%d: array index out of range (slot %d of %d)", f.code.Name, f.pc, slot, f.size)
				return
			}
			if n.pending[f.base+int64(slot)] > 0 {
				m.block(f, f.base+int64(slot))
				return
			}
			wr(slot, v)

		case threaded.OpMemCopyLocal:
			for i := 0; i < in.D; i++ {
				v := rd(in.B + i)
				if blocked {
					return
				}
				wr(in.A+i, v)
			}
			*t += int64(in.D) * 8

		case threaded.OpAddrLocal:
			wr(in.A, threaded.PackAddr(n.id, f.base+int64(in.B+in.C)))

		case threaded.OpFieldAddr:
			p := rd(in.B)
			if blocked {
				return
			}
			if p == 0 {
				m.trapf("%s@%d: field address of null pointer", f.code.Name, f.pc)
				return
			}
			wr(in.A, p+int64(in.C))

		case threaded.OpMemLoad:
			p := rd(in.B)
			if blocked {
				return
			}
			v, ok := m.localWord(f, p, in.C)
			if !ok {
				return
			}
			if m.prof != nil && in.Site != "" {
				m.prof.RecordAccess(in.Site, false)
			}
			*t += cfg.LocalMemCost
			wr(in.A, v)

		case threaded.OpMemStore:
			p := rd(in.B)
			v := rd(in.A)
			if blocked {
				return
			}
			if !m.localWordStore(f, p, in.C, v) {
				return
			}
			if m.prof != nil && in.Site != "" {
				m.prof.RecordAccess(in.Site, false)
			}
			*t += cfg.LocalMemCost

		case threaded.OpMemToFrame:
			p := rd(in.B)
			if blocked {
				return
			}
			for i := 0; i < in.D; i++ {
				v, ok := m.localWord(f, p, in.C+i)
				if !ok {
					return
				}
				wr(in.A+i, v)
			}
			*t += cfg.LocalMemCost + int64(in.D)*8

		case threaded.OpFrameToMem:
			p := rd(in.B)
			if blocked {
				return
			}
			for i := 0; i < in.D; i++ {
				v := rd(in.A + i)
				if blocked {
					return
				}
				if !m.localWordStore(f, p, in.C+i, v) {
					return
				}
			}
			*t += cfg.LocalMemCost + int64(in.D)*8

		case threaded.OpMemCopyMem:
			src := rd(in.B)
			dst := rd(in.A)
			if blocked {
				return
			}
			for i := 0; i < int(in.Imm); i++ {
				v, ok := m.localWord(f, src, in.C+i)
				if !ok {
					return
				}
				if !m.localWordStore(f, dst, in.D+i, v) {
					return
				}
			}
			*t += cfg.LocalMemCost + in.Imm*8

		case threaded.OpGet:
			p := rd(in.B)
			if blocked {
				return
			}
			if p == 0 {
				m.trapf("%s@%d: remote read through null pointer", f.code.Name, f.pc)
				return
			}
			if m.prof != nil && in.Site != "" {
				m.prof.RecordAccess(in.Site, threaded.AddrNode(p) != n.id)
			}
			if threaded.AddrNode(p) == n.id {
				*t += cfg.LocalRTCost
			} else {
				*t += cfg.EUIssue
			}
			m.issueGet(f, *t, p+int64(in.C), f.base+int64(in.A), in.Site)

		case threaded.OpPut:
			p := rd(in.B)
			v := rd(in.A)
			if blocked {
				return
			}
			if p == 0 {
				m.trapf("%s@%d: remote write through null pointer", f.code.Name, f.pc)
				return
			}
			if m.prof != nil && in.Site != "" {
				m.prof.RecordAccess(in.Site, threaded.AddrNode(p) != n.id)
			}
			if threaded.AddrNode(p) == n.id {
				*t += cfg.LocalRTCost
			} else {
				*t += cfg.EUIssue
			}
			m.issuePut(f, *t, p+int64(in.C), v, in.Site)

		case threaded.OpBlkGet:
			p := rd(in.B)
			if blocked {
				return
			}
			if p == 0 {
				m.trapf("%s@%d: blkmov read through null pointer", f.code.Name, f.pc)
				return
			}
			if threaded.AddrNode(p) == n.id {
				*t += cfg.LocalRTCost + cfg.LocalRTWord*int64(in.D)
			} else {
				*t += cfg.EUIssue
			}
			m.issueBlkGet(f, *t, p+int64(in.C), f.base+int64(in.A), in.D, in.Site)

		case threaded.OpBlkPut:
			p := rd(in.B)
			if blocked {
				return
			}
			m.scratch = m.scratch[:0]
			for i := 0; i < in.D; i++ {
				v := rd(in.A + i)
				if blocked {
					return
				}
				m.scratch = append(m.scratch, v)
			}
			if p == 0 {
				m.trapf("%s@%d: blkmov write through null pointer", f.code.Name, f.pc)
				return
			}
			if threaded.AddrNode(p) == n.id {
				*t += cfg.LocalRTCost + cfg.LocalRTWord*int64(in.D)
			} else {
				*t += cfg.EUIssue
			}
			m.issueBlkPut(f, *t, p+int64(in.C), m.scratch, in.Site)

		case threaded.OpFence:
			if f.outstanding > 0 {
				f.waitFence = true
				m.park(f)
				return
			}

		case threaded.OpAlloc:
			nodeSel := -1
			if in.B >= 0 {
				v := rd(in.B)
				if blocked {
					return
				}
				nodeSel = int(v)
			}
			m.counts.Allocs++
			if nodeSel < 0 || nodeSel == n.id {
				*t += cfg.AllocCost
				base := n.allocWords(in.C)
				if base < 0 {
					m.trapf("%s@%d: node %d out of memory (budget %d words)",
						f.code.Name, f.pc, n.id, n.maxWords)
					return
				}
				wr(in.A, threaded.PackAddr(n.id, base))
			} else {
				if nodeSel >= len(m.nodes) {
					m.trapf("%s@%d: alloc_on node %d out of range (machine has %d)",
						f.code.Name, f.pc, nodeSel, len(m.nodes))
					return
				}
				*t += cfg.EUIssue
				m.issueAlloc(f, *t, nodeSel, in.C, f.base+int64(in.A), in.Site)
			}

		case threaded.OpCall:
			m.scratch = m.scratch[:0]
			for _, s := range in.Args {
				v := rd(s)
				if blocked {
					return
				}
				m.scratch = append(m.scratch, v)
			}
			*t += cfg.CallCost
			callee := in.Fn
			base := n.allocFrame(callee.NSlots)
			if base < 0 {
				m.trapf("%s: node %d out of memory calling %s (deep recursion?)",
					f.code.Name, n.id, callee.Name)
				return
			}
			for i, a := range m.scratch {
				if i < len(callee.Params) {
					n.mem[base+int64(callee.Params[i])] = a
				}
			}
			f.stack = append(f.stack, frameRec{
				code: f.code, pc: f.pc + 1, base: f.base, size: f.size, retSlot: in.A,
			})
			f.code = callee
			f.pc = 0
			f.base = base
			f.size = callee.NSlots
			continue

		case threaded.OpCallAt:
			if !m.execCallAt(f, t, in) {
				return
			}

		case threaded.OpSpawnArm:
			*t += cfg.SpawnCost
			m.counts.Spawns++
			f.children++
			child := m.newSharedFiber(n.id, in.Fn, f.base, replyRoute{kind: 1, parent: f})
			m.enqueueReady(n, child, *t)

		case threaded.OpSpawnIter:
			// The iteration captures the frame by value; outstanding fills
			// must land first so the copy is coherent.
			if len(f.pending) > 0 {
				for abs := range f.pending {
					m.block(f, abs)
					break
				}
				return
			}
			*t += cfg.SpawnCost + cfg.FrameCopyPerWord*int64(f.size)
			m.counts.Spawns++
			f.children++
			child := m.newFiber(n.id, in.Fn, nil, replyRoute{kind: 1, parent: f})
			copy(child.node.mem[child.base:child.base+int64(f.size)],
				n.mem[f.base:f.base+int64(f.size)])
			m.enqueueReady(n, child, *t)

		case threaded.OpJoin:
			if f.children > 0 {
				f.waitJoin = true
				m.park(f)
				return
			}

		case threaded.OpRet:
			val := int64(0)
			if in.A >= 0 {
				val = rd(in.A)
				if blocked {
					return
				}
			}
			// Drain split-phase reads targeting this frame before it can
			// be freed or its results consumed (thread-level sync).
			for abs := range f.pending {
				if abs >= f.base && abs < f.base+int64(f.size) {
					m.block(f, abs)
					return
				}
			}
			if len(f.stack) > 0 {
				rec := f.stack[len(f.stack)-1]
				if rec.retSlot >= 0 {
					abs := rec.base + int64(rec.retSlot)
					if n.pending[abs] > 0 {
						m.block(f, abs)
						return
					}
				}
				f.stack = f.stack[:len(f.stack)-1]
				n.freeFrame(f.base, f.size)
				f.code = rec.code
				f.pc = rec.pc
				f.base = rec.base
				f.size = rec.size
				if rec.retSlot >= 0 {
					n.mem[f.base+int64(rec.retSlot)] = val
				}
				continue
			}
			// Fiber end: fence outstanding communication, then report.
			if f.outstanding > 0 {
				f.waitFence = true
				m.park(f)
				return
			}
			m.finishFiber(f, *t, val)
			return

		case threaded.OpSharedRead, threaded.OpSharedWrite, threaded.OpSharedAdd:
			if !m.execShared(f, t, in) {
				return
			}

		case threaded.OpBuiltin:
			x := rd(in.B)
			if blocked {
				return
			}
			fx := math.Float64frombits(uint64(x))
			var r float64
			switch in.C {
			case threaded.BSqrt:
				r = math.Sqrt(fx)
			case threaded.BFabs:
				r = math.Abs(fx)
			}
			*t += cfg.InstrCost * 4
			wr(in.A, int64(math.Float64bits(r)))

		case threaded.OpPrint:
			var text string
			switch in.C {
			case threaded.PrintInt:
				v := rd(in.B)
				if blocked {
					return
				}
				text = fmt.Sprintf("%d\n", v)
			case threaded.PrintDouble:
				v := rd(in.B)
				if blocked {
					return
				}
				text = fmt.Sprintf("%.6f\n", math.Float64frombits(uint64(v)))
			case threaded.PrintChar:
				v := rd(in.B)
				if blocked {
					return
				}
				text = string(rune(v))
			case threaded.PrintStr:
				text = in.Str
			}
			m.outSeq++
			m.output = append(m.output, outItem{time: *t, seq: m.outSeq, text: text})

		case threaded.OpOwnerOf:
			p := rd(in.B)
			if blocked {
				return
			}
			if p == 0 {
				m.trapf("%s@%d: owner_of(NULL)", f.code.Name, f.pc)
				return
			}
			wr(in.A, int64(threaded.AddrNode(p)))

		case threaded.OpMyNode:
			wr(in.A, int64(n.id))

		case threaded.OpNumNodes:
			wr(in.A, int64(len(m.nodes)))

		default:
			m.trapf("%s@%d: unknown opcode %v", f.code.Name, f.pc, in.Op)
			return
		}
		f.pc++
	}
}

// localWord reads mem[p+off] which must reside on the executing node.
func (m *shard) localWord(f *fiber, p int64, off int) (int64, bool) {
	if p == 0 {
		m.trapf("%s: local access through null pointer", f.code.Name)
		return 0, false
	}
	nid := threaded.AddrNode(p)
	if nid != f.node.id {
		m.trapf("%s: 'local' access to address on node %d from node %d (locality violation)",
			f.code.Name, nid, f.node.id)
		return 0, false
	}
	o := threaded.AddrOff(p) + int64(off)
	if !f.node.ensure(o, 1) {
		m.trapf("%s: local access beyond the node's memory budget", f.code.Name)
		return 0, false
	}
	return f.node.mem[o], true
}

func (m *shard) localWordStore(f *fiber, p int64, off int, v int64) bool {
	if p == 0 {
		m.trapf("%s: local store through null pointer", f.code.Name)
		return false
	}
	nid := threaded.AddrNode(p)
	if nid != f.node.id {
		m.trapf("%s: 'local' store to address on node %d from node %d (locality violation)",
			f.code.Name, nid, f.node.id)
		return false
	}
	o := threaded.AddrOff(p) + int64(off)
	if !f.node.ensure(o, 1) {
		m.trapf("%s: local store beyond the node's memory budget", f.code.Name)
		return false
	}
	f.node.mem[o] = v
	return true
}

// execCallAt handles OpCallAt; returns false when the fiber suspended.
func (m *shard) execCallAt(f *fiber, t *int64, in *threaded.Instr) bool {
	n := f.node
	blocked := false
	rd := func(slot int) int64 {
		abs := f.base + int64(slot)
		if n.pending[abs] > 0 {
			blocked = true
			m.block(f, abs)
			return 0
		}
		return n.mem[abs]
	}
	target := n.id
	switch in.B {
	case 0: // @OWNER_OF(ptr)
		p := rd(in.C)
		if blocked {
			return false
		}
		if p == 0 {
			m.trapf("%s@%d: @OWNER_OF(NULL) slot=%d base=%d frame=%v", f.code.Name, f.pc, in.C, f.base, n.mem[f.base:f.base+int64(min(f.size, 40))])
			return false
		}
		target = threaded.AddrNode(p)
	case 1: // @ON(node)
		v := rd(in.C)
		if blocked {
			return false
		}
		target = int(v)
		if target < 0 || target >= len(m.nodes) {
			m.trapf("%s@%d: @ON(%d) out of range", f.code.Name, f.pc, target)
			return false
		}
	case 2: // @HOME
		target = n.id
	}
	m.scratch = m.scratch[:0]
	for _, s := range in.Args {
		v := rd(s)
		if blocked {
			return false
		}
		m.scratch = append(m.scratch, v)
	}
	if target == n.id {
		// Local placement: run as a plain call.
		*t += m.cfg.CallCost
		callee := in.Fn
		base := n.allocFrame(callee.NSlots)
		if base < 0 {
			m.trapf("%s: node %d out of memory calling %s", f.code.Name, n.id, callee.Name)
			return false
		}
		for i, a := range m.scratch {
			if i < len(callee.Params) {
				n.mem[base+int64(callee.Params[i])] = a
			}
		}
		f.stack = append(f.stack, frameRec{
			code: f.code, pc: f.pc + 1, base: f.base, size: f.size, retSlot: in.A,
		})
		f.code = callee
		f.pc = -1 // pc++ in the main loop brings it to 0
		f.base = base
		f.size = callee.NSlots
		return true
	}
	*t += m.cfg.EUIssue
	m.counts.RPCs++
	retSlot := int64(-1)
	if in.A >= 0 {
		retSlot = f.base + int64(in.A)
		f.addPending(retSlot)
		n.pending[retSlot]++
	} else {
		f.outstanding++
	}
	m.issueInvoke(f, *t, target, in.Fn, m.scratch, retSlot, in.Site)
	return true
}

// execShared handles the atomic shared-variable operations; returns false
// when the fiber suspended.
func (m *shard) execShared(f *fiber, t *int64, in *threaded.Instr) bool {
	n := f.node
	blocked := false
	rd := func(slot int) int64 {
		abs := f.base + int64(slot)
		if n.pending[abs] > 0 {
			blocked = true
			m.block(f, abs)
			return 0
		}
		return n.mem[abs]
	}
	addr := rd(in.B)
	var val int64
	if in.Op != threaded.OpSharedRead {
		val = rd(in.A)
	}
	if blocked {
		return false
	}
	if addr == 0 {
		m.trapf("%s@%d: shared op on null address", f.code.Name, f.pc)
		return false
	}
	m.counts.SharedOps++
	owner := threaded.AddrNode(addr)
	if owner == n.id {
		// Local atomic: EU performs it via the local SU path cheaply.
		*t += m.cfg.LocalMemCost * 2
		off := threaded.AddrOff(addr)
		if !n.ensure(off, 1) {
			m.trapf("shared op beyond the node's memory budget")
			return false
		}
		switch in.Op {
		case threaded.OpSharedRead:
			n.mem[f.base+int64(in.A)] = n.mem[off]
		case threaded.OpSharedWrite:
			n.mem[off] = val
		case threaded.OpSharedAdd:
			if in.Flt {
				sum := math.Float64frombits(uint64(n.mem[off])) + math.Float64frombits(uint64(val))
				n.mem[off] = int64(math.Float64bits(sum))
			} else {
				n.mem[off] += val
			}
		}
		return true
	}
	*t += m.cfg.EUIssue
	switch in.Op {
	case threaded.OpSharedRead:
		slot := f.base + int64(in.A)
		f.addPending(slot)
		n.pending[slot]++
		m.issueShared(f, *t, addr, 0, 0, slot, false, in.Site)
	case threaded.OpSharedWrite:
		f.outstanding++
		m.issueShared(f, *t, addr, 1, val, -1, false, in.Site)
	case threaded.OpSharedAdd:
		f.outstanding++
		m.issueShared(f, *t, addr, 2, val, -1, in.Flt, in.Site)
	}
	return true
}

// binOp evaluates a binary operation on raw words.
func binOp(op earthc.BinOp, x, y int64, flt bool) (int64, error) {
	if flt {
		a := math.Float64frombits(uint64(x))
		b := math.Float64frombits(uint64(y))
		switch op {
		case earthc.Add:
			return int64(math.Float64bits(a + b)), nil
		case earthc.Sub:
			return int64(math.Float64bits(a - b)), nil
		case earthc.Mul:
			return int64(math.Float64bits(a * b)), nil
		case earthc.Div:
			return int64(math.Float64bits(a / b)), nil
		case earthc.Lt:
			return b2i(a < b), nil
		case earthc.Gt:
			return b2i(a > b), nil
		case earthc.Le:
			return b2i(a <= b), nil
		case earthc.Ge:
			return b2i(a >= b), nil
		case earthc.Eq:
			return b2i(a == b), nil
		case earthc.Ne:
			return b2i(a != b), nil
		}
		return 0, fmt.Errorf("bad float op %v", op)
	}
	switch op {
	case earthc.Add:
		return x + y, nil
	case earthc.Sub:
		return x - y, nil
	case earthc.Mul:
		return x * y, nil
	case earthc.Div:
		if y == 0 {
			return 0, fmt.Errorf("integer division by zero")
		}
		return x / y, nil
	case earthc.Rem:
		if y == 0 {
			return 0, fmt.Errorf("integer modulo by zero")
		}
		return x % y, nil
	case earthc.And:
		return x & y, nil
	case earthc.Or:
		return x | y, nil
	case earthc.Xor:
		return x ^ y, nil
	case earthc.Shl:
		return x << uint(y&63), nil
	case earthc.Shr:
		return x >> uint(y&63), nil
	case earthc.Lt:
		return b2i(x < y), nil
	case earthc.Gt:
		return b2i(x > y), nil
	case earthc.Le:
		return b2i(x <= y), nil
	case earthc.Ge:
		return b2i(x >= y), nil
	case earthc.Eq:
		return b2i(x == y), nil
	case earthc.Ne:
		return b2i(x != y), nil
	}
	return 0, fmt.Errorf("bad int op %v", op)
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
