package earthsim

// SetFixedRTO flips the unexported retransmission-policy kill-switch so
// external tests (package earthsim_test) can compare the adaptive EWMA
// estimator against the historical fixed-timeout policy on real workloads.
func (f *FaultConfig) SetFixedRTO(v bool) { f.fixedRTO = v }
