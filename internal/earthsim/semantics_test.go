package earthsim_test

import (
	"fmt"
	"strings"
	"testing"
)

// TestForallIterationIsolation: each forall iteration captures the
// induction state at spawn time (frame copy); concurrent iterations must
// not observe each other's view of the cursor.
func TestForallIterationIsolation(t *testing.T) {
	res := run(t, `
struct C { int v; int r; struct C *next; };
int main() {
	C *head;
	C *p;
	int i;
	int s;
	head = NULL;
	for (i = 0; i < 8; i++) {
		p = alloc_on(C, i % num_nodes());
		p->v = i;
		p->r = 0;
		p->next = head;
		head = p;
	}
	forall (p = head; p != NULL; p = p->next) {
		p->r = p->v * p->v;
	}
	s = 0;
	p = head;
	while (p != NULL) {
		s = s + p->r;
		p = p->next;
	}
	return s;
}
`, 4, true)
	want := int64(0)
	for i := 0; i < 8; i++ {
		want += int64(i * i)
	}
	if res.MainRet != want {
		t.Errorf("forall result %d, want %d", res.MainRet, want)
	}
}

// TestSharedDoubleAdd: atomic adds on a shared double accumulate exactly.
func TestSharedDoubleAdd(t *testing.T) {
	res := run(t, `
struct C { double v; struct C *next; };
int main() {
	shared double total;
	C *head;
	C *p;
	int i;
	writeto(&total, 0.0);
	head = NULL;
	for (i = 0; i < 16; i++) {
		p = alloc_on(C, i % num_nodes());
		p->v = dbl(i) / 2.0;
		p->next = head;
		head = p;
	}
	forall (p = head; p != NULL; p = p->next) {
		addto(&total, p->v);
	}
	print_double(valueof(&total));
	return trunc(valueof(&total));
}
`, 4, false)
	want := 0.0
	for i := 0; i < 16; i++ {
		want += float64(i) / 2.0
	}
	if res.Output != fmt.Sprintf("%.6f\n", want) {
		t.Errorf("got %q want %.6f", res.Output, want)
	}
}

// TestRemoteStructCopyRoundTrip: whole-struct copies through remote
// pointers move every field intact in both directions.
func TestRemoteStructCopyRoundTrip(t *testing.T) {
	res := run(t, `
struct R { int a; double d; int b; struct R *self; };
int main() {
	R *src;
	R *dst;
	R tmp;
	src = alloc_on(R, num_nodes() - 1);
	dst = alloc_on(R, num_nodes() - 1);
	src->a = 11;
	src->d = 2.5;
	src->b = 33;
	src->self = src;
	tmp = *src;
	*dst = tmp;
	if (dst->self != src) return -1;
	print_int(dst->a);
	print_double(dst->d);
	print_int(dst->b);
	return dst->a + dst->b;
}
`, 2, true)
	if res.MainRet != 44 {
		t.Errorf("got %d want 44 (output %q)", res.MainRet, res.Output)
	}
	if !strings.Contains(res.Output, "2.500000") {
		t.Errorf("double field lost: %q", res.Output)
	}
}

// TestVoidPlacedCallCompletesBeforeJoin: a void RPC must finish before the
// spawning region's synchronization lets dependent reads run.
func TestVoidPlacedCallCompletesBeforeJoin(t *testing.T) {
	res := run(t, `
struct P { int v; };
void bump(P local *p) {
	p->v = p->v + 1;
}
int main() {
	P *p;
	int i;
	p = alloc_on(P, 1);
	p->v = 0;
	for (i = 0; i < 10; i++) {
		bump(p)@OWNER_OF(p);
	}
	return p->v;
}
`, 2, false)
	if res.MainRet != 10 {
		t.Errorf("void RPCs lost updates: got %d want 10", res.MainRet)
	}
}

// TestNestedParSeq: parallel sequences nest (arms spawning arms).
func TestNestedParSeq(t *testing.T) {
	res := run(t, `
int main() {
	int a;
	int b;
	int c;
	int d;
	{^
		{^
			a = 1;
			b = 2;
		^}
		{^
			c = 3;
			d = 4;
		^}
	^}
	return a + b * 10 + c * 100 + d * 1000;
}
`, 2, false)
	if res.MainRet != 4321 {
		t.Errorf("nested parseq: got %d want 4321", res.MainRet)
	}
}

// TestRecursiveParallelDivide: the tsp/voronoi pattern — parallel recursion
// with placed calls — on a synthetic reduction.
func TestRecursiveParallelDivide(t *testing.T) {
	res := run(t, `
struct N { int v; struct N *left; struct N *right; };

N *build(int n, int node, int lvl) {
	N *t;
	int c1;
	int c2;
	if (n <= 0) return NULL;
	t = alloc(N);
	t->v = n;
	if (lvl > 0) {
		c1 = (2 * node) % num_nodes();
		c2 = (2 * node + 1) % num_nodes();
		t->left = build(n - 1, c1, lvl - 1)@ON(c1);
		t->right = build(n - 2, c2, lvl - 1)@ON(c2);
		return t;
	}
	t->left = build(n - 1, node, 0);
	t->right = build(n - 2, node, 0);
	return t;
}

int sum(N *t) {
	int l;
	int r;
	N *lc;
	N *rc;
	if (t == NULL) return 0;
	lc = t->left;
	rc = t->right;
	l = 0;
	r = 0;
	if (lc != NULL && rc != NULL) {
		{^
			l = sum(lc)@OWNER_OF(lc);
			r = sum(rc)@OWNER_OF(rc);
		^}
	} else {
		if (lc != NULL) l = sum(lc)@OWNER_OF(lc);
		if (rc != NULL) r = sum(rc)@OWNER_OF(rc);
	}
	return t->v + l + r;
}

int seqsum(N *t) {
	if (t == NULL) return 0;
	return t->v + seqsum(t->left) + seqsum(t->right);
}

int main() {
	N *root;
	int a;
	int b;
	root = build(8, 0, 2);
	a = sum(root);
	b = seqsum(root);
	if (a != b) return -1;
	return a;
}
`, 4, true)
	if res.MainRet <= 0 {
		t.Errorf("parallel and sequential sums disagree (ret %d)", res.MainRet)
	}
}

// TestOwnerOfNullInArmTraps: @OWNER_OF(NULL) traps rather than corrupting.
func TestOwnerOfNullInArmTraps(t *testing.T) {
	src := `
struct P { int v; };
int get(P local *p) { return p->v; }
int main() {
	P *p;
	int x;
	p = NULL;
	x = get(p)@OWNER_OF(p);
	return x;
}
`
	err := runErr(t, src, 2)
	if err == nil || !strings.Contains(err.Error(), "OWNER_OF(NULL)") {
		t.Errorf("expected an @OWNER_OF(NULL) trap, got %v", err)
	}
}

// TestSwitchDispatch: multi-way dispatch with shared and default cases.
func TestSwitchDispatch(t *testing.T) {
	res := run(t, `
int classify(int k) {
	int r;
	switch (k) {
	case 0: r = 100;
	case 1:
	case 2: r = 200;
	case 3: r = 300;
	default: r = 900;
	}
	return r;
}
int main() {
	return classify(0) + classify(1) + classify(2) + classify(3) + classify(7);
}
`, 1, true)
	if res.MainRet != 100+200+200+300+900 {
		t.Errorf("switch dispatch: got %d", res.MainRet)
	}
}
