package earthsim

import (
	"strings"
	"testing"
)

func TestParseOverridesEmpty(t *testing.T) {
	for _, spec := range []string{"", "   ", "\t"} {
		cfg, err := ParseOverrides(spec)
		if err != nil {
			t.Errorf("ParseOverrides(%q) error: %v", spec, err)
		}
		if cfg != nil {
			t.Errorf("ParseOverrides(%q) = %+v, want nil (no override)", spec, cfg)
		}
	}
}

func TestParseOverridesApplies(t *testing.T) {
	cfg, err := ParseOverrides("NetLatency=2500, suservice =800")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NetLatency != 2500 {
		t.Errorf("NetLatency = %d", cfg.NetLatency)
	}
	if cfg.SUService != 800 {
		t.Errorf("case-insensitive name with spaces not applied: SUService = %d", cfg.SUService)
	}
	// Untouched fields keep the calibrated defaults.
	def := DefaultConfig(1)
	if cfg.EUIssue != def.EUIssue {
		t.Errorf("EUIssue changed: %d vs default %d", cfg.EUIssue, def.EUIssue)
	}
}

func TestParseOverridesErrors(t *testing.T) {
	cases := []struct {
		spec    string
		wantSub string
	}{
		{"NetLatency", "want Name=value"},                     // no '='
		{"NetLatency=abc", "bad cost override"},               // not a number
		{"NetLatency=2.5", "bad cost override"},               // not an integer
		{"NoSuchParam=5", "unknown cost parameter"},           // unknown name
		{"NetLatency=-3", "non-negative"},                     // negative value
		{"Nodes=8", "unknown cost parameter"},                 // Nodes is not settable
		{"NetLatency=2500,bogus=1", "unknown cost parameter"}, // error after a valid entry
	}
	for _, tc := range cases {
		cfg, err := ParseOverrides(tc.spec)
		if err == nil {
			t.Errorf("ParseOverrides(%q) accepted (cfg=%+v)", tc.spec, cfg)
			continue
		}
		if cfg != nil {
			t.Errorf("ParseOverrides(%q) returned a config alongside the error", tc.spec)
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("ParseOverrides(%q) error %q, want it to mention %q", tc.spec, err, tc.wantSub)
		}
	}
}

func TestConfigParamsListsInt64Fields(t *testing.T) {
	params := ConfigParams()
	if len(params) == 0 {
		t.Fatal("no settable parameters")
	}
	seen := map[string]bool{}
	for _, p := range params {
		seen[p] = true
	}
	for _, want := range []string{"NetLatency", "SUService"} {
		if !seen[want] {
			t.Errorf("ConfigParams missing %s: %v", want, params)
		}
	}
	if seen["Nodes"] {
		t.Error("ConfigParams lists Nodes, which the run configuration owns")
	}
}
