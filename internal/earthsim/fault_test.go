package earthsim

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/threaded"
)

func TestParseFaultSpec(t *testing.T) {
	f, err := ParseFaultSpec("drop=0.01, dup=0.005, delay=3, stall=0.1, stallns=5000, timeout=50000, retries=9, seed=42")
	if err != nil {
		t.Fatal(err)
	}
	if f.Drop != 0.01 || f.Dup != 0.005 || f.Delay != 3 || f.Stall != 0.1 {
		t.Errorf("distributions misparsed: %+v", f)
	}
	if f.StallNs != 5000 || f.Timeout != 50000 || f.MaxRetries != 9 || f.Seed != 42 {
		t.Errorf("parameters misparsed: %+v", f)
	}

	if f, err := ParseFaultSpec("  "); err != nil || f != nil {
		t.Errorf("empty spec must be (nil, nil), got (%v, %v)", f, err)
	}
	for _, bad := range []string{
		"drop",          // no value
		"drop=x",        // not a number
		"drop=1.5",      // probability out of [0,1)
		"drop=-0.1",     // negative probability
		"delay=-2",      // negative parameter
		"jitter=3",      // unknown key
		"timeout=abc",   // not an integer
		"drop=0.5,dup6", // malformed entry
	} {
		if _, err := ParseFaultSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestFaultSpecString(t *testing.T) {
	f, err := ParseFaultSpec("drop=0.05,dup=0.01,delay=3,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	round, err := ParseFaultSpec(f.String())
	if err != nil {
		t.Fatalf("String() output %q did not re-parse: %v", f, err)
	}
	if *round != *f {
		t.Errorf("spec did not round-trip: %q vs %q", f, round)
	}
	if (&FaultConfig{}).String() != "none" {
		t.Errorf("empty config String = %q", (&FaultConfig{}).String())
	}
}

// loopProg is a guest that never terminates: a one-instruction jump loop.
func loopProg() *threaded.Program {
	fc := &threaded.FnCode{Name: "main", NSlots: 1}
	fc.Code = []threaded.Instr{{Op: threaded.OpJmp, C: 0}}
	return &threaded.Program{Funcs: map[string]*threaded.FnCode{"main": fc}, Main: fc}
}

func TestFuelExhausted(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.Fuel = 1000
	_, err := New(loopProg(), cfg).Run()
	if !errors.Is(err, ErrFuelExhausted) {
		t.Fatalf("want ErrFuelExhausted, got %v", err)
	}
	if !strings.Contains(err.Error(), "fuel") {
		t.Errorf("error does not mention fuel: %v", err)
	}
}

func TestWallDeadline(t *testing.T) {
	m := New(loopProg(), DefaultConfig(1))
	m.SetDeadline(time.Nanosecond)
	_, err := m.Run()
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("want ErrDeadline, got %v", err)
	}
}

// TestFaultFreeScheduleUnchanged locks the zero-cost-when-disabled property
// at the event level: with Config.Faults nil, sendMsg must be exactly the
// pre-fault path (no transactions, no sequence numbers, no timers).
func TestFaultFreeScheduleUnchanged(t *testing.T) {
	prog := loopProg()
	m := New(prog, DefaultConfig(2)).sh[0]
	g := m.getMsg()
	g.class, g.f, g.src, g.dst = 0, nil, m.nodes[0], m.nodes[1]
	m.sendMsg(g, 0, 100)
	if g.seq != 0 || g.lseq != 0 {
		t.Errorf("fault-free sendMsg assigned sequence numbers: seq=%d lseq=%d", g.seq, g.lseq)
	}
	if len(m.events) != 1 {
		t.Errorf("fault-free sendMsg scheduled %d events, want 1 (no retry timer)", len(m.events))
	}
	if m.txns != nil || m.seen != nil {
		t.Error("fault-free machine allocated protocol state")
	}
}

// TestRetryBackoffCap: the retransmit timeout doubles per retry but is
// capped, so a long outage cannot push the timer past all usefulness.
func TestRetryBackoffCap(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Faults = &FaultConfig{Drop: 0.9999, MaxRetries: 6, Seed: 1}
	m := New(loopProg(), cfg).sh[0]
	g := m.getMsg()
	g.class, g.src, g.dst = 0, m.nodes[0], m.nodes[1]
	m.sendMsg(g, 0, 100)
	tx := m.txns[g.seq]
	base := cfg.Faults.timeout()
	for i := 0; i < 20 && m.trap == nil; i++ {
		m.retryFire(tx, int64(i)*base)
		if tx.timeout > base*backoffCapFactor {
			t.Fatalf("timeout %d exceeds cap %d", tx.timeout, base*backoffCapFactor)
		}
	}
	if m.trap == nil {
		t.Fatal("exhausted retries must trap the run")
	}
	if !strings.Contains(m.trap.Error(), "retry budget") {
		t.Errorf("trap does not explain the retry budget: %v", m.trap)
	}
}
