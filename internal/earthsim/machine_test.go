package earthsim

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/threaded"
	"repro/internal/trace"
)

// drain processes every pending event regardless of main's state.
func drain(m *shard) {
	for len(m.events) > 0 {
		m.dispatch(m.events.pop())
	}
}

// TestAddrPacking checks the global-address scheme round-trips.
func TestAddrPacking(t *testing.T) {
	for _, node := range []int{0, 1, 7, 200} {
		for _, off := range []int64{0, 1, 12345, 1 << 30} {
			a := threaded.PackAddr(node, off)
			if a == 0 {
				t.Fatalf("packed address must be nonzero (node %d off %d)", node, off)
			}
			if threaded.AddrNode(a) != node || threaded.AddrOff(a) != off {
				t.Errorf("round trip failed: node %d off %d -> %d/%d",
					node, off, threaded.AddrNode(a), threaded.AddrOff(a))
			}
		}
	}
	if threaded.AddrNode(0) != -1 {
		t.Error("address 0 must decode to an invalid node (null)")
	}
}

// TestSUTaskSerialization: the SU is a serial resource — overlapping tasks
// queue behind each other.
func TestSUTaskSerialization(t *testing.T) {
	prog := &threaded.Program{
		Funcs: map[string]*threaded.FnCode{"main": {Name: "main", NSlots: 1,
			Code: []threaded.Instr{{Op: threaded.OpRet, A: -1}}}},
	}
	prog.Main = prog.Funcs["main"]
	m := New(prog, DefaultConfig(1)).sh[0]
	n := m.nodes[0]
	for i := 0; i < 3; i++ {
		g := m.getMsg()
		g.class, g.stage = trace.ClassGet, 1
		m.suSched(n, 0, 100, g)
	}
	var done []int64
	for len(m.events) > 0 {
		done = append(done, m.events.pop().time)
	}
	if len(done) != 3 || done[0] != 100 || done[1] != 200 || done[2] != 300 {
		t.Errorf("SU tasks must serialize: got %v", done)
	}
}

// TestNetFIFO: messages between one (src, dst) pair arrive in send order
// even when a later message is smaller/faster.
func TestNetFIFO(t *testing.T) {
	prog := &threaded.Program{
		Funcs: map[string]*threaded.FnCode{"main": {Name: "main", NSlots: 1,
			Code: []threaded.Instr{{Op: threaded.OpRet, A: -1}}}},
	}
	prog.Main = prog.Funcs["main"]
	m := New(prog, DefaultConfig(2)).sh[0]
	src, dst := m.nodes[0], m.nodes[1]
	// A large (slow) message sent first, then a zero-payload one.
	g1, g2 := m.getMsg(), m.getMsg()
	g1.class, g1.stage = trace.ClassGet, 2
	g2.class, g2.stage = trace.ClassGet, 2
	m.netSched(src, dst, 0, 100, g1)
	m.netSched(src, dst, 1, 0, g2)
	var order []*msg
	for len(m.events) > 0 {
		order = append(order, m.events.pop().g)
	}
	if len(order) != 2 || order[0] != g1 || order[1] != g2 {
		t.Errorf("per-link FIFO violated: %v", order)
	}
}

// TestFrameReuse: freed frames are reused and re-zeroed.
func TestFrameReuse(t *testing.T) {
	prog := &threaded.Program{
		Funcs: map[string]*threaded.FnCode{"main": {Name: "main", NSlots: 1,
			Code: []threaded.Instr{{Op: threaded.OpRet, A: -1}}}},
	}
	prog.Main = prog.Funcs["main"]
	m := New(prog, DefaultConfig(1))
	n := m.nodes[0]
	b1 := n.allocFrame(8)
	n.mem[b1+3] = 99
	n.freeFrame(b1, 8)
	b2 := n.allocFrame(8)
	if b2 != b1 {
		t.Errorf("frame not reused: %d vs %d", b2, b1)
	}
	if n.mem[b2+3] != 0 {
		t.Error("reused frame not zeroed")
	}
}

// TestDeadlockDetection: a fiber blocked on a slot nobody fills is reported
// as a deadlock, not a hang.
func TestDeadlockDetection(t *testing.T) {
	fc := &threaded.FnCode{Name: "main", NSlots: 2}
	fc.Code = []threaded.Instr{
		{Op: threaded.OpJoin}, // no children ever: fine
		{Op: threaded.OpRet, A: -1},
	}
	prog := &threaded.Program{Funcs: map[string]*threaded.FnCode{"main": fc}, Main: fc}
	if _, err := New(prog, DefaultConfig(1)).Run(); err != nil {
		t.Fatalf("empty join should complete: %v", err)
	}

	// A fiber parked on a slot no one will fill must surface as a
	// deadlock error rather than a hang.
	fc2 := &threaded.FnCode{Name: "main", NSlots: 2}
	fc2.Code = []threaded.Instr{
		{Op: threaded.OpMove, A: 0, B: 1},
		{Op: threaded.OpRet, A: -1},
	}
	prog2 := &threaded.Program{Funcs: map[string]*threaded.FnCode{"main": fc2}, Main: fc2}
	m := New(prog2, DefaultConfig(1))
	// Mark slot 1 of the (future) main frame as eternally pending. The main
	// frame lands at the current heap top.
	base := m.nodes[0].heapTop
	m.nodes[0].pending[base+1] = 1
	_, err := m.Run()
	if err == nil {
		t.Fatal("expected a deadlock error for an unfillable pending slot")
	}
	if !errors.Is(err, ErrDeadlock) {
		t.Errorf("deadlock error does not wrap ErrDeadlock: %v", err)
	}
	// The diagnostic must name the stuck fiber and the slot it waits on.
	for _, want := range []string{"blocked fibers", "main@", "frame slot 1"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("deadlock report missing %q: %v", want, err)
		}
	}
}

// TestMainReturnPropagates: the value returned by main surfaces in Result.
func TestMainReturnPropagates(t *testing.T) {
	fc := &threaded.FnCode{Name: "main", NSlots: 1}
	fc.Code = []threaded.Instr{
		{Op: threaded.OpLoadImm, A: 0, Imm: 77},
		{Op: threaded.OpRet, A: 0},
	}
	prog := &threaded.Program{Funcs: map[string]*threaded.FnCode{"main": fc}, Main: fc}
	res, err := New(prog, DefaultConfig(1)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.MainRet != 77 {
		t.Errorf("MainRet = %d, want 77", res.MainRet)
	}
	if res.Counts.Instructions != 2 {
		t.Errorf("instructions = %d, want 2", res.Counts.Instructions)
	}
}

// TestCountsString smoke-checks the Counts renderer.
func TestCountsString(t *testing.T) {
	c := Counts{RemoteReads: 5, RemoteWrites: 2, RemoteBlk: 1}
	if c.TotalRemote() != 8 {
		t.Errorf("TotalRemote = %d", c.TotalRemote())
	}
	if len(c.String()) == 0 {
		t.Error("empty Counts string")
	}
}
