package placement_test

import (
	"testing"

	"repro/internal/simple"
)

// TestSwitchFrequencyDivision: tuples leaving a switch carry frequency 1/k.
func TestSwitchFrequencyDivision(t *testing.T) {
	src := `
struct P { int a; int b; };
int g(P *p, int k) {
	int x;
	x = 0;
	switch (k) {
	case 0: x = p->a;
	case 1: x = p->a;
	case 2: x = p->a;
	default: x = p->b;
	}
	return x;
}
int main() { return 0; }
`
	f, res := analyze(t, src, "g")
	first := findBasic(f, "x = 0")
	set := res.Reads[simple.Stmt(first)]
	// (p->a) appears in 3 of 4 alternatives: 3 * 1/4 = 0.75.
	if !setHas(set, "p", "a", 0.75) {
		t.Errorf("(p->a) above the switch should have frequency 0.75: %s", set)
	}
	if !setHas(set, "p", "b", 0.25) {
		t.Errorf("(p->b) above the switch should have frequency 0.25: %s", set)
	}
}

// TestDoLoopReadsHoist: do-loops use the same conservative hoisting rule as
// while loops (frequency x10, kills apply).
func TestDoLoopReadsHoist(t *testing.T) {
	src := `
struct P { int a; struct P *next; };
int g(P *list, P *t) {
	int s;
	s = 0;
	do {
		s = s + t->a;
		list = list->next;
	} while (list != NULL);
	return s;
}
int main() { return 0; }
`
	f, res := analyze(t, src, "g")
	first := findBasic(f, "s = 0")
	set := res.Reads[simple.Stmt(first)]
	if !setHas(set, "t", "a", 10) {
		t.Errorf("(t->a) should hoist out of the do loop with frequency 10: %s", set)
	}
	if setHas(set, "list", "next", -1) {
		t.Errorf("(list->next) must die at the loop (list reassigned): %s", set)
	}
}

// TestWritesNeverLeaveLoops: the paper's executesOnce condition means no
// write moves below a general loop.
func TestWritesNeverLeaveLoops(t *testing.T) {
	src := `
struct P { int a; };
void g(P *p, int n) {
	int i;
	int y;
	i = 0;
	while (i < n) {
		p->a = i;
		i = i + 1;
	}
	y = n + 1;
}
int main() { return 0; }
`
	f, res := analyze(t, src, "g")
	last := findBasic(f, "y = n + 1")
	set := res.Writes[simple.Stmt(last)]
	if setHas(set, "p", "a", -1) {
		t.Errorf("writes must not move below a loop: %s", set)
	}
}

// TestParArmTuplesHoist: reads from non-interfering parallel arms may move
// above the parallel sequence.
func TestParArmTuplesHoist(t *testing.T) {
	src := `
struct P { int a; int b; };
int g(P *p, P *q) {
	int x;
	int y;
	int z;
	z = 0;
	{^
		x = p->a;
		y = q->b;
	^}
	return x + y + z;
}
int main() {
	P *a;
	P *b;
	a = alloc(P);
	b = alloc(P);
	return g(a, b);
}
`
	f, res := analyze(t, src, "g")
	first := findBasic(f, "z = 0")
	set := res.Reads[simple.Stmt(first)]
	if !setHas(set, "p", "a", 1) || !setHas(set, "q", "b", 1) {
		t.Errorf("arm reads should hoist above the parallel sequence: %s", set)
	}
}
