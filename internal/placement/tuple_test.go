package placement

import (
	"testing"
	"testing/quick"

	"repro/internal/simple"
)

func tup(p *simple.Var, off int, freq float64, labels ...int) *Tuple {
	var d LabelSet
	for _, l := range labels {
		d.Add(l)
	}
	return &Tuple{P: p, Field: "f", Off: off, Freq: freq, D: d}
}

func TestSetMergeSumsFrequency(t *testing.T) {
	p := &simple.Var{Name: "p"}
	s := NewSet()
	s.Add(tup(p, 0, 0.5, 1))
	s.Add(tup(p, 0, 0.5, 2))
	ts := s.Tuples()
	if len(ts) != 1 {
		t.Fatalf("tuples for the same location must merge, got %d", len(ts))
	}
	if ts[0].Freq != 1.0 {
		t.Errorf("frequencies should sum: got %v", ts[0].Freq)
	}
	if len(ts[0].D) != 2 {
		t.Errorf("Dlists should union: got %v", ts[0].Labels())
	}
}

func TestSetDistinctOffsetsStaySeparate(t *testing.T) {
	p := &simple.Var{Name: "p"}
	s := NewSet()
	s.Add(tup(p, 0, 1, 1))
	s.Add(tup(p, 1, 1, 2))
	if s.Len() != 2 {
		t.Errorf("different offsets are different locations: got %d", s.Len())
	}
}

func TestSetAddIsIdempotentOnLabels(t *testing.T) {
	p := &simple.Var{Name: "p"}
	s := NewSet()
	s.Add(tup(p, 0, 1, 3))
	s.Add(tup(p, 0, 1, 3))
	ts := s.Tuples()
	if len(ts[0].D) != 1 {
		t.Errorf("label union must be idempotent, got %v", ts[0].Labels())
	}
}

func TestSetCloneIsDeep(t *testing.T) {
	p := &simple.Var{Name: "p"}
	s := NewSet()
	s.Add(tup(p, 0, 1, 1))
	c := s.Clone()
	c.Add(tup(p, 0, 2, 9))
	if s.Tuples()[0].Freq != 1 || len(s.Tuples()[0].D) != 1 {
		t.Error("mutating the clone changed the original")
	}
}

// TestSetMergeLaws: merging is commutative and associative on frequencies
// and label sets (property-based).
func TestSetMergeLaws(t *testing.T) {
	p := &simple.Var{Name: "p"}
	type spec struct {
		Off   uint8
		Freq  uint8
		Label uint8
	}
	build := func(specs []spec) *Set {
		s := NewSet()
		for _, sp := range specs {
			s.Add(tup(p, int(sp.Off%4), float64(sp.Freq%8), int(sp.Label%16)))
		}
		return s
	}
	f := func(a, b []spec) bool {
		ab := build(append(append([]spec{}, a...), b...))
		ba := build(append(append([]spec{}, b...), a...))
		return ab.String() == ba.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTupleStringFormat(t *testing.T) {
	p := &simple.Var{Name: "p"}
	tu := tup(p, 0, 11, 4, 11)
	want := "(p->f, 11, {S4,S11})"
	if tu.String() != want {
		t.Errorf("got %q want %q", tu.String(), want)
	}
}

func TestScale(t *testing.T) {
	p := &simple.Var{Name: "p"}
	s := NewSet()
	s.Add(tup(p, 0, 1, 1))
	s.scale(10)
	if s.Tuples()[0].Freq != 10 {
		t.Errorf("scale x10 failed: %v", s.Tuples()[0].Freq)
	}
}
