package placement_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/placement"
	"repro/internal/simple"
)

// fakeProfile is a FreqProvider backed by literal per-site factors; sites
// not listed decline (the static heuristics must then apply).
type fakeProfile struct {
	loops    map[string]float64
	branches map[string]float64 // then-probability
	switches map[string][]float64
}

func (f *fakeProfile) LoopFactor(site string) (float64, bool) {
	v, ok := f.loops[site]
	return v, ok
}

func (f *fakeProfile) BranchFactors(site string) (float64, float64, bool) {
	v, ok := f.branches[site]
	if !ok {
		return 0, 0, false
	}
	return v, 1 - v, true
}

func (f *fakeProfile) SwitchFactors(site string, ncases int) ([]float64, bool) {
	v, ok := f.switches[site]
	if !ok || len(v) != ncases {
		return nil, false
	}
	return v, true
}

const freqSrc = `
struct Point {
	double x;
	double y;
	struct Point *next;
};

double g(Point *p, int c) {
	double a; double b;
	a = 0.0;
	while (c > 0) {
		a = a + p->x;
		c = c - 1;
	}
	if (c > 10) { b = p->y; } else { b = 0.0; }
	return a + b;
}

int main() { return 0; }
`

// compileFreq compiles the test program and returns the function plus the
// site keys of its while loop and if statement.
func compileFreq(t *testing.T) (*core.Unit, *simple.Func, string, string) {
	t.Helper()
	u, err := core.NewPipeline(core.Options{NoInline: true}).Compile("t.ec", freqSrc)
	if err != nil {
		t.Fatal(err)
	}
	f := u.Simple.FuncByName("g")
	if f == nil {
		t.Fatal("no function g")
	}
	var loopKey, ifKey string
	simple.WalkStmts(f.Body, func(s simple.Stmt) {
		switch s.(type) {
		case *simple.While, *simple.Do:
			loopKey = simple.CompoundSiteKey(f.Name, simple.SiteOf(s))
		case *simple.If:
			if ifKey == "" {
				ifKey = simple.CompoundSiteKey(f.Name, simple.SiteOf(s))
			}
		}
	})
	if loopKey == "" || ifKey == "" {
		t.Fatalf("site keys not assigned: loop=%q if=%q", loopKey, ifKey)
	}
	return u, f, loopKey, ifKey
}

// TestFreqProviderOverridesStatics: measured factors replace ×10 and ÷2.
func TestFreqProviderOverridesStatics(t *testing.T) {
	u, f, loopKey, ifKey := compileFreq(t)
	fp := &fakeProfile{
		loops:    map[string]float64{loopKey: 3.5},
		branches: map[string]float64{ifKey: 0.9},
	}
	res := placement.AnalyzeProfiled(u.Simple, u.RWSets, u.Locality, fp)

	var loopStmt, ifStmt simple.Stmt
	simple.WalkStmts(f.Body, func(s simple.Stmt) {
		switch s.(type) {
		case *simple.While, *simple.Do:
			loopStmt = s
		case *simple.If:
			if ifStmt == nil {
				ifStmt = s
			}
		}
	})
	if !setHas(res.Reads[loopStmt], "p", "x", 3.5) {
		t.Errorf("(p->x) hoisted out of the loop should carry the measured factor 3.5: %s",
			res.Reads[loopStmt])
	}
	if !setHas(res.Reads[ifStmt], "p", "y", 0.9) {
		t.Errorf("(p->y) above the if should carry the measured then-probability 0.9: %s",
			res.Reads[ifStmt])
	}
}

// TestFreqProviderFallback: a provider with no data (and a nil provider)
// reproduce the static ×10/÷2 factors exactly.
func TestFreqProviderFallback(t *testing.T) {
	u, f, _, _ := compileFreq(t)
	empty := &fakeProfile{}
	for _, res := range []*placement.Result{
		placement.AnalyzeProfiled(u.Simple, u.RWSets, u.Locality, empty),
		placement.Analyze(u.Simple, u.RWSets, u.Locality),
	} {
		var loopStmt, ifStmt simple.Stmt
		simple.WalkStmts(f.Body, func(s simple.Stmt) {
			switch s.(type) {
			case *simple.While, *simple.Do:
				loopStmt = s
			case *simple.If:
				if ifStmt == nil {
					ifStmt = s
				}
			}
		})
		if !setHas(res.Reads[loopStmt], "p", "x", placement.LoopFreq) {
			t.Errorf("(p->x) should fall back to the static x%v: %s",
				placement.LoopFreq, res.Reads[loopStmt])
		}
		if !setHas(res.Reads[ifStmt], "p", "y", 0.5) {
			t.Errorf("(p->y) should fall back to the static 0.5: %s", res.Reads[ifStmt])
		}
	}
}

// TestSwitchFreqProvider: measured per-case probabilities replace ÷k.
func TestSwitchFreqProvider(t *testing.T) {
	src := `
struct P { int a; int b; };
int g(P *p, int k) {
	int x;
	x = 0;
	switch (k) {
	case 0: x = p->a;
	case 1: x = p->a;
	case 2: x = p->a;
	default: x = p->b;
	}
	return x;
}
int main() { return 0; }
`
	u, err := core.NewPipeline(core.Options{NoInline: true}).Compile("t.ec", src)
	if err != nil {
		t.Fatal(err)
	}
	f := u.Simple.FuncByName("g")
	var swKey string
	simple.WalkStmts(f.Body, func(s simple.Stmt) {
		if _, ok := s.(*simple.Switch); ok {
			swKey = simple.CompoundSiteKey(f.Name, simple.SiteOf(s))
		}
	})
	if swKey == "" {
		t.Fatal("switch site not assigned")
	}
	fp := &fakeProfile{switches: map[string][]float64{
		swKey: {0.125, 0.25, 0.25, 0.375},
	}}
	res := placement.AnalyzeProfiled(u.Simple, u.RWSets, u.Locality, fp)
	first := findBasic(f, "x = 0")
	set := res.Reads[simple.Stmt(first)]
	// (p->a) appears in cases 0..2: 0.125+0.25+0.25 = 0.625; (p->b) in
	// default: 0.375 (dyadic fractions, so the sums are exact).
	if !setHas(set, "p", "a", 0.625) {
		t.Errorf("(p->a) should carry the summed measured case probabilities 0.625: %s", set)
	}
	if !setHas(set, "p", "b", 0.375) {
		t.Errorf("(p->b) should carry the measured default probability 0.375: %s", set)
	}
}
