package placement_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/placement"
	"repro/internal/simple"
)

// analyze compiles with optimization disabled for the transform but runs
// the placement analysis, returning the function and its sets.
func analyze(t *testing.T, src, fn string) (*simple.Func, *placement.Result) {
	t.Helper()
	u, err := core.NewPipeline(core.Options{NoInline: true}).Compile("t.ec", src)
	if err != nil {
		t.Fatal(err)
	}
	res := placement.Analyze(u.Simple, u.RWSets, u.Locality)
	f := u.Simple.FuncByName(fn)
	if f == nil {
		t.Fatalf("no function %s", fn)
	}
	return f, res
}

// figure7Src is the paper's Figure 7 program (statement labels S2..S15 in
// the paper correspond to our labels in lowering order).
const figure7Src = `
struct Point {
	double x;
	double y;
	struct Point *next;
};

double f(double ax, double ay, double bx, double by) {
	return ax - bx + ay - by;
}

double example(Point *head, Point *t, double epsilon) {
	Point *p;
	Point *close;
	double ax; double ay; double bx; double by;
	double cx; double tx; double diffx;
	double cy; double ty; double diffy;
	double dist;
	close = NULL;
	p = head;
	while (p != NULL) {
		ax = p->x;
		ay = p->y;
		bx = t->x;
		by = t->y;
		dist = f(ax, ay, bx, by);
		if (dist < epsilon) close = p;
		p = p->next;
	}
	cx = close->x;
	tx = t->x;
	diffx = cx - tx;
	cy = close->y;
	ty = t->y;
	diffy = cy - ty;
	return diffx + diffy;
}

int main() { return 0; }
`

// findBasic locates the basic statement whose printed text contains the
// fragment.
func findBasic(f *simple.Func, fragment string) *simple.Basic {
	var out *simple.Basic
	simple.WalkBasics(f.Body, func(b *simple.Basic) {
		if out == nil && strings.Contains(simple.BasicText(b), fragment) {
			out = b
		}
	})
	return out
}

// setHas reports whether the set contains a tuple (pname->field) with the
// given frequency (freq < 0 skips the check).
func setHas(s *placement.Set, pname, field string, freq float64) bool {
	if s == nil {
		return false
	}
	for _, tu := range s.Tuples() {
		if tu.P.Name == pname && tu.Field == field {
			if freq >= 0 && tu.Freq != freq {
				return false
			}
			return true
		}
	}
	return false
}

// TestFigure7LoopBody reproduces the paper's per-statement RemoteReads sets
// inside the loop body (paper statements S9..S15).
func TestFigure7LoopBody(t *testing.T) {
	f, res := analyze(t, figure7Src, "example")

	// Before "ax = p->x" (paper S9): {(p->next,1,S15), (p->y,1,S10), (p->x,1,S9)}
	// — t->x and t->y were already consumed going backward... in the paper
	// the set is {(p->next), (t->y), (t->x), (p->y), (p->x)} minus the ones
	// killed; our exact reproduction: the set before the first body
	// statement contains p->x, p->y, p->next, t->x, t->y.
	s9 := findBasic(f, "ax = p->x")
	set := res.Reads[simple.Stmt(s9)]
	if set == nil {
		t.Fatal("no RemoteReads before ax = p->x")
	}
	for _, want := range []struct{ p, f string }{
		{"p", "x"}, {"p", "y"}, {"p", "next"}, {"t", "x"}, {"t", "y"},
	} {
		if !setHas(set, want.p, want.f, -1) {
			t.Errorf("RemoteReads(ax = p->x) missing (%s->%s): %s", want.p, want.f, set)
		}
	}

	// Before "bx = t->x" (paper S11): p->x is gone (its read is above),
	// p->y gone, p->next remains, t->x and t->y remain.
	s11 := findBasic(f, "bx = t->x")
	set11 := res.Reads[simple.Stmt(s11)]
	if setHas(set11, "p", "x", -1) || setHas(set11, "p", "y", -1) {
		t.Errorf("RemoteReads(bx = t->x) should not contain p->x/p->y: %s", set11)
	}
	for _, want := range []struct{ p, f string }{
		{"p", "next"}, {"t", "x"}, {"t", "y"},
	} {
		if !setHas(set11, want.p, want.f, -1) {
			t.Errorf("RemoteReads(bx = t->x) missing (%s->%s): %s", want.p, want.f, set11)
		}
	}
}

// TestFigure7LoopExit reproduces the paper's key result: the loop writes p,
// so p-tuples die at the loop, while the t-tuples hoist out with frequency
// 11 (1 outside + 10 from the loop) and close-tuples appear after the loop.
func TestFigure7LoopExit(t *testing.T) {
	f, res := analyze(t, figure7Src, "example")

	// Before "p = head" (paper S1/S2): {(t->x,11), (t->y,11)}.
	pHead := findBasic(f, "p = head")
	set := res.Reads[simple.Stmt(pHead)]
	if !setHas(set, "t", "x", 11) {
		t.Errorf("set before 'p = head' should contain (t->x, 11): %s", set)
	}
	if !setHas(set, "t", "y", 11) {
		t.Errorf("set before 'p = head' should contain (t->y, 11): %s", set)
	}
	if setHas(set, "p", "x", -1) || setHas(set, "close", "x", -1) {
		t.Errorf("p/close tuples must not survive above the loop (p reassigned, close conditional): %s", set)
	}

	// Before "cx = close->x" (paper S3): close->x, close->y, t->x, t->y.
	cx := findBasic(f, "cx = close->x")
	set3 := res.Reads[simple.Stmt(cx)]
	for _, want := range []struct{ p, f string }{
		{"close", "x"}, {"close", "y"}, {"t", "x"}, {"t", "y"},
	} {
		if !setHas(set3, want.p, want.f, -1) {
			t.Errorf("RemoteReads(cx = close->x) missing (%s->%s): %s", want.p, want.f, set3)
		}
	}
}

// TestFrequencyAdjustments checks the paper's adjustFrequency rules: /2 for
// if branches, x10 for loops.
func TestFrequencyAdjustments(t *testing.T) {
	src := `
struct P { int a; int b; };
int g(P *p, int c) {
	int x;
	x = 0;
	if (c) {
		x = p->a;
	} else {
		x = p->b;
	}
	return x;
}
int main() { return 0; }
`
	f, res := analyze(t, src, "g")
	first := findBasic(f, "x = 0")
	set := res.Reads[simple.Stmt(first)]
	if !setHas(set, "p", "a", 0.5) {
		t.Errorf("(p->a) above the if should have frequency 0.5: %s", set)
	}
	if !setHas(set, "p", "b", 0.5) {
		t.Errorf("(p->b) above the if should have frequency 0.5: %s", set)
	}
}

// TestIfMergesSameLocation: reads of the same field in both branches merge
// by summing adjusted frequencies and unioning Dlists.
func TestIfMergesSameLocation(t *testing.T) {
	src := `
struct P { int a; };
int g(P *p, int c) {
	int x;
	x = 0;
	if (c) {
		x = p->a;
	} else {
		x = p->a + 1;
	}
	return x;
}
int main() { return 0; }
`
	f, res := analyze(t, src, "g")
	first := findBasic(f, "x = 0")
	set := res.Reads[simple.Stmt(first)]
	tup := func() *placement.Tuple {
		for _, tu := range set.Tuples() {
			if tu.P.Name == "p" {
				return tu
			}
		}
		return nil
	}()
	if tup == nil {
		t.Fatalf("no (p->a) tuple: %s", set)
	}
	if tup.Freq != 1.0 {
		t.Errorf("merged frequency should be 0.5+0.5=1, got %v", tup.Freq)
	}
	if len(tup.D) != 2 {
		t.Errorf("merged Dlist should contain both read labels, got %v", tup.Labels())
	}
}

// TestWritesIntersection: the conservative rule for writes — only fields
// written on all alternatives may move below the conditional.
func TestWritesIntersection(t *testing.T) {
	src := `
struct P { int a; int b; };
void g(P *p, int c) {
	int y;
	if (c) {
		p->a = 1;
		p->b = 2;
	} else {
		p->a = 3;
	}
	y = c + 1;
}
int main() { return 0; }
`
	f, res := analyze(t, src, "g")
	// After the if (recorded on the statement following it): a is written
	// on both paths and may move below; b only on one.
	last := findBasic(f, "y = c + 1")
	set := res.Writes[simple.Stmt(last)]
	if !setHas(set, "p", "a", -1) {
		t.Errorf("(p->a) should be placeable after the if: %s", set)
	}
	if setHas(set, "p", "b", -1) {
		t.Errorf("(p->b) written on one branch only must not move below: %s", set)
	}
}

// TestWritesKilledByAliasedRead: a write tuple dies when the location is
// read through an alias.
func TestWritesKilledByAliasedRead(t *testing.T) {
	src := `
struct P { int a; };
int g(P *p, P *q) {
	int x;
	p->a = 1;
	x = q->a;
	x = x + 1;
	return x;
}
int main() {
	P *s;
	s = alloc(P);
	return g(s, s);
}
`
	f, res := analyze(t, src, "g")
	// p and q may alias (main passes the same struct), so the write to
	// p->a cannot move below the read of q->a.
	read := findBasic(f, "x = q->a")
	setAfterRead := res.Writes[simple.Stmt(read)]
	if setHas(setAfterRead, "p", "a", -1) {
		t.Errorf("(p->a) write must be killed by the aliased read: %s", setAfterRead)
	}
}

// TestWritesKilledByReturn: a write may never float past a possible return.
func TestWritesKilledByReturn(t *testing.T) {
	src := `
struct P { int a; };
void g(P *p, int c) {
	p->a = 1;
	if (c) return;
	p->a = 2;
}
int main() { return 0; }
`
	f, res := analyze(t, src, "g")
	simple.WalkStmts(f.Body, func(s simple.Stmt) {
		if iff, ok := s.(*simple.If); ok {
			_ = iff
			set := res.Writes[s]
			if setHas(set, "p", "a", -1) {
				t.Errorf("write tuple must not survive past a conditional return: %s", set)
			}
		}
	})
}

// TestReadsSurviveDirectWrite: per the paper, a direct write via p->f does
// not kill a read tuple (the transformation redirects both to one local
// copy); the crossing is recorded instead.
func TestReadsSurviveDirectWrite(t *testing.T) {
	src := `
struct P { int a; };
int g(P *p) {
	int x;
	int y;
	x = 0;
	p->a = 5;
	y = p->a;
	return x + y;
}
int main() { return 0; }
`
	f, res := analyze(t, src, "g")
	first := findBasic(f, "x = 0")
	set := res.Reads[simple.Stmt(first)]
	tup := func() *placement.Tuple {
		for _, tu := range set.Tuples() {
			if tu.P.Name == "p" {
				return tu
			}
		}
		return nil
	}()
	if tup == nil {
		t.Fatalf("read tuple should float above the direct write: %s", set)
	}
	if len(tup.CrossedW) != 1 {
		t.Errorf("the crossed store should be recorded, got %v", tup.CrossedW)
	}
}

// TestForallStepIsolation: a read in the forall step must not be placeable
// inside the (parallel, frame-copied) body.
func TestForallStepIsolation(t *testing.T) {
	src := `
struct N { int v; struct N *next; };
int g(N *head) {
	N *p;
	shared int s;
	writeto(&s, 0);
	forall (p = head; p != NULL; p = p->next) {
		addto(&s, p->v);
	}
	return valueof(&s);
}
int main() { return 0; }
`
	f, res := analyze(t, src, "g")
	// The body's addto argument read (p->v) may be in body sets; the step's
	// p->next read must not appear before any body statement.
	simple.WalkStmts(f.Body, func(s simple.Stmt) {
		fa, ok := s.(*simple.Forall)
		if !ok {
			return
		}
		for _, st := range fa.Body.Stmts {
			if set := res.Reads[st]; set != nil {
				if setHas(set, "p", "next", -1) {
					t.Errorf("step read (p->next) leaked into the forall body: %s", set)
				}
			}
		}
	})
}
