package placement

import (
	"repro/internal/locality"
	"repro/internal/par"
	"repro/internal/rwsets"
	"repro/internal/simple"
)

// LoopFreq is the factor applied to tuple frequencies when a tuple moves out
// of a loop (the paper's adjustFrequency uses 10: the expected iteration
// count).
const LoopFreq = 10.0

// FreqProvider supplies measured frequency factors for compound-statement
// sites (see internal/profile), overriding the static ×10/÷2/÷k scaling of
// adjustFrequency. Every query may decline (ok == false) — e.g. the site
// was never reached while profiling — in which case the analysis falls
// back to the static heuristic for exactly that site.
//
// Implementations must be safe for concurrent read-only use: the pipeline
// queries one provider from several per-function analysis goroutines.
type FreqProvider interface {
	// LoopFactor is the measured expected iteration count per arrival at
	// the loop (replaces LoopFreq).
	LoopFactor(site string) (float64, bool)
	// BranchFactors are the measured then/else probabilities (replace the
	// uniform 0.5/0.5).
	BranchFactors(site string) (thenF, elseF float64, ok bool)
	// SwitchFactors are the measured per-case probabilities in declaration
	// order (replace the uniform 1/k).
	SwitchFactors(site string, ncases int) ([]float64, bool)
}

// Result carries the per-statement possible-placement sets for a program.
type Result struct {
	// Reads maps each statement S to RemoteReads(S): tuples placeable just
	// before S.
	Reads map[simple.Stmt]*Set
	// Writes maps each statement S to RemoteWrites(S): tuples placeable
	// just after S.
	Writes map[simple.Stmt]*Set
	// EntryReads is the set propagated to each function's entry.
	EntryReads map[*simple.Func]*Set
	// ExitWrites is the set propagated to each function's exit.
	ExitWrites map[*simple.Func]*Set
}

// Analyze runs possible-placement analysis over every function using the
// static frequency heuristics.
func Analyze(prog *simple.Program, rw *rwsets.Result, loc *locality.Result) *Result {
	return AnalyzeProfiled(prog, rw, loc, nil)
}

// AnalyzeProfiled is Analyze with measured frequency factors: wherever fp
// answers for a site, its factor replaces the static constant; everywhere
// else (fp nil, site unassigned, or no data) the static heuristics apply
// unchanged.
func AnalyzeProfiled(prog *simple.Program, rw *rwsets.Result, loc *locality.Result, fp FreqProvider) *Result {
	return AnalyzeProfiledP(prog, rw, loc, fp, nil)
}

// AnalyzeProfiledP is AnalyzeProfiled with per-function analyses fanned
// across pool (nil pool runs inline). Functions are independent — each gets
// its own analysis state — and per-function results are merged in function
// order, so the result is identical regardless of pool width.
func AnalyzeProfiledP(prog *simple.Program, rw *rwsets.Result, loc *locality.Result, fp FreqProvider, pool *par.Pool) *Result {
	res := &Result{
		Reads:      make(map[simple.Stmt]*Set),
		Writes:     make(map[simple.Stmt]*Set),
		EntryReads: make(map[*simple.Func]*Set),
		ExitWrites: make(map[*simple.Func]*Set),
	}
	n := len(prog.Funcs)
	as := make([]*analysis, n)
	pool.ForEach(n, func(i int) {
		f := prog.Funcs[i]
		a := &analysis{rw: rw, loc: loc, fp: fp, fn: f,
			reads:  make(map[simple.Stmt]*Set),
			writes: make(map[simple.Stmt]*Set),
		}
		a.entry = a.readsSeq(f.Body)
		a.exit = a.writesSeq(f.Body)
		as[i] = a
	})
	for i, a := range as {
		f := prog.Funcs[i]
		res.EntryReads[f] = a.entry
		res.ExitWrites[f] = a.exit
		for s, set := range a.reads {
			res.Reads[s] = set
		}
		for s, set := range a.writes {
			res.Writes[s] = set
		}
	}
	return res
}

type analysis struct {
	rw  *rwsets.Result
	loc *locality.Result
	fp  FreqProvider // nil: static heuristics only
	fn  *simple.Func // function under analysis (for site keys)

	// Per-function outputs, merged into the shared Result afterwards.
	reads  map[simple.Stmt]*Set
	writes map[simple.Stmt]*Set
	entry  *Set
	exit   *Set

	retMemo map[simple.Stmt]bool
	// daMemo caches, per statement, the labels of direct loads/stores in
	// its subtree grouped by (pointer, offset): the propagation loops query
	// directAccessLabels once per surviving tuple per statement, and the
	// uncached walk dominated the whole analysis.
	daMemo map[simple.Stmt]*daInfo
}

type daInfo struct {
	w map[Key][]int // (p, off) -> labels of direct stores, in walk order
	r map[Key][]int // (p, off) -> labels of direct loads, in walk order
}

// branchFactors returns the then/else scaling of an if: measured when the
// profile knows the site, the paper's uniform 0.5/0.5 otherwise.
func (a *analysis) branchFactors(st *simple.If) (float64, float64) {
	if a.fp != nil && st.Site != 0 {
		if tf, ef, ok := a.fp.BranchFactors(simple.CompoundSiteKey(a.fn.Name, st.Site)); ok {
			return tf, ef
		}
	}
	return 0.5, 0.5
}

// switchFactors returns the per-case scaling of a switch: measured when
// known, the paper's uniform 1/k otherwise.
func (a *analysis) switchFactors(st *simple.Switch) []float64 {
	n := len(st.Cases)
	if a.fp != nil && st.Site != 0 {
		if fs, ok := a.fp.SwitchFactors(simple.CompoundSiteKey(a.fn.Name, st.Site), n); ok {
			return fs
		}
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = 1.0 / float64(n)
	}
	return out
}

// loopFactor returns the iteration scaling applied when hoisting out of a
// loop: measured when known, LoopFreq otherwise.
func (a *analysis) loopFactor(loop simple.Stmt) float64 {
	if a.fp != nil {
		if site := simple.SiteOf(loop); site != 0 {
			if f, ok := a.fp.LoopFactor(simple.CompoundSiteKey(a.fn.Name, site)); ok {
				return f
			}
		}
	}
	return LoopFreq
}

// containsReturn reports whether the statement subtree can return from the
// function. A delayed remote write must never float past a possible return
// (the store would be skipped on that path), so returns kill write tuples.
func (a *analysis) containsReturn(s simple.Stmt) bool {
	if a.retMemo == nil {
		a.retMemo = make(map[simple.Stmt]bool)
	}
	if v, ok := a.retMemo[s]; ok {
		return v
	}
	found := false
	simple.WalkBasics(s, func(b *simple.Basic) {
		if b.Kind == simple.KReturn {
			found = true
		}
	})
	a.retMemo[s] = found
	return found
}

// ------------------------------------------------------------------ kills ---

// killsRead reports whether statement s kills a read tuple: the base
// pointer itself is (possibly) rewritten, or the word p->off may be written
// through an alias. A direct write via (p, off) does not kill — the
// transformation redirects all direct accesses to one local copy.
func (a *analysis) killsRead(t *Tuple, s simple.Stmt) bool {
	return a.rw.VarWritten(t.P, s) || a.rw.AccessedViaAlias(t.P, t.Off, s, true)
}

// killsWrite reports whether statement s kills a write tuple: as for reads,
// plus aliased *reads* (a delayed write must not float below a read that
// expects the new value through another name).
func (a *analysis) killsWrite(t *Tuple, s simple.Stmt) bool {
	return a.containsReturn(s) ||
		a.rw.VarWritten(t.P, s) ||
		a.rw.AccessedViaAlias(t.P, t.Off, s, true) ||
		a.rw.AccessedViaAlias(t.P, t.Off, s, false)
}

// --------------------------------------------------------- reads (upward) ---

// readsSeq implements collectCommReadsSeq (Figure 5): backward propagation
// through a statement sequence, recording RemoteReads(S) for every element.
// Returns the set valid just before the first statement.
func (a *analysis) readsSeq(seq *simple.Seq) *Set {
	return a.readsSeqInto(seq, NewSet())
}

// readsSeqInto is readsSeq with an initial set valid just after the
// sequence's last statement (used to chain regions, e.g. forall step code
// into the induction evaluation).
func (a *analysis) readsSeqInto(seq *simple.Seq, below *Set) *Set {
	cur := below
	for i := len(seq.Stmts) - 1; i >= 0; i-- {
		s := seq.Stmts[i]
		gen := a.readsStmt(s)
		// Propagate surviving tuples from below across s.
		for _, t := range cur.Tuples() {
			if a.killsRead(t, s) {
				continue
			}
			// Record any direct stores to the same location the tuple is
			// floating across; the selection phase must redirect them to
			// the tuple's local copy.
			nt := t.clone()
			for _, w := range a.directAccessLabels(s, t.P, t.Off, true) {
				nt.CrossedW.Add(w)
			}
			gen.Add(nt)
		}
		cur = gen
		a.reads[s] = cur.Clone()
	}
	return cur
}

// directAccessLabels returns the labels of basic statements in s's subtree
// that directly access (p, off) through p itself: stores when write is true,
// loads otherwise. The per-statement walk result is memoized.
func (a *analysis) directAccessLabels(s simple.Stmt, p *simple.Var, off int, write bool) []int {
	info, ok := a.daMemo[s]
	if !ok {
		info = &daInfo{}
		simple.WalkBasics(s, func(b *simple.Basic) {
			if b.Kind != simple.KAssign {
				return
			}
			if stv, okw := b.Lhs.(simple.StoreLV); okw {
				if info.w == nil {
					info.w = make(map[Key][]int)
				}
				k := Key{P: stv.P, Off: stv.Off}
				info.w[k] = append(info.w[k], b.Label)
			}
			if ld, okr := b.Rhs.(simple.LoadRV); okr {
				if info.r == nil {
					info.r = make(map[Key][]int)
				}
				k := Key{P: ld.P, Off: ld.Off}
				info.r[k] = append(info.r[k], b.Label)
			}
		})
		if a.daMemo == nil {
			a.daMemo = make(map[simple.Stmt]*daInfo)
		}
		a.daMemo[s] = info
	}
	if write {
		return info.w[Key{P: p, Off: off}]
	}
	return info.r[Key{P: p, Off: off}]
}

// readsStmt implements collectCommSet(stmt, READ): the tuples generated by
// one statement, placeable just before it.
func (a *analysis) readsStmt(s simple.Stmt) *Set {
	switch st := s.(type) {
	case *simple.Basic:
		return a.readsBasic(st)
	case *simple.Seq:
		return a.readsSeq(st)
	case *simple.If:
		thenSet := a.readsSeq(st.Then)
		elseSet := a.readsSeq(st.Else)
		out := NewSet()
		tf, ef := a.branchFactors(st)
		thenSet.scale(tf)
		elseSet.scale(ef)
		out.AddAll(thenSet)
		out.AddAll(elseSet)
		return out
	case *simple.Switch:
		out := NewSet()
		if len(st.Cases) == 0 {
			return out
		}
		factors := a.switchFactors(st)
		for i, cc := range st.Cases {
			cs := a.readsSeq(cc.Body)
			cs.scale(factors[i])
			out.AddAll(cs)
		}
		return out
	case *simple.While:
		return a.readsLoop(s, st.Eval, st.Body, false)
	case *simple.Do:
		return a.readsLoop(s, st.Eval, st.Body, true)
	case *simple.Forall:
		return a.readsForall(st)
	case *simple.Par:
		// Arms execute concurrently and must not interfere on ordinary
		// variables; a tuple moves above the Par if no *sibling* arm kills
		// it (its own arm's kills were already applied inside readsSeq).
		out := NewSet()
		armSets := make([]*Set, len(st.Arms))
		for i, arm := range st.Arms {
			armSets[i] = a.readsSeq(arm)
		}
		for i, as := range armSets {
			for _, t := range as.Tuples() {
				killed := false
				for j, sib := range st.Arms {
					if j != i && a.killsRead(t, sib) {
						killed = true
						break
					}
				}
				if !killed {
					out.Add(t)
				}
			}
		}
		return out
	}
	return NewSet()
}

// readsLoop implements collectCommSetLoop for reads: analyze the loop body
// (condition evaluation included), then propagate out every tuple the loop
// as a whole cannot kill, with frequency scaled by the expected iteration
// count. Do-loops use the same conservative rule.
func (a *analysis) readsLoop(loop simple.Stmt, eval, body *simple.Seq, isDo bool) *Set {
	// Analyze in per-iteration execution order. For top-tested loops one
	// iteration is eval;body — for analysis purposes the concatenation
	// gives the set valid at the top of an iteration. Record per-statement
	// sets by analyzing the parts separately but chaining the propagation.
	combined := &simple.Seq{}
	if isDo {
		combined.Stmts = append(combined.Stmts, body.Stmts...)
		combined.Stmts = append(combined.Stmts, eval.Stmts...)
	} else {
		combined.Stmts = append(combined.Stmts, eval.Stmts...)
		combined.Stmts = append(combined.Stmts, body.Stmts...)
	}
	top := a.readsSeq(combined)
	return a.hoistLoop(loop, top)
}

// hoistLoop propagates a loop-top set out of the loop: tuples the loop can
// kill stay inside, the rest exit with their frequency scaled by the
// expected iteration count. A hoisted tuple's fill sits above the loop while
// any direct stores to the same location execute every iteration — a
// loop-carried crossing — so those store labels are recorded in CrossedW
// (iteration k's read must observe iteration k-1's store through the shared
// local copy).
func (a *analysis) hoistLoop(loop simple.Stmt, top *Set) *Set {
	out := NewSet()
	for _, t := range top.Tuples() {
		if a.killsRead(t, loop) {
			continue
		}
		nt := t.clone()
		nt.Freq *= a.loopFactor(loop)
		for _, w := range a.directAccessLabels(loop, t.P, t.Off, true) {
			nt.CrossedW.Add(w)
		}
		out.Add(nt)
	}
	return out
}

// readsForall handles parallel loops. The body is a separate parallel
// activation with a copied frame: a value filled inside the body cannot
// flow to the (sequential) eval/step induction code or to other iterations,
// so the body is analyzed in isolation. Body tuples may still hoist out of
// the whole construct (the fill then happens once, before any spawn, and is
// copied into every iteration frame). Step tuples float across the spawned
// body only if the body cannot kill them.
func (a *analysis) readsForall(st *simple.Forall) *Set {
	bodyTop := a.readsSeq(st.Body)
	stepTop := a.readsSeq(st.Step)

	// Step tuples cross the concurrent body: body kills apply.
	crossed := NewSet()
	for _, t := range stepTop.Tuples() {
		if a.killsRead(t, st.Body) {
			continue
		}
		crossed.Add(t)
	}
	evalTop := a.readsSeqInto(st.Eval, crossed)

	top := evalTop.Clone()
	top.AddAll(bodyTop)
	return a.hoistLoop(st, top)
}

// ------------------------------------------------------- writes (downward) ---

// writesSeq implements collectCommWritesSeq (Figure 5): forward propagation
// through a statement sequence, recording RemoteWrites(S) for every element.
// Returns the set valid just after the last statement.
func (a *analysis) writesSeq(seq *simple.Seq) *Set {
	cur := NewSet()
	for _, s := range seq.Stmts {
		gen := a.writesStmt(s)
		for _, t := range cur.Tuples() {
			if a.killsWrite(t, s) {
				continue
			}
			nt := t.clone()
			for _, rl := range a.directAccessLabels(s, t.P, t.Off, false) {
				nt.CrossedR.Add(rl)
			}
			gen.Add(nt)
		}
		cur = gen
		a.writes[s] = cur.Clone()
	}
	return cur
}

// writesStmt implements collectCommSet(stmt, WRITE).
func (a *analysis) writesStmt(s simple.Stmt) *Set {
	switch st := s.(type) {
	case *simple.Basic:
		return a.writesBasic(st)
	case *simple.Seq:
		return a.writesSeq(st)
	case *simple.If:
		thenSet := a.writesSeq(st.Then)
		elseSet := a.writesSeq(st.Else)
		out := NewSet()
		tf, ef := a.branchFactors(st)
		// Conservative: only tuples written on *all* alternatives may move
		// below the conditional (no spurious writes).
		for _, t := range thenSet.Tuples() {
			if other := elseSet.Get(t.Key()); other != nil {
				a1 := t.clone()
				a1.Freq *= tf
				out.Add(a1)
				a2 := other.clone()
				a2.Freq *= ef
				out.Add(a2)
			}
		}
		return out
	case *simple.Switch:
		n := len(st.Cases)
		out := NewSet()
		if n == 0 {
			return out
		}
		hasDefault := false
		caseSets := make([]*Set, n)
		for i, cc := range st.Cases {
			caseSets[i] = a.writesSeq(cc.Body)
			if cc.Vals == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			// Some execution may take no case; nothing may move below.
			return out
		}
		factors := a.switchFactors(st)
		for _, t := range caseSets[0].Tuples() {
			inAll := true
			for _, cs := range caseSets[1:] {
				if cs.Get(t.Key()) == nil {
					inAll = false
					break
				}
			}
			if !inAll {
				continue
			}
			for i, cs := range caseSets {
				ct := cs.Get(t.Key()).clone()
				ct.Freq *= factors[i]
				out.Add(ct)
			}
		}
		return out
	case *simple.While, *simple.Forall:
		// The paper only moves writes out of loops known to execute exactly
		// once (executesOnce); we cannot prove that for general loops, so
		// nothing propagates out. Still analyze the body for inner
		// placement opportunities.
		for _, sub := range simple.Subseqs(st) {
			a.writesSeq(sub)
		}
		return NewSet()
	case *simple.Do:
		// A do loop executes at least once but possibly more; a write from
		// the body may not move below unless the loop executes exactly
		// once, which we cannot prove. Analyze inner parts only.
		a.writesSeq(st.Body)
		a.writesSeq(st.Eval)
		return NewSet()
	case *simple.Par:
		out := NewSet()
		armSets := make([]*Set, len(st.Arms))
		for i, arm := range st.Arms {
			armSets[i] = a.writesSeq(arm)
		}
		for i, as := range armSets {
			for _, t := range as.Tuples() {
				killed := false
				for j, sib := range st.Arms {
					if j != i && a.killsWrite(t, sib) {
						killed = true
						break
					}
				}
				if !killed {
					out.Add(t)
				}
			}
		}
		return out
	}
	return NewSet()
}

// ------------------------------------------------------------------ basics ---

// readsBasic generates the tuple for a basic statement's remote read, if
// any (collectCommSetBasic with accessType READ).
func (a *analysis) readsBasic(b *simple.Basic) *Set {
	out := NewSet()
	if b.Kind != simple.KAssign {
		return out
	}
	ld, ok := b.Rhs.(simple.LoadRV)
	if !ok || !a.loc.RemoteLoad(ld.P) {
		return out
	}
	out.Add(&Tuple{P: ld.P, Field: ld.Field, Off: ld.Off, Freq: 1,
		D: LabelSet{b.Label}})
	return out
}

// writesBasic generates the tuple for a basic statement's remote write, if
// any.
func (a *analysis) writesBasic(b *simple.Basic) *Set {
	out := NewSet()
	if b.Kind != simple.KAssign {
		return out
	}
	stv, ok := b.Lhs.(simple.StoreLV)
	if !ok || !a.loc.RemoteLoad(stv.P) {
		return out
	}
	out.Add(&Tuple{P: stv.P, Field: stv.Field, Off: stv.Off, Freq: 1,
		D: LabelSet{b.Label}})
	return out
}
