// Package placement implements the paper's possible-placement analysis
// (§4.1): a structured, single-traversal flow analysis over SIMPLE form that
// computes, for every statement S, the set RemoteReads(S) of remote read
// tuples that may safely be placed just before S (propagated backwards,
// optimistically) and the set RemoteWrites(S) of remote write tuples that
// may safely be placed just after S (propagated forwards, conservatively).
package placement

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/simple"
)

// LabelSet is a sorted, duplicate-free set of basic-statement labels. Tuples
// carry several of these per propagation step, so they are slices rather
// than maps: cloning is a memcpy and the typical set has one element.
type LabelSet []int

// Has reports membership.
func (s LabelSet) Has(l int) bool {
	for _, x := range s {
		if x == l {
			return true
		}
		if x > l {
			return false
		}
	}
	return false
}

// Add inserts l, keeping the set sorted.
func (s *LabelSet) Add(l int) {
	i := sort.SearchInts(*s, l)
	if i < len(*s) && (*s)[i] == l {
		return
	}
	*s = append(*s, 0)
	copy((*s)[i+1:], (*s)[i:])
	(*s)[i] = l
}

// AddAll inserts every label of o.
func (s *LabelSet) AddAll(o LabelSet) {
	for _, l := range o {
		s.Add(l)
	}
}

// Clone returns an independent copy.
func (s LabelSet) Clone() LabelSet {
	if s == nil {
		return nil
	}
	out := make(LabelSet, len(s))
	copy(out, s)
	return out
}

// Tuple is a remote communication expression (p, f, n, Dlist): pointer
// variable, field, estimated frequency, and the set of basic-statement
// labels whose accesses the tuple covers.
type Tuple struct {
	P     *simple.Var
	Field string // display name of the field ("" for *p)
	Off   int    // word offset; (P, Off) is the tuple's identity
	Freq  float64
	D     LabelSet // basic statement labels
	// CrossedW records, for read tuples, the labels of *direct* remote
	// writes to the same location the tuple floated across (direct writes
	// do not kill read tuples, per the paper, because the transformation
	// redirects every access to one local copy — the selection phase uses
	// this set to know exactly which stores must update that copy).
	CrossedW LabelSet
	// CrossedR is the symmetric set for write tuples: direct reads floated
	// across while moving the write downwards.
	CrossedR LabelSet
}

// Key identifies the location a tuple refers to.
type Key struct {
	P   *simple.Var
	Off int
}

// Key returns the tuple's identity.
func (t *Tuple) Key() Key { return Key{P: t.P, Off: t.Off} }

// clone returns a deep copy (Dlists are mutable sets).
func (t *Tuple) clone() *Tuple {
	return &Tuple{P: t.P, Field: t.Field, Off: t.Off, Freq: t.Freq,
		D: t.D.Clone(), CrossedW: t.CrossedW.Clone(), CrossedR: t.CrossedR.Clone()}
}

// Labels returns the sorted Dlist.
func (t *Tuple) Labels() []int { return t.D }

// String renders the tuple in the paper's (p->f, n, {S...}) notation.
func (t *Tuple) String() string {
	labels := t.Labels()
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = fmt.Sprintf("S%d", l)
	}
	field := t.Field
	if field == "" {
		field = "*"
	}
	n := strconv(t.Freq)
	return fmt.Sprintf("(%s->%s, %s, {%s})", t.P.Name, field, n, strings.Join(parts, ","))
}

func strconv(f float64) string {
	if f == float64(int64(f)) {
		return fmt.Sprintf("%d", int64(f))
	}
	return fmt.Sprintf("%.2f", f)
}

// Set is a set of tuples keyed by location. Merging tuples for the same
// location sums frequencies and unions Dlists, as the paper specifies for
// moving tuples out of conditionals. The backing map is allocated lazily:
// most statements generate no tuples at all.
type Set struct {
	m map[Key]*Tuple
}

// NewSet returns an empty tuple set.
func NewSet() *Set { return &Set{} }

// Len reports the number of tuples.
func (s *Set) Len() int { return len(s.m) }

// Get returns the tuple for a key, or nil.
func (s *Set) Get(k Key) *Tuple { return s.m[k] }

// Add merges a tuple into the set (cloning it, so callers keep ownership).
func (s *Set) Add(t *Tuple) {
	if have, ok := s.m[t.Key()]; ok {
		have.Freq += t.Freq
		have.D.AddAll(t.D)
		have.CrossedW.AddAll(t.CrossedW)
		have.CrossedR.AddAll(t.CrossedR)
		return
	}
	if s.m == nil {
		s.m = make(map[Key]*Tuple, 4)
	}
	s.m[t.Key()] = t.clone()
}

// AddAll merges every tuple of o.
func (s *Set) AddAll(o *Set) {
	for _, t := range o.m {
		s.Add(t)
	}
}

// Remove deletes the tuple for a key.
func (s *Set) Remove(k Key) { delete(s.m, k) }

// Clone returns a deep copy.
func (s *Set) Clone() *Set {
	out := NewSet()
	if len(s.m) > 0 {
		out.m = make(map[Key]*Tuple, len(s.m))
		for k, t := range s.m {
			out.m[k] = t.clone()
		}
	}
	return out
}

// Tuples returns the tuples sorted by (pointer name, offset) for stable
// iteration and printing.
func (s *Set) Tuples() []*Tuple {
	out := make([]*Tuple, 0, len(s.m))
	for _, t := range s.m {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].P.Name != out[j].P.Name {
			return out[i].P.Name < out[j].P.Name
		}
		return out[i].Off < out[j].Off
	})
	return out
}

// String renders the set in the paper's brace notation.
func (s *Set) String() string {
	ts := s.Tuples()
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = t.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// scale multiplies all frequencies (loop exit: x10; conditional exit: /2 or
// /k), in place.
func (s *Set) scale(factor float64) {
	for _, t := range s.m {
		t.Freq *= factor
	}
}
