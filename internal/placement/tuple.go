// Package placement implements the paper's possible-placement analysis
// (§4.1): a structured, single-traversal flow analysis over SIMPLE form that
// computes, for every statement S, the set RemoteReads(S) of remote read
// tuples that may safely be placed just before S (propagated backwards,
// optimistically) and the set RemoteWrites(S) of remote write tuples that
// may safely be placed just after S (propagated forwards, conservatively).
package placement

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/simple"
)

// Tuple is a remote communication expression (p, f, n, Dlist): pointer
// variable, field, estimated frequency, and the set of basic-statement
// labels whose accesses the tuple covers.
type Tuple struct {
	P     *simple.Var
	Field string // display name of the field ("" for *p)
	Off   int    // word offset; (P, Off) is the tuple's identity
	Freq  float64
	D     map[int]bool // basic statement labels
	// CrossedW records, for read tuples, the labels of *direct* remote
	// writes to the same location the tuple floated across (direct writes
	// do not kill read tuples, per the paper, because the transformation
	// redirects every access to one local copy — the selection phase uses
	// this set to know exactly which stores must update that copy).
	CrossedW map[int]bool
	// CrossedR is the symmetric set for write tuples: direct reads floated
	// across while moving the write downwards.
	CrossedR map[int]bool
}

// Key identifies the location a tuple refers to.
type Key struct {
	P   *simple.Var
	Off int
}

// Key returns the tuple's identity.
func (t *Tuple) Key() Key { return Key{P: t.P, Off: t.Off} }

// clone returns a deep copy (Dlists are mutable sets).
func (t *Tuple) clone() *Tuple {
	cp := func(m map[int]bool) map[int]bool {
		if m == nil {
			return nil
		}
		out := make(map[int]bool, len(m))
		for k := range m {
			out[k] = true
		}
		return out
	}
	return &Tuple{P: t.P, Field: t.Field, Off: t.Off, Freq: t.Freq,
		D: cp(t.D), CrossedW: cp(t.CrossedW), CrossedR: cp(t.CrossedR)}
}

// Labels returns the sorted Dlist.
func (t *Tuple) Labels() []int {
	out := make([]int, 0, len(t.D))
	for l := range t.D {
		out = append(out, l)
	}
	sort.Ints(out)
	return out
}

// String renders the tuple in the paper's (p->f, n, {S...}) notation.
func (t *Tuple) String() string {
	labels := t.Labels()
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = fmt.Sprintf("S%d", l)
	}
	field := t.Field
	if field == "" {
		field = "*"
	}
	n := strconv(t.Freq)
	return fmt.Sprintf("(%s->%s, %s, {%s})", t.P.Name, field, n, strings.Join(parts, ","))
}

func strconv(f float64) string {
	if f == float64(int64(f)) {
		return fmt.Sprintf("%d", int64(f))
	}
	return fmt.Sprintf("%.2f", f)
}

// Set is a set of tuples keyed by location. Merging tuples for the same
// location sums frequencies and unions Dlists, as the paper specifies for
// moving tuples out of conditionals.
type Set struct {
	m map[Key]*Tuple
}

// NewSet returns an empty tuple set.
func NewSet() *Set { return &Set{m: make(map[Key]*Tuple)} }

// Len reports the number of tuples.
func (s *Set) Len() int { return len(s.m) }

// Get returns the tuple for a key, or nil.
func (s *Set) Get(k Key) *Tuple { return s.m[k] }

// Add merges a tuple into the set (cloning it, so callers keep ownership).
func (s *Set) Add(t *Tuple) {
	if have, ok := s.m[t.Key()]; ok {
		have.Freq += t.Freq
		for l := range t.D {
			have.D[l] = true
		}
		for l := range t.CrossedW {
			if have.CrossedW == nil {
				have.CrossedW = make(map[int]bool)
			}
			have.CrossedW[l] = true
		}
		for l := range t.CrossedR {
			if have.CrossedR == nil {
				have.CrossedR = make(map[int]bool)
			}
			have.CrossedR[l] = true
		}
		return
	}
	s.m[t.Key()] = t.clone()
}

// AddAll merges every tuple of o.
func (s *Set) AddAll(o *Set) {
	for _, t := range o.m {
		s.Add(t)
	}
}

// Remove deletes the tuple for a key.
func (s *Set) Remove(k Key) { delete(s.m, k) }

// Clone returns a deep copy.
func (s *Set) Clone() *Set {
	out := NewSet()
	for _, t := range s.m {
		out.m[t.Key()] = t.clone()
	}
	return out
}

// Tuples returns the tuples sorted by (pointer name, offset) for stable
// iteration and printing.
func (s *Set) Tuples() []*Tuple {
	out := make([]*Tuple, 0, len(s.m))
	for _, t := range s.m {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].P.Name != out[j].P.Name {
			return out[i].P.Name < out[j].P.Name
		}
		return out[i].Off < out[j].Off
	})
	return out
}

// String renders the set in the paper's brace notation.
func (s *Set) String() string {
	ts := s.Tuples()
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = t.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// scale multiplies all frequencies (loop exit: x10; conditional exit: /2 or
// /k), in place.
func (s *Set) scale(factor float64) {
	for _, t := range s.m {
		t.Freq *= factor
	}
}
