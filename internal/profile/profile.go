// Package profile defines the execution-profile artifact that closes the
// feedback loop from the EARTH-MANNA simulator back into the communication
// optimizer. The possible-placement analysis (§4.1) weighs tuples with
// static frequency guesses — ×10 out of a loop, ÷2 out of an if, ÷k out of
// a switch. An instrumented simulator run records what actually happened —
// loop trip counts, branch probabilities, switch case distributions, and
// per-site remote-operation counts — and a Data value carries those
// measurements back into placement and selection, replacing the constants
// with measured per-site factors.
//
// Sites are stable string keys derived from the SIMPLE form before any
// transformation: "fn:C3" is the third compound statement of fn in walk
// order (see simple.AssignSites), "fn:S12" is the basic statement with
// label 12 (the paper's S12). Because both the instrumented and the
// optimizing compile lower the same restructured AST, the keys line up
// across the two passes.
//
// The artifact is versioned JSON keyed by a hash of the source text: a
// profile collected from an older revision of the program is detected and
// ignored (the compiler falls back to the static heuristics with a
// warning rather than failing).
package profile

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/contenthash"
)

// Version is the current artifact format version.
const Version = 1

// Loop is the measured behavior of one loop site: Entries counts arrivals
// at the loop statement, Trips counts body executions.
type Loop struct {
	Entries int64 `json:"entries"`
	Trips   int64 `json:"trips"`
}

// Branch is the measured behavior of one if site.
type Branch struct {
	Entries int64 `json:"entries"`
	Then    int64 `json:"then"`
}

// Switch is the measured behavior of one switch site; Cases is keyed by
// case index in declaration order (the default case included).
type Switch struct {
	Entries int64         `json:"entries"`
	Cases   map[int]int64 `json:"cases"`
}

// Access is the measured behavior of one remote-access basic statement:
// Execs counts executions, Remote counts those whose target lived on
// another node.
type Access struct {
	Execs  int64 `json:"execs"`
	Remote int64 `json:"remote"`
}

// Data is one profile: the merged measurements of one or more simulator
// runs of the same source revision.
type Data struct {
	Version    int    `json:"version"`
	SourceHash string `json:"source_hash,omitempty"`
	Runs       int64  `json:"runs"`

	Loops    map[string]*Loop   `json:"loops,omitempty"`
	Branches map[string]*Branch `json:"branches,omitempty"`
	Switches map[string]*Switch `json:"switches,omitempty"`
	Accesses map[string]*Access `json:"accesses,omitempty"`
}

// New returns an empty profile.
func New() *Data {
	return &Data{
		Version:  Version,
		Loops:    make(map[string]*Loop),
		Branches: make(map[string]*Branch),
		Switches: make(map[string]*Switch),
		Accesses: make(map[string]*Access),
	}
}

// HashSource returns the source-revision key a profile is bound to. It is
// the canonical contenthash.Source key, so profile bindings, earthd's
// batching keys, and the compile cache's keys all agree byte-for-byte.
func HashSource(src string) string {
	return contenthash.Source(src)
}

// ------------------------------------------------------------- recording ---

func (d *Data) loop(site string) *Loop {
	l := d.Loops[site]
	if l == nil {
		l = &Loop{}
		d.Loops[site] = l
	}
	return l
}

func (d *Data) branch(site string) *Branch {
	b := d.Branches[site]
	if b == nil {
		b = &Branch{}
		d.Branches[site] = b
	}
	return b
}

func (d *Data) swtch(site string) *Switch {
	s := d.Switches[site]
	if s == nil {
		s = &Switch{Cases: make(map[int]int64)}
		d.Switches[site] = s
	}
	return s
}

// LoopEnter records an arrival at a loop statement.
func (d *Data) LoopEnter(site string) { d.loop(site).Entries++ }

// LoopTrip records one body execution of a loop.
func (d *Data) LoopTrip(site string) { d.loop(site).Trips++ }

// BranchEnter records an arrival at an if statement.
func (d *Data) BranchEnter(site string) { d.branch(site).Entries++ }

// BranchThen records the then-alternative being taken.
func (d *Data) BranchThen(site string) { d.branch(site).Then++ }

// SwitchEnter records an arrival at a switch statement.
func (d *Data) SwitchEnter(site string) { d.swtch(site).Entries++ }

// SwitchCase records case idx (declaration order) being taken.
func (d *Data) SwitchCase(site string, idx int) { d.swtch(site).Cases[idx]++ }

// RecordAccess records one execution of a remote-access basic statement.
func (d *Data) RecordAccess(site string, remote bool) {
	a := d.Accesses[site]
	if a == nil {
		a = &Access{}
		d.Accesses[site] = a
	}
	a.Execs++
	if remote {
		a.Remote++
	}
}

// ------------------------------------------------------------------ merge ---

// Merge adds another profile's counts into d. The profiles must agree on
// version and (when both are set) source hash: measurements of different
// program revisions must not be mixed.
func (d *Data) Merge(o *Data) error {
	if o.Version != d.Version {
		return fmt.Errorf("profile: cannot merge version %d into version %d", o.Version, d.Version)
	}
	if d.SourceHash != "" && o.SourceHash != "" && d.SourceHash != o.SourceHash {
		return fmt.Errorf("profile: cannot merge profiles of different sources (%s vs %s)",
			o.SourceHash, d.SourceHash)
	}
	if d.SourceHash == "" {
		d.SourceHash = o.SourceHash
	}
	d.Runs += o.Runs
	for site, l := range o.Loops {
		dl := d.loop(site)
		dl.Entries += l.Entries
		dl.Trips += l.Trips
	}
	for site, b := range o.Branches {
		db := d.branch(site)
		db.Entries += b.Entries
		db.Then += b.Then
	}
	for site, s := range o.Switches {
		ds := d.swtch(site)
		ds.Entries += s.Entries
		for idx, n := range s.Cases {
			ds.Cases[idx] += n
		}
	}
	for site, a := range o.Accesses {
		da := d.Accesses[site]
		if da == nil {
			da = &Access{}
			d.Accesses[site] = da
		}
		da.Execs += a.Execs
		da.Remote += a.Remote
	}
	return nil
}

// --------------------------------------------------------------------- io ---

// Write serializes the profile as deterministic, indented JSON (map keys
// are sorted, so identical measurements produce byte-identical artifacts).
func (d *Data) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// Read parses a profile and validates its format version.
func Read(r io.Reader) (*Data, error) {
	d := New()
	if err := json.NewDecoder(r).Decode(d); err != nil {
		return nil, fmt.Errorf("profile: %w", err)
	}
	if d.Version != Version {
		return nil, fmt.Errorf("profile: unsupported artifact version %d (want %d)", d.Version, Version)
	}
	if d.Loops == nil {
		d.Loops = make(map[string]*Loop)
	}
	if d.Branches == nil {
		d.Branches = make(map[string]*Branch)
	}
	if d.Switches == nil {
		d.Switches = make(map[string]*Switch)
	}
	if d.Accesses == nil {
		d.Accesses = make(map[string]*Access)
	}
	return d, nil
}

// WriteFile writes the profile to path.
func (d *Data) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := d.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile reads a profile from path.
func ReadFile(path string) (*Data, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// ------------------------------------------------------- frequency factors ---

// LoopFactor returns the measured expected iteration count of a loop site
// (the quantity the static LoopFreq = 10 approximates). ok is false when
// the site was never reached during profiling — no data, so the caller
// keeps the static heuristic.
func (d *Data) LoopFactor(site string) (float64, bool) {
	l := d.Loops[site]
	if l == nil || l.Entries == 0 {
		return 0, false
	}
	return float64(l.Trips) / float64(l.Entries), true
}

// BranchFactors returns the measured taken probabilities of an if site
// (the quantities the static ÷2 approximates).
func (d *Data) BranchFactors(site string) (thenF, elseF float64, ok bool) {
	b := d.Branches[site]
	if b == nil || b.Entries == 0 {
		return 0, 0, false
	}
	thenF = float64(b.Then) / float64(b.Entries)
	return thenF, 1 - thenF, true
}

// SwitchFactors returns the measured per-case probabilities of a switch
// site with ncases alternatives (the quantities the static ÷k
// approximates), indexed by case declaration order.
func (d *Data) SwitchFactors(site string, ncases int) ([]float64, bool) {
	s := d.Switches[site]
	if s == nil || s.Entries == 0 {
		return nil, false
	}
	out := make([]float64, ncases)
	for i := range out {
		out[i] = float64(s.Cases[i]) / float64(s.Entries)
	}
	return out, true
}

// AccessCount returns the measured execution and remote counts of a
// remote-access site.
func (d *Data) AccessCount(site string) (execs, remote int64, ok bool) {
	a := d.Accesses[site]
	if a == nil {
		return 0, 0, false
	}
	return a.Execs, a.Remote, true
}
