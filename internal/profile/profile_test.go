package profile

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func sample() *Data {
	d := New()
	d.SourceHash = HashSource("int main() { return 0; }")
	d.Runs = 1
	d.LoopEnter("f:C1")
	for i := 0; i < 7; i++ {
		d.LoopTrip("f:C1")
	}
	d.BranchEnter("f:C2")
	d.BranchEnter("f:C2")
	d.BranchEnter("f:C2")
	d.BranchThen("f:C2")
	d.SwitchEnter("f:C3")
	d.SwitchEnter("f:C3")
	d.SwitchCase("f:C3", 0)
	d.SwitchCase("f:C3", 2)
	d.RecordAccess("f:S5", true)
	d.RecordAccess("f:S5", false)
	return d
}

func TestRoundTrip(t *testing.T) {
	d := sample()
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := got.Write(&buf2); err != nil {
		t.Fatal(err)
	}
	var buf1 bytes.Buffer
	if err := d.Write(&buf1); err != nil {
		t.Fatal(err)
	}
	if buf1.String() != buf2.String() {
		t.Fatalf("round trip not byte-identical:\n%s\nvs\n%s", buf1.String(), buf2.String())
	}
	if got.SourceHash != d.SourceHash || got.Runs != 1 {
		t.Fatalf("round trip lost metadata: %+v", got)
	}
}

func TestMergeSums(t *testing.T) {
	a, b := sample(), sample()
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Runs != 2 {
		t.Fatalf("Runs = %d, want 2", a.Runs)
	}
	if l := a.Loops["f:C1"]; l.Entries != 2 || l.Trips != 14 {
		t.Fatalf("loop not summed: %+v", l)
	}
	if br := a.Branches["f:C2"]; br.Entries != 6 || br.Then != 2 {
		t.Fatalf("branch not summed: %+v", br)
	}
	if s := a.Switches["f:C3"]; s.Entries != 4 || s.Cases[0] != 2 || s.Cases[2] != 2 {
		t.Fatalf("switch not summed: %+v", s)
	}
	if ac := a.Accesses["f:S5"]; ac.Execs != 4 || ac.Remote != 2 {
		t.Fatalf("access not summed: %+v", ac)
	}
}

func TestMergeRejectsDifferentSources(t *testing.T) {
	a, b := sample(), sample()
	b.SourceHash = HashSource("something else entirely")
	if err := a.Merge(b); err == nil {
		t.Fatal("merge of profiles with different source hashes succeeded")
	}
}

func TestReadRejectsBadVersion(t *testing.T) {
	_, err := Read(strings.NewReader(`{"version": 99, "runs": 1}`))
	if err == nil {
		t.Fatal("Read accepted an unsupported version")
	}
}

func TestFactors(t *testing.T) {
	d := sample()
	if f, ok := d.LoopFactor("f:C1"); !ok || f != 7 {
		t.Fatalf("LoopFactor = %v, %v; want 7, true", f, ok)
	}
	tf, ef, ok := d.BranchFactors("f:C2")
	if !ok || math.Abs(tf-1.0/3) > 1e-12 || math.Abs(ef-2.0/3) > 1e-12 {
		t.Fatalf("BranchFactors = %v, %v, %v", tf, ef, ok)
	}
	fs, ok := d.SwitchFactors("f:C3", 3)
	if !ok || fs[0] != 0.5 || fs[1] != 0 || fs[2] != 0.5 {
		t.Fatalf("SwitchFactors = %v, %v", fs, ok)
	}
	if execs, remote, ok := d.AccessCount("f:S5"); !ok || execs != 2 || remote != 1 {
		t.Fatalf("AccessCount = %d, %d, %v", execs, remote, ok)
	}
	// Unknown sites decline so callers keep the static heuristics.
	if _, ok := d.LoopFactor("f:C9"); ok {
		t.Fatal("LoopFactor answered for an unknown site")
	}
	if _, _, ok := d.BranchFactors("f:C9"); ok {
		t.Fatal("BranchFactors answered for an unknown site")
	}
	if _, ok := d.SwitchFactors("f:C9", 2); ok {
		t.Fatal("SwitchFactors answered for an unknown site")
	}
}
