// Package benchfmt parses `go test -bench` output, reads and writes the
// repo's committed BENCH_*.json perf artifacts, and compares two artifacts
// under per-metric tolerance thresholds. It replaces the awk emitter that
// used to live in scripts/bench.sh (which did no string escaping and
// silently mangled benchmark names containing special characters).
//
// The JSON layout is byte-compatible with the historical artifact: one
// object per benchmark, metrics in the order the benchmark printed them,
// standard units renamed ns/op → ns_per_op, B/op → bytes_per_op,
// allocs/op → allocs_per_op, and custom metric units sanitized to
// identifier characters.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Value is one metric sample. Raw preserves the exact source token so that
// re-encoding an artifact is byte-stable (9.5 stays "9.5", not "9.500000").
type Value struct {
	Num float64
	Raw string
}

// Benchmark is one benchmark's results: the iteration count plus metrics
// keyed by the sanitized unit name, in printed order.
type Benchmark struct {
	Name       string
	Iterations int64
	Keys       []string // metric order for stable output
	Metrics    map[string]Value
}

// Set is a whole artifact: a toolchain version plus benchmarks in order.
type Set struct {
	Go         string
	Benchmarks []*Benchmark
}

// Lookup returns the named benchmark, or nil.
func (s *Set) Lookup(name string) *Benchmark {
	for _, b := range s.Benchmarks {
		if b.Name == name {
			return b
		}
	}
	return nil
}

var gomaxprocsSuffix = regexp.MustCompile(`-[0-9]+$`)

// metricKey maps a benchmark unit to the artifact's JSON key.
func metricKey(unit string) string {
	switch unit {
	case "ns/op":
		return "ns_per_op"
	case "B/op":
		return "bytes_per_op"
	case "allocs/op":
		return "allocs_per_op"
	}
	var b strings.Builder
	for _, r := range unit {
		if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == '_' {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// Parse reads `go test -bench` text output. Non-benchmark lines (the goos/
// goarch banner, PASS, ok) are ignored. The "Benchmark" prefix and the
// -GOMAXPROCS suffix are stripped from names.
func Parse(r io.Reader) (*Set, error) {
	s := &Set{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 2 {
			continue
		}
		iters, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			// e.g. "Benchmark...: some note" — not a result line.
			continue
		}
		name := strings.TrimPrefix(gomaxprocsSuffix.ReplaceAllString(f[0], ""), "Benchmark")
		b := &Benchmark{Name: name, Iterations: iters, Metrics: map[string]Value{}}
		for i := 2; i+1 < len(f); i += 2 {
			num, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchfmt: line %d: bad metric value %q", lineno, f[i])
			}
			key := metricKey(f[i+1])
			if _, dup := b.Metrics[key]; !dup {
				b.Keys = append(b.Keys, key)
			}
			b.Metrics[key] = Value{Num: num, Raw: f[i]}
		}
		s.Benchmarks = append(s.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchfmt: %w", err)
	}
	return s, nil
}

// WriteJSON emits the artifact in the committed BENCH_*.json layout. Names
// are JSON-escaped properly; metric values are emitted verbatim from Raw
// (falling back to a minimal float encoding).
func (s *Set) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	goName, _ := json.Marshal(s.Go)
	fmt.Fprintf(bw, "{\n  \"go\": %s,\n  \"benchmarks\": [\n", goName)
	for i, b := range s.Benchmarks {
		name, _ := json.Marshal(b.Name)
		fmt.Fprintf(bw, "    {\"name\": %s, \"iterations\": %d", name, b.Iterations)
		for _, k := range b.Keys {
			fmt.Fprintf(bw, ", %q: %s", k, b.Metrics[k].encode())
		}
		if i < len(s.Benchmarks)-1 {
			bw.WriteString("},\n")
		} else {
			bw.WriteString("}\n")
		}
	}
	bw.WriteString("  ]\n}\n")
	return bw.Flush()
}

func (v Value) encode() string {
	if v.Raw != "" {
		return v.Raw
	}
	return strconv.FormatFloat(v.Num, 'g', -1, 64)
}

// ReadFile parses a committed BENCH_*.json artifact, preserving metric
// order (a plain map round-trip would lose it).
func ReadFile(path string) (*Set, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := ParseJSON(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// ParseJSON decodes an artifact with a token-stream walk so each
// benchmark's metric order survives the round trip.
func ParseJSON(r io.Reader) (*Set, error) {
	dec := json.NewDecoder(r)
	dec.UseNumber()
	s := &Set{}
	if err := expectDelim(dec, '{'); err != nil {
		return nil, err
	}
	for dec.More() {
		key, err := stringToken(dec)
		if err != nil {
			return nil, err
		}
		switch key {
		case "go":
			if err := dec.Decode(&s.Go); err != nil {
				return nil, err
			}
		case "benchmarks":
			if err := expectDelim(dec, '['); err != nil {
				return nil, err
			}
			for dec.More() {
				b, err := parseBenchmark(dec)
				if err != nil {
					return nil, err
				}
				s.Benchmarks = append(s.Benchmarks, b)
			}
			if err := expectDelim(dec, ']'); err != nil {
				return nil, err
			}
		default:
			var skip json.RawMessage
			if err := dec.Decode(&skip); err != nil {
				return nil, err
			}
		}
	}
	return s, expectDelim(dec, '}')
}

func parseBenchmark(dec *json.Decoder) (*Benchmark, error) {
	if err := expectDelim(dec, '{'); err != nil {
		return nil, err
	}
	b := &Benchmark{Metrics: map[string]Value{}}
	for dec.More() {
		key, err := stringToken(dec)
		if err != nil {
			return nil, err
		}
		switch key {
		case "name":
			if err := dec.Decode(&b.Name); err != nil {
				return nil, err
			}
		case "iterations":
			var n json.Number
			if err := dec.Decode(&n); err != nil {
				return nil, err
			}
			b.Iterations, _ = n.Int64()
		default:
			var n json.Number
			if err := dec.Decode(&n); err != nil {
				return nil, fmt.Errorf("metric %q of %q: %w", key, b.Name, err)
			}
			num, err := n.Float64()
			if err != nil {
				return nil, err
			}
			if _, dup := b.Metrics[key]; !dup {
				b.Keys = append(b.Keys, key)
			}
			b.Metrics[key] = Value{Num: num, Raw: n.String()}
		}
	}
	return b, expectDelim(dec, '}')
}

func expectDelim(dec *json.Decoder, d json.Delim) error {
	tok, err := dec.Token()
	if err != nil {
		return err
	}
	if got, ok := tok.(json.Delim); !ok || got != d {
		return fmt.Errorf("benchfmt: expected %q, got %v", d, tok)
	}
	return nil
}

func stringToken(dec *json.Decoder) (string, error) {
	tok, err := dec.Token()
	if err != nil {
		return "", err
	}
	s, ok := tok.(string)
	if !ok {
		return "", fmt.Errorf("benchfmt: expected object key, got %v", tok)
	}
	return s, nil
}
