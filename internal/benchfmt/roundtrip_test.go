package benchfmt

import (
	"bytes"
	"os"
	"testing"
)

// TestCommittedArtifactRoundTrips: reading a committed BENCH_*.json and
// re-encoding it reproduces the file byte-for-byte, so regenerating an
// artifact never produces a spurious diff.
func TestCommittedArtifactRoundTrips(t *testing.T) {
	orig, err := os.ReadFile("../../BENCH_pr3.json")
	if err != nil {
		t.Skipf("no committed artifact: %v", err)
	}
	s, err := ParseJSON(bytes.NewReader(orig))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), orig) {
		t.Errorf("round trip differs from the committed artifact:\n%s", buf.String())
	}
}
