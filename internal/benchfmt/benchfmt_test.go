package benchfmt

import (
	"bytes"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: repro
cpu: whatever
BenchmarkCompile-8   	     274	   4545214 ns/op	 2764087 B/op	   28861 allocs/op
BenchmarkSimulator-8 	     364	   3374339 ns/op	  257219 guest_instructions	 9049000 B/op	     258 allocs/op
BenchmarkFig10/power-8	      73	  14090365 ns/op	      2672 opt_ops	     41.34 opt_pct_of_simple	      6464 simple_ops	 4450662 B/op	   36194 allocs/op
PASS
ok  	repro	10.123s
`

func TestParse(t *testing.T) {
	s, err := Parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(s.Benchmarks))
	}
	sim := s.Lookup("Simulator")
	if sim == nil {
		t.Fatal("Simulator not parsed")
	}
	if sim.Iterations != 364 {
		t.Errorf("iterations = %d", sim.Iterations)
	}
	if got := sim.Metrics["guest_instructions"].Num; got != 257219 {
		t.Errorf("guest_instructions = %v", got)
	}
	fig := s.Lookup("Fig10/power")
	if fig == nil {
		t.Fatal("sub-benchmark name not normalized (want Fig10/power)")
	}
	if got := fig.Metrics["opt_pct_of_simple"].Raw; got != "41.34" {
		t.Errorf("raw float not preserved: %q", got)
	}
	wantOrder := []string{"ns_per_op", "opt_ops", "opt_pct_of_simple", "simple_ops", "bytes_per_op", "allocs_per_op"}
	if len(fig.Keys) != len(wantOrder) {
		t.Fatalf("keys = %v", fig.Keys)
	}
	for i, k := range wantOrder {
		if fig.Keys[i] != k {
			t.Errorf("key[%d] = %q, want %q", i, fig.Keys[i], k)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s, err := Parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	s.Go = "go1.24.0"
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	first := buf.String()
	s2, err := ParseJSON(strings.NewReader(first))
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, first)
	}
	var buf2 bytes.Buffer
	if err := s2.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != first {
		t.Errorf("round trip not byte-stable:\n%s\nvs\n%s", first, buf2.String())
	}
	if s2.Go != "go1.24.0" {
		t.Errorf("Go = %q", s2.Go)
	}
}

func TestNameEscaping(t *testing.T) {
	// The old awk emitter mangled names with quotes/backslashes; ours must
	// escape them and survive a round trip.
	s := &Set{Go: "go1.24.0", Benchmarks: []*Benchmark{{
		Name: `Odd"name\with/quotes`, Iterations: 1,
		Keys:    []string{"ns_per_op"},
		Metrics: map[string]Value{"ns_per_op": {Num: 42, Raw: "42"}},
	}}}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	s2, err := ParseJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("invalid JSON emitted: %v\n%s", err, buf.String())
	}
	if s2.Benchmarks[0].Name != s.Benchmarks[0].Name {
		t.Errorf("name mangled: %q -> %q", s.Benchmarks[0].Name, s2.Benchmarks[0].Name)
	}
}

func mkSet(metrics map[string]float64) *Set {
	b := &Benchmark{Name: "B", Iterations: 10, Metrics: map[string]Value{}}
	for _, k := range []string{"ns_per_op", "allocs_per_op", "guest_instructions", "improvement_pct"} {
		if v, ok := metrics[k]; ok {
			b.Keys = append(b.Keys, k)
			b.Metrics[k] = Value{Num: v}
		}
	}
	return &Set{Go: "go", Benchmarks: []*Benchmark{b}}
}

func regressions(ds []Delta) map[string]bool {
	out := map[string]bool{}
	for _, d := range ds {
		if d.Regressed {
			out[d.Metric] = true
		}
	}
	return out
}

func TestCompare(t *testing.T) {
	base := mkSet(map[string]float64{
		"ns_per_op": 1000, "allocs_per_op": 100, "guest_instructions": 5555, "improvement_pct": 50,
	})
	th := DefaultThresholds()

	// Within tolerance everywhere.
	ok := mkSet(map[string]float64{
		"ns_per_op": 1300, "allocs_per_op": 105, "guest_instructions": 5555, "improvement_pct": 49,
	})
	if r := regressions(Compare(base, ok, th)); len(r) != 0 {
		t.Errorf("unexpected regressions: %v", r)
	}

	// Each metric broken in its own way.
	bad := mkSet(map[string]float64{
		"ns_per_op":          1500, // +50% > 40%
		"allocs_per_op":      120,  // +20% > 10%
		"guest_instructions": 5554, // exact metric changed (even downward)
		"improvement_pct":    40,   // -20% on a higher-is-better metric
	})
	r := regressions(Compare(base, bad, th))
	for _, m := range []string{"ns_per_op", "allocs_per_op", "guest_instructions", "improvement_pct"} {
		if !r[m] {
			t.Errorf("%s regression not flagged (got %v)", m, r)
		}
	}

	// Improvements never regress on directional metrics.
	better := mkSet(map[string]float64{
		"ns_per_op": 100, "allocs_per_op": 10, "guest_instructions": 5555, "improvement_pct": 90,
	})
	if r := regressions(Compare(base, better, th)); len(r) != 0 {
		t.Errorf("improvement flagged as regression: %v", r)
	}
}

func TestCompareZeroStaysZero(t *testing.T) {
	base := mkSet(map[string]float64{"guest_instructions": 0})
	cur := mkSet(map[string]float64{"guest_instructions": 3})
	if r := regressions(Compare(base, cur, DefaultThresholds())); !r["guest_instructions"] {
		t.Error("zero baseline growing to nonzero not flagged")
	}
	// Scaling tolerances must not relax exact metrics.
	if r := regressions(Compare(base, cur, DefaultThresholds().Scale(4))); !r["guest_instructions"] {
		t.Error("Scale relaxed an exact metric")
	}
}

func TestOverride(t *testing.T) {
	th, err := DefaultThresholds().Override("ns_per_op=2.0,custom_metric=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if got := th.rule("ns_per_op").Limit; got != 2.0 {
		t.Errorf("ns_per_op limit = %v", got)
	}
	if got := th.rule("custom_metric").Limit; got != 0.5 {
		t.Errorf("custom_metric limit = %v", got)
	}
	// Unlisted metrics keep the default.
	if got := th.rule("other").Limit; got != 0.25 {
		t.Errorf("default limit = %v", got)
	}
	for _, bad := range []string{"noequals", "x=notanumber", "x=-1"} {
		if _, err := DefaultThresholds().Override(bad); err == nil {
			t.Errorf("Override(%q) accepted", bad)
		}
	}
}

func TestMissingFrom(t *testing.T) {
	base := &Set{Benchmarks: []*Benchmark{{Name: "A"}, {Name: "B"}}}
	cur := &Set{Benchmarks: []*Benchmark{{Name: "B"}}}
	miss := MissingFrom(base, cur)
	if len(miss) != 1 || miss[0] != "A" {
		t.Errorf("MissingFrom = %v", miss)
	}
}
