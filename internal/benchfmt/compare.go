package benchfmt

import (
	"fmt"
	"strconv"
	"strings"
)

// Direction says which way a metric is allowed to move.
type Direction int

const (
	// Lower means lower is better: a regression is an increase beyond the
	// limit. The default for host-cost metrics.
	Lower Direction = iota
	// Higher means higher is better (e.g. improvement_pct).
	Higher
	// Exact means the metric is deterministic (simulated quantities): any
	// change at all is a regression, in either direction — a decrease in
	// guest work is "better" but means the benchmark no longer measures
	// the same thing, which the diff must surface, not hide.
	Exact
)

// Rule is one metric's tolerance: the maximum allowed relative change in
// the bad direction (ignored for Exact).
type Rule struct {
	Limit float64
	Dir   Direction
}

// Thresholds maps metric keys to rules; Default applies to unlisted keys.
// "iterations" is never compared (it measures benchtime, not performance).
type Thresholds struct {
	Rules   map[string]Rule
	Default Rule
}

// DefaultThresholds reflect the noise observed across this repo's
// benchmarks on shared CI hardware: host time is noisy, allocation counts
// are nearly stable, and simulated quantities are exactly reproducible.
func DefaultThresholds() Thresholds {
	return Thresholds{
		Rules: map[string]Rule{
			"ns_per_op":          {Limit: 0.40, Dir: Lower},
			"bytes_per_op":       {Limit: 0.20, Dir: Lower},
			"allocs_per_op":      {Limit: 0.10, Dir: Lower},
			"guest_instructions": {Dir: Exact},
			"simple_ops":         {Dir: Exact},
			"opt_ops":            {Dir: Exact},
			"opt_pct_of_simple":  {Limit: 0.01, Dir: Lower},
			"improvement_pct":    {Limit: 0.05, Dir: Higher},
			// Service throughput (cmd/earthload sweeps): end-to-end jobs/sec
			// over loopback HTTP is the noisiest metric in the trajectory.
			"jobs_sec": {Limit: 0.60, Dir: Higher},
			// Event-loop scalability sweep (BenchmarkSimNodes): the event
			// count is deterministic for a given workload+node count, while
			// events/sec is host throughput and swings with scheduler noise.
			"events":     {Dir: Exact},
			"events_sec": {Limit: 0.50, Dir: Higher},
		},
		Default: Rule{Limit: 0.25, Dir: Lower},
	}
}

// Scale multiplies every non-Exact limit by f (Exact stays exact — a
// deterministic counter must not drift no matter how short the run).
func (t Thresholds) Scale(f float64) Thresholds {
	out := Thresholds{Rules: make(map[string]Rule, len(t.Rules)), Default: t.Default}
	out.Default.Limit *= f
	for k, r := range t.Rules {
		if r.Dir != Exact {
			r.Limit *= f
		}
		out.Rules[k] = r
	}
	return out
}

// Override parses "key=frac,key=frac" tolerance overrides into t.
func (t Thresholds) Override(spec string) (Thresholds, error) {
	if spec == "" {
		return t, nil
	}
	out := Thresholds{Rules: make(map[string]Rule, len(t.Rules)), Default: t.Default}
	for k, r := range t.Rules {
		out.Rules[k] = r
	}
	for _, ent := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(ent), "=")
		if !ok {
			return t, fmt.Errorf("benchfmt: bad tolerance %q (want key=frac)", ent)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil || f < 0 {
			return t, fmt.Errorf("benchfmt: bad tolerance %q: fraction must be a non-negative number", ent)
		}
		r, ok := out.Rules[key]
		if !ok {
			r = out.Default
		}
		r.Limit = f
		if r.Dir == Exact && f > 0 {
			// An explicit nonzero tolerance relaxes an exact metric to a
			// bounded lower-is-better check.
			r.Dir = Lower
		}
		out.Rules[key] = r
	}
	return out, nil
}

func (t Thresholds) rule(key string) Rule {
	if r, ok := t.Rules[key]; ok {
		return r
	}
	return t.Default
}

// Delta is one compared metric. Frac is the relative change sign-adjusted
// so positive means "worse"; Regressed says it exceeded the rule's limit.
type Delta struct {
	Bench, Metric string
	Old, New      float64
	Frac          float64
	Rule          Rule
	Regressed     bool
}

func (d Delta) String() string {
	verdict := "ok"
	if d.Regressed {
		verdict = "REGRESSED"
	}
	return fmt.Sprintf("%-28s %-20s %14g -> %-14g %+7.2f%%  (limit %.0f%%)  %s",
		d.Bench, d.Metric, d.Old, d.New, 100*d.rawFrac(), 100*d.Rule.Limit, verdict)
}

// rawFrac is the signed relative change (positive = increased), for display.
func (d Delta) rawFrac() float64 {
	if d.Old == 0 {
		if d.New == 0 {
			return 0
		}
		return 1
	}
	return (d.New - d.Old) / d.Old
}

// Compare diffs cur against base over their intersection: benchmarks (by
// name) and metrics (by key) present in both. "iterations" is skipped.
// Benchmarks only in one set are reported by MissingFrom, not here.
func Compare(base, cur *Set, th Thresholds) []Delta {
	var out []Delta
	for _, ob := range base.Benchmarks {
		nb := cur.Lookup(ob.Name)
		if nb == nil {
			continue
		}
		for _, key := range ob.Keys {
			nv, ok := nb.Metrics[key]
			if !ok {
				continue
			}
			ov := ob.Metrics[key]
			d := Delta{Bench: ob.Name, Metric: key, Old: ov.Num, New: nv.Num, Rule: th.rule(key)}
			switch d.Rule.Dir {
			case Exact:
				d.Frac = d.rawFrac()
				d.Regressed = nv.Num != ov.Num
			case Higher:
				d.Frac = -d.rawFrac()
				d.Regressed = d.Frac > d.Rule.Limit
			default: // Lower
				d.Frac = d.rawFrac()
				d.Regressed = d.Frac > d.Rule.Limit
			}
			out = append(out, d)
		}
	}
	return out
}

// MissingFrom lists base benchmarks absent from cur (dropped coverage).
func MissingFrom(base, cur *Set) []string {
	var out []string
	for _, b := range base.Benchmarks {
		if cur.Lookup(b.Name) == nil {
			out = append(out, b.Name)
		}
	}
	return out
}
