// Package contenthash is the one canonical content-hashing helper shared
// by every subsystem that keys artifacts to source text: the profile
// subsystem binds profiles to a source revision, earthd's single-flight
// batching groups identical submissions, and the compile cache derives
// unit and per-function keys. Centralizing the rendering ("sha256:<hex>")
// guarantees the three can never drift — a profile collected under one
// hash scheme is always comparable to a cache or batching key computed
// elsewhere.
package contenthash

import (
	"crypto/sha256"
	"fmt"
)

// Source returns the canonical content key of a source text (or any other
// canonical byte rendering): "sha256:" followed by the lowercase hex SHA-256
// of the bytes.
func Source(src string) string {
	return fmt.Sprintf("sha256:%x", sha256.Sum256([]byte(src)))
}

// Parts hashes a sequence of strings with unambiguous framing: each part is
// preceded by its length, so ("ab","c") and ("a","bc") produce different
// keys. Use it wherever a key is derived from several components (options
// fingerprint + source, function body + referenced signatures, ...).
func Parts(parts ...string) string {
	h := sha256.New()
	var lenbuf [8]byte
	for _, p := range parts {
		n := len(p)
		for i := 0; i < 8; i++ {
			lenbuf[i] = byte(n >> (8 * i))
		}
		h.Write(lenbuf[:])
		h.Write([]byte(p))
	}
	return fmt.Sprintf("sha256:%x", h.Sum(nil))
}
