package journal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// reopen closes j and opens the directory again, failing the test on error.
func reopen(t *testing.T, j *Journal) (*Journal, *Recovery) {
	t.Helper()
	if err := j.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	nj, rec, err := Open(j.Dir(), j.opt)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	return nj, rec
}

func mustAccept(t *testing.T, j *Journal, id string) {
	t.Helper()
	if err := j.Accepted(id, []byte(fmt.Sprintf(`{"job":%q}`, id))); err != nil {
		t.Fatalf("accept %s: %v", id, err)
	}
}

func mustComplete(t *testing.T, j *Journal, id string) {
	t.Helper()
	if err := j.Completed(id, 200, []byte(fmt.Sprintf(`{"out":%q}`, id)), ""); err != nil {
		t.Fatalf("complete %s: %v", id, err)
	}
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Pending) != 0 || len(rec.Completed) != 0 {
		t.Fatalf("fresh journal not empty: %+v", rec)
	}
	mustAccept(t, j, "a")
	mustAccept(t, j, "b")
	mustComplete(t, j, "a")
	if err := j.Cancelled("c-never-accepted", "client request"); err != nil {
		t.Fatal(err)
	}
	mustAccept(t, j, "d")
	if err := j.Cancelled("d", "wall deadline"); err != nil {
		t.Fatal(err)
	}

	j, rec = reopen(t, j)
	defer j.Close()
	if len(rec.Pending) != 1 || rec.Pending[0].ID != "b" {
		t.Fatalf("pending = %+v, want exactly b", rec.Pending)
	}
	if got := rec.Completed["a"]; got.Status != 200 || string(got.Result) != `{"out":"a"}` {
		t.Fatalf("completed[a] = %+v", got)
	}
	if got := rec.Cancelled["d"]; got.Reason != "wall deadline" {
		t.Fatalf("cancelled[d] = %+v", got)
	}
	if _, ok := rec.Completed["d"]; ok {
		t.Fatal("cancelled job also reported completed")
	}
}

func TestAcceptedIsSyncedCompletionLags(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{SyncEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	mustAccept(t, j, "a")
	if lag := j.Lag(); lag != 0 {
		t.Fatalf("lag after accepted = %d, want 0 (accepted records sync)", lag)
	}
	mustComplete(t, j, "a")
	if lag := j.Lag(); lag != 1 {
		t.Fatalf("lag after completion = %d, want 1 (lazy sync)", lag)
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	if lag := j.Lag(); lag != 0 {
		t.Fatalf("lag after Sync = %d", lag)
	}
}

func TestSyncEveryBoundsLag(t *testing.T) {
	j, _, err := Open(t.TempDir(), Options{SyncEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	mustAccept(t, j, "a")
	for i := 0; i < 7; i++ {
		if err := j.Completed(fmt.Sprintf("c%d", i), 200, []byte(`{}`), ""); err != nil {
			t.Fatal(err)
		}
		if lag := j.Lag(); lag >= 3 {
			t.Fatalf("lag %d reached SyncEvery", lag)
		}
	}
}

// TestRotationCompacts: pushing the journal past its segment size must
// leave exactly one segment holding only live state.
func TestRotationCompacts(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{SegmentBytes: 2048, Retain: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		id := fmt.Sprintf("job-%03d", i)
		mustAccept(t, j, id)
		mustComplete(t, j, id)
	}
	mustAccept(t, j, "open-job")
	st := j.Stats()
	if st.Compactions == 0 {
		t.Fatal("no compaction despite 200 jobs through a 2KiB segment limit")
	}
	if st.Segments != 1 {
		t.Fatalf("segments = %d, want 1 (rotation deletes absorbed segments)", st.Segments)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if len(segs) != 1 {
		t.Fatalf("on-disk segments = %v, want exactly one", segs)
	}

	j, rec := reopen(t, j)
	defer j.Close()
	if len(rec.Pending) != 1 || rec.Pending[0].ID != "open-job" {
		t.Fatalf("pending after compaction = %+v", rec.Pending)
	}
	if len(rec.Completed) != 8 {
		t.Fatalf("retained completions = %d, want Retain=8", len(rec.Completed))
	}
	// The newest completions survive, the oldest are aged out.
	if _, ok := rec.Completed["job-199"]; !ok {
		t.Fatal("newest completion missing from the retention window")
	}
	if _, ok := rec.Completed["job-000"]; ok {
		t.Fatal("oldest completion survived past the retention window")
	}
}

// corrupt helpers -----------------------------------------------------------

// soleSegment returns the path of the journal's only segment file.
func soleSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("want one segment, got %v (%v)", segs, err)
	}
	return segs[0]
}

// seedJournal writes three accepted jobs (a,b,c), completes a and b, and
// closes the journal, returning the directory.
func seedJournal(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	j, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustAccept(t, j, "a")
	mustAccept(t, j, "b")
	mustAccept(t, j, "c")
	mustComplete(t, j, "a")
	mustComplete(t, j, "b")
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

// checkConsistent asserts the recovered state is consistent: every job is
// either pending or closed, never both and never twice.
func checkConsistent(t *testing.T, rec *Recovery) {
	t.Helper()
	seen := map[string]bool{}
	for _, r := range rec.Pending {
		if seen[r.ID] {
			t.Fatalf("job %s pending twice", r.ID)
		}
		seen[r.ID] = true
	}
	for id := range rec.Completed {
		if seen[id] {
			t.Fatalf("job %s both pending and completed", id)
		}
		seen[id] = true
		if _, ok := rec.Cancelled[id]; ok {
			t.Fatalf("job %s both completed and cancelled", id)
		}
	}
}

// TestCorruptionMatrix drives the four mandated damage modes through
// recovery: truncated final record, bit-flipped checksum, missing segment,
// and duplicate completion record. Each must recover to a consistent
// state: no accepted job lost (it is either completed or pending replay)
// and no job closed twice.
func TestCorruptionMatrix(t *testing.T) {
	t.Run("truncated final record", func(t *testing.T) {
		dir := seedJournal(t)
		seg := soleSegment(t, dir)
		data, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		// Cut into the middle of the final record (b's completion).
		if err := os.WriteFile(seg, data[:len(data)-17], 0o644); err != nil {
			t.Fatal(err)
		}
		j, rec, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer j.Close()
		checkConsistent(t, rec)
		if j.Stats().TruncatedTails == 0 {
			t.Fatal("no tail truncation recorded")
		}
		// b's completion was destroyed: b must be pending again (replay
		// re-runs it deterministically), a's completion must survive.
		ids := pendingIDs(rec)
		if !ids["b"] || !ids["c"] || ids["a"] {
			t.Fatalf("pending = %v, want b and c", ids)
		}
		if _, ok := rec.Completed["a"]; !ok {
			t.Fatal("a's completion lost")
		}
	})

	t.Run("bit-flipped checksum", func(t *testing.T) {
		dir := seedJournal(t)
		seg := soleSegment(t, dir)
		data, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		// Flip one hex digit inside the *first* record's checksum field:
		// the scan stops there and the whole segment tail is dropped —
		// every job replays, none is lost.
		i := strings.Index(string(data), `"sum":"sha256:`)
		if i < 0 {
			t.Fatal("no checksum field found")
		}
		pos := i + len(`"sum":"sha256:`)
		if data[pos] == 'f' {
			data[pos] = '0'
		} else {
			data[pos] = 'f'
		}
		if err := os.WriteFile(seg, data, 0o644); err != nil {
			t.Fatal(err)
		}
		j, rec, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer j.Close()
		checkConsistent(t, rec)
		if j.Stats().CorruptRecords == 0 {
			t.Fatal("corruption not detected")
		}
		// Everything after the flipped record is gone; the journal must
		// still open and be appendable.
		mustAccept(t, j, "post-damage")
		j2, rec2 := reopen(t, j)
		defer j2.Close()
		if !pendingIDs(rec2)["post-damage"] {
			t.Fatal("append after damage recovery lost")
		}
	})

	t.Run("missing segment", func(t *testing.T) {
		dir := t.TempDir()
		// Build a multi-segment log by hand: compaction normally collapses
		// to one, so write a second segment file directly.
		j, _, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		mustAccept(t, j, "a")
		mustAccept(t, j, "b")
		mustComplete(t, j, "a")
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		// Move b's world into a separate earlier segment? Simpler: delete
		// the only segment after copying its completion lines into a new
		// later segment, leaving the accepted records "missing".
		seg := soleSegment(t, dir)
		data, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.SplitAfter(strings.TrimSuffix(string(data), "\n"), "\n")
		var completions []string
		for _, ln := range lines {
			var r Record
			if json.Unmarshal([]byte(strings.TrimSuffix(ln, "\n")), &r) == nil && r.Kind == KindCompleted {
				completions = append(completions, ln)
			}
		}
		next := filepath.Join(dir, segName(9))
		if err := os.WriteFile(next, []byte(strings.Join(completions, "")+""), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.Remove(seg); err != nil {
			t.Fatal(err)
		}
		jj, rec, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer jj.Close()
		checkConsistent(t, rec)
		// The accepted records vanished with the segment, but a's
		// completion still answers re-submissions; b is simply unknown —
		// the service never promised it durably if its record is gone.
		if _, ok := rec.Completed["a"]; !ok {
			t.Fatal("completion in surviving segment lost")
		}
		if len(rec.Pending) != 0 {
			t.Fatalf("pending = %+v, want none", rec.Pending)
		}
	})

	t.Run("duplicate completion record", func(t *testing.T) {
		dir := seedJournal(t)
		seg := soleSegment(t, dir)
		data, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		// Duplicate a's completion verbatim at the end of the log — what a
		// crash between run and completion-sync produces after replay.
		lines := strings.SplitAfter(string(data), "\n")
		var dup string
		for _, ln := range lines {
			var r Record
			if json.Unmarshal([]byte(strings.TrimSpace(ln)), &r) == nil &&
				r.Kind == KindCompleted && r.ID == "a" {
				dup = ln
			}
		}
		if dup == "" {
			t.Fatal("no completion line found to duplicate")
		}
		if err := os.WriteFile(seg, append(data, []byte(dup)...), 0o644); err != nil {
			t.Fatal(err)
		}
		j, rec, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer j.Close()
		checkConsistent(t, rec)
		// Note: the duplicated line reuses an old seq, and its checksum
		// still validates (checksums cover content, not position). The
		// first close wins; the duplicate is collapsed and counted.
		if j.Stats().DupCloses == 0 {
			t.Fatal("duplicate completion not collapsed")
		}
		if got := string(rec.Completed["a"].Result); got != `{"out":"a"}` {
			t.Fatalf("completed[a] result = %s", got)
		}
	})
}

func pendingIDs(rec *Recovery) map[string]bool {
	m := map[string]bool{}
	for _, r := range rec.Pending {
		m[r.ID] = true
	}
	return m
}

// TestCancelThenResubmitReruns: a cancellation closes the job, but a later
// acceptance of the same id (an explicit re-submission) must reopen it
// rather than being swallowed by the stale close.
func TestCancelThenResubmitReruns(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustAccept(t, j, "a")
	if err := j.Cancelled("a", "client request"); err != nil {
		t.Fatal(err)
	}
	j, rec := reopen(t, j)
	if len(rec.Pending) != 0 {
		t.Fatalf("cancelled job still pending: %+v", rec.Pending)
	}
	if rec.Cancelled["a"].Reason != "client request" {
		t.Fatalf("cancelled[a] = %+v", rec.Cancelled["a"])
	}
	j.Close()
}

func TestClosedJournalRejectsAppends(t *testing.T) {
	j, _, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Accepted("x", nil); err == nil {
		t.Fatal("append after Close succeeded")
	}
	if err := j.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}
