// Package journal is earthd's durability layer: an append-only,
// segment-rotated write-ahead log of accepted jobs and their outcomes.
// The service appends an accepted record — and syncs it — before it
// acknowledges a job, so a SIGKILL, OOM, or node crash can lose only work
// the client was never promised. On restart, Open replays the log into a
// Recovery: jobs with no outcome re-enter the queue, and completed jobs
// answer re-submissions from their journaled payload without re-running.
//
// The format borrows the repo's self-validation idiom (the PR 7 artifact
// store): one JSON record per line, each carrying a contenthash checksum
// over its own fields. A record that does not validate — truncated by a
// crash mid-append, bit-flipped on disk, half of a torn write — is treated
// as the end of that segment: the tail is truncated on open and scanning
// continues with the next segment. Recovery therefore degrades in exactly
// one direction: a lost *outcome* record re-runs its job (deterministic
// replay makes the payload byte-identical), and a lost *accepted* record
// can only drop a job the service never acknowledged durably.
//
// Segments rotate by size, and every rotation doubles as a compaction:
// the live state (pending accepted records plus a bounded window of recent
// outcomes) is snapshotted into the fresh segment and the fully-absorbed
// old segments are deleted, so disk usage is bounded by the segment size
// plus the retention window rather than by service lifetime.
package journal

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"

	"repro/internal/contenthash"
)

// Record kinds. Accepted opens a job; exactly one of Completed/Cancelled
// closes it. Duplicate closes are legal (crash-replay can complete a job
// whose earlier completion record was lost in the same crash that forced
// the replay) and collapse deterministically: the first valid close wins.
const (
	KindAccepted  = "accepted"
	KindCompleted = "completed"
	KindCancelled = "cancelled"
)

// Record is one journal entry. Req carries the accepted job's canonical
// request JSON; Status/Result/Error carry a completion (Result for
// successes, Error + the mapped HTTP status for deterministic failures);
// Reason annotates a cancellation.
type Record struct {
	Seq    uint64          `json:"seq"`
	Kind   string          `json:"kind"`
	ID     string          `json:"id"`
	Req    json.RawMessage `json:"req,omitempty"`
	Status int             `json:"status,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
	Reason string          `json:"reason,omitempty"`
	// Sum is the contenthash over every field above; a record that fails
	// to re-derive it is corrupt and terminates its segment's scan.
	Sum string `json:"sum"`
}

func (r *Record) checksum() string {
	return contenthash.Parts(
		strconv.FormatUint(r.Seq, 10), r.Kind, r.ID,
		strconv.Itoa(r.Status), string(r.Req), string(r.Result),
		r.Error, r.Reason)
}

// Options tune the journal. The zero value is production-ready.
type Options struct {
	// SegmentBytes is the rotation threshold (default 1 MiB). Rotation
	// compacts: live state moves to the new segment, old segments are
	// deleted.
	SegmentBytes int64
	// SyncEvery bounds how many outcome records may sit unsynced before a
	// write forces fsync (default 16). Accepted records always sync before
	// Accepted returns — that is the durability point the 202 stands on.
	SyncEvery int
	// Retain bounds how many closed-job records survive a compaction
	// (default 4096, newest first). A re-submission older than the window
	// re-runs instead of replaying — correct, just not free.
	Retain int
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 1 << 20
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 16
	}
	if o.Retain <= 0 {
		o.Retain = 4096
	}
	return o
}

// Stats counts journal activity since Open.
type Stats struct {
	Appended       int64 // records appended this process
	Syncs          int64 // fsyncs issued
	Lag            int   // records appended but not yet synced
	Segments       int   // live segment files
	CorruptRecords int64 // records dropped by validation on open
	TruncatedTails int64 // segments whose tail was cut on open
	DupCloses      int64 // duplicate completion/cancellation records collapsed
	Compactions    int64 // snapshot compactions performed
	PendingJobs    int   // accepted jobs with no outcome yet
}

// Recovery is the state rebuilt by Open: what must re-run and what can be
// answered without running.
type Recovery struct {
	// Pending holds accepted records with no outcome, in journal order —
	// the jobs the service must replay through its queue.
	Pending []Record
	// Completed maps job id to its first valid completion record.
	Completed map[string]Record
	// Cancelled maps job id to its first valid cancellation record (only
	// ids with no completion; a completed job's late cancel is ignored).
	Cancelled map[string]Record
}

// Journal is an open write-ahead log. Safe for concurrent use.
type Journal struct {
	mu  sync.Mutex
	dir string
	opt Options

	f        *os.File
	segIndex uint64 // index of the open segment
	segs     []string
	written  int64 // bytes appended to the open segment since its snapshot
	nextSeq  uint64
	lag      int

	// Live state, maintained across appends so every rotation can compact.
	pending   map[string]Record // accepted, no outcome
	pendOrder []string
	closed    map[string]Record // first completion/cancellation per id
	closOrder []string

	stats Stats
}

func segName(i uint64) string { return fmt.Sprintf("seg-%010d.wal", i) }

// Open loads (creating if needed) the journal in dir, validates and
// repairs it, compacts multi-segment or damaged logs into one snapshot
// segment, and returns the recovered state.
func Open(dir string, opt Options) (*Journal, *Recovery, error) {
	opt = opt.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	j := &Journal{
		dir: dir, opt: opt,
		pending: make(map[string]Record),
		closed:  make(map[string]Record),
	}
	names, err := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if err != nil {
		return nil, nil, err
	}
	sort.Strings(names)
	damaged := false
	for _, name := range names {
		d, err := j.scanSegment(name)
		if err != nil {
			return nil, nil, err
		}
		damaged = damaged || d
	}
	j.trimClosedLocked()
	for _, name := range names {
		var idx uint64
		fmt.Sscanf(filepath.Base(name), "seg-%d.wal", &idx)
		if idx >= j.segIndex {
			j.segIndex = idx + 1
		}
	}
	rec := &Recovery{
		Completed: make(map[string]Record),
		Cancelled: make(map[string]Record),
	}
	for _, id := range j.pendOrder {
		if r, ok := j.pending[id]; ok {
			rec.Pending = append(rec.Pending, r)
		}
	}
	for id, r := range j.closed {
		switch r.Kind {
		case KindCompleted:
			rec.Completed[id] = r
		case KindCancelled:
			rec.Cancelled[id] = r
		}
	}
	// Compact damaged or multi-segment logs into one fresh snapshot; a
	// single clean segment reopens for append as-is.
	if damaged || len(names) != 1 {
		if err := j.compactLocked(names); err != nil {
			return nil, nil, err
		}
	} else {
		f, err := os.OpenFile(names[0], os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, err
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, nil, err
		}
		j.f, j.segs, j.written = f, []string{names[0]}, st.Size()
	}
	j.stats.Segments = len(j.segs)
	j.stats.PendingJobs = len(j.pending)
	return j, rec, nil
}

// scanSegment replays one segment file into the live state. A record that
// fails to parse or validate ends the segment: the remainder is dropped,
// and the file is truncated at the bad offset so the damage never has to
// be re-diagnosed. Returns whether the segment was damaged.
func (j *Journal) scanSegment(name string) (bool, error) {
	f, err := os.Open(name)
	if err != nil {
		return false, err
	}
	defer f.Close()
	var off int64
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 64<<20)
	damaged := false
	for sc.Scan() {
		line := sc.Bytes()
		var r Record
		if err := json.Unmarshal(line, &r); err != nil || r.Sum != r.checksum() {
			damaged = true
			break
		}
		off += int64(len(line)) + 1
		j.applyLocked(r)
		if r.Seq >= j.nextSeq {
			j.nextSeq = r.Seq + 1
		}
	}
	if err := sc.Err(); err != nil && err != bufio.ErrTooLong {
		return false, err
	}
	st, err := f.Stat()
	if err != nil {
		return false, err
	}
	if damaged || off < st.Size() {
		// Either an invalid record or trailing garbage the scanner could
		// not frame: cut the tail so the next open starts clean. (A clean
		// final line with no trailing newline also lands here; rewriting
		// it off is harmless because compaction rewrites the log anyway.)
		j.stats.CorruptRecords++
		j.stats.TruncatedTails++
		if err := os.Truncate(name, off); err != nil {
			return false, err
		}
		return true, nil
	}
	return false, nil
}

// applyLocked folds one valid record into the live state. First close per
// id wins; an accepted record for an already-closed id (possible after a
// compaction raced a crash) stays closed.
func (j *Journal) applyLocked(r Record) {
	switch r.Kind {
	case KindAccepted:
		if _, done := j.closed[r.ID]; done {
			return
		}
		if _, ok := j.pending[r.ID]; !ok {
			j.pendOrder = append(j.pendOrder, r.ID)
		}
		j.pending[r.ID] = r
	case KindCompleted, KindCancelled:
		if _, done := j.closed[r.ID]; done {
			j.stats.DupCloses++
			return
		}
		j.closed[r.ID] = r
		j.closOrder = append(j.closOrder, r.ID)
		delete(j.pending, r.ID)
	}
}

// Accepted journals a job acceptance and syncs before returning: once this
// returns nil the job survives any crash. req should be the canonical
// request encoding the service would need to re-run the job.
func (j *Journal) Accepted(id string, req []byte) error {
	return j.append(Record{Kind: KindAccepted, ID: id, Req: req}, true)
}

// Completed journals a job outcome: result JSON for successes, the mapped
// HTTP status plus error text for deterministic failures. Outcome records
// sync lazily (see Options.SyncEvery); a lost one costs a deterministic
// re-run, never a wrong answer.
func (j *Journal) Completed(id string, status int, result []byte, errMsg string) error {
	return j.append(Record{Kind: KindCompleted, ID: id, Status: status, Result: result, Error: errMsg}, false)
}

// Cancelled journals an abort (client request, disconnect, wall deadline).
func (j *Journal) Cancelled(id, reason string) error {
	return j.append(Record{Kind: KindCancelled, ID: id, Reason: reason}, false)
}

func (j *Journal) append(r Record, syncNow bool) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("journal: closed")
	}
	r.Seq = j.nextSeq
	j.nextSeq++
	r.Sum = r.checksum()
	line, err := json.Marshal(&r)
	if err != nil {
		return err
	}
	if j.written > j.opt.SegmentBytes {
		if err := j.rotateLocked(); err != nil {
			return err
		}
	}
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		return err
	}
	j.written += int64(len(line)) + 1
	j.applyLocked(r)
	j.trimClosedLocked()
	j.stats.Appended++
	j.lag++
	if syncNow || j.lag >= j.opt.SyncEvery {
		return j.syncLocked()
	}
	return nil
}

// trimClosedLocked enforces the retention window on closed-job records in
// memory; disk catches up at the next compaction.
func (j *Journal) trimClosedLocked() {
	for len(j.closOrder) > j.opt.Retain {
		delete(j.closed, j.closOrder[0])
		j.closOrder = j.closOrder[1:]
	}
}

// rotateLocked is rotation-as-compaction: snapshot the live state into a
// fresh segment, then delete every older segment (their live records are
// all in the snapshot; their dead ones are the point of compacting).
func (j *Journal) rotateLocked() error {
	old := j.segs
	if j.f != nil {
		j.f.Sync()
		j.f.Close()
		j.f = nil
	}
	return j.writeSnapshotLocked(old)
}

// compactLocked is the open-time variant of rotation: the segment list
// comes from the directory scan and no file is currently open.
func (j *Journal) compactLocked(old []string) error {
	return j.writeSnapshotLocked(old)
}

// writeSnapshotLocked writes pending + retained closed records into a new
// segment, fsyncs it (and the directory), points the journal at it, and
// removes the old segments.
func (j *Journal) writeSnapshotLocked(old []string) error {
	name := filepath.Join(j.dir, segName(j.segIndex))
	j.segIndex++
	f, err := os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	var written int64
	emit := func(r Record) error {
		r.Seq = j.nextSeq
		j.nextSeq++
		r.Sum = r.checksum()
		line, err := json.Marshal(&r)
		if err != nil {
			return err
		}
		n, err := w.Write(append(line, '\n'))
		written += int64(n)
		return err
	}
	for _, id := range j.closOrder {
		if r, ok := j.closed[id]; ok {
			if err := emit(r); err != nil {
				f.Close()
				return err
			}
		}
	}
	for _, id := range j.pendOrder {
		if r, ok := j.pending[id]; ok {
			if err := emit(r); err != nil {
				f.Close()
				return err
			}
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	// Rebuild pendOrder without tombstones of long-closed ids.
	live := j.pendOrder[:0]
	for _, id := range j.pendOrder {
		if _, ok := j.pending[id]; ok {
			live = append(live, id)
		}
	}
	j.pendOrder = live
	for _, o := range old {
		if o != name {
			os.Remove(o)
		}
	}
	if d, err := os.Open(j.dir); err == nil {
		d.Sync()
		d.Close()
	}
	j.f, j.segs, j.written, j.lag = f, []string{name}, written, 0
	j.stats.Compactions++
	j.stats.Syncs++
	return nil
}

func (j *Journal) syncLocked() error {
	if j.lag == 0 || j.f == nil {
		return nil
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.stats.Syncs++
	j.lag = 0
	return nil
}

// Sync forces any lazily-appended outcome records to disk.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.syncLocked()
}

// Lag reports how many appended records are not yet known synced — the
// /healthz "journal lag" figure.
func (j *Journal) Lag() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.lag
}

// Stats snapshots journal activity.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := j.stats
	st.Lag = j.lag
	st.Segments = len(j.segs)
	st.PendingJobs = len(j.pending)
	return st
}

// Dir returns the journal directory.
func (j *Journal) Dir() string { return j.dir }

// Close syncs and releases the log. Further appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.syncLocked()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}
