package locality_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/locality"
	"repro/internal/simple"
)

func analyze(t *testing.T, src string) (*simple.Program, *locality.Result) {
	t.Helper()
	u, err := core.NewPipeline(core.Options{NoInline: true}).Compile("t.ec", src)
	if err != nil {
		t.Fatal(err)
	}
	return u.Simple, u.Locality
}

func varOf(t *testing.T, sp *simple.Program, fn, name string) *simple.Var {
	t.Helper()
	v := sp.FuncByName(fn).VarByName(name)
	if v == nil {
		t.Fatalf("no var %s in %s", name, fn)
	}
	return v
}

func TestQualifierPinsLocal(t *testing.T) {
	sp, loc := analyze(t, `
struct P { int a; };
int g(P local *p) { return p->a; }
int main() { return 0; }
`)
	if !loc.IsLocal(varOf(t, sp, "g", "p")) {
		t.Error("explicitly local parameter must be local")
	}
}

func TestUnqualifiedParamRemote(t *testing.T) {
	sp, loc := analyze(t, `
struct P { int a; };
int g(P *p) { return p->a; }
int main() { return 0; }
`)
	if loc.IsLocal(varOf(t, sp, "g", "p")) {
		t.Error("unqualified pointer parameter must be treated as possibly remote")
	}
}

func TestAllocHereIsLocal(t *testing.T) {
	sp, loc := analyze(t, `
struct P { int a; };
int main() {
	P *p;
	p = alloc(P);
	return p->a;
}
`)
	if !loc.IsLocal(varOf(t, sp, "main", "p")) {
		t.Error("alloc() result is local to the executing node")
	}
}

func TestAllocOnIsRemote(t *testing.T) {
	sp, loc := analyze(t, `
struct P { int a; };
int main() {
	P *p;
	p = alloc_on(P, 1);
	return p->a;
}
`)
	if loc.IsLocal(varOf(t, sp, "main", "p")) {
		t.Error("alloc_on() may target another node")
	}
}

func TestLocalityPropagatesThroughCopies(t *testing.T) {
	sp, loc := analyze(t, `
struct P { int a; };
int main() {
	P *p;
	P *q;
	p = alloc(P);
	q = p;
	return q->a;
}
`)
	if !loc.IsLocal(varOf(t, sp, "main", "q")) {
		t.Error("copy of a local pointer is local")
	}
}

func TestHeapLoadedPointerRemote(t *testing.T) {
	sp, loc := analyze(t, `
struct N { int v; struct N *next; };
int main() {
	N *p;
	N *q;
	p = alloc(N);
	q = p->next;
	return 0;
}
`)
	if loc.IsLocal(varOf(t, sp, "main", "q")) {
		t.Error("a pointer loaded from memory has unknown origin")
	}
}

func TestMixedSourcesRemote(t *testing.T) {
	sp, loc := analyze(t, `
struct P { int a; };
int main() {
	P *p;
	int c;
	c = num_nodes();
	p = alloc(P);
	if (c > 1) {
		p = alloc_on(P, 1);
	}
	return p->a;
}
`)
	if loc.IsLocal(varOf(t, sp, "main", "p")) {
		t.Error("a pointer with any non-local source is not local")
	}
}

func TestCycleOfLocalCopiesStaysLocal(t *testing.T) {
	sp, loc := analyze(t, `
struct P { int a; };
int main() {
	P *p;
	P *q;
	int i;
	p = alloc(P);
	q = p;
	for (i = 0; i < 3; i++) {
		p = q;
		q = p;
	}
	return p->a;
}
`)
	if !loc.IsLocal(varOf(t, sp, "main", "p")) || !loc.IsLocal(varOf(t, sp, "main", "q")) {
		t.Error("mutually-copied local pointers remain local (greatest fixpoint)")
	}
}

func TestCallResultRemote(t *testing.T) {
	sp, loc := analyze(t, `
struct P { int a; };
P *make() { return alloc(P); }
int main() {
	P *p;
	p = make();
	return p->a;
}
`)
	if loc.IsLocal(varOf(t, sp, "main", "p")) {
		t.Error("returned pointers are of unknown origin (context-insensitive)")
	}
}
