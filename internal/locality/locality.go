// Package locality determines which pointer variables are known to refer to
// the executing node's local memory, so dereferences through them are not
// remote operations. It reproduces, in simplified form, the locality
// analysis of Zhu & Hendren (PACT'97) that the paper's compiler pipeline
// runs immediately before communication analysis.
//
// Locality facts come from three sources:
//
//  1. explicit EARTH-C `local` qualifiers on pointer declarations (the
//     programmer's assertion, honored unconditionally, exactly as in the
//     paper);
//  2. allocation: a pointer assigned only from alloc() (current node)
//     cannot refer to remote memory;
//  3. frame addresses: &v of a frame variable is always local, and &p->f
//     inherits p's locality.
//
// A pointer is local only if *every* value source is local; the analysis is
// an optimistic greatest-fixpoint over the per-function assignment graph.
// Parallel constructs never migrate a fiber mid-function (migration happens
// only at @OWNER_OF/@ON/@HOME call boundaries, where the callee's own
// parameter qualifiers apply), so intra-function locality is stable.
package locality

import (
	"repro/internal/par"
	"repro/internal/pointsto"
	"repro/internal/simple"
)

// Result reports pointer locality for a whole program.
type Result struct {
	local map[*simple.Var]bool
}

// IsLocal reports whether dereferences through v are known local.
func (r *Result) IsLocal(v *simple.Var) bool { return r.local[v] }

// RemoteLoad reports whether a LoadRV through p is a remote operation.
func (r *Result) RemoteLoad(p *simple.Var) bool { return !r.local[p] }

// Set installs an externally established verdict for v. The compile cache
// uses it when splicing a cached function body into a fresh program: the
// body's variables were not part of this run's analysis, but a facts
// digest proved their verdicts unchanged, so the cached ones are installed
// by object.
func (r *Result) Set(v *simple.Var, local bool) {
	if local {
		r.local[v] = true
	} else {
		delete(r.local, v)
	}
}

// Analyze runs locality analysis.
func Analyze(prog *simple.Program, pt *pointsto.Result) *Result {
	return AnalyzeP(prog, pt, nil)
}

// AnalyzeP is Analyze with per-function scanning fanned across pool (nil
// pool runs inline). Each fixpoint pass reads the candidate set concurrently
// and collects per-function demotion lists; demotions apply sequentially
// between passes (Jacobi iteration). The greatest fixpoint is unique, so
// the result is identical to the sequential (Gauss-Seidel) run.
func AnalyzeP(prog *simple.Program, pt *pointsto.Result, pool *par.Pool) *Result {
	res := &Result{local: make(map[*simple.Var]bool)}

	// Candidate set: every pointer variable starts optimistic-local except
	// unqualified parameters and globals; qualified pointers are pinned
	// local.
	pinned := make(map[*simple.Var]bool)
	candidate := make(map[*simple.Var]bool)
	for _, f := range prog.Funcs {
		vars := append(append([]*simple.Var{}, f.Params...), f.Locals...)
		for _, v := range vars {
			if !v.IsPtr() {
				continue
			}
			if v.IsLocalPtr() {
				pinned[v] = true
				candidate[v] = true
				continue
			}
			if v.Kind == simple.VarParam {
				continue // callers may pass remote pointers
			}
			if pt.AddressTaken(v) {
				continue // may be overwritten through an alias
			}
			candidate[v] = true
		}
	}
	for _, g := range prog.Globals {
		if g.IsPtr() && g.IsLocalPtr() {
			pinned[g] = true
			candidate[g] = true
		}
	}

	// Iteratively remove candidates with a non-local source. Within a pass
	// every function is scanned against the same candidate snapshot (no
	// writes happen until the pass completes), so functions can scan in
	// parallel.
	n := len(prog.Funcs)
	demoted := make([][]*simple.Var, n)
	for {
		pool.ForEach(n, func(i int) {
			var out []*simple.Var
			simple.WalkBasics(prog.Funcs[i].Body, func(b *simple.Basic) {
				if v, lcl := defSource(b, candidate); v != nil && !lcl {
					if candidate[v] && !pinned[v] {
						out = append(out, v)
					}
				}
			})
			demoted[i] = out
		})
		changed := false
		for _, ds := range demoted {
			for _, v := range ds {
				if candidate[v] {
					delete(candidate, v)
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	for v := range candidate {
		res.local[v] = true
	}
	return res
}

// defSource inspects a basic statement for a definition of a pointer
// variable, returning the defined variable and whether the source is local
// given the current candidate set. Returns (nil, _) when the statement does
// not define a pointer variable.
func defSource(b *simple.Basic, candidate map[*simple.Var]bool) (*simple.Var, bool) {
	switch b.Kind {
	case simple.KAssign:
		lv, ok := b.Lhs.(simple.VarLV)
		if !ok || !lv.V.IsPtr() {
			return nil, false
		}
		switch rhs := b.Rhs.(type) {
		case simple.AtomRV:
			if w := simple.AtomVar(rhs.A); w != nil {
				return lv.V, candidate[w]
			}
			// NULL or constant: locality-neutral.
			return lv.V, true
		case simple.AddrRV:
			return lv.V, true // frame addresses are local
		case simple.FieldAddrRV:
			return lv.V, candidate[rhs.P]
		case simple.LoadRV, simple.LocalLoadRV:
			// Pointer fetched from memory: unknown origin.
			return lv.V, false
		default:
			return lv.V, false
		}
	case simple.KAlloc:
		if b.Dst == nil || !b.Dst.IsPtr() {
			return nil, false
		}
		// alloc() is on the executing node; alloc_on may be elsewhere.
		return b.Dst, b.Node == nil
	case simple.KCall, simple.KBuiltin:
		if b.Dst != nil && b.Dst.IsPtr() {
			return b.Dst, false // returned pointers are of unknown origin
		}
	case simple.KGetF:
		if b.Dst != nil && b.Dst.IsPtr() {
			return b.Dst, false
		}
	}
	return nil, false
}
