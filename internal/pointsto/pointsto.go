// Package pointsto implements a whole-program, flow-insensitive,
// field-sensitive points-to analysis over SIMPLE form. It stands in for the
// McCAT stack points-to analysis (Emami et al.) and heap connection analysis
// (Ghiya & Hendren) that the paper's placement analysis consumes.
//
// Abstract locations are (base, word offset) pairs, where a base is either a
// variable (parameter, local, or global — including struct-valued storage)
// or a heap allocation site. Field sensitivity is by word offset, which
// matches the word-granular layout used throughout this reproduction and
// lets interior pointers (&p->f) be modeled exactly.
//
// The analysis is Andersen-style (inclusion constraints) and
// context-insensitive across calls. It runs in two steps: constraint
// generation walks each function body exactly once (independent per
// function, fanned across the pipeline's worker pool), then a flat solver
// iterates the collected constraint list to a fixpoint. Constraints are
// merged in function order, so the solved result is identical regardless
// of worker count — and the solver never re-walks the AST, which is where
// the old per-pass walker spent most of its time.
package pointsto

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/par"
	"repro/internal/simple"
)

// AllocSite names a heap allocation site (one KAlloc basic statement).
type AllocSite struct {
	Fn     *simple.Func
	B      *simple.Basic
	Struct string
	Size   int
}

func (a *AllocSite) String() string {
	return fmt.Sprintf("heap:%s@%s.S%d", a.Struct, a.Fn.Name, a.B.Label)
}

// Base is the root of an abstract location: a *simple.Var or an *AllocSite.
type Base any

// Loc is an abstract memory location: a word within a base object.
type Loc struct {
	Base Base
	Off  int
}

// String renders the location for diagnostics.
func (l Loc) String() string {
	switch b := l.Base.(type) {
	case *simple.Var:
		if l.Off == 0 {
			return b.Name
		}
		return fmt.Sprintf("%s+%d", b.Name, l.Off)
	case *AllocSite:
		return fmt.Sprintf("%s+%d", b, l.Off)
	}
	return "?loc"
}

// LocSet is a set of abstract locations.
type LocSet map[Loc]bool

// Add inserts a location, reporting whether it was new.
func (s LocSet) Add(l Loc) bool {
	if s[l] {
		return false
	}
	s[l] = true
	return true
}

// AddAll inserts all of o, reporting whether anything was new.
func (s LocSet) AddAll(o LocSet) bool {
	changed := false
	for l := range o {
		if s.Add(l) {
			changed = true
		}
	}
	return changed
}

// String renders the set sorted, for stable test output.
func (s LocSet) String() string {
	items := make([]string, 0, len(s))
	for l := range s {
		items = append(items, l.String())
	}
	sort.Strings(items)
	return "{" + strings.Join(items, ", ") + "}"
}

// Result is the solved points-to information for a program.
type Result struct {
	Prog *simple.Program

	// VarPts maps each pointer variable to the locations it may target.
	VarPts map[*simple.Var]LocSet
	// MemPts maps each abstract location (a pointer-holding word) to the
	// locations the stored pointer may target.
	MemPts map[Loc]LocSet
	// Sites lists all allocation sites.
	Sites []*AllocSite
	// addrTaken records variables whose storage can be reached via a
	// pointer.
	addrTaken map[*simple.Var]bool
	// Returns maps each function to the points-to set of its return values.
	Returns map[*simple.Func]LocSet
}

// Pts returns the points-to set of a variable (nil-safe, read-only).
func (r *Result) Pts(v *simple.Var) LocSet { return r.VarPts[v] }

// AddressTaken reports whether v's own storage may be reached via pointers.
func (r *Result) AddressTaken(v *simple.Var) bool { return r.addrTaken[v] }

// MayAlias reports whether accesses via pointers p (at offset poff) and q
// (at offset qoff) can touch the same word.
func (r *Result) MayAlias(p *simple.Var, poff int, q *simple.Var, qoff int) bool {
	ps, qs := r.VarPts[p], r.VarPts[q]
	for pl := range ps {
		target := Loc{Base: pl.Base, Off: pl.Off + poff}
		for ql := range qs {
			if ql.Base == target.Base && ql.Off+qoff == target.Off {
				return true
			}
		}
	}
	return false
}

// Targets returns the set of words reached by dereferencing p at off.
func (r *Result) Targets(p *simple.Var, off int) LocSet {
	out := make(LocSet)
	for pl := range r.VarPts[p] {
		out.Add(Loc{Base: pl.Base, Off: pl.Off + off})
	}
	return out
}

// TargetRange returns the words reached by a block access of size words
// through p starting at off.
func (r *Result) TargetRange(p *simple.Var, off, size int) LocSet {
	out := make(LocSet)
	for pl := range r.VarPts[p] {
		for i := 0; i < size; i++ {
			out.Add(Loc{Base: pl.Base, Off: pl.Off + off + i})
		}
	}
	return out
}

// ------------------------------------------------------------ constraints ---

type cKind uint8

const (
	cCopy       cKind = iota // pts(dst) ⊇ pts(src)
	cLoad                    // pts(dst) ⊇ mem(pts(p)+off)
	cLoadFixed               // pts(dst) ⊇ mem(loc)
	cLoadRange               // pts(dst) ⊇ mem(base+i), i = start, start+step, … < limit+start? (see apply)
	cStore                   // mem(pts(p)+off) ⊇ pts(src)
	cStoreFixed              // mem(loc) ⊇ pts(src)
	cStoreRange              // mem(base+i) ⊇ pts(src) over the range
	cFieldAddr               // pts(dst) ⊇ {(b, o+off) | (b,o) ∈ pts(p)}
	cCallRet                 // pts(dst) ⊇ Returns[fn]
	cRetFlow                 // Returns[fn] ⊇ pts(src)
	cBlkCopy                 // word-by-word mem-mem flow between b's ranges
)

// constraint is one inclusion edge. Only the fields its kind uses are set.
type constraint struct {
	kind  cKind
	dst   *simple.Var
	src   *simple.Var
	p     *simple.Var // dereferenced pointer (cLoad/cStore/cFieldAddr)
	loc   Loc         // cLoadFixed/cStoreFixed
	base  *simple.Var // cLoadRange/cStoreRange
	off   int         // deref offset, or range start offset
	step  int         // range stride
	limit int         // range extent (base's size in words)
	fn    *simple.Func
	b     *simple.Basic // cBlkCopy
}

// seed is a ground fact: loc ∈ pts(v).
type seed struct {
	v   *simple.Var
	loc Loc
}

// genOut is one function's generated constraint system.
type genOut struct {
	cons      []constraint
	seeds     []seed
	sites     []*AllocSite
	addrTaken []*simple.Var
}

// Analyze runs the analysis over a SIMPLE program.
func Analyze(prog *simple.Program) (*Result, error) {
	return AnalyzeP(prog, nil)
}

// AnalyzeP is Analyze with constraint generation fanned across pool (nil
// pool runs inline). The result is identical regardless of pool width.
func AnalyzeP(prog *simple.Program, pool *par.Pool) (*Result, error) {
	r := &Result{
		Prog:      prog,
		VarPts:    make(map[*simple.Var]LocSet),
		MemPts:    make(map[Loc]LocSet),
		addrTaken: make(map[*simple.Var]bool),
		Returns:   make(map[*simple.Func]LocSet),
	}
	funcs := make(map[string]*simple.Func, len(prog.Funcs))
	for _, f := range prog.Funcs {
		funcs[f.Name] = f
		r.Returns[f] = make(LocSet)
	}

	// Generate constraints, one walk per function.
	n := len(prog.Funcs)
	outs := make([]genOut, n)
	pool.ForEach(n, func(i int) {
		g := generator{fn: prog.Funcs[i], funcs: funcs}
		simple.WalkBasics(prog.Funcs[i].Body, g.basic)
		outs[i] = g.out
	})

	// Merge in function order: allocation sites keep their sequential
	// (function, walk) order, seeds and facts land before solving.
	s := solver{r: r}
	var cons []constraint
	for i := range outs {
		o := &outs[i]
		r.Sites = append(r.Sites, o.sites...)
		for _, v := range o.addrTaken {
			r.addrTaken[v] = true
		}
		for _, sd := range o.seeds {
			s.varSet(sd.v).Add(sd.loc)
		}
		cons = append(cons, o.cons...)
	}

	// Iterate the flat constraint list to a fixpoint.
	for pass := 0; ; pass++ {
		s.changed = false
		for i := range cons {
			s.apply(&cons[i])
		}
		if !s.changed {
			break
		}
		if pass > 200 {
			// Termination is guaranteed (finite lattice, monotone), but
			// guard against bugs — as a returned error, not a crash, since
			// any source program can reach this path.
			return nil, fmt.Errorf("pointsto: fixpoint did not converge after %d passes over %d constraints (internal invariant violated)", pass, len(cons))
		}
	}
	return r, nil
}

// ------------------------------------------------------------- generation ---

// generator collects the constraints of one function. It only reads the
// program (and the shared funcs index), so generators for different
// functions can run concurrently.
type generator struct {
	fn    *simple.Func
	funcs map[string]*simple.Func
	out   genOut
}

func (g *generator) emit(c constraint) { g.out.cons = append(g.out.cons, c) }

func (g *generator) copyFlow(dst *simple.Var, at simple.Atom) {
	if v := simple.AtomVar(at); v != nil && v.IsPtr() {
		g.emit(constraint{kind: cCopy, dst: dst, src: v})
	}
}

func (g *generator) basic(b *simple.Basic) {
	switch b.Kind {
	case simple.KAssign:
		g.assign(b)
	case simple.KAlloc:
		site := &AllocSite{Fn: g.fn, B: b, Struct: b.StructName, Size: b.AllocSize}
		g.out.sites = append(g.out.sites, site)
		if b.Dst != nil {
			g.out.seeds = append(g.out.seeds, seed{v: b.Dst, loc: Loc{Base: site, Off: 0}})
		}
	case simple.KCall:
		callee := g.funcs[b.Fun]
		if callee == nil {
			return
		}
		for i, arg := range b.Args {
			if i >= len(callee.Params) {
				break
			}
			pv := callee.Params[i]
			if pv.IsPtr() {
				g.copyFlow(pv, arg)
			}
		}
		if b.Dst != nil && b.Dst.IsPtr() {
			g.emit(constraint{kind: cCallRet, dst: b.Dst, fn: callee})
		}
	case simple.KBuiltin:
		// Shared-variable intrinsics can move pointers: writeto(&sp, q)
		// stores q into sp's slot, valueof(&sp) reads it back.
		if len(b.ArgVars) == 1 {
			sv := b.ArgVars[0]
			g.out.addrTaken = append(g.out.addrTaken, sv)
			if len(b.Args) == 1 {
				if v := simple.AtomVar(b.Args[0]); v != nil && v.IsPtr() {
					g.emit(constraint{kind: cStoreFixed, loc: Loc{Base: sv, Off: 0}, src: v})
				}
			}
			if b.Dst != nil && b.Dst.IsPtr() {
				g.emit(constraint{kind: cLoadFixed, dst: b.Dst, loc: Loc{Base: sv, Off: 0}})
			}
		}
	case simple.KReturn:
		if b.Val != nil {
			if v := simple.AtomVar(b.Val); v != nil && v.IsPtr() {
				g.emit(constraint{kind: cRetFlow, fn: g.fn, src: v})
			}
		}
	case simple.KBlkCopy:
		g.emit(constraint{kind: cBlkCopy, b: b})
	}
}

func (g *generator) assign(b *simple.Basic) {
	switch lhs := b.Lhs.(type) {
	case simple.VarLV:
		if !lhs.V.IsPtr() {
			return
		}
		switch rhs := b.Rhs.(type) {
		case simple.AtomRV:
			g.copyFlow(lhs.V, rhs.A)
		case simple.LoadRV:
			g.emit(constraint{kind: cLoad, dst: lhs.V, p: rhs.P, off: rhs.Off})
		case simple.LocalLoadRV:
			if rhs.Idx != nil {
				// Any element of the array could be the source.
				g.emit(constraint{kind: cLoadRange, dst: lhs.V, base: rhs.Base,
					off: 0, step: 1, limit: rhs.Base.Size})
			} else {
				g.emit(constraint{kind: cLoadFixed, dst: lhs.V,
					loc: Loc{Base: rhs.Base, Off: rhs.Off}})
			}
		case simple.AddrRV:
			g.out.addrTaken = append(g.out.addrTaken, rhs.X)
			g.out.seeds = append(g.out.seeds, seed{v: lhs.V, loc: Loc{Base: rhs.X, Off: rhs.Off}})
		case simple.FieldAddrRV:
			g.emit(constraint{kind: cFieldAddr, dst: lhs.V, p: rhs.P, off: rhs.Off})
		}
	case simple.StoreLV:
		// p->f = atom
		rhs, ok := b.Rhs.(simple.AtomRV)
		if !ok {
			return
		}
		v := simple.AtomVar(rhs.A)
		if v == nil || !v.IsPtr() {
			return
		}
		g.emit(constraint{kind: cStore, p: lhs.P, off: lhs.Off, src: v})
	case simple.LocalStoreLV:
		rhs, ok := b.Rhs.(simple.AtomRV)
		if !ok {
			return
		}
		v := simple.AtomVar(rhs.A)
		if v == nil || !v.IsPtr() {
			return
		}
		if lhs.Idx != nil {
			// Conservatively: could be any element.
			step := max(1, lhs.Scale)
			g.emit(constraint{kind: cStoreRange, base: lhs.Base, src: v,
				off: lhs.Off % step, step: step, limit: lhs.Base.Size})
		} else {
			g.emit(constraint{kind: cStoreFixed, src: v,
				loc: Loc{Base: lhs.Base, Off: lhs.Off}})
		}
	}
}

// ----------------------------------------------------------------- solving ---

type solver struct {
	r       *Result
	changed bool
}

func (s *solver) varSet(v *simple.Var) LocSet {
	set, ok := s.r.VarPts[v]
	if !ok {
		set = make(LocSet)
		s.r.VarPts[v] = set
	}
	return set
}

func (s *solver) memSet(l Loc) LocSet {
	set, ok := s.r.MemPts[l]
	if !ok {
		set = make(LocSet)
		s.r.MemPts[l] = set
	}
	return set
}

func (s *solver) flowMemVar(dst *simple.Var, src Loc) {
	if s.varSet(dst).AddAll(s.memSet(src)) {
		s.changed = true
	}
}

func (s *solver) flowVarMem(dst Loc, src *simple.Var) {
	if s.memSet(dst).AddAll(s.varSet(src)) {
		s.changed = true
	}
}

func (s *solver) flowMemMem(dst, src Loc) {
	if s.memSet(dst).AddAll(s.memSet(src)) {
		s.changed = true
	}
}

func (s *solver) apply(c *constraint) {
	switch c.kind {
	case cCopy:
		if s.varSet(c.dst).AddAll(s.varSet(c.src)) {
			s.changed = true
		}
	case cLoad:
		for pl := range s.varSet(c.p) {
			s.flowMemVar(c.dst, Loc{Base: pl.Base, Off: pl.Off + c.off})
		}
	case cLoadFixed:
		s.flowMemVar(c.dst, c.loc)
	case cLoadRange:
		for i := 0; i < c.limit; i += c.step {
			s.flowMemVar(c.dst, Loc{Base: c.base, Off: i + c.off})
		}
	case cStore:
		for pl := range s.varSet(c.p) {
			s.flowVarMem(Loc{Base: pl.Base, Off: pl.Off + c.off}, c.src)
		}
	case cStoreFixed:
		s.flowVarMem(c.loc, c.src)
	case cStoreRange:
		for i := 0; i < c.limit; i += c.step {
			s.flowVarMem(Loc{Base: c.base, Off: i + c.off}, c.src)
		}
	case cFieldAddr:
		dst := s.varSet(c.dst)
		for pl := range s.varSet(c.p) {
			if dst.Add(Loc{Base: pl.Base, Off: pl.Off + c.off}) {
				s.changed = true
			}
		}
	case cCallRet:
		if s.varSet(c.dst).AddAll(s.r.Returns[c.fn]) {
			s.changed = true
		}
	case cRetFlow:
		if s.r.Returns[c.fn].AddAll(s.varSet(c.src)) {
			s.changed = true
		}
	case cBlkCopy:
		s.blkCopy(c.b)
	}
}

func (s *solver) blkCopy(b *simple.Basic) {
	// Word-by-word pointer flow between the source and destination ranges.
	srcLocs := func(i int) []Loc {
		if b.P != nil {
			out := make([]Loc, 0, len(s.varSet(b.P)))
			for pl := range s.varSet(b.P) {
				out = append(out, Loc{Base: pl.Base, Off: pl.Off + b.Off + i})
			}
			return out
		}
		return []Loc{{Base: b.Local, Off: b.Off + i}}
	}
	dstLocs := func(i int) []Loc {
		if b.P2 != nil {
			out := make([]Loc, 0, len(s.varSet(b.P2)))
			for pl := range s.varSet(b.P2) {
				out = append(out, Loc{Base: pl.Base, Off: pl.Off + b.Off2 + i})
			}
			return out
		}
		return []Loc{{Base: b.Dst, Off: b.Off2 + i}}
	}
	for i := 0; i < b.Size; i++ {
		for _, src := range srcLocs(i) {
			for _, dst := range dstLocs(i) {
				s.flowMemMem(dst, src)
			}
		}
	}
}
