// Package pointsto implements a whole-program, flow-insensitive,
// field-sensitive points-to analysis over SIMPLE form. It stands in for the
// McCAT stack points-to analysis (Emami et al.) and heap connection analysis
// (Ghiya & Hendren) that the paper's placement analysis consumes.
//
// Abstract locations are (base, word offset) pairs, where a base is either a
// variable (parameter, local, or global — including struct-valued storage)
// or a heap allocation site. Field sensitivity is by word offset, which
// matches the word-granular layout used throughout this reproduction and
// lets interior pointers (&p->f) be modeled exactly.
//
// The analysis is Andersen-style (inclusion constraints) and
// context-insensitive across calls, solved to a fixpoint by iteration. The
// consumer-facing product is:
//
//   - Pts(v): the set of locations a pointer variable may target;
//   - Alias(p, q): whether two pointer variables may reference overlapping
//     storage (the anchor-handle question from connection analysis: an
//     access via q can interfere with an access via p);
//   - AddressTaken(v): whether a variable's frame slot can be reached
//     through some pointer.
package pointsto

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/simple"
)

// AllocSite names a heap allocation site (one KAlloc basic statement).
type AllocSite struct {
	Fn     *simple.Func
	B      *simple.Basic
	Struct string
	Size   int
}

func (a *AllocSite) String() string {
	return fmt.Sprintf("heap:%s@%s.S%d", a.Struct, a.Fn.Name, a.B.Label)
}

// Base is the root of an abstract location: a *simple.Var or an *AllocSite.
type Base any

// Loc is an abstract memory location: a word within a base object.
type Loc struct {
	Base Base
	Off  int
}

// String renders the location for diagnostics.
func (l Loc) String() string {
	switch b := l.Base.(type) {
	case *simple.Var:
		if l.Off == 0 {
			return b.Name
		}
		return fmt.Sprintf("%s+%d", b.Name, l.Off)
	case *AllocSite:
		return fmt.Sprintf("%s+%d", b, l.Off)
	}
	return "?loc"
}

// LocSet is a set of abstract locations.
type LocSet map[Loc]bool

// Add inserts a location, reporting whether it was new.
func (s LocSet) Add(l Loc) bool {
	if s[l] {
		return false
	}
	s[l] = true
	return true
}

// AddAll inserts all of o, reporting whether anything was new.
func (s LocSet) AddAll(o LocSet) bool {
	changed := false
	for l := range o {
		if s.Add(l) {
			changed = true
		}
	}
	return changed
}

// String renders the set sorted, for stable test output.
func (s LocSet) String() string {
	items := make([]string, 0, len(s))
	for l := range s {
		items = append(items, l.String())
	}
	sort.Strings(items)
	return "{" + strings.Join(items, ", ") + "}"
}

// Result is the solved points-to information for a program.
type Result struct {
	Prog *simple.Program

	// VarPts maps each pointer variable to the locations it may target.
	VarPts map[*simple.Var]LocSet
	// MemPts maps each abstract location (a pointer-holding word) to the
	// locations the stored pointer may target.
	MemPts map[Loc]LocSet
	// Sites lists all allocation sites.
	Sites []*AllocSite
	// addrTaken records variables whose storage can be reached via a
	// pointer.
	addrTaken map[*simple.Var]bool
	// Returns maps each function to the points-to set of its return values.
	Returns map[*simple.Func]LocSet
}

// Pts returns the points-to set of a variable (nil-safe, read-only).
func (r *Result) Pts(v *simple.Var) LocSet { return r.VarPts[v] }

// AddressTaken reports whether v's own storage may be reached via pointers.
func (r *Result) AddressTaken(v *simple.Var) bool { return r.addrTaken[v] }

// MayAlias reports whether accesses via pointers p (at offset poff) and q
// (at offset qoff) can touch the same word.
func (r *Result) MayAlias(p *simple.Var, poff int, q *simple.Var, qoff int) bool {
	ps, qs := r.VarPts[p], r.VarPts[q]
	for pl := range ps {
		target := Loc{Base: pl.Base, Off: pl.Off + poff}
		for ql := range qs {
			if ql.Base == target.Base && ql.Off+qoff == target.Off {
				return true
			}
		}
	}
	return false
}

// Targets returns the set of words reached by dereferencing p at off.
func (r *Result) Targets(p *simple.Var, off int) LocSet {
	out := make(LocSet)
	for pl := range r.VarPts[p] {
		out.Add(Loc{Base: pl.Base, Off: pl.Off + off})
	}
	return out
}

// TargetRange returns the words reached by a block access of size words
// through p starting at off.
func (r *Result) TargetRange(p *simple.Var, off, size int) LocSet {
	out := make(LocSet)
	for pl := range r.VarPts[p] {
		for i := 0; i < size; i++ {
			out.Add(Loc{Base: pl.Base, Off: pl.Off + off + i})
		}
	}
	return out
}

// Analyze runs the analysis over a SIMPLE program.
func Analyze(prog *simple.Program) *Result {
	r := &Result{
		Prog:      prog,
		VarPts:    make(map[*simple.Var]LocSet),
		MemPts:    make(map[Loc]LocSet),
		addrTaken: make(map[*simple.Var]bool),
		Returns:   make(map[*simple.Func]LocSet),
	}
	a := &analyzer{r: r, prog: prog,
		funcs: make(map[string]*simple.Func), sites: make(map[*simple.Basic]*AllocSite)}
	for _, f := range prog.Funcs {
		a.funcs[f.Name] = f
		r.Returns[f] = make(LocSet)
	}
	// Iterate to fixpoint: each pass re-walks every basic statement and
	// applies inclusion constraints.
	for pass := 0; ; pass++ {
		a.changed = false
		for _, f := range prog.Funcs {
			a.fn = f
			simple.WalkBasics(f.Body, a.basic)
		}
		if !a.changed {
			break
		}
		if pass > 200 {
			// Termination is guaranteed (finite lattice, monotone), but
			// guard against bugs.
			panic("pointsto: fixpoint did not converge")
		}
	}
	return r
}

type analyzer struct {
	r       *Result
	prog    *simple.Program
	funcs   map[string]*simple.Func
	sites   map[*simple.Basic]*AllocSite
	fn      *simple.Func
	changed bool
}

func (a *analyzer) varSet(v *simple.Var) LocSet {
	s, ok := a.r.VarPts[v]
	if !ok {
		s = make(LocSet)
		a.r.VarPts[v] = s
	}
	return s
}

func (a *analyzer) memSet(l Loc) LocSet {
	s, ok := a.r.MemPts[l]
	if !ok {
		s = make(LocSet)
		a.r.MemPts[l] = s
	}
	return s
}

func (a *analyzer) addVar(v *simple.Var, l Loc) {
	if a.varSet(v).Add(l) {
		a.changed = true
	}
}

func (a *analyzer) flowVarVar(dst, src *simple.Var) {
	if a.varSet(dst).AddAll(a.varSet(src)) {
		a.changed = true
	}
}

func (a *analyzer) flowMemVar(dst *simple.Var, src Loc) {
	if a.varSet(dst).AddAll(a.memSet(src)) {
		a.changed = true
	}
}

func (a *analyzer) flowVarMem(dst Loc, src *simple.Var) {
	if a.memSet(dst).AddAll(a.varSet(src)) {
		a.changed = true
	}
}

func (a *analyzer) flowMemMem(dst, src Loc) {
	if a.memSet(dst).AddAll(a.memSet(src)) {
		a.changed = true
	}
}

func (a *analyzer) atomFlow(dst *simple.Var, at simple.Atom) {
	if v := simple.AtomVar(at); v != nil && v.IsPtr() {
		a.flowVarVar(dst, v)
	}
}

func (a *analyzer) basic(b *simple.Basic) {
	switch b.Kind {
	case simple.KAssign:
		a.assign(b)
	case simple.KAlloc:
		site, ok := a.sites[b]
		if !ok {
			site = &AllocSite{Fn: a.fn, B: b, Struct: b.StructName, Size: b.AllocSize}
			a.sites[b] = site
			a.r.Sites = append(a.r.Sites, site)
		}
		if b.Dst != nil {
			a.addVar(b.Dst, Loc{Base: site, Off: 0})
		}
	case simple.KCall:
		callee := a.funcs[b.Fun]
		if callee == nil {
			return
		}
		for i, arg := range b.Args {
			if i >= len(callee.Params) {
				break
			}
			pv := callee.Params[i]
			if pv.IsPtr() {
				a.atomFlow(pv, arg)
			}
		}
		if b.Dst != nil && b.Dst.IsPtr() {
			if a.varSet(b.Dst).AddAll(a.r.Returns[callee]) {
				a.changed = true
			}
		}
	case simple.KBuiltin:
		// Shared-variable intrinsics can move pointers: writeto(&sp, q)
		// stores q into sp's slot, valueof(&sp) reads it back.
		if len(b.ArgVars) == 1 {
			sv := b.ArgVars[0]
			a.r.addrTaken[sv] = true
			if len(b.Args) == 1 {
				if v := simple.AtomVar(b.Args[0]); v != nil && v.IsPtr() {
					a.flowVarMem(Loc{Base: sv, Off: 0}, v)
				}
			}
			if b.Dst != nil && b.Dst.IsPtr() {
				a.flowMemVar(b.Dst, Loc{Base: sv, Off: 0})
			}
		}
	case simple.KReturn:
		if b.Val != nil {
			if v := simple.AtomVar(b.Val); v != nil && v.IsPtr() {
				if a.r.Returns[a.fn].AddAll(a.varSet(v)) {
					a.changed = true
				}
			}
		}
	case simple.KBlkCopy:
		a.blkCopy(b)
	}
}

func (a *analyzer) assign(b *simple.Basic) {
	// Destination.
	switch lhs := b.Lhs.(type) {
	case simple.VarLV:
		if !lhs.V.IsPtr() {
			return
		}
		switch rhs := b.Rhs.(type) {
		case simple.AtomRV:
			a.atomFlow(lhs.V, rhs.A)
		case simple.LoadRV:
			for pl := range a.varSet(rhs.P) {
				a.flowMemVar(lhs.V, Loc{Base: pl.Base, Off: pl.Off + rhs.Off})
			}
		case simple.LocalLoadRV:
			if rhs.Idx != nil {
				// Any element of the array could be the source.
				base := rhs.Base
				for i := 0; i < base.Size; i++ {
					a.flowMemVar(lhs.V, Loc{Base: base, Off: i})
				}
			} else {
				a.flowMemVar(lhs.V, Loc{Base: rhs.Base, Off: rhs.Off})
			}
		case simple.AddrRV:
			a.r.addrTaken[rhs.X] = true
			a.addVar(lhs.V, Loc{Base: rhs.X, Off: rhs.Off})
		case simple.FieldAddrRV:
			for pl := range a.varSet(rhs.P) {
				a.addVar(lhs.V, Loc{Base: pl.Base, Off: pl.Off + rhs.Off})
			}
		}
	case simple.StoreLV:
		// p->f = atom
		rhs, ok := b.Rhs.(simple.AtomRV)
		if !ok {
			return
		}
		v := simple.AtomVar(rhs.A)
		if v == nil || !v.IsPtr() {
			return
		}
		for pl := range a.varSet(lhs.P) {
			a.flowVarMem(Loc{Base: pl.Base, Off: pl.Off + lhs.Off}, v)
		}
	case simple.LocalStoreLV:
		rhs, ok := b.Rhs.(simple.AtomRV)
		if !ok {
			return
		}
		v := simple.AtomVar(rhs.A)
		if v == nil || !v.IsPtr() {
			return
		}
		if lhs.Idx != nil {
			// Conservatively: could be any element.
			for i := 0; i < lhs.Base.Size; i += max(1, lhs.Scale) {
				a.flowVarMem(Loc{Base: lhs.Base, Off: i + lhs.Off%max(1, lhs.Scale)}, v)
			}
		} else {
			a.flowVarMem(Loc{Base: lhs.Base, Off: lhs.Off}, v)
		}
	}
}

func (a *analyzer) blkCopy(b *simple.Basic) {
	// Word-by-word pointer flow between the source and destination ranges.
	srcLocs := func(i int) []Loc {
		if b.P != nil {
			out := make([]Loc, 0, len(a.varSet(b.P)))
			for pl := range a.varSet(b.P) {
				out = append(out, Loc{Base: pl.Base, Off: pl.Off + b.Off + i})
			}
			return out
		}
		return []Loc{{Base: b.Local, Off: b.Off + i}}
	}
	dstLocs := func(i int) []Loc {
		if b.P2 != nil {
			out := make([]Loc, 0, len(a.varSet(b.P2)))
			for pl := range a.varSet(b.P2) {
				out = append(out, Loc{Base: pl.Base, Off: pl.Off + b.Off2 + i})
			}
			return out
		}
		return []Loc{{Base: b.Dst, Off: b.Off2 + i}}
	}
	for i := 0; i < b.Size; i++ {
		for _, s := range srcLocs(i) {
			for _, d := range dstLocs(i) {
				a.flowMemMem(d, s)
			}
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
