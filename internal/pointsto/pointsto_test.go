package pointsto_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/pointsto"
	"repro/internal/simple"
)

func analyze(t *testing.T, src string) (*simple.Program, *pointsto.Result) {
	t.Helper()
	u, err := core.NewPipeline(core.Options{NoInline: true}).Compile("t.ec", src)
	if err != nil {
		t.Fatal(err)
	}
	return u.Simple, u.PointsTo
}

func v(t *testing.T, sp *simple.Program, fn, name string) *simple.Var {
	t.Helper()
	f := sp.FuncByName(fn)
	if f == nil {
		t.Fatalf("no function %s", fn)
	}
	vr := f.VarByName(name)
	if vr == nil {
		t.Fatalf("no var %s in %s", name, fn)
	}
	return vr
}

func TestAllocSiteFlow(t *testing.T) {
	sp, pt := analyze(t, `
struct P { int a; };
int main() {
	P *p;
	P *q;
	p = alloc(P);
	q = p;
	return q->a;
}
`)
	pv := v(t, sp, "main", "p")
	qv := v(t, sp, "main", "q")
	if len(pt.Pts(pv)) != 1 {
		t.Errorf("p should point to exactly one site: %s", pt.Pts(pv))
	}
	if !pt.MayAlias(pv, 0, qv, 0) {
		t.Error("p and q must alias (q = p)")
	}
}

func TestDistinctSitesDontAlias(t *testing.T) {
	sp, pt := analyze(t, `
struct P { int a; };
int main() {
	P *p;
	P *q;
	p = alloc(P);
	q = alloc(P);
	return p->a + q->a;
}
`)
	pv := v(t, sp, "main", "p")
	qv := v(t, sp, "main", "q")
	if pt.MayAlias(pv, 0, qv, 0) {
		t.Error("distinct allocation sites must not alias")
	}
}

func TestFieldSensitivity(t *testing.T) {
	sp, pt := analyze(t, `
struct N { struct N *a; struct N *b; };
int main() {
	N *n;
	N *x;
	N *y;
	N *fromA;
	n = alloc(N);
	x = alloc(N);
	y = alloc(N);
	n->a = x;
	n->b = y;
	fromA = n->a;
	return 0;
}
`)
	fromA := v(t, sp, "main", "fromA")
	xv := v(t, sp, "main", "x")
	yv := v(t, sp, "main", "y")
	if !pt.MayAlias(fromA, 0, xv, 0) {
		t.Error("fromA should alias x (loaded from n->a)")
	}
	if pt.MayAlias(fromA, 0, yv, 0) {
		t.Error("fromA must not alias y (stored in n->b, a different word)")
	}
}

func TestInterproceduralFlow(t *testing.T) {
	sp, pt := analyze(t, `
struct P { int a; };
P *id(P *x) { return x; }
int main() {
	P *p;
	P *q;
	p = alloc(P);
	q = id(p);
	return q->a;
}
`)
	pv := v(t, sp, "main", "p")
	qv := v(t, sp, "main", "q")
	if !pt.MayAlias(pv, 0, qv, 0) {
		t.Error("q = id(p) should alias p (return-value flow)")
	}
}

func TestAddressTaken(t *testing.T) {
	sp, pt := analyze(t, `
int main() {
	shared int s;
	writeto(&s, 1);
	return valueof(&s);
}
`)
	sv := v(t, sp, "main", "s")
	if !pt.AddressTaken(sv) {
		t.Error("shared variable accessed via intrinsics is address-taken")
	}
}

func TestFieldAddressInteriorPointer(t *testing.T) {
	sp, pt := analyze(t, `
struct H { int a; int b; };
struct V { int lvl; struct H hosp; };
int main() {
	V *vv;
	int *pb;
	vv = alloc(V);
	pb = &(vv->hosp.b);
	*pb = 7;
	return vv->hosp.b;
}
`)
	pb := v(t, sp, "main", "pb")
	vv := v(t, sp, "main", "vv")
	// *pb and vv->hosp.b (offset 2) must alias.
	if !pt.MayAlias(pb, 0, vv, 2) {
		t.Error("interior pointer must alias the field it addresses")
	}
	if pt.MayAlias(pb, 0, vv, 0) {
		t.Error("interior pointer must not alias a different field")
	}
}

func TestListTraversalCollapses(t *testing.T) {
	// All list nodes come from one site, so p may alias any of them —
	// including head.
	sp, pt := analyze(t, `
struct N { int v; struct N *next; };
int main() {
	N *head;
	N *p;
	int i;
	head = NULL;
	for (i = 0; i < 3; i++) {
		p = alloc(N);
		p->next = head;
		head = p;
	}
	p = head;
	while (p != NULL) p = p->next;
	return 0;
}
`)
	pv := v(t, sp, "main", "p")
	hv := v(t, sp, "main", "head")
	if !pt.MayAlias(pv, 0, hv, 0) {
		t.Error("traversal pointer must alias the head (same allocation site)")
	}
}

func TestTargetsOffsets(t *testing.T) {
	sp, pt := analyze(t, `
struct P { int a; int b; };
int main() {
	P *p;
	p = alloc(P);
	p->b = 1;
	return p->b;
}
`)
	pv := v(t, sp, "main", "p")
	t0 := pt.Targets(pv, 0)
	t1 := pt.Targets(pv, 1)
	if len(t0) != 1 || len(t1) != 1 {
		t.Fatalf("expected single targets, got %s / %s", t0, t1)
	}
	for l := range t0 {
		for m := range t1 {
			if l == m {
				t.Error("different field offsets must be different locations")
			}
		}
	}
}

func TestBlockCopyFlowsPointers(t *testing.T) {
	sp, pt := analyze(t, `
struct P { int v; struct P *link; };
int main() {
	P *a;
	P *b;
	P tmp;
	P *out;
	a = alloc(P);
	b = alloc(P);
	a->link = b;
	tmp = *a;
	out = tmp.link;
	return out->v;
}
`)
	out := v(t, sp, "main", "out")
	bv := v(t, sp, "main", "b")
	if !pt.MayAlias(out, 0, bv, 0) {
		t.Error("a struct copy must carry pointer fields (out aliases b)")
	}
}
