package rwsets_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/rwsets"
	"repro/internal/simple"
)

func analyze(t *testing.T, src string) (*simple.Program, *rwsets.Result) {
	t.Helper()
	u, err := core.NewPipeline(core.Options{NoInline: true}).Compile("t.ec", src)
	if err != nil {
		t.Fatal(err)
	}
	return u.Simple, u.RWSets
}

func findBasic(f *simple.Func, fragment string) *simple.Basic {
	var out *simple.Basic
	simple.WalkBasics(f.Body, func(b *simple.Basic) {
		if out == nil && strings.Contains(simple.BasicText(b), fragment) {
			out = b
		}
	})
	return out
}

func varOf(t *testing.T, sp *simple.Program, fn, name string) *simple.Var {
	t.Helper()
	v := sp.FuncByName(fn).VarByName(name)
	if v == nil {
		t.Fatalf("no var %s", name)
	}
	return v
}

func TestVarWrittenDirect(t *testing.T) {
	sp, rw := analyze(t, `
int main() {
	int x;
	int y;
	x = 1;
	y = 2;
	return x + y;
}
`)
	f := sp.FuncByName("main")
	x := varOf(t, sp, "main", "x")
	sx := findBasic(f, "x = 1")
	sy := findBasic(f, "y = 2")
	if !rw.VarWritten(x, sx) {
		t.Error("x = 1 writes x")
	}
	if rw.VarWritten(x, sy) {
		t.Error("y = 2 does not write x")
	}
}

func TestAccessedViaAliasDistinguishesDirect(t *testing.T) {
	sp, rw := analyze(t, `
struct P { int a; };
int g(P *p, P *q) {
	int x;
	int y;
	x = p->a;
	y = q->a;
	p->a = 3;
	return x + y;
}
int main() {
	P *s;
	s = alloc(P);
	return g(s, s);
}
`)
	f := sp.FuncByName("g")
	p := varOf(t, sp, "g", "p")
	q := varOf(t, sp, "g", "q")
	directRead := findBasic(f, "x = p->a")
	aliasRead := findBasic(f, "y = q->a")
	store := findBasic(f, "p->a = 3")

	// From p's perspective, its own read is direct, q's read is an alias.
	if rw.AccessedViaAlias(p, 0, directRead, false) {
		t.Error("p's own read is direct, not an alias")
	}
	if !rw.AccessedViaAlias(p, 0, aliasRead, false) {
		t.Error("q's read of the same word is an aliased read for p")
	}
	// The store via p is a direct write for p but an aliased write for q.
	if rw.AccessedViaAlias(p, 0, store, true) {
		t.Error("p's own store is direct")
	}
	if !rw.AccessedViaAlias(q, 0, store, true) {
		t.Error("p's store is an aliased write for q")
	}
}

func TestCallSummaryPropagates(t *testing.T) {
	sp, rw := analyze(t, `
struct P { int a; };
void poke(P *p) { p->a = 1; }
int g(P *p) {
	int x;
	poke(p);
	x = 5;
	return x;
}
int main() {
	P *s;
	s = alloc(P);
	return g(s);
}
`)
	f := sp.FuncByName("g")
	p := varOf(t, sp, "g", "p")
	call := findBasic(f, "poke(")
	// The callee writes p->a; from the caller that is an aliased write
	// (provenance does not survive the call boundary).
	if !rw.AccessedViaAlias(p, 0, call, true) {
		t.Error("callee's write must appear as an aliased write at the call")
	}
}

func TestCompoundEffectsUnionChildren(t *testing.T) {
	sp, rw := analyze(t, `
struct P { int a; };
int g(P *p, int c) {
	int x;
	x = 0;
	if (c) {
		p->a = 1;
	}
	return x;
}
int main() {
	P *s;
	s = alloc(P);
	return g(s, 1);
}
`)
	f := sp.FuncByName("g")
	q := varOf(t, sp, "g", "p")
	var ifStmt simple.Stmt
	simple.WalkStmts(f.Body, func(s simple.Stmt) {
		if _, ok := s.(*simple.If); ok {
			ifStmt = s
		}
	})
	eff := rw.Stmt[ifStmt]
	if eff == nil {
		t.Fatal("no effects recorded for the if statement")
	}
	// The if contains a direct store via p: it must not read as "aliased"
	// for p itself, but must be visible as a write at all.
	if rw.AccessedViaAlias(q, 0, ifStmt, true) {
		t.Error("direct store inside the if is not an alias for p")
	}
	wrote := false
	for range eff.Writes {
		wrote = true
	}
	if !wrote {
		t.Error("the if's effects must include the store")
	}
}

func TestSharedIntrinsicEffects(t *testing.T) {
	sp, rw := analyze(t, `
int main() {
	shared int s;
	int x;
	writeto(&s, 1);
	addto(&s, 2);
	x = valueof(&s);
	return x;
}
`)
	f := sp.FuncByName("main")
	sv := varOf(t, sp, "main", "s")
	w := findBasic(f, "writeto")
	r := findBasic(f, "valueof")
	// Shared ops are aliased ("other") accesses to the variable's slot.
	if !rw.AccessedViaAlias(svPtrProxy(sv), 0, w, true) {
		// The query interface wants a pointer; shared vars are accessed via
		// their own location, so check the raw effect sets instead.
		eff := rw.Stmt[simple.Stmt(w)]
		found := false
		for l := range eff.Writes {
			if l.Base == any(sv) {
				found = true
			}
		}
		if !found {
			t.Error("writeto must write the shared variable's location")
		}
	}
	effR := rw.Stmt[simple.Stmt(r)]
	found := false
	for l := range effR.Reads {
		if l.Base == any(sv) {
			found = true
		}
	}
	if !found {
		t.Error("valueof must read the shared variable's location")
	}
}

// svPtrProxy only exists to exercise the nil-tolerant query path.
func svPtrProxy(v *simple.Var) *simple.Var { return v }

func TestUnknownStatementIsConservative(t *testing.T) {
	sp, rw := analyze(t, `int main() { int x; x = 1; return x; }`)
	x := varOf(t, sp, "main", "x")
	ghost := &simple.Basic{Kind: simple.KAssign}
	if !rw.VarWritten(x, ghost) {
		t.Error("unknown statements must be treated conservatively")
	}
}

func TestRegisterNewBasic(t *testing.T) {
	sp, rw := analyze(t, `
struct P { int a; };
int main() {
	P *p;
	p = alloc(P);
	return p->a;
}
`)
	p := varOf(t, sp, "main", "p")
	g := sp.FuncByName("main").NewBasic(simple.KGetF)
	g.P = p
	g.Off = 0
	g.Dst = p // arbitrary
	rw.Register(g)
	// A registered get is an aliased ("other") read for p.
	if !rw.AccessedViaAlias(p, 0, g, false) {
		t.Error("registered get should read p->a as an 'other' access")
	}
}
