// Package rwsets computes per-statement read/write sets over SIMPLE form,
// for both basic and compound statements, including interprocedural
// summaries for calls. This reproduces the side-effect information the
// paper's possible-placement analysis consumes: every statement is decorated
// with the locations it reads/writes, and indirect accesses distinguish the
// access made *directly* through a given pointer from accesses made through
// aliases (the anchor-handle distinction of Ghiya & Hendren's connection
// analysis).
//
// The analysis runs in three steps: (1) per-function "own" effects — the
// body's effects with callee summaries excluded — computed once per
// function; (2) a summary fixpoint that only merges projected summaries
// along call edges (cheap, sequential); (3) a per-function populate pass
// that decorates every statement with its effects using the converged
// summaries. Steps 1 and 3 are independent per function and fan out across
// the pipeline's worker pool; their results are merged in function order,
// so the outcome is identical to a sequential run.
package rwsets

import (
	"repro/internal/par"
	"repro/internal/pointsto"
	"repro/internal/sema"
	"repro/internal/simple"
)

// Via identifies how a memory word was accessed: through which pointer
// variable and at what offset. The zero Via ("other") covers accesses whose
// provenance is not a simple pointer+field (calls, local struct storage,
// block copies through a different route).
type Via struct {
	P   *simple.Var // nil for "other"
	Off int
}

// Other is the provenance for accesses not made via a simple pointer+field.
var Other = Via{}

// viaSet is a small set of provenances; almost every location is reached
// through one or two, so a slice with linear membership beats a map.
type viaSet []Via

func (s viaSet) has(v Via) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// AccessMap records, for each abstract location, the set of provenances
// through which the statement may access it.
type AccessMap map[pointsto.Loc]viaSet

func (m AccessMap) add(l pointsto.Loc, v Via) bool {
	s := m[l]
	if s.has(v) {
		return false
	}
	m[l] = append(s, v)
	return true
}

// Effects summarizes what a statement (or function) may do to memory.
// All four maps are allocated lazily (nil means empty): most statements
// touch only one or two of them, and an Effects is built for every
// statement in the program.
type Effects struct {
	// VarReads/VarWrites are the scalar variables read/written directly by
	// name (frame slots and globals).
	VarReads  map[*simple.Var]bool
	VarWrites map[*simple.Var]bool
	// Reads/Writes are the abstract memory words possibly read/written,
	// with provenance.
	Reads  AccessMap
	Writes AccessMap
	// HasCall reports whether the statement may invoke a user function.
	HasCall bool
}

func newEffects() *Effects { return &Effects{} }

func (e *Effects) varRead(v *simple.Var) bool {
	if e.VarReads[v] {
		return false
	}
	if e.VarReads == nil {
		e.VarReads = make(map[*simple.Var]bool, 4)
	}
	e.VarReads[v] = true
	return true
}

func (e *Effects) varWrite(v *simple.Var) bool {
	if e.VarWrites[v] {
		return false
	}
	if e.VarWrites == nil {
		e.VarWrites = make(map[*simple.Var]bool, 4)
	}
	e.VarWrites[v] = true
	return true
}

func (e *Effects) addRead(l pointsto.Loc, v Via) bool {
	if e.Reads == nil {
		e.Reads = make(AccessMap, 4)
	}
	return e.Reads.add(l, v)
}

func (e *Effects) addWrite(l pointsto.Loc, v Via) bool {
	if e.Writes == nil {
		e.Writes = make(AccessMap, 4)
	}
	return e.Writes.add(l, v)
}

func (e *Effects) mergeFrom(o *Effects) bool {
	changed := false
	for v := range o.VarReads {
		if e.varRead(v) {
			changed = true
		}
	}
	for v := range o.VarWrites {
		if e.varWrite(v) {
			changed = true
		}
	}
	for l, vs := range o.Reads {
		for _, v := range vs {
			if e.addRead(l, v) {
				changed = true
			}
		}
	}
	for l, vs := range o.Writes {
		for _, v := range vs {
			if e.addWrite(l, v) {
				changed = true
			}
		}
	}
	if o.HasCall && !e.HasCall {
		e.HasCall = true
		changed = true
	}
	return changed
}

// Result holds the computed read/write sets for a program.
type Result struct {
	PT   *pointsto.Result
	prog *simple.Program
	// Stmt maps every statement (basic and compound) to its effects.
	Stmt map[simple.Stmt]*Effects
	// Summary maps each function to its transitive effects (heap and
	// global; callee-local frame effects are excluded except where
	// reachable through pointers).
	Summary map[*simple.Func]*Effects

	// funcs indexes prog.Funcs by name (FuncByName is a linear scan).
	funcs map[string]*simple.Func
	// frame holds each function's own frame variables (params + locals)
	// for O(1) summary projection.
	frame map[*simple.Func]map[*simple.Var]bool
	// overlay, when non-nil, receives Register()ed statements instead of
	// Stmt: it makes a Fork()ed view race-free under parallel per-function
	// transformation. Queries consult it before Stmt.
	overlay map[simple.Stmt]*Effects
}

// Analyze computes read/write sets given points-to results.
func Analyze(prog *simple.Program, pt *pointsto.Result) *Result {
	return AnalyzeP(prog, pt, nil)
}

// AnalyzeP is Analyze with per-function work fanned across pool (nil pool
// runs inline). The result is identical regardless of pool width.
func AnalyzeP(prog *simple.Program, pt *pointsto.Result, pool *par.Pool) *Result {
	r := &Result{
		PT:      pt,
		prog:    prog,
		Stmt:    make(map[simple.Stmt]*Effects),
		Summary: make(map[*simple.Func]*Effects),
		funcs:   make(map[string]*simple.Func, len(prog.Funcs)),
		frame:   make(map[*simple.Func]map[*simple.Var]bool, len(prog.Funcs)),
	}
	for _, f := range prog.Funcs {
		r.Summary[f] = newEffects()
		r.funcs[f.Name] = f
		fr := make(map[*simple.Var]bool, len(f.Params)+len(f.Locals))
		for _, p := range f.Params {
			fr[p] = true
		}
		for _, l := range f.Locals {
			fr[l] = true
		}
		r.frame[f] = fr
	}

	// Step 1: per-function own effects (callee summaries excluded),
	// projected to caller-visible form, plus the function's callee list.
	n := len(prog.Funcs)
	pOwn := make([]*Effects, n)
	callees := make([][]*simple.Func, n)
	pool.ForEach(n, func(i int) {
		f := prog.Funcs[i]
		own := newEffects()
		r.ownEffects(f.Body, own)
		pOwn[i] = r.project(own, f)
		callees[i] = r.calleesOf(f)
	})

	// Step 2: summary fixpoint along call edges (call graph cycles
	// converge). Purely a merge of small summary sets; sequential.
	for {
		changed := false
		for i, f := range prog.Funcs {
			s := r.Summary[f]
			if s.mergeFrom(pOwn[i]) {
				changed = true
			}
			for _, c := range callees[i] {
				if r.mergeProjected(s, r.Summary[c], f) {
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}

	// Step 3: populate r.Stmt with converged summaries, one map per
	// function, merged in function order.
	dests := make([]map[simple.Stmt]*Effects, n)
	pool.ForEach(n, func(i int) {
		dest := make(map[simple.Stmt]*Effects)
		r.computeStmtInto(prog.Funcs[i].Body, dest)
		dests[i] = dest
	})
	for _, dest := range dests {
		for s, e := range dest {
			r.Stmt[s] = e
		}
	}
	return r
}

// project builds a function's caller-visible summary from its body effects:
// frame variables of the callee are dropped (their lifetimes end), but heap
// locations, globals, and any variable whose address escapes are kept.
// Provenance does not survive the call boundary: the caller sees each
// access as "via other" (an alias it cannot name).
func (r *Result) project(eff *Effects, f *simple.Func) *Effects {
	out := newEffects()
	out.HasCall = true
	fr := r.frame[f]
	for v := range eff.VarReads {
		if v.Kind == simple.VarGlobal {
			out.varRead(v)
		}
	}
	for v := range eff.VarWrites {
		if v.Kind == simple.VarGlobal {
			out.varWrite(v)
		}
	}
	for l := range eff.Reads {
		if v, ok := l.Base.(*simple.Var); ok && fr[v] {
			continue
		}
		out.addRead(l, Other)
	}
	for l := range eff.Writes {
		if v, ok := l.Base.(*simple.Var); ok && fr[v] {
			continue
		}
		out.addWrite(l, Other)
	}
	return out
}

// mergeProjected merges callee summary src into dst, dropping locations in
// f's own frame (a callee summary can mention them when f passed &local
// down the call chain — those accesses die with f's frame as far as f's
// own callers are concerned). Reports whether dst changed.
func (r *Result) mergeProjected(dst, src *Effects, f *simple.Func) bool {
	changed := false
	for v := range src.VarReads {
		if v.Kind == simple.VarGlobal && dst.varRead(v) {
			changed = true
		}
	}
	for v := range src.VarWrites {
		if v.Kind == simple.VarGlobal && dst.varWrite(v) {
			changed = true
		}
	}
	fr := r.frame[f]
	for l := range src.Reads {
		if v, ok := l.Base.(*simple.Var); ok && fr[v] {
			continue
		}
		if dst.addRead(l, Other) {
			changed = true
		}
	}
	for l := range src.Writes {
		if v, ok := l.Base.(*simple.Var); ok && fr[v] {
			continue
		}
		if dst.addWrite(l, Other) {
			changed = true
		}
	}
	if src.HasCall && !dst.HasCall {
		dst.HasCall = true
		changed = true
	}
	return changed
}

// ownEffects accumulates the effects of s and everything under it into eff,
// excluding callee summaries (the summary fixpoint adds those along call
// edges instead). No per-statement records are made.
func (r *Result) ownEffects(s simple.Stmt, eff *Effects) {
	switch st := s.(type) {
	case *simple.Basic:
		r.basic(eff, st, false)
	default:
		for _, seq := range simple.Subseqs(st) {
			for _, c := range seq.Stmts {
				r.ownEffects(c, eff)
			}
		}
		r.compoundReads(eff, s)
	}
}

// computeStmtInto computes effects for s (with converged callee summaries)
// and records them for s and every statement beneath it in dest.
func (r *Result) computeStmtInto(s simple.Stmt, dest map[simple.Stmt]*Effects) *Effects {
	eff := newEffects()
	switch st := s.(type) {
	case *simple.Basic:
		r.basic(eff, st, true)
	default:
		for _, seq := range simple.Subseqs(st) {
			// Record effects for the subsequence itself too: parallel-arm
			// interference checks query sibling sequences directly.
			seqEff := newEffects()
			for _, c := range seq.Stmts {
				seqEff.mergeFrom(r.computeStmtInto(c, dest))
			}
			dest[seq] = seqEff
			eff.mergeFrom(seqEff)
		}
		r.compoundReads(eff, s)
	}
	dest[s] = eff
	return eff
}

// compoundReads adds the atom reads a compound statement's condition (or
// switch tag) performs.
func (r *Result) compoundReads(eff *Effects, s simple.Stmt) {
	switch st := s.(type) {
	case *simple.If:
		r.condReads(eff, st.Cond)
	case *simple.While:
		r.condReads(eff, st.Cond)
	case *simple.Do:
		r.condReads(eff, st.Cond)
	case *simple.Forall:
		r.condReads(eff, st.Cond)
	case *simple.Switch:
		r.atomRead(eff, st.Tag)
	}
}

func (r *Result) condReads(eff *Effects, c simple.Cond) {
	for _, a := range c.Atoms() {
		r.atomRead(eff, a)
	}
}

func (r *Result) atomRead(eff *Effects, a simple.Atom) {
	if v := simple.AtomVar(a); v != nil {
		eff.varRead(v)
	}
}

func (r *Result) basic(eff *Effects, b *simple.Basic, withSummaries bool) {
	switch b.Kind {
	case simple.KAssign:
		r.rvalue(eff, b.Rhs)
		r.lvalue(eff, b.Lhs)
	case simple.KCall:
		for _, a := range b.Args {
			r.atomRead(eff, a)
		}
		if b.Place != nil && b.Place.Arg != nil {
			r.atomRead(eff, b.Place.Arg)
		}
		if b.Dst != nil {
			eff.varWrite(b.Dst)
		}
		eff.HasCall = true
		if withSummaries {
			if callee := r.funcs[b.Fun]; callee != nil {
				eff.mergeFrom(r.Summary[callee])
			}
		}
	case simple.KBuiltin:
		for _, a := range b.Args {
			r.atomRead(eff, a)
		}
		if b.Dst != nil {
			eff.varWrite(b.Dst)
		}
		for _, sv := range b.ArgVars {
			switch sema.Builtin(b.BFun) {
			case sema.BWriteTo, sema.BAddTo:
				eff.addWrite(pointsto.Loc{Base: sv, Off: 0}, Other)
				if sema.Builtin(b.BFun) == sema.BAddTo {
					eff.addRead(pointsto.Loc{Base: sv, Off: 0}, Other)
				}
			case sema.BValueOf:
				eff.addRead(pointsto.Loc{Base: sv, Off: 0}, Other)
			}
		}
	case simple.KAlloc:
		if b.Node != nil {
			r.atomRead(eff, b.Node)
		}
		if b.Dst != nil {
			eff.varWrite(b.Dst)
		}
	case simple.KReturn:
		if b.Val != nil {
			r.atomRead(eff, b.Val)
		}
	case simple.KBlkCopy:
		// Source range.
		if b.P != nil {
			eff.varRead(b.P)
			// Block copies are never redirected to a shadow copy by the
			// selection phase, so their accesses count as aliased ("other")
			// accesses: tuples must not float across an overlapping one.
			for i := 0; i < b.Size; i++ {
				for pl := range r.PT.Pts(b.P) {
					eff.addRead(pointsto.Loc{Base: pl.Base, Off: pl.Off + b.Off + i}, Other)
				}
			}
		} else if b.Local != nil {
			for i := 0; i < b.Size; i++ {
				eff.addRead(pointsto.Loc{Base: b.Local, Off: b.Off + i}, Other)
			}
		}
		// Destination range.
		if b.P2 != nil {
			eff.varRead(b.P2)
			for i := 0; i < b.Size; i++ {
				for pl := range r.PT.Pts(b.P2) {
					eff.addWrite(pointsto.Loc{Base: pl.Base, Off: pl.Off + b.Off2 + i}, Other)
				}
			}
		} else if b.Dst != nil {
			for i := 0; i < b.Size; i++ {
				eff.addWrite(pointsto.Loc{Base: b.Dst, Off: b.Off2 + i}, Other)
			}
		}
	case simple.KGetF:
		// Post-selection split-phase and block operations count as aliased
		// accesses: later analyses must not float tuples across them.
		eff.varRead(b.P)
		if b.Dst != nil {
			eff.varWrite(b.Dst)
		}
		for pl := range r.PT.Pts(b.P) {
			eff.addRead(pointsto.Loc{Base: pl.Base, Off: pl.Off + b.Off}, Other)
		}
	case simple.KPutF:
		eff.varRead(b.P)
		if b.Val != nil {
			r.atomRead(eff, b.Val)
		}
		if b.Local != nil {
			eff.addRead(pointsto.Loc{Base: b.Local, Off: b.Off2}, Other)
		}
		for pl := range r.PT.Pts(b.P) {
			eff.addWrite(pointsto.Loc{Base: pl.Base, Off: pl.Off + b.Off}, Other)
		}
	case simple.KBlkRead:
		eff.varRead(b.P)
		for i := 0; i < b.Size; i++ {
			for pl := range r.PT.Pts(b.P) {
				eff.addRead(pointsto.Loc{Base: pl.Base, Off: pl.Off + b.Off + i}, Other)
			}
			eff.addWrite(pointsto.Loc{Base: b.Local, Off: i}, Other)
		}
	case simple.KBlkWrite:
		eff.varRead(b.P)
		for i := 0; i < b.Size; i++ {
			for pl := range r.PT.Pts(b.P) {
				eff.addWrite(pointsto.Loc{Base: pl.Base, Off: pl.Off + b.Off + i}, Other)
			}
			eff.addRead(pointsto.Loc{Base: b.Local, Off: i}, Other)
		}
	}
}

func (r *Result) rvalue(eff *Effects, rv simple.Rvalue) {
	switch x := rv.(type) {
	case simple.AtomRV:
		r.atomRead(eff, x.A)
	case simple.UnaryRV:
		r.atomRead(eff, x.X)
	case simple.BinaryRV:
		r.atomRead(eff, x.X)
		r.atomRead(eff, x.Y)
	case simple.LoadRV:
		eff.varRead(x.P)
		for pl := range r.PT.Pts(x.P) {
			eff.addRead(pointsto.Loc{Base: pl.Base, Off: pl.Off + x.Off}, Via{P: x.P, Off: x.Off})
		}
	case simple.LocalLoadRV:
		if x.Idx != nil {
			r.atomRead(eff, x.Idx)
			for i := 0; i < x.Base.Size; i++ {
				eff.addRead(pointsto.Loc{Base: x.Base, Off: i}, Other)
			}
		} else {
			eff.addRead(pointsto.Loc{Base: x.Base, Off: x.Off}, Other)
		}
	case simple.AddrRV:
		// No memory access; the variable's address is computed.
	case simple.FieldAddrRV:
		eff.varRead(x.P)
	}
}

func (r *Result) lvalue(eff *Effects, lv simple.Lvalue) {
	switch x := lv.(type) {
	case simple.VarLV:
		eff.varWrite(x.V)
	case simple.StoreLV:
		eff.varRead(x.P)
		for pl := range r.PT.Pts(x.P) {
			eff.addWrite(pointsto.Loc{Base: pl.Base, Off: pl.Off + x.Off}, Via{P: x.P, Off: x.Off})
		}
	case simple.LocalStoreLV:
		if x.Idx != nil {
			r.atomRead(eff, x.Idx)
			for i := 0; i < x.Base.Size; i++ {
				eff.addWrite(pointsto.Loc{Base: x.Base, Off: i}, Other)
			}
		} else {
			eff.addWrite(pointsto.Loc{Base: x.Base, Off: x.Off}, Other)
		}
	}
}

func (r *Result) calleesOf(f *simple.Func) []*simple.Func {
	var out []*simple.Func
	var seen map[*simple.Func]bool
	simple.WalkBasics(f.Body, func(b *simple.Basic) {
		if b.Kind != simple.KCall {
			return
		}
		c := r.funcs[b.Fun]
		if c == nil || seen[c] {
			return
		}
		if seen == nil {
			seen = make(map[*simple.Func]bool)
		}
		seen[c] = true
		out = append(out, c)
	})
	return out
}

// --------------------------------------------------------------- queries ---

// effectsOf looks a statement up in the fork overlay (if any), then the
// shared Stmt map.
func (r *Result) effectsOf(s simple.Stmt) *Effects {
	if r.overlay != nil {
		if e, ok := r.overlay[s]; ok {
			return e
		}
	}
	return r.Stmt[s]
}

// VarWritten reports whether statement s may modify the value of variable p
// itself: a direct assignment, or — when p's address has been taken — an
// indirect write reaching p's slot, or a call that may do the same.
func (r *Result) VarWritten(p *simple.Var, s simple.Stmt) bool {
	eff := r.effectsOf(s)
	if eff == nil {
		return true // unknown statement: be conservative
	}
	if eff.VarWrites[p] {
		return true
	}
	if r.PT.AddressTaken(p) {
		for i := 0; i < max(1, p.Size); i++ {
			if _, hit := eff.Writes[pointsto.Loc{Base: p, Off: i}]; hit {
				return true
			}
		}
	}
	return false
}

// AccessedViaAlias reports whether statement s may read (write=false) or
// write (write=true) the word p->off through something other than the
// direct pointer p itself. Direct accesses via (p, off) are excluded: the
// paper's rules keep tuples alive across direct accesses because the
// transformation redirects all of them to the same local copy.
func (r *Result) AccessedViaAlias(p *simple.Var, off int, s simple.Stmt, write bool) bool {
	eff := r.effectsOf(s)
	if eff == nil {
		return true
	}
	m := eff.Reads
	if write {
		m = eff.Writes
	}
	self := Via{P: p, Off: off}
	for pl := range r.PT.Pts(p) {
		target := pointsto.Loc{Base: pl.Base, Off: pl.Off + off}
		vias, hit := m[target]
		if !hit {
			continue
		}
		for _, v := range vias {
			if v != self {
				return true
			}
		}
	}
	return false
}

// Register computes and records the effects of a newly created basic
// statement. The selection phase calls this for every communication
// statement it inserts, so later queries (dereference safety, write floats)
// see sound effects instead of falling back to "unknown". On a Fork()ed
// view the record goes to the fork's private overlay.
func (r *Result) Register(b *simple.Basic) {
	eff := newEffects()
	r.basic(eff, b, true)
	if r.overlay != nil {
		r.overlay[b] = eff
	} else {
		r.Stmt[b] = eff
	}
}

// Fork returns a view of r that records Register()ed statements in a
// private overlay instead of the shared Stmt map, so several forks can be
// used from different goroutines concurrently (the shared maps are only
// read). Merge folds a fork's overlay back into r.
func (r *Result) Fork() *Result {
	nr := *r
	nr.overlay = make(map[simple.Stmt]*Effects)
	return &nr
}

// Merge folds the Register()ed statements of a Fork()ed view back into r's
// shared Stmt map.
func (r *Result) Merge(fork *Result) {
	for s, e := range fork.overlay {
		r.Stmt[s] = e
	}
}
