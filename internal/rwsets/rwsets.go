// Package rwsets computes per-statement read/write sets over SIMPLE form,
// for both basic and compound statements, including interprocedural
// summaries for calls. This reproduces the side-effect information the
// paper's possible-placement analysis consumes: every statement is decorated
// with the locations it reads/writes, and indirect accesses distinguish the
// access made *directly* through a given pointer from accesses made through
// aliases (the anchor-handle distinction of Ghiya & Hendren's connection
// analysis).
package rwsets

import (
	"repro/internal/pointsto"
	"repro/internal/sema"
	"repro/internal/simple"
)

// Via identifies how a memory word was accessed: through which pointer
// variable and at what offset. The zero Via ("other") covers accesses whose
// provenance is not a simple pointer+field (calls, local struct storage,
// block copies through a different route).
type Via struct {
	P   *simple.Var // nil for "other"
	Off int
}

// Other is the provenance for accesses not made via a simple pointer+field.
var Other = Via{}

// AccessMap records, for each abstract location, the set of provenances
// through which the statement may access it.
type AccessMap map[pointsto.Loc]map[Via]bool

func (m AccessMap) add(l pointsto.Loc, v Via) bool {
	s, ok := m[l]
	if !ok {
		s = make(map[Via]bool)
		m[l] = s
	}
	if s[v] {
		return false
	}
	s[v] = true
	return true
}

func (m AccessMap) addAll(o AccessMap) bool {
	changed := false
	for l, vs := range o {
		for v := range vs {
			if m.add(l, v) {
				changed = true
			}
		}
	}
	return changed
}

// Effects summarizes what a statement (or function) may do to memory.
type Effects struct {
	// VarReads/VarWrites are the scalar variables read/written directly by
	// name (frame slots and globals).
	VarReads  map[*simple.Var]bool
	VarWrites map[*simple.Var]bool
	// Reads/Writes are the abstract memory words possibly read/written,
	// with provenance.
	Reads  AccessMap
	Writes AccessMap
	// HasCall reports whether the statement may invoke a user function.
	HasCall bool
}

func newEffects() *Effects {
	return &Effects{
		VarReads:  make(map[*simple.Var]bool),
		VarWrites: make(map[*simple.Var]bool),
		Reads:     make(AccessMap),
		Writes:    make(AccessMap),
	}
}

func (e *Effects) mergeFrom(o *Effects) bool {
	changed := false
	for v := range o.VarReads {
		if !e.VarReads[v] {
			e.VarReads[v] = true
			changed = true
		}
	}
	for v := range o.VarWrites {
		if !e.VarWrites[v] {
			e.VarWrites[v] = true
			changed = true
		}
	}
	if e.Reads.addAll(o.Reads) {
		changed = true
	}
	if e.Writes.addAll(o.Writes) {
		changed = true
	}
	if o.HasCall && !e.HasCall {
		e.HasCall = true
		changed = true
	}
	return changed
}

// Result holds the computed read/write sets for a program.
type Result struct {
	PT   *pointsto.Result
	prog *simple.Program
	// Stmt maps every statement (basic and compound) to its effects.
	Stmt map[simple.Stmt]*Effects
	// Summary maps each function to its transitive effects (heap and
	// global; callee-local frame effects are excluded except where
	// reachable through pointers).
	Summary map[*simple.Func]*Effects
}

// Analyze computes read/write sets given points-to results.
func Analyze(prog *simple.Program, pt *pointsto.Result) *Result {
	r := &Result{
		PT:      pt,
		prog:    prog,
		Stmt:    make(map[simple.Stmt]*Effects),
		Summary: make(map[*simple.Func]*Effects),
	}
	for _, f := range prog.Funcs {
		r.Summary[f] = newEffects()
	}
	// Fixpoint over function summaries (call graph cycles converge).
	for {
		changed := false
		for _, f := range prog.Funcs {
			eff := r.computeStmt(f.Body, f, true)
			summ := summarize(eff, f)
			if r.Summary[f].mergeFrom(summ) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	// Final pass to populate r.Stmt with converged summaries.
	for _, f := range prog.Funcs {
		r.computeStmt(f.Body, f, false)
	}
	return r
}

// summarize projects a function body's effects into a caller-visible
// summary: frame variables of the callee are dropped (their lifetimes end),
// but heap locations, globals, and any variable whose address escapes are
// kept.
func summarize(eff *Effects, f *simple.Func) *Effects {
	out := newEffects()
	out.HasCall = true
	isOwnFrame := func(b pointsto.Base) bool {
		v, ok := b.(*simple.Var)
		if !ok {
			return false
		}
		if v.Kind == simple.VarGlobal {
			return false
		}
		// A frame variable of f itself: accesses die with the frame.
		// (A caller variable reached through a pointer parameter has a
		// different *Var and is kept.)
		for _, p := range f.Params {
			if p == v {
				return true
			}
		}
		for _, l := range f.Locals {
			if l == v {
				return true
			}
		}
		return false
	}
	for v := range eff.VarReads {
		if v.Kind == simple.VarGlobal {
			out.VarReads[v] = true
		}
	}
	for v := range eff.VarWrites {
		if v.Kind == simple.VarGlobal {
			out.VarWrites[v] = true
		}
	}
	for l, vs := range eff.Reads {
		if isOwnFrame(l.Base) {
			continue
		}
		_ = vs
		// Provenance does not survive the call boundary: the caller sees
		// the access as "via other" (an alias it cannot name).
		out.Reads.add(l, Other)
	}
	for l := range eff.Writes {
		if isOwnFrame(l.Base) {
			continue
		}
		out.Writes.add(l, Other)
	}
	return out
}

// computeStmt computes (and records, when record is false... always records)
// effects for s. When summariesOnly is true it is being used inside the
// fixpoint; the returned value matters but intermediate Stmt entries are
// still updated (cheap and idempotent).
func (r *Result) computeStmt(s simple.Stmt, f *simple.Func, summariesOnly bool) *Effects {
	eff := newEffects()
	switch st := s.(type) {
	case *simple.Basic:
		r.basic(eff, st, f)
	default:
		for _, seq := range simple.Subseqs(st) {
			// Record effects for the subsequence itself too: parallel-arm
			// interference checks query sibling sequences directly.
			seqEff := newEffects()
			for _, c := range seq.Stmts {
				seqEff.mergeFrom(r.computeStmt(c, f, summariesOnly))
			}
			r.Stmt[seq] = seqEff
			eff.mergeFrom(seqEff)
		}
		// Loop/forall conditions read their atoms.
		switch st := s.(type) {
		case *simple.If:
			r.condReads(eff, st.Cond)
		case *simple.While:
			r.condReads(eff, st.Cond)
		case *simple.Do:
			r.condReads(eff, st.Cond)
		case *simple.Forall:
			r.condReads(eff, st.Cond)
		case *simple.Switch:
			r.atomRead(eff, st.Tag)
		}
	}
	r.Stmt[s] = eff
	return eff
}

func (r *Result) condReads(eff *Effects, c simple.Cond) {
	for _, a := range c.Atoms() {
		r.atomRead(eff, a)
	}
}

func (r *Result) atomRead(eff *Effects, a simple.Atom) {
	if v := simple.AtomVar(a); v != nil {
		eff.VarReads[v] = true
	}
}

func (r *Result) basic(eff *Effects, b *simple.Basic, f *simple.Func) {
	switch b.Kind {
	case simple.KAssign:
		r.rvalue(eff, b.Rhs)
		r.lvalue(eff, b.Lhs)
	case simple.KCall:
		for _, a := range b.Args {
			r.atomRead(eff, a)
		}
		if b.Place != nil && b.Place.Arg != nil {
			r.atomRead(eff, b.Place.Arg)
		}
		if b.Dst != nil {
			eff.VarWrites[b.Dst] = true
		}
		eff.HasCall = true
		if callee := r.prog.FuncByName(b.Fun); callee != nil {
			eff.mergeFrom(r.Summary[callee])
		}
	case simple.KBuiltin:
		for _, a := range b.Args {
			r.atomRead(eff, a)
		}
		if b.Dst != nil {
			eff.VarWrites[b.Dst] = true
		}
		for _, sv := range b.ArgVars {
			switch sema.Builtin(b.BFun) {
			case sema.BWriteTo, sema.BAddTo:
				eff.Writes.add(pointsto.Loc{Base: sv, Off: 0}, Other)
				if sema.Builtin(b.BFun) == sema.BAddTo {
					eff.Reads.add(pointsto.Loc{Base: sv, Off: 0}, Other)
				}
			case sema.BValueOf:
				eff.Reads.add(pointsto.Loc{Base: sv, Off: 0}, Other)
			}
		}
	case simple.KAlloc:
		if b.Node != nil {
			r.atomRead(eff, b.Node)
		}
		if b.Dst != nil {
			eff.VarWrites[b.Dst] = true
		}
	case simple.KReturn:
		if b.Val != nil {
			r.atomRead(eff, b.Val)
		}
	case simple.KBlkCopy:
		// Source range.
		if b.P != nil {
			eff.VarReads[b.P] = true
			// Block copies are never redirected to a shadow copy by the
			// selection phase, so their accesses count as aliased ("other")
			// accesses: tuples must not float across an overlapping one.
			for i := 0; i < b.Size; i++ {
				for pl := range r.PT.Pts(b.P) {
					eff.Reads.add(pointsto.Loc{Base: pl.Base, Off: pl.Off + b.Off + i}, Other)
				}
			}
		} else if b.Local != nil {
			for i := 0; i < b.Size; i++ {
				eff.Reads.add(pointsto.Loc{Base: b.Local, Off: b.Off + i}, Other)
			}
		}
		// Destination range.
		if b.P2 != nil {
			eff.VarReads[b.P2] = true
			for i := 0; i < b.Size; i++ {
				for pl := range r.PT.Pts(b.P2) {
					eff.Writes.add(pointsto.Loc{Base: pl.Base, Off: pl.Off + b.Off2 + i}, Other)
				}
			}
		} else if b.Dst != nil {
			for i := 0; i < b.Size; i++ {
				eff.Writes.add(pointsto.Loc{Base: b.Dst, Off: b.Off2 + i}, Other)
			}
		}
	case simple.KGetF:
		// Post-selection split-phase and block operations count as aliased
		// accesses: later analyses must not float tuples across them.
		eff.VarReads[b.P] = true
		if b.Dst != nil {
			eff.VarWrites[b.Dst] = true
		}
		for pl := range r.PT.Pts(b.P) {
			eff.Reads.add(pointsto.Loc{Base: pl.Base, Off: pl.Off + b.Off}, Other)
		}
	case simple.KPutF:
		eff.VarReads[b.P] = true
		if b.Val != nil {
			r.atomRead(eff, b.Val)
		}
		if b.Local != nil {
			eff.Reads.add(pointsto.Loc{Base: b.Local, Off: b.Off2}, Other)
		}
		for pl := range r.PT.Pts(b.P) {
			eff.Writes.add(pointsto.Loc{Base: pl.Base, Off: pl.Off + b.Off}, Other)
		}
	case simple.KBlkRead:
		eff.VarReads[b.P] = true
		for i := 0; i < b.Size; i++ {
			for pl := range r.PT.Pts(b.P) {
				eff.Reads.add(pointsto.Loc{Base: pl.Base, Off: pl.Off + b.Off + i}, Other)
			}
			eff.Writes.add(pointsto.Loc{Base: b.Local, Off: i}, Other)
		}
	case simple.KBlkWrite:
		eff.VarReads[b.P] = true
		for i := 0; i < b.Size; i++ {
			for pl := range r.PT.Pts(b.P) {
				eff.Writes.add(pointsto.Loc{Base: pl.Base, Off: pl.Off + b.Off + i}, Other)
			}
			eff.Reads.add(pointsto.Loc{Base: b.Local, Off: i}, Other)
		}
	}
}

func (r *Result) rvalue(eff *Effects, rv simple.Rvalue) {
	switch x := rv.(type) {
	case simple.AtomRV:
		r.atomRead(eff, x.A)
	case simple.UnaryRV:
		r.atomRead(eff, x.X)
	case simple.BinaryRV:
		r.atomRead(eff, x.X)
		r.atomRead(eff, x.Y)
	case simple.LoadRV:
		eff.VarReads[x.P] = true
		for pl := range r.PT.Pts(x.P) {
			eff.Reads.add(pointsto.Loc{Base: pl.Base, Off: pl.Off + x.Off}, Via{P: x.P, Off: x.Off})
		}
	case simple.LocalLoadRV:
		if x.Idx != nil {
			r.atomRead(eff, x.Idx)
			for i := 0; i < x.Base.Size; i++ {
				eff.Reads.add(pointsto.Loc{Base: x.Base, Off: i}, Other)
			}
		} else {
			eff.Reads.add(pointsto.Loc{Base: x.Base, Off: x.Off}, Other)
		}
	case simple.AddrRV:
		// No memory access; the variable's address is computed.
	case simple.FieldAddrRV:
		eff.VarReads[x.P] = true
	}
}

func (r *Result) lvalue(eff *Effects, lv simple.Lvalue) {
	switch x := lv.(type) {
	case simple.VarLV:
		eff.VarWrites[x.V] = true
	case simple.StoreLV:
		eff.VarReads[x.P] = true
		for pl := range r.PT.Pts(x.P) {
			eff.Writes.add(pointsto.Loc{Base: pl.Base, Off: pl.Off + x.Off}, Via{P: x.P, Off: x.Off})
		}
	case simple.LocalStoreLV:
		if x.Idx != nil {
			r.atomRead(eff, x.Idx)
			for i := 0; i < x.Base.Size; i++ {
				eff.Writes.add(pointsto.Loc{Base: x.Base, Off: i}, Other)
			}
		} else {
			eff.Writes.add(pointsto.Loc{Base: x.Base, Off: x.Off}, Other)
		}
	}
}

// --------------------------------------------------------------- queries ---

// VarWritten reports whether statement s may modify the value of variable p
// itself: a direct assignment, or — when p's address has been taken — an
// indirect write reaching p's slot, or a call that may do the same.
func (r *Result) VarWritten(p *simple.Var, s simple.Stmt) bool {
	eff := r.Stmt[s]
	if eff == nil {
		return true // unknown statement: be conservative
	}
	if eff.VarWrites[p] {
		return true
	}
	if r.PT.AddressTaken(p) {
		for i := 0; i < max(1, p.Size); i++ {
			if _, hit := eff.Writes[pointsto.Loc{Base: p, Off: i}]; hit {
				return true
			}
		}
	}
	return false
}

// AccessedViaAlias reports whether statement s may read (write=false) or
// write (write=true) the word p->off through something other than the
// direct pointer p itself. Direct accesses via (p, off) are excluded: the
// paper's rules keep tuples alive across direct accesses because the
// transformation redirects all of them to the same local copy.
func (r *Result) AccessedViaAlias(p *simple.Var, off int, s simple.Stmt, write bool) bool {
	eff := r.Stmt[s]
	if eff == nil {
		return true
	}
	m := eff.Reads
	if write {
		m = eff.Writes
	}
	self := Via{P: p, Off: off}
	for pl := range r.PT.Pts(p) {
		target := pointsto.Loc{Base: pl.Base, Off: pl.Off + off}
		vias, hit := m[target]
		if !hit {
			continue
		}
		for v := range vias {
			if v != self {
				return true
			}
		}
	}
	return false
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Register computes and records the effects of a newly created basic
// statement. The selection phase calls this for every communication
// statement it inserts, so later queries (dereference safety, write floats)
// see sound effects instead of falling back to "unknown".
func (r *Result) Register(b *simple.Basic) {
	eff := newEffects()
	r.basic(eff, b, nil)
	r.Stmt[b] = eff
}
