// Per-function keys and analysis-facts digests for the incremental layer.
//
// A function's compiled (transformed) body is a deterministic function of
// two inputs:
//
//   - its own pristine SIMPLE body plus the signatures of the functions it
//     calls (FuncHash) under a fixed environment of struct layouts and
//     globals (EnvHash), and
//   - the whole-program analysis facts the placement analysis and
//     communication selection consult about it: locality verdicts and
//     points-to sets of the variables it can name, whether their storage
//     is reachable through pointers, and the transitive effect summaries
//     of its direct callees (FactsDigest).
//
// The analyses themselves are always re-run from scratch on the pristine
// program — they are whole-program fixpoints, and transformed bodies must
// never feed them (split-phase opcodes generate no points-to constraints,
// and blocked transfers inflate effect summaries). What the digest buys is
// skipping the *transformation* (placement + selection), which dominates
// optimized compile time, for every function whose facts are unchanged —
// MARS-style usage-based invalidation: an edit invalidates exactly the
// edited functions plus the functions whose consulted facts it altered.
//
// All renderings qualify variable names by owning function ("fn:v", or
// "g:v" for globals) so identically-named locals in different functions can
// never collide, and the rendering of a points-to set is injective within
// one compile.
package cache

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/contenthash"
	"repro/internal/locality"
	"repro/internal/placement"
	"repro/internal/pointsto"
	"repro/internal/rwsets"
	"repro/internal/simple"

	"repro/internal/commsel"
)

// FuncRecord is one function's cached compile artifacts, valid while both
// Hash and Digest match a fresh compile's values.
type FuncRecord struct {
	// Hash keys the function's pristine content: its canonical SIMPLE body,
	// its variable table, and the signatures of every function it calls.
	Hash string
	// Digest keys the analysis facts consumed by placement + selection
	// (see FactsDigest).
	Digest string
	// Fn is the transformed SIMPLE function from the compile that created
	// the record; it is spliced verbatim into the next program whose Hash
	// and Digest match.
	Fn *simple.Func
	// Reads / Writes / EntryReads / ExitWrites are the function's slice of
	// the placement result (keyed by its own statements).
	Reads      map[simple.Stmt]*placement.Set
	Writes     map[simple.Stmt]*placement.Set
	EntryReads *placement.Set
	ExitWrites *placement.Set
	// Report is the function's communication-selection report.
	Report *commsel.FuncReport
	// Verdicts lists the function's variables that locality analysis proved
	// local in the compile that created the record; splicing installs them
	// onto the reused Var objects (locality.Result.Set).
	Verdicts []*simple.Var
}

// ProgramState is the incremental state of one (fingerprint, unit name)
// pair: everything the next compile needs to reuse per-function work.
type ProgramState struct {
	// EnvHash keys the shared environment (struct layouts + globals); a
	// mismatch invalidates every record.
	EnvHash string
	// Globals are the global Var objects of the compile that created the
	// state. Re-lowering injects them by name (lower.ProgramInto) so spliced
	// bodies and freshly-compiled bodies reference identical objects.
	Globals []*simple.Var
	// Funcs maps function name to its record.
	Funcs map[string]*FuncRecord
}

// GlobalsByName returns the injection map for lower.ProgramInto.
func (st *ProgramState) GlobalsByName() map[string]*simple.Var {
	m := make(map[string]*simple.Var, len(st.Globals))
	for _, g := range st.Globals {
		m[g.Name] = g
	}
	return m
}

// StateKey derives the key incremental state is stored under.
func StateKey(fingerprint, unitName string) string {
	return contenthash.Parts("state", fingerprint, unitName)
}

// UnitKey derives the unit-LRU key from the options fingerprint and the
// canonical source hash.
func UnitKey(fingerprint, sourceHash string) string {
	return contenthash.Parts("unit", fingerprint, sourceHash)
}

// Qualify builds the program-wide qualified-name table used by every
// digest rendering: "g:name" for globals, "fn:name" for a function's
// params and locals.
func Qualify(prog *simple.Program) map[*simple.Var]string {
	qual := make(map[*simple.Var]string)
	for _, g := range prog.Globals {
		qual[g] = "g:" + g.Name
	}
	for _, f := range prog.Funcs {
		for _, v := range f.Params {
			qual[v] = f.Name + ":" + v.Name
		}
		for _, v := range f.Locals {
			qual[v] = f.Name + ":" + v.Name
		}
	}
	return qual
}

// varLine renders one variable's identity-relevant attributes.
func varLine(v *simple.Var) string {
	return fmt.Sprintf("%s kind=%d type=%s shared=%t size=%d",
		v.Name, v.Kind, v.Type, v.Shared, v.Size)
}

// sigOf renders a function's signature: everything a caller's compiled
// form can depend on without depending on the body.
func sigOf(f *simple.Func) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s(", f.Ret, f.Name)
	for i, p := range f.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(varLine(p))
	}
	b.WriteString(")")
	return b.String()
}

// calleeNames returns the sorted, deduplicated names of the user functions
// f calls (inlining already ran, so these are the calls that survive to
// code generation).
func calleeNames(f *simple.Func) []string {
	seen := make(map[string]bool)
	simple.WalkBasics(f.Body, func(b *simple.Basic) {
		if b.Kind == simple.KCall && b.Fun != "" {
			seen[b.Fun] = true
		}
	})
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// FuncHash is the content hash of a function's pristine form: its variable
// table (types matter to code generation even when the printed body is
// unchanged), its canonical labeled SIMPLE body, and the signatures of
// everything it calls.
func FuncHash(f *simple.Func, prog *simple.Program) string {
	var vars strings.Builder
	for _, v := range f.Params {
		vars.WriteString("p " + varLine(v) + "\n")
	}
	for _, v := range f.Locals {
		vars.WriteString("l " + varLine(v) + "\n")
	}
	parts := []string{
		vars.String(),
		simple.FuncString(f, simple.PrintOptions{Labels: true}),
	}
	for _, name := range calleeNames(f) {
		if g := prog.FuncByName(name); g != nil {
			parts = append(parts, sigOf(g))
		} else {
			parts = append(parts, "extern "+name)
		}
	}
	return contenthash.Parts(parts...)
}

// EnvHash keys the environment shared by every function: struct word
// layouts, and the global variable table with constant initializers.
func EnvHash(prog *simple.Program) string {
	var b strings.Builder
	names := make([]string, 0, len(prog.Structs))
	for n := range prog.Structs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		lay := prog.Structs[n]
		fmt.Fprintf(&b, "struct %s size=%d", n, lay.Size)
		for _, fl := range lay.Fields {
			fmt.Fprintf(&b, " %s@%d#%d", fl, lay.Offsets[fl], lay.FieldSizes[fl])
		}
		b.WriteString("\n")
	}
	for _, g := range prog.Globals {
		b.WriteString("global " + varLine(g))
		if init, ok := prog.GlobalInit[g]; ok {
			fmt.Fprintf(&b, " init=%d", init)
		}
		b.WriteString("\n")
	}
	return contenthash.Parts(b.String())
}

// locString renders an abstract location with qualified names. Allocation
// sites render via their own String (function name + statement label),
// which is injective within one compile.
func locString(l pointsto.Loc, qual map[*simple.Var]string) string {
	if v, ok := l.Base.(*simple.Var); ok {
		if q, ok := qual[v]; ok {
			return fmt.Sprintf("%s+%d", q, l.Off)
		}
		return fmt.Sprintf("?%s+%d", v.Name, l.Off)
	}
	return fmt.Sprintf("%s+%d", l.Base.(*pointsto.AllocSite), l.Off)
}

func locSetString(s pointsto.LocSet, qual map[*simple.Var]string) string {
	items := make([]string, 0, len(s))
	for l := range s {
		items = append(items, locString(l, qual))
	}
	sort.Strings(items)
	return strings.Join(items, ",")
}

// summaryString renders a function's transitive effect summary.
func summaryString(eff *rwsets.Effects, qual map[*simple.Var]string) string {
	if eff == nil {
		return "nil"
	}
	var lines []string
	for v := range eff.VarReads {
		lines = append(lines, "R "+qual[v])
	}
	for v := range eff.VarWrites {
		lines = append(lines, "W "+qual[v])
	}
	via := func(v rwsets.Via) string {
		if v.P == nil {
			return "other"
		}
		return fmt.Sprintf("%s+%d", qual[v.P], v.Off)
	}
	for l, vs := range eff.Reads {
		for _, v := range vs {
			lines = append(lines, fmt.Sprintf("r %s via %s", locString(l, qual), via(v)))
		}
	}
	for l, vs := range eff.Writes {
		for _, v := range vs {
			lines = append(lines, fmt.Sprintf("w %s via %s", locString(l, qual), via(v)))
		}
	}
	if eff.HasCall {
		lines = append(lines, "call")
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// FactsDigest renders every whole-program analysis fact that placement and
// selection consult about f: locality, address-takenness, and points-to
// sets for each variable f can name (its params and locals plus every
// global), and the transitive effect summaries of its direct callees. Two
// compiles that agree on FuncHash, EnvHash, and FactsDigest transform f
// identically.
func FactsDigest(f *simple.Func, prog *simple.Program, pt *pointsto.Result,
	rw *rwsets.Result, loc *locality.Result, qual map[*simple.Var]string) string {
	var b strings.Builder
	scope := make([]*simple.Var, 0, len(f.Params)+len(f.Locals)+len(prog.Globals))
	scope = append(scope, f.Params...)
	scope = append(scope, f.Locals...)
	scope = append(scope, prog.Globals...)
	for _, v := range scope {
		fmt.Fprintf(&b, "%s at=%t loc=%t pts={%s}\n",
			qual[v], pt.AddressTaken(v), loc.IsLocal(v), locSetString(pt.Pts(v), qual))
	}
	parts := []string{b.String()}
	for _, name := range calleeNames(f) {
		g := prog.FuncByName(name)
		if g == nil {
			parts = append(parts, "extern "+name)
			continue
		}
		parts = append(parts, "callee "+name+"\n"+summaryString(rw.Summary[g], qual))
	}
	return contenthash.Parts(parts...)
}

// CollectVerdicts snapshots which of f's variables locality proved local,
// for installation when the record is spliced into a later compile.
func CollectVerdicts(f *simple.Func, loc *locality.Result) []*simple.Var {
	var out []*simple.Var
	for _, v := range f.Params {
		if loc.IsLocal(v) {
			out = append(out, v)
		}
	}
	for _, v := range f.Locals {
		if loc.IsLocal(v) {
			out = append(out, v)
		}
	}
	return out
}
