// On-disk artifact store: textual compile artifacts persisted across
// process runs. Analysis results are webs of pointer-identity-keyed maps
// and cannot round-trip through serialization, so the disk layer stores
// what *can*: the threaded-code disassembly, the selection report, and
// compile warnings, keyed like the unit LRU. Consumers that only need
// those artifacts (earthcc -dump=threaded / -report under -cache-dir)
// skip compilation entirely on a disk hit; everything else treats the
// store as write-through.
//
// Entries self-validate: each carries its own key and a checksum over its
// payload fields. A mismatch — truncation, corruption, a hash-scheme
// change — deletes the entry and reports a miss, so a damaged cache
// directory degrades to cold compiles, never to wrong output.
package cache

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/contenthash"
)

// Artifact is one persisted compile result.
type Artifact struct {
	// Key is the unit key the artifact was stored under; verified on load.
	Key string `json:"key"`
	// Name and SourceHash identify the compiled unit for humans and for
	// staleness checks by external tooling.
	Name       string `json:"name"`
	SourceHash string `json:"source_hash,omitempty"`
	// Disasm is the canonical threaded-code disassembly (functions sorted
	// by name), byte-identical to what a cold compile prints.
	Disasm string `json:"disasm"`
	// Report is the communication-selection report ("" when not optimizing).
	Report string `json:"report,omitempty"`
	// Warnings are the compile's non-fatal notes.
	Warnings []string `json:"warnings,omitempty"`
	// Checksum covers every field above; see checksum().
	Checksum string `json:"checksum"`
}

func (a *Artifact) checksum() string {
	parts := []string{a.Key, a.Name, a.SourceHash, a.Disasm, a.Report}
	parts = append(parts, a.Warnings...)
	return contenthash.Parts(parts...)
}

// artifactPath maps a unit key ("sha256:<hex>") to a file path. The hex
// digest is already filesystem-safe; the scheme prefix is dropped.
func (c *Cache) artifactPath(key string) string {
	name := strings.TrimPrefix(key, "sha256:")
	return filepath.Join(c.dir, name+".json")
}

// StoreArtifact persists a under key. Errors are returned for diagnostics
// but are safe to ignore: the store is an optimization, never a
// correctness dependency.
func (c *Cache) StoreArtifact(key string, a *Artifact) error {
	if c == nil || c.dir == "" || key == "" {
		return nil
	}
	a.Key = key
	a.Checksum = a.checksum()
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return err
	}
	path := c.artifactPath(key)
	// Write-then-rename so a crash mid-write leaves no truncated entry
	// under the real name (a truncated entry would be detected anyway).
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// LoadArtifact fetches the artifact stored under key. Missing, truncated,
// corrupted, or mis-keyed entries report (nil, false); invalid entries are
// deleted so they are not re-validated on every lookup.
func (c *Cache) LoadArtifact(key string) (*Artifact, bool) {
	if c == nil || c.dir == "" || key == "" {
		return nil, false
	}
	path := c.artifactPath(key)
	data, err := os.ReadFile(path)
	if err != nil {
		c.mu.Lock()
		c.stats.DiskMisses++
		c.mu.Unlock()
		return nil, false
	}
	a := &Artifact{}
	if err := json.Unmarshal(data, a); err == nil &&
		a.Key == key && a.Checksum == a.checksum() {
		c.mu.Lock()
		c.stats.DiskHits++
		c.mu.Unlock()
		return a, true
	}
	os.Remove(path)
	c.mu.Lock()
	c.stats.DiskCorrupt++
	c.stats.DiskMisses++
	c.mu.Unlock()
	return nil, false
}
