// Package cache holds compiled artifacts across compiles so that repeated
// and lightly-edited submissions do not pay full analysis cost. It has
// three layers:
//
//  1. a unit LRU: whole compiled units keyed by an options fingerprint plus
//     the canonical source content hash (see internal/contenthash). A hit
//     returns the same immutable *Unit, including its memoized threaded
//     code, so a warm recompile costs one map lookup;
//  2. per-program incremental state: for each (fingerprint, unit name) the
//     last compile's per-function records — the transformed SIMPLE body,
//     placement sets, selection report, and locality verdicts — keyed by a
//     content hash of the function body plus the signatures of everything
//     it references, and gated by a digest of the whole-program analysis
//     facts the transformation consumed (see digest.go). An edited source
//     re-runs the cheap front end and the whole-program analyses, then
//     re-transforms only the functions whose hash or facts digest changed;
//  3. an optional on-disk artifact store (disk.go) persisted across
//     process runs.
//
// The cache stores units as opaque `any` values: internal/core owns the
// Unit type and imports this package, so the dependency points one way.
package cache

import (
	"container/list"
	"sync"
)

// Stats are the cache's cumulative counters. All layers count here; the
// pipeline additionally mirrors hit/miss/eviction counts into its metrics
// registry so they surface in earthd's merged /metrics.
type Stats struct {
	Hits      int64 // unit LRU hits
	Misses    int64 // unit LRU misses
	Evictions int64 // units evicted by capacity pressure
	// FuncsReused / FuncsRecompiled count per-function outcomes of
	// incremental compiles (layer 2).
	FuncsReused     int64
	FuncsRecompiled int64
	// DiskHits / DiskMisses / DiskCorrupt count artifact-store lookups;
	// Corrupt entries (checksum or key mismatch, truncation, bad JSON) are
	// removed and reported as misses to the caller.
	DiskHits    int64
	DiskMisses  int64
	DiskCorrupt int64
}

type unitEntry struct {
	key  string
	unit any
}

// Cache is a concurrency-safe compile cache. The zero value is not usable;
// construct with New.
type Cache struct {
	mu     sync.Mutex
	cap    int
	lru    *list.List // front = most recent; values are *unitEntry
	units  map[string]*list.Element
	states map[string]*ProgramState
	dir    string
	stats  Stats
}

// DefaultCapacity bounds the unit LRU when New is given a non-positive
// capacity. Units are whole analyzed programs, so a few dozen is plenty for
// a benchmark suite or an earthd shard set.
const DefaultCapacity = 64

// New builds a cache holding at most capacity units (<=0 selects
// DefaultCapacity). dir, when non-empty, enables the on-disk artifact
// store rooted there; the directory is created lazily on first store.
func New(capacity int, dir string) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Cache{
		cap:    capacity,
		lru:    list.New(),
		units:  make(map[string]*list.Element),
		states: make(map[string]*ProgramState),
		dir:    dir,
	}
}

// Dir returns the artifact-store root ("" when disabled).
func (c *Cache) Dir() string {
	if c == nil {
		return ""
	}
	return c.dir
}

// LookupUnit returns the cached unit for key, if present, marking it most
// recently used.
func (c *Cache) LookupUnit(key string) (any, bool) {
	if c == nil || key == "" {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.units[key]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	c.stats.Hits++
	c.lru.MoveToFront(el)
	return el.Value.(*unitEntry).unit, true
}

// StoreUnit inserts (or refreshes) a unit under key and returns how many
// units were evicted to make room.
func (c *Cache) StoreUnit(key string, unit any) int {
	if c == nil || key == "" || unit == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.units[key]; ok {
		el.Value.(*unitEntry).unit = unit
		c.lru.MoveToFront(el)
		return 0
	}
	c.units[key] = c.lru.PushFront(&unitEntry{key: key, unit: unit})
	evicted := 0
	for c.lru.Len() > c.cap {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.units, back.Value.(*unitEntry).key)
		evicted++
		c.stats.Evictions++
	}
	return evicted
}

// Len reports how many units are resident.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// State returns the incremental per-function state recorded under stateKey,
// or nil. Incremental state is not LRU-bounded: one entry exists per
// (fingerprint, unit name) pair actually compiled, and each holds exactly
// one generation.
func (c *Cache) State(stateKey string) *ProgramState {
	if c == nil || stateKey == "" {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.states[stateKey]
}

// SetState replaces the incremental state recorded under stateKey.
func (c *Cache) SetState(stateKey string, st *ProgramState) {
	if c == nil || stateKey == "" || st == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.states[stateKey] = st
}

// CountFuncs adds an incremental compile's per-function outcome to the
// stats.
func (c *Cache) CountFuncs(reused, recompiled int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.FuncsReused += int64(reused)
	c.stats.FuncsRecompiled += int64(recompiled)
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
