package cache

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestUnitLRUEvictionOrder(t *testing.T) {
	c := New(2, "")
	if _, ok := c.LookupUnit("a"); ok {
		t.Fatal("hit on an empty cache")
	}
	if ev := c.StoreUnit("a", "ua"); ev != 0 {
		t.Fatalf("storing into an empty cache evicted %d", ev)
	}
	c.StoreUnit("b", "ub")
	// Touch a so b becomes the LRU victim.
	if v, ok := c.LookupUnit("a"); !ok || v.(string) != "ua" {
		t.Fatalf("LookupUnit(a) = %v, %t", v, ok)
	}
	if ev := c.StoreUnit("c", "uc"); ev != 1 {
		t.Fatalf("storing past capacity evicted %d units, want 1", ev)
	}
	if _, ok := c.LookupUnit("b"); ok {
		t.Error("b survived eviction; LRU order is wrong")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.LookupUnit(k); !ok {
			t.Errorf("%s was evicted; LRU order is wrong", k)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Hits != 3 || st.Misses != 2 {
		t.Errorf("stats = %+v, want 1 eviction, 3 hits, 2 misses", st)
	}
}

func TestStoreUnitRefresh(t *testing.T) {
	c := New(2, "")
	c.StoreUnit("a", "old")
	if ev := c.StoreUnit("a", "new"); ev != 0 {
		t.Fatalf("refresh evicted %d", ev)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d after refresh, want 1", c.Len())
	}
	if v, _ := c.LookupUnit("a"); v.(string) != "new" {
		t.Errorf("refresh kept the old unit %v", v)
	}
}

func TestStateRoundTrip(t *testing.T) {
	c := New(0, "")
	if c.State("k") != nil {
		t.Fatal("state hit on an empty cache")
	}
	st := &ProgramState{EnvHash: "sha256:ff", Funcs: map[string]*FuncRecord{
		"f": {Hash: "h", Digest: "d"},
	}}
	c.SetState("k", st)
	if got := c.State("k"); got != st {
		t.Errorf("State(k) = %p, want the stored %p", got, st)
	}
	// States are per-key: a different fingerprint or unit name misses.
	if c.State("k2") != nil {
		t.Error("state leaked across keys")
	}
}

// TestNilCacheSafe: every method must be a no-op on a nil *Cache, so a
// pipeline without a cache needs no branches.
func TestNilCacheSafe(t *testing.T) {
	var c *Cache
	if _, ok := c.LookupUnit("k"); ok {
		t.Error("nil cache reported a hit")
	}
	c.StoreUnit("k", "u")
	c.SetState("k", &ProgramState{})
	if c.State("k") != nil || c.Len() != 0 || c.Dir() != "" {
		t.Error("nil cache not inert")
	}
	c.CountFuncs(1, 2)
	if c.Stats() != (Stats{}) {
		t.Error("nil cache accumulated stats")
	}
	if _, ok := c.LoadArtifact("k"); ok {
		t.Error("nil cache loaded an artifact")
	}
	if err := c.StoreArtifact("k", &Artifact{}); err != nil {
		t.Errorf("nil StoreArtifact: %v", err)
	}
}

func TestArtifactRoundTrip(t *testing.T) {
	c := New(0, t.TempDir())
	a := &Artifact{
		Name:       "t.ec",
		SourceHash: "sha256:aa",
		Disasm:     "main:\n  RET\n",
		Report:     "report text",
		Warnings:   []string{"w1", "w2"},
	}
	const key = "sha256:0123abcd"
	if err := c.StoreArtifact(key, a); err != nil {
		t.Fatal(err)
	}
	got, ok := c.LoadArtifact(key)
	if !ok {
		t.Fatal("stored artifact not loadable")
	}
	if got.Key != key || got.Disasm != a.Disasm || got.Report != a.Report ||
		got.Name != a.Name || len(got.Warnings) != 2 {
		t.Errorf("round-trip mangled the artifact: %+v", got)
	}
	if st := c.Stats(); st.DiskHits != 1 || st.DiskMisses != 0 {
		t.Errorf("disk stats = %+v, want exactly 1 hit", st)
	}
}

func TestArtifactMissing(t *testing.T) {
	c := New(0, t.TempDir())
	if _, ok := c.LoadArtifact("sha256:nothere"); ok {
		t.Fatal("hit on an empty store")
	}
	if st := c.Stats(); st.DiskMisses != 1 || st.DiskCorrupt != 0 {
		t.Errorf("disk stats = %+v, want 1 clean miss", st)
	}
}

// TestArtifactCorruption: every damaged-entry shape — truncation, payload
// tampering, key mismatch, garbage — must validate as a miss and delete the
// entry, never serve wrong bytes.
func TestArtifactCorruption(t *testing.T) {
	damage := []struct {
		name string
		mut  func(data []byte) []byte
	}{
		{"truncated", func(d []byte) []byte { return d[:len(d)/2] }},
		{"tampered-payload", func(d []byte) []byte {
			return []byte(strings.Replace(string(d), "RET", "JMP", 1))
		}},
		{"garbage", func(d []byte) []byte { return []byte("not json at all") }},
		{"empty", func(d []byte) []byte { return nil }},
	}
	for _, tc := range damage {
		t.Run(tc.name, func(t *testing.T) {
			c := New(0, t.TempDir())
			const key = "sha256:feedface"
			if err := c.StoreArtifact(key, &Artifact{Name: "t.ec", Disasm: "main:\n  RET\n"}); err != nil {
				t.Fatal(err)
			}
			path := c.artifactPath(key)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.mut(data), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, ok := c.LoadArtifact(key); ok {
				t.Fatal("corrupted artifact validated")
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Error("corrupted entry not deleted")
			}
			if st := c.Stats(); st.DiskCorrupt != 1 {
				t.Errorf("stats = %+v, want DiskCorrupt = 1", st)
			}
		})
	}
}

// TestArtifactKeyMismatch: an entry surfacing under the wrong key (a copied
// or renamed cache file) fails its self-validation.
func TestArtifactKeyMismatch(t *testing.T) {
	c := New(0, t.TempDir())
	if err := c.StoreArtifact("sha256:aaaa", &Artifact{Disasm: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(c.artifactPath("sha256:aaaa"), c.artifactPath("sha256:bbbb")); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.LoadArtifact("sha256:bbbb"); ok {
		t.Fatal("mis-keyed artifact validated")
	}
	if st := c.Stats(); st.DiskCorrupt != 1 {
		t.Errorf("stats = %+v, want DiskCorrupt = 1", st)
	}
}

func TestArtifactPathScheme(t *testing.T) {
	c := New(0, "/tmp/store")
	got := c.artifactPath("sha256:00ff")
	if got != filepath.Join("/tmp/store", "00ff.json") {
		t.Errorf("artifactPath = %q", got)
	}
}

func TestKeyDerivation(t *testing.T) {
	if UnitKey("fp", "src") == UnitKey("fp2", "src") {
		t.Error("unit keys ignore the fingerprint")
	}
	if UnitKey("fp", "src") == UnitKey("fp", "src2") {
		t.Error("unit keys ignore the source hash")
	}
	if UnitKey("fp", "src") != UnitKey("fp", "src") {
		t.Error("unit keys are not deterministic")
	}
	if StateKey("fp", "a.ec") == StateKey("fp", "b.ec") {
		t.Error("state keys ignore the unit name")
	}
	if UnitKey("fp", "x") == StateKey("fp", "x") {
		t.Error("unit and state keys collide")
	}
}
