package olden

// Halo returns the scalability workload behind the BenchmarkSimNodes sweep:
// a one-dimensional Jacobi relaxation over a ring of cells, one cell placed
// on every simulated node. Each iteration every cell reads its two ring
// neighbors' values (strictly nearest-neighbor remote reads — the classic
// halo exchange) and double-buffers its update, so total traffic grows
// linearly with the node count while each message crosses exactly one link.
// That makes it the stress case for the sharded event loop's conservative
// lookahead: every shard talks every window, but only to its neighbors.
//
// Halo is deliberately not in All(): it measures the simulator, not the
// paper's communication optimizations, so it stays out of the Olden
// tables, the fault sweep, and the service workload mix.
func Halo() *Benchmark {
	return &Benchmark{
		Name:        "halo",
		Description: "Ring halo exchange: 1-D Jacobi relaxation, one cell per node",
		PaperSize:   "n/a (simulator scalability workload)",
		DefaultParams: Params{
			Iters: 10,
		},
		Source: haloSource,
	}
}

func haloSource(p Params) string {
	return expand(haloTemplate, p)
}

const haloTemplate = `
struct Cell {
	double val;
	double upd;
	struct Cell *left;
	struct Cell *right;
	struct Cell *next;
};

int ITERS() { return @ITERS@; }

// make_cell runs at the cell's owner node (a placed call), so each ring
// slot lives in its node's local memory.
Cell *make_cell(int i, Cell *head) {
	Cell *c;
	c = alloc(Cell);
	c->val = 1.0 + dbl(i % 7) / 3.0;
	c->upd = 0.0;
	c->left = NULL;
	c->right = NULL;
	c->next = head;
	return c;
}

// relax reads both neighbors' current values — the halo exchange — and
// stores the smoothed update into the second buffer.
double relax(Cell local *c) {
	Cell *l;
	Cell *r;
	double a;
	double b;
	l = c->left;
	r = c->right;
	a = l->val;
	b = r->val;
	c->upd = 0.25 * a + 0.5 * c->val + 0.25 * b;
	return c->upd;
}

// commit flips the double buffer after every cell has read its neighbors.
double commit(Cell local *c) {
	c->val = c->upd;
	return c->val;
}

int main() {
	Cell *head;
	Cell *c;
	Cell *prev;
	int i;
	int n;
	int node;
	int it;
	double d;
	double sum;
	n = num_nodes();
	head = NULL;
	for (i = n - 1; i >= 0; i--) {
		node = i;
		head = make_cell(i, head)@ON(node);
	}
	prev = NULL;
	c = head;
	while (c != NULL) {
		if (prev != NULL) {
			prev->right = c;
			c->left = prev;
		}
		prev = c;
		c = c->next;
	}
	head->left = prev;
	prev->right = head;
	for (it = 0; it < ITERS(); it++) {
		forall (c = head; c != NULL; c = c->next) {
			d = relax(c)@OWNER_OF(c);
		}
		forall (c = head; c != NULL; c = c->next) {
			d = commit(c)@OWNER_OF(c);
		}
	}
	sum = 0.0;
	c = head;
	while (c != NULL) {
		sum = sum + c->val;
		c = c->next;
	}
	print_double(sum);
	return 0;
}
`
