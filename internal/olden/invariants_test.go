package olden

import (
	"testing"

	"repro/internal/core"
	"repro/internal/simple"
)

// TestOneRemoteOpInvariant: after optimization, every basic statement in
// every benchmark still contains at most one indirect memory operation (the
// SIMPLE property the paper's analysis depends on).
func TestOneRemoteOpInvariant(t *testing.T) {
	for _, b := range All() {
		src := b.Source(small(b))
		u, err := core.NewPipeline(core.Options{Optimize: true}).Compile(b.Name+".ec", src)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		for _, fn := range u.Simple.Funcs {
			simple.WalkBasics(fn.Body, func(bb *simple.Basic) {
				n := 0
				switch bb.Kind {
				case simple.KAssign:
					if _, ok := bb.Rhs.(simple.LoadRV); ok {
						n++
					}
					if _, ok := bb.Lhs.(simple.StoreLV); ok {
						n++
					}
				case simple.KBlkCopy:
					if bb.P != nil {
						n++
					}
					if bb.P2 != nil {
						n++
					}
				case simple.KGetF, simple.KPutF, simple.KBlkRead, simple.KBlkWrite:
					n++
				}
				if n > 1 {
					t.Errorf("%s/%s S%d: %d indirect ops in one basic statement: %s",
						b.Name, fn.Name, bb.Label, n, simple.BasicText(bb))
				}
			})
		}
	}
}

// TestLabelsStayConsistent: communication selection inserts statements; the
// label index must still resolve every walked basic.
func TestLabelsStayConsistent(t *testing.T) {
	for _, b := range All() {
		src := b.Source(small(b))
		u, err := core.NewPipeline(core.Options{Optimize: true}).Compile(b.Name+".ec", src)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		for _, fn := range u.Simple.Funcs {
			simple.WalkBasics(fn.Body, func(bb *simple.Basic) {
				if bb.Label < 0 || bb.Label >= len(fn.Basics) {
					t.Errorf("%s/%s: label S%d out of range", b.Name, fn.Name, bb.Label)
					return
				}
				if fn.Basics[bb.Label] != bb {
					t.Errorf("%s/%s: label S%d does not resolve to its statement",
						b.Name, fn.Name, bb.Label)
				}
			})
		}
	}
}

// TestReorderFieldsOnBenchmarks: the field-reordering extension must
// preserve every benchmark's output.
func TestReorderFieldsOnBenchmarks(t *testing.T) {
	for _, b := range All() {
		src := b.Source(small(b))
		plain, err := pipelineRun(b.Name+".ec", src, true, 2)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		p := core.NewPipeline(core.Options{Optimize: true, ReorderFields: true})
		u, err := p.Compile(b.Name+".ec", src)
		if err != nil {
			t.Fatalf("%s reorder: %v", b.Name, err)
		}
		res, err := p.Run(u, core.RunConfig{Nodes: 2})
		if err != nil {
			t.Fatalf("%s reorder run: %v", b.Name, err)
		}
		if res.Output != plain.Output {
			t.Errorf("%s: field reordering changed output: %q vs %q",
				b.Name, res.Output, plain.Output)
		}
	}
}

// TestBenchmarkReportsNonTrivial: the optimizer must actually do something
// on every benchmark (communication statements inserted, loads redirected).
func TestBenchmarkReportsNonTrivial(t *testing.T) {
	for _, b := range All() {
		src := b.Source(small(b))
		u, err := core.NewPipeline(core.Options{Optimize: true}).Compile(b.Name+".ec", src)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		tot := u.Report.Totals()
		if tot.PipelinedReads+tot.BlockedReads == 0 {
			t.Errorf("%s: no reads selected at all", b.Name)
		}
		if tot.ReadsRewritten == 0 {
			t.Errorf("%s: no loads redirected", b.Name)
		}
	}
}
