package olden

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"
)

// --------------------------------------------------------------- perimeter ---

// gridPerimeter computes the image perimeter by brute force: a cell is
// black when its center lies inside the disk of radius size-1 centered at
// (size, size) (doubled coordinates, matching the benchmark's classify);
// the perimeter counts unit edges between black cells and white-or-outside
// cells.
func gridPerimeter(depth int) int {
	size := 1 << depth
	black := func(x, y int) bool {
		if x < 0 || y < 0 || x >= size || y >= size {
			return false
		}
		dx := 2*x + 1 - size
		dy := 2*y + 1 - size
		r := size - 1
		return dx*dx+dy*dy <= r*r
	}
	per := 0
	for x := 0; x < size; x++ {
		for y := 0; y < size; y++ {
			if !black(x, y) {
				continue
			}
			for _, d := range [][2]int{{0, -1}, {1, 0}, {0, 1}, {-1, 0}} {
				if !black(x+d[0], y+d[1]) {
					per++
				}
			}
		}
	}
	return per
}

// TestPerimeterAgainstGridOracle checks the quadtree algorithm (build,
// neighbor finding via parent pointers, sum_adjacent) against the
// brute-force grid answer at several depths. The benchmark counts edge
// lengths in cell units at the leaf size, which matches unit-edge counting.
func TestPerimeterAgainstGridOracle(t *testing.T) {
	bm := Perimeter()
	for _, depth := range []int{2, 3, 4, 5} {
		src := bm.Source(Params{Size: depth})
		res, err := pipelineRun("perimeter.ec", src, true, 4)
		if err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		want := fmt.Sprintf("%d\n", gridPerimeter(depth))
		if res.Output != want {
			t.Errorf("depth %d: quadtree perimeter %q != grid oracle %q",
				depth, strings.TrimSpace(res.Output), strings.TrimSpace(want))
		}
	}
}

// ----------------------------------------------------------------- voronoi ---

// replayPoints regenerates the voronoi benchmark's points by replaying its
// build() recursion (same LCG, same seed threading).
func replayPoints(n int, seed int64, out *[][2]float64) {
	if n == 0 {
		return
	}
	next := func(s int64) int64 { return (s*1103515245 + 12345) % 2147483647 }
	s := next(seed)
	x := float64(s%1000000) / 1000.0
	s = next(s)
	y := float64(s%1000000) / 1000.0
	*out = append(*out, [2]float64{x, y})
	nl := (n - 1) / 2
	replayPoints(nl, s+29, out)
	s = next(s + 13)
	replayPoints(n-1-nl, s, out)
}

// goHull computes the convex hull (Andrew's monotone chain) and returns the
// vertex count and circumference.
func goHull(pts [][2]float64) (int, float64) {
	sort.Slice(pts, func(i, j int) bool {
		if pts[i][0] != pts[j][0] {
			return pts[i][0] < pts[j][0]
		}
		return pts[i][1] < pts[j][1]
	})
	cross := func(o, a, b [2]float64) float64 {
		return (a[0]-o[0])*(b[1]-o[1]) - (a[1]-o[1])*(b[0]-o[0])
	}
	var hull [][2]float64
	for _, p := range pts {
		for len(hull) >= 2 && cross(hull[len(hull)-2], hull[len(hull)-1], p) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	lower := len(hull) + 1
	for i := len(pts) - 2; i >= 0; i-- {
		p := pts[i]
		for len(hull) >= lower && cross(hull[len(hull)-2], hull[len(hull)-1], p) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	hull = hull[:len(hull)-1]
	total := 0.0
	for i := range hull {
		j := (i + 1) % len(hull)
		dx := hull[i][0] - hull[j][0]
		dy := hull[i][1] - hull[j][1]
		total += math.Sqrt(dx*dx + dy*dy)
	}
	return len(hull), total
}

// TestVoronoiHullAgainstOracle: the benchmark's divide-and-conquer
// gift-wrapping merge must produce the true convex hull of its points.
func TestVoronoiHullAgainstOracle(t *testing.T) {
	bm := Voronoi()
	for _, n := range []int{16, 64, 128} {
		src := bm.Source(Params{Size: n})
		res, err := pipelineRun("voronoi.ec", src, true, 4)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		var pts [][2]float64
		replayPoints(n, 1234, &pts)
		if len(pts) != n {
			t.Fatalf("replay produced %d points, want %d", len(pts), n)
		}
		wantCount, wantLen := goHull(pts)

		lines := strings.Split(strings.TrimSpace(res.Output), "\n")
		if len(lines) != 2 {
			t.Fatalf("n=%d: unexpected output %q", n, res.Output)
		}
		var gotCount int
		var gotLen float64
		fmt.Sscanf(lines[0], "%d", &gotCount)
		fmt.Sscanf(lines[1], "%f", &gotLen)
		if gotCount != wantCount {
			t.Errorf("n=%d: hull vertex count %d != oracle %d", n, gotCount, wantCount)
		}
		if math.Abs(gotLen-wantLen) > 1e-3 {
			t.Errorf("n=%d: hull length %.6f != oracle %.6f", n, gotLen, wantLen)
		}
	}
}
