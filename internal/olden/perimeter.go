package olden

// Perimeter implements the Olden perimeter benchmark: the perimeter of a
// quadtree-encoded raster image (a disk), computed with the classic
// Samet algorithm — for every black leaf, locate the greater-or-equal-size
// adjacent neighbor through parent links and sum the white length along the
// shared edge (sum_adjacent, the paper's Figure 11(b) extract). The
// computation is irregular and communication-intensive: neighbor searches
// routinely cross quadrants that live on different nodes.
func Perimeter() *Benchmark {
	return &Benchmark{
		Name:        "perimeter",
		Description: "Computes the perimeter of a quad-tree encoded raster image",
		PaperSize:   "maximum tree depth 11",
		DefaultParams: Params{
			Size: 6, // tree depth: 64x64 image
		},
		PaperImprovement16: 16.00,
		Source:             perimeterSource,
	}
}

func perimeterSource(p Params) string {
	return expand(perimeterTemplate, p)
}

const perimeterTemplate = `
// Colors and child types are small integers:
//   color: 0 white, 1 black, 2 grey
//   childtype: 0 nw, 1 ne, 2 sw, 3 se
//   direction: 0 north, 1 east, 2 south, 3 west
struct Quad {
	int color;
	int childtype;
	struct Quad *nw;
	struct Quad *ne;
	struct Quad *sw;
	struct Quad *se;
	struct Quad *parent;
};

int DEPTH() { return @SIZE@; }

// Geometry in doubled units: the image spans [0, 2S] with the disk centered
// at (S, S), radius S-1. Cells are 2 units wide.
int axisnear(int c, int lo, int hi) {
	if (c < lo) return lo - c;
	if (c > hi) return c - hi;
	return 0;
}

int axisfar(int c, int lo, int hi) {
	int a;
	int b;
	a = c - lo;
	if (a < 0) a = -a;
	b = c - hi;
	if (b < 0) b = -b;
	if (a > b) return a;
	return b;
}

// classify returns 0 (all white), 1 (all black), or 2 (mixed) for the cell
// square [x, x+s) x [y, y+s).
int classify(int x, int y, int s, int size) {
	int cx;
	int cy;
	int r;
	int nx;
	int ny;
	int fx;
	int fy;
	int nearsq;
	int farsq;
	cx = size;
	cy = size;
	r = size - 1;
	nx = axisnear(cx, 2 * x, 2 * x + 2 * s);
	ny = axisnear(cy, 2 * y, 2 * y + 2 * s);
	fx = axisfar(cx, 2 * x, 2 * x + 2 * s);
	fy = axisfar(cy, 2 * y, 2 * y + 2 * s);
	nearsq = nx * nx + ny * ny;
	farsq = fx * fx + fy * fy;
	if (nearsq > r * r) return 0;
	if (farsq <= r * r) return 1;
	return 2;
}

// build constructs the quadtree for this square; the top lvl levels place
// child subtrees on their owner nodes (the paper's distribution spreads the
// top of the tree across the machine).
Quad *build(int x, int y, int s, int size, Quad *parent, int ct, int node, int lvl) {
	Quad *q;
	int cl;
	int h;
	int c1;
	int c2;
	int c3;
	int c4;
	q = alloc(Quad);
	q->childtype = ct;
	q->parent = parent;
	q->nw = NULL;
	q->ne = NULL;
	q->sw = NULL;
	q->se = NULL;
	cl = classify(x, y, s, size);
	if (s == 1) {
		// Single cell: decide by its center.
		if (cl == 2) {
			cl = 0;
			if ((2*x+1-size)*(2*x+1-size) + (2*y+1-size)*(2*y+1-size) <= (size-1)*(size-1))
				cl = 1;
		}
		q->color = cl;
		return q;
	}
	if (cl != 2) {
		q->color = cl;
		return q;
	}
	h = s / 2;
	q->color = 2;
	if (lvl > 0) {
		c1 = (4 * node + 0) % num_nodes();
		c2 = (4 * node + 1) % num_nodes();
		c3 = (4 * node + 2) % num_nodes();
		c4 = (4 * node + 3) % num_nodes();
		q->nw = build(x, y, h, size, q, 0, c1, lvl - 1)@ON(c1);
		q->ne = build(x + h, y, h, size, q, 1, c2, lvl - 1)@ON(c2);
		q->sw = build(x, y + h, h, size, q, 2, c3, lvl - 1)@ON(c3);
		q->se = build(x + h, y + h, h, size, q, 3, c4, lvl - 1)@ON(c4);
		return q;
	}
	q->nw = build(x, y, h, size, q, 0, node, 0);
	q->ne = build(x + h, y, h, size, q, 1, node, 0);
	q->sw = build(x, y + h, h, size, q, 2, node, 0);
	q->se = build(x + h, y + h, h, size, q, 3, node, 0);
	return q;
}

// child selects a quadrant field by child type.
Quad *child(Quad *q, int ct) {
	Quad *r;
	switch (ct) {
	case 0: r = q->nw;
	case 1: r = q->ne;
	case 2: r = q->sw;
	case 3: r = q->se;
	default: r = NULL;
	}
	return r;
}

// adj reports whether a node of the given child type touches the given side
// of its parent (so its neighbor in that direction lies outside the parent).
int adj(int d, int ct) {
	int r;
	r = 0;
	switch (d) {
	case 0: if (ct == 0) r = 1; if (ct == 1) r = 1;
	case 1: if (ct == 1) r = 1; if (ct == 3) r = 1;
	case 2: if (ct == 2) r = 1; if (ct == 3) r = 1;
	case 3: if (ct == 0) r = 1; if (ct == 2) r = 1;
	}
	return r;
}

// reflect mirrors a child type across the axis of the given direction.
int reflect(int d, int ct) {
	if (d == 0 || d == 2) {
		// flip north/south
		if (ct == 0) return 2;
		if (ct == 2) return 0;
		if (ct == 1) return 3;
		return 1;
	}
	// flip east/west
	if (ct == 0) return 1;
	if (ct == 1) return 0;
	if (ct == 2) return 3;
	return 2;
}

// gtequal_adj_neighbor finds the adjacent neighbor of greater or equal size
// in direction d, or NULL at the image border (Samet).
Quad *gtequal_adj_neighbor(Quad *q, int d) {
	Quad *p;
	Quad *neighbor;
	int ct;
	p = q->parent;
	ct = q->childtype;
	if (p != NULL && adj(d, ct) == 1)
		neighbor = gtequal_adj_neighbor(p, d);
	else
		neighbor = p;
	if (neighbor != NULL && neighbor->color == 2)
		return child(neighbor, reflect(d, ct));
	return neighbor;
}

// sum_adjacent sums the length of white cells along one edge of a subtree
// (the paper's Figure 11(b) extract: a blocking candidate reading the color
// and two child pointers of the same node).
int sum_adjacent(Quad *q, int q1, int q2, int s) {
	int c;
	Quad *p1;
	Quad *p2;
	c = q->color;
	if (c == 2) {
		p1 = child(q, q1);
		p2 = child(q, q2);
		return sum_adjacent(p1, q1, q2, s / 2) + sum_adjacent(p2, q1, q2, s / 2);
	}
	if (c == 0) return s;
	return 0;
}

// edge computes one side's contribution for a black leaf: the white length
// of the facing edge of the neighbor (or the full side at the image edge).
int edge(Quad *q, int d, int q1, int q2, int s) {
	Quad *neighbor;
	int nc;
	neighbor = gtequal_adj_neighbor(q, d);
	if (neighbor == NULL) return s;
	nc = neighbor->color;
	if (nc == 0) return s;
	if (nc == 2) return sum_adjacent(neighbor, q1, q2, s);
	return 0;
}

int perimeter(Quad *q, int s) {
	int total;
	int c;
	c = q->color;
	if (c == 2) {
		total = perimeter(q->nw, s / 2);
		total = total + perimeter(q->ne, s / 2);
		total = total + perimeter(q->sw, s / 2);
		total = total + perimeter(q->se, s / 2);
		return total;
	}
	if (c == 1) {
		// north edge faces the neighbor's south children (sw, se), etc.
		total = edge(q, 0, 2, 3, s);
		total = total + edge(q, 1, 0, 2, s);
		total = total + edge(q, 2, 0, 1, s);
		total = total + edge(q, 3, 1, 3, s);
		return total;
	}
	return 0;
}

// perimeter_par parallelizes the top levels of the recursion, migrating to
// each quadrant's owner node.
int perimeter_par(Quad *q, int s, int lvl) {
	int c;
	int t1;
	int t2;
	int t3;
	int t4;
	Quad *w;
	Quad *e;
	Quad *sq;
	Quad *n;
	c = q->color;
	if (c != 2 || lvl == 0) return perimeter(q, s);
	n = q->nw;
	e = q->ne;
	w = q->sw;
	sq = q->se;
	{^
		t1 = perimeter_par(n, s / 2, lvl - 1)@OWNER_OF(n);
		t2 = perimeter_par(e, s / 2, lvl - 1)@OWNER_OF(e);
		t3 = perimeter_par(w, s / 2, lvl - 1)@OWNER_OF(w);
		t4 = perimeter_par(sq, s / 2, lvl - 1)@OWNER_OF(sq);
	^}
	return t1 + t2 + t3 + t4;
}

int main() {
	Quad *root;
	int s;
	int total;
	int h;
	s = 1;
	int i;
	for (i = 0; i < DEPTH(); i++) s = s * 2;
	h = s / 2;
	// Top quadrants are distributed round-robin; subtrees stay node-local.
	root = alloc(Quad);
	root->color = 2;
	root->childtype = 0;
	root->parent = NULL;
	root->nw = build(0, 0, h, s, root, 0, 0 % num_nodes(), 2)@ON(0 % num_nodes());
	root->ne = build(h, 0, h, s, root, 1, 1 % num_nodes(), 2)@ON(1 % num_nodes());
	root->sw = build(0, h, h, s, root, 2, 2 % num_nodes(), 2)@ON(2 % num_nodes());
	root->se = build(h, h, h, s, root, 3, 3 % num_nodes(), 2)@ON(3 % num_nodes());
	total = perimeter_par(root, s, 3);
	print_int(total);
	return total;
}
`
