package olden

// Tsp implements the Olden traveling-salesperson benchmark: cities live in
// a spatial binary tree distributed across nodes; subtrees are solved in
// parallel and the sub-tours merged with a closest-point heuristic. The
// merge scans tours through pointers, calling distance() with loop-invariant
// pointers — the paper credits tsp's gains to redundant-communication
// elimination and pipelining of exactly these reads.
func Tsp() *Benchmark {
	return &Benchmark{
		Name:        "tsp",
		Description: "Find sub-optimal tour for traveling salesperson problem",
		PaperSize:   "32K cities",
		DefaultParams: Params{
			Size: 512, // cities
		},
		PaperImprovement16: 11.93,
		Source:             tspSource,
	}
}

func tspSource(p Params) string {
	return expand(tspTemplate, p)
}

const tspTemplate = lcg + `
struct City {
	double x;
	double y;
	struct City *left;
	struct City *right;
	struct City *next;
	struct City *prev;
};

int NCITIES() { return @SIZE@; }

// build constructs a balanced binary tree of n cities with deterministic
// pseudo-random coordinates. The top lvl levels spread subtrees round-robin
// across nodes; deeper levels stay on their subtree's node.
City *build(int n, int seed, int node, int lvl) {
	City *c;
	int s;
	int nl;
	int nr;
	int child1;
	int child2;
	if (n == 0) return NULL;
	c = alloc(City);
	s = nextrand(seed);
	c->x = dbl(s % 100000) / 100.0;
	s = nextrand(s);
	c->y = dbl(s % 100000) / 100.0;
	c->next = NULL;
	c->prev = NULL;
	nl = (n - 1) / 2;
	nr = n - 1 - nl;
	if (lvl > 0) {
		// Subtrees are built on their owner nodes via placed calls.
		child1 = (2 * node) % num_nodes();
		child2 = (2 * node + 1) % num_nodes();
		c->left = build(nl, s + 17, child1, lvl - 1)@ON(child1);
		s = nextrand(s + 5);
		c->right = build(nr, s, child2, lvl - 1)@ON(child2);
		return c;
	}
	c->left = build(nl, s + 17, node, 0);
	s = nextrand(s + 5);
	c->right = build(nr, s, node, 0);
	return c;
}

double distance(City *a, City *b) {
	double dx;
	double dy;
	dx = a->x - b->x;
	dy = a->y - b->y;
	return sqrt(dx * dx + dy * dy);
}

// splice joins two circular tours with the closest-point heuristic: scan
// tour a for the city nearest to b's anchor (the anchor pointer stays
// invariant across the distance calls — the access pattern the paper's
// redundancy elimination exploits), then scan tour b for the city nearest
// to that one, and join the cycles there.
City *splice(City *a, City *b) {
	City *pa;
	City *pb;
	City *besta;
	City *bestb;
	City *na;
	City *nb;
	double best;
	double d;
	if (a == NULL) return b;
	if (b == NULL) return a;
	best = 1.0e18;
	besta = a;
	pa = a;
	do {
		d = distance(pa, b);
		if (d < best) {
			best = d;
			besta = pa;
		}
		pa = pa->next;
	} while (pa != a);
	best = 1.0e18;
	bestb = b;
	pb = b;
	do {
		d = distance(besta, pb);
		if (d < best) {
			best = d;
			bestb = pb;
		}
		pb = pb->next;
	} while (pb != b);
	na = besta->next;
	nb = bestb->next;
	besta->next = nb;
	nb->prev = besta;
	bestb->next = na;
	na->prev = bestb;
	return besta;
}

// tsp solves a subtree: solve children, then merge their tours with this
// city's singleton cycle.
City *tsp(City *t) {
	City *l;
	City *r;
	City *tour;
	if (t == NULL) return NULL;
	l = tsp(t->left);
	r = tsp(t->right);
	t->next = t;
	t->prev = t;
	tour = splice(t, l);
	tour = splice(tour, r);
	return tour;
}

// tsp_par parallelizes the top of the divide and conquer, solving each
// subtree on its owner node.
City *tsp_par(City *t, int lvl) {
	City *l;
	City *r;
	City *tl;
	City *tr;
	City *tour;
	if (t == NULL) return NULL;
	if (lvl == 0) return tsp(t);
	l = t->left;
	r = t->right;
	tl = NULL;
	tr = NULL;
	if (l != NULL && r != NULL) {
		{^
			tl = tsp_par(l, lvl - 1)@OWNER_OF(l);
			tr = tsp_par(r, lvl - 1)@OWNER_OF(r);
		^}
	} else {
		if (l != NULL) tl = tsp_par(l, lvl - 1)@OWNER_OF(l);
		if (r != NULL) tr = tsp_par(r, lvl - 1)@OWNER_OF(r);
	}
	t->next = t;
	t->prev = t;
	tour = splice(t, tl);
	tour = splice(tour, tr);
	return tour;
}

double tour_length(City *tour) {
	double len;
	City *p;
	len = 0.0;
	p = tour;
	do {
		len = len + distance(p, p->next);
		p = p->next;
	} while (p != tour);
	return len;
}

int main() {
	City *root;
	City *tour;
	double len;
	root = build(NCITIES(), 42, 0, 3);
	tour = tsp_par(root, 2);
	len = tour_length(tour);
	print_double(len);
	return trunc(len);
}
`
