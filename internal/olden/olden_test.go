package olden

import (
	"testing"

	"repro/internal/core"
	"repro/internal/earthsim"
)

// TestBenchmarksCompile checks every benchmark parses, checks, lowers, and
// optimizes without error.
func TestBenchmarksCompile(t *testing.T) {
	for _, b := range All() {
		src := b.Source(b.DefaultParams)
		for _, optimize := range []bool{false, true} {
			_, err := core.NewPipeline(core.Options{Optimize: optimize}).Compile(b.Name+".ec", src)
			if err != nil {
				t.Errorf("%s (optimize=%v): %v", b.Name, optimize, err)
			}
		}
	}
}

// pipelineRun compiles src through a fresh pipeline and runs it on the
// given machine size; the common path of the semantic tests here.
func pipelineRun(name, src string, optimize bool, nodes int) (*earthsim.Result, error) {
	p := core.NewPipeline(core.Options{Optimize: optimize})
	u, err := p.Compile(name, src)
	if err != nil {
		return nil, err
	}
	return p.Run(u, core.RunConfig{Nodes: nodes})
}

// small returns reduced parameters for quick semantic runs.
func small(b *Benchmark) Params {
	p := b.DefaultParams
	switch b.Name {
	case "power":
		p.Size, p.Iters = 4, 2
	case "perimeter":
		p.Size = 4
	case "tsp":
		p.Size = 32
	case "health":
		p.Size, p.Iters = 3, 20
	case "voronoi":
		p.Size = 48
	}
	return p
}

// TestBenchmarksRun runs every benchmark on 1 and 4 nodes, simple and
// optimized, and demands identical program output across all four runs —
// the communication optimization must be semantics-preserving, and the
// machine size must not affect results.
func TestBenchmarksRun(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			src := b.Source(small(b))
			var ref string
			first := true
			for _, nodes := range []int{1, 4} {
				for _, optimize := range []bool{false, true} {
					p := core.NewPipeline(core.Options{Optimize: optimize})
					u, err := p.Compile(b.Name+".ec", src)
					if err != nil {
						t.Fatalf("%s nodes=%d optimize=%v: %v", b.Name, nodes, optimize, err)
					}
					res, err := p.Run(u, core.RunConfig{Nodes: nodes})
					if err != nil {
						t.Fatalf("%s nodes=%d optimize=%v: %v", b.Name, nodes, optimize, err)
					}
					if first {
						ref = res.Output
						first = false
						t.Logf("output:\n%s", res.Output)
					} else if res.Output != ref {
						t.Errorf("%s nodes=%d optimize=%v: output %q != reference %q",
							b.Name, nodes, optimize, res.Output, ref)
					}
				}
			}
		})
	}
}

// TestSequentialBaseline checks the sequential build runs and agrees with
// the parallel builds.
func TestSequentialBaseline(t *testing.T) {
	for _, b := range All() {
		src := b.Source(small(b))
		p := core.NewPipeline(core.Options{})
		u, err := p.Compile(b.Name+".ec", src)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		seq, err := p.Run(u, core.RunConfig{Nodes: 1, Sequential: true})
		if err != nil {
			t.Fatalf("%s sequential: %v", b.Name, err)
		}
		par, err := p.Run(u, core.RunConfig{Nodes: 1})
		if err != nil {
			t.Fatalf("%s parallel: %v", b.Name, err)
		}
		if seq.Output != par.Output {
			t.Errorf("%s: sequential output %q != parallel %q", b.Name, seq.Output, par.Output)
		}
		if seq.Time >= par.Time {
			t.Logf("note: %s sequential (%dns) not faster than 1-node parallel (%dns)",
				b.Name, seq.Time, par.Time)
		}
	}
}
