package olden

// Health implements the Olden health benchmark: a discrete-time simulation
// of the Colombian health-care system over a 4-way tree of villages. Each
// time step, patients are generated at leaf villages, wait for personnel,
// are assessed, and are either treated locally or referred up the tree.
// List walks read and write patient fields through pointers, and the
// village's hospital counters (v->hosp.free_personnel) are hoisted and
// written back exactly as in the paper's Figure 11(c) extract. The paper
// notes health has relatively few remote accesses, so its improvement is
// the smallest of the suite.
func Health() *Benchmark {
	return &Benchmark{
		Name:        "health",
		Description: "Simulates the Colombian health-care system using a 4-way tree",
		PaperSize:   "4 levels and 600 iterations",
		DefaultParams: Params{
			Size:  4,  // tree levels
			Iters: 12, // time steps
		},
		PaperImprovement16: 14.88,
		Source:             healthSource,
	}
}

func healthSource(p Params) string {
	return expand(healthTemplate, p)
}

const healthTemplate = lcg + `
struct Patient {
	int time;
	int time_left;
	struct Patient *forward;
};

struct Hosp {
	int personnel;
	int free_personnel;
	struct Patient *waiting;
	struct Patient *assess;
	struct Patient *inside;
};

struct Village {
	struct Village *child0;
	struct Village *child1;
	struct Village *child2;
	struct Village *child3;
	struct Village *parent;
	int level;
	int seed;
	int treated;
	int treated_time;
	struct Hosp hosp;
};

int LEVELS() { return @SIZE@; }
int ITERS() { return @ITERS@; }

Village *build(int level, int node, int seed, Village *parent) {
	Village *v;
	int i;
	int cnode;
	int s;
	v = alloc(Village);
	v->parent = parent;
	v->level = level;
	v->seed = nextrand(seed + level * 37 + 11);
	v->treated = 0;
	v->treated_time = 0;
	v->hosp.personnel = 1 + level * 2;
	v->hosp.free_personnel = 1 + level * 2;
	v->hosp.waiting = NULL;
	v->hosp.assess = NULL;
	v->hosp.inside = NULL;
	v->child0 = NULL;
	v->child1 = NULL;
	v->child2 = NULL;
	v->child3 = NULL;
	if (level == 0) return v;
	s = v->seed;
	for (i = 0; i < 4; i++) {
		cnode = node;
		if (level == LEVELS() - 1) cnode = i % num_nodes();
		if (level == LEVELS() - 2) cnode = (4 * node + i + 1) % num_nodes();
		s = nextrand(s);
		if (cnode != node) {
			// Spread subtrees are built on their owner nodes.
			if (i == 0) v->child0 = build(level - 1, cnode, s, v)@ON(cnode);
			if (i == 1) v->child1 = build(level - 1, cnode, s, v)@ON(cnode);
			if (i == 2) v->child2 = build(level - 1, cnode, s, v)@ON(cnode);
			if (i == 3) v->child3 = build(level - 1, cnode, s, v)@ON(cnode);
		} else {
			if (i == 0) v->child0 = build(level - 1, cnode, s, v);
			if (i == 1) v->child1 = build(level - 1, cnode, s, v);
			if (i == 2) v->child2 = build(level - 1, cnode, s, v);
			if (i == 3) v->child3 = build(level - 1, cnode, s, v);
		}
	}
	return v;
}

// check_patients_inside: treated patients leave, freeing personnel (the
// Figure 11(c) extract: the free_personnel counter is hoisted into a local
// and written back once).
void check_patients_inside(Village *village) {
	Patient *list;
	Patient *p;
	Patient *keep;
	Patient *f;
	int t;
	int free1;
	int tr;
	int trt;
	keep = NULL;
	free1 = village->hosp.free_personnel;
	tr = village->treated;
	trt = village->treated_time;
	list = village->hosp.inside;
	while (list != NULL) {
		p = list;
		f = p->forward;
		t = p->time_left - 1;
		p->time_left = t;
		p->time = p->time + 1;
		if (t == 0) {
			free1 = free1 + 1;
			tr = tr + 1;
			trt = trt + p->time;
		} else {
			p->forward = keep;
			keep = p;
		}
		list = f;
	}
	village->hosp.inside = keep;
	village->hosp.free_personnel = free1;
	village->treated = tr;
	village->treated_time = trt;
}

// check_patients_assess: assessment finishes after its delay; the patient
// is then treated locally or referred up. Returns the list referred up.
Patient *check_patients_assess(Village *village) {
	Patient *list;
	Patient *p;
	Patient *f;
	Patient *keep;
	Patient *up;
	int t;
	int s;
	int free1;
	keep = NULL;
	up = NULL;
	s = village->seed;
	free1 = village->hosp.free_personnel;
	list = village->hosp.assess;
	while (list != NULL) {
		p = list;
		f = p->forward;
		t = p->time_left - 1;
		p->time_left = t;
		p->time = p->time + 1;
		if (t == 0) {
			s = nextrand(s);
			if (s % 10 < 3 && village->parent != NULL) {
				// Referred to the parent village: releases personnel here.
				free1 = free1 + 1;
				p->forward = up;
				up = p;
			} else {
				p->time_left = 10;
				p->forward = village->hosp.inside;
				village->hosp.inside = p;
			}
		} else {
			p->forward = keep;
			keep = p;
		}
		list = f;
	}
	village->hosp.assess = keep;
	village->hosp.free_personnel = free1;
	village->seed = s;
	return up;
}

// check_patients_waiting: admit waiting patients while personnel are free.
void check_patients_waiting(Village *village) {
	Patient *list;
	Patient *p;
	Patient *f;
	Patient *keep;
	int free1;
	keep = NULL;
	free1 = village->hosp.free_personnel;
	list = village->hosp.waiting;
	while (list != NULL) {
		p = list;
		f = p->forward;
		if (free1 > 0) {
			free1 = free1 - 1;
			p->time_left = 3;
			p->time = p->time + 1;
			p->forward = village->hosp.assess;
			village->hosp.assess = p;
		} else {
			p->time = p->time + 1;
			p->forward = keep;
			keep = p;
		}
		list = f;
	}
	village->hosp.waiting = keep;
	village->hosp.free_personnel = free1;
}

// generate_patient: leaf villages produce new patients stochastically.
void generate_patient(Village *village) {
	int s;
	Patient *p;
	s = nextrand(village->seed);
	village->seed = s;
	if (s % 10 < 3) {
		p = alloc(Patient);
		p->time = 0;
		p->time_left = 0;
		p->forward = village->hosp.waiting;
		village->hosp.waiting = p;
	}
}

// addList prepends list src onto dst and returns the new head.
Patient *addList(Patient *dst, Patient *src) {
	Patient *p;
	Patient *f;
	p = src;
	while (p != NULL) {
		f = p->forward;
		p->forward = dst;
		dst = p;
		p = f;
	}
	return dst;
}

// sim advances one village (and its subtree) one time step, returning the
// patients referred up to the caller.
Patient *sim(Village *village) {
	Patient *u0;
	Patient *u1;
	Patient *u2;
	Patient *u3;
	Patient *up;
	Village *c0;
	Village *c1;
	Village *c2;
	Village *c3;
	if (village->level > 0) {
		c0 = village->child0;
		c1 = village->child1;
		c2 = village->child2;
		c3 = village->child3;
		if (village->level >= LEVELS() - 2) {
			{^
				u0 = sim(c0)@OWNER_OF(c0);
				u1 = sim(c1)@OWNER_OF(c1);
				u2 = sim(c2)@OWNER_OF(c2);
				u3 = sim(c3)@OWNER_OF(c3);
			^}
		} else {
			u0 = sim(c0);
			u1 = sim(c1);
			u2 = sim(c2);
			u3 = sim(c3);
		}
		village->hosp.waiting = addList(village->hosp.waiting, u0);
		village->hosp.waiting = addList(village->hosp.waiting, u1);
		village->hosp.waiting = addList(village->hosp.waiting, u2);
		village->hosp.waiting = addList(village->hosp.waiting, u3);
	}
	check_patients_inside(village);
	up = check_patients_assess(village);
	check_patients_waiting(village);
	if (village->level == 0) generate_patient(village);
	return up;
}

// totals sums treated counts and times over the tree.
int totals(Village *v, int wantTime) {
	int t;
	if (v == NULL) return 0;
	if (wantTime == 1) t = v->treated_time;
	else t = v->treated;
	t = t + totals(v->child0, wantTime);
	t = t + totals(v->child1, wantTime);
	t = t + totals(v->child2, wantTime);
	t = t + totals(v->child3, wantTime);
	return t;
}

int main() {
	Village *root;
	Patient *up;
	int it;
	int treated;
	int ttime;
	root = build(LEVELS() - 1, 0, 91, NULL);
	for (it = 0; it < ITERS(); it++) {
		up = sim(root);
	}
	treated = totals(root, 0);
	ttime = totals(root, 1);
	print_int(treated);
	print_int(ttime);
	return treated * 1000 + ttime % 1000;
}
`
