// Package olden provides the five Olden benchmarks of the paper's
// evaluation (Table II) — power, perimeter, tsp, health, and voronoi —
// rewritten in this repository's EARTH-C dialect, with the data-distribution
// strategies the paper describes (each benchmark spreads its top-level
// structure across the machine and keeps subtrees node-local where
// possible).
//
// Each benchmark is exposed as EARTH-C source text parameterized by a
// problem size, plus the paper's description for Table II. Problem sizes
// default to values that simulate in seconds; the paper's full sizes are
// recorded separately.
package olden

import "strings"

// Benchmark describes one Olden program.
type Benchmark struct {
	Name        string
	Description string // Table II description
	PaperSize   string // problem size used in the paper
	// DefaultParams are the scaled-down parameters used by the harness.
	DefaultParams Params
	// Source produces EARTH-C text for the given parameters.
	Source func(Params) string
	// PaperImprovement16 is the paper's reported % improvement at 16
	// processors (for EXPERIMENTS.md comparison).
	PaperImprovement16 float64
}

// Params parameterizes a benchmark's problem size.
type Params struct {
	Size  int // primary size knob (leaves / depth / cities / points)
	Iters int // iterations (power, health)
}

// All returns the benchmark registry in the paper's order.
func All() []*Benchmark {
	return []*Benchmark{
		Power(),
		Tsp(),
		Health(),
		Perimeter(),
		Voronoi(),
	}
}

// QuickParams returns parameters that keep one simulated run in the tens of
// milliseconds of host time — the sizes the repo-root benchmarks, the load
// generator (cmd/earthload), and service smoke tests share.
func QuickParams(b *Benchmark) Params {
	p := b.DefaultParams
	switch b.Name {
	case "power":
		p.Size, p.Iters = 8, 2
	case "perimeter":
		p.Size = 5
	case "tsp":
		p.Size = 64
	case "health":
		p.Size, p.Iters = 3, 20
	case "voronoi":
		p.Size = 96
	}
	return p
}

// ByName finds a benchmark.
func ByName(name string) *Benchmark {
	for _, b := range All() {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// lcg is the deterministic pseudo-random helper injected into every
// benchmark: a 31-bit linear congruential generator written in EARTH-C so
// simple and optimized builds see identical inputs.
const lcg = `
int nextrand(int seed) {
	return (seed * 1103515245 + 12345) % 2147483647;
}
`

// expand substitutes @SIZE@ and @ITERS@ parameter markers in a benchmark
// template (EARTH-C uses % heavily, so printf-style formatting is avoided).
func expand(template string, p Params) string {
	return strings.NewReplacer(
		"@SIZE@", itoa(p.Size),
		"@ITERS@", itoa(p.Iters),
	).Replace(template)
}

func itoa(v int) string {
	if v < 0 {
		return "-" + itoa(-v)
	}
	if v < 10 {
		return string(rune('0' + v))
	}
	return itoa(v/10) + string(rune('0'+v%10))
}
