package olden

// Power implements the Olden power benchmark: the power-system pricing
// problem over a multi-level distribution tree (root -> laterals ->
// branches -> leaves). Each pricing iteration propagates prices down and
// demands up. Per-node computations read several double fields of a record,
// compute, and write results back — the access pattern the paper credits
// for power's blocking benefit (compare Figure 11(a)).
func Power() *Benchmark {
	return &Benchmark{
		Name:        "power",
		Description: "Power system optimization problem based on a variable k-nary tree",
		PaperSize:   "10,000 leaves",
		DefaultParams: Params{
			Size:  16, // laterals; 5 branches x 10 leaves each => 800 leaves
			Iters: 4,
		},
		PaperImprovement16: 7.07,
		Source:             powerSource,
	}
}

func powerSource(p Params) string {
	return expand(powerTemplate, p)
}

const powerTemplate = lcg + `
struct Lateral {
	double r;
	double x;
	double alpha;
	double beta;
	double p;
	double q;
	struct Lateral *next;
	struct Branch *branches;
};

struct Branch {
	double r;
	double x;
	double alpha;
	double beta;
	double p;
	double q;
	struct Branch *next;
	struct Leaf *leaves;
};

struct Leaf {
	double pi_r;
	double pi_i;
	double p;
	double q;
	struct Leaf *next;
};

struct Root {
	double theta_r;
	double theta_i;
	double p;
	double q;
	struct Lateral *first;
};

int NLAT() { return @SIZE@; }
int NBRANCH() { return 5; }
int NLEAF() { return 10; }
int ITERS() { return @ITERS@; }

Leaf *build_leaves(int seed) {
	Leaf *head;
	Leaf *l;
	int i;
	int s;
	head = NULL;
	s = seed;
	for (i = 0; i < NLEAF(); i++) {
		s = nextrand(s);
		l = alloc(Leaf);
		l->pi_r = 1.0 + dbl(s % 100) / 25.0;
		s = nextrand(s);
		l->pi_i = 1.0 + dbl(s % 100) / 25.0;
		l->p = 0.0;
		l->q = 0.0;
		l->next = head;
		head = l;
	}
	return head;
}

Branch *build_branches(int seed) {
	Branch *head;
	Branch *b;
	int i;
	int s;
	head = NULL;
	s = seed;
	for (i = 0; i < NBRANCH(); i++) {
		s = nextrand(s);
		b = alloc(Branch);
		b->r = 0.0001 * dbl(1 + s % 9);
		s = nextrand(s);
		b->x = 0.0002 * dbl(1 + s % 9);
		b->alpha = 0.9;
		b->beta = 0.1;
		b->p = 0.0;
		b->q = 0.0;
		b->leaves = build_leaves(s + i);
		b->next = head;
		head = b;
	}
	return head;
}

// make_lateral runs at the lateral's owner node (a placed call), so the
// whole sub-structure is built with local allocations and local writes —
// the data-distribution strategy the paper's benchmarks use.
Lateral *make_lateral(int i, Lateral *head) {
	Lateral *lat;
	lat = alloc(Lateral);
	lat->r = 1.0 / dbl(300 + i);
	lat->x = 0.000001;
	lat->alpha = 0.8;
	lat->beta = 0.2;
	lat->p = 0.0;
	lat->q = 0.0;
	lat->branches = build_branches(7 * i + 3);
	lat->next = head;
	return lat;
}

Root *build_tree() {
	Root *root;
	Lateral *head;
	int i;
	int node;
	root = alloc(Root);
	root->theta_r = 0.8;
	root->theta_i = 0.16;
	head = NULL;
	for (i = 0; i < NLAT(); i++) {
		node = i % num_nodes();
		head = make_lateral(i, head)@ON(node);
	}
	root->first = head;
	return root;
}

// optimize_node performs the per-node numerical work of the power-system
// solver: a short Newton-style iteration (the real Olden power spends most
// of its time in exactly this kind of per-node computation, which is why
// the paper calls it computation-intensive).
double optimize_node(double pi, double theta) {
	double g;
	double v;
	int it;
	v = pi / theta;
	for (it = 0; it < 8; it++) {
		g = v * v * theta - pi;
		v = v - g / (2.0 * v * theta + 0.000001);
	}
	return v;
}

// compute_leaf: reads the leaf's demand coefficients and stores the demand
// under the current prices. Four field accesses via one pointer: a blocking
// candidate.
void compute_leaf(Leaf *l, double theta_r, double theta_i) {
	double p;
	double q;
	p = optimize_node(l->pi_r, theta_r);
	q = optimize_node(l->pi_i, theta_i);
	l->p = p;
	l->q = q;
}

// compute_branch: aggregates leaf demands, then solves the branch equations
// reading r/x/alpha/beta and writing p/q — the Figure 11(a) pattern.
void compute_branch(Branch *br, double theta_r, double theta_i) {
	Leaf *l;
	double psum;
	double qsum;
	double a;
	double b;
	double vr;
	double vi;
	psum = 0.0;
	qsum = 0.0;
	l = br->leaves;
	while (l != NULL) {
		compute_leaf(l, theta_r, theta_i);
		psum = psum + l->p;
		qsum = qsum + l->q;
		l = l->next;
	}
	a = br->alpha;
	b = br->beta;
	vr = br->r;
	vi = br->x;
	psum = psum + vr * (psum * psum + qsum * qsum);
	qsum = qsum + vi * (psum * psum + qsum * qsum);
	br->p = a * psum + 0.000001;
	br->q = b * qsum + 0.000001;
}

double compute_lateral(Lateral local *lat, double theta_r, double theta_i) {
	Branch *br;
	double psum;
	double qsum;
	double lr;
	double lx;
	psum = 0.0;
	qsum = 0.0;
	br = lat->branches;
	while (br != NULL) {
		compute_branch(br, theta_r, theta_i);
		psum = psum + br->p;
		qsum = qsum + br->q;
		br = br->next;
	}
	lr = lat->r;
	lx = lat->x;
	psum = psum + lr * (psum * psum + qsum * qsum);
	qsum = qsum + lx * (psum * psum + qsum * qsum);
	lat->p = psum;
	lat->q = qsum;
	return psum;
}

int main() {
	Root *root;
	Lateral *lat;
	int it;
	double ptotal;
	double qtotal;
	double tr;
	double ti;
	double d;
	root = build_tree();
	for (it = 0; it < ITERS(); it++) {
		tr = root->theta_r;
		ti = root->theta_i;
		forall (lat = root->first; lat != NULL; lat = lat->next) {
			d = compute_lateral(lat, tr, ti)@OWNER_OF(lat);
		}
		ptotal = 0.0;
		qtotal = 0.0;
		lat = root->first;
		while (lat != NULL) {
			ptotal = ptotal + lat->p;
			qtotal = qtotal + lat->q;
			lat = lat->next;
		}
		root->p = ptotal;
		root->q = qtotal;
		root->theta_r = 0.7 + 0.3 / (1.0 + ptotal / dbl(NLAT() * 60));
		root->theta_i = 0.14 + 0.06 / (1.0 + qtotal / dbl(NLAT() * 60));
	}
	print_double(root->p);
	print_double(root->q);
	print_double(root->theta_r);
	return trunc(root->p);
}
`
