package olden

import (
	"strings"
	"testing"
)

// TestHealthVillageStepByStep exercises one village's hospital pipeline step
// by step and compares per-step state between the simple and optimized
// builds. This is a regression test for two historical miscompilations: a
// split-phase fill clobbering a newer shadow value, and a write float
// crossing a branch store to the same field (write-after-write inversion).
func TestHealthVillageStepByStep(t *testing.T) {
	b := Health()
	src := b.Source(Params{Size: 1, Iters: 1})
	// Replace main with a single-village probe.
	i := strings.Index(src, "int main() {")
	src = src[:i] + `
int count(Patient *l) {
	int n;
	n = 0;
	while (l != NULL) {
		n = n + 1;
		l = l->forward;
	}
	return n;
}

int main() {
	Village *v;
	int it;
	Patient *up;
	v = build(0, 0, 91, NULL);
	for (it = 0; it < 25; it++) {
		check_patients_inside(v);
		up = check_patients_assess(v);
		check_patients_waiting(v);
		generate_patient(v);
		print_int(count(v->hosp.waiting));
		print_int(count(v->hosp.assess));
		print_int(count(v->hosp.inside));
		print_int(v->hosp.free_personnel);
		print_int(v->treated);
		print_int(count(up));
		print_int(v->seed);
		print_str("--\n");
	}
	return 0;
}
`
	su, err := pipelineRun("hv.ec", src, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	ou, err := pipelineRun("hv.ec", src, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	sl := strings.Split(su.Output, "--\n")
	ol := strings.Split(ou.Output, "--\n")
	for i := range sl {
		if i >= len(ol) || sl[i] != ol[i] {
			t.Errorf("first divergence at step %d:\nsimple: %q\nopt:    %q", i, sl[i], ol[i])
			break
		}
	}
}
