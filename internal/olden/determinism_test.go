package olden

import (
	"sort"
	"sync"
	"testing"

	"repro/internal/commsel"
	"repro/internal/core"
	"repro/internal/earthsim"
	"repro/internal/threaded"
)

// disasmAll renders the threaded code of every function in deterministic
// name order — the byte-level fingerprint of a compile.
func disasmAll(t *testing.T, u *core.Unit) string {
	t.Helper()
	tp, err := u.Threaded(threaded.Options{})
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(tp.Funcs))
	for n := range tp.Funcs {
		names = append(names, n)
	}
	sort.Strings(names)
	var out string
	for _, n := range names {
		out += tp.Funcs[n].Disasm() + "\n"
	}
	return out
}

// sameResult compares the observable fields of two simulator results.
func sameResult(a, b *earthsim.Result) bool {
	return a.Time == b.Time && a.Counts == b.Counts &&
		a.Output == b.Output && a.MainRet == b.MainRet
}

// TestWorkerCountDeterminism is the contract behind Options.Workers: for
// every Olden benchmark, a parallel compile (Workers=8) must produce
// byte-identical threaded code, an identical selection report, and an
// identical simulated result to a sequential compile (Workers=1).
func TestWorkerCountDeterminism(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			src := b.Source(small(b))
			var refCode string
			var refTotals commsel.FuncReport
			var refRes *earthsim.Result
			for _, workers := range []int{1, 8} {
				p := core.NewPipeline(core.Options{Optimize: true, Workers: workers})
				u, err := p.Compile(b.Name+".ec", src)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				code := disasmAll(t, u)
				totals := u.Report.Totals()
				res, err := p.Run(u, core.RunConfig{Nodes: 4})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if workers == 1 {
					refCode, refTotals, refRes = code, totals, res
					continue
				}
				if code != refCode {
					t.Errorf("workers=%d: threaded code differs from workers=1", workers)
				}
				if totals != refTotals {
					t.Errorf("workers=%d: report totals %+v != %+v", workers, totals, refTotals)
				}
				if !sameResult(res, refRes) {
					t.Errorf("workers=%d: simulated result differs: %+v != %+v",
						workers, res, refRes)
				}
			}
		})
	}
}

// TestSharedPipelineConcurrency drives one Pipeline — and one compiled
// Unit — from 8 goroutines at once: concurrent Compiles of the same
// source must agree with a sequential reference, and concurrent Runs of
// the shared unit must all return the same result. Run under -race by
// scripts/check.sh.
func TestSharedPipelineConcurrency(t *testing.T) {
	b := ByName("power")
	src := b.Source(small(b))
	p := core.NewPipeline(core.Options{Optimize: true})

	refU, err := p.Compile(b.Name+".ec", src)
	if err != nil {
		t.Fatal(err)
	}
	refCode := disasmAll(t, refU)
	refRes, err := p.Run(refU, core.RunConfig{Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, 2*goroutines)
	codes := make([]string, goroutines)
	results := make([]*earthsim.Result, goroutines)
	for i := 0; i < goroutines; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			u, err := p.Compile(b.Name+".ec", src)
			if err != nil {
				errs <- err
				return
			}
			codes[i] = disasmAll(t, u)
			// Exercise the shared unit's cached threaded code from all
			// goroutines at once.
			res, err := p.Run(refU, core.RunConfig{Nodes: 4})
			if err != nil {
				errs <- err
				return
			}
			results[i] = res
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for i := 0; i < goroutines; i++ {
		if codes[i] != refCode {
			t.Errorf("goroutine %d: concurrent compile produced different threaded code", i)
		}
		if !sameResult(results[i], refRes) {
			t.Errorf("goroutine %d: concurrent run result differs: %+v != %+v",
				i, results[i], refRes)
		}
	}
}
