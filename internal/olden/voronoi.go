package olden

// Voronoi stands in for the Olden voronoi benchmark. The original computes
// a Voronoi diagram by divide and conquer, merging sub-diagrams by walking
// their convex hulls in an alternating, irregular fashion (Guibas-Stolfi).
// This reproduction implements the same computational skeleton as a
// divide-and-conquer convex hull over a distributed binary tree of points:
// sub-hulls are computed in parallel on their owner nodes and merged by
// orientation-test walks over linked hull cycles — the same irregular
// pointer-chasing reads of point coordinates (with heavy cross-call
// redundancy) that the paper credits for voronoi's improvement. See
// DESIGN.md for the substitution rationale.
func Voronoi() *Benchmark {
	return &Benchmark{
		Name:        "voronoi",
		Description: "Computes the Voronoi diagram (here: D&C hull merge) of a set of points",
		PaperSize:   "32K points",
		DefaultParams: Params{
			Size: 512, // points
		},
		PaperImprovement16: 15.38,
		Source:             voronoiSource,
	}
}

func voronoiSource(p Params) string {
	return expand(voronoiTemplate, p)
}

const voronoiTemplate = lcg + `
struct Point {
	double x;
	double y;
	struct Point *left;
	struct Point *right;
	struct Point *next;
	struct Point *prev;
	struct Point *link;
};

int NPOINTS() { return @SIZE@; }

Point *build(int n, int seed, int node, int lvl) {
	Point *p;
	int s;
	int nl;
	int child1;
	int child2;
	if (n == 0) return NULL;
	p = alloc(Point);
	s = nextrand(seed);
	p->x = dbl(s % 1000000) / 1000.0;
	s = nextrand(s);
	p->y = dbl(s % 1000000) / 1000.0;
	p->next = NULL;
	p->prev = NULL;
	p->link = NULL;
	nl = (n - 1) / 2;
	if (lvl > 0) {
		// Subtrees are built on their owner nodes via placed calls.
		child1 = (2 * node) % num_nodes();
		child2 = (2 * node + 1) % num_nodes();
		p->left = build(nl, s + 29, child1, lvl - 1)@ON(child1);
		s = nextrand(s + 13);
		p->right = build(n - 1 - nl, s, child2, lvl - 1)@ON(child2);
		return p;
	}
	p->left = build(nl, s + 29, node, 0);
	s = nextrand(s + 13);
	p->right = build(n - 1 - nl, s, node, 0);
	return p;
}

// cross computes the z component of (a-o) x (b-o): positive when o->a->b
// turns counter-clockwise. Reads six coordinates through three pointers;
// the outer pointers are invariant over candidate scans, so the optimizer
// removes most of the traffic.
double cross(Point *o, Point *a, Point *b) {
	double ox;
	double oy;
	ox = o->x;
	oy = o->y;
	return (a->x - ox) * (b->y - oy) - (a->y - oy) * (b->x - ox);
}

double dist2(Point *a, Point *b) {
	double dx;
	double dy;
	dx = a->x - b->x;
	dy = a->y - b->y;
	return dx * dx + dy * dy;
}

// collect walks a hull cycle, pushing its vertices onto a link-list.
Point *collect(Point *hull, Point *list) {
	Point *p;
	if (hull == NULL) return list;
	p = hull;
	do {
		p->link = list;
		list = p;
		p = p->next;
	} while (p != hull);
	return list;
}

// wrap runs a gift-wrapping (Jarvis) march over the candidate list, linking
// the resulting convex hull into a counter-clockwise cycle.
Point *wrap(Point *cands, int maxsteps) {
	Point *start;
	Point *p;
	Point *cur;
	Point *best;
	Point *first;
	double c;
	int steps;
	if (cands == NULL) return NULL;
	if (cands->link == NULL) {
		cands->next = cands;
		cands->prev = cands;
		return cands;
	}
	// start = lowest point (minimum y, then minimum x).
	start = cands;
	p = cands->link;
	while (p != NULL) {
		if (p->y < start->y || (p->y == start->y && p->x < start->x))
			start = p;
		p = p->link;
	}
	cur = start;
	first = start;
	steps = 0;
	do {
		best = NULL;
		p = cands;
		while (p != NULL) {
			if (p != cur) {
				if (best == NULL) {
					best = p;
				} else {
					c = cross(cur, best, p);
					if (c < 0.0) {
						best = p;
					} else {
						if (c == 0.0 && dist2(cur, p) > dist2(cur, best))
							best = p;
					}
				}
			}
			p = p->link;
		}
		cur->next = best;
		best->prev = cur;
		cur = best;
		steps = steps + 1;
	} while (cur != first && steps < maxsteps);
	if (cur != first) {
		// Guard against degenerate inputs: close the cycle.
		cur->next = first;
		first->prev = cur;
	}
	return first;
}

// merge joins two sub-hulls and one extra point into the hull of the union.
Point *merge(Point *a, Point *b, Point *t) {
	Point *list;
	int n;
	Point *p;
	list = collect(a, NULL);
	list = collect(b, list);
	t->link = list;
	list = t;
	n = 0;
	p = list;
	while (p != NULL) {
		n = n + 1;
		p = p->link;
	}
	return wrap(list, n + 1);
}

Point *hull(Point *t) {
	Point *l;
	Point *r;
	if (t == NULL) return NULL;
	l = hull(t->left);
	r = hull(t->right);
	return merge(l, r, t);
}

Point *hull_par(Point *t, int lvl) {
	Point *l;
	Point *r;
	Point *hl;
	Point *hr;
	if (t == NULL) return NULL;
	if (lvl == 0) return hull(t);
	l = t->left;
	r = t->right;
	hl = NULL;
	hr = NULL;
	if (l != NULL && r != NULL) {
		{^
			hl = hull_par(l, lvl - 1)@OWNER_OF(l);
			hr = hull_par(r, lvl - 1)@OWNER_OF(r);
		^}
	} else {
		if (l != NULL) hl = hull_par(l, lvl - 1)@OWNER_OF(l);
		if (r != NULL) hr = hull_par(r, lvl - 1)@OWNER_OF(r);
	}
	return merge(hl, hr, t);
}

int main() {
	Point *root;
	Point *h;
	Point *p;
	double len;
	int count;
	root = build(NPOINTS(), 1234, 0, 3);
	h = hull_par(root, 2);
	len = 0.0;
	count = 0;
	p = h;
	do {
		len = len + sqrt(dist2(p, p->next));
		count = count + 1;
		p = p->next;
	} while (p != h);
	print_int(count);
	print_double(len);
	return count * 1000 + trunc(len) % 1000;
}
`
