package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/earthsim"
	"repro/internal/profile"
)

// remoteListSrc allocates a list on node 1 and walks it from node 0, so an
// instrumented run sees genuinely remote accesses.
const remoteListSrc = `
struct Point {
	double x;
	double y;
	double z;
	struct Point *next;
};

int main() {
	Point *head;
	Point *p;
	int i;
	double sum;
	head = NULL;
	for (i = 0; i < 30; i++) {
		p = alloc_on(Point, 1);
		p->x = dbl(i);
		p->y = dbl(i * 2);
		p->z = dbl(i * 3);
		p->next = head;
		head = p;
	}
	sum = 0.0;
	p = head;
	while (p != NULL) {
		sum = sum + p->x + p->y + p->z;
		p = p->next;
	}
	print_double(sum);
	return trunc(sum);
}
`

func totalOps(c earthsim.Counts) int64 {
	return c.RemoteReads + c.LocalReads +
		c.RemoteWrites + c.LocalWrites +
		c.RemoteBlk + c.LocalBlk
}

// TestProfileDeterminism: the simulator is deterministic, so two
// instrumented runs of the same build produce equal counters and
// byte-identical profile artifacts.
func TestProfileDeterminism(t *testing.T) {
	u, err := compile("det.ec", remoteListSrc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var bufs [2]bytes.Buffer
	var counts [2]earthsim.Counts
	for i := 0; i < 2; i++ {
		res, err := runUnit(u, RunConfig{Nodes: 2, Profile: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Profile == nil {
			t.Fatal("instrumented run produced no profile")
		}
		if err := res.Profile.Write(&bufs[i]); err != nil {
			t.Fatal(err)
		}
		counts[i] = res.Counts
	}
	if counts[0] != counts[1] {
		t.Errorf("counts differ between identical runs:\n%+v\n%+v", counts[0], counts[1])
	}
	if !bytes.Equal(bufs[0].Bytes(), bufs[1].Bytes()) {
		t.Errorf("profiles not byte-identical:\n%s\nvs\n%s", bufs[0].String(), bufs[1].String())
	}
}

// TestCompileWithProfile: the full feedback loop preserves semantics and
// never issues more communication ops than the statically optimized build.
func TestCompileWithProfile(t *testing.T) {
	simple, err := compileAndRun("pgo.ec", remoteListSrc, false, 2)
	if err != nil {
		t.Fatal(err)
	}
	static, err := compileAndRun("pgo.ec", remoteListSrc, true, 2)
	if err != nil {
		t.Fatal(err)
	}
	u, prof, err := compileWithProfile("pgo.ec", remoteListSrc,
		Options{Optimize: true}, RunConfig{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if prof == nil || prof.Runs == 0 {
		t.Fatal("CompileWithProfile returned no profile")
	}
	if len(u.Warnings) != 0 {
		t.Errorf("fresh profile produced warnings: %v", u.Warnings)
	}
	pgo, err := runUnit(u, RunConfig{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if pgo.Output != simple.Output {
		t.Errorf("PGO output %q differs from simple %q", pgo.Output, simple.Output)
	}
	if totalOps(pgo.Counts) > totalOps(static.Counts) {
		t.Errorf("PGO ops %d exceed static ops %d",
			totalOps(pgo.Counts), totalOps(static.Counts))
	}
}

// TestStaleProfileFallsBack: a profile collected from a different source
// revision must not fail the compile; it degrades to the static heuristics
// with a warning, and the result matches the static build exactly.
func TestStaleProfileFallsBack(t *testing.T) {
	stale := profile.New()
	stale.SourceHash = profile.HashSource("int main() { return 1; }")
	stale.Runs = 1
	cres, err := NewPipeline(Options{Optimize: true}).Do(
		CompileRequest{Name: "stale.ec", Source: remoteListSrc, Profile: stale})
	if err != nil {
		t.Fatalf("stale profile failed the compile: %v", err)
	}
	u := cres.Unit
	if len(u.Warnings) == 0 || !strings.Contains(u.Warnings[0], "stale") {
		t.Errorf("expected a staleness warning, got %v", u.Warnings)
	}
	static, err := compileAndRun("stale.ec", remoteListSrc, true, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := runUnit(u, RunConfig{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != static.Output || res.Counts != static.Counts {
		t.Errorf("stale-profile build differs from static build:\n%+v\nvs\n%+v",
			res.Counts, static.Counts)
	}
}
