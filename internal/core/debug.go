package core

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
)

// liveState is the pipeline-side slot the current run publishes through; the
// debug HTTP server reads it via an atomic pointer, so observers never block
// the simulator. Shared (by pointer) across the by-value Pipeline copies
// ProfileCycle makes.
type liveState struct {
	cur atomic.Pointer[runRecord]
}

// runRecord describes the run a pipeline most recently started (possibly
// still in flight).
type runRecord struct {
	unit     string
	nodes    int
	started  time.Time
	sampler  *metrics.Sampler // nil when the run has no time-series sampler
	finished atomic.Bool
}

// DebugHandler returns the pipeline's debug HTTP mux:
//
//	/               index (plain text, lists the endpoints)
//	/healthz        JSON liveness + current-run status
//	/buildinfo      binary identity (module version, VCS revision, Go)
//	/metrics        Prometheus text: registry + latest simulator sample
//	/metrics.json   registry as JSON
//	/series.json    the current run's retained time series as JSON
//	/trace/summary  live text summary of the pipeline's trace recorder
//	/trace.json     Chrome trace_event download of the recorder
//	/debug/pprof/   the standard Go profiling endpoints
//
// Every endpoint is safe while a Run is in flight: the registry and sampler
// publish through atomics and small mutexes, and the trace recorder locks
// per observation. Endpoints for unconfigured sinks respond 404 with a hint
// naming the option to set.
func (p *Pipeline) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	// Process-level runtime metrics (goroutines, GC, heap) are collected at
	// scrape time into their own registry so the pipeline registry's
	// deterministic exposition is untouched.
	proc := metrics.NewProcessCollector()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "earth pipeline debug server\n\n"+
			"/healthz        liveness + current run\n"+
			"/buildinfo      binary identity (version, VCS revision, Go)\n"+
			"/metrics        Prometheus text exposition\n"+
			"/metrics.json   registry as JSON\n"+
			"/series.json    simulator time series (current run)\n"+
			"/trace/summary  live trace summary\n"+
			"/trace.json     Chrome trace download\n"+
			"/debug/pprof/   Go profiling\n")
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		type health struct {
			Status    string `json:"status"`
			Running   bool   `json:"running"`
			Unit      string `json:"unit,omitempty"`
			Nodes     int    `json:"nodes,omitempty"`
			ElapsedMs int64  `json:"elapsed_ms,omitempty"`
		}
		h := health{Status: "ok"}
		if rec := p.liveRun(); rec != nil {
			h.Unit, h.Nodes = rec.unit, rec.nodes
			h.Running = !rec.finished.Load()
			h.ElapsedMs = time.Since(rec.started).Milliseconds()
		}
		json.NewEncoder(w).Encode(h)
	})
	mux.HandleFunc("/buildinfo", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(obs.Info())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		var buf bytes.Buffer
		p.opt.Metrics.WritePrometheus(&buf)
		if rec := p.liveRun(); rec != nil {
			rec.sampler.WritePrometheus(&buf)
		}
		proc.Collect()
		proc.WritePrometheus(&buf)
		w.Write(buf.Bytes())
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		p.opt.Metrics.WriteJSON(w)
	})
	mux.HandleFunc("/series.json", func(w http.ResponseWriter, r *http.Request) {
		rec := p.liveRun()
		if rec == nil || rec.sampler == nil {
			http.Error(w, "no sampler: start the run with RunConfig.Sampler (earthrun -http does this automatically)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		rec.sampler.WriteSeriesJSON(w)
	})
	mux.HandleFunc("/trace/summary", func(w http.ResponseWriter, r *http.Request) {
		if p.opt.Trace == nil {
			http.Error(w, "no trace recorder: set Options.Trace (earthrun -trace-summary or -trace)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, p.opt.Trace.Summarize().String())
	})
	mux.HandleFunc("/trace.json", func(w http.ResponseWriter, r *http.Request) {
		if p.opt.Trace == nil {
			http.Error(w, "no trace recorder: set Options.Trace (earthrun -trace)", http.StatusNotFound)
			return
		}
		// Encode into a buffer first: WriteChrome holds the recorder's lock,
		// and a slow client must not stall a live simulation.
		var buf bytes.Buffer
		if err := p.opt.Trace.WriteChrome(&buf); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="trace.json"`)
		w.Write(buf.Bytes())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// liveRun returns the most recently started run's record, or nil.
func (p *Pipeline) liveRun() *runRecord {
	if p.live == nil {
		return nil
	}
	return p.live.cur.Load()
}

// DebugServer is a running debug HTTP server (see Pipeline.ServeDebug).
type DebugServer struct {
	// Addr is the bound listen address (useful when ServeDebug was given
	// ":0" to pick a free port).
	Addr string
	srv  *http.Server
}

// Close shuts the server down immediately.
func (d *DebugServer) Close() error { return d.srv.Close() }

// Shutdown drains the server gracefully: the listener closes, in-flight
// requests run to completion (bounded by ctx), and only then does Shutdown
// return. This is the drain hook `earthrun -http` and earthd wire to
// SIGINT/SIGTERM (see internal/server.ShutdownOnSignal).
func (d *DebugServer) Shutdown(ctx context.Context) error { return d.srv.Shutdown(ctx) }

// ServeDebug binds addr (e.g. ":6060", "localhost:0") and serves
// DebugHandler on it in a background goroutine. The returned server's Addr
// carries the resolved address; Close it when done.
func (p *Pipeline) ServeDebug(addr string) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("core: debug server: %w", err)
	}
	srv := &http.Server{Handler: p.DebugHandler()}
	go srv.Serve(ln)
	return &DebugServer{Addr: ln.Addr().String(), srv: srv}, nil
}
