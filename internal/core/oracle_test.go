package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// exprNode is a tiny expression AST evaluated both by Go (the oracle) and by
// the compiled EARTH-C program; the two must agree exactly.
type exprNode struct {
	op    string // "", "+", "-", "*", "%", "&", "|", "^", "<<", ">>"
	a, b  *exprNode
	leaf  int64 // literal or variable index (op == "v")
	isVar bool
}

func genExpr(r *rand.Rand, depth int) *exprNode {
	if depth <= 0 || r.Intn(3) == 0 {
		if r.Intn(2) == 0 {
			return &exprNode{leaf: int64(r.Intn(2001) - 1000)}
		}
		return &exprNode{isVar: true, leaf: int64(r.Intn(4))}
	}
	ops := []string{"+", "-", "*", "%", "&", "|", "^", "<<", ">>"}
	return &exprNode{
		op: ops[r.Intn(len(ops))],
		a:  genExpr(r, depth-1),
		b:  genExpr(r, depth-1),
	}
}

func (e *exprNode) text() string {
	if e.op == "" {
		if e.isVar {
			return fmt.Sprintf("v%d", e.leaf)
		}
		return fmt.Sprintf("(%d)", e.leaf)
	}
	if e.op == "%" {
		// Guard against zero/negative modulo UB: (|b| % 9) + 1.
		return fmt.Sprintf("(%s %%%% ((%s %%%% 9) * (%s %%%% 9) + 1))",
			e.a.text(), e.b.text(), e.b.text())
	}
	if e.op == "<<" || e.op == ">>" {
		return fmt.Sprintf("(%s %s ((%s %%%% 8) * (%s %%%% 8)))",
			e.a.text(), e.op, e.b.text(), e.b.text())
	}
	return fmt.Sprintf("(%s %s %s)", e.a.text(), e.op, e.b.text())
}

func (e *exprNode) eval(vars []int64) int64 {
	if e.op == "" {
		if e.isVar {
			return vars[e.leaf]
		}
		return e.leaf
	}
	a := e.a.eval(vars)
	b := e.b.eval(vars)
	switch e.op {
	case "+":
		return a + b
	case "-":
		return a - b
	case "*":
		return a * b
	case "%":
		m := (b%9)*(b%9) + 1
		return a % m
	case "<<":
		return a << uint(((b%8)*(b%8))&63)
	case ">>":
		return a >> uint(((b%8)*(b%8))&63)
	case "&":
		return a & b
	case "|":
		return a | b
	case "^":
		return a ^ b
	}
	panic("bad op")
}

// TestArithmeticOracleFuzz compiles randomly generated integer expression
// programs and compares the simulator's printed results against direct Go
// evaluation — bit-exact 64-bit semantics, including shifts and negative
// modulo.
func TestArithmeticOracleFuzz(t *testing.T) {
	trials := 80
	if testing.Short() {
		trials = 15
	}
	for seed := 0; seed < trials; seed++ {
		r := rand.New(rand.NewSource(int64(seed) + 1000))
		vars := []int64{
			int64(r.Intn(1000) - 500), int64(r.Intn(1000) - 500),
			int64(r.Intn(1000) - 500), int64(r.Intn(1000) - 500),
		}
		nexprs := 1 + r.Intn(4)
		var body strings.Builder
		exprs := make([]*exprNode, nexprs)
		for i := range exprs {
			exprs[i] = genExpr(r, 3+r.Intn(3))
			fmt.Fprintf(&body, "\tprint_int(%s);\n", fmt.Sprintf(exprs[i].text()))
		}
		src := fmt.Sprintf(`
int main() {
	int v0; int v1; int v2; int v3;
	v0 = %d; v1 = %d; v2 = %d; v3 = %d;
%s	return 0;
}
`, vars[0], vars[1], vars[2], vars[3], body.String())
		var want strings.Builder
		for _, e := range exprs {
			fmt.Fprintf(&want, "%d\n", e.eval(vars))
		}
		for _, optimize := range []bool{false, true} {
			res, err := compileAndRun("oracle.ec", src, optimize, 1)
			if err != nil {
				t.Fatalf("seed %d optimize=%v: %v\n%s", seed, optimize, err, src)
			}
			if res.Output != want.String() {
				t.Errorf("seed %d optimize=%v: got %q want %q\n%s",
					seed, optimize, res.Output, want.String(), src)
			}
		}
	}
}

// TestDoubleOracle spot-checks floating-point expression evaluation against
// Go's float64 semantics.
func TestDoubleOracle(t *testing.T) {
	cases := []struct {
		expr string
		want float64
	}{
		{"1.5 + 2.25", 3.75},
		{"10.0 / 4.0", 2.5},
		{"2.0 * 3.5 - 1.25", 5.75},
		{"sqrt(2.0) * sqrt(2.0)", 2.0000000000000004},
		{"fabs(0.0 - 7.5)", 7.5},
		{"dbl(7) / 2.0", 3.5},
		{"1.0 / 3.0", 0.3333333333333333},
	}
	var body, want strings.Builder
	for _, c := range cases {
		fmt.Fprintf(&body, "\tprint_double(%s);\n", c.expr)
		fmt.Fprintf(&want, "%.6f\n", c.want)
	}
	src := fmt.Sprintf("int main() {\n%s\treturn 0;\n}\n", body.String())
	res, err := compileAndRun("dbl.ec", src, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != want.String() {
		t.Errorf("got:\n%s\nwant:\n%s", res.Output, want.String())
	}
}
