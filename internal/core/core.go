// Package core is the compiler pipeline facade for this reproduction of
// Zhu & Hendren, "Communication Optimizations for Parallel C Programs"
// (PLDI 1998). It wires the front end, semantic analysis, SIMPLE lowering,
// the supporting analyses (points-to, read/write sets, locality), and the
// paper's communication optimization (possible-placement analysis +
// communication selection) into a single Compile call, exposing every
// intermediate artifact for inspection, testing, and execution on the
// EARTH-MANNA simulator.
package core

import (
	"sort"
	"sync"

	"repro/internal/cache"
	"repro/internal/commsel"
	"repro/internal/earthc"
	"repro/internal/locality"
	"repro/internal/metrics"
	"repro/internal/placement"
	"repro/internal/pointsto"
	"repro/internal/profile"
	"repro/internal/rwsets"
	"repro/internal/sema"
	"repro/internal/simple"
	"repro/internal/threaded"
	"repro/internal/trace"
)

// Options configure compilation.
type Options struct {
	// Optimize enables the communication optimization (the paper's Phase
	// II). When false, the program is compiled "simple": every remote
	// access stays at its original statement as a synchronous operation.
	Optimize bool
	// Sel tunes the communication selection heuristics; zero values take
	// the paper's defaults (block threshold 3).
	Sel commsel.Options
	// NoInline disables the Phase I local function inliner (it normally
	// runs for both simple and optimized builds, as in McCAT).
	NoInline bool
	// Inline tunes the inliner.
	Inline earthc.InlineOptions
	// ReorderFields enables the paper's suggested further work: struct
	// fields are permuted so remotely-accessed fields sit together,
	// shrinking the contiguous span a blocked transfer must move. The
	// program is compiled once to collect access counts, then recompiled
	// with the permuted layouts.
	ReorderFields bool
	// Cache, when non-nil, memoizes compiles across Do calls (see
	// internal/cache): identical (options, profile, source) submissions
	// return the same immutable unit, and edited sources reuse the
	// per-function artifacts of functions whose content hash and analysis
	// facts are unchanged. Per-request policy (bypass, no-store, no
	// incremental reuse) rides on CompileRequest.Cache. A cache is safe to
	// share between pipelines and goroutines.
	Cache *cache.Cache
	// Workers bounds the worker pool used to fan the per-function analysis
	// and transformation phases (points-to constraint generation, read/write
	// sets, locality, placement, communication selection) across goroutines.
	// 0 (or negative) means GOMAXPROCS; 1 forces a fully sequential compile.
	// The emitted SIMPLE form, report, and statistics counters are identical
	// for every worker count — parallel results are merged in deterministic
	// function order.
	Workers int
	// Stats collects per-phase compiler timings and communication
	// optimization counters on the compiled unit (Unit.Stats).
	Stats bool
	// Trace, when non-nil, receives simulator events from every run the
	// pipeline performs (see internal/trace). Tracing is purely
	// observational: a traced run produces a bit-identical Result to an
	// untraced one.
	Trace *trace.Recorder
	// Metrics, when non-nil, receives live telemetry from every compile and
	// run the pipeline performs (see internal/metrics): compile counts and
	// per-phase timing histograms, run counts, simulated-time and guest-work
	// counters. Run-derived metrics record only simulated quantities, so for
	// a fixed unit + RunConfig the registry contents are deterministic. Like
	// Trace, a nil registry costs nothing.
	Metrics *metrics.Registry
}

// Unit is a compiled translation unit with all intermediate artifacts.
type Unit struct {
	Name      string
	File      *earthc.File
	Sema      *sema.Program
	Simple    *simple.Program
	PointsTo  *pointsto.Result
	RWSets    *rwsets.Result
	Locality  *locality.Result
	Placement *placement.Result // nil unless optimizing
	Report    *commsel.Report   // nil unless optimizing
	// SourceHash keys profiles to this unit's source text ("" when the unit
	// was compiled from a constructed AST rather than source).
	SourceHash string
	// Warnings are non-fatal compilation notes (e.g. a stale profile).
	Warnings []string
	// Stats holds per-phase timings and optimization counters; nil unless
	// the pipeline's Stats option was on.
	Stats *trace.CompileStats

	// tcache memoizes generated threaded code per codegen option set:
	// generation is deterministic and the program is immutable once built,
	// so repeated Runs of one unit reuse the same code. Guarded by tmu so a
	// unit can be driven from several goroutines.
	tmu    sync.Mutex
	tcache map[threaded.Options]*threaded.Program
}

// Profiles implement placement.FreqProvider directly.
var _ placement.FreqProvider = (*profile.Data)(nil)

// reorderStructFields permutes each struct's fields so the most frequently
// remotely-accessed ones are contiguous at the front (stable by original
// order on ties). Returns whether any definition changed.
func reorderStructFields(file *earthc.File, u *Unit) bool {
	// Count remote accesses per (struct, top-level field).
	counts := make(map[string]map[string]int)
	bump := func(p *simple.Var, off int) {
		if !u.Locality.RemoteLoad(p) {
			return
		}
		layout := u.Simple.Structs[pointeeName(p)]
		if layout == nil {
			return
		}
		// Find the top-level field containing the word offset.
		for _, fname := range layout.Fields {
			fo := layout.Offsets[fname]
			if off >= fo && off < fo+layout.FieldSizes[fname] {
				m := counts[layout.Name]
				if m == nil {
					m = make(map[string]int)
					counts[layout.Name] = m
				}
				m[fname]++
				return
			}
		}
	}
	for _, fn := range u.Simple.Funcs {
		simple.WalkBasics(fn.Body, func(b *simple.Basic) {
			if b.Kind != simple.KAssign {
				return
			}
			if ld, ok := b.Rhs.(simple.LoadRV); ok {
				bump(ld.P, ld.Off)
			}
			if stv, ok := b.Lhs.(simple.StoreLV); ok {
				bump(stv.P, stv.Off)
			}
		})
	}
	changed := false
	for _, def := range file.Structs {
		m := counts[def.Name]
		if len(m) == 0 {
			continue
		}
		orig := make([]*earthc.Field, len(def.Fields))
		copy(orig, def.Fields)
		pos := make(map[*earthc.Field]int, len(def.Fields))
		for i, f := range def.Fields {
			pos[f] = i
		}
		sort.SliceStable(def.Fields, func(i, j int) bool {
			ci, cj := m[def.Fields[i].Name], m[def.Fields[j].Name]
			if ci != cj {
				return ci > cj
			}
			return pos[def.Fields[i]] < pos[def.Fields[j]]
		})
		for i := range def.Fields {
			if def.Fields[i] != orig[i] {
				changed = true
				break
			}
		}
	}
	return changed
}

func pointeeName(p *simple.Var) string {
	pt, ok := p.Type.(*earthc.PtrType)
	if !ok {
		return ""
	}
	sr, ok := pt.Elem.(*earthc.StructRef)
	if !ok {
		return ""
	}
	return sr.Name
}

// MustCompile compiles or panics; for tests and embedded benchmarks.
//
// Deprecated: thin wrapper over Pipeline.Do, kept for call-site brevity.
// New code should build a CompileRequest and call Do, which also exposes
// the cache outcome.
func MustCompile(name, src string, opt Options) *Unit {
	res, err := NewPipeline(opt).Do(CompileRequest{Name: name, Source: src})
	if err != nil {
		panic(err)
	}
	return res.Unit
}
