package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cache"
)

// Three-function program, revision 1. The revisions below edit exactly one
// function each, in ways chosen to exercise the incremental cache's two
// gates (the function content hash and the analysis-facts digest).
const incHeader = `
struct Point {
	double x;
	double y;
	struct Point *next;
};
`

const incBuildV1 = `
Point *build(int n) {
	Point *head;
	Point *p;
	int i;
	head = NULL;
	for (i = 0; i < n; i++) {
		p = alloc_on(Point, 1);
		p->x = dbl(i);
		p->y = dbl(i * 2);
		p->next = head;
		head = p;
	}
	return head;
}
`

// Revision 2: build's arithmetic changes (i*2 -> i*3). Its content hash
// changes but its effect summary — which fields of which objects it reads
// and writes — does not, so callers' facts digests are untouched.
const incBuildV2 = `
Point *build(int n) {
	Point *head;
	Point *p;
	int i;
	head = NULL;
	for (i = 0; i < n; i++) {
		p = alloc_on(Point, 1);
		p->x = dbl(i);
		p->y = dbl(i * 3);
		p->next = head;
		head = p;
	}
	return head;
}
`

const incSumV1 = `
double sumlist(Point *p) {
	double s;
	s = 0.0;
	while (p != NULL) {
		s = s + p->x + p->y;
		p = p->next;
	}
	return s;
}
`

const incMain = `
int main() {
	Point *head;
	double s;
	head = build(20);
	s = sumlist(head);
	print_double(s);
	return trunc(s);
}
`

// incOpts compiles without inlining so the three functions stay distinct
// compilation units for the per-function cache.
func incOpts(c *cache.Cache) Options {
	return Options{Optimize: true, NoInline: true, Cache: c}
}

// TestIncrementalReuseOnEdit: editing one function recompiles only that
// function; the untouched ones are served from the per-function cache, and
// the result is byte-identical to a cold compile of the edited source.
func TestIncrementalReuseOnEdit(t *testing.T) {
	v1 := incHeader + incBuildV1 + incSumV1 + incMain
	v2 := incHeader + incBuildV2 + incSumV1 + incMain
	c := cache.New(0, "")
	p := NewPipeline(incOpts(c))

	r1, err := p.Do(CompileRequest{Name: "inc.ec", Source: v1})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Hit || r1.FuncsReused != 0 || r1.FuncsRecompiled != 3 {
		t.Fatalf("cold compile: hit=%t reused=%d recompiled=%d, want 0/3",
			r1.Hit, r1.FuncsReused, r1.FuncsRecompiled)
	}

	r2, err := p.Do(CompileRequest{Name: "inc.ec", Source: v2})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Hit {
		t.Fatal("edited source reported a whole-unit hit")
	}
	if r2.FuncsRecompiled != 1 || r2.FuncsReused != 2 {
		t.Errorf("edit of build: reused=%d recompiled=%d, want 2 reused, 1 recompiled",
			r2.FuncsReused, r2.FuncsRecompiled)
	}

	// Correctness contract: the incremental build of v2 is byte-identical to
	// a cold build of v2 — same disassembly, same report, same visible
	// behavior on a real run.
	cold, err := NewPipeline(incOpts(nil)).Do(CompileRequest{Name: "inc.ec", Source: v2})
	if err != nil {
		t.Fatal(err)
	}
	warmD, err := r2.Unit.Disasm()
	if err != nil {
		t.Fatal(err)
	}
	coldD, err := cold.Unit.Disasm()
	if err != nil {
		t.Fatal(err)
	}
	if warmD != coldD {
		t.Errorf("incremental disassembly differs from cold:\n--- warm ---\n%s\n--- cold ---\n%s", warmD, coldD)
	}
	if w, c := r2.Unit.Report.String(), cold.Unit.Report.String(); w != c {
		t.Errorf("incremental report differs from cold:\n%s\nvs\n%s", w, c)
	}
	warmRes, err := runUnit(r2.Unit, RunConfig{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	coldRes, err := runUnit(cold.Unit, RunConfig{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if warmRes.Visible() != coldRes.Visible() {
		t.Errorf("incremental run visible state differs from cold:\n%s\nvs\n%s",
			warmRes.Visible(), coldRes.Visible())
	}
}

// TestIncrementalDependentInvalidation: an edit that changes a function's
// effect summary (sumlist stops reading p->y) must also recompile its
// callers — their facts digests consumed that summary — while unrelated
// functions are still reused.
func TestIncrementalDependentInvalidation(t *testing.T) {
	v1 := incHeader + incBuildV1 + incSumV1 + incMain
	sumV2 := strings.Replace(incSumV1, "s + p->x + p->y", "s + p->x", 1)
	if sumV2 == incSumV1 {
		t.Fatal("test bug: edit did not apply")
	}
	v2 := incHeader + incBuildV1 + sumV2 + incMain
	c := cache.New(0, "")
	p := NewPipeline(incOpts(c))
	if _, err := p.Do(CompileRequest{Name: "dep.ec", Source: v1}); err != nil {
		t.Fatal(err)
	}
	r2, err := p.Do(CompileRequest{Name: "dep.ec", Source: v2})
	if err != nil {
		t.Fatal(err)
	}
	// sumlist must recompile (content changed); build must be reused (it
	// neither changed nor calls sumlist). Whether main recompiles depends on
	// how precisely the facts digest captures the callee summary — it may
	// not change if the summary is field-insensitive — so assert only the
	// required invalidation and the required reuse.
	if r2.FuncsRecompiled < 1 {
		t.Errorf("no function recompiled after a semantic edit (reused=%d)", r2.FuncsReused)
	}
	if r2.FuncsReused < 1 {
		t.Errorf("build not reused after an unrelated edit (recompiled=%d)", r2.FuncsRecompiled)
	}
	cold, err := NewPipeline(incOpts(nil)).Do(CompileRequest{Name: "dep.ec", Source: v2})
	if err != nil {
		t.Fatal(err)
	}
	warmD, _ := r2.Unit.Disasm()
	coldD, _ := cold.Unit.Disasm()
	if warmD != coldD {
		t.Errorf("incremental disassembly differs from cold after dependent edit")
	}
}

// TestIncrementalEnvChange: adding a global changes the shared environment
// hash, so no previous per-function record may be reused.
func TestIncrementalEnvChange(t *testing.T) {
	v1 := incHeader + incBuildV1 + incSumV1 + incMain
	v2 := incHeader + "\nint total;\n" + incBuildV1 + incSumV1 + incMain
	c := cache.New(0, "")
	p := NewPipeline(incOpts(c))
	if _, err := p.Do(CompileRequest{Name: "env.ec", Source: v1}); err != nil {
		t.Fatal(err)
	}
	r2, err := p.Do(CompileRequest{Name: "env.ec", Source: v2})
	if err != nil {
		t.Fatal(err)
	}
	if r2.FuncsReused != 0 {
		t.Errorf("reused %d functions across an environment change", r2.FuncsReused)
	}
}

// TestUnitCacheHit: an identical resubmission is served whole — the very
// same *Unit — and reports a hit.
func TestUnitCacheHit(t *testing.T) {
	src := incHeader + incBuildV1 + incSumV1 + incMain
	c := cache.New(0, "")
	p := NewPipeline(incOpts(c))
	r1, err := p.Do(CompileRequest{Name: "hit.ec", Source: src})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := p.Do(CompileRequest{Name: "hit.ec", Source: src})
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Hit || r2.Unit != r1.Unit {
		t.Errorf("identical resubmission: hit=%t, same unit=%t", r2.Hit, r2.Unit == r1.Unit)
	}
	if r2.FuncsReused != 3 || r2.FuncsRecompiled != 0 {
		t.Errorf("unit hit counters: reused=%d recompiled=%d", r2.FuncsReused, r2.FuncsRecompiled)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("cache stats = %+v, want 1 hit, 1 miss", st)
	}
}

// TestCachePolicyBypass: Bypass compiles cold even against a warm cache and
// leaves no new state behind.
func TestCachePolicyBypass(t *testing.T) {
	src := incHeader + incBuildV1 + incSumV1 + incMain
	c := cache.New(0, "")
	p := NewPipeline(incOpts(c))
	if _, err := p.Do(CompileRequest{Name: "byp.ec", Source: src}); err != nil {
		t.Fatal(err)
	}
	r, err := p.Do(CompileRequest{Name: "byp.ec", Source: src, Cache: CachePolicy{Bypass: true}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Hit || r.FuncsReused != 0 {
		t.Errorf("bypass compile consulted the cache: hit=%t reused=%d", r.Hit, r.FuncsReused)
	}
}

// TestDiskArtifactLifecycle: a -cache-dir compile persists an artifact whose
// disassembly matches the unit's; a corrupted entry degrades to a miss and a
// recompile stores a fresh valid one.
func TestDiskArtifactLifecycle(t *testing.T) {
	src := incHeader + incBuildV1 + incSumV1 + incMain
	dir := t.TempDir()
	c := cache.New(0, dir)
	p := NewPipeline(incOpts(c))
	req := CompileRequest{Name: "disk.ec", Source: src}
	r, err := p.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	key := p.CacheKey(req)
	if key == "" || key != r.Key {
		t.Fatalf("CacheKey %q != Do's key %q", key, r.Key)
	}
	a, ok := c.LoadArtifact(key)
	if !ok {
		t.Fatal("compile under -cache-dir stored no artifact")
	}
	d, err := r.Unit.Disasm()
	if err != nil {
		t.Fatal(err)
	}
	if a.Disasm != d {
		t.Error("persisted disassembly differs from the unit's")
	}

	// Corrupt every stored entry; the next load must miss cleanly and the
	// next compile (fresh pipeline+cache, as after a process restart) must
	// succeed and heal the store.
	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) == 0 {
		t.Fatalf("cache dir unreadable or empty: %v", err)
	}
	for _, e := range ents {
		if err := os.WriteFile(filepath.Join(dir, e.Name()), []byte("truncated"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	c2 := cache.New(0, dir)
	if _, ok := c2.LoadArtifact(key); ok {
		t.Fatal("corrupted artifact validated")
	}
	p2 := NewPipeline(Options{Optimize: true, NoInline: true, Cache: c2})
	r2, err := p2.Do(req)
	if err != nil {
		t.Fatalf("cold fallback after corruption failed: %v", err)
	}
	d2, err := r2.Unit.Disasm()
	if err != nil {
		t.Fatal(err)
	}
	if d2 != d {
		t.Error("post-corruption recompile produced different disassembly")
	}
	if a2, ok := c2.LoadArtifact(key); !ok || a2.Disasm != d {
		t.Error("recompile did not re-store a valid artifact")
	}
}
