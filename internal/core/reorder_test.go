package core

import (
	"strings"
	"testing"

	"repro/internal/simple"
)

// reorderSrc scatters the three hot fields across a wide struct, so a
// blocked fetch of the needed span would be too wasteful without
// reordering.
const reorderSrc = `
struct Rec {
	int hot1;
	int cold1; int cold2; int cold3; int cold4; int cold5;
	int hot2;
	int cold6; int cold7; int cold8; int cold9; int cold10;
	int hot3;
};

int consume(Rec *r) {
	return r->hot1 + r->hot2 + r->hot3;
}

int main() {
	Rec *r;
	int i;
	int s;
	r = alloc_on(Rec, num_nodes() - 1);
	r->hot1 = 1;
	r->hot2 = 2;
	r->hot3 = 3;
	s = 0;
	for (i = 0; i < 40; i++) {
		s = s + consume(r);
	}
	print_int(s);
	return s;
}
`

// TestReorderFieldsClustersHotFields: the extension moves the three hot
// fields to offsets 0..2, turning a 13-word span into a 3-word block.
func TestReorderFieldsClustersHotFields(t *testing.T) {
	plain, err := compile("r.ec", reorderSrc, Options{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	reordered, err := compile("r.ec", reorderSrc, Options{Optimize: true, ReorderFields: true})
	if err != nil {
		t.Fatal(err)
	}

	lay := reordered.Simple.Structs["Rec"]
	for _, hot := range []string{"hot1", "hot2", "hot3"} {
		if lay.Offsets[hot] > 2 {
			t.Errorf("%s should be clustered at the front, offset %d", hot, lay.Offsets[hot])
		}
	}

	// Without reordering the span is too wasteful to block; with it the
	// three fields block.
	plainOut := simple.FuncString(plain.Simple.FuncByName("consume"), simple.PrintOptions{})
	reordOut := simple.FuncString(reordered.Simple.FuncByName("consume"), simple.PrintOptions{})
	if strings.Contains(plainOut, "blkmov") {
		t.Errorf("scattered layout should not block:\n%s", plainOut)
	}
	if !strings.Contains(reordOut, "blkmov(r, &bcomm1, 3)") {
		t.Errorf("reordered layout should block a 3-word span:\n%s", reordOut)
	}

	// Semantics preserved, and the reordered version is no slower.
	pres, err := runUnit(plain, RunConfig{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	rres, err := runUnit(reordered, RunConfig{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if pres.Output != rres.Output {
		t.Fatalf("reordering changed results: %q vs %q", pres.Output, rres.Output)
	}
	// The mechanism claim: reordering lets blocking collapse the scalar
	// operations into block moves (whether that wins time depends on how
	// often the block amortizes — here the hoisted reads ran only once, so
	// timing is near parity; the count reduction is the observable).
	plainOps := pres.Counts.RemoteReads + pres.Counts.RemoteWrites
	reordOps := rres.Counts.RemoteReads + rres.Counts.RemoteWrites
	if reordOps >= plainOps || rres.Counts.RemoteBlk == 0 {
		t.Errorf("reordering should trade scalar ops (%d -> %d) for block moves (%d)",
			plainOps, reordOps, rres.Counts.RemoteBlk)
	}
	t.Logf("plain %d ns (%s) -> reordered %d ns (%s)",
		pres.Time, pres.Counts, rres.Time, rres.Counts)
}

// TestReorderFieldsSemanticsOnBenchmark: reordering must not change any
// benchmark's output (health exercises nested structs, which reordering
// moves as units).
func TestReorderFieldsIdempotentWhenAligned(t *testing.T) {
	src := `
struct P { int a; int b; };
int main() {
	P *p;
	p = alloc(P);
	p->a = 1;
	p->b = 2;
	return p->a + p->b;
}
`
	u, err := compile("r.ec", src, Options{Optimize: true, ReorderFields: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := runUnit(u, RunConfig{Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.MainRet != 3 {
		t.Errorf("got %d want 3", res.MainRet)
	}
}
