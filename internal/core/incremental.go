package core

import (
	"time"

	"repro/internal/cache"
	"repro/internal/commsel"
	"repro/internal/placement"
	"repro/internal/simple"
	"repro/internal/trace"
)

// incCtx threads the incremental-compile state through build: the cache,
// the program's state key, and the result the per-function outcome is
// reported on.
type incCtx struct {
	c        *cache.Cache
	stateKey string
	res      *CompileResult
	noStore  bool
	envHash  string
}

// optimizeIncremental replaces the whole-program placement + selection
// phases with per-function ones gated by the cache.
//
// Soundness: the front end and the whole-program analyses (points-to,
// read/write sets, locality) have already run fresh over the pristine
// program — they are global fixpoints and transformed bodies must never
// feed them. What is skipped per function is only the transformation
// (placement analysis + communication selection), which is a deterministic
// function of the function's pristine content (cache.FuncHash), the shared
// environment (cache.EnvHash, checked in build), and the analysis facts it
// consults (cache.FactsDigest, computed from this run's fresh results). A
// function whose three keys match the previous compile's record gets that
// record's transformed body spliced in — referencing the same injected
// global Var objects — with its locality verdicts installed for code
// generation; everything else is transformed anew, one function per
// sub-program (placement and selection are per-function independent, as
// established by the worker-count determinism contract, so the result is
// byte-identical to a whole-program cold compile).
func (p *Pipeline) optimizeIncremental(u *Unit, sp *simple.Program,
	fp placement.FreqProvider, sel commsel.Options, st *trace.CompileStats,
	inc *incCtx, prev *cache.ProgramState) {
	qual := cache.Qualify(sp)
	n := len(sp.Funcs)
	recs := make([]*cache.FuncRecord, n)
	reuse := make([]bool, n)
	for i, f := range sp.Funcs {
		h := cache.FuncHash(f, sp)
		d := cache.FactsDigest(f, sp, u.PointsTo, u.RWSets, u.Locality, qual)
		if prev != nil {
			if r := prev.Funcs[f.Name]; r != nil && r.Fn != nil && r.Hash == h && r.Digest == d {
				recs[i], reuse[i] = r, true
				continue
			}
		}
		recs[i] = &cache.FuncRecord{Hash: h, Digest: d}
	}
	var tPl, tSel time.Duration
	for i, f := range sp.Funcs {
		if reuse[i] {
			continue
		}
		one := &simple.Program{
			Funcs:      []*simple.Func{f},
			Globals:    sp.Globals,
			GlobalInit: sp.GlobalInit,
			Structs:    sp.Structs,
		}
		t0 := time.Now()
		pl := placement.AnalyzeProfiledP(one, u.RWSets, u.Locality, fp, nil)
		tPl += time.Since(t0)
		t0 = time.Now()
		rep := commsel.TransformP(one, pl, u.RWSets, u.Locality, sel, nil)
		tSel += time.Since(t0)
		r := recs[i]
		r.Fn = f
		r.Reads, r.Writes = pl.Reads, pl.Writes
		r.EntryReads, r.ExitWrites = pl.EntryReads[f], pl.ExitWrites[f]
		r.Report = rep.Funcs[0]
		r.Verdicts = cache.CollectVerdicts(f, u.Locality)
	}
	st.AddPhase("placement", tPl)
	st.AddPhase("commsel", tSel)

	merged := &placement.Result{
		Reads:      make(map[simple.Stmt]*placement.Set),
		Writes:     make(map[simple.Stmt]*placement.Set),
		EntryReads: make(map[*simple.Func]*placement.Set, n),
		ExitWrites: make(map[*simple.Func]*placement.Set, n),
	}
	rep := &commsel.Report{Funcs: make([]*commsel.FuncReport, n)}
	reused, recompiled := 0, 0
	for i := range sp.Funcs {
		r := recs[i]
		if reuse[i] {
			sp.Funcs[i] = r.Fn
			for _, v := range r.Verdicts {
				u.Locality.Set(v, true)
			}
			reused++
		} else {
			recompiled++
		}
		for s, set := range r.Reads {
			merged.Reads[s] = set
		}
		for s, set := range r.Writes {
			merged.Writes[s] = set
		}
		merged.EntryReads[r.Fn] = r.EntryReads
		merged.ExitWrites[r.Fn] = r.ExitWrites
		rep.Funcs[i] = r.Report
	}
	u.Placement = merged
	u.Report = rep
	inc.res.FuncsReused, inc.res.FuncsRecompiled = reused, recompiled
	inc.c.CountFuncs(reused, recompiled)
	if reg := p.opt.Metrics; reg != nil {
		reg.Counter("earth_cache_funcs_reused_total",
			"Functions whose cached transform artifacts were spliced into an incremental compile.").Add(int64(reused))
		reg.Counter("earth_cache_funcs_recompiled_total",
			"Functions transformed from scratch during incremental compiles.").Add(int64(recompiled))
	}
	if !inc.noStore {
		funcs := make(map[string]*cache.FuncRecord, n)
		for i, r := range recs {
			funcs[sp.Funcs[i].Name] = r
		}
		inc.c.SetState(inc.stateKey, &cache.ProgramState{
			EnvHash: inc.envHash,
			Globals: sp.Globals,
			Funcs:   funcs,
		})
	}
}
