package core

import (
	"testing"

	"repro/internal/simple"
)

const figure7Src = `
struct Point {
	double x;
	double y;
	struct Point *next;
};

double f(double ax, double ay, double bx, double by) {
	double dx;
	double dy;
	dx = ax - bx;
	dy = ay - by;
	return sqrt(dx * dx + dy * dy);
}

double example(Point *head, Point *t, double epsilon) {
	Point *p;
	Point *close;
	double ax; double ay; double bx; double by;
	double cx; double tx; double diffx;
	double cy; double ty; double diffy;
	double dist;
	close = NULL;
	p = head;
	while (p != NULL) {
		ax = p->x;
		ay = p->y;
		bx = t->x;
		by = t->y;
		dist = f(ax, ay, bx, by);
		if (dist < epsilon) close = p;
		p = p->next;
	}
	cx = close->x;
	tx = t->x;
	diffx = cx - tx;
	cy = close->y;
	ty = t->y;
	diffy = cy - ty;
	return diffx + diffy;
}
`

func TestSmokeFigure7(t *testing.T) {
	u, err := compile("fig7.ec", figure7Src, Options{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	fn := u.Simple.FuncByName("example")
	if fn == nil {
		t.Fatal("no function example")
	}
	t.Log("\n" + simple.FuncString(fn, simple.PrintOptions{Labels: true}))
	t.Log(u.Report.String())
}

func TestSmokeUnoptimized(t *testing.T) {
	u, err := compile("fig7.ec", figure7Src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fn := u.Simple.FuncByName("example")
	t.Log("\n" + simple.FuncString(fn, simple.PrintOptions{Labels: true}))
}
