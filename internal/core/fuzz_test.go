package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// progGen generates random but well-formed EARTH-C programs that exercise
// the communication optimizer: linked structures spread across nodes, field
// reads and writes through possibly-remote pointers, conditionals, list
// walks, struct copies, placed calls, and shared counters. Programs always
// terminate (loops are canonical list walks) and never divide by zero
// (divisors are (x % k) + k forms).
type progGen struct {
	r     *rand.Rand
	buf   strings.Builder
	depth int
}

func (g *progGen) pick(options ...string) string {
	return options[g.r.Intn(len(options))]
}

// intExpr produces an int-valued expression over the in-scope names.
func (g *progGen) intExpr(depth int, names []string) string {
	if depth <= 0 || g.r.Intn(3) == 0 {
		switch g.r.Intn(3) {
		case 0:
			return fmt.Sprintf("%d", g.r.Intn(200)-100)
		default:
			return names[g.r.Intn(len(names))]
		}
	}
	a := g.intExpr(depth-1, names)
	b := g.intExpr(depth-1, names)
	switch g.r.Intn(5) {
	case 0:
		return fmt.Sprintf("(%s + %s)", a, b)
	case 1:
		return fmt.Sprintf("(%s - %s)", a, b)
	case 2:
		return fmt.Sprintf("(%s * %s)", a, b)
	case 3:
		// Safe modulo: |b| % k + 1 is never zero.
		return fmt.Sprintf("(%s %% ((%s %% 7) * (%s %% 7) + 1))", a, b, b)
	default:
		return fmt.Sprintf("(%s ^ %s)", a, b)
	}
}

func (g *progGen) cond(names []string) string {
	op := g.pick("<", ">", "<=", ">=", "==", "!=")
	return fmt.Sprintf("%s %s %s", g.intExpr(1, names), op, g.intExpr(1, names))
}

func (g *progGen) line(format string, args ...any) {
	g.buf.WriteString(strings.Repeat("\t", g.depth))
	fmt.Fprintf(&g.buf, format, args...)
	g.buf.WriteString("\n")
}

// stmts emits n random statements; ptr names the current cursor variable
// (a possibly-remote list node), anchor a loop-invariant node.
func (g *progGen) stmts(n int, ptr, anchor string, ints []string, nested int) {
	fields := []string{"a", "b", "c"}
	for i := 0; i < n; i++ {
		names := append([]string{}, ints...)
		names = append(names,
			ptr+"->"+fields[g.r.Intn(3)],
			anchor+"->"+fields[g.r.Intn(3)])
		switch g.r.Intn(8) {
		case 0, 1:
			g.line("%s = %s;", ints[g.r.Intn(len(ints))], g.intExpr(2, names))
		case 2:
			g.line("%s->%s = %s;", ptr, fields[g.r.Intn(3)], g.intExpr(2, names))
		case 3:
			g.line("%s->%s = %s;", anchor, fields[g.r.Intn(3)], g.intExpr(2, names))
		case 4:
			if nested > 0 {
				g.line("if (%s) {", g.cond(names))
				g.depth++
				g.stmts(1+g.r.Intn(2), ptr, anchor, ints, nested-1)
				g.depth--
				if g.r.Intn(2) == 0 {
					g.line("} else {")
					g.depth++
					g.stmts(1+g.r.Intn(2), ptr, anchor, ints, nested-1)
					g.depth--
				}
				g.line("}")
			} else {
				g.line("%s = %s;", ints[g.r.Intn(len(ints))], g.intExpr(1, names))
			}
		case 5:
			// Struct copy through a local buffer.
			g.line("tmp = *%s;", g.pick(ptr, anchor))
			g.line("%s = tmp.a + tmp.b;", ints[g.r.Intn(len(ints))])
		case 6:
			g.line("%s->c = %s->a + %s->b;", ptr, ptr, ptr)
		default:
			g.line("%s = helper(%s, %s);", ints[g.r.Intn(len(ints))],
				g.intExpr(1, names), g.intExpr(1, names))
		}
	}
}

// generate builds a complete program from a seed.
func generateProgram(seed int64) string {
	g := &progGen{r: rand.New(rand.NewSource(seed))}
	g.line(`struct N {`)
	g.line(`	int a;`)
	g.line(`	int b;`)
	g.line(`	int c;`)
	g.line(`	struct N *next;`)
	g.line(`};`)
	g.line(``)
	g.line(`int helper(int x, int y) {`)
	g.line(`	if (x > y) return x - y;`)
	g.line(`	return y - x + 1;`)
	g.line(`}`)
	g.line(``)
	g.line(`int work(N *head, N *t) {`)
	g.depth++
	g.line(`N *p;`)
	g.line(`N tmp;`)
	g.line(`int i0; int i1; int i2;`)
	g.line(`i0 = 3; i1 = 5; i2 = 7;`)
	ints := []string{"i0", "i1", "i2"}
	// Straight-line prologue against the anchor.
	g.stmts(2+g.r.Intn(3), "t", "t", ints, 1)
	// One or two list walks.
	walks := 1 + g.r.Intn(2)
	for w := 0; w < walks; w++ {
		g.line(`p = head;`)
		g.line(`while (p != NULL) {`)
		g.depth++
		g.stmts(2+g.r.Intn(3), "p", "t", ints, 2)
		g.line(`p = p->next;`)
		g.depth--
		g.line(`}`)
	}
	g.line(`return i0 + i1 * 3 + i2 * 7;`)
	g.depth--
	g.line(`}`)
	g.line(``)
	g.line(`int main() {`)
	g.depth++
	g.line(`N *head;`)
	g.line(`N *p;`)
	g.line(`N *t;`)
	g.line(`int i;`)
	g.line(`int r;`)
	g.line(`int r1;`)
	g.line(`int r2;`)
	g.line(`int sum;`)
	g.line(`shared int acc;`)
	g.line(`head = NULL;`)
	n := 5 + g.r.Intn(8)
	g.line(`for (i = 0; i < %d; i++) {`, n)
	g.depth++
	g.line(`p = alloc_on(N, i %% num_nodes());`)
	g.line(`p->a = i * 3 + 1;`)
	g.line(`p->b = i * i - 4;`)
	g.line(`p->c = 0;`)
	g.line(`p->next = head;`)
	g.line(`head = p;`)
	g.depth--
	g.line(`}`)
	g.line(`t = alloc_on(N, num_nodes() - 1);`)
	g.line(`t->a = 11; t->b = 13; t->c = 17; t->next = NULL;`)
	g.line(`r = work(head, t);`)
	g.line(`sum = r;`)
	// Optionally exercise the parallel constructs: a forall reduction over
	// the list into a shared counter, and a parallel pair of placed calls.
	if g.r.Intn(2) == 0 {
		g.line(`writeto(&acc, 0);`)
		g.line(`forall (p = head; p != NULL; p = p->next) {`)
		g.depth++
		g.line(`addto(&acc, p->a %% 97 + p->b %% 89);`)
		g.depth--
		g.line(`}`)
		g.line(`sum = sum + valueof(&acc);`)
	}
	if g.r.Intn(2) == 0 {
		g.line(`{^`)
		g.depth++
		g.line(`r1 = helper(t->a, %d)@OWNER_OF(t);`, g.r.Intn(50))
		g.line(`r2 = helper(head->b, %d)@OWNER_OF(head);`, g.r.Intn(50))
		g.depth--
		g.line(`^}`)
		g.line(`sum = sum + r1 * 5 + r2;`)
	}
	g.line(`p = head;`)
	g.line(`while (p != NULL) {`)
	g.depth++
	g.line(`sum = sum + p->a + 2 * p->b + 3 * p->c;`)
	g.line(`p = p->next;`)
	g.depth--
	g.line(`}`)
	g.line(`sum = sum + t->a + 2 * t->b + 3 * t->c;`)
	g.line(`print_int(sum);`)
	g.line(`return sum;`)
	g.depth--
	g.line(`}`)
	return g.buf.String()
}

// TestOptimizerSemanticsFuzz is the central property test: for many random
// programs, the communication-optimized build must produce exactly the same
// output as the simple build, on one node and on several, and as the
// sequential baseline. This exercises read hoisting, redundancy
// elimination, blocking, write motion, and shadow unification against
// ground truth.
func TestOptimizerSemanticsFuzz(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 12
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			src := generateProgram(seed)
			var ref string
			first := true
			check := func(label string, optimize bool, nodes int, sequential bool) {
				opts := Options{Optimize: optimize}
				if label == "optimized/reordered" {
					opts.ReorderFields = true
				}
				u, err := compile("fuzz.ec", src, opts)
				if err != nil {
					t.Fatalf("%s: compile: %v\n--- source:\n%s", label, err, src)
				}
				res, err := runUnit(u, RunConfig{Nodes: nodes, Sequential: sequential})
				if err != nil {
					t.Fatalf("%s: run: %v\n--- source:\n%s", label, err, src)
				}
				if first {
					ref = res.Output
					first = false
					return
				}
				if res.Output != ref {
					t.Errorf("%s: output %q != reference %q\n--- source:\n%s",
						label, res.Output, ref, src)
				}
			}
			check("sequential", false, 1, true)
			check("simple/1", false, 1, false)
			check("simple/3", false, 3, false)
			check("optimized/1", true, 1, false)
			check("optimized/3", true, 3, false)
			check("optimized/reordered", true, 3, false)
		})
	}
}
