package core

import (
	"fmt"

	"repro/internal/earthsim"
	"repro/internal/threaded"
)

// Threaded generates threaded code for the unit (Phase III of the paper's
// compiler).
func (u *Unit) Threaded(opt threaded.Options) (*threaded.Program, error) {
	return threaded.Generate(u.Simple, u.Locality, opt)
}

// RunConfig selects how a compiled unit is executed on the simulator.
type RunConfig struct {
	Nodes int
	// Sequential selects the paper's "truly sequential" baseline: serialized
	// parallel constructs and direct local memory accesses (valid only with
	// Nodes == 1).
	Sequential bool
	// Machine overrides the simulator cost model; zero means the calibrated
	// EARTH-MANNA defaults.
	Machine *earthsim.Config
}

// Run generates threaded code and executes it on a simulated EARTH-MANNA
// machine, starting at main() on node 0.
func (u *Unit) Run(rc RunConfig) (*earthsim.Result, error) {
	if rc.Sequential && rc.Nodes > 1 {
		return nil, fmt.Errorf("core: the sequential baseline uses direct local memory accesses and is only valid on 1 node (got %d)", rc.Nodes)
	}
	tp, err := u.Threaded(threaded.Options{Sequential: rc.Sequential})
	if err != nil {
		return nil, err
	}
	cfg := earthsim.DefaultConfig(rc.Nodes)
	if rc.Machine != nil {
		cfg = *rc.Machine
		cfg.Nodes = rc.Nodes
	}
	return earthsim.New(tp, cfg).Run()
}

// CompileAndRun is a convenience for tests and examples: parse, optimize
// (or not), and run.
func CompileAndRun(name, src string, optimize bool, nodes int) (*earthsim.Result, error) {
	u, err := Compile(name, src, Options{Optimize: optimize})
	if err != nil {
		return nil, err
	}
	return u.Run(RunConfig{Nodes: nodes})
}
