package core

import (
	"fmt"

	"repro/internal/earthsim"
	"repro/internal/profile"
	"repro/internal/threaded"
)

// Threaded generates threaded code for the unit (Phase III of the paper's
// compiler).
func (u *Unit) Threaded(opt threaded.Options) (*threaded.Program, error) {
	return threaded.Generate(u.Simple, u.Locality, opt)
}

// RunConfig selects how a compiled unit is executed on the simulator.
type RunConfig struct {
	Nodes int
	// Sequential selects the paper's "truly sequential" baseline: serialized
	// parallel constructs and direct local memory accesses (valid only with
	// Nodes == 1).
	Sequential bool
	// Machine overrides the simulator cost model; zero means the calibrated
	// EARTH-MANNA defaults.
	Machine *earthsim.Config
	// Profile instruments the generated code so the run collects a
	// profile.Data (returned in Result.Profile; see internal/profile).
	Profile bool
}

// Run generates threaded code and executes it on a simulated EARTH-MANNA
// machine, starting at main() on node 0.
func (u *Unit) Run(rc RunConfig) (*earthsim.Result, error) {
	if rc.Sequential && rc.Nodes > 1 {
		return nil, fmt.Errorf("core: the sequential baseline uses direct local memory accesses and is only valid on 1 node (got %d)", rc.Nodes)
	}
	tp, err := u.Threaded(threaded.Options{Sequential: rc.Sequential, Profile: rc.Profile})
	if err != nil {
		return nil, err
	}
	cfg := earthsim.DefaultConfig(rc.Nodes)
	if rc.Machine != nil {
		cfg = *rc.Machine
		cfg.Nodes = rc.Nodes
	}
	res, err := earthsim.New(tp, cfg).Run()
	if err != nil {
		return nil, err
	}
	if res.Profile != nil {
		res.Profile.SourceHash = u.SourceHash
	}
	return res, nil
}

// CompileAndRun is a convenience for tests and examples: parse, optimize
// (or not), and run.
func CompileAndRun(name, src string, optimize bool, nodes int) (*earthsim.Result, error) {
	u, err := Compile(name, src, Options{Optimize: optimize})
	if err != nil {
		return nil, err
	}
	return u.Run(RunConfig{Nodes: nodes})
}

// CompileWithProfile runs the two-pass profile-guided flow: compile the
// program unoptimized with instrumentation, run it once under rc to collect
// a profile, then recompile optimizing with the measured frequencies. It
// returns the profile-guided unit and the profile it was built from.
func CompileWithProfile(name, src string, opt Options, rc RunConfig) (*Unit, *profile.Data, error) {
	genOpt := opt
	genOpt.Optimize = false
	genOpt.Profile = nil
	gu, err := Compile(name, src, genOpt)
	if err != nil {
		return nil, nil, err
	}
	grc := rc
	grc.Profile = true
	res, err := gu.Run(grc)
	if err != nil {
		return nil, nil, fmt.Errorf("core: instrumented run failed: %w", err)
	}
	if res.Profile == nil {
		return nil, nil, fmt.Errorf("core: instrumented run produced no profile")
	}
	useOpt := opt
	useOpt.Optimize = true
	useOpt.Profile = res.Profile
	u, err := Compile(name, src, useOpt)
	if err != nil {
		return nil, nil, err
	}
	return u, res.Profile, nil
}
