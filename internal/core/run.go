package core

import (
	"context"
	"time"

	"repro/internal/earthsim"
	"repro/internal/metrics"
	"repro/internal/threaded"
)

// Threaded generates threaded code for the unit (Phase III of the paper's
// compiler). Generation is deterministic and the resulting program is
// immutable, so the code for each option set is generated once and cached;
// repeated simulator Runs — and Runs from concurrent goroutines — share it.
func (u *Unit) Threaded(opt threaded.Options) (*threaded.Program, error) {
	u.tmu.Lock()
	defer u.tmu.Unlock()
	if p, ok := u.tcache[opt]; ok {
		return p, nil
	}
	p, err := threaded.Generate(u.Simple, u.Locality, opt)
	if err != nil {
		return nil, err
	}
	if u.tcache == nil {
		u.tcache = make(map[threaded.Options]*threaded.Program, 2)
	}
	u.tcache[opt] = p
	return p, nil
}

// RunConfig selects how a compiled unit is executed on the simulator.
type RunConfig struct {
	Nodes int
	// Sequential selects the paper's "truly sequential" baseline: serialized
	// parallel constructs and direct local memory accesses (valid only with
	// Nodes == 1).
	Sequential bool
	// Machine overrides the simulator cost model; nil means the calibrated
	// EARTH-MANNA defaults. Nodes always comes from the field above, so an
	// override built once (e.g. from earthsim.ParseOverrides) is reusable
	// across node counts.
	Machine *earthsim.Config
	// Profile instruments the generated code so the run collects a
	// profile.Data (returned in Result.Profile; see internal/profile).
	Profile bool
	// Fuel bounds total EU instructions (0 = unlimited); a run that exceeds
	// it fails with an error wrapping earthsim.ErrFuelExhausted rather than
	// hanging.
	Fuel int64
	// SimWorkers selects the simulator's sharded event loop (one event-loop
	// shard per simulated node, synchronized by conservative lookahead) and
	// bounds the goroutines driving it. 0 keeps the classic sequential loop;
	// see earthsim.Config.SimWorkers for the determinism contract.
	SimWorkers int
	// Deadline bounds host wall-clock time (0 = none); exceeding it fails
	// with an error wrapping earthsim.ErrDeadline.
	Deadline time.Duration
	// Context, when non-nil, cancels the run cooperatively: the simulator
	// polls it on the wall-clock cadence and fails with an error wrapping
	// earthsim.ErrCanceled once it is done. This is how a serving layer
	// aborts a run on client disconnect, explicit DELETE, or a per-job wall
	// deadline; nil (the default) costs nothing.
	Context context.Context
	// Faults attaches a fault-injection model + reliable-messaging protocol
	// to the simulated transport (see earthsim.FaultConfig and
	// earthsim.ParseFaultSpec); nil runs the idealized reliable machine.
	Faults *earthsim.FaultConfig
	// Sampler, when non-nil, records a deterministic time series of simulator
	// state (per-node EU/SU utilization, SU queue depth, per-link occupancy,
	// fault-layer retry counts) at the sampler's fixed simulated-time
	// interval. Sampling is purely observational; identical unit + RunConfig
	// (including the fault seed) yields a bit-identical series. The debug
	// HTTP server (Pipeline.ServeDebug) publishes the sampler's latest
	// snapshot while the run is in flight.
	Sampler *metrics.Sampler
}
