package core

import (
	"fmt"
	"time"

	"repro/internal/cache"
	"repro/internal/commsel"
	"repro/internal/earthc"
	"repro/internal/earthsim"
	"repro/internal/locality"
	"repro/internal/lower"
	"repro/internal/par"
	"repro/internal/placement"
	"repro/internal/pointsto"
	"repro/internal/profile"
	"repro/internal/rwsets"
	"repro/internal/sema"
	"repro/internal/simple"
	"repro/internal/threaded"
	"repro/internal/trace"
)

// Pipeline is the unified compile-and-run entry point: construct one from
// Options, then call Compile / CompileAST / Run / ProfileCycle. A Pipeline
// is cheap and safe to reuse across units; observability sinks
// (Options.Stats, Options.Trace, Options.Metrics) plug in at construction
// so every compile and run it performs feeds them, and ServeDebug exposes
// them over HTTP while runs are in flight.
type Pipeline struct {
	opt Options
	// live is the current-run state the debug HTTP server reads; a shared
	// pointer (not an embedded value) so the by-value Pipeline copies made in
	// ProfileCycle feed the same observers without tripping vet's copylocks.
	live *liveState
}

// NewPipeline builds a pipeline from the given options.
func NewPipeline(opt Options) *Pipeline { return &Pipeline{opt: opt, live: &liveState{}} }

// Options returns the pipeline's configuration.
func (p *Pipeline) Options() Options { return p.opt }

// Compile runs the full pipeline over EARTH-C source text.
//
// Deprecated: thin wrapper over Do, kept for call-site brevity. New code
// should build a CompileRequest and call Do, which also carries the
// profile and cache policy and exposes the cache outcome.
func (p *Pipeline) Compile(name, src string) (*Unit, error) {
	res, err := p.Do(CompileRequest{Name: name, Source: src})
	if err != nil {
		return nil, err
	}
	return res.Unit, nil
}

// CompileAST runs the pipeline from a parsed (possibly programmatically
// constructed) AST. The AST is modified in place by loop desugaring and
// goto elimination.
//
// Deprecated: thin wrapper over Do with CompileRequest.AST set.
func (p *Pipeline) CompileAST(file *earthc.File) (*Unit, error) {
	res, err := p.Do(CompileRequest{Name: file.Name, AST: file})
	if err != nil {
		return nil, err
	}
	return res.Unit, nil
}

// newStats returns a stats collector when any sink wants one (Unit.Stats
// via Options.Stats, or the metrics registry's per-phase histograms); its
// nil-receiver methods make the disabled case free.
func (p *Pipeline) newStats() *trace.CompileStats {
	if !p.opt.Stats && p.opt.Metrics == nil {
		return nil
	}
	return &trace.CompileStats{}
}

// finishCompile flushes a successful compile into the metrics registry and
// strips the stats collector when the caller didn't ask for it (it may have
// been allocated for the registry's benefit only).
func (p *Pipeline) finishCompile(u *Unit) *Unit {
	if reg := p.opt.Metrics; reg != nil && u.Stats != nil {
		reg.Counter("earth_compiles_total", "Units compiled by this pipeline.").Inc()
		for _, ph := range u.Stats.Phases {
			reg.Histogram(fmt.Sprintf("earth_compile_phase_ns{phase=%q}", ph.Name),
				"Host wall-clock time per compiler phase.").Observe(ph.Ns)
		}
		reg.Histogram("earth_compile_ns", "Host wall-clock time per compile.").
			Observe(u.Stats.TotalNs())
	}
	if !p.opt.Stats {
		u.Stats = nil
	}
	return u
}

// recoverPhase converts a panic escaping a compile phase into a positioned
// error naming the file, the phase, and — when the panic crossed the worker
// pool as a par.WorkerPanic — the function being processed. Internal bugs
// on arbitrary user input thereby surface as diagnostics, not stack traces.
func recoverPhase(file string, phase *string, fnName func(i int) string, u **Unit, err *error) {
	r := recover()
	if r == nil {
		return
	}
	where := ""
	if wp, ok := r.(par.WorkerPanic); ok {
		if name := fnName(wp.Index); name != "" {
			where = fmt.Sprintf(" in function %s", name)
		}
		r = wp.Value
	}
	*u = nil
	*err = fmt.Errorf("%s: internal error during %s%s: %v", file, *phase, where, r)
}

// noFn is the fnName callback for phases that do not fan over functions.
func noFn(int) string { return "" }

func (p *Pipeline) compileAST(file *earthc.File, opt Options, prof *profile.Data, st *trace.CompileStats, inc *incCtx) (u *Unit, err error) {
	phase := "inline"
	defer recoverPhase(file.Name, &phase, noFn, &u, &err)
	t0 := time.Now()
	if !opt.NoInline {
		earthc.InlineFunctions(file, opt.Inline)
	}
	st.AddPhase("inline", time.Since(t0))
	phase = "restructure"
	t0 = time.Now()
	for _, fn := range file.Funcs {
		if err := earthc.DesugarLoops(fn); err != nil {
			return nil, fmt.Errorf("%s: %w", file.Name, err)
		}
		if err := earthc.EliminateGotos(fn); err != nil {
			return nil, fmt.Errorf("%s: %w", file.Name, err)
		}
	}
	st.AddPhase("restructure", time.Since(t0))
	if opt.ReorderFields {
		// Probe compile (unoptimized, unobserved) to count remote field
		// accesses on the original layouts, then permute and compile for
		// real.
		phase = "reorder"
		t0 = time.Now()
		probe, err := p.build(file, Options{}, nil, nil, nil)
		if err != nil {
			return nil, err
		}
		reorderStructFields(file, probe)
		st.AddPhase("reorder", time.Since(t0))
	}
	return p.build(file, opt, prof, st, inc)
}

// build runs semantic analysis through communication selection on an
// already-restructured AST. When inc is non-nil, the placement and
// selection phases reuse cached per-function artifacts (see incremental.go);
// the front end and the whole-program analyses always run fresh.
func (p *Pipeline) build(file *earthc.File, opt Options, prof *profile.Data, st *trace.CompileStats, inc *incCtx) (u *Unit, err error) {
	phase := "sema"
	var sp *simple.Program
	defer recoverPhase(file.Name, &phase, func(i int) string {
		if sp != nil && i >= 0 && i < len(sp.Funcs) {
			return sp.Funcs[i].Name
		}
		return ""
	}, &u, &err)
	t0 := time.Now()
	sm, err := sema.Check(file)
	if err != nil {
		return nil, err
	}
	st.AddPhase("sema", time.Since(t0))
	phase = "lower"
	t0 = time.Now()
	sp, err = lower.Program(sm)
	if err != nil {
		return nil, err
	}
	var prev *cache.ProgramState
	if inc != nil {
		// Under a matching environment, re-lower with the previous
		// compile's global Var objects injected so cached bodies (which
		// reference them) and fresh bodies reference identical globals. An
		// environment change invalidates all incremental state.
		inc.envHash = cache.EnvHash(sp)
		prev = inc.c.State(inc.stateKey)
		if prev != nil && prev.EnvHash == inc.envHash {
			sp, err = lower.ProgramInto(sm, prev.GlobalsByName())
			if err != nil {
				return nil, err
			}
		} else {
			prev = nil
		}
	}
	// Site IDs are assigned on the freshly-lowered SIMPLE form, before any
	// transformation: the instrumented (unoptimized) compile and a later
	// profile-guided compile of the same source then agree on every key.
	simple.AssignSites(sp)
	st.AddPhase("lower", time.Since(t0))
	u = &Unit{Name: file.Name, File: file, Sema: sm, Simple: sp, Stats: st}
	// The per-function analysis chain fans out across a bounded worker pool;
	// each phase merges its per-function results in function order, so the
	// unit is identical for every worker count.
	pool := par.New(opt.Workers)
	addPhase := func(name string, t0 time.Time, busy0 time.Duration) {
		st.AddPhaseCum(name, time.Since(t0), pool.Busy()-busy0)
	}
	phase = "pointsto"
	t0 = time.Now()
	b0 := pool.Busy()
	u.PointsTo, err = pointsto.AnalyzeP(sp, pool)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", file.Name, err)
	}
	addPhase("pointsto", t0, b0)
	phase = "rwsets"
	t0, b0 = time.Now(), pool.Busy()
	u.RWSets = rwsets.AnalyzeP(sp, u.PointsTo, pool)
	addPhase("rwsets", t0, b0)
	phase = "locality"
	t0, b0 = time.Now(), pool.Busy()
	u.Locality = locality.AnalyzeP(sp, u.PointsTo, pool)
	addPhase("locality", t0, b0)
	if st != nil {
		// Candidate remote accesses, counted before selection rewrites the
		// SIMPLE form.
		for _, fn := range sp.Funcs {
			simple.WalkBasics(fn.Body, func(b *simple.Basic) {
				if b.Kind != simple.KAssign {
					return
				}
				if ld, ok := b.Rhs.(simple.LoadRV); ok && u.Locality.RemoteLoad(ld.P) {
					st.CandidateReads++
				}
				if stv, ok := b.Lhs.(simple.StoreLV); ok && u.Locality.RemoteLoad(stv.P) {
					st.CandidateWrites++
				}
			})
		}
	}
	if opt.Optimize {
		var fp placement.FreqProvider
		sel := opt.Sel
		if prof != nil {
			fp = prof
			sel.ProfileGuided = true
		}
		if inc != nil {
			phase = "incremental"
			p.optimizeIncremental(u, sp, fp, sel, st, inc, prev)
		} else {
			phase = "placement"
			t0, b0 = time.Now(), pool.Busy()
			u.Placement = placement.AnalyzeProfiledP(sp, u.RWSets, u.Locality, fp, pool)
			addPhase("placement", t0, b0)
			phase = "commsel"
			t0, b0 = time.Now(), pool.Busy()
			u.Report = commsel.TransformP(sp, u.Placement, u.RWSets, u.Locality, sel, pool)
			addPhase("commsel", t0, b0)
		}
		if st != nil {
			for _, set := range u.Placement.Reads {
				st.PlacedReadTuples += set.Len()
			}
			for _, set := range u.Placement.Writes {
				st.PlacedWriteTuples += set.Len()
			}
			t := u.Report.Totals()
			st.PipelinedReads = t.PipelinedReads
			st.BlockedReads = t.BlockedReads
			st.PipelinedWrites = t.PipelinedWrites
			st.BlockedWrites = t.BlockedWrites
			st.ReadsEliminated = t.ReadsEliminated
		}
	}
	return u, nil
}

// Run generates threaded code for the unit and executes it on a simulated
// EARTH-MANNA machine, starting at main() on node 0. When the pipeline has
// a trace recorder, the machine streams events into it; tracing is purely
// observational and never changes the simulated outcome.
func (p *Pipeline) Run(u *Unit, rc RunConfig) (*earthsim.Result, error) {
	if rc.Sequential && rc.Nodes > 1 {
		return nil, fmt.Errorf("core: the sequential baseline uses direct local memory accesses and is only valid on 1 node (got %d)", rc.Nodes)
	}
	tp, err := u.Threaded(threaded.Options{Sequential: rc.Sequential, Profile: rc.Profile})
	if err != nil {
		return nil, err
	}
	cfg := earthsim.DefaultConfig(rc.Nodes)
	if rc.Machine != nil {
		cfg = *rc.Machine
		cfg.Nodes = rc.Nodes
	}
	if rc.Fuel > 0 {
		cfg.Fuel = rc.Fuel
	}
	if rc.SimWorkers > 0 {
		cfg.SimWorkers = rc.SimWorkers
	}
	if rc.Faults != nil {
		cfg.Faults = rc.Faults
	}
	m := earthsim.New(tp, cfg)
	if rc.Deadline > 0 {
		m.SetDeadline(rc.Deadline)
	}
	if rc.Context != nil {
		// Fail fast if the job was cancelled while queued — don't charge a
		// run start for work that will trap on the first poll anyway.
		if err := rc.Context.Err(); err != nil {
			return nil, fmt.Errorf("earthsim: %w: %v before run start", earthsim.ErrCanceled, err)
		}
		m.SetContext(rc.Context)
	}
	if p.opt.Trace != nil {
		m.SetTrace(p.opt.Trace)
	}
	if rc.Sampler != nil {
		m.SetMetrics(rc.Sampler)
	}
	if p.live != nil {
		rec := &runRecord{unit: u.Name, nodes: cfg.Nodes, started: time.Now(), sampler: rc.Sampler}
		p.live.cur.Store(rec)
		defer rec.finished.Store(true)
	}
	reg := p.opt.Metrics
	reg.Counter("earth_runs_started_total", "Simulator runs started.").Inc()
	res, err := m.Run()
	if err != nil {
		reg.Counter("earth_run_errors_total", "Simulator runs that failed (trap, deadlock, or limit).").Inc()
		return nil, err
	}
	// Run metrics are simulated quantities only — never host wall time — so
	// a fixed unit + RunConfig fills a fresh registry with identical bytes.
	reg.Counter("earth_runs_completed_total", "Simulator runs completed.").Inc()
	reg.Counter("earth_guest_instructions_total", "Guest instructions retired across runs.").
		Add(res.Counts.Instructions)
	reg.Counter("earth_remote_ops_total", "Remote communication operations across runs.").
		Add(res.Counts.TotalRemote())
	reg.Histogram("earth_sim_time_ns", "Simulated time per completed run.").Observe(res.Time)
	if res.Faults != nil {
		reg.Counter("earth_fault_retries_total", "Reliable-messaging retransmissions across runs.").
			Add(res.Faults.Retries)
		reg.Counter("earth_fault_retries_spurious_total", "Retransmissions that were unnecessary in hindsight across runs.").
			Add(res.Faults.SpuriousRetries)
		reg.Counter("earth_fault_drops_total", "Wire drops injected across runs.").
			Add(res.Faults.Drops)
	}
	if res.Profile != nil {
		res.Profile.SourceHash = u.SourceHash
	}
	return res, nil
}

// ProfileCycle runs the two-pass profile-guided flow: compile the program
// unoptimized with instrumentation, run it once under rc to collect a
// profile, then recompile optimizing with the measured frequencies. It
// returns the profile-guided unit and the profile it was built from.
func (p *Pipeline) ProfileCycle(name, src string, rc RunConfig) (*Unit, *profile.Data, error) {
	gen := *p
	gen.opt.Optimize = false
	// The instrumented run is a measurement pass, not the run of interest:
	// keep it out of the trace recorder.
	gen.opt.Trace = nil
	gres, err := gen.Do(CompileRequest{Name: name, Source: src})
	if err != nil {
		return nil, nil, err
	}
	grc := rc
	grc.Profile = true
	res, err := gen.Run(gres.Unit, grc)
	if err != nil {
		return nil, nil, fmt.Errorf("core: instrumented run failed: %w", err)
	}
	if res.Profile == nil {
		return nil, nil, fmt.Errorf("core: instrumented run produced no profile")
	}
	use := *p
	use.opt.Optimize = true
	ures, err := use.Do(CompileRequest{Name: name, Source: src, Profile: res.Profile})
	if err != nil {
		return nil, nil, err
	}
	return ures.Unit, res.Profile, nil
}
