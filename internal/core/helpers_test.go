package core

import (
	"repro/internal/earthsim"
	"repro/internal/profile"
)

// Test shorthands over one-shot pipelines, replacing the removed deprecated
// free functions.

func compile(name, src string, opt Options) (*Unit, error) {
	return NewPipeline(opt).Compile(name, src)
}

// runUnit executes u on a plain (sink-free) pipeline; a compiled unit is
// self-contained, so any pipeline can run it.
func runUnit(u *Unit, rc RunConfig) (*earthsim.Result, error) {
	return NewPipeline(Options{}).Run(u, rc)
}

func compileAndRun(name, src string, optimize bool, nodes int) (*earthsim.Result, error) {
	p := NewPipeline(Options{Optimize: optimize})
	u, err := p.Compile(name, src)
	if err != nil {
		return nil, err
	}
	return p.Run(u, RunConfig{Nodes: nodes})
}

func compileWithProfile(name, src string, opt Options, rc RunConfig) (*Unit, *profile.Data, error) {
	return NewPipeline(opt).ProfileCycle(name, src, rc)
}
