package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/cache"
	"repro/internal/contenthash"
	"repro/internal/earthc"
	"repro/internal/profile"
	"repro/internal/threaded"
)

// CachePolicy is the per-request cache behavior. The zero value — use the
// pipeline's cache fully — is right for almost every caller.
type CachePolicy struct {
	// Bypass skips the cache entirely: no lookup, no store, no incremental
	// reuse. The compile is cold and leaves no trace in the cache.
	Bypass bool
	// NoStore permits lookups and incremental reuse but records nothing
	// new (a read-only probe).
	NoStore bool
	// NoIncremental disables per-function artifact reuse; the whole-unit
	// LRU still applies.
	NoIncremental bool
}

// CompileRequest carries everything that defines one compile: the source,
// the profile it is guided by, and the cache policy. Pipeline-level
// configuration (optimization, selection tuning, workers, observability
// sinks, the cache itself) stays on Options; per-submission inputs live
// here, so earthd, earthcc, earthrun, and paperbench all construct jobs
// the same way.
type CompileRequest struct {
	// Name labels the unit (diagnostics, dumps) and keys incremental cache
	// state: successive compiles under the same name are treated as
	// revisions of one program.
	Name string
	// Source is EARTH-C source text. Exactly one of Source and AST is
	// consulted; AST wins when non-nil.
	Source string
	// AST compiles a parsed (possibly programmatically constructed) file.
	// The AST is modified in place by inlining, loop desugaring, and goto
	// elimination. AST compiles are never cached: there is no canonical
	// byte form to key on.
	AST *earthc.File
	// Profile supplies measured execution frequencies from an instrumented
	// run (see internal/profile): placement replaces its static ×10/÷2/÷k
	// guesses with measured per-site factors and selection becomes
	// profile-guided. A profile whose source hash does not match Source is
	// ignored with a warning.
	Profile *profile.Data
	// Cache is the per-request cache policy.
	Cache CachePolicy
	// Context, when non-nil, aborts the compile cooperatively: Do checks it
	// between phases and fails with the context's error once cancelled.
	// Callers sharing one compile across requests (earthd's single-flight
	// batching) should leave this nil and cancel only their own Run — a
	// shared compile must not die with the first client that loses interest.
	Context context.Context
}

// CompileResult is a compile plus its cache outcome.
type CompileResult struct {
	// Unit is the compiled unit. On a cache hit it is the same immutable
	// *Unit a previous Do returned (including its memoized threaded code).
	Unit *Unit
	// Hit reports a whole-unit cache hit (no compilation happened).
	Hit bool
	// Key is the unit cache key ("" when the compile was uncacheable:
	// AST input, or no cache configured).
	Key string
	// FuncsReused / FuncsRecompiled count per-function outcomes: on a unit
	// hit every function was reused; on an incremental compile they split
	// by whether the function's cached transform artifacts were spliced in
	// or rebuilt; on a cold compile every function was recompiled.
	FuncsReused     int
	FuncsRecompiled int
}

// fingerprint renders the compile-relevant options plus the bound profile
// into the cache namespace key. Workers is excluded (output is proven
// identical for every worker count), as are the observability sinks
// (tracing and metrics never alter the unit).
func (opt Options) fingerprint(prof *profile.Data) string {
	parts := []string{
		fmt.Sprintf("optimize=%t noinline=%t reorder=%t stats=%t",
			opt.Optimize, opt.NoInline, opt.ReorderFields, opt.Stats),
		fmt.Sprintf("inline=%+v", opt.Inline),
		fmt.Sprintf("sel=%+v", opt.Sel),
	}
	if prof != nil {
		var b strings.Builder
		if err := prof.Write(&b); err == nil {
			parts = append(parts, "profile", b.String())
		} else {
			// Unserializable profile: poison the key so nothing is shared.
			parts = append(parts, "profile", fmt.Sprintf("unhashable %p", prof))
		}
	}
	return contenthash.Parts(parts...)
}

// CacheKey returns the unit cache key Do would use for req ("" when the
// request is uncacheable: AST input or no cache configured). It lets
// artifact-level consumers (earthcc under -cache-dir) probe the disk store
// before deciding to compile.
func (p *Pipeline) CacheKey(req CompileRequest) string {
	if req.AST != nil || req.Source == "" || p.opt.Cache == nil {
		return ""
	}
	srcHash := profile.HashSource(req.Source)
	prof := req.Profile
	if prof != nil && prof.SourceHash != "" && prof.SourceHash != srcHash {
		prof = nil // Do would fall back to static heuristics
	}
	return cache.UnitKey(p.opt.fingerprint(prof), srcHash)
}

// Do runs one compile described by req, consulting and feeding the
// pipeline's cache according to req.Cache. It is the primary compile entry
// point; Compile, CompileAST, and MustCompile are thin wrappers.
//
// Correctness contract: a cached (unit-hit or incremental) compile yields
// byte-identical threaded-code disassembly — and byte-identical
// Result.Visible() on every run configuration — to a cold compile of the
// same request.
func (p *Pipeline) Do(req CompileRequest) (*CompileResult, error) {
	opt := p.opt
	st := p.newStats()
	res := &CompileResult{}
	prof := req.Profile
	var warnings []string
	var srcHash string
	c := opt.Cache
	reg := opt.Metrics
	if req.AST == nil {
		srcHash = profile.HashSource(req.Source)
		if prof != nil && prof.SourceHash != "" && prof.SourceHash != srcHash {
			warnings = append(warnings,
				"profile is stale (collected from a different source revision); falling back to static frequency heuristics")
			prof = nil
		}
	}
	// Unit-cache lookup comes before the parse: the key needs only the
	// source hash and the options fingerprint, so a warm recompile costs a
	// hash plus a map lookup.
	if c != nil && srcHash != "" && !req.Cache.Bypass {
		res.Key = cache.UnitKey(opt.fingerprint(prof), srcHash)
		if v, ok := c.LookupUnit(res.Key); ok {
			u := v.(*Unit)
			reg.Counter("earth_cache_hits_total", "Compiles served whole from the unit cache.").Inc()
			res.Unit, res.Hit = u, true
			res.FuncsReused = len(u.Simple.Funcs)
			return res, nil
		}
		reg.Counter("earth_cache_misses_total", "Compiles not served whole from the unit cache.").Inc()
	}
	if req.Context != nil {
		if err := req.Context.Err(); err != nil {
			return nil, fmt.Errorf("core: compile canceled: %w", err)
		}
	}
	file := req.AST
	if file == nil {
		t0 := time.Now()
		f, err := earthc.ParseFile(req.Name, req.Source)
		if err != nil {
			return nil, err
		}
		file = f
		st.AddPhase("parse", time.Since(t0))
	}
	if req.Context != nil {
		if err := req.Context.Err(); err != nil {
			return nil, fmt.Errorf("core: compile canceled: %w", err)
		}
	}
	var inc *incCtx
	if c != nil && !req.Cache.Bypass && !req.Cache.NoIncremental &&
		opt.Optimize && !opt.ReorderFields && req.Name != "" {
		inc = &incCtx{
			c:        c,
			stateKey: cache.StateKey(opt.fingerprint(prof), req.Name),
			res:      res,
			noStore:  req.Cache.NoStore,
		}
	}
	u, err := p.compileAST(file, opt, prof, st, inc)
	if err != nil {
		return nil, err
	}
	u.SourceHash = srcHash
	u.Warnings = append(warnings, u.Warnings...)
	p.finishCompile(u)
	res.Unit = u
	if inc == nil {
		res.FuncsRecompiled = len(u.Simple.Funcs)
	}
	if c != nil && res.Key != "" && !req.Cache.Bypass && !req.Cache.NoStore {
		if ev := c.StoreUnit(res.Key, u); ev > 0 {
			reg.Counter("earth_cache_evictions_total", "Units evicted from the cache by capacity pressure.").Add(int64(ev))
		}
		if c.Dir() != "" {
			p.storeArtifact(c, res.Key, u)
		}
	}
	return res, nil
}

// Disasm renders the unit's canonical threaded-code disassembly: every
// function, sorted by name. This is the byte format the cache's
// correctness contract is stated over, and what `earthcc -dump=threaded`
// prints.
func (u *Unit) Disasm() (string, error) {
	tp, err := u.Threaded(threaded.Options{})
	if err != nil {
		return "", err
	}
	names := make([]string, 0, len(tp.Funcs))
	for n := range tp.Funcs {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		b.WriteString(tp.Funcs[n].Disasm())
		b.WriteString("\n")
	}
	return b.String(), nil
}

// storeArtifact persists the unit's textual artifacts to the cache's disk
// store. Failures are silently ignored: the store is an optimization.
func (p *Pipeline) storeArtifact(c *cache.Cache, key string, u *Unit) {
	disasm, err := u.Disasm()
	if err != nil {
		return
	}
	report := ""
	if u.Report != nil {
		report = u.Report.String()
	}
	_ = c.StoreArtifact(key, &cache.Artifact{
		Name:       u.Name,
		SourceHash: u.SourceHash,
		Disasm:     disasm,
		Report:     report,
		Warnings:   u.Warnings,
	})
}
