package core

import (
	"strings"
	"testing"
)

func TestCompileParseError(t *testing.T) {
	_, err := compile("bad.ec", "int main( { return 0; }", Options{})
	if err == nil {
		t.Fatal("expected a parse error")
	}
}

func TestCompileSemaError(t *testing.T) {
	_, err := compile("bad.ec", "int main() { return nope; }", Options{})
	if err == nil || !strings.Contains(err.Error(), "undeclared") {
		t.Fatalf("expected a sema error, got %v", err)
	}
}

func TestCompileNonConstGlobalInit(t *testing.T) {
	_, err := compile("bad.ec", `
int f() { return 1; }
int g = 0;
int main() { return g; }
`, Options{})
	if err != nil {
		t.Fatalf("constant init must work: %v", err)
	}
	_, err = compile("bad.ec", `
int f() { return 1; }
int g = 1 + 2;
int main() { return g; }
`, Options{})
	if err == nil || !strings.Contains(err.Error(), "constant") {
		t.Fatalf("expected a constant-initializer error, got %v", err)
	}
}

func TestRunWithoutMain(t *testing.T) {
	u, err := compile("nomain.ec", "int f() { return 1; }", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runUnit(u, RunConfig{Nodes: 1}); err == nil ||
		!strings.Contains(err.Error(), "main") {
		t.Fatalf("expected a no-main error, got %v", err)
	}
}

func TestSequentialMultiNodeRejected(t *testing.T) {
	u, err := compile("m.ec", "int main() { return 0; }", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runUnit(u, RunConfig{Nodes: 4, Sequential: true}); err == nil {
		t.Fatal("sequential baseline on 4 nodes must be rejected")
	}
}

func TestGotoUnsupportedPatterns(t *testing.T) {
	_, err := compile("bad.ec", `
int main() {
	int i;
	forall (i = 0; i < 4; i++) {
		goto out;
	}
out:
	return 0;
}
`, Options{})
	if err == nil || !strings.Contains(err.Error(), "forall") {
		t.Fatalf("expected a forall-goto error, got %v", err)
	}
}

func TestReturnInsideParSeqRejected(t *testing.T) {
	u, err := compile("bad.ec", `
int main() {
	{^
		return 1;
	^}
	return 0;
}
`, Options{})
	if err != nil {
		// Rejected at compile time is fine too.
		return
	}
	if _, err := runUnit(u, RunConfig{Nodes: 1}); err == nil {
		t.Fatal("return inside a parallel arm must be rejected somewhere")
	}
}
