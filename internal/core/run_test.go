package core

import (
	"strings"
	"testing"
)

// TestRunHello checks the most basic end-to-end path: compile and run a
// sequential program on the simulator.
func TestRunHello(t *testing.T) {
	src := `
int main() {
	int i;
	int sum;
	sum = 0;
	for (i = 0; i < 10; i++) sum = sum + i;
	print_int(sum);
	return sum;
}
`
	res, err := compileAndRun("hello.ec", src, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.MainRet != 45 {
		t.Errorf("main returned %d, want 45", res.MainRet)
	}
	if res.Output != "45\n" {
		t.Errorf("output %q, want %q", res.Output, "45\n")
	}
	if res.Time <= 0 {
		t.Errorf("non-positive simulated time %d", res.Time)
	}
}

// TestRunListSum builds a list through pointers and sums it: exercises
// alloc, remote-capable loads, loops.
func TestRunListSum(t *testing.T) {
	src := `
struct Node {
	int value;
	struct Node *next;
};

int main() {
	Node *head;
	Node *p;
	int i;
	int sum;
	head = NULL;
	for (i = 0; i < 20; i++) {
		p = alloc(Node);
		p->value = i;
		p->next = head;
		head = p;
	}
	sum = 0;
	p = head;
	while (p != NULL) {
		sum = sum + p->value;
		p = p->next;
	}
	print_int(sum);
	return sum;
}
`
	for _, optimize := range []bool{false, true} {
		res, err := compileAndRun("listsum.ec", src, optimize, 1)
		if err != nil {
			t.Fatalf("optimize=%v: %v", optimize, err)
		}
		if res.MainRet != 190 {
			t.Errorf("optimize=%v: main returned %d, want 190", optimize, res.MainRet)
		}
	}
}

// TestRunParallel exercises forall + shared counters + alloc_on across 4
// nodes, with and without optimization; the answers must agree.
func TestRunParallel(t *testing.T) {
	src := `
struct Cell {
	int value;
	struct Cell *next;
};

int main() {
	shared int total;
	Cell *head;
	Cell *p;
	int i;
	int n;
	n = num_nodes();
	head = NULL;
	for (i = 0; i < 40; i++) {
		p = alloc_on(Cell, i % n);
		p->value = i;
		p->next = head;
		head = p;
	}
	writeto(&total, 0);
	forall (p = head; p != NULL; p = p->next) {
		addto(&total, p->value * 2);
	}
	print_int(valueof(&total));
	return valueof(&total);
}
`
	want := int64(0)
	for i := 0; i < 40; i++ {
		want += int64(i * 2)
	}
	for _, optimize := range []bool{false, true} {
		res, err := compileAndRun("par.ec", src, optimize, 4)
		if err != nil {
			t.Fatalf("optimize=%v: %v", optimize, err)
		}
		if res.MainRet != want {
			t.Errorf("optimize=%v: main returned %d, want %d", optimize, res.MainRet, want)
		}
	}
}

// TestRunPlacedCall exercises @OWNER_OF migration and parallel sequences.
func TestRunPlacedCall(t *testing.T) {
	src := `
struct Pt { int v; };

int fetch(Pt local *p) {
	return p->v * 10;
}

int main() {
	Pt *a;
	Pt *b;
	int x; int y;
	a = alloc_on(Pt, num_nodes() - 1);
	b = alloc(Pt);
	a->v = 3;
	b->v = 4;
	{^
		x = fetch(a)@OWNER_OF(a);
		y = fetch(b)@OWNER_OF(b);
	^}
	print_int(x + y);
	return x + y;
}
`
	res, err := compileAndRun("placed.ec", src, false, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.MainRet != 70 {
		t.Errorf("main returned %d, want 70", res.MainRet)
	}
	if !strings.Contains(res.Output, "70") {
		t.Errorf("output %q missing 70", res.Output)
	}
}

// TestOptimizedFasterRemote checks the headline effect: on a 2-node machine
// with remote data, the optimized program runs at least as fast as the
// simple one and issues fewer remote operations.
func TestOptimizedFasterRemote(t *testing.T) {
	src := `
struct Point {
	double x;
	double y;
	double z;
	struct Point *next;
};

int main() {
	Point *head;
	Point *p;
	int i;
	double sum;
	head = NULL;
	for (i = 0; i < 50; i++) {
		p = alloc_on(Point, 1);
		p->x = dbl(i);
		p->y = dbl(i * 2);
		p->z = dbl(i * 3);
		p->next = head;
		head = p;
	}
	sum = 0.0;
	p = head;
	while (p != NULL) {
		sum = sum + p->x + p->y + p->z;
		p = p->next;
	}
	print_double(sum);
	return trunc(sum);
}
`
	simple, err := compileAndRun("opt.ec", src, false, 2)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := compileAndRun("opt.ec", src, true, 2)
	if err != nil {
		t.Fatal(err)
	}
	if simple.MainRet != opt.MainRet {
		t.Fatalf("results differ: simple=%d opt=%d", simple.MainRet, opt.MainRet)
	}
	if opt.Counts.TotalRemote() >= simple.Counts.TotalRemote() {
		t.Errorf("optimized remote ops %d not below simple %d",
			opt.Counts.TotalRemote(), simple.Counts.TotalRemote())
	}
	if opt.Time > simple.Time {
		t.Errorf("optimized time %d slower than simple %d", opt.Time, simple.Time)
	}
	t.Logf("simple: time=%dns %s", simple.Time, simple.Counts)
	t.Logf("opt:    time=%dns %s", opt.Time, opt.Counts)
}
