package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/earthsim"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// telemetryBytes runs u once on a fresh metered pipeline and returns every
// exposition surface concatenated: registry Prometheus + JSON, sampler
// series JSON + Prometheus.
func telemetryBytes(t *testing.T, u *Unit, rc RunConfig) []byte {
	t.Helper()
	reg := metrics.NewRegistry()
	s := metrics.NewSampler(10_000, 0)
	rc.Sampler = s
	p := NewPipeline(Options{Metrics: reg})
	if _, err := p.Run(u, rc); err != nil {
		t.Fatal(err)
	}
	if s.Total() == 0 {
		t.Fatal("sampler recorded no samples")
	}
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	reg.WriteJSON(&buf)
	s.WriteSeriesJSON(&buf)
	s.WritePrometheus(&buf)
	return buf.Bytes()
}

// TestTelemetryDeterministic: identical unit + RunConfig (same fault seed)
// must fill a fresh registry and sampler with byte-identical expositions —
// the PR 4 determinism invariant extended to telemetry, with faults both
// off and on.
func TestTelemetryDeterministic(t *testing.T) {
	u, err := compile("det.ec", remoteListSrc, Options{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		faults *earthsim.FaultConfig
	}{
		{"no-faults", nil},
		{"faults", &earthsim.FaultConfig{Drop: 0.05, Dup: 0.02, Delay: 2, Stall: 0.05, Seed: 7}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := telemetryBytes(t, u, RunConfig{Nodes: 4, Faults: tc.faults})
			b := telemetryBytes(t, u, RunConfig{Nodes: 4, Faults: tc.faults})
			if !bytes.Equal(a, b) {
				t.Errorf("telemetry not byte-identical across runs:\n--- first ---\n%s\n--- second ---\n%s", a, b)
			}
			if tc.faults != nil {
				// Pin the fault-layer counter names: downstream dashboards key
				// on these strings, so renames must fail loudly here.
				for _, want := range [][]byte{
					[]byte("earth_fault_retries_total"),
					[]byte("earth_fault_retries_spurious_total"),
					[]byte("earthsim_retries_spurious_total"),
				} {
					if !bytes.Contains(a, want) {
						t.Errorf("faulted run exposition missing %s", want)
					}
				}
			}
		})
	}
}

// slowLoopSrc runs long enough (tens of milliseconds of host time) that the
// debug server can be exercised while the run is in flight. It must
// communicate, not just compute: samples are taken in event-loop order, and
// a pure-compute fiber is a single EU dispatch — the sampler would publish
// nothing until the close-out sample just before Run returns. Walking a
// remote list keeps the event loop (and therefore the sampler) busy for the
// whole run.
const slowLoopSrc = `
struct Point {
	double x;
	double y;
	double z;
	struct Point *next;
};

int main() {
	Point *head;
	Point *p;
	int i;
	int r;
	double sum;
	head = NULL;
	for (i = 0; i < 40; i++) {
		p = alloc_on(Point, 1);
		p->x = dbl(i);
		p->y = dbl(i * 2);
		p->z = dbl(i * 3);
		p->next = head;
		head = p;
	}
	sum = 0.0;
	for (r = 0; r < 1000; r++) {
		p = head;
		while (p != NULL) {
			sum = sum + p->x + p->y + p->z;
			p = p->next;
		}
	}
	print_double(sum);
	return 0;
}
`

// TestDebugServerLiveRun: the debug HTTP endpoints must serve coherent data
// while a simulator Run is in flight.
func TestDebugServerLiveRun(t *testing.T) {
	reg := metrics.NewRegistry()
	rec := trace.NewRecorder(0)
	p := NewPipeline(Options{Metrics: reg, Trace: rec})
	u, err := p.Compile("slow.ec", slowLoopSrc)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(p.DebugHandler())
	defer srv.Close()

	s := metrics.NewSampler(10_000, 0)
	done := make(chan error, 1)
	go func() {
		_, err := p.Run(u, RunConfig{Nodes: 2, Sampler: s})
		done <- err
	}()
	// Wait until the run is demonstrably in flight: the sampler has
	// published at least one snapshot.
	deadline := time.Now().Add(10 * time.Second)
	for s.Latest() == nil {
		select {
		case err := <-done:
			// Run publishes the close-out sample before returning, so by the
			// time done fires Latest must be visible; re-feed done (buffered)
			// for the drain after the endpoint checks.
			done <- err
			if s.Latest() == nil {
				t.Fatalf("run finished without publishing a sample (err=%v)", err)
			}
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("sampler never published a snapshot")
		}
		time.Sleep(100 * time.Microsecond)
	}

	get := func(path string) (int, string, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
	}

	code, body, _ := get("/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz: status %d", code)
	}
	var h struct {
		Status  string `json:"status"`
		Running bool   `json:"running"`
		Unit    string `json:"unit"`
		Nodes   int    `json:"nodes"`
	}
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("/healthz: bad JSON %q: %v", body, err)
	}
	if h.Status != "ok" || h.Unit != "slow.ec" || h.Nodes != 2 {
		t.Errorf("/healthz = %+v", h)
	}

	code, body, ct := get("/metrics")
	if code != http.StatusOK || !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics: status %d content-type %q", code, ct)
	}
	for _, want := range []string{"earth_runs_started_total", "earthsim_time_ns", "earthsim_node_eu_busy_ns"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body, _ = get("/series.json")
	if code != http.StatusOK {
		t.Fatalf("/series.json: status %d", code)
	}
	var series struct {
		IntervalNs int64             `json:"interval_ns"`
		Samples    []json.RawMessage `json:"samples"`
	}
	if err := json.Unmarshal([]byte(body), &series); err != nil {
		t.Fatalf("/series.json: bad JSON: %v", err)
	}
	if series.IntervalNs != 10_000 || len(series.Samples) == 0 {
		t.Errorf("/series.json: interval %d, %d samples", series.IntervalNs, len(series.Samples))
	}

	code, body, _ = get("/trace/summary")
	if code != http.StatusOK || !strings.Contains(body, "node") {
		t.Errorf("/trace/summary: status %d body %q", code, body)
	}

	code, body, _ = get("/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/: status %d", code)
	}

	code, _, _ = get("/trace.json")
	if code != http.StatusOK {
		t.Errorf("/trace.json: status %d", code)
	}

	if err := <-done; err != nil {
		t.Fatalf("run failed: %v", err)
	}

	// After the run: healthz flips to not-running, metrics.json is valid.
	code, body, _ = get("/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz after run: status %d", code)
	}
	if err := json.Unmarshal([]byte(body), &h); err != nil || h.Status != "ok" {
		t.Errorf("/healthz after run: %q (%v)", body, err)
	}
	var running struct {
		Running bool `json:"running"`
	}
	json.Unmarshal([]byte(body), &running)
	if running.Running {
		t.Error("/healthz still reports running after the run completed")
	}
	code, body, _ = get("/metrics.json")
	if code != http.StatusOK || !json.Valid([]byte(body)) {
		t.Errorf("/metrics.json: status %d body %q", code, body)
	}
}

// TestServeDebug: the convenience wrapper binds a real listener.
func TestServeDebug(t *testing.T) {
	p := NewPipeline(Options{Metrics: metrics.NewRegistry()})
	d, err := p.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	resp, err := http.Get(fmt.Sprintf("http://%s/healthz", d.Addr))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz via ServeDebug: status %d", resp.StatusCode)
	}
}
