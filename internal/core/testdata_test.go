package core

import (
	"os"
	"path/filepath"
	"testing"
)

// TestTestdataPrograms compiles and runs every sample program under
// testdata/, simple and optimized, on 1 and 2 nodes, checking the outputs
// agree.
func TestTestdataPrograms(t *testing.T) {
	files, err := filepath.Glob("../../testdata/*.ec")
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata programs found: %v", err)
	}
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			srcBytes, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			src := string(srcBytes)
			var ref string
			first := true
			for _, nodes := range []int{1, 2} {
				for _, optimize := range []bool{false, true} {
					res, err := compileAndRun(f, src, optimize, nodes)
					if err != nil {
						t.Fatalf("nodes=%d optimize=%v: %v", nodes, optimize, err)
					}
					if first {
						ref = res.Output
						first = false
						t.Logf("output: %q", ref)
					} else if res.Output != ref {
						t.Errorf("nodes=%d optimize=%v: output %q != %q",
							nodes, optimize, res.Output, ref)
					}
				}
			}
		})
	}
}
