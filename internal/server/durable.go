package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/contenthash"
	"repro/internal/journal"
	"repro/internal/obs"
)

// Job lifecycle states, as reported by GET /jobs/{id}.
const (
	StatusQueued    = "queued"
	StatusRunning   = "running"
	StatusDone      = "done" // terminal: success or deterministic failure
	StatusCancelled = "cancelled"
)

// jobState tracks one submission id through its lifecycle in the server's
// in-memory index (guarded by Server.jmu). Terminal states carry either the
// in-process outcome or, after a restart, the journaled completion record —
// both answer re-submissions and GET /jobs/{id} without re-running.
type jobState struct {
	jid     string
	status  string
	outcome *jobOutcome     // terminal, finished in this process
	rec     *journal.Record // terminal, recovered from the journal
	cancel  context.CancelCauseFunc
	// followers are duplicate in-flight submissions of the same id; each
	// buffered channel receives a copy of the outcome at finish.
	followers []chan jobOutcome
}

// cancelCause carries a human-readable abort reason through context
// cancellation into the job's 499 outcome.
type cancelCause struct{ reason string }

func (c *cancelCause) Error() string { return c.reason }

// dedupKey derives the submission's idempotency key: the client-supplied ID
// when present; otherwise, with journaling enabled, the content hash of the
// request itself (so identical jobs re-use one durable identity); otherwise
// a unique synthetic id (no deduplication — the pre-journal behavior).
func dedupKey(req *JobRequest, journaled bool, auto uint64) (string, *jobError) {
	if req.ID != "" {
		if len(req.ID) > 200 {
			return "", errf(400, "id: too long (%d bytes, max 200)", len(req.ID))
		}
		for _, c := range req.ID {
			if c <= ' ' || c > '~' {
				return "", errf(400, "id: printable non-space ASCII only")
			}
		}
		return req.ID, nil
	}
	if !journaled {
		return fmt.Sprintf("auto-%d", auto), nil
	}
	c := *req
	c.ID, c.Async = "", false // protocol fields don't define job identity
	b, err := json.Marshal(&c)
	if err != nil {
		return "", errf(400, "id: %v", err)
	}
	return contenthash.Parts("jobreq", string(b)), nil
}

// newJob builds the queued form of one accepted submission, including its
// cancellation context (wall deadline + explicit abort) and its host-side
// timeline anchored at t0 (submission entry).
func (s *Server) newJob(req *JobRequest, jid, name, src string, t0 time.Time) *job {
	ctx := context.Background()
	var stopTimer context.CancelFunc
	if s.cfg.JobWallDeadline > 0 {
		ctx, stopTimer = context.WithTimeout(ctx, s.cfg.JobWallDeadline)
	}
	cctx, cancel := context.WithCancelCause(ctx)
	return &job{
		id:        s.nextID.Add(1),
		jid:       jid,
		req:       req,
		name:      name,
		src:       src,
		key:       compileKeyFor(req, src),
		enq:       time.Now(),
		ctx:       cctx,
		cancel:    cancel,
		stopTimer: stopTimer,
		tr:        s.obs.NewTrace(jid, t0),
		qIx:       -1,
		res:       make(chan jobOutcome, 1),
	}
}

// servedOutcome builds the answer for a re-submission of a completed job:
// the stored payload with the replay markers set, or the recorded error with
// its original status.
func (st *jobState) servedOutcome(jid string) jobOutcome {
	if st.outcome != nil {
		if st.outcome.err != nil {
			return jobOutcome{err: st.outcome.err}
		}
		r := *st.outcome.result
		r.JobID, r.Replayed = jid, true
		return jobOutcome{result: &r}
	}
	if rec := st.rec; rec != nil {
		if rec.Status == 200 {
			var r JobResult
			if err := json.Unmarshal(rec.Result, &r); err != nil {
				return jobOutcome{err: errf(500, "journaled result unreadable: %v", err)}
			}
			r.JobID, r.Replayed = jid, true
			return jobOutcome{result: &r}
		}
		return jobOutcome{err: errf(rec.Status, "%s", rec.Error)}
	}
	return jobOutcome{err: errf(500, "job state lost")}
}

// cancelOutcome maps a fired cancellation context to the job's outcome: 504
// for the server-imposed wall deadline, 499 (the de-facto "client closed
// request" status) for explicit aborts and disconnects.
func cancelOutcome(j *job) jobOutcome {
	cause := context.Cause(j.ctx)
	if errors.Is(cause, context.DeadlineExceeded) {
		return jobOutcome{err: errf(504, "job exceeded its wall deadline and was aborted")}
	}
	reason := "cancelled"
	var cc *cancelCause
	if errors.As(cause, &cc) {
		reason = cc.reason
	}
	return jobOutcome{err: errf(499, "job cancelled: %s", reason)}
}

// Cancel requests a cooperative abort of a queued or running job. The job
// does not stop synchronously: its context fires now, the simulator traps at
// its next poll, and the outcome (499, journaled as cancelled) flows through
// the normal completion path. 404 for unknown ids, 409 for finished jobs.
func (s *Server) Cancel(jid, reason string) *jobError {
	s.jmu.Lock()
	st := s.jobs[jid]
	if st == nil {
		s.jmu.Unlock()
		return errf(404, "unknown job %q", jid)
	}
	if st.status == StatusDone || st.status == StatusCancelled {
		s.jmu.Unlock()
		return errf(409, "job %q already %s", jid, st.status)
	}
	cancel := st.cancel
	s.jmu.Unlock()
	if cancel != nil {
		cancel(&cancelCause{reason: reason})
	}
	s.reg.Counter("earthd_cancel_requests_total", "Cancellation requests accepted (DELETE, disconnect, deadline).").Inc()
	return nil
}

// JobStatus reports a submission's lifecycle state; for terminal jobs the
// outcome is included (ok=false for unknown ids).
func (s *Server) JobStatus(jid string) (status string, out jobOutcome, terminal, ok bool) {
	s.jmu.Lock()
	defer s.jmu.Unlock()
	st := s.jobs[jid]
	if st == nil {
		return "", jobOutcome{}, false, false
	}
	if st.status == StatusDone || st.status == StatusCancelled {
		return st.status, st.servedOutcome(jid), true, true
	}
	return st.status, jobOutcome{}, false, true
}

// setRunning flips the index entry when a worker picks the job up.
func (s *Server) setRunning(jid string) {
	s.jmu.Lock()
	if st := s.jobs[jid]; st != nil && st.status == StatusQueued {
		st.status = StatusRunning
	}
	s.jmu.Unlock()
}

// finish journals the outcome, resolves the index entry, notifies duplicate
// waiters, updates the drain-rate estimate, and delivers the outcome.
func (s *Server) finish(sh *shard, j *job, out jobOutcome, svcNs int64) {
	cancelled := out.err != nil && (out.err.status == 499 || out.err.status == 504)
	if s.jr != nil {
		// Journal failures must not fail the job — the run already happened;
		// the lag/error shows up in /healthz and /metrics instead.
		jcIx := j.tr.Start(-1, obs.KindJournalComplete)
		switch {
		case cancelled:
			_ = s.jr.Cancelled(j.jid, out.err.msg)
			s.journalRecord(journal.KindCancelled)
		case out.err != nil:
			_ = s.jr.Completed(j.jid, out.err.status, nil, out.err.msg)
			s.journalRecord(journal.KindCompleted)
		default:
			if b, err := json.Marshal(out.result); err == nil {
				_ = s.jr.Completed(j.jid, 200, b, "")
				s.journalRecord(journal.KindCompleted)
			}
		}
		j.tr.End(jcIx)
	}
	j.discard()

	rIx := j.tr.Start(-1, obs.KindRespond)
	s.jmu.Lock()
	st := s.jobs[j.jid]
	if st == nil {
		st = &jobState{jid: j.jid}
		s.jobs[j.jid] = st
	}
	st.status = StatusDone
	if cancelled {
		st.status = StatusCancelled
	}
	o := out
	st.outcome = &o
	st.cancel = nil
	followers := st.followers
	st.followers = nil
	s.jobOrder = append(s.jobOrder, j.jid)
	s.evictLocked()
	s.jmu.Unlock()
	for _, ch := range followers {
		ch <- out // each follower channel is buffered 1
	}
	j.tr.End(rIx)

	if svcNs > 0 {
		ewmaUpdate(&s.svcEwmaNs, svcNs)
	}
	switch {
	case cancelled:
		s.reg.Counter("earthd_jobs_cancelled_total", "Jobs aborted by cancellation (DELETE, disconnect, or wall deadline).").Inc()
	case out.err != nil:
		s.reg.Counter("earthd_jobs_failed_total", "Accepted jobs that failed to compile or run.").Inc()
	}
	s.completed.Add(1)
	sh.jobs.Add(1)
	s.reg.Counter("earthd_jobs_completed_total", "Jobs completed (success, failure, or cancellation).").Inc()
	// Finalize the timeline (and observe its stage histograms) before the
	// outcome is delivered, so a client that reads its result and
	// immediately curls /jobs/{id}/timeline always finds the completed tree.
	status := StatusDone
	if cancelled {
		status = StatusCancelled
	}
	s.completeTrace(j, out, status)
	j.res <- out
}

// evictLocked caps the terminal-state index at RetainResults entries,
// oldest-finished first (jmu held). Stale order entries — ids re-accepted
// after cancellation — are skipped.
func (s *Server) evictLocked() {
	for len(s.jobOrder) > s.cfg.RetainResults {
		id := s.jobOrder[0]
		s.jobOrder = s.jobOrder[1:]
		if st := s.jobs[id]; st != nil && (st.status == StatusDone || st.status == StatusCancelled) {
			delete(s.jobs, id)
		}
	}
}

// recover loads the journal's restart state: completed records answer
// re-submissions from the index, and pending (accepted, never finished)
// jobs replay through the normal queue on a background goroutine tracked by
// replayWg — Drain waits for it, so replay and graceful shutdown compose.
func (s *Server) recover(rec *journal.Recovery) {
	for id, r := range rec.Completed {
		r := r
		s.jobs[id] = &jobState{jid: id, status: StatusDone, rec: &r}
		s.jobOrder = append(s.jobOrder, id)
	}
	s.evictLocked()
	var replay []*job
	for _, r := range rec.Pending {
		j, err := s.rebuild(r)
		if err != nil {
			// The journaled request no longer validates (schema drift, a
			// benchmark renamed). Close it out rather than replaying forever.
			_ = s.jr.Cancelled(r.ID, fmt.Sprintf("unreplayable after recovery: %v", err))
			s.journalRecord(journal.KindCancelled)
			continue
		}
		s.jobs[j.jid] = &jobState{jid: j.jid, status: StatusQueued, cancel: j.cancel}
		replay = append(replay, j)
	}
	if len(replay) == 0 {
		return
	}
	s.replayWg.Add(1)
	go func() {
		defer s.replayWg.Done()
		for _, j := range replay {
			s.attach(j.key)
			j.qIx = j.tr.Start(-1, obs.KindQueueWait)
			s.obs.Track(j.tr)
			s.queue <- j // blocking: the queue closes only after replayWg
			s.accepted.Add(1)
			s.reg.Counter("earthd_jobs_replayed_total", "Journaled jobs replayed through the queue after a restart.").Inc()
		}
	}()
}

// rebuild reconstructs a queued job from its journaled acceptance record,
// re-running the same validation Submit applied originally.
func (s *Server) rebuild(r journal.Record) (*job, error) {
	var req JobRequest
	if err := json.Unmarshal(r.Req, &req); err != nil {
		return nil, err
	}
	if jerr := req.validateVersion(); jerr != nil {
		return nil, jerr
	}
	name, src, jerr := resolve(&req)
	if jerr != nil {
		return nil, jerr
	}
	if _, jerr := req.cachePolicy(); jerr != nil {
		return nil, jerr
	}
	if _, _, jerr := runSpec(&req); jerr != nil {
		return nil, jerr
	}
	j := s.newJob(&req, r.ID, name, src, time.Now())
	j.replayed = true
	return j, nil
}

func (s *Server) journalRecord(kind string) {
	s.reg.Counter(fmt.Sprintf("earthd_journal_records_total{kind=%q}", kind),
		"Journal records appended by kind.").Inc()
}

// ewmaUpdate folds v into the exponentially-weighted moving average with
// alpha = 1/5. Concurrent updates may lose an occasional sample — the
// estimate feeds Retry-After hints, not accounting.
func ewmaUpdate(a *atomic.Int64, v int64) {
	old := a.Load()
	if old == 0 {
		a.Store(v)
		return
	}
	a.Store(old + (v-old)/5)
}
