package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Host-side observability glue: how the span recorder in internal/obs meets
// the request path, and the HTTP surface that serves it. Everything here is
// wall-clock and host-dependent, so it stays out of the shard pipeline
// registries — the byte-deterministic telemetry (§11) never sees it.

const stageHistHelp = "Host wall time per request-path stage (tail-latency attribution)."

func stageHistName(kind string) string {
	return fmt.Sprintf("earthd_stage_ns{stage=%q}", kind)
}

// compileChildren reconstructs the compile span's children after the fact
// from what compileShared learned. A batched job did no local compile work
// (it waited on another job's flight), so it gets no children; a cache hit
// spent the whole span consulting the cache; a fresh compile gets a
// cache.lookup residue followed by the per-phase durations from
// trace.CompileStats, laid out sequentially from the span start (with
// Workers > 1 phases overlap in reality, so the sequential layout is an
// attribution, not a literal schedule).
func (s *Server) compileChildren(tr *obs.JobTrace, cIx int, batched, hit bool, u *core.Unit) {
	if tr == nil || cIx < 0 || batched {
		return
	}
	start, end := tr.Bounds(cIx)
	if end < 0 {
		return
	}
	var st *trace.CompileStats
	if u != nil {
		st = u.Stats
	}
	if hit || st == nil || len(st.Phases) == 0 {
		tr.AddInterval(cIx, obs.KindCacheLookup, start, end)
		return
	}
	var phaseNs int64
	for _, p := range st.Phases {
		phaseNs += p.Ns
	}
	cur := start
	if lookup := end - start - phaseNs; lookup > 0 {
		tr.AddInterval(cIx, obs.KindCacheLookup, cur, cur+lookup)
		cur += lookup
	}
	for _, p := range st.Phases {
		e := cur + p.Ns
		if e > end {
			e = end
		}
		tr.AddInterval(cIx, obs.CompilePhasePrefix+p.Name, cur, e)
		cur = e
	}
}

// completeTrace finalizes a job's timeline: files it into the ring and
// reservoir, feeds the per-stage attribution histograms, and dumps the
// timeline into the structured log when the job exceeded the slow-job
// threshold. Called before the outcome is delivered so the completed tree
// is always visible to a client that just received its result.
func (s *Server) completeTrace(j *job, out jobOutcome, status string) {
	if j.tr == nil {
		return
	}
	s.obs.Complete(j.tr, status)
	for _, st := range j.tr.Stages() {
		s.reg.Histogram(stageHistName(st.Kind), stageHistHelp).Observe(st.Ns)
	}
	total := j.tr.TotalNs()
	s.reg.Histogram("earthd_job_wall_ns", "Host wall time per job from submission entry to completion.").Observe(total)
	if thr := s.obs.SlowJobThreshold(); thr > 0 && total >= int64(thr) {
		s.reg.Counter("earthd_slow_jobs_total", "Jobs exceeding the slow-job threshold (timeline dumped to the log).").Inc()
		var b strings.Builder
		_ = j.tr.Snapshot().WriteText(&b)
		s.log.Warn("slow job", "job", j.jid, "status", status,
			"wall", time.Duration(total).String(), "threshold", thr.String(),
			"timeline", b.String())
	}
	if s.logDebug {
		errMsg := ""
		if out.err != nil {
			errMsg = out.err.msg
		}
		s.log.Debug("job completed", "job", j.jid, "status", status,
			"wall", time.Duration(total).String(), "err", errMsg)
	}
}

// handleTimeline serves GET /jobs/{id}/timeline: the job's host-side span
// tree — live (open spans report elapsed-so-far) or completed, as long as
// the ring or the slowest-jobs reservoir still retains it.
// ?format=json (default) | text | chrome (trace_event, opens in Perfetto).
func (s *Server) handleTimeline(w http.ResponseWriter, r *http.Request) {
	jid := r.PathValue("id")
	if !s.obs.Enabled() {
		s.writeJobError(w, errf(404, "timelines disabled (start earthd with -obs)"))
		return
	}
	tr := s.obs.Lookup(jid)
	if tr == nil {
		s.writeJobError(w, errf(404, "no timeline for job %q (unknown id, or evicted from the timeline ring)", jid))
		return
	}
	tl := tr.Snapshot()
	switch r.URL.Query().Get("format") {
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		tl.WriteJSON(w)
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		tl.WriteText(w)
	case "chrome":
		w.Header().Set("Content-Type", "application/json")
		tl.WriteChrome(w)
	default:
		s.writeJobError(w, errf(400, "format: want json, text, or chrome"))
	}
}

// stageQuantiles is one row of the tail-latency attribution report.
type stageQuantiles struct {
	Stage string `json:"stage"`
	Count int64  `json:"count"`
	P50Ns int64  `json:"p50_ns"`
	P95Ns int64  `json:"p95_ns"`
	P99Ns int64  `json:"p99_ns"`
}

// stageAttribution reads the per-stage histograms back out of the service
// registry — the same series /metrics exports — as p50/p95/p99 rows.
func (s *Server) stageAttribution() []stageQuantiles {
	var out []stageQuantiles
	for _, kind := range obs.StageKinds {
		snap := s.reg.Histogram(stageHistName(kind), stageHistHelp).Snapshot()
		if snap.N == 0 {
			continue
		}
		out = append(out, stageQuantiles{
			Stage: kind,
			Count: snap.N,
			P50Ns: snap.Quantile(0.50),
			P95Ns: snap.Quantile(0.95),
			P99Ns: snap.Quantile(0.99),
		})
	}
	return out
}

// handleDebugJobs serves GET /debug/jobs: the recent and slowest timeline
// tables plus the tail-latency attribution report. ?format=json for the
// machine-readable form (what earthload -attrib consumes via /metrics.json
// is the same histogram data).
func (s *Server) handleDebugJobs(w http.ResponseWriter, r *http.Request) {
	if !s.obs.Enabled() {
		s.writeJobError(w, errf(404, "timelines disabled (start earthd with -obs)"))
		return
	}
	recent := s.obs.Recent()
	slowest := s.obs.Slowest()
	attrib := s.stageAttribution()
	if r.URL.Query().Get("format") == "json" {
		resp := struct {
			Attribution []stageQuantiles `json:"attribution"`
			Recent      []*obs.Timeline  `json:"recent"`
			Slowest     []*obs.Timeline  `json:"slowest"`
		}{Attribution: attrib}
		for _, t := range recent {
			resp.Recent = append(resp.Recent, t.Snapshot())
		}
		for _, t := range slowest {
			resp.Slowest = append(resp.Slowest, t.Snapshot())
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(resp)
		return
	}

	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	bw := bufio.NewWriter(w)
	live, ring, slow, completed := s.obs.Stats()
	fmt.Fprintf(bw, "earthd job timelines — %d live, %d recent, %d slowest retained, %d completed\n\n",
		live, ring, slow, completed)
	if len(attrib) > 0 {
		fmt.Fprintf(bw, "tail-latency attribution (all completed jobs):\n")
		fmt.Fprintf(bw, "  %-18s %10s %12s %12s %12s\n", "STAGE", "COUNT", "P50", "P95", "P99")
		for _, a := range attrib {
			fmt.Fprintf(bw, "  %-18s %10d %12s %12s %12s\n", a.Stage, a.Count,
				time.Duration(a.P50Ns), time.Duration(a.P95Ns), time.Duration(a.P99Ns))
		}
		fmt.Fprintln(bw)
	}
	table := func(title string, traces []*obs.JobTrace) {
		if len(traces) == 0 {
			return
		}
		fmt.Fprintf(bw, "%s:\n", title)
		fmt.Fprintf(bw, "  %-44s %-10s %12s %12s %12s %12s\n", "JOB", "STATUS", "WALL", "QUEUE", "COMPILE", "SIM")
		for _, t := range traces {
			tl := t.Snapshot()
			var queue, compile, sim int64
			for _, sp := range tl.Spans {
				switch sp.Kind {
				case obs.KindQueueWait:
					queue = sp.DurNs
				case obs.KindCompile:
					compile = sp.DurNs
				case obs.KindSimRun:
					sim = sp.DurNs
				}
			}
			status := tl.Status
			if status == "" {
				status = "live"
			}
			fmt.Fprintf(bw, "  %-44s %-10s %12s %12s %12s %12s\n",
				tl.JobID, status, time.Duration(tl.WallNs),
				time.Duration(queue), time.Duration(compile), time.Duration(sim))
		}
		fmt.Fprintln(bw)
	}
	table("recent (newest first)", recent)
	table("slowest", slowest)
	fmt.Fprintf(bw, "per-job detail: GET /jobs/{id}/timeline?format=text\n")
	bw.Flush()
}

// handleBuildinfo serves GET /buildinfo: the binary's identity (module
// version, VCS revision, toolchain) plus the service shape.
func (s *Server) handleBuildinfo(w http.ResponseWriter, _ *http.Request) {
	resp := struct {
		obs.Build
		Shards     int  `json:"shards"`
		QueueDepth int  `json:"queue_depth"`
		SimWorkers int  `json:"sim_workers,omitempty"`
		Journaled  bool `json:"journaled"`
		Obs        bool `json:"obs"`
	}{
		Build:      obs.Info(),
		Shards:     s.cfg.Shards,
		QueueDepth: s.cfg.QueueDepth,
		SimWorkers: s.cfg.SimWorkers,
		Journaled:  s.jr != nil,
		Obs:        s.obs.Enabled(),
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(resp)
}

// statusWriter captures the response status for the access log while
// passing Flush through (the NDJSON batch stream depends on it).
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// accessLog wraps the service mux with a structured access-log line per
// request. With no logger configured (the library default) the handler is
// returned unwrapped — zero per-request cost.
func (s *Server) accessLog(h http.Handler) http.Handler {
	if !s.logInfo {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		t0 := time.Now()
		h.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		s.log.Info("request", "method", r.Method, "path", r.URL.Path,
			"status", sw.status, "dur", time.Since(t0).String(),
			"remote", r.RemoteAddr)
	})
}
