package server

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/earthsim"
	"repro/internal/obs"
	"repro/internal/olden"
	"repro/internal/trace"
)

// JobRequest is one compile-and-simulate job as submitted over HTTP/JSON:
// an EARTH-C program (inline source or a named Olden benchmark) crossed
// with a machine, cost-model, fault, and limit configuration.
type JobRequest struct {
	// V is the job schema version. 0 (absent) and 1 are accepted today and
	// mean the same thing; anything newer is rejected with 400 so an old
	// server never silently misreads a newer client's job. Unknown fields
	// are likewise rejected at the HTTP layer (SchemaVersion).
	V int `json:"v,omitempty"`
	// ID is an optional client-supplied idempotency key. With journaling
	// enabled, re-submitting a completed job's ID is answered from its
	// journaled completion record without re-running; without an ID the
	// journal keys the job by the content hash of the request itself. IDs
	// are printable non-space ASCII, at most 200 bytes.
	ID string `json:"id,omitempty"`
	// Async makes submission return 202 + the job id immediately instead of
	// blocking for the result; poll GET /jobs/{id} (or re-submit the same
	// id) to collect it. Aborts go to DELETE /jobs/{id}.
	Async bool `json:"async,omitempty"`
	// Name labels the unit in results and diagnostics (default "job.ec", or
	// "<benchmark>.ec" for benchmark jobs).
	Name string `json:"name,omitempty"`
	// Source is inline EARTH-C source text. Exactly one of Source and
	// Benchmark must be set.
	Source string `json:"source,omitempty"`
	// Benchmark names an internal/olden program ("power", "tsp", "health",
	// "perimeter", "voronoi"); the service expands it server-side so batching
	// by source hash applies across clients.
	Benchmark string `json:"benchmark,omitempty"`
	// Size and Iters override the benchmark's problem-size parameters
	// (0 = the benchmark's default).
	Size  int `json:"size,omitempty"`
	Iters int `json:"iters,omitempty"`
	// Quick selects the scaled-down quick parameters (olden.QuickParams)
	// instead of the benchmark defaults; Size/Iters still override.
	Quick bool `json:"quick,omitempty"`
	// Nodes is the simulated machine size (default: the server's).
	Nodes int `json:"nodes,omitempty"`
	// Optimize runs the paper's communication optimization (default true;
	// set to false explicitly for an unoptimized build).
	Optimize *bool `json:"optimize,omitempty"`
	// Sequential selects the truly-sequential baseline (1 node only).
	Sequential bool `json:"sequential,omitempty"`
	// Cost overrides simulator cost parameters, e.g.
	// "NetLatency=2500,SUService=800" (earthsim.ParseOverrides syntax).
	Cost string `json:"cost,omitempty"`
	// Faults injects deterministic transport faults, e.g.
	// "drop=0.01,dup=0.005,delay=3" (earthsim.ParseFaultSpec syntax).
	Faults string `json:"faults,omitempty"`
	// FaultSeed seeds the fault PRNG (default 1) — same seed + spec
	// reproduces the run exactly.
	FaultSeed uint64 `json:"fault_seed,omitempty"`
	// Fuel bounds simulated EU instructions (0 = the server's default cap).
	Fuel int64 `json:"fuel,omitempty"`
	// TraceSummary attaches a per-job trace recorder and returns the text
	// summary plus a compact digest (trace.Brief) with the result.
	TraceSummary bool `json:"trace_summary,omitempty"`
	// Cache is the per-job compile cache policy: "" (use the server's
	// cache), "bypass" (cold compile, leave no trace in the cache), or
	// "no-store" (read-only probe).
	Cache string `json:"cache,omitempty"`
}

// SchemaVersion is the newest job schema this server speaks.
const SchemaVersion = 1

// cachePolicy maps the request's Cache field to the core policy.
func (r *JobRequest) cachePolicy() (core.CachePolicy, *jobError) {
	switch r.Cache {
	case "":
		return core.CachePolicy{}, nil
	case "bypass":
		return core.CachePolicy{Bypass: true}, nil
	case "no-store":
		return core.CachePolicy{NoStore: true}, nil
	default:
		return core.CachePolicy{}, errf(400, "cache: unknown policy %q (want bypass or no-store)", r.Cache)
	}
}

// validateVersion rejects jobs from a newer schema generation.
func (r *JobRequest) validateVersion() *jobError {
	if r.V < 0 || r.V > SchemaVersion {
		return errf(400, "v: unsupported job schema version %d (this server speaks <= %d)", r.V, SchemaVersion)
	}
	return nil
}

// JobResult is the service's response for one completed job. Everything
// except the submission bookkeeping (ID, Shard, Batched) and the host-side
// latency fields (QueueNs, CompileNs, RunNs) is a deterministic function of
// the request: identical requests produce byte-identical payloads, which is
// what lets the service share one compile across concurrent duplicates.
type JobResult struct {
	ID uint64 `json:"id"`
	// JobID is the submission's idempotency key (client-supplied or derived
	// from the request's content hash) — the handle for GET/DELETE
	// /jobs/{id} and exactly-once re-submission.
	JobID string `json:"job_id,omitempty"`
	// Replayed reports that this payload was served from a completed job's
	// record (journal or in-memory index) rather than a fresh run.
	Replayed   bool   `json:"replayed,omitempty"`
	Name       string `json:"name"`
	Benchmark  string `json:"benchmark,omitempty"`
	SourceHash string `json:"source_hash"`
	// Shard is the pipeline shard that executed the job.
	Shard int `json:"shard"`
	// Batched reports that this job's compile was shared with a concurrent
	// identical submission (single-flight batching by source hash).
	Batched   bool                 `json:"batched"`
	Nodes     int                  `json:"nodes"`
	Optimized bool                 `json:"optimized"`
	TimeNs    int64                `json:"time_ns"` // simulated time
	Output    string               `json:"output"`
	MainRet   int64                `json:"main_ret"`
	Counts    earthsim.Counts      `json:"counts"`
	Faults    *earthsim.FaultStats `json:"faults,omitempty"`
	Warnings  []string             `json:"warnings,omitempty"`
	// Host-side latency breakdown (wall clock, non-deterministic).
	QueueNs   int64 `json:"queue_ns"`
	CompileNs int64 `json:"compile_ns"`
	RunNs     int64 `json:"run_ns"`
	// TraceSummary/Trace are present when the request asked for them.
	TraceSummary string       `json:"trace_summary,omitempty"`
	Trace        *trace.Brief `json:"trace,omitempty"`
}

// CanonicalPayload renders the deterministic portion of the result: the
// submission bookkeeping (ID, JobID, Shard, Batched, Replayed) and host-side
// latency fields are zeroed, so identical requests — batched, cached,
// replayed from the journal, or run cold on different servers — compare
// byte-identical. The chaos harness and the batching tests are stated over
// these bytes.
func (r *JobResult) CanonicalPayload() ([]byte, error) {
	c := *r
	c.ID, c.JobID, c.Shard = 0, "", 0
	c.Batched, c.Replayed = false, false
	c.QueueNs, c.CompileNs, c.RunNs = 0, 0, 0
	return json.Marshal(&c)
}

// jobError is a job-level failure with the HTTP status it maps to.
type jobError struct {
	status int
	msg    string
}

func (e *jobError) Error() string { return e.msg }

func errf(status int, format string, args ...any) *jobError {
	return &jobError{status: status, msg: fmt.Sprintf(format, args...)}
}

// job is one queued unit of work: the validated request plus its resolved
// source and the channel its worker reports on.
type job struct {
	id   uint64
	jid  string // submission id (idempotency key); see dedupKey
	req  *JobRequest
	name string
	src  string
	key  string // single-flight compile key (source hash + compile options)
	enq  time.Time
	// ctx carries the job's cancellation signal (DELETE, client disconnect,
	// wall deadline) into the simulator; cancel fires it with a cause and
	// stopTimer releases the wall-deadline timer.
	ctx       context.Context
	cancel    context.CancelCauseFunc
	stopTimer context.CancelFunc
	// replayed marks a job rebuilt from the journal on restart: it is
	// already durably accepted, so Submit-side journaling is skipped.
	replayed bool
	// tr is the job's host-side span timeline (nil when tracing is off);
	// qIx is its queue.wait span, opened at enqueue and closed by the
	// worker that dequeues the job.
	tr  *obs.JobTrace
	qIx int
	// res receives exactly one outcome; buffered so a worker never blocks on
	// a departed client.
	res chan jobOutcome
}

// discard releases the job's context resources (the cancel cause and the
// wall-deadline timer). Safe to call more than once.
func (j *job) discard() {
	if j.cancel != nil {
		j.cancel(nil)
	}
	if j.stopTimer != nil {
		j.stopTimer()
	}
}

type jobOutcome struct {
	result *JobResult
	err    *jobError
}

// resolve validates req and fills in the job's source text and unit name.
// Validation failures map to 400; they are detected before the job is
// accepted into the queue.
func resolve(req *JobRequest) (name, src string, err *jobError) {
	switch {
	case req.Source != "" && req.Benchmark != "":
		return "", "", errf(400, "set exactly one of source and benchmark, not both")
	case req.Source != "":
		name = req.Name
		if name == "" {
			name = "job.ec"
		}
		return name, req.Source, nil
	case req.Benchmark != "":
		b := olden.ByName(req.Benchmark)
		if b == nil {
			return "", "", errf(400, "unknown benchmark %q", req.Benchmark)
		}
		p := b.DefaultParams
		if req.Quick {
			p = olden.QuickParams(b)
		}
		if req.Size > 0 {
			p.Size = req.Size
		}
		if req.Iters > 0 {
			p.Iters = req.Iters
		}
		name = req.Name
		if name == "" {
			name = b.Name + ".ec"
		}
		return name, b.Source(p), nil
	default:
		return "", "", errf(400, "set exactly one of source and benchmark")
	}
}

// runSpec parses the request's run-time configuration. Spec syntax errors
// map to 400 like the rest of validation.
func runSpec(req *JobRequest) (*earthsim.Config, *earthsim.FaultConfig, *jobError) {
	machine, err := earthsim.ParseOverrides(req.Cost)
	if err != nil {
		return nil, nil, errf(400, "cost: %v", err)
	}
	faults, err := earthsim.ParseFaultSpec(req.Faults)
	if err != nil {
		return nil, nil, errf(400, "faults: %v", err)
	}
	if faults != nil && faults.Seed == 0 {
		faults.Seed = req.FaultSeed
		if faults.Seed == 0 {
			faults.Seed = 1
		}
	}
	return machine, faults, nil
}

// optimize reports the request's effective Optimize flag (default true).
func (r *JobRequest) optimize() bool { return r.Optimize == nil || *r.Optimize }
