// Package server implements earthd, the long-lived sharded
// compile-and-simulate service over core.Pipeline: jobs (EARTH-C source ×
// cost-model/fault config) arrive over HTTP/JSON, flow through a bounded
// queue with backpressure, and execute on one of N pipeline shards. Three
// properties make it a traffic-serving system rather than a CLI in a loop:
//
//   - Backpressure, not buffering. The job queue is bounded; when it is
//     full the service answers 429 with a Retry-After hint instead of
//     accepting unbounded work. A draining server answers 503.
//
//   - Single-flight batching composed with a shared compile cache.
//     Concurrent submissions of the same source (keyed by
//     profile.HashSource plus the compile-relevant options) share one
//     compile: the first submission compiles, the duplicates wait on it and
//     run the shared unit. Repeat submissions after the flight disperses
//     are served whole from the server's content-hashed cache
//     (internal/cache), so concurrent duplicates cost one compile and
//     repeated duplicates cost zero. Compilation is deterministic, so
//     identical requests produce byte-identical result payloads whether
//     they were batched, cached, or compiled cold.
//
//   - Aggregated observability. Each shard records into its own
//     metrics.Registry (no cross-shard contention); every /metrics scrape
//     folds the shard registries, the service registry, and process-level
//     runtime metrics into one exposition via metrics.Merge.
//
// Drain (wired to SIGTERM in cmd/earthd) stops intake, lets the workers
// finish every accepted job, and only then releases the HTTP server — an
// accepted job is never lost to a shutdown.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/earthsim"
	"repro/internal/journal"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/trace"
)

// Config sizes the service.
type Config struct {
	// Shards is the number of pipeline shards, each with a dedicated worker
	// goroutine and its own metrics registry (default GOMAXPROCS, capped at
	// 8).
	Shards int
	// QueueDepth bounds the job queue (default 64). A full queue rejects
	// with 429 + Retry-After.
	QueueDepth int
	// Workers is the per-compile analysis worker count (core.Options.Workers;
	// default 1 — shard-level parallelism is usually the better use of cores
	// under load).
	Workers int
	// DefaultNodes is the machine size for jobs that don't specify one
	// (default 4).
	DefaultNodes int
	// MaxFuel caps simulated EU instructions per job, including jobs that
	// ask for no limit, so one runaway program cannot pin a shard forever
	// (default 500M; set negative for unlimited).
	MaxFuel int64
	// JobDeadline bounds host wall-clock time per job run (default 60s).
	JobDeadline time.Duration
	// SimWorkers selects the simulator's sharded event loop for every job
	// (earthsim.Config.SimWorkers; 0 = the classic sequential loop). Results
	// are bit-identical either way, so this is purely a throughput knob.
	SimWorkers int
	// RetryAfter is the hint returned with 429/503 responses (default 1s).
	RetryAfter time.Duration
	// CacheSize caps the shared compile cache (units; default
	// cache.DefaultCapacity, negative disables caching entirely).
	CacheSize int
	// CacheDir, when set, persists compile artifacts on disk across
	// restarts (core cache's -cache-dir store).
	CacheDir string
	// JournalDir, when set, enables the crash-safety layer: every accepted
	// job is journaled (fsynced) before its acceptance is acknowledged, and
	// on restart unfinished jobs replay through the queue while completed
	// ones answer re-submissions from their journaled payloads. Empty
	// disables journaling entirely (zero hot-path cost).
	JournalDir string
	// JobWallDeadline bounds a job's wall-clock time from acceptance to
	// completion (queue wait included); exceeding it aborts the run via its
	// cancellation context and answers 504. 0 disables. Distinct from
	// JobDeadline, which bounds only the simulator run.
	JobWallDeadline time.Duration
	// BrownoutAfter sheds trace-enabled jobs (the most expensive class) with
	// 429 once the measured queue-wait EWMA exceeds this threshold, keeping
	// latency bounded for plain jobs. 0 disables.
	BrownoutAfter time.Duration
	// RetainResults caps the terminal-job index serving GET /jobs/{id} and
	// exactly-once re-submission (default 4096, oldest evicted first; also
	// the journal's completion-retention window).
	RetainResults int
	// Obs configures host-side job tracing (GET /jobs/{id}/timeline,
	// /debug/jobs, per-stage latency histograms). Disabled by default — a
	// disabled recorder is nil and costs one nil check per instrumentation
	// point.
	Obs obs.Options
	// Logger receives the server's structured diagnostics (job lifecycle,
	// slow-job timeline dumps, access log). Nil discards everything.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = min(runtime.GOMAXPROCS(0), 8)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.DefaultNodes <= 0 {
		c.DefaultNodes = 4
	}
	if c.MaxFuel == 0 {
		c.MaxFuel = 500_000_000
	}
	if c.JobDeadline <= 0 {
		c.JobDeadline = 60 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.RetainResults <= 0 {
		c.RetainResults = 4096
	}
	return c
}

// shard is one execution lane: a dedicated worker goroutine draining the
// shared queue into this shard's pipelines. The registry, trace recorder,
// and sampler are per-shard so the hot path never contends across shards;
// the recorder and sampler are reused job to job (the worker is sequential)
// and the scrape endpoints read them concurrently through their own locks.
type shard struct {
	id      int
	reg     *metrics.Registry
	rec     *trace.Recorder
	sampler *metrics.Sampler
	jobs    atomic.Int64 // jobs completed on this shard
}

// flight is one shared compile. Jobs attach at submit time (refs, guarded
// by Server.fmu) and the first worker to reach an attached job performs the
// compile; the entry lives until the last attached job has executed, so the
// batching window spans the whole queue residency of the duplicates — not
// just the compile's own duration. Submit-time attachment is what makes the
// guarantee deterministic: any set of identical jobs submitted while one of
// them is still pending or running shares exactly one compile.
type flight struct {
	refs    int  // attached jobs not yet finished executing
	started bool // a worker has claimed the compile
	done    chan struct{}
	unit    *core.Unit
	hit     bool // the compile was served whole from the unit cache
	err     error
}

// Server is the sharded compile-and-simulate service.
type Server struct {
	cfg    Config
	reg    *metrics.Registry // service-level registry
	proc   *metrics.ProcessCollector
	shards []*shard
	cache  *cache.Cache // shared across shards; nil when CacheSize < 0
	start  time.Time

	// obs records per-job host-side span timelines (nil when disabled).
	// Like proc, it lives outside the shard pipeline registries: host
	// wall-clock quantities never reach the byte-deterministic telemetry.
	obs *obs.Recorder
	log *slog.Logger
	// logDebug/logInfo cache the logger's level gates so hot paths skip
	// slog's argument boxing entirely when a level is off (handler levels
	// are fixed at construction).
	logDebug bool
	logInfo  bool

	mu       sync.Mutex // guards draining + queue close
	draining bool
	queue    chan *job

	fmu     sync.Mutex
	flights map[string]*flight

	// jr is the durability journal (nil when Config.JournalDir is empty);
	// jmu guards the submission index (jobs + jobOrder), and replayWg
	// tracks the restart-replay feeder so Drain can wait for it before
	// closing the queue.
	jr       *journal.Journal
	jmu      sync.Mutex
	jobs     map[string]*jobState
	jobOrder []string
	replayWg sync.WaitGroup

	// svcEwmaNs estimates per-job service time (drives Retry-After);
	// waitEwmaNs estimates queue wait (drives the brownout knob).
	svcEwmaNs  atomic.Int64
	waitEwmaNs atomic.Int64

	nextID    atomic.Uint64
	accepted  atomic.Int64
	completed atomic.Int64

	wg sync.WaitGroup
}

// New builds a server and starts its shard workers. It panics if the
// configuration cannot be realized, which is only possible with JournalDir
// set (an unopenable journal directory); journaled deployments should use
// Open and handle the error.
func New(cfg Config) *Server {
	s, err := Open(cfg)
	if err != nil {
		panic(fmt.Sprintf("server.New: %v", err))
	}
	return s
}

// Open builds a server, recovers its journal (when Config.JournalDir is
// set), and starts its shard workers. Journaled jobs left unfinished by the
// previous process re-enter the queue in the background; completed ones
// answer re-submissions from their journaled payloads.
func Open(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		reg:     metrics.NewRegistry(),
		proc:    metrics.NewProcessCollector(),
		queue:   make(chan *job, cfg.QueueDepth),
		flights: make(map[string]*flight),
		jobs:    make(map[string]*jobState),
		start:   time.Now(),
		obs:     obs.New(cfg.Obs),
		log:     cfg.Logger,
	}
	if s.log == nil {
		s.log = obs.Discard()
	} else {
		s.logDebug = s.log.Enabled(context.Background(), slog.LevelDebug)
		s.logInfo = s.log.Enabled(context.Background(), slog.LevelInfo)
	}
	if cfg.CacheSize >= 0 {
		s.cache = cache.New(cfg.CacheSize, cfg.CacheDir)
	}
	var rec *journal.Recovery
	if cfg.JournalDir != "" {
		jr, r, err := journal.Open(cfg.JournalDir, journal.Options{Retain: cfg.RetainResults})
		if err != nil {
			return nil, fmt.Errorf("journal: %w", err)
		}
		s.jr, rec = jr, r
	}
	s.reg.Gauge("earthd_shards", "Pipeline shards serving the job queue.").Set(int64(cfg.Shards))
	for i := 0; i < cfg.Shards; i++ {
		sh := &shard{
			id:      i,
			reg:     metrics.NewRegistry(),
			rec:     trace.NewRecorder(0),
			sampler: metrics.NewSampler(0, 0),
		}
		s.shards = append(s.shards, sh)
		s.wg.Add(1)
		go s.worker(sh)
	}
	if rec != nil {
		s.recover(rec)
	}
	return s, nil
}

// Config returns the effective (defaulted) configuration.
func (s *Server) Config() Config { return s.cfg }

// Submission describes one accepted (or deduplicated) submission.
type Submission struct {
	// JobID is the submission's idempotency key — the handle for
	// GET/DELETE /jobs/{id}.
	JobID string
	// Res receives the job's outcome exactly once.
	Res <-chan jobOutcome
	// Served reports that the outcome was answered from a completed job's
	// record (already buffered on Res) without running anything.
	Served bool
	// Owner reports that this submission enqueued the job (as opposed to
	// coalescing onto an identical in-flight one); only the owner's client
	// disconnect should cancel it.
	Owner bool
}

// Submit validates req and places it on the queue, returning the channel
// the job's outcome arrives on. A *jobError return means the job was NOT
// accepted: 400 for validation failures, 429 when the queue is full (or
// shed by brownout), 503 when the server is draining. Once accepted, a job
// always produces exactly one outcome, even through a drain.
func (s *Server) Submit(req *JobRequest) (<-chan jobOutcome, *jobError) {
	sub, jerr := s.SubmitEx(req)
	if jerr != nil {
		return nil, jerr
	}
	return sub.Res, nil
}

// SubmitEx is Submit with the submission's identity attached. The flow:
//
//  1. validate (400s happen before any state is touched);
//  2. consult the index: a completed id answers from its record (journaled
//     payloads survive restarts), an in-flight id coalesces, a cancelled id
//     re-runs;
//  3. backpressure: brownout (trace-enabled jobs shed first under queue
//     latency), drain (503), queue full (429 with a measured Retry-After);
//  4. with journaling on, fsync the acceptance record — only then is the
//     job visible to workers and its acceptance acknowledged.
func (s *Server) SubmitEx(req *JobRequest) (*Submission, *jobError) {
	t0 := time.Now() // epoch of the job's host-side timeline
	if jerr := req.validateVersion(); jerr != nil {
		s.reject("invalid")
		return nil, jerr
	}
	name, src, jerr := resolve(req)
	if jerr != nil {
		s.reject("invalid")
		return nil, jerr
	}
	if _, jerr := req.cachePolicy(); jerr != nil {
		s.reject("invalid")
		return nil, jerr
	}
	if _, _, jerr := runSpec(req); jerr != nil {
		s.reject("invalid")
		return nil, jerr
	}
	jid, jerr := dedupKey(req, s.jr != nil, s.nextID.Add(1))
	if jerr != nil {
		s.reject("invalid")
		return nil, jerr
	}

	s.jmu.Lock()
	if st := s.jobs[jid]; st != nil {
		switch st.status {
		case StatusDone:
			out := st.servedOutcome(jid)
			s.jmu.Unlock()
			ch := make(chan jobOutcome, 1)
			ch <- out
			s.reg.Counter("earthd_jobs_deduped_total", "Re-submissions answered from a completed job's record without running.").Inc()
			return &Submission{JobID: jid, Res: ch, Served: true}, nil
		case StatusQueued, StatusRunning:
			ch := make(chan jobOutcome, 1)
			st.followers = append(st.followers, ch)
			s.jmu.Unlock()
			s.reg.Counter("earthd_jobs_coalesced_total", "Submissions coalesced onto an identical in-flight job.").Inc()
			return &Submission{JobID: jid, Res: ch}, nil
		case StatusCancelled:
			// An explicit re-submission of a cancelled job runs fresh: the
			// cancellation closed that attempt, not the id.
			delete(s.jobs, jid)
		}
	}
	s.jmu.Unlock()

	if s.cfg.BrownoutAfter > 0 && req.TraceSummary && len(s.queue) > 0 &&
		time.Duration(s.waitEwmaNs.Load()) > s.cfg.BrownoutAfter {
		s.reject("brownout")
		return nil, errf(429, "brownout: queue wait %s exceeds %s; trace-enabled jobs are shed first — retry later or drop trace_summary",
			time.Duration(s.waitEwmaNs.Load()).Round(time.Millisecond), s.cfg.BrownoutAfter)
	}

	j := s.newJob(req, jid, name, src, t0)
	// The accept span starts at the timeline epoch: it covers the
	// validation that ran before the trace object existed.
	accIx := j.tr.StartAt(-1, obs.KindAccept, 0)
	// Attach to the compile flight before enqueueing so a worker can never
	// dequeue the job ahead of its flight registration.
	aIx := j.tr.Start(accIx, obs.KindBatchAttach)
	s.attach(j.key)
	j.tr.End(aIx)
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.release(j.key)
		j.discard()
		s.reject("draining")
		return nil, errf(503, "server is draining")
	}
	if len(s.queue) == cap(s.queue) {
		s.mu.Unlock()
		s.release(j.key)
		j.discard()
		s.reject("queue_full")
		return nil, errf(429, "queue full (%d jobs deep); retry later", s.cfg.QueueDepth)
	}
	if s.jr != nil {
		// The durability point: the acceptance record is on disk before the
		// client hears 200/202. A journal that cannot write cannot promise,
		// so the job is refused rather than accepted volatile.
		jIx := j.tr.Start(accIx, obs.KindJournalAppend)
		b, err := json.Marshal(req)
		if err == nil {
			err = s.jr.Accepted(jid, b)
		}
		j.tr.End(jIx)
		if err != nil {
			s.mu.Unlock()
			s.release(j.key)
			j.discard()
			s.reject("journal")
			return nil, errf(503, "journal write failed: %v", err)
		}
		s.journalRecord(journal.KindAccepted)
	}
	// Register the index entry before the job becomes visible to a worker.
	s.jmu.Lock()
	s.jobs[jid] = &jobState{jid: jid, status: StatusQueued, cancel: j.cancel}
	s.jmu.Unlock()
	// The job is now accepted: close the accept stage, open queue.wait, and
	// make the timeline visible to GET /jobs/{id}/timeline. Rejected paths
	// above never Track, so their traces simply drop.
	j.tr.End(accIx)
	j.qIx = j.tr.Start(-1, obs.KindQueueWait)
	s.obs.Track(j.tr)
	// Space was checked above and every non-replay sender holds s.mu, so
	// this send can block only momentarily behind the restart replayer.
	s.queue <- j
	s.mu.Unlock()
	s.accepted.Add(1)
	s.reg.Counter("earthd_jobs_accepted_total", "Jobs accepted into the queue.").Inc()
	if s.logDebug {
		s.log.Debug("job accepted", "job", jid, "name", name, "queue_len", len(s.queue))
	}
	return &Submission{JobID: jid, Res: j.res, Owner: true}, nil
}

func (s *Server) reject(reason string) {
	s.reg.Counter(fmt.Sprintf("earthd_jobs_rejected_total{reason=%q}", reason),
		"Jobs rejected before entering the queue.").Inc()
}

// Drain stops intake and waits (bounded by ctx) for the workers to finish
// every accepted job — including journaled jobs still being replayed after
// a restart. Idempotent; concurrent calls all wait. On a complete drain the
// journal is synced and closed.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	first := !s.draining
	s.draining = true
	s.mu.Unlock()
	if first {
		// The replayer's jobs are journaled acceptances from the previous
		// process — as binding as any 202 this process issued — so they must
		// all be queued before the queue can close.
		s.replayWg.Wait()
		s.mu.Lock()
		// Closing the queue still delivers every buffered job to the
		// workers; they exit when it is empty.
		close(s.queue)
		s.mu.Unlock()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		if s.jr != nil {
			if err := s.jr.Close(); err != nil {
				return fmt.Errorf("drain: journal close: %w", err)
			}
		}
		return nil
	case <-ctx.Done():
		return fmt.Errorf("drain: %w (%d of %d accepted jobs completed)",
			ctx.Err(), s.completed.Load(), s.accepted.Load())
	}
}

// Draining reports whether intake has stopped.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// worker drains the shared queue into one shard until drain closes it.
// Jobs whose context fired while they were still queued (DELETE before a
// worker reached them, or a wall deadline consumed by queue wait) resolve
// without executing.
func (s *Server) worker(sh *shard) {
	defer s.wg.Done()
	for j := range s.queue {
		var out jobOutcome
		var svcNs int64
		j.tr.End(j.qIx)
		if j.ctx.Err() != nil {
			out = cancelOutcome(j)
		} else {
			s.setRunning(j.jid)
			t0 := time.Now()
			out = s.execute(sh, j)
			svcNs = time.Since(t0).Nanoseconds()
		}
		s.release(j.key)
		s.finish(sh, j, out, svcNs)
	}
}

// compileKey keys the single-flight table: only compile-relevant inputs
// participate, so jobs that differ in run configuration still share a
// compile. The cache policy participates so a "bypass" probe never
// piggybacks on (or feeds) a cached flight.
func compileKey(hash string, optimize bool, policy string) string {
	return fmt.Sprintf("%s|opt=%t|cache=%s", hash, optimize, policy)
}

// compileKeyFor derives a request's single-flight key from its resolved
// source.
func compileKeyFor(req *JobRequest, src string) string {
	return compileKey(profile.HashSource(src), req.optimize(), req.Cache)
}

// attach joins (creating if needed) the compile flight for key.
func (s *Server) attach(key string) {
	s.fmu.Lock()
	f := s.flights[key]
	if f == nil {
		f = &flight{done: make(chan struct{})}
		s.flights[key] = f
	}
	f.refs++
	s.fmu.Unlock()
}

// release detaches one job from its flight, disposing the entry when the
// last attached job is done with the unit. The flight table is single-flight
// only; once no attached job remains, the next identical submission goes
// back through the shared content-hashed cache (a unit hit, not a compile).
func (s *Server) release(key string) {
	s.fmu.Lock()
	if f := s.flights[key]; f != nil {
		f.refs--
		if f.refs <= 0 {
			delete(s.flights, key)
		}
	}
	s.fmu.Unlock()
}

// compileShared resolves j's compile: the first worker to reach any job
// attached to the flight performs it, and every other attached job waits
// and shares the unit. batched reports whether this job shared another
// job's compile; hit reports a unit-cache hit (meaningful only when
// !batched). Compilation is deterministic, so the shared unit is
// byte-identical to what a private compile would have produced.
func (s *Server) compileShared(sh *shard, j *job) (u *core.Unit, batched, hit bool, err error) {
	s.fmu.Lock()
	f := s.flights[j.key]
	if f == nil {
		// Unreachable by construction (Submit attaches before enqueue, and
		// the job itself still holds a ref), but fail soft rather than
		// deadlock if the invariant is ever broken.
		f = &flight{refs: 1, done: make(chan struct{})}
		s.flights[j.key] = f
	}
	if f.started {
		s.fmu.Unlock()
		s.reg.Counter("earthd_batch_shared_total", "Jobs whose compile was shared with a concurrent identical submission.").Inc()
		<-f.done
		return f.unit, true, false, f.err
	}
	f.started = true
	s.fmu.Unlock()

	p := core.NewPipeline(core.Options{
		Optimize: j.req.optimize(),
		Workers:  s.cfg.Workers,
		Metrics:  sh.reg,
		Cache:    s.cache,
		// With tracing on, keep the per-phase stats on the unit so the
		// job's compile span gets phase children.
		Stats: s.obs.Enabled(),
	})
	policy, jerr := j.req.cachePolicy()
	if jerr != nil {
		// Unreachable: Submit validated the policy before accepting the job.
		f.err = jerr
		close(f.done)
		return nil, false, false, f.err
	}
	res, err := p.Do(core.CompileRequest{Name: j.name, Source: j.src, Cache: policy})
	if err == nil {
		f.unit = res.Unit
		f.hit = res.Hit
		if !res.Hit {
			// Only cache misses perform work; batched duplicates and repeat
			// submissions served from the unit cache don't compile at all.
			s.reg.Counter("earthd_compiles_total", "Distinct compiles performed (batched duplicates and cache hits excluded).").Inc()
		}
	}
	f.err = err
	close(f.done)
	return f.unit, false, f.hit, f.err
}

// execute runs one job on sh. Compile errors and run failures (traps,
// deadlocks, exhausted limits) map to 422: the request was well-formed but
// the program is not executable as submitted.
func (s *Server) execute(sh *shard, j *job) jobOutcome {
	queueNs := time.Since(j.enq).Nanoseconds()
	s.reg.Histogram("earthd_queue_wait_ns", "Host time jobs spent queued.").Observe(queueNs)
	ewmaUpdate(&s.waitEwmaNs, queueNs)

	req := j.req
	machine, faults, jerr := runSpec(req) // re-parse; validated at submit
	if jerr != nil {
		return jobOutcome{err: jerr}
	}
	nodes := req.Nodes
	if nodes <= 0 {
		nodes = s.cfg.DefaultNodes
	}
	fuel := req.Fuel
	if s.cfg.MaxFuel > 0 && (fuel <= 0 || fuel > s.cfg.MaxFuel) {
		fuel = s.cfg.MaxFuel
	}

	cIx := j.tr.Start(-1, obs.KindCompile)
	t0 := time.Now()
	u, batched, hit, err := s.compileShared(sh, j)
	compileNs := time.Since(t0).Nanoseconds()
	j.tr.End(cIx)
	if err != nil {
		return jobOutcome{err: errf(422, "compile: %v", err)}
	}
	s.compileChildren(j.tr, cIx, batched, hit, u)

	// Traced jobs get a pipeline carrying the shard's recorder; the worker
	// is sequential, so Reset-per-job reuse is safe while scrapes read the
	// recorder through its own lock.
	runOpts := core.Options{Workers: s.cfg.Workers, Metrics: sh.reg}
	if req.TraceSummary {
		sh.rec.Reset()
		runOpts.Trace = sh.rec
	}
	sh.sampler.Reset()
	rp := core.NewPipeline(runOpts)
	rIx := j.tr.Start(-1, obs.KindSimRun)
	t0 = time.Now()
	res, err := rp.Run(u, core.RunConfig{
		Nodes:      nodes,
		Sequential: req.Sequential,
		Machine:    machine,
		SimWorkers: s.cfg.SimWorkers,
		Fuel:       fuel,
		Deadline:   s.cfg.JobDeadline,
		Faults:     faults,
		Sampler:    sh.sampler,
		// The job's own context only — never the shared compile flight's:
		// a batched compile must not die with the first client that loses
		// interest, but this run serves exactly this job.
		Context: j.ctx,
	})
	runNs := time.Since(t0).Nanoseconds()
	j.tr.End(rIx)
	if err != nil {
		if errors.Is(err, earthsim.ErrCanceled) {
			return cancelOutcome(j)
		}
		return jobOutcome{err: errf(422, "run: %v", err)}
	}

	r := &JobResult{
		ID:         j.id,
		JobID:      j.jid,
		Name:       j.name,
		Benchmark:  req.Benchmark,
		SourceHash: u.SourceHash,
		Shard:      sh.id,
		Batched:    batched,
		Nodes:      nodes,
		Optimized:  req.optimize(),
		TimeNs:     res.Time,
		Output:     res.Output,
		MainRet:    res.MainRet,
		Counts:     res.Counts,
		Faults:     res.Faults,
		Warnings:   u.Warnings,
		QueueNs:    queueNs,
		CompileNs:  compileNs,
		RunNs:      runNs,
	}
	if req.TraceSummary {
		sum := sh.rec.Summarize()
		r.TraceSummary = sum.String()
		brief := sum.Brief()
		r.Trace = &brief
	}
	return jobOutcome{result: r}
}

// MergedRegistry folds the service registry, every shard registry, and the
// latest process-metrics snapshot into one point-in-time registry — the
// body of a /metrics scrape.
func (s *Server) MergedRegistry() *Registry {
	s.reg.Gauge("earthd_queue_depth", "Jobs currently queued.").Set(int64(len(s.queue)))
	if s.jr != nil {
		st := s.jr.Stats()
		s.reg.Gauge("earthd_journal_lag", "Journal records appended but not yet fsynced.").Set(int64(st.Lag))
		s.reg.Gauge("earthd_journal_segments", "Live journal segment files.").Set(int64(st.Segments))
		s.reg.Gauge("earthd_journal_pending_jobs", "Journaled jobs with no outcome record yet.").Set(int64(st.PendingJobs))
		s.reg.Gauge("earthd_journal_compactions", "Journal snapshot compactions since open.").Set(st.Compactions)
		s.reg.Gauge("earthd_journal_corrupt_records", "Journal records dropped by checksum validation on open.").Set(st.CorruptRecords)
	}
	s.proc.Collect()
	regs := make([]*metrics.Registry, 0, len(s.shards)+2)
	regs = append(regs, s.reg, s.proc.Registry())
	for _, sh := range s.shards {
		regs = append(regs, sh.reg)
	}
	return metrics.Merge(regs...)
}

// Registry aliases metrics.Registry for the package's public surface.
type Registry = metrics.Registry
