package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// obsConfig is the standard observability-enabled test server shape.
func obsConfig(shards, queue int) Config {
	return Config{Shards: shards, QueueDepth: queue, Obs: obs.Options{Enabled: true}}
}

// getTimeline fetches one job's timeline and decodes it.
func getTimeline(t *testing.T, base, jid string) (*obs.Timeline, int) {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + jid + "/timeline")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		return nil, resp.StatusCode
	}
	var tl obs.Timeline
	if err := json.NewDecoder(resp.Body).Decode(&tl); err != nil {
		t.Fatal(err)
	}
	return &tl, 200
}

// topSpans indexes a timeline's top-level spans by kind.
func topSpans(tl *obs.Timeline) map[string]obs.SpanNode {
	m := make(map[string]obs.SpanNode, len(tl.Spans))
	for _, sp := range tl.Spans {
		m[sp.Kind] = sp
	}
	return m
}

// TestTimelineDoneJob: a completed job's timeline is served over HTTP with
// the full stage tree, in all three encodings, and its stage durations sum
// (within tolerance — the gaps are scheduler handoffs) to the wall latency.
func TestTimelineDoneJob(t *testing.T) {
	s := New(obsConfig(2, 8))
	defer drainServer(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	r, jerr := submitWait(t, s, &JobRequest{ID: "tl-done", Source: remoteListSrc, Nodes: 2})
	if jerr != nil {
		t.Fatal(jerr)
	}

	tl, code := getTimeline(t, ts.URL, "tl-done")
	if code != 200 {
		t.Fatalf("GET timeline = %d, want 200", code)
	}
	if tl.JobID != "tl-done" || tl.Status != StatusDone || !tl.Done {
		t.Fatalf("timeline header = %q/%q/done=%t", tl.JobID, tl.Status, tl.Done)
	}
	if tl.WallNs <= 0 {
		t.Fatalf("wall_ns = %d, want > 0", tl.WallNs)
	}
	spans := topSpans(tl)
	for _, want := range []string{obs.KindAccept, obs.KindQueueWait, obs.KindCompile,
		obs.KindSimRun, obs.KindRespond} {
		sp, ok := spans[want]
		if !ok {
			t.Errorf("timeline missing top-level span %q (have %v)", want, tl.Spans)
			continue
		}
		if sp.Open || sp.DurNs < 0 {
			t.Errorf("span %q open=%t dur=%d after completion", want, sp.Open, sp.DurNs)
		}
	}
	// Fresh compile with host tracing on: the compile span carries phase
	// children reconstructed from CompileStats.
	if c, ok := spans[obs.KindCompile]; ok {
		phase := false
		for _, ch := range c.Children {
			if strings.HasPrefix(ch.Kind, obs.CompilePhasePrefix) {
				phase = true
			}
		}
		if !phase {
			t.Errorf("compile span has no phase children: %+v", c.Children)
		}
	}
	// The top-level stages tile the job's wall time; only scheduler handoffs
	// (accept→queue, dequeue→compile, …) are unattributed.
	var sum int64
	for _, sp := range tl.Spans {
		sum += sp.DurNs
	}
	if sum > tl.WallNs+int64(time.Millisecond) {
		t.Errorf("stage sum %d exceeds wall %d", sum, tl.WallNs)
	}
	if sum < tl.WallNs/2 {
		t.Errorf("stage sum %d covers under half of wall %d — stages missing?", sum, tl.WallNs)
	}
	// Cross-check against the result's own host-latency fields: both clocks
	// watched the same queue wait and simulator run. They bracket slightly
	// different windows (the span opens after the accept stage closes), so
	// the bound is 2x plus absolute slack, both directions.
	agree := func(name string, span, reported int64) {
		const slack = int64(50 * time.Millisecond)
		if span > 2*reported+slack || reported > 2*span+slack {
			t.Errorf("%s span %d vs result %d", name, span, reported)
		}
	}
	agree("queue.wait", spans[obs.KindQueueWait].DurNs, r.QueueNs)
	agree("sim.run", spans[obs.KindSimRun].DurNs, r.RunNs)

	// Text and Chrome encodings of the same timeline.
	for _, tc := range []struct{ format, want string }{
		{"text", "status=done"},
		{"text", obs.KindQueueWait},
		{"chrome", `"displayTimeUnit":"ns"`},
		{"chrome", `"ph":"X"`},
	} {
		resp, err := http.Get(ts.URL + "/jobs/tl-done/timeline?format=" + tc.format)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 || !strings.Contains(buf.String(), tc.want) {
			t.Errorf("format=%s: status %d, body missing %q", tc.format, resp.StatusCode, tc.want)
		}
	}
	if resp, err := http.Get(ts.URL + "/jobs/tl-done/timeline?format=yaml"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != 400 {
			t.Errorf("unknown format = %d, want 400", resp.StatusCode)
		}
	}
	if _, code := getTimeline(t, ts.URL, "no-such-job"); code != 404 {
		t.Errorf("unknown job timeline = %d, want 404", code)
	}
}

// TestTimelineLiveAndCancelled: a running job serves a live timeline with
// open spans; after cancellation the retained timeline reports cancelled
// with every span closed.
func TestTimelineLiveAndCancelled(t *testing.T) {
	s := New(obsConfig(1, 4))
	defer drainServer(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// The live-timeline fetch below happens between "running" and Cancel, so
	// the job must outlast an HTTP round trip by a wide margin: quadruple
	// slowListSrc's walk count.
	verySlowSrc := strings.Replace(slowListSrc, "r < 2500", "r < 10000", 1)
	sub, jerr := s.SubmitEx(&JobRequest{ID: "tl-live", Source: verySlowSrc, Nodes: 2})
	if jerr != nil {
		t.Fatal(jerr)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if st, _, _, ok := s.JobStatus("tl-live"); ok && st == StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(time.Millisecond)
	}

	tl, code := getTimeline(t, ts.URL, "tl-live")
	if code != 200 {
		t.Fatalf("live timeline = %d, want 200", code)
	}
	if tl.Done || tl.Status != "" {
		t.Errorf("live timeline done=%t status=%q, want live", tl.Done, tl.Status)
	}
	open := false
	for _, sp := range tl.Spans {
		if sp.Open {
			open = true
		}
	}
	if !open {
		t.Errorf("live timeline has no open span: %+v", tl.Spans)
	}

	if jerr := s.Cancel("tl-live", "test abort"); jerr != nil {
		t.Fatal(jerr)
	}
	out := <-sub.Res
	if out.err == nil || out.err.status != 499 {
		t.Fatalf("cancelled outcome = %+v, want 499", out)
	}
	tl, code = getTimeline(t, ts.URL, "tl-live")
	if code != 200 {
		t.Fatalf("cancelled timeline = %d, want 200", code)
	}
	if !tl.Done || tl.Status != StatusCancelled {
		t.Errorf("cancelled timeline done=%t status=%q", tl.Done, tl.Status)
	}
	var assertClosed func(spans []obs.SpanNode)
	assertClosed = func(spans []obs.SpanNode) {
		for _, sp := range spans {
			if sp.Open {
				t.Errorf("span %q still open after cancellation", sp.Kind)
			}
			assertClosed(sp.Children)
		}
	}
	assertClosed(tl.Spans)
}

// TestTimelineQueuedJob: a job still waiting in the queue already has a
// timeline — accept closed, queue.wait open.
func TestTimelineQueuedJob(t *testing.T) {
	s := New(obsConfig(1, 4))
	defer drainServer(t, s)

	busy, jerr := s.Submit(&JobRequest{Source: slowListSrc, Nodes: 2})
	if jerr != nil {
		t.Fatal(jerr)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(s.queue) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never dequeued the busy job")
		}
		time.Sleep(time.Millisecond)
	}
	sub, jerr := s.SubmitEx(&JobRequest{ID: "tl-queued", Source: remoteListSrc, Nodes: 2})
	if jerr != nil {
		t.Fatal(jerr)
	}
	tr := s.obs.Lookup("tl-queued")
	if tr == nil {
		t.Fatal("no live trace for the queued job")
	}
	spans := topSpans(tr.Snapshot())
	if sp, ok := spans[obs.KindAccept]; !ok || sp.Open {
		t.Errorf("accept span = %+v, want closed", sp)
	}
	if sp, ok := spans[obs.KindQueueWait]; !ok || !sp.Open {
		t.Errorf("queue.wait span = %+v, want open while queued", sp)
	}
	<-busy
	<-sub.Res
}

// TestTimelineRingBoundedServer: the ring and reservoir caps hold through
// the real request path — sustained distinct jobs leave exactly Recent+
// Slowest retained traces and nothing live.
func TestTimelineRingBoundedServer(t *testing.T) {
	s := New(Config{Shards: 2, QueueDepth: 16,
		Obs: obs.Options{Enabled: true, Recent: 4, Slowest: 2}})
	defer drainServer(t, s)

	const n = 12
	for i := 0; i < n; i++ {
		src := remoteListSrc + strings.Repeat("\n", i) // distinct hash per job
		if _, jerr := submitWait(t, s, &JobRequest{ID: fmt.Sprintf("ring-%d", i), Source: src, Nodes: 2}); jerr != nil {
			t.Fatalf("job %d: %v", i, jerr)
		}
	}
	live, ring, slow, completed := s.obs.Stats()
	if live != 0 || ring != 4 || slow != 2 || completed != n {
		t.Errorf("stats = live %d ring %d slow %d completed %d, want 0/4/2/%d",
			live, ring, slow, completed, n)
	}
	if tr := s.obs.Lookup(fmt.Sprintf("ring-%d", n-1)); tr == nil {
		t.Error("newest completed job evicted from the ring")
	}
}

// TestObsDisabledSurface: with observability off the endpoints 404 with a
// hint, jobs carry no trace, and the scrape carries no host-stage series.
func TestObsDisabledSurface(t *testing.T) {
	s := New(Config{Shards: 1, QueueDepth: 4})
	defer drainServer(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if _, jerr := submitWait(t, s, &JobRequest{ID: "dark", Source: remoteListSrc, Nodes: 2}); jerr != nil {
		t.Fatal(jerr)
	}
	for _, path := range []string{"/jobs/dark/timeline", "/debug/jobs"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 404 || !strings.Contains(buf.String(), "-obs") {
			t.Errorf("%s with obs off = %d %q, want 404 naming -obs", path, resp.StatusCode, buf.String())
		}
	}
	var buf bytes.Buffer
	if err := s.MergedRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, leak := range []string{"earthd_stage_ns", "earthd_job_wall_ns"} {
		if strings.Contains(buf.String(), leak) {
			t.Errorf("scrape carries %q with observability disabled", leak)
		}
	}
}

// TestTimelineConcurrentReads hammers the timeline and debug endpoints while
// jobs execute — the race-detector leg for the snapshot paths.
func TestTimelineConcurrentReads(t *testing.T) {
	s := New(obsConfig(2, 32))
	defer drainServer(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	done := make(chan struct{})
	var readers sync.WaitGroup
	for _, path := range []string{"/jobs/cc-0/timeline", "/jobs/cc-3/timeline",
		"/debug/jobs", "/debug/jobs?format=json", "/metrics"} {
		readers.Add(1)
		go func(path string) {
			defer readers.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := http.Get(ts.URL + path)
				if err != nil {
					t.Error(err)
					return
				}
				var buf bytes.Buffer
				buf.ReadFrom(resp.Body)
				resp.Body.Close()
			}
		}(path)
	}

	const n = 8
	var writers sync.WaitGroup
	for i := 0; i < n; i++ {
		writers.Add(1)
		go func(i int) {
			defer writers.Done()
			src := remoteListSrc + strings.Repeat("\n", i%3)
			if _, jerr := submitWait(t, s, &JobRequest{ID: fmt.Sprintf("cc-%d", i), Source: src, Nodes: 2}); jerr != nil {
				t.Errorf("job %d: %v", i, jerr)
			}
		}(i)
	}
	writers.Wait()
	close(done)
	readers.Wait()
}

// TestDebugJobsEndpoint: after a few completed jobs /debug/jobs reports the
// attribution table and the retained timelines, in both encodings.
func TestDebugJobsEndpoint(t *testing.T) {
	s := New(obsConfig(2, 8))
	defer drainServer(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 3
	for i := 0; i < n; i++ {
		src := remoteListSrc + strings.Repeat("\n", i)
		if _, jerr := submitWait(t, s, &JobRequest{ID: fmt.Sprintf("dbg-%d", i), Source: src, Nodes: 2}); jerr != nil {
			t.Fatal(jerr)
		}
	}

	resp, err := http.Get(ts.URL + "/debug/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	text := buf.String()
	for _, want := range []string{"tail-latency attribution", obs.KindQueueWait,
		obs.KindSimRun, "dbg-0", "dbg-2", "recent (newest first)"} {
		if !strings.Contains(text, want) {
			t.Errorf("/debug/jobs missing %q:\n%s", want, text)
		}
	}

	resp, err = http.Get(ts.URL + "/debug/jobs?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var dbg struct {
		Attribution []stageQuantiles `json:"attribution"`
		Recent      []*obs.Timeline  `json:"recent"`
		Slowest     []*obs.Timeline  `json:"slowest"`
	}
	err = json.NewDecoder(resp.Body).Decode(&dbg)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	byStage := map[string]stageQuantiles{}
	for _, a := range dbg.Attribution {
		byStage[a.Stage] = a
	}
	for _, stage := range []string{obs.KindQueueWait, obs.KindCompile, obs.KindSimRun} {
		a, ok := byStage[stage]
		if !ok || a.Count < n {
			t.Errorf("attribution for %q = %+v, want count >= %d", stage, a, n)
		}
		if a.P99Ns < a.P50Ns {
			t.Errorf("%s: p99 %d < p50 %d", stage, a.P99Ns, a.P50Ns)
		}
	}
	if len(dbg.Recent) != n || len(dbg.Slowest) != n {
		t.Errorf("recent=%d slowest=%d, want %d each", len(dbg.Recent), len(dbg.Slowest), n)
	}
}

// TestScrapeHelpTypeComplete audits the full merged exposition: every sample
// family — service, shard pipelines, process, host stages — carries a # HELP
// and a # TYPE header.
func TestScrapeHelpTypeComplete(t *testing.T) {
	s := New(obsConfig(2, 8))
	defer drainServer(t, s)

	for i := 0; i < 2; i++ {
		src := remoteListSrc + strings.Repeat("\n", i)
		if _, jerr := submitWait(t, s, &JobRequest{Source: src, Nodes: 2}); jerr != nil {
			t.Fatal(jerr)
		}
	}
	var buf bytes.Buffer
	if err := s.MergedRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	help := map[string]bool{}
	typ := map[string]bool{}
	var samples []string
	for _, line := range strings.Split(buf.String(), "\n") {
		switch {
		case line == "":
		case strings.HasPrefix(line, "# HELP "):
			f := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(f) < 2 || strings.TrimSpace(f[1]) == "" {
				t.Errorf("empty help text: %q", line)
			}
			help[f[0]] = true
		case strings.HasPrefix(line, "# TYPE "):
			f := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			typ[f[0]] = true
		default:
			samples = append(samples, line)
		}
	}
	if len(samples) == 0 {
		t.Fatal("empty exposition")
	}
	base := func(s string) string {
		name := s
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		} else if i := strings.IndexByte(name, ' '); i >= 0 {
			name = name[:i]
		}
		// Histogram series share their family's header.
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, suf)
			if trimmed != name && (help[trimmed] || typ[trimmed]) {
				return trimmed
			}
		}
		return name
	}
	for _, line := range samples {
		name := base(line)
		if !typ[name] {
			t.Errorf("sample %q has no # TYPE header for %q", line, name)
		}
		if !help[name] {
			t.Errorf("sample %q has no # HELP header for %q", line, name)
		}
	}
	if !typ["earthd_stage_ns"] || !help["earthd_stage_ns"] {
		t.Error("host stage histograms missing from the exposition")
	}
}

// TestBuildinfoEndpoint: /buildinfo reports the binary identity plus the
// service shape.
func TestBuildinfoEndpoint(t *testing.T) {
	s := New(obsConfig(3, 8))
	defer drainServer(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/buildinfo")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var bi struct {
		GoVersion  string `json:"go_version"`
		Shards     int    `json:"shards"`
		QueueDepth int    `json:"queue_depth"`
		Journaled  bool   `json:"journaled"`
		Obs        bool   `json:"obs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&bi); err != nil {
		t.Fatal(err)
	}
	if bi.GoVersion == "" {
		t.Error("buildinfo missing go_version")
	}
	if bi.Shards != 3 || bi.QueueDepth != 8 || bi.Journaled || !bi.Obs {
		t.Errorf("buildinfo shape = %+v", bi)
	}
}

// TestHealthzEwma: after a completed job /healthz carries the measured
// service-time and queue-wait EWMAs that drive Retry-After and brownout.
func TestHealthzEwma(t *testing.T) {
	s := New(obsConfig(1, 4))
	defer drainServer(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if _, jerr := submitWait(t, s, &JobRequest{Source: remoteListSrc, Nodes: 2}); jerr != nil {
		t.Fatal(jerr)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		SvcEwmaNs      int64 `json:"svc_ewma_ns"`
		QueueWaitEwma  int64 `json:"queue_wait_ewma_ns"`
		RetryAfterSecs int   `json:"retry_after_secs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.SvcEwmaNs <= 0 {
		t.Errorf("svc_ewma_ns = %d after a completed job, want > 0", h.SvcEwmaNs)
	}
	if h.QueueWaitEwma < 0 || h.RetryAfterSecs < 1 {
		t.Errorf("queue_wait_ewma_ns=%d retry_after_secs=%d", h.QueueWaitEwma, h.RetryAfterSecs)
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for capturing log output.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestSlowJobLoggedAndAccessLog: a job over the slow-job threshold dumps its
// timeline into the structured log, the access log records the HTTP request,
// and the slow-job counter increments.
func TestSlowJobLoggedAndAccessLog(t *testing.T) {
	var buf syncBuffer
	logger, err := obs.NewLogger(&buf, "json", "debug")
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Shards: 1, QueueDepth: 4,
		Obs:    obs.Options{Enabled: true, SlowJob: time.Nanosecond},
		Logger: logger})
	ts := httptest.NewServer(s.Handler())

	resp := postJSON(t, ts.URL+"/jobs", &JobRequest{ID: "tortoise", Source: remoteListSrc, Nodes: 2})
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	ts.Close()
	drainServer(t, s)

	out := buf.String()
	slow, access, accepted := false, false, false
	for _, line := range strings.Split(out, "\n") {
		if line == "" {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("non-JSON log line %q: %v", line, err)
		}
		switch rec["msg"] {
		case "slow job":
			slow = true
			tl, _ := rec["timeline"].(string)
			if !strings.Contains(tl, obs.KindSimRun) || !strings.Contains(tl, "status=done") {
				t.Errorf("slow-job dump missing timeline content: %q", tl)
			}
			if rec["job"] != "tortoise" {
				t.Errorf("slow-job line names job %v", rec["job"])
			}
		case "request":
			if rec["path"] == "/jobs" {
				access = true
			}
		case "job accepted":
			accepted = true
		}
	}
	if !slow || !access || !accepted {
		t.Errorf("log coverage: slow=%t access=%t accepted=%t\n%s", slow, access, accepted, out)
	}
	if got := counterValue(s, "earthd_slow_jobs_total"); got != 1 {
		t.Errorf("earthd_slow_jobs_total = %d, want 1", got)
	}
}
